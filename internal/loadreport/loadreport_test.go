package loadreport

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 5}, {90, 9}, {99, 10}, {100, 10}, {10, 1},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %g", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile(single, 99) = %g", got)
	}
}

func TestCollectorSummarize(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Record("warm", time.Duration(i)*time.Millisecond, nil)
	}
	c.Record("cold", 500*time.Millisecond, nil)
	c.Record("cold", 0, errors.New("boom"))

	s := c.Summarize(10 * time.Second)
	if s.Requests != 102 || s.Errors != 1 {
		t.Fatalf("requests %d, errors %d", s.Requests, s.Errors)
	}
	if s.Throughput != 10.2 {
		t.Errorf("throughput = %g", s.Throughput)
	}
	if len(s.Classes) != 2 || s.Classes[0].Class != "cold" || s.Classes[1].Class != "warm" {
		t.Fatalf("classes = %+v", s.Classes)
	}
	warm, ok := s.Class("warm")
	if !ok || warm.Count != 100 || warm.Errors != 0 {
		t.Fatalf("warm = %+v", warm)
	}
	if warm.P50Ms != 50 || warm.P99Ms != 99 || warm.MaxMs != 100 {
		t.Errorf("warm percentiles = p50 %g p99 %g max %g", warm.P50Ms, warm.P99Ms, warm.MaxMs)
	}
	cold, _ := s.Class("cold")
	if cold.Count != 2 || cold.Errors != 1 || cold.P50Ms != 500 {
		t.Errorf("cold = %+v (errors must not pollute the latency distribution)", cold)
	}
	if _, ok := s.Class("stream"); ok {
		t.Error("Class found a class that was never recorded")
	}
}

// TestCollectorErrorOnlyClass: a class whose every request failed
// still appears in the summary — silent disappearance would make a
// 100%-error run look clean.
func TestCollectorErrorOnlyClass(t *testing.T) {
	c := NewCollector()
	c.Record("stream", 0, errors.New("refused"))
	s := c.Summarize(time.Second)
	st, ok := s.Class("stream")
	if !ok || st.Count != 1 || st.Errors != 1 {
		t.Fatalf("error-only class = %+v, ok=%v", st, ok)
	}
}

func TestCollectorConcurrentRecord(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Record("warm", time.Millisecond, nil)
			}
		}()
	}
	wg.Wait()
	if s := c.Summarize(time.Second); s.Requests != 8000 {
		t.Fatalf("requests = %d, want 8000", s.Requests)
	}
}

// TestCollectorRateLimited: 429s tally per class without counting as
// errors — the limiter firing is an expected outcome, and the smoke
// harness asserts on the tally.
func TestCollectorRateLimited(t *testing.T) {
	c := NewCollector()
	c.Record("player", 3*time.Millisecond, nil)
	c.RecordRateLimited("player")
	c.RecordRateLimited("player")
	c.Record("player", time.Millisecond, nil)
	s := c.Summarize(time.Second)
	st, ok := s.Class("player")
	if !ok || st.RateLimited != 2 {
		t.Fatalf("player class = %+v, want rate_limited 2", st)
	}
	if s.Errors != 0 || st.Errors != 0 {
		t.Errorf("429 tally leaked into errors: %+v", st)
	}
	if !strings.Contains(s.String(), "429s") {
		t.Errorf("summary table missing the 429 column:\n%s", s.String())
	}
}

func TestSummaryString(t *testing.T) {
	c := NewCollector()
	c.Record("warm", 2*time.Millisecond, nil)
	s := c.Summarize(time.Second)
	s.Workers, s.Concurrency = 4, 8
	out := s.String()
	for _, want := range []string{"warm", "4 workers", "concurrency 8", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}
