// Package loadreport is the shared vocabulary of the load-test
// harness: twload records per-request latency samples into a
// Collector and emits a Summary; benchguard -load reads Summary JSON
// back and asserts the machine-independent invariants (zero errors,
// warm ≪ cold, sharded ≥ single). Living in internal/ rather than
// either cmd/ keeps the two binaries honest about one wire format.
package loadreport

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ClassStats summarizes one request class ("warm", "cold", "stream",
// ...): count, errors, and the latency distribution in milliseconds.
type ClassStats struct {
	Class  string  `json:"class"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	// CacheHits / CacheLookups count the requests that carried an
	// X-Cache header and how many of those were hits — the
	// warm-affinity signal a proxy run is judged on (a proxy that
	// routes a respelled warm spec to the wrong backend shows up here
	// as a depressed hit rate, even when latency happens to hide it).
	CacheHits    int `json:"cache_hits,omitempty"`
	CacheLookups int `json:"cache_lookups,omitempty"`
	// RateLimited counts the requests the server answered 429 — an
	// expected outcome for the player class under an aggressive
	// -player-rps, not an error (the request round-tripped and is a
	// latency sample; a limiter that never fires under aggressive
	// load is itself a bug the smoke test asserts against).
	RateLimited int `json:"rate_limited,omitempty"`
}

// HitRate is the class's cache-hit fraction (0 when the class's
// requests carried no cache marker).
func (c ClassStats) HitRate() float64 {
	if c.CacheLookups == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.CacheLookups)
}

// Summary is one complete load run: the configuration that produced
// it, the aggregate outcome, and the per-class breakdown.
type Summary struct {
	// Target configuration, recorded so a summary is self-describing.
	Addr        string  `json:"addr,omitempty"`
	Workers     int     `json:"workers"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`

	// Aggregate outcome.
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_rps"`

	// Per-class latency breakdown, sorted by class name.
	Classes []ClassStats `json:"classes"`
}

// Class returns the named class's stats and whether it was recorded.
func (s Summary) Class(name string) (ClassStats, bool) {
	for _, c := range s.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return ClassStats{}, false
}

// Percentile reads the p-th percentile (0 < p ≤ 100) from an
// ascending-sorted slice using the nearest-rank method — the
// conservative convention for latency reporting (p99 is a real
// observed sample, never an interpolation below one).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Collector accumulates latency samples from concurrent workers. The
// zero value is unusable; build with NewCollector. Record is safe for
// concurrent use.
type Collector struct {
	mu      sync.Mutex
	samples map[string][]float64 // class → latencies, ms
	errors  map[string]int
	hits    map[string]int
	lookups map[string]int
	limited map[string]int
}

// NewCollector builds an empty collector.
func NewCollector() *Collector {
	return &Collector{
		samples: map[string][]float64{}, errors: map[string]int{},
		hits: map[string]int{}, lookups: map[string]int{},
		limited: map[string]int{},
	}
}

// Record adds one request outcome. Failed requests count toward the
// class's error tally and are excluded from its latency distribution
// (an error return is usually fast; mixing it in would flatter the
// percentiles).
func (c *Collector) Record(class string, latency time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors[class]++
		return
	}
	c.samples[class] = append(c.samples[class], float64(latency)/float64(time.Millisecond))
}

// RecordCache tallies one successful request's X-Cache outcome for
// its class. Call it only for requests that actually carried the
// header (batch generate/analyze responses); streams and modules
// have no cache marker and stay out of the denominator.
func (c *Collector) RecordCache(class string, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups[class]++
	if hit {
		c.hits[class]++
	}
}

// RecordRateLimited tallies one 429 answer for its class. The request
// itself still goes through Record with a nil error — being told to
// back off is the limiter working, not the server failing.
func (c *Collector) RecordRateLimited(class string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limited[class]++
}

// Summarize freezes the collected samples into a Summary for a run
// that took elapsed wall-clock time.
func (c *Collector) Summarize(elapsed time.Duration) Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	s.DurationSec = elapsed.Seconds()
	classes := make([]string, 0, len(c.samples)+len(c.errors))
	seen := map[string]bool{}
	for class := range c.samples {
		classes, seen[class] = append(classes, class), true
	}
	for class := range c.errors {
		if !seen[class] {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		lat := append([]float64(nil), c.samples[class]...)
		sort.Float64s(lat)
		st := ClassStats{
			Class: class, Count: len(lat) + c.errors[class], Errors: c.errors[class],
			CacheHits: c.hits[class], CacheLookups: c.lookups[class],
			RateLimited: c.limited[class],
		}
		if len(lat) > 0 {
			sum := 0.0
			for _, v := range lat {
				sum += v
			}
			st.MeanMs = sum / float64(len(lat))
			st.P50Ms = Percentile(lat, 50)
			st.P90Ms = Percentile(lat, 90)
			st.P99Ms = Percentile(lat, 99)
			st.MaxMs = lat[len(lat)-1]
		}
		s.Requests += st.Count
		s.Errors += st.Errors
		s.Classes = append(s.Classes, st)
	}
	if s.DurationSec > 0 {
		s.Throughput = float64(s.Requests) / s.DurationSec
	}
	return s
}

// String renders the summary as the human table twload prints.
func (s Summary) String() string {
	out := fmt.Sprintf("%d requests in %.1fs (%.1f req/s, %d errors, %d workers, concurrency %d)\n",
		s.Requests, s.DurationSec, s.Throughput, s.Errors, s.Workers, s.Concurrency)
	out += fmt.Sprintf("%-10s %8s %6s %6s %10s %10s %10s %10s %10s %6s\n",
		"class", "count", "errs", "429s", "mean", "p50", "p90", "p99", "max", "hit%")
	for _, c := range s.Classes {
		hit := "-"
		if c.CacheLookups > 0 {
			hit = fmt.Sprintf("%.0f%%", 100*c.HitRate())
		}
		out += fmt.Sprintf("%-10s %8d %6d %6d %9.1fms %9.1fms %9.1fms %9.1fms %9.1fms %6s\n",
			c.Class, c.Count, c.Errors, c.RateLimited, c.MeanMs, c.P50Ms, c.P90Ms, c.P99Ms, c.MaxMs, hit)
	}
	return out
}
