package engine

import (
	"strings"
	"testing"
)

func TestNodeTreeBasics(t *testing.T) {
	root := NewNode("Node3D", "Root")
	a := NewNode("Node3D", "A")
	b := NewNode("Label3D", "B")
	root.AddChild(a)
	a.AddChild(b)

	if b.Parent() != a || a.Parent() != root || root.Parent() != nil {
		t.Error("parent links wrong")
	}
	if b.Root() != root {
		t.Error("Root() wrong")
	}
	if got := b.Path(); got != "/Root/A/B" {
		t.Errorf("Path = %q", got)
	}
	if root.ChildCount() != 1 || len(root.Children()) != 1 {
		t.Error("child count wrong")
	}
	if b.Kind() != "Label3D" {
		t.Error("kind wrong")
	}
}

func TestAddChildRejectsDuplicateNames(t *testing.T) {
	root := NewNode("Node3D", "Root")
	root.AddChild(NewNode("Node3D", "X"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate sibling name accepted")
		}
	}()
	root.AddChild(NewNode("Node3D", "X"))
}

func TestAddChildRejectsReparent(t *testing.T) {
	root := NewNode("Node3D", "Root")
	child := NewNode("Node3D", "C")
	root.AddChild(child)
	other := NewNode("Node3D", "Other")
	defer func() {
		if recover() == nil {
			t.Error("re-parenting without removal accepted")
		}
	}()
	other.AddChild(child)
}

func TestAddChildRejectsSelf(t *testing.T) {
	n := NewNode("Node3D", "N")
	defer func() {
		if recover() == nil {
			t.Error("self-child accepted")
		}
	}()
	n.AddChild(n)
}

func TestNewNodeRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "a/b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", name)
				}
			}()
			NewNode("Node3D", name)
		}()
	}
}

func TestRemoveChild(t *testing.T) {
	root := NewNode("Node3D", "Root")
	child := NewNode("Node3D", "C")
	root.AddChild(child)
	if !root.RemoveChild(child) {
		t.Fatal("RemoveChild failed")
	}
	if child.Parent() != nil || root.ChildCount() != 0 {
		t.Error("detach incomplete")
	}
	if root.RemoveChild(child) {
		t.Error("double remove succeeded")
	}
	// A removed child can join another parent.
	other := NewNode("Node3D", "Other")
	other.AddChild(child)
	if child.Parent() != other {
		t.Error("reattach failed")
	}
}

func TestChildIndexing(t *testing.T) {
	root := NewNode("Node3D", "Root")
	for _, n := range []string{"A", "B", "C"} {
		root.AddChild(NewNode("Node3D", n))
	}
	c, err := root.Child(1)
	if err != nil || c.Name() != "B" {
		t.Errorf("Child(1) = %v, %v", c, err)
	}
	if _, err := root.Child(5); err == nil {
		t.Error("out-of-range child accepted")
	}
	if _, err := root.Child(-1); err == nil {
		t.Error("negative child accepted")
	}
}

// TestGetNodePaths covers the paper's "$\"../Data\"" resolution and
// friends.
func TestGetNodePaths(t *testing.T) {
	root := NewNode("Node3D", "Level")
	data := NewNode("Node3D", "Data")
	controller := NewNode("Node3D", "Controller")
	pallets := NewNode("Node3D", "Pallets")
	root.AddChild(data)
	root.AddChild(controller)
	root.AddChild(pallets)

	cases := []struct {
		from *Node
		path string
		want *Node
	}{
		{controller, "../Data", data},
		{controller, "..", root},
		{root, "Data", data},
		{root, "./Data", data},
		{data, "../Controller", controller},
		{data, "/Level/Pallets", pallets},
		{pallets, "/Level", root},
		{controller, ".", controller},
	}
	for _, c := range cases {
		got, err := c.from.GetNode(c.path)
		if err != nil || got != c.want {
			t.Errorf("GetNode(%q from %s) = %v, %v", c.path, c.from.Name(), got, err)
		}
	}

	if _, err := controller.GetNode("../Missing"); err == nil {
		t.Error("missing node resolved")
	}
	if _, err := root.GetNode("../.."); err == nil {
		t.Error("climb above root resolved")
	}
}

func TestFindByNameAndWalk(t *testing.T) {
	root := NewNode("Node3D", "Root")
	mid := NewNode("Node3D", "Mid")
	leaf := NewNode("Node3D", "Leaf")
	root.AddChild(mid)
	mid.AddChild(leaf)
	if root.FindByName("Leaf") != leaf {
		t.Error("FindByName failed")
	}
	if root.FindByName("Nope") != nil {
		t.Error("FindByName invented a node")
	}
	var visited []string
	root.Walk(func(n *Node) bool {
		visited = append(visited, n.Name())
		return n.Name() != "Mid" // prune below Mid
	})
	if strings.Join(visited, ",") != "Root,Mid" {
		t.Errorf("Walk visited %v", visited)
	}
}

func TestGroups(t *testing.T) {
	n := NewNode("Node3D", "N")
	n.AddToGroup("pallets")
	n.AddToGroup("all")
	if !n.IsInGroup("pallets") || n.IsInGroup("boxes") {
		t.Error("group membership wrong")
	}
	if got := n.Groups(); strings.Join(got, ",") != "all,pallets" {
		t.Errorf("Groups = %v", got)
	}
	n.RemoveFromGroup("pallets")
	if n.IsInGroup("pallets") {
		t.Error("RemoveFromGroup failed")
	}
}

func TestSignals(t *testing.T) {
	n := NewNode("Node3D", "Button")
	var log []string
	id := n.Connect("pressed", func(from *Node, args ...any) {
		log = append(log, from.Name())
	})
	n.Connect("pressed", func(from *Node, args ...any) {
		if len(args) == 1 {
			log = append(log, args[0].(string))
		}
	})
	if got := n.Emit("pressed", "arg"); got != 2 {
		t.Errorf("Emit ran %d handlers", got)
	}
	if strings.Join(log, ",") != "Button,arg" {
		t.Errorf("handler order/args wrong: %v", log)
	}
	if !n.Disconnect("pressed", id) {
		t.Error("Disconnect failed")
	}
	if n.Disconnect("pressed", id) {
		t.Error("double disconnect succeeded")
	}
	log = nil
	n.Emit("pressed", "x")
	if len(log) != 1 {
		t.Error("disconnected handler still ran")
	}
	if n.Emit("unknown") != 0 {
		t.Error("unknown signal ran handlers")
	}
	if got := n.SignalNames(); strings.Join(got, ",") != "pressed" {
		t.Errorf("SignalNames = %v", got)
	}
}

func TestSignalHandlerMayMutateConnections(t *testing.T) {
	n := NewNode("Node3D", "N")
	var fired int
	n.Connect("s", func(from *Node, args ...any) {
		fired++
		n.Connect("s", func(*Node, ...any) { fired += 100 })
	})
	// The newly added handler must not run during this emission.
	if n.Emit("s") != 1 || fired != 1 {
		t.Errorf("mutation during emit mishandled: fired=%d", fired)
	}
}

func TestPropsExportSetGet(t *testing.T) {
	p := NewProps()
	p.Export("count", 3)
	p.Export("label", "hi")
	p.Export("on", true)
	if !p.Has("count") || p.Has("missing") {
		t.Error("Has wrong")
	}
	if p.GetInt("count", -1) != 3 || p.GetString("label", "") != "hi" || !p.GetBool("on", false) {
		t.Error("typed getters wrong")
	}
	if err := p.Set("count", 5); err != nil || p.GetInt("count", -1) != 5 {
		t.Error("Set failed")
	}
	if err := p.Set("count", "nope"); err == nil {
		t.Error("type change accepted")
	}
	if err := p.Set("missing", 1); err == nil {
		t.Error("set of unexported property accepted")
	}
	if got := p.Names(); strings.Join(got, ",") != "count,label,on" {
		t.Errorf("Names order = %v", got)
	}
	if p.Len() != 3 {
		t.Error("Len wrong")
	}
}

func TestPropsFallbacks(t *testing.T) {
	p := NewProps()
	p.Export("n", 1)
	if p.GetBool("n", true) != true {
		t.Error("wrong-type GetBool should return fallback")
	}
	if p.GetString("n", "fb") != "fb" {
		t.Error("wrong-type GetString should return fallback")
	}
	if p.GetNode("n") != nil {
		t.Error("wrong-type GetNode should return nil")
	}
}

func TestInspectorRendering(t *testing.T) {
	n := NewNode("Node3D", "Pallet and label controller")
	target := NewNode("Node3D", "Y")
	root := NewNode("Node3D", "Root")
	root.AddChild(n)
	root.AddChild(target)
	n.Props().Export("y_axis", target)
	n.Props().Export("pallets_are_colored", false)
	n.Props().Export("title", "hello")
	out := Inspector(n)
	for _, want := range []string{"Y Axis", "/Root/Y", "Pallets Are Colored", "Off", `"hello"`} {
		if !strings.Contains(out, want) {
			t.Errorf("Inspector missing %q:\n%s", want, out)
		}
	}
}

func TestPropsSorted(t *testing.T) {
	p := NewProps()
	p.Export("b", 1)
	p.Export("a", 2)
	rows := PropsSorted(p)
	if len(rows) != 2 || rows[0] != "a=2" {
		t.Errorf("PropsSorted = %v", rows)
	}
}

func TestLifecycleReadyOrder(t *testing.T) {
	var order []string
	behavior := func(name string) Behavior {
		return BehaviorFuncs{OnReady: func(*Node) { order = append(order, name) }}
	}
	root := NewNode("Node3D", "Root")
	child := NewNode("Node3D", "Child")
	leaf := NewNode("Node3D", "Leaf")
	root.SetBehavior(behavior("root"))
	child.SetBehavior(behavior("child"))
	leaf.SetBehavior(behavior("leaf"))
	root.AddChild(child)
	child.AddChild(leaf)

	tree := NewSceneTree(root)
	tree.Start()
	// Children ready before parents (Godot's order).
	if strings.Join(order, ",") != "leaf,child,root" {
		t.Errorf("ready order = %v", order)
	}
	// Start is idempotent.
	order = nil
	tree.Start()
	if len(order) != 0 {
		t.Error("second Start re-ran ready")
	}
}

func TestLateAddGetsReady(t *testing.T) {
	root := NewNode("Node3D", "Root")
	tree := NewSceneTree(root)
	tree.Start()
	fired := false
	late := NewNode("Node3D", "Late")
	late.SetBehavior(BehaviorFuncs{OnReady: func(*Node) { fired = true }})
	root.AddChild(late)
	if !fired {
		t.Error("late-added node never readied")
	}
}

func TestSetBehaviorAfterReadyRunsImmediately(t *testing.T) {
	root := NewNode("Node3D", "Root")
	NewSceneTree(root).Start()
	fired := false
	root.SetBehavior(BehaviorFuncs{OnReady: func(*Node) { fired = true }})
	if !fired {
		t.Error("hot-attached behavior not readied")
	}
}

func TestProcessOrderAndTiming(t *testing.T) {
	var order []string
	mk := func(name string) Behavior {
		return BehaviorFuncs{OnProcess: func(_ *Node, dt float64) {
			order = append(order, name)
			if dt != 0.5 {
				t.Errorf("dt = %f", dt)
			}
		}}
	}
	root := NewNode("Node3D", "Root")
	child := NewNode("Node3D", "Child")
	root.SetBehavior(mk("root"))
	child.SetBehavior(mk("child"))
	root.AddChild(child)
	tree := NewSceneTree(root)
	tree.Run(2, 0.5)
	// Parents process before children, two frames.
	if strings.Join(order, ",") != "root,child,root,child" {
		t.Errorf("process order = %v", order)
	}
	if tree.Frame() != 2 || tree.Elapsed() != 1.0 {
		t.Errorf("frame/elapsed = %d/%f", tree.Frame(), tree.Elapsed())
	}
}

func TestStepStartsTree(t *testing.T) {
	fired := false
	root := NewNode("Node3D", "Root")
	root.SetBehavior(BehaviorFuncs{OnReady: func(*Node) { fired = true }})
	tree := NewSceneTree(root)
	tree.Step(0.1)
	if !fired || !tree.Started() {
		t.Error("Step did not start the tree")
	}
}

func TestPackedSceneInstancesIndependent(t *testing.T) {
	scene := PackedScene(func() *Node {
		root := NewNode("Node3D", "Instance")
		root.AddChild(NewNode("Node3D", "Child"))
		return root
	})
	a := scene.Instantiate()
	b := scene.Instantiate()
	if a == b || a.MustChild(0) == b.MustChild(0) {
		t.Error("instances share nodes")
	}
}

func TestTreeString(t *testing.T) {
	root := NewNode("Node3D", "TrainingLevel")
	root.AddChild(NewNode("Node3D", "Data"))
	pallets := NewNode("Node3D", "Pallets")
	pallets.AddChild(NewNode("Node3D", "Pallet_0_0"))
	root.AddChild(pallets)
	out := root.TreeString()
	for _, want := range []string{"○ TrainingLevel (Node3D)", "├─ ○ Data", "└─ ○ Pallets", "   └─ ○ Pallet_0_0"} {
		if !strings.Contains(out, want) {
			t.Errorf("TreeString missing %q:\n%s", want, out)
		}
	}
}

func TestSceneTreeRejectsBadRoot(t *testing.T) {
	parent := NewNode("Node3D", "P")
	child := NewNode("Node3D", "C")
	parent.AddChild(child)
	defer func() {
		if recover() == nil {
			t.Error("parented root accepted")
		}
	}()
	NewSceneTree(child)
}

func TestNodeDataMap(t *testing.T) {
	n := NewNode("Node3D", "Data")
	n.Data["traffic_matrix"] = [][]int{{1}}
	if _, ok := n.Data["traffic_matrix"]; !ok {
		t.Error("Data map not usable")
	}
}
