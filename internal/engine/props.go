package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Export variables and the Inspector (Fig 3): "Several export
// variables are created to allow these variables be dynamically
// edited without having to edit the script as a whole." Props is a
// typed, ordered property bag; Inspector renders it the way Godot's
// Inspector tab lists exported properties.

// Props is an ordered set of named exported values.
type Props struct {
	order  []string
	values map[string]any
}

// NewProps returns an empty property bag.
func NewProps() *Props {
	return &Props{values: make(map[string]any)}
}

// Export declares a property with its default value (Godot's
// @export). Re-exporting an existing name just overwrites the value.
func (p *Props) Export(name string, value any) {
	if _, exists := p.values[name]; !exists {
		p.order = append(p.order, name)
	}
	p.values[name] = value
}

// Has reports whether the property exists.
func (p *Props) Has(name string) bool {
	_, ok := p.values[name]
	return ok
}

// Set assigns an existing property, enforcing that the new value
// keeps the declared type (the Inspector edits values, not types).
func (p *Props) Set(name string, value any) error {
	old, ok := p.values[name]
	if !ok {
		return fmt.Errorf("engine: no exported property %q", name)
	}
	if old != nil && value != nil && fmt.Sprintf("%T", old) != fmt.Sprintf("%T", value) {
		return fmt.Errorf("engine: property %q is %T, cannot assign %T", name, old, value)
	}
	p.values[name] = value
	return nil
}

// Get returns a property value; ok=false when absent.
func (p *Props) Get(name string) (any, bool) {
	v, ok := p.values[name]
	return v, ok
}

// GetBool returns a bool property, or the fallback when absent or of
// another type.
func (p *Props) GetBool(name string, fallback bool) bool {
	if v, ok := p.values[name].(bool); ok {
		return v
	}
	return fallback
}

// GetInt returns an int property, or the fallback.
func (p *Props) GetInt(name string, fallback int) int {
	if v, ok := p.values[name].(int); ok {
		return v
	}
	return fallback
}

// GetString returns a string property, or the fallback.
func (p *Props) GetString(name, fallback string) string {
	if v, ok := p.values[name].(string); ok {
		return v
	}
	return fallback
}

// GetNode returns a node-reference property, or nil: the engine's
// version of @export var y_axis : Node3D assigned in the Inspector.
func (p *Props) GetNode(name string) *Node {
	if v, ok := p.values[name].(*Node); ok {
		return v
	}
	return nil
}

// Names returns the property names in declaration order.
func (p *Props) Names() []string {
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}

// Len returns the number of exported properties.
func (p *Props) Len() int { return len(p.order) }

// Inspector renders the node's exported properties like Godot's
// Inspector tab (Fig 3): one "name: value" row per property in
// declaration order, with node references shown by path.
func Inspector(n *Node) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inspector — %s (%s)\n", n.Name(), n.Kind())
	for _, name := range n.Props().Names() {
		v, _ := n.Props().Get(name)
		fmt.Fprintf(&b, "  %-22s %s\n", display(name), formatValue(v))
	}
	return b.String()
}

// display converts a snake_case property name to the Title Case the
// Godot Inspector shows ("pallets_are_colored" → "Pallets Are
// Colored").
func display(name string) string {
	words := strings.Split(name, "_")
	for i, w := range words {
		if w == "" {
			continue
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

// formatValue renders a property value for the Inspector.
func formatValue(v any) string {
	switch val := v.(type) {
	case nil:
		return "<empty>"
	case *Node:
		if val == nil {
			return "<empty>"
		}
		return val.Path()
	case string:
		return fmt.Sprintf("%q", val)
	case bool:
		if val {
			return "On"
		}
		return "Off"
	default:
		return fmt.Sprint(val)
	}
}

// PropsSorted returns name/value rows sorted by name, useful in
// tests that need deterministic comparison independent of
// declaration order.
func PropsSorted(p *Props) []string {
	rows := make([]string, 0, p.Len())
	for _, name := range p.Names() {
		v, _ := p.Get(name)
		rows = append(rows, fmt.Sprintf("%s=%s", name, formatValue(v)))
	}
	sort.Strings(rows)
	return rows
}
