package engine

import (
	"fmt"
)

// SceneTree owns the root node and drives the lifecycle: Start runs
// _ready over the tree (children before parents, Godot's order);
// Step runs one _process frame; Run steps a fixed-timestep loop.
// Headless determinism replaces Godot's real-time loop so the whole
// game runs under go test.
type SceneTree struct {
	root    *Node
	started bool
	frame   int
	elapsed float64
}

// NewSceneTree creates a tree rooted at root.
func NewSceneTree(root *Node) *SceneTree {
	if root == nil {
		panic("engine: nil scene root")
	}
	if root.parent != nil {
		panic(fmt.Sprintf("engine: scene root %q has a parent", root.name))
	}
	t := &SceneTree{root: root}
	root.setTree(t)
	return t
}

// Root returns the tree's root node.
func (t *SceneTree) Root() *Node { return t.root }

// Started reports whether Start has run.
func (t *SceneTree) Started() bool { return t.started }

// Frame returns the number of processed frames.
func (t *SceneTree) Frame() int { return t.frame }

// Elapsed returns the total simulated time in seconds.
func (t *SceneTree) Elapsed() float64 { return t.elapsed }

// Start readies the whole tree. Calling it twice is a no-op.
func (t *SceneTree) Start() {
	if t.started {
		return
	}
	t.started = true
	t.root.readyWalk()
}

// Step processes one frame of dt seconds, starting the tree first
// if needed.
func (t *SceneTree) Step(dt float64) {
	if !t.started {
		t.Start()
	}
	t.frame++
	t.elapsed += dt
	t.root.processWalk(dt)
}

// Run steps the loop for the given number of frames at a fixed
// timestep.
func (t *SceneTree) Run(frames int, dt float64) {
	for i := 0; i < frames; i++ {
		t.Step(dt)
	}
}

// Instantiate clones a scene blueprint: a constructor function
// returning a fresh subtree, the engine's analogue of Godot's
// PackedScene.instantiate(). The constructor runs every call so
// instances never share nodes.
type PackedScene func() *Node

// Instantiate builds a fresh instance of the scene.
func (s PackedScene) Instantiate() *Node { return s() }
