package engine

import (
	"fmt"
	"sort"
)

// Signals are Godot's observer mechanism: a node emits a named
// signal and every connected handler runs. The game uses them for UI
// events ("toggle pallet color button … is called whenever the
// toggle pallet color button is clicked").

// SignalHandler receives the emitting node and the emit arguments.
type SignalHandler func(from *Node, args ...any)

// connection pairs a handler with its registration id so it can be
// disconnected.
type connection struct {
	id      int
	handler SignalHandler
}

// signalTable stores a node's signal connections.
type signalTable struct {
	nextID int
	conns  map[string][]connection
}

// Connect registers a handler for the named signal and returns a
// token for Disconnect.
func (n *Node) Connect(signal string, handler SignalHandler) int {
	if handler == nil {
		panic(fmt.Sprintf("engine: nil handler for signal %q", signal))
	}
	if n.signals.conns == nil {
		n.signals.conns = make(map[string][]connection)
	}
	n.signals.nextID++
	id := n.signals.nextID
	n.signals.conns[signal] = append(n.signals.conns[signal], connection{id: id, handler: handler})
	return id
}

// Disconnect removes a previously connected handler by token. It
// returns false when the token is unknown.
func (n *Node) Disconnect(signal string, id int) bool {
	conns := n.signals.conns[signal]
	for i, c := range conns {
		if c.id == id {
			n.signals.conns[signal] = append(conns[:i], conns[i+1:]...)
			return true
		}
	}
	return false
}

// Emit fires the named signal, invoking handlers in connection
// order. It returns the number of handlers run.
func (n *Node) Emit(signal string, args ...any) int {
	conns := n.signals.conns[signal]
	// Copy first: a handler may connect/disconnect while running.
	snapshot := make([]connection, len(conns))
	copy(snapshot, conns)
	for _, c := range snapshot {
		c.handler(n, args...)
	}
	return len(snapshot)
}

// SignalNames returns the signals with at least one connection,
// sorted.
func (n *Node) SignalNames() []string {
	out := make([]string, 0, len(n.signals.conns))
	for s, conns := range n.signals.conns {
		if len(conns) > 0 {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
