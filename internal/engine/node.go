// Package engine is the Godot substitute: a scene-tree micro-engine
// with named, typed nodes, parent/child trees, Godot-style node
// paths ("../Data"), signals, groups, export-variable property bags
// with an Inspector, and the _ready/_process lifecycle driven by a
// fixed-timestep loop.
//
// The paper's implementation section is entirely scene-tree
// mechanics — a controller script attached to a node resolves
// "$../Data", reads exported variables, and repaints pallet children
// — and the game package reproduces those interactions on this
// engine one-for-one.
package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Behavior is the script attached to a node: the Go analogue of a
// GDScript file. Ready runs when the node enters the scene tree
// (Godot's _ready); Process runs every frame (Godot's _process).
type Behavior interface {
	Ready(n *Node)
	Process(n *Node, dt float64)
}

// BehaviorFuncs adapts plain functions to Behavior; either may be
// nil.
type BehaviorFuncs struct {
	OnReady   func(n *Node)
	OnProcess func(n *Node, dt float64)
}

// Ready implements Behavior.
func (b BehaviorFuncs) Ready(n *Node) {
	if b.OnReady != nil {
		b.OnReady(n)
	}
}

// Process implements Behavior.
func (b BehaviorFuncs) Process(n *Node, dt float64) {
	if b.OnProcess != nil {
		b.OnProcess(n, dt)
	}
}

// Node is the smallest component of a scene: "In Godot a node is the
// smallest component that can be modified and used to build a
// scene."
type Node struct {
	name     string
	kind     string
	parent   *Node
	children []*Node
	behavior Behavior
	props    *Props
	signals  signalTable
	groups   map[string]bool
	tree     *SceneTree
	readied  bool
	// Data carries arbitrary attached values, playing the role of
	// Godot's per-node script variables (the paper's "Data" node
	// stores the parsed JSON dictionary this way).
	Data map[string]any
}

// NewNode creates a detached node of the given kind ("Node3D",
// "Label3D", …) and name.
func NewNode(kind, name string) *Node {
	if name == "" || strings.ContainsAny(name, "/") {
		panic(fmt.Sprintf("engine: invalid node name %q", name))
	}
	return &Node{
		name:   name,
		kind:   kind,
		props:  NewProps(),
		groups: make(map[string]bool),
		Data:   make(map[string]any),
	}
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Kind returns the node's type label.
func (n *Node) Kind() string { return n.kind }

// Parent returns the node's parent, or nil at the root.
func (n *Node) Parent() *Node { return n.parent }

// Props returns the node's export-variable bag.
func (n *Node) Props() *Props { return n.props }

// SetBehavior attaches a script. Attaching after the node has
// entered the tree runs Ready immediately, as Godot does when a
// script is hot-attached.
func (n *Node) SetBehavior(b Behavior) {
	n.behavior = b
	if n.readied && b != nil {
		b.Ready(n)
	}
}

// Behavior returns the attached script, or nil.
func (n *Node) Behavior() Behavior { return n.behavior }

// AddChild appends child to n. It panics when the child already has
// a parent or the name collides with an existing child, matching
// Godot's unique-sibling-name rule. If n is inside a started tree
// the child's subtree becomes ready immediately.
func (n *Node) AddChild(child *Node) {
	if child.parent != nil {
		panic(fmt.Sprintf("engine: node %q already has parent %q", child.name, child.parent.name))
	}
	if child == n {
		panic("engine: node cannot be its own child")
	}
	for _, existing := range n.children {
		if existing.name == child.name {
			panic(fmt.Sprintf("engine: node %q already has a child named %q", n.name, child.name))
		}
	}
	child.parent = n
	n.children = append(n.children, child)
	child.setTree(n.tree)
	if n.tree != nil && n.tree.started {
		child.readyWalk()
	}
}

// setTree propagates tree membership through a subtree.
func (n *Node) setTree(t *SceneTree) {
	n.tree = t
	for _, c := range n.children {
		c.setTree(t)
	}
}

// RemoveChild detaches child from n (Godot's queue_free +
// remove_child, immediate). It returns false when child is not a
// child of n.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.children {
		if c == child {
			n.children = append(n.children[:i], n.children[i+1:]...)
			child.parent = nil
			child.setTree(nil)
			return true
		}
	}
	return false
}

// Children returns the node's children in order: the engine call the
// paper's controller uses to collect "a list of all the child
// pallets".
func (n *Node) Children() []*Node {
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// ChildCount returns the number of children.
func (n *Node) ChildCount() int { return len(n.children) }

// Child returns the i-th child; the paper's scripts index children
// positionally (get_child(0), get_child(1)).
func (n *Node) Child(i int) (*Node, error) {
	if i < 0 || i >= len(n.children) {
		return nil, fmt.Errorf("engine: node %q has no child %d (has %d)", n.name, i, len(n.children))
	}
	return n.children[i], nil
}

// MustChild is Child but panics; for scene construction code.
func (n *Node) MustChild(i int) *Node {
	c, err := n.Child(i)
	if err != nil {
		panic(err)
	}
	return c
}

// Root walks to the top of the tree.
func (n *Node) Root() *Node {
	cur := n
	for cur.parent != nil {
		cur = cur.parent
	}
	return cur
}

// Path returns the absolute slash-separated path from the root, e.g.
// "/TrainingLevel/PalletAndLabelController".
func (n *Node) Path() string {
	if n.parent == nil {
		return "/" + n.name
	}
	return n.parent.Path() + "/" + n.name
}

// GetNode resolves a Godot-style node path relative to n: path
// segments are child names, ".." climbs to the parent, "." stays,
// and a leading "/" restarts from the root. The paper's controller
// uses exactly this to find its Data sibling: GetNode("../Data").
func (n *Node) GetNode(path string) (*Node, error) {
	cur := n
	rest := path
	if strings.HasPrefix(path, "/") {
		cur = n.Root()
		rest = strings.TrimPrefix(path, "/")
		// An absolute path names the root itself first.
		if rest == cur.name {
			return cur, nil
		}
		rest = strings.TrimPrefix(rest, cur.name+"/")
	}
	if rest == "" {
		return cur, nil
	}
	for _, seg := range strings.Split(rest, "/") {
		switch seg {
		case "", ".":
			continue
		case "..":
			if cur.parent == nil {
				return nil, fmt.Errorf("engine: path %q climbs above the root", path)
			}
			cur = cur.parent
		default:
			var next *Node
			for _, c := range cur.children {
				if c.name == seg {
					next = c
					break
				}
			}
			if next == nil {
				return nil, fmt.Errorf("engine: node %q has no child %q (path %q)", cur.name, seg, path)
			}
			cur = next
		}
	}
	return cur, nil
}

// MustGetNode is GetNode but panics; for scene construction code
// where a missing node is a programming error.
func (n *Node) MustGetNode(path string) *Node {
	node, err := n.GetNode(path)
	if err != nil {
		panic(err)
	}
	return node
}

// FindByName searches the subtree (depth-first, n included) for the
// first node with the given name.
func (n *Node) FindByName(name string) *Node {
	if n.name == name {
		return n
	}
	for _, c := range n.children {
		if found := c.FindByName(name); found != nil {
			return found
		}
	}
	return nil
}

// Walk visits the subtree depth-first, parents before children,
// stopping when fn returns false.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.children {
		c.Walk(fn)
	}
}

// AddToGroup tags the node with a Godot-style group name.
func (n *Node) AddToGroup(group string) { n.groups[group] = true }

// RemoveFromGroup removes the tag.
func (n *Node) RemoveFromGroup(group string) { delete(n.groups, group) }

// IsInGroup reports whether the node carries the tag.
func (n *Node) IsInGroup(group string) bool { return n.groups[group] }

// Groups returns the node's groups, sorted.
func (n *Node) Groups() []string {
	out := make([]string, 0, len(n.groups))
	for g := range n.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// readyWalk runs Ready depth-first, children before parents, once
// per node — Godot's _ready ordering.
func (n *Node) readyWalk() {
	for _, c := range n.children {
		c.readyWalk()
	}
	if !n.readied {
		n.readied = true
		if n.behavior != nil {
			n.behavior.Ready(n)
		}
	}
}

// processWalk runs Process in tree order (parents before children).
func (n *Node) processWalk(dt float64) {
	if n.behavior != nil {
		n.behavior.Process(n, dt)
	}
	for _, c := range n.children {
		c.processWalk(dt)
	}
}

// TreeString renders the subtree like Godot's scene dock (Fig 2):
//
//	○ TrainingLevel (Node3D)
//	├─ ○ Data (Node3D)
//	└─ ○ Pallets (Node3D)
func (n *Node) TreeString() string {
	var b strings.Builder
	n.writeTree(&b, "", true, true)
	return b.String()
}

func (n *Node) writeTree(b *strings.Builder, prefix string, isLast, isRoot bool) {
	if isRoot {
		fmt.Fprintf(b, "○ %s (%s)\n", n.name, n.kind)
	} else {
		connector := "├─"
		if isLast {
			connector = "└─"
		}
		fmt.Fprintf(b, "%s%s ○ %s (%s)\n", prefix, connector, n.name, n.kind)
	}
	childPrefix := prefix
	if !isRoot {
		if isLast {
			childPrefix += "   "
		} else {
			childPrefix += "│  "
		}
	}
	for i, c := range n.children {
		c.writeTree(b, childPrefix, i == len(n.children)-1, false)
	}
}
