// Package modules is the built-in learning-module library: the
// training level plus the five module sets of Figs 6–10, each
// figure panel converted into a playable module with the paper's
// standard question ("Which choice is the displayed traffic pattern
// most relevant to?") and three answer choices drawn from the same
// family.
package modules

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/patterns"
)

// StandardQuestion is the question every pattern module asks: "For
// all the modules, the question type is the same."
const StandardQuestion = "Which choice is the displayed traffic pattern most relevant to?"

// Author credited on the built-in modules.
const Author = "Traffic Warehouse"

// FromEntry converts a catalog entry into a playable module. The
// three answers are the correct title plus the next two titles from
// the family's answer pool (cyclically), so every module in a family
// shows plausible distractors and the choice count matches the
// paper's three-option design.
func FromEntry(e patterns.Entry) (*core.Module, error) {
	m, colors, err := e.Build()
	if err != nil {
		return nil, err
	}
	if m.Rows() != len(patterns.StandardLabels10) {
		return nil, fmt.Errorf("modules: entry %s is %dx%d; built-ins use the standard 10-label axis", e.ID, m.Rows(), m.Cols())
	}
	pool := patterns.FamilyTitles(e.Family)
	answers, correct := buildAnswers(pool, e.Title)
	return &core.Module{
		Name:                 titleCase(e.Title) + " (Fig " + e.Figure + ")",
		Size:                 core.FormatSize(m.Rows()),
		Author:               Author,
		Hint:                 e.Hint,
		AxisLabels:           append([]string(nil), patterns.StandardLabels10...),
		TrafficMatrix:        m.ToRows(),
		TrafficMatrixColors:  colors.ToRows(),
		HasQuestion:          true,
		Question:             StandardQuestion,
		Answers:              answers,
		CorrectAnswerElement: correct,
	}, nil
}

// buildAnswers selects three answers from the pool including the
// correct title; the authored position of the correct answer varies
// by its position in the pool (display order is shuffled at
// presentation anyway).
func buildAnswers(pool []string, correct string) ([]string, int) {
	idx := 0
	for i, t := range pool {
		if t == correct {
			idx = i
			break
		}
	}
	if len(pool) <= core.RecommendedAnswerCount {
		// Small families (e.g. SDD's three postures) use the whole
		// pool.
		out := append([]string(nil), pool...)
		for i, t := range out {
			if t == correct {
				return out, i
			}
		}
		return out, 0
	}
	answers := []string{
		correct,
		pool[(idx+1)%len(pool)],
		pool[(idx+2)%len(pool)],
	}
	// Rotate so the correct element is not always first in the
	// file (educators may read the JSON aloud).
	rot := idx % core.RecommendedAnswerCount
	rotated := append(answers[rot:], answers[:rot]...)
	for i, t := range rotated {
		if t == correct {
			return rotated, i
		}
	}
	return answers, 0
}

// titleCase uppercases the first letter of each word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if w == "ddos" || w == "DDoS" {
			words[i] = "DDoS"
			continue
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

// FamilyLesson builds the lesson for one module family, with panels
// in paper order.
func FamilyLesson(f patterns.Family) (*core.Lesson, error) {
	entries := patterns.ByFamily(f)
	if len(entries) == 0 {
		return nil, fmt.Errorf("modules: unknown family %q", f)
	}
	lesson := &core.Lesson{Name: slug(string(f))}
	for _, e := range entries {
		m, err := FromEntry(e)
		if err != nil {
			return nil, err
		}
		lesson.Modules = append(lesson.Modules, m)
	}
	return lesson, nil
}

// slug hyphenates a family name for use as a lesson name.
func slug(s string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "-")
}

// LessonNames lists the built-in lessons in curriculum order.
var LessonNames = []string{
	"training",
	"topologies",
	"attack",
	"security-defense-deterrence",
	"ddos",
	"graph-theory",
}

// Lesson returns a built-in lesson by name.
func Lesson(name string) (*core.Lesson, error) {
	switch name {
	case "training":
		return game.TrainingLesson(), nil
	case "topologies":
		return FamilyLesson(patterns.FamilyTopology)
	case "attack":
		return FamilyLesson(patterns.FamilyAttack)
	case "security-defense-deterrence":
		return FamilyLesson(patterns.FamilySDD)
	case "ddos":
		return FamilyLesson(patterns.FamilyDDoS)
	case "graph-theory":
		return FamilyLesson(patterns.FamilyGraph)
	default:
		return nil, fmt.Errorf("modules: unknown lesson %q (have %s)", name, strings.Join(LessonNames, ", "))
	}
}

// AllLessons returns every built-in lesson in curriculum order.
func AllLessons() ([]*core.Lesson, error) {
	var out []*core.Lesson
	for _, name := range LessonNames {
		l, err := Lesson(name)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// Curriculum concatenates every built-in lesson into one long
// lesson: the "core unit as part of a formal course" configuration.
func Curriculum() (*core.Lesson, error) {
	lessons, err := AllLessons()
	if err != nil {
		return nil, err
	}
	combined := &core.Lesson{Name: "curriculum"}
	for _, l := range lessons {
		combined.Modules = append(combined.Modules, l.Modules...)
	}
	return combined, nil
}
