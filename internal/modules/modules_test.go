package modules

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/patterns"
	"repro/internal/quiz"
)

func TestAllLessonsValid(t *testing.T) {
	lessons, err := AllLessons()
	if err != nil {
		t.Fatal(err)
	}
	if len(lessons) != len(LessonNames) {
		t.Fatalf("lessons = %d", len(lessons))
	}
	total := 0
	for _, l := range lessons {
		if issues := l.Validate(); !issues.OK() {
			t.Errorf("lesson %s invalid:\n%s", l.Name, issues.Errs())
		}
		total += l.Len()
	}
	// training(1) + topologies(4) + attack(4) + sdd(3) + ddos(4) +
	// graph(9) = 25.
	if total != 25 {
		t.Errorf("total modules = %d, want 25", total)
	}
}

func TestFromEntryAnswers(t *testing.T) {
	for _, e := range patterns.Catalog() {
		m, err := FromEntry(e)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if m.Question != StandardQuestion {
			t.Errorf("%s: question %q", e.ID, m.Question)
		}
		if len(m.Answers) != core.RecommendedAnswerCount {
			t.Errorf("%s: %d answers", e.ID, len(m.Answers))
		}
		if m.Answers[m.CorrectAnswerElement] != e.Title {
			t.Errorf("%s: correct answer %q, want %q", e.ID,
				m.Answers[m.CorrectAnswerElement], e.Title)
		}
		// Distractors come from the same family.
		pool := map[string]bool{}
		for _, title := range patterns.FamilyTitles(e.Family) {
			pool[title] = true
		}
		for _, a := range m.Answers {
			if !pool[a] {
				t.Errorf("%s: answer %q not in family pool", e.ID, a)
			}
		}
	}
}

// TestCorrectAnswerPositionVaries: the authored correct index must
// not be the same for every module of a family with >3 concepts.
func TestCorrectAnswerPositionVaries(t *testing.T) {
	positions := map[int]bool{}
	for _, e := range patterns.ByFamily(patterns.FamilyGraph) {
		m, err := FromEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		positions[m.CorrectAnswerElement] = true
	}
	if len(positions) < 2 {
		t.Errorf("correct answer always at the same position: %v", positions)
	}
}

func TestLessonLookup(t *testing.T) {
	for _, name := range LessonNames {
		l, err := Lesson(name)
		if err != nil {
			t.Errorf("Lesson(%s): %v", name, err)
			continue
		}
		if l.Len() == 0 {
			t.Errorf("lesson %s empty", name)
		}
	}
	if _, err := Lesson("nope"); err == nil {
		t.Error("unknown lesson accepted")
	}
}

func TestCurriculumOrdering(t *testing.T) {
	c, err := Curriculum()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 25 {
		t.Fatalf("curriculum has %d modules", c.Len())
	}
	if c.Modules[0].Name != game.TrainingModuleName {
		t.Errorf("curriculum does not start with training: %q", c.Modules[0].Name)
	}
}

// TestCurriculumFullyPlayable: play the entire curriculum answering
// correctly; every module must load, complete, and score.
func TestCurriculumFullyPlayable(t *testing.T) {
	c, err := Curriculum()
	if err != nil {
		t.Fatal(err)
	}
	g, err := game.New(c, "integration", rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	answers := []game.Action{game.ActionAnswer1, game.ActionAnswer2, game.ActionAnswer3}
	for !g.Done() {
		switch g.Phase() {
		case game.PhasePlaying:
			g.Update(game.ActionFillAll)
			for g.Phase() == game.PhasePlaying {
				g.Update(game.ActionNext)
			}
		case game.PhaseQuestion:
			q, _ := g.Question()
			g.Update(answers[q.CorrectOption])
		case game.PhaseModuleDone:
			g.Update(game.ActionNext)
		}
	}
	if g.Session().Answered() != 25 {
		t.Errorf("answered %d questions, want 25", g.Session().Answered())
	}
	if g.Session().Score() != 1.0 {
		t.Errorf("perfect play scored %f", g.Session().Score())
	}
}

// TestModulesSurviveZipRoundTrip: the whole curriculum round-trips
// through the zip format losslessly.
func TestModulesSurviveZipRoundTrip(t *testing.T) {
	c, err := Curriculum()
	if err != nil {
		t.Fatal(err)
	}
	var buf writerBuffer
	if err := c.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadZip("curriculum", buf.data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("reloaded %d modules, want %d", back.Len(), c.Len())
	}
	for i := range c.Modules {
		if !c.Modules[i].Equal(back.Modules[i]) {
			t.Errorf("module %d (%s) changed", i, c.Modules[i].Name)
		}
	}
}

// writerBuffer is a minimal io.Writer accumulating bytes.
type writerBuffer struct{ data []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

// TestShuffledModuleQuestionsGradeCorrectly: for every module,
// shuffling with many seeds always keeps grading consistent.
func TestShuffledModuleQuestionsGradeCorrectly(t *testing.T) {
	c, err := Curriculum()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Modules {
		q, ok := m.Quiz()
		if !ok {
			continue
		}
		for seed := int64(0); seed < 10; seed++ {
			p := quiz.Shuffle(q, rand.New(rand.NewSource(seed)))
			correct, err := p.Grade(p.CorrectOption)
			if err != nil || !correct {
				t.Fatalf("%s seed %d: grading broken", m.Name, seed)
			}
			if p.Options[p.CorrectOption] != q.CorrectText() {
				t.Fatalf("%s seed %d: correct text mismatch", m.Name, seed)
			}
		}
	}
}
