// Package router shards the service core horizontally: a consistent
// hash ring maps canonical request keys (netsim.SpecString plus
// normalized parameters — the same identity the result cache uses)
// onto a fleet of api.Service workers, and a Pool fronts that fleet
// with the full api.Core surface. The same spec always lands on the
// same worker, so worker-local caches and singleflight coalescing
// keep composing across clients; adding or removing a worker moves
// only ~K/N of the keyspace (the consistent-hashing guarantee the
// ring property tests pin), so warm cache entries largely survive
// fleet resizes.
package router

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/api"
)

// ErrEmptyRing reports a Pick against a ring with no live workers —
// a fleet of zero cannot own any key. In-process pools never build
// one (NewPool clamps to at least one worker and has no removal
// path), but a cluster proxy whose every backend has been removed
// legitimately reaches this state; front-ends surface it as HTTP 503
// rather than panicking the process.
var ErrEmptyRing = errors.New("router: empty ring: no live workers")

// DefaultReplicas is the virtual-node count per worker. More vnodes
// smooth the keyspace split (the expected per-worker load imbalance
// shrinks like 1/√replicas) at the cost of a longer sorted point
// list; 128 keeps the max/mean load under ~1.3 for small fleets.
const DefaultReplicas = 128

// point is one virtual node: a position on the ring and the worker
// that owns the arc ending there.
type point struct {
	hash   uint64
	worker int
}

// Ring is a consistent hash ring over integer worker indices. The
// zero value is unusable; build with NewRing. Ring is not safe for
// concurrent mutation (Add/Remove); Pick is read-only and safe to
// call concurrently once the ring is built.
type Ring struct {
	replicas int
	points   []point // sorted by hash
	workers  map[int]bool
}

// RingOption configures a Ring under construction.
type RingOption func(*Ring)

// WithReplicas sets the virtual-node count per worker (minimum 1).
func WithReplicas(n int) RingOption {
	return func(r *Ring) {
		if n > 0 {
			r.replicas = n
		}
	}
}

// NewRing builds a ring over workers 0..n-1.
func NewRing(n int, opts ...RingOption) *Ring {
	r := &Ring{replicas: DefaultReplicas, workers: map[int]bool{}}
	for _, opt := range opts {
		opt(r)
	}
	for w := 0; w < n; w++ {
		r.Add(w)
	}
	return r
}

// vnodeHash positions one of a worker's virtual nodes. api.KeyHash
// is the same avalanche-finalized hash the cache stripes use, so
// vnode positions and key positions draw from one well-mixed space.
func vnodeHash(worker, replica int) uint64 {
	return api.KeyHash(fmt.Sprintf("worker/%d/vnode/%d", worker, replica))
}

// Add inserts a worker's virtual nodes. Adding an existing worker is
// a no-op, so rebuilding a ring from a worker list is idempotent.
func (r *Ring) Add(worker int) {
	if r.workers[worker] {
		return
	}
	r.workers[worker] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: vnodeHash(worker, i), worker: worker})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a worker's virtual nodes; keys it owned fall to the
// next vnode clockwise, and every other key keeps its worker — the
// bounded-movement half of the consistency property.
func (r *Ring) Remove(worker int) {
	if !r.workers[worker] {
		return
	}
	delete(r.workers, worker)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != worker {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Size reports the live worker count.
func (r *Ring) Size() int { return len(r.workers) }

// Pick returns the worker owning key: the first virtual node at or
// clockwise after the key's hash. A single-worker ring always
// returns that worker. An empty ring — zero workers, or every worker
// removed — returns ErrEmptyRing instead of panicking, so a proxy
// drained of backends degrades to 503s rather than crashing.
func (r *Ring) Pick(key string) (int, error) {
	if len(r.points) == 0 {
		return 0, ErrEmptyRing
	}
	h := api.KeyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest vnode
	}
	return r.points[i].worker, nil
}
