package router

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/player"
)

// Pool fronts N in-process api.Service workers with one api.Core
// surface. Request methods route by the request's canonical
// RouteKey through the consistent hash ring, so every spelling of
// one run — and its batch, analyze, and stream variants — lands on
// one worker and shares that worker's cache, singleflight group, and
// arena. Observability methods fan out: Sessions merges every
// worker's in-flight list (IDs are process-unique because all
// workers share one session ID source), CancelSession broadcasts,
// and Stats reports per-worker per-shard detail.
type Pool struct {
	ring    *Ring
	workers []*api.Service
}

var _ api.Core = (*Pool)(nil)

// NewPool builds a fleet of n workers (minimum 1), each configured
// with opts plus a shared session ID source and a shared player
// engine: player state is mutable per-user data, so every worker
// must see the same store and attempt registry (an api.WithPlayers
// in opts overrides the default shared engine on all workers alike).
func NewPool(n int, opts ...api.Option) *Pool {
	if n < 1 {
		n = 1
	}
	ids := new(atomic.Int64)
	players := player.NewEngine(player.NewMemStore())
	p := &Pool{ring: NewRing(n), workers: make([]*api.Service, n)}
	for i := range p.workers {
		p.workers[i] = api.New(append([]api.Option{api.WithSessionIDs(ids), api.WithPlayers(players)}, opts...)...)
	}
	return p
}

// Size reports the worker count.
func (p *Pool) Size() int { return len(p.workers) }

// Worker returns the worker that owns key — exported for tests and
// for front-ends that want to inspect routing. A pool ring is never
// empty (NewPool clamps to at least one worker and pools have no
// removal path — pinned by TestPoolNeverBuildsAnEmptyRing), so an
// ErrEmptyRing here is an unreachable invariant violation, not a
// servable condition.
func (p *Pool) Worker(key string) *api.Service {
	w, err := p.ring.Pick(key)
	if err != nil {
		panic("router: pool ring unexpectedly empty: " + err.Error())
	}
	return p.workers[w]
}

// Generate routes the request to its spec's worker.
func (p *Pool) Generate(ctx context.Context, req api.GenerateRequest) (*api.GenerateResult, error) {
	return p.Worker(req.RouteKey()).Generate(ctx, req)
}

// GenerateStream routes the stream to the same worker the batch
// request would use, keeping arena and session locality.
func (p *Pool) GenerateStream(ctx context.Context, req api.GenerateRequest, emit func(api.StreamFrame) error) error {
	return p.Worker(req.RouteKey()).GenerateStream(ctx, req, emit)
}

// Analyze routes spec-path requests with their generate identity (so
// they share the cached run) and matrix posts by shape.
func (p *Pool) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResult, error) {
	return p.Worker(req.RouteKey()).Analyze(ctx, req)
}

// Module routes by the module's cache identity.
func (p *Pool) Module(ctx context.Context, req api.ModuleRequest) (*core.Module, error) {
	return p.Worker(req.RouteKey()).Module(ctx, req)
}

// Campaign routes by the campaign's cache identity.
func (p *Pool) Campaign(ctx context.Context, req api.CampaignRequest) (*bridge.Campaign, error) {
	return p.Worker(req.RouteKey()).Campaign(ctx, req)
}

// Player methods route by player identity — every request touching
// one player lands on one worker. The engine behind them is shared
// across the fleet (see NewPool), so the routing is about request
// locality, not state partitioning; it mirrors how a cluster of
// separate processes genuinely partitions players.

// PlayerCreate routes by player identity.
func (p *Pool) PlayerCreate(ctx context.Context, req api.PlayerCreateRequest) (*api.PlayerResult, error) {
	return p.Worker(req.RouteKey()).PlayerCreate(ctx, req)
}

// PlayerGet routes by player identity.
func (p *Pool) PlayerGet(ctx context.Context, req api.PlayerGetRequest) (*api.PlayerResult, error) {
	return p.Worker(req.RouteKey()).PlayerGet(ctx, req)
}

// PlayerAttemptStart routes by player identity.
func (p *Pool) PlayerAttemptStart(ctx context.Context, req api.AttemptStartRequest) (*api.AttemptResult, error) {
	return p.Worker(req.RouteKey()).PlayerAttemptStart(ctx, req)
}

// PlayerAttemptSubmit routes by player identity.
func (p *Pool) PlayerAttemptSubmit(ctx context.Context, req api.AttemptSubmitRequest) (*api.SubmitResult, error) {
	return p.Worker(req.RouteKey()).PlayerAttemptSubmit(ctx, req)
}

// PlayerProgress routes by player identity.
func (p *Pool) PlayerProgress(ctx context.Context, req api.ProgressRequest) (*api.ProgressResult, error) {
	return p.Worker(req.RouteKey()).PlayerProgress(ctx, req)
}

// PlayerMastery reads the shared engine; any worker sees every
// player, so the first answers (no fan-merge — merging per-worker
// reads of one shared store would double count).
func (p *Pool) PlayerMastery(ctx context.Context) (*api.MasteryResult, error) {
	return p.workers[0].PlayerMastery(ctx)
}

// Catalog is identical on every worker; the first answers.
func (p *Pool) Catalog(ctx context.Context) *api.CatalogResult {
	return p.workers[0].Catalog(ctx)
}

// Sessions merges every worker's in-flight sessions, ordered by ID
// (process-unique, so the merge is a plain sort).
func (p *Pool) Sessions() []api.SessionInfo {
	var out []api.SessionInfo
	for _, w := range p.workers {
		out = append(out, w.Sessions()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CancelSession broadcasts the cancel: IDs are process-unique, so at
// most one worker holds the session.
func (p *Pool) CancelSession(id int64) bool {
	for _, w := range p.workers {
		if w.CancelSession(id) {
			return true
		}
	}
	return false
}

// CacheStats aggregates the fleet's cache counters. The Shards
// breakdown here is per *worker* (each entry a worker's own
// aggregate, its per-stripe detail elided); /v1/stats carries the
// full worker × stripe matrix.
func (p *Pool) CacheStats() api.CacheStats {
	var agg api.CacheStats
	agg.Shards = make([]api.CacheStats, len(p.workers))
	for i, w := range p.workers {
		st := w.CacheStats()
		st.Shards = nil
		agg.Shards[i] = st
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Len += st.Len
		agg.Capacity += st.Capacity
	}
	return agg
}

// Stats reports the full per-worker, per-shard breakdown.
func (p *Pool) Stats() api.StatsReport {
	rep := api.StatsReport{Version: api.Version, Workers: make([]api.WorkerStats, len(p.workers))}
	for i, w := range p.workers {
		rep.Workers[i] = api.WorkerStats{
			Worker:   i,
			Cache:    w.CacheStats(),
			Sessions: w.SessionCount(),
			Arena:    w.ArenaStats(),
		}
	}
	return rep
}
