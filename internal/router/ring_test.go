package router

import (
	"errors"
	"fmt"
	"testing"
)

// mustPick resolves a key on a ring the test knows is non-empty.
func mustPick(t *testing.T, r *Ring, key string) int {
	t.Helper()
	w, err := r.Pick(key)
	if err != nil {
		t.Fatalf("Pick(%q): %v", key, err)
	}
	return w
}

// TestRingEmptyPickErrors: a zero-worker ring and a fully-removed
// ring both answer Pick with ErrEmptyRing — never a panic or an
// index-out-of-range — so a proxy drained of backends can turn the
// condition into a 503.
func TestRingEmptyPickErrors(t *testing.T) {
	empty := NewRing(0)
	if _, err := empty.Pick("any-key"); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("Pick on zero-worker ring: err = %v, want ErrEmptyRing", err)
	}

	drained := NewRing(3)
	for w := 0; w < 3; w++ {
		drained.Remove(w)
	}
	if drained.Size() != 0 {
		t.Fatalf("size after removing every worker = %d", drained.Size())
	}
	if _, err := drained.Pick("any-key"); !errors.Is(err, ErrEmptyRing) {
		t.Fatalf("Pick on fully-removed ring: err = %v, want ErrEmptyRing", err)
	}

	// Recovery: adding a worker back makes the ring servable again.
	drained.Add(1)
	if w := mustPick(t, drained, "any-key"); w != 1 {
		t.Fatalf("recovered ring picked worker %d, want 1", w)
	}
}

// TestPoolNeverBuildsAnEmptyRing pins the invariant Pool.Worker
// relies on: every NewPool size, including nonsense sizes, yields at
// least one worker, so in-process pools can never see ErrEmptyRing.
func TestPoolNeverBuildsAnEmptyRing(t *testing.T) {
	for _, n := range []int{-1, 0, 1, 4} {
		p := NewPool(n)
		if p.Size() < 1 {
			t.Fatalf("NewPool(%d) built %d workers", n, p.Size())
		}
		if w := p.Worker("some-key"); w == nil {
			t.Fatalf("NewPool(%d).Worker returned nil", n)
		}
	}
}

// testKeys builds K canonical-shaped keys like the ones the service
// actually routes.
func testKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("v1|gen|spec=overlay(background,scan-%d)|n=%d|seed=%d|dur=40|rate=8|scale=4|win=10",
			i%97, 10+i%500, i)
	}
	return keys
}

// TestRingPickDeterministic: the same key on the same fleet always
// lands on the same worker, across repeated picks and across
// independently built rings — the property that lets any front-end
// replica route identically without coordination.
func TestRingPickDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		a, b := NewRing(n), NewRing(n)
		for _, key := range testKeys(500) {
			w := mustPick(t, a, key)
			if w < 0 || w >= n {
				t.Fatalf("n=%d: Pick(%q) = %d, out of range", n, key, w)
			}
			if mustPick(t, a, key) != w || mustPick(t, b, key) != w {
				t.Fatalf("n=%d: Pick(%q) unstable across picks or ring builds", n, key)
			}
		}
	}
}

// TestRingSingleWorkerOwnsEverything: a 1-worker ring is the
// degenerate identity the single-vs-sharded parity suite leans on.
func TestRingSingleWorkerOwnsEverything(t *testing.T) {
	r := NewRing(1)
	for _, key := range testKeys(100) {
		if w := mustPick(t, r, key); w != 0 {
			t.Fatalf("1-worker ring sent %q to worker %d", key, w)
		}
	}
}

// TestRingDistribution: with DefaultReplicas vnodes the keyspace
// split is usably even — every worker owns real load, and no worker
// owns more than ~2× its fair share.
func TestRingDistribution(t *testing.T) {
	const K = 20000
	for _, n := range []int{2, 4, 8} {
		r := NewRing(n)
		counts := make([]int, n)
		for _, key := range testKeys(K) {
			counts[mustPick(t, r, key)]++
		}
		fair := K / n
		for w, c := range counts {
			if c < fair/3 {
				t.Errorf("n=%d: worker %d owns %d of %d keys (fair %d) — starved", n, w, c, K, fair)
			}
			if c > 2*fair {
				t.Errorf("n=%d: worker %d owns %d of %d keys (fair %d) — overloaded", n, w, c, K, fair)
			}
		}
	}
}

// TestRingBoundedMovementOnGrow is the consistent-hashing property
// the tentpole names: growing the fleet from N to N+1 moves at most
// ~K/(N+1) keys (we allow 2× for vnode variance), and every moved
// key moves *to the new worker* — no key shuffles between old
// workers.
func TestRingBoundedMovementOnGrow(t *testing.T) {
	const K = 20000
	keys := testKeys(K)
	for _, n := range []int{1, 2, 4, 7} {
		before := NewRing(n)
		owners := make([]int, K)
		for i, key := range keys {
			owners[i] = mustPick(t, before, key)
		}
		after := NewRing(n)
		after.Add(n) // grow to n+1
		moved := 0
		for i, key := range keys {
			w := mustPick(t, after, key)
			if w != owners[i] {
				moved++
				if w != n {
					t.Fatalf("n=%d→%d: key %q moved from worker %d to OLD worker %d", n, n+1, key, owners[i], w)
				}
			}
		}
		limit := 2 * K / (n + 1)
		if moved > limit {
			t.Errorf("n=%d→%d: %d of %d keys moved, want ≤ %d (~K/N)", n, n+1, moved, K, limit)
		}
		if moved == 0 {
			t.Errorf("n=%d→%d: no keys moved; the new worker owns nothing", n, n+1)
		}
	}
}

// TestRingRemoveRestoresAssignments: removing a worker scatters only
// its keys to survivors, and re-adding it restores the original
// assignment exactly — vnode positions are a pure function of the
// worker index.
func TestRingRemoveRestoresAssignments(t *testing.T) {
	const K = 5000
	keys := testKeys(K)
	r := NewRing(4)
	owners := make([]int, K)
	for i, key := range keys {
		owners[i] = mustPick(t, r, key)
	}
	r.Remove(2)
	if r.Size() != 3 {
		t.Fatalf("size after remove = %d", r.Size())
	}
	for i, key := range keys {
		w := mustPick(t, r, key)
		if owners[i] != 2 && w != owners[i] {
			t.Fatalf("key %q owned by %d moved to %d when worker 2 left", key, owners[i], w)
		}
		if owners[i] == 2 && w == 2 {
			t.Fatalf("key %q still routed to removed worker 2", key)
		}
	}
	r.Add(2)
	for i, key := range keys {
		if w := mustPick(t, r, key); w != owners[i] {
			t.Fatalf("key %q owner %d not restored after re-add (got %d)", key, owners[i], w)
		}
	}
}
