package router

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/netsim"
)

// paritySpecs is the acceptance surface: every catalog scenario plus
// composed mixtures exercising the algebra.
func paritySpecs(t *testing.T) []string {
	t.Helper()
	var specs []string
	for _, s := range netsim.Scenarios() {
		specs = append(specs, s.Name())
	}
	return append(specs,
		"overlay(background, sequence(scan, ddos))",
		"amplify(sequence(beacon@5s, exfil), 3)",
	)
}

// resultFingerprint serializes everything bit-identity covers: the
// full wire form (with dense cells so every matrix entry is
// compared), minus the per-run wall-clock timings and cache marker.
func resultFingerprint(t *testing.T, res *api.GenerateResult) string {
	t.Helper()
	cp := *res
	cp.Timings = api.Timings{}
	cp.CacheHit = false
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPoolParitySingleVsSharded is the tentpole acceptance: a
// 4-worker sharded pool returns bit-identical results to a 1-worker
// pool for the whole catalog and composed specs.
func TestPoolParitySingleVsSharded(t *testing.T) {
	single := NewPool(1, api.WithShards(1))
	sharded := NewPool(4)
	for _, spec := range paritySpecs(t) {
		req := api.NewGenerateRequest(spec,
			api.WithSeed(5), api.WithHosts(20), api.WithParams(6, 20, 1),
			api.WithWindow(3), api.WithMatrices())
		a, err := single.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: single: %v", spec, err)
		}
		b, err := sharded.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: sharded: %v", spec, err)
		}
		if resultFingerprint(t, a) != resultFingerprint(t, b) {
			t.Errorf("%s: sharded result differs from single-worker result", spec)
		}
	}
}

// TestPoolStreamParity: the streamed frames through a sharded pool
// match the single pool frame for frame (timings elided).
func TestPoolStreamParity(t *testing.T) {
	req := api.NewGenerateRequest("overlay(background, sequence(scan, ddos))",
		api.WithSeed(9), api.WithHosts(20), api.WithParams(8, 20, 1), api.WithWindow(2))
	collect := func(p *Pool) []string {
		var frames []string
		err := p.GenerateStream(context.Background(), req, func(f api.StreamFrame) error {
			if f.Summary != nil {
				cp := *f.Summary
				cp.Timings = api.Timings{}
				f.Summary = &cp
			}
			b, err := json.Marshal(f)
			if err != nil {
				return err
			}
			frames = append(frames, string(b))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return frames
	}
	a, b := collect(NewPool(1, api.WithShards(1))), collect(NewPool(4))
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("frame %d differs:\nsingle:  %s\nsharded: %s", i, a[i], b[i])
		}
	}
}

// TestPoolRoutesRespellingsToOneWorker: every spelling of one run
// hashes to one worker, so the second spelling is a cache hit even
// though each worker has a private cache.
func TestPoolRoutesRespellingsToOneWorker(t *testing.T) {
	p := NewPool(4)
	base := api.NewGenerateRequest("overlay(background, sequence(scan, ddos))",
		api.WithSeed(7), api.WithHosts(20), api.WithParams(6, 20, 1))
	respelled := api.NewGenerateRequest("  overlay( background ,sequence( scan,ddos ) ) ",
		api.WithSeed(7), api.WithHosts(20), api.WithParams(6, 20, 1))

	cold, err := p.Generate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	warm, err := p.Generate(context.Background(), respelled)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("respelled spec missed the cache: router sent it to a different worker")
	}

	// Cross-method affinity: an Analyze of the same spec shares the
	// worker — and therefore the cached run — of the windowless
	// Generate it desugars to.
	if _, err := p.Generate(context.Background(), api.NewGenerateRequest("ddos", api.WithSeed(3))); err != nil {
		t.Fatal(err)
	}
	ares, err := p.Analyze(context.Background(), api.AnalyzeRequest{Spec: "ddos", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ares.CacheHit {
		t.Error("analyze of a generated spec missed the cache: route keys diverged")
	}
}

// TestPoolSpreadsSpecsAcrossWorkers: distinct specs do not all pile
// onto one worker — over the catalog plus seeds, at least two of
// four workers see traffic (with 128 vnodes the real spread is much
// better; this is the safety floor).
func TestPoolSpreadsSpecsAcrossWorkers(t *testing.T) {
	p := NewPool(4)
	seen := map[*api.Service]bool{}
	for i := 0; i < 32; i++ {
		req := api.NewGenerateRequest("background", api.WithSeed(int64(i)), api.WithHosts(10+i))
		seen[p.Worker(req.RouteKey())] = true
	}
	if len(seen) < 2 {
		t.Errorf("32 distinct requests all routed to %d worker(s)", len(seen))
	}
}

// slowPoolScenario mirrors the api package's slow scenario so pool
// session tests have something long-running to observe and cancel.
type slowPoolScenario struct{}

func (slowPoolScenario) Name() string                              { return "router-slow-test" }
func (slowPoolScenario) Description() string                       { return "slow scenario for router tests" }
func (slowPoolScenario) Shape() string                             { return "one cell, slowly" }
func (slowPoolScenario) Chunks(*netsim.Network, netsim.Params) int { return 400 }
func (slowPoolScenario) Emit(net *netsim.Network, rng *rand.Rand, p netsim.Params, chunk int, emit func(netsim.Event)) error {
	time.Sleep(5 * time.Millisecond)
	emit(netsim.Event{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1})
	return nil
}

var registerSlowPool sync.Once

func slowPoolSpec(t *testing.T) string {
	t.Helper()
	registerSlowPool.Do(func() {
		if err := netsim.Register(slowPoolScenario{}); err != nil {
			t.Fatal(err)
		}
	})
	return "router-slow-test"
}

// TestPoolSessionsMergeAndCancel: concurrent in-flight runs on a
// sharded pool surface in one merged ID-sorted session list with
// process-unique IDs, and pool-level CancelSession finds a session
// whichever worker holds it.
func TestPoolSessionsMergeAndCancel(t *testing.T) {
	spec := slowPoolSpec(t)
	p := NewPool(4)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds → distinct keys → (very likely) several
			// workers; each run is slow enough to observe.
			_, errs[i] = p.Generate(context.Background(),
				api.NewGenerateRequest(spec, api.WithSeed(int64(i)), api.WithWorkers(1)))
		}(i)
	}

	var sessions []api.SessionInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		sessions = p.Sessions()
		if len(sessions) == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(sessions) != 3 {
		t.Fatalf("pool reports %d sessions, want 3", len(sessions))
	}
	ids := map[int64]bool{}
	for i, s := range sessions {
		if ids[s.ID] {
			t.Fatalf("duplicate session ID %d across workers", s.ID)
		}
		ids[s.ID] = true
		if i > 0 && sessions[i-1].ID > s.ID {
			t.Fatalf("merged session list not sorted by ID: %+v", sessions)
		}
	}

	// Cancel them all through the pool façade.
	for _, s := range sessions {
		if !p.CancelSession(s.ID) {
			t.Errorf("CancelSession(%d) found nothing", s.ID)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, api.ErrSessionCancelled) {
			t.Errorf("run %d: err = %v, want ErrSessionCancelled", i, err)
		}
	}
	if got := p.Sessions(); len(got) != 0 {
		t.Errorf("pool still reports %d sessions after cancel", len(got))
	}
	if p.CancelSession(sessions[0].ID) {
		t.Error("CancelSession found a finished session")
	}
}

// TestPoolStatsShape: /v1/stats carries one entry per worker with
// the per-stripe cache breakdown, and the pool-level CacheStats
// aggregates worker totals.
func TestPoolStatsShape(t *testing.T) {
	p := NewPool(4, api.WithCacheCapacity(32))
	for i := 0; i < 6; i++ {
		if _, err := p.Generate(context.Background(),
			api.NewGenerateRequest("scan", api.WithSeed(int64(i)), api.WithParams(2, 10, 1))); err != nil {
			t.Fatal(err)
		}
	}
	rep := p.Stats()
	if rep.Version != api.Version || len(rep.Workers) != 4 {
		t.Fatalf("stats report = version %q, %d workers", rep.Version, len(rep.Workers))
	}
	totalLen := 0
	for i, w := range rep.Workers {
		if w.Worker != i {
			t.Errorf("worker %d labeled %d", i, w.Worker)
		}
		if len(w.Cache.Shards) == 0 {
			t.Errorf("worker %d stats carry no per-shard cache breakdown", i)
		}
		totalLen += w.Cache.Len
	}
	if totalLen != 6 {
		t.Errorf("workers hold %d cached runs total, want 6", totalLen)
	}
	agg := p.CacheStats()
	if agg.Len != 6 || len(agg.Shards) != 4 || agg.Capacity != 4*32 {
		t.Errorf("pool CacheStats = len %d, %d worker entries, capacity %d", agg.Len, len(agg.Shards), agg.Capacity)
	}
}
