package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomCOO fills a COO with n random triples (duplicates likely) in
// a rows×cols space, values in [-2, 7].
func randomCOO(rng *rand.Rand, rows, cols, n int) *COO {
	c := NewCOO(rows, cols)
	for k := 0; k < n; k++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), rng.Intn(10)-2)
	}
	return c
}

func TestMergeCOOMatchesSerialSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := []*COO{
		randomCOO(rng, 16, 16, 300),
		randomCOO(rng, 16, 16, 1),
		NewCOO(16, 16), // empty shard
		randomCOO(rng, 16, 16, 120),
	}
	// The reference: all triples through one serial Compact.
	reference := NewCOO(16, 16)
	for _, p := range parts {
		for _, e := range p.Entries() {
			reference.Add(e.Row, e.Col, e.Val)
		}
	}
	reference.Compact()
	merged, err := MergeCOO(parts[0], nil, parts[1], parts[2], parts[3])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Entries(), reference.Entries()) {
		t.Error("merged entries differ from serial compaction")
	}
	if merged.Rows() != 16 || merged.Cols() != 16 {
		t.Errorf("merged dims %dx%d", merged.Rows(), merged.Cols())
	}
}

func TestMergeCOOSinglePartAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	solo := randomCOO(rng, 8, 8, 50)
	want := NewCOO(8, 8)
	for _, e := range solo.Entries() {
		want.Add(e.Row, e.Col, e.Val)
	}
	want.Compact()
	merged, err := MergeCOO(solo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Entries(), want.Entries()) {
		t.Error("single-part merge differs from compaction")
	}
	if _, err := MergeCOO(); err == nil {
		t.Error("merge of nothing accepted")
	}
	if _, err := MergeCOO(nil, nil); err == nil {
		t.Error("merge of only nils accepted")
	}
	if _, err := MergeCOO(NewCOO(4, 4), NewCOO(4, 5)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMergeCOOCancelsToZero(t *testing.T) {
	a := NewCOO(4, 4)
	a.Add(1, 2, 5)
	b := NewCOO(4, 4)
	b.Add(1, 2, -5)
	b.Add(0, 0, 3)
	merged, err := MergeCOO(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Row: 0, Col: 0, Val: 3}}
	if !reflect.DeepEqual(merged.Entries(), want) {
		t.Errorf("entries = %v, want %v", merged.Entries(), want)
	}
}

func TestCompactParallelMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Enough entries to cross the parallel path's minimum segment
	// size, in a small coordinate space to force heavy duplication.
	const n = 20000
	serial := randomCOO(rng, 32, 32, 0)
	parallel := NewCOO(32, 32)
	for k := 0; k < n; k++ {
		i, j, v := rng.Intn(32), rng.Intn(32), rng.Intn(9)-1
		serial.Add(i, j, v)
		parallel.Add(i, j, v)
	}
	serial.Compact()
	parallel.CompactParallel(4)
	if !reflect.DeepEqual(serial.Entries(), parallel.Entries()) {
		t.Error("parallel compaction differs from serial")
	}
	// Small inputs and degenerate worker counts fall back to the
	// serial path.
	small := NewCOO(8, 8)
	small.Add(2, 2, 1)
	small.Add(2, 2, 2)
	small.CompactParallel(8)
	if got := small.Entries(); len(got) != 1 || got[0].Val != 3 {
		t.Errorf("small fallback entries = %v", got)
	}
	empty := NewCOO(8, 8)
	empty.CompactParallel(0)
	if empty.Len() != 0 {
		t.Error("empty compaction grew entries")
	}
}

func TestCompactParallelIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := randomCOO(rng, 64, 64, 30000)
	c.CompactParallel(3)
	once := c.Entries()
	c.CompactParallel(3)
	if !reflect.DeepEqual(once, c.Entries()) {
		t.Error("second compaction changed entries")
	}
}
