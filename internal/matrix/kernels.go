package matrix

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Parallel semiring kernels over the CSR representation. Every
// kernel shards its work by contiguous row bands — the same
// decomposition CompactParallel uses for its sort segments — so each
// goroutine writes a private output region and the results stitch
// together without locks. All kernels are deterministic: the output
// is identical for any worker count, which the kernel tests pin.
//
// Sparse semiring semantics: cells a representation does not store
// are the semiring's additive identity (Zero). Results equal to Zero
// stay implicit, so for semirings whose Zero is not the integer 0
// (MaxPlus) a densified product differs from the dense kernel
// exactly on the cells no term contributed to — the standard
// GraphBLAS convention. The representation itself additionally
// reserves the integer 0 for absent cells (At returns 0, Row visits
// only non-zero values, compaction drops zeros), so results equal to
// 0 also stay implicit even when 0 is a meaningful value in the
// semiring — MaxPlus path weights that sum to exactly 0 are
// indistinguishable from absent paths, by the same rule that drops
// them everywhere else in this package.

// resolveWorkers maps the workers argument onto a concrete goroutine
// count: ≤ 0 selects runtime.NumCPU(), and the count never exceeds
// rows (one band per row at most).
func resolveWorkers(workers, rows int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// rowBands splits [0,rows) into at most workers contiguous
// near-equal bands.
func rowBands(rows, workers int) [][2]int {
	workers = resolveWorkers(workers, rows)
	bands := make([][2]int, 0, workers)
	size := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += size {
		hi := lo + size
		if hi > rows {
			hi = rows
		}
		bands = append(bands, [2]int{lo, hi})
	}
	if len(bands) == 0 {
		bands = append(bands, [2]int{0, 0})
	}
	return bands
}

// parallelBands runs fn over each row band on its own goroutine. The
// caller supplies the band list (from rowBands), so kernels that
// stitch per-band output segments index them by the same bands the
// goroutines actually ran over.
func parallelBands(bands [][2]int, fn func(band int, lo, hi int)) {
	if len(bands) == 1 {
		fn(0, bands[0][0], bands[0][1])
		return
	}
	var wg sync.WaitGroup
	for b, span := range bands {
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			fn(b, lo, hi)
		}(b, span[0], span[1])
	}
	wg.Wait()
}

// MatVecSemiring computes y = m⊗x over the semiring s (SpMV),
// sharded across row bands. y[i] is s.Zero for rows with no stored
// entries. workers ≤ 0 selects runtime.NumCPU().
func (m *CSR) MatVecSemiring(x []int, s Semiring, workers int) ([]int, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("matrix: vector length %d does not match %d columns", len(x), m.cols)
	}
	y := make([]int, m.rows)
	parallelBands(rowBands(m.rows, workers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := s.Zero
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				acc = s.Add(acc, s.Mul(m.vals[k], x[m.colIdx[k]]))
			}
			y[i] = acc
		}
	})
	return y, nil
}

// MatMulCSR computes the sparse product C = a⊗b over the semiring s
// (SpGEMM) with Gustavson's row-by-row algorithm: each output row
// gathers its terms in a sparse accumulator, and row bands run in
// parallel, each emitting a private (counts, colIdx, vals) segment
// that is stitched into the final CSR. Cells whose accumulated value
// is s.Zero stay implicit. workers ≤ 0 selects runtime.NumCPU().
func MatMulCSR(a, b *CSR, s Semiring, workers int) (*CSR, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	bands := rowBands(a.rows, workers)
	segIdx := make([][]int, len(bands))
	segVals := make([][]int, len(bands))
	rowLen := make([]int, a.rows+1) // rowLen[i+1] = nnz of output row i
	parallelBands(bands, func(bi, lo, hi int) {
		// The sparse accumulator: acc holds gathered values, stamp
		// marks which columns are live for the current row.
		acc := make([]int, b.cols)
		stamp := make([]int, b.cols)
		for j := range stamp {
			stamp[j] = -1
		}
		var touched []int
		var outIdx, outVals []int
		for i := lo; i < hi; i++ {
			touched = touched[:0]
			for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
				av := a.vals[ka]
				arow := a.colIdx[ka]
				for kb := b.rowPtr[arow]; kb < b.rowPtr[arow+1]; kb++ {
					j := b.colIdx[kb]
					t := s.Mul(av, b.vals[kb])
					if stamp[j] != i {
						stamp[j] = i
						touched = append(touched, j)
						acc[j] = s.Add(s.Zero, t)
					} else {
						acc[j] = s.Add(acc[j], t)
					}
				}
			}
			sort.Ints(touched)
			for _, j := range touched {
				// Zero results are implicit; so are literal-0 results
				// (the representation's reserved absent value), which
				// keeps the Matrix accessor contract — Row visits only
				// non-zero values — intact for every semiring.
				if acc[j] == s.Zero || acc[j] == 0 {
					continue
				}
				outIdx = append(outIdx, j)
				outVals = append(outVals, acc[j])
				rowLen[i+1]++
			}
		}
		segIdx[bi] = outIdx
		segVals[bi] = outVals
	})
	for i := 0; i < a.rows; i++ {
		rowLen[i+1] += rowLen[i]
	}
	out := &CSR{
		rows:   a.rows,
		cols:   b.cols,
		rowPtr: rowLen,
		colIdx: make([]int, 0, rowLen[a.rows]),
		vals:   make([]int, 0, rowLen[a.rows]),
	}
	for bi := range bands {
		out.colIdx = append(out.colIdx, segIdx[bi]...)
		out.vals = append(out.vals, segVals[bi]...)
	}
	return out, nil
}

// TransposeParallel returns the transpose, splitting both the column
// count and the scatter across row bands. The entry order within
// every output row matches the serial Transpose (ascending source
// row), so the result is byte-identical for any worker count.
// workers ≤ 1 falls back to the serial kernel.
func (m *CSR) TransposeParallel(workers int) *CSR {
	workers = resolveWorkers(workers, m.rows)
	if workers <= 1 || len(m.vals) < 1<<12 {
		return m.Transpose()
	}
	bands := rowBands(m.rows, workers)
	// Per-band column histograms: hist[b][j] = entries of column j in
	// band b's rows.
	hist := make([][]int, len(bands))
	parallelBands(bands, func(b, lo, hi int) {
		h := make([]int, m.cols)
		for k := m.rowPtr[lo]; k < m.rowPtr[hi]; k++ {
			h[m.colIdx[k]]++
		}
		hist[b] = h
	})
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.vals)),
		vals:   make([]int, len(m.vals)),
	}
	for j := 0; j < m.cols; j++ {
		total := 0
		for b := range hist {
			total += hist[b][j]
		}
		t.rowPtr[j+1] = t.rowPtr[j] + total
	}
	// Band b writes column j's entries at rowPtr[j] plus the counts
	// of all earlier bands, preserving ascending source-row order.
	// The exclusive prefix over the histograms is computed once —
	// O(bands·cols) — and each band then owns its offset row as the
	// scatter cursor.
	base := make([][]int, len(bands))
	for b := range bands {
		base[b] = make([]int, m.cols)
		for j := 0; j < m.cols; j++ {
			if b == 0 {
				base[b][j] = t.rowPtr[j]
			} else {
				base[b][j] = base[b-1][j] + hist[b-1][j]
			}
		}
	}
	parallelBands(bands, func(b, lo, hi int) {
		next := base[b]
		for i := lo; i < hi; i++ {
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				j := m.colIdx[k]
				pos := next[j]
				next[j]++
				t.colIdx[pos] = i
				t.vals[pos] = m.vals[k]
			}
		}
	})
	return t
}

// ReduceRows folds every row's stored values with s.Add, sharded
// across row bands: the semiring generalization of RowSums (PlusTimes
// reproduces it exactly). Rows with no stored entries reduce to
// s.Zero. workers ≤ 0 selects runtime.NumCPU().
func (m *CSR) ReduceRows(s Semiring, workers int) []int {
	out := make([]int, m.rows)
	parallelBands(rowBands(m.rows, workers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := s.Zero
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				acc = s.Add(acc, m.vals[k])
			}
			out[i] = acc
		}
	})
	return out
}

// ReduceCols folds every column's stored values with s.Add: each row
// band accumulates a private column vector and the per-band vectors
// fold together in band order, which is exactly ascending-row order —
// the same fold the serial scatter performs. Columns with no stored
// entries reduce to s.Zero. workers ≤ 0 selects runtime.NumCPU().
func (m *CSR) ReduceCols(s Semiring, workers int) []int {
	bands := rowBands(m.rows, workers)
	partial := make([][]int, len(bands))
	parallelBands(bands, func(b, lo, hi int) {
		acc := make([]int, m.cols)
		for j := range acc {
			acc[j] = s.Zero
		}
		for i := lo; i < hi; i++ {
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				acc[m.colIdx[k]] = s.Add(acc[m.colIdx[k]], m.vals[k])
			}
		}
		partial[b] = acc
	})
	out := make([]int, m.cols)
	for j := range out {
		out[j] = s.Zero
	}
	for _, acc := range partial {
		for j, v := range acc {
			// Folding the band identity is a no-op for a monoid, but
			// skipping it avoids surprises with non-identity Zeros.
			if v == s.Zero {
				continue
			}
			out[j] = s.Add(out[j], v)
		}
	}
	return out
}

// Reduce folds all stored values with s.Add into one scalar, sharded
// across row bands. An empty matrix reduces to s.Zero.
func (m *CSR) Reduce(s Semiring, workers int) int {
	bands := rowBands(m.rows, workers)
	partial := make([]int, len(bands))
	parallelBands(bands, func(b, lo, hi int) {
		acc := s.Zero
		for k := m.rowPtr[lo]; k < m.rowPtr[hi]; k++ {
			acc = s.Add(acc, m.vals[k])
		}
		partial[b] = acc
	})
	acc := s.Zero
	for _, v := range partial {
		acc = s.Add(acc, v)
	}
	return acc
}
