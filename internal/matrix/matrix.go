// Package matrix implements the traffic-matrix mathematics that
// underpins Traffic Warehouse.
//
// A network traffic matrix is an adjacency matrix A where A(i,j) = v
// records that source i sent v packets (or bytes) to destination j.
// The paper's lessons use small dense square matrices with a shared
// label list for both axes; the netsim substrate aggregates live
// events into sparse matrices; and the D4M-style associative array
// supports string-keyed sources and destinations. This package
// provides all three representations plus the semiring operations
// (GraphBLAS-style) used by the pattern classifier.
package matrix

import (
	"fmt"
	"strings"
)

// Dense is a row-major dense integer matrix. The zero value is an
// empty 0×0 matrix. Entries are packet counts and are expected to be
// non-negative in lesson content, although the type itself permits any
// int so intermediate computations (differences, semiring folds) can
// use it too.
type Dense struct {
	rows, cols int
	data       []int
}

// NewDense returns a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]int, rows*cols)}
}

// NewSquare returns an n×n zero matrix.
func NewSquare(n int) *Dense { return NewDense(n, n) }

// FromRows builds a matrix from a slice of equal-length rows. It
// returns an error when rows are ragged.
func FromRows(rows [][]int) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFromRows is FromRows but panics on ragged input. It is intended
// for literal matrices in module definitions and tests.
func MustFromRows(rows [][]int) *Dense {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// IsSquare reports whether the matrix is square.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// index panics with a descriptive message when (i,j) is out of range.
func (m *Dense) index(i, j int) int {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	return i*m.cols + j
}

// At returns the entry at row i, column j.
func (m *Dense) At(i, j int) int { return m.data[m.index(i, j)] }

// Set assigns the entry at row i, column j.
func (m *Dense) Set(i, j, v int) { m.data[m.index(i, j)] = v }

// Add increments the entry at row i, column j by v.
func (m *Dense) Add(i, j, v int) { m.data[m.index(i, j)] += v }

// Fill sets every entry to v.
func (m *Dense) Fill(v int) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and entries.
func (m *Dense) Equal(o *Dense) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// RowSlice returns a copy of row i.
func (m *Dense) RowSlice(i int) []int {
	row := make([]int, m.cols)
	copy(row, m.data[i*m.cols:(i+1)*m.cols])
	return row
}

// ToRows returns the matrix as a freshly allocated slice of rows,
// matching the JSON "list of lists" layout used by learning modules.
func (m *Dense) ToRows() [][]int {
	rows := make([][]int, m.rows)
	for i := range rows {
		rows[i] = m.RowSlice(i)
	}
	return rows
}

// Transpose returns a new matrix with rows and columns exchanged.
// On a traffic matrix this swaps the roles of sources and
// destinations, which the DDoS module uses to model backscatter
// (replies retrace the attack edges in reverse).
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Sum returns the total of all entries: the total packet count.
func (m *Dense) Sum() int {
	total := 0
	for _, v := range m.data {
		total += v
	}
	return total
}

// NNZ returns the number of non-zero entries: the number of active
// source/destination links.
func (m *Dense) NNZ() int {
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Max returns the maximum entry value, or 0 for an empty matrix.
func (m *Dense) Max() int {
	best := 0
	for i, v := range m.data {
		if i == 0 || v > best {
			best = v
		}
	}
	return best
}

// RowSums returns the out-degree (packets sent) of every source.
func (m *Dense) RowSums() []int {
	sums := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0
		for j := 0; j < m.cols; j++ {
			s += m.data[i*m.cols+j]
		}
		sums[i] = s
	}
	return sums
}

// ColSums returns the in-degree (packets received) of every
// destination.
func (m *Dense) ColSums() []int {
	sums := make([]int, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			sums[j] += m.data[i*m.cols+j]
		}
	}
	return sums
}

// Apply replaces every entry with f(entry).
func (m *Dense) Apply(f func(v int) int) {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
}

// Scale multiplies every entry by k.
func (m *Dense) Scale(k int) {
	m.Apply(func(v int) int { return v * k })
}

// AddMatrix returns m + o element-wise. Both the notional-attack and
// DDoS modules compose their final "everything at once" view by
// summing stage matrices.
func (m *Dense) AddMatrix(o *Dense) (*Dense, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("matrix: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i, v := range o.data {
		out.data[i] += v
	}
	return out, nil
}

// EWiseMax returns the element-wise maximum of m and o. Color
// matrices combine with max so red (2) dominates blue (1) dominates
// grey (0) when stages overlap.
func (m *Dense) EWiseMax(o *Dense) (*Dense, error) {
	if m.rows != o.rows || m.cols != o.cols {
		return nil, fmt.Errorf("matrix: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols)
	}
	out := m.Clone()
	for i, v := range o.data {
		if v > out.data[i] {
			out.data[i] = v
		}
	}
	return out, nil
}

// Submatrix returns the rectangle [r0,r1)×[c0,c1) as a new matrix.
func (m *Dense) Submatrix(r0, r1, c0, c1 int) (*Dense, error) {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 > r1 || c0 > c1 {
		return nil, fmt.Errorf("matrix: submatrix [%d:%d,%d:%d) out of range %dx%d", r0, r1, c0, c1, m.rows, m.cols)
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.data[(i-r0)*out.cols:(i-r0+1)*out.cols], m.data[i*m.cols+c0:i*m.cols+c1])
	}
	return out, nil
}

// Pattern returns a clone with every non-zero entry replaced by 1,
// i.e. the unweighted adjacency structure.
func (m *Dense) Pattern() *Dense {
	p := m.Clone()
	p.Apply(func(v int) int {
		if v != 0 {
			return 1
		}
		return 0
	})
	return p
}

// IsSymmetric reports whether m equals its transpose. Undirected
// graph-theory patterns (ring, mesh, clique) render as symmetric
// traffic matrices.
func (m *Dense) IsSymmetric() bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if m.data[i*m.cols+j] != m.data[j*m.cols+i] {
				return false
			}
		}
	}
	return true
}

// Trace returns the sum of the diagonal: total self-loop traffic.
func (m *Dense) Trace() int {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	s := 0
	for i := 0; i < n; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// String renders the matrix as aligned rows of integers, one line per
// row, in the "list of lists" spirit of the module format.
func (m *Dense) String() string {
	width := 1
	for _, v := range m.data {
		if n := len(fmt.Sprint(v)); n > width {
			width = n
		}
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%*d", width, m.data[i*m.cols+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
