package matrix

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.Sum() != 0 || m.NNZ() != 0 {
		t.Error("new matrix not zeroed")
	}
	if m.IsSquare() {
		t.Error("3x4 reported square")
	}
}

func TestSetGetAdd(t *testing.T) {
	m := NewSquare(3)
	m.Set(1, 2, 5)
	m.Add(1, 2, 3)
	if got := m.At(1, 2); got != 8 {
		t.Errorf("At = %d, want 8", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewSquare(2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(0, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil || m.Rows() != 0 {
		t.Errorf("empty FromRows: %v %v", m, err)
	}
}

func TestToRowsRoundTrip(t *testing.T) {
	rows := [][]int{{1, 2, 3}, {4, 5, 6}}
	m := MustFromRows(rows)
	got := m.ToRows()
	if !reflect.DeepEqual(got, rows) {
		t.Errorf("ToRows = %v", got)
	}
	// Mutating the copy must not touch the matrix.
	got[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("ToRows aliases internal storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := MustFromRows([][]int{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("clone aliases original")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestEqualShapes(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	if a.Equal(b) {
		t.Error("different shapes equal")
	}
}

func TestTranspose(t *testing.T) {
	m := MustFromRows([][]int{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Error("transpose values wrong")
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(vals [9]int8) bool {
		m := NewSquare(3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m.Set(i, j, int(vals[i*3+j]))
			}
		}
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumNNZMax(t *testing.T) {
	m := MustFromRows([][]int{{0, 2}, {3, 0}})
	if m.Sum() != 5 || m.NNZ() != 2 || m.Max() != 3 {
		t.Errorf("sum/nnz/max = %d/%d/%d", m.Sum(), m.NNZ(), m.Max())
	}
}

func TestRowColSums(t *testing.T) {
	m := MustFromRows([][]int{{1, 2}, {3, 4}})
	if got := m.RowSums(); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Errorf("RowSums = %v", got)
	}
	if got := m.ColSums(); !reflect.DeepEqual(got, []int{4, 6}) {
		t.Errorf("ColSums = %v", got)
	}
}

func TestRowColSumsMatchSumProperty(t *testing.T) {
	f := func(vals [16]uint8) bool {
		m := NewSquare(4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m.Set(i, j, int(vals[i*4+j]))
			}
		}
		rs, cs := 0, 0
		for _, v := range m.RowSums() {
			rs += v
		}
		for _, v := range m.ColSums() {
			cs += v
		}
		return rs == m.Sum() && cs == m.Sum()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyScale(t *testing.T) {
	m := MustFromRows([][]int{{1, 2}, {3, 4}})
	m.Scale(3)
	if m.At(1, 1) != 12 {
		t.Errorf("Scale: %d", m.At(1, 1))
	}
	m.Apply(func(v int) int { return v % 2 })
	if m.At(0, 0) != 1 || m.At(0, 1) != 0 {
		t.Error("Apply wrong")
	}
}

func TestAddMatrixAndEWiseMax(t *testing.T) {
	a := MustFromRows([][]int{{1, 0}, {0, 2}})
	b := MustFromRows([][]int{{2, 1}, {0, 1}})
	sum, err := a.AddMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(0, 0) != 3 || sum.At(1, 1) != 3 {
		t.Error("AddMatrix wrong")
	}
	mx, err := a.EWiseMax(b)
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0, 0) != 2 || mx.At(1, 1) != 2 || mx.At(0, 1) != 1 {
		t.Error("EWiseMax wrong")
	}
	if _, err := a.AddMatrix(NewDense(3, 3)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestSubmatrix(t *testing.T) {
	m := MustFromRows([][]int{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	sub, err := m.Submatrix(1, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows([][]int{{4, 5}, {7, 8}})
	if !sub.Equal(want) {
		t.Errorf("Submatrix:\n%v", sub)
	}
	if _, err := m.Submatrix(0, 4, 0, 1); err == nil {
		t.Error("out-of-range submatrix accepted")
	}
}

func TestPattern(t *testing.T) {
	m := MustFromRows([][]int{{0, 5}, {7, 0}})
	p := m.Pattern()
	if p.At(0, 1) != 1 || p.At(1, 0) != 1 || p.At(0, 0) != 0 {
		t.Error("Pattern wrong")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := MustFromRows([][]int{{1, 2}, {2, 1}})
	if !sym.IsSymmetric() {
		t.Error("symmetric not detected")
	}
	asym := MustFromRows([][]int{{1, 2}, {3, 1}})
	if asym.IsSymmetric() {
		t.Error("asymmetric reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric() {
		t.Error("non-square reported symmetric")
	}
}

func TestTrace(t *testing.T) {
	m := MustFromRows([][]int{{1, 9}, {9, 2}})
	if m.Trace() != 3 {
		t.Errorf("Trace = %d", m.Trace())
	}
}

func TestStringAligned(t *testing.T) {
	m := MustFromRows([][]int{{1, 100}, {20, 3}})
	out := m.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != len(lines[1]) {
		t.Errorf("unaligned String output:\n%s", out)
	}
}

func TestMulPlusTimes(t *testing.T) {
	a := MustFromRows([][]int{{1, 2}, {3, 4}})
	b := MustFromRows([][]int{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromRows([][]int{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Errorf("Mul:\n%v", got)
	}
}

func TestMulShapeMismatch(t *testing.T) {
	if _, err := Mul(NewDense(2, 3), NewDense(2, 3)); err == nil {
		t.Error("mismatched shapes accepted")
	}
}

func TestMulIdentityProperty(t *testing.T) {
	id := NewSquare(4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	f := func(vals [16]int8) bool {
		m := NewSquare(4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m.Set(i, j, int(vals[i*4+j]))
			}
		}
		left, err1 := Mul(id, m)
		right, err2 := Mul(m, id)
		return err1 == nil && err2 == nil && left.Equal(m) && right.Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOrAndSemiring(t *testing.T) {
	a := MustFromRows([][]int{{0, 1}, {0, 0}})
	b := MustFromRows([][]int{{0, 0}, {0, 1}})
	got, err := MulSemiring(a, b, OrAnd)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 1) != 1 || got.Sum() != 1 {
		t.Errorf("OrAnd product wrong:\n%v", got)
	}
}

func TestMaxPlusHeaviestPath(t *testing.T) {
	// Path weights: A(0,1)=3, A(1,2)=4; A² over max-plus should
	// find the 0→2 path of weight 7.
	a := NewSquare(3)
	a.Fill(maxIdentity)
	a.Set(0, 1, 3)
	a.Set(1, 2, 4)
	got, err := MulSemiring(a, a, MaxPlus)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 2) != 7 {
		t.Errorf("max-plus path weight = %d, want 7", got.At(0, 2))
	}
}

func TestTriangleCount(t *testing.T) {
	// A 4-clique contains C(4,3)=4 triangles.
	m := NewSquare(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 1)
			}
		}
	}
	n, err := TriangleCount(m)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("4-clique has %d triangles, want 4", n)
	}
}

func TestTriangleCountIgnoresSelfLoops(t *testing.T) {
	m := NewSquare(3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	n, err := TriangleCount(m)
	if err != nil || n != 0 {
		t.Errorf("self loops counted as triangles: %d, %v", n, err)
	}
}

func TestTriangleCountNonSquare(t *testing.T) {
	if _, err := TriangleCount(NewDense(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestReachableChain(t *testing.T) {
	// 0→1→2→3: closure must reach 0→3 but not 3→0.
	m := NewSquare(4)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(2, 3, 1)
	r, err := Reachable(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(0, 3) != 1 || r.At(0, 2) != 1 {
		t.Error("closure missed transitive edges")
	}
	if r.At(3, 0) != 0 {
		t.Error("closure invented reverse edges")
	}
}

func TestReachableCycle(t *testing.T) {
	m := NewSquare(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(2, 0, 1)
	r, err := Reachable(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if r.At(i, j) != 1 {
				t.Fatalf("cycle closure incomplete at (%d,%d)", i, j)
			}
		}
	}
}

// TestReachableMatchesBFSProperty cross-checks the semiring closure
// against a plain BFS on random graphs.
func TestReachableMatchesBFSProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := NewSquare(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.3 {
					m.Set(i, j, 1)
				}
			}
		}
		r, err := Reachable(m)
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < n; src++ {
			seen := make([]bool, n)
			stack := []int{}
			for j := 0; j < n; j++ {
				if m.At(src, j) != 0 && !seen[j] {
					seen[j] = true
					stack = append(stack, j)
				}
			}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for j := 0; j < n; j++ {
					if m.At(v, j) != 0 && !seen[j] {
						seen[j] = true
						stack = append(stack, j)
					}
				}
			}
			for j := 0; j < n; j++ {
				want := 0
				if seen[j] {
					want = 1
				}
				if r.At(src, j) != want {
					t.Fatalf("trial %d: reach(%d,%d) = %d, BFS says %d\n%v", trial, src, j, r.At(src, j), want, m)
				}
			}
		}
	}
}
