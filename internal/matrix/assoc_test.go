package matrix

import (
	"reflect"
	"strings"
	"testing"
)

func TestAssocSetGet(t *testing.T) {
	a := NewAssoc()
	a.Set("WS1", "SRV1", 3)
	if a.At("WS1", "SRV1") != 3 || a.At("WS1", "EXT1") != 0 {
		t.Error("Set/At wrong")
	}
}

func TestAssocZeroDeletes(t *testing.T) {
	a := NewAssoc()
	a.Set("a", "b", 2)
	a.Set("a", "b", 0)
	if a.NNZ() != 0 {
		t.Error("zero value kept the cell")
	}
	if len(a.RowKeys()) != 0 {
		t.Error("empty row key kept")
	}
}

func TestAssocAddAccumulates(t *testing.T) {
	a := NewAssoc()
	a.Add("x", "y", 2)
	a.Add("x", "y", 3)
	if a.At("x", "y") != 5 {
		t.Errorf("Add = %d", a.At("x", "y"))
	}
	a.Add("x", "y", -5)
	if a.NNZ() != 0 {
		t.Error("cancelled cell kept")
	}
}

func TestAssocKeysSorted(t *testing.T) {
	a := NewAssoc()
	a.Set("b", "z", 1)
	a.Set("a", "y", 1)
	a.Set("c", "x", 1)
	if got := a.RowKeys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("RowKeys = %v", got)
	}
	if got := a.ColKeys(); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("ColKeys = %v", got)
	}
	if got := a.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c", "x", "y", "z"}) {
		t.Errorf("Keys = %v", got)
	}
}

func TestAssocRangeOrderDeterministic(t *testing.T) {
	a := NewAssoc()
	a.Set("b", "1", 1)
	a.Set("a", "2", 2)
	a.Set("a", "1", 3)
	var visits []string
	a.Range(func(r, c string, v int) { visits = append(visits, r+c) })
	if !reflect.DeepEqual(visits, []string{"a1", "a2", "b1"}) {
		t.Errorf("Range order = %v", visits)
	}
}

func TestAssocCloneEqualAdd(t *testing.T) {
	a := NewAssoc()
	a.Set("p", "q", 4)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone differs")
	}
	b.Set("p", "q", 5)
	if a.Equal(b) || a.At("p", "q") != 4 {
		t.Error("clone aliases original")
	}
	sum := a.AddAssoc(b)
	if sum.At("p", "q") != 9 {
		t.Errorf("AddAssoc = %d", sum.At("p", "q"))
	}
}

func TestAssocTranspose(t *testing.T) {
	a := NewAssoc()
	a.Set("src", "dst", 7)
	tr := a.Transpose()
	if tr.At("dst", "src") != 7 || tr.At("src", "dst") != 0 {
		t.Error("transpose wrong")
	}
}

func TestAssocToDenseProjection(t *testing.T) {
	a := NewAssoc()
	a.Set("A", "B", 2)
	a.Set("B", "A", 3)
	a.Set("A", "GHOST", 9) // not in the label list
	d, dropped := a.ToDense([]string{"A", "B"})
	if d.At(0, 1) != 2 || d.At(1, 0) != 3 {
		t.Error("projection values wrong")
	}
	if dropped != 9 {
		t.Errorf("dropped = %d, want 9", dropped)
	}
}

func TestFromDenseLabelsRoundTrip(t *testing.T) {
	d := MustFromRows([][]int{{0, 2}, {1, 0}})
	labels := []string{"X", "Y"}
	a, err := FromDenseLabels(d, labels)
	if err != nil {
		t.Fatal(err)
	}
	back, dropped := a.ToDense(labels)
	if dropped != 0 || !back.Equal(d) {
		t.Error("round trip lost data")
	}
}

func TestFromDenseLabelsErrors(t *testing.T) {
	d := NewSquare(2)
	if _, err := FromDenseLabels(d, []string{"only"}); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := FromDenseLabels(d, []string{"dup", "dup"}); err == nil {
		t.Error("duplicate labels accepted")
	}
}

func TestAssocString(t *testing.T) {
	a := NewAssoc()
	a.Set("WS1", "SRV1", 3)
	out := a.String()
	if !strings.Contains(out, "WS1") || !strings.Contains(out, "SRV1") || !strings.Contains(out, "3") {
		t.Errorf("String missing content:\n%s", out)
	}
}

func TestAssocSumNNZ(t *testing.T) {
	a := NewAssoc()
	a.Set("a", "b", 2)
	a.Set("c", "d", 3)
	if a.Sum() != 5 || a.NNZ() != 2 {
		t.Errorf("Sum/NNZ = %d/%d", a.Sum(), a.NNZ())
	}
}
