package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomCSR builds a deterministic random sparse matrix with about
// density·rows·cols entries, values in [1, 9].
func randomCSR(t testing.TB, rng *rand.Rand, rows, cols int, density float64) *CSR {
	t.Helper()
	c := NewCOO(rows, cols)
	n := int(density * float64(rows) * float64(cols))
	for k := 0; k < n; k++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), 1+rng.Intn(9))
	}
	return c.ToCSR()
}

var kernelSemirings = []Semiring{PlusTimes, OrAnd, MaxPlus}

func TestMatVecSemiringMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(t, rng, 17, 23, 0.15)
	x := make([]int, 23)
	for i := range x {
		x[i] = rng.Intn(7)
	}
	d := a.ToDense()
	for _, s := range kernelSemirings {
		want := make([]int, d.Rows())
		for i := range want {
			acc := s.Zero
			for j := 0; j < d.Cols(); j++ {
				if v := d.At(i, j); v != 0 {
					acc = s.Add(acc, s.Mul(v, x[j]))
				}
			}
			want[i] = acc
		}
		for _, workers := range []int{1, 3, 0} {
			got, err := a.MatVecSemiring(x, s, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", s.Name, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: SpMV mismatch", s.Name, workers)
			}
		}
	}
}

func TestMatVecSemiringPlusTimesMatchesSerialMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(t, rng, 9, 9, 0.3)
	x := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	want, err := a.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.MatVecSemiring(x, PlusTimes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MatVecSemiring(PlusTimes) = %v, want %v", got, want)
	}
}

func TestMatVecSemiringShapeError(t *testing.T) {
	a := randomCSR(t, rand.New(rand.NewSource(5)), 4, 6, 0.3)
	if _, err := a.MatVecSemiring(make([]int, 5), PlusTimes, 1); err == nil {
		t.Error("expected length-mismatch error")
	}
}

// refSpGEMM computes the sparse semiring product with a naive map
// accumulator: the reference for MatMulCSR under sparse semantics
// (implicit cells are s.Zero, results equal to s.Zero stay implicit).
func refSpGEMM(a, b *CSR, s Semiring) map[[2]int]int {
	out := map[[2]int]int{}
	for i := 0; i < a.Rows(); i++ {
		a.Row(i, func(k, av int) {
			b.Row(k, func(j, bv int) {
				key := [2]int{i, j}
				if acc, ok := out[key]; ok {
					out[key] = s.Add(acc, s.Mul(av, bv))
				} else {
					out[key] = s.Add(s.Zero, s.Mul(av, bv))
				}
			})
		})
	}
	for key, v := range out {
		// Zero results stay implicit; so do literal-0 results, which
		// the representation reserves for absent cells.
		if v == s.Zero || v == 0 {
			delete(out, key)
		}
	}
	return out
}

// TestMatMulCSRNeverStoresZero pins the accessor-contract edge the
// MaxPlus semiring exposes: its Mul is +, so values of opposite sign
// can produce a literal-0 result, which must stay implicit (the
// representation reserves 0 for absent cells).
func TestMatMulCSRNeverStoresZero(t *testing.T) {
	a := NewCOO(1, 1)
	a.Add(0, 0, 2)
	b := NewCOO(1, 1)
	b.Add(0, 0, -2)
	got, err := MatMulCSR(a.ToCSR(), b.ToCSR(), MaxPlus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0 (literal-0 result must stay implicit)", got.NNZ())
	}
	got.Row(0, func(j, v int) { t.Errorf("Row visited (%d,%d)", j, v) })
	if entries := got.ToCOO().Entries(); len(entries) != 0 {
		t.Errorf("ToCOO stored %v, want none", entries)
	}
}

// TestMatMulCSRMatchesReference pins SpGEMM against a naive sparse
// reference for every semiring, and additionally against the dense
// kernel for the semirings whose Zero is the integer 0 (where dense
// and sparse semantics coincide — for MaxPlus they intentionally do
// not: the dense kernel treats empty cells as literal 0, the sparse
// kernel as -inf).
func TestMatMulCSRMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomCSR(t, rng, 14, 19, 0.2)
	b := randomCSR(t, rng, 19, 11, 0.2)
	for _, s := range kernelSemirings {
		want := refSpGEMM(a, b, s)
		for _, workers := range []int{1, 4, 0} {
			got, err := MatMulCSR(a, b, s, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", s.Name, workers, err)
			}
			if got.Rows() != a.Rows() || got.Cols() != b.Cols() {
				t.Fatalf("%s: shape %dx%d, want %dx%d", s.Name, got.Rows(), got.Cols(), a.Rows(), b.Cols())
			}
			stored := map[[2]int]int{}
			for i := 0; i < got.Rows(); i++ {
				got.Row(i, func(j, v int) { stored[[2]int{i, j}] = v })
			}
			if !reflect.DeepEqual(stored, want) {
				t.Errorf("%s workers=%d: SpGEMM = %v, want %v", s.Name, workers, stored, want)
			}
		}
	}
	// Dense cross-check where Zero == 0.
	ad, bd := a.ToDense(), b.ToDense()
	for _, s := range []Semiring{PlusTimes, OrAnd} {
		want, err := MulSemiring(ad, bd, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMulCSR(a, b, s, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ToDense().Equal(want) {
			t.Errorf("%s: densified SpGEMM differs from dense kernel", s.Name)
		}
	}
}

func TestMatMulCSRDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(t, rng, 40, 40, 0.1)
	b := randomCSR(t, rng, 40, 40, 0.1)
	base, err := MatMulCSR(a, b, PlusTimes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := MatMulCSR(a, b, PlusTimes, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: SpGEMM result differs from serial", workers)
		}
	}
}

func TestMatMulCSRShapeError(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSR(t, rng, 3, 4, 0.5)
	b := randomCSR(t, rng, 5, 3, 0.5)
	if _, err := MatMulCSR(a, b, PlusTimes, 1); err == nil {
		t.Error("expected shape-mismatch error")
	}
}

func TestTransposeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Large enough to cross the parallel threshold (nnz ≥ 4096).
	a := randomCSR(t, rng, 200, 150, 0.2)
	want := a.Transpose()
	for _, workers := range []int{2, 5, 16} {
		got := a.TransposeParallel(workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: parallel transpose differs from serial", workers)
		}
	}
	if !reflect.DeepEqual(a.TransposeParallel(1), want) {
		t.Error("workers=1 fallback differs from serial")
	}
}

func TestReduceRowsAndColsMatchSums(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomCSR(t, rng, 31, 27, 0.2)
	for _, workers := range []int{1, 4, 0} {
		if got := a.ReduceRows(PlusTimes, workers); !reflect.DeepEqual(got, a.RowSums()) {
			t.Errorf("workers=%d: ReduceRows(PlusTimes) != RowSums", workers)
		}
		if got := a.ReduceCols(PlusTimes, workers); !reflect.DeepEqual(got, a.ColSums()) {
			t.Errorf("workers=%d: ReduceCols(PlusTimes) != ColSums", workers)
		}
		if got := a.Reduce(PlusTimes, workers); got != a.Sum() {
			t.Errorf("workers=%d: Reduce(PlusTimes) = %d, want %d", workers, got, a.Sum())
		}
	}
}

func TestReduceMaxPlusFindsRowMaxima(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 5)
	c.Add(0, 2, 9)
	c.Add(2, 1, 4)
	a := c.ToCSR()
	got := a.ReduceRows(MaxPlus, 2)
	want := []int{9, maxIdentity, 4} // empty row 1 reduces to -inf
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReduceRows(MaxPlus) = %v, want %v", got, want)
	}
	if m := a.Reduce(MaxPlus, 1); m != 9 {
		t.Errorf("Reduce(MaxPlus) = %d, want 9", m)
	}
}

func TestCSRToCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCSR(t, rng, 12, 12, 0.3)
	back := a.ToCOO().ToCSR()
	if !reflect.DeepEqual(back, a) {
		t.Error("CSR→COO→CSR round trip not identical")
	}
	if !a.ToCOO().ToDense().Equal(a.ToDense()) {
		t.Error("CSR→COO→Dense differs from CSR→Dense")
	}
}

func TestRowBandsCoverAllRows(t *testing.T) {
	for _, tc := range []struct{ rows, workers int }{
		{0, 4}, {1, 4}, {7, 3}, {10, 10}, {10, 64}, {100, 7},
	} {
		bands := rowBands(tc.rows, tc.workers)
		next := 0
		for _, b := range bands {
			if b[0] != next {
				t.Fatalf("rows=%d workers=%d: band starts at %d, want %d", tc.rows, tc.workers, b[0], next)
			}
			next = b[1]
		}
		if next != tc.rows {
			t.Errorf("rows=%d workers=%d: bands cover [0,%d), want [0,%d)", tc.rows, tc.workers, next, tc.rows)
		}
	}
}
