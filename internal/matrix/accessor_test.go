package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomSquare builds a matched (Dense, CSR) pair of the same random
// square matrix.
func randomSquare(t testing.TB, seed int64, n int, density float64) (*Dense, *CSR) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	entries := int(density * float64(n) * float64(n))
	for k := 0; k < entries; k++ {
		c.Add(rng.Intn(n), rng.Intn(n), 1+rng.Intn(9))
	}
	csr := c.ToCSR()
	return csr.ToDense(), csr
}

func TestDenseRowSkipsZeros(t *testing.T) {
	d := MustFromRows([][]int{{0, 3, 0}, {1, 0, 2}})
	var got []Entry
	for i := 0; i < d.Rows(); i++ {
		d.Row(i, func(j, v int) { got = append(got, Entry{Row: i, Col: j, Val: v}) })
	}
	want := []Entry{{0, 1, 3}, {1, 0, 1}, {1, 2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Dense.Row visited %v, want %v", got, want)
	}
}

// TestAnalysisParityDenseVsCSR pins the tentpole invariant at the
// matrix layer: every analysis helper produces byte-identical
// results through either representation.
func TestAnalysisParityDenseVsCSR(t *testing.T) {
	for _, tc := range []struct {
		name    string
		seed    int64
		n       int
		density float64
	}{
		{"sparse", 1, 30, 0.05},
		{"moderate", 2, 20, 0.3},
		{"dense", 3, 8, 0.9},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, c := randomSquare(t, tc.seed, tc.n, tc.density)
			if got, want := ProfileOf(c), ProfileOf(d); !reflect.DeepEqual(got, want) {
				t.Errorf("ProfileOf: CSR %+v != Dense %+v", got, want)
			}
			if got, want := SupernodesOf(c, 3), SupernodesOf(d, 3); !reflect.DeepEqual(got, want) {
				t.Errorf("SupernodesOf: CSR %v != Dense %v", got, want)
			}
			if got, want := IsolatedPairsOf(c), IsolatedPairsOf(d); !reflect.DeepEqual(got, want) {
				t.Errorf("IsolatedPairsOf: CSR %v != Dense %v", got, want)
			}
			if got, want := DegreeHistogramOf(c), DegreeHistogramOf(d); !reflect.DeepEqual(got, want) {
				t.Errorf("DegreeHistogramOf: CSR %v != Dense %v", got, want)
			}
			if got, want := TopLinksOf(c, 10), TopLinksOf(d, 10); !reflect.DeepEqual(got, want) {
				t.Errorf("TopLinksOf: CSR %v != Dense %v", got, want)
			}
		})
	}
}

func TestProfileOfSymmetricAndReciprocal(t *testing.T) {
	d := MustFromRows([][]int{
		{0, 2, 0},
		{2, 0, 1},
		{0, 1, 0},
	})
	for _, m := range []Matrix{d, FromDense(d).ToCSR()} {
		p := ProfileOf(m)
		if !p.Symmetric {
			t.Error("symmetric matrix profiled as asymmetric")
		}
		if p.Reciprocal != 2 {
			t.Errorf("Reciprocal = %d, want 2", p.Reciprocal)
		}
	}
	asym := MustFromRows([][]int{{0, 1}, {2, 0}})
	for _, m := range []Matrix{asym, FromDense(asym).ToCSR()} {
		if p := ProfileOf(m); p.Symmetric {
			t.Error("asymmetric matrix profiled as symmetric")
		}
	}
}

func TestProfileOfNonSquare(t *testing.T) {
	d := NewDense(2, 3)
	c := FromDense(d).ToCSR()
	for _, m := range []Matrix{d, c} {
		if p := ProfileOf(m); p.N != -1 {
			t.Errorf("non-square profile N = %d, want -1", p.N)
		}
		if IsolatedPairsOf(m) != nil {
			t.Error("non-square IsolatedPairsOf should be nil")
		}
		if DegreeHistogramOf(m) != nil {
			t.Error("non-square DegreeHistogramOf should be nil")
		}
	}
}

func TestIsolatedPairsOfSparsePath(t *testing.T) {
	// Two isolated pairs {0,1} and {2,3}, one busy triangle 4-5-6,
	// and a self loop on 7 that must be ignored.
	d := NewSquare(8)
	d.Set(0, 1, 2)
	d.Set(1, 0, 1)
	d.Set(2, 3, 4)
	d.Set(4, 5, 1)
	d.Set(5, 6, 1)
	d.Set(6, 4, 1)
	d.Set(7, 7, 9)
	want := [][2]int{{0, 1}, {2, 3}}
	for _, m := range []Matrix{d, FromDense(d).ToCSR()} {
		if got := IsolatedPairsOf(m); !reflect.DeepEqual(got, want) {
			t.Errorf("IsolatedPairsOf = %v, want %v", got, want)
		}
	}
}
