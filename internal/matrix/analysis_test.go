package matrix

import (
	"reflect"
	"testing"
)

func TestProfileBasics(t *testing.T) {
	m := MustFromRows([][]int{
		{1, 2, 0},
		{0, 0, 3},
		{4, 0, 0},
	})
	p := NewProfile(m)
	if p.N != 3 || p.NNZ != 4 || p.Sum != 10 || p.MaxEntry != 4 {
		t.Errorf("profile basics wrong: %+v", p)
	}
	if p.DiagNNZ != 1 || p.OffDiagNNZ != 3 {
		t.Errorf("diag split wrong: %+v", p)
	}
	if !reflect.DeepEqual(p.OutFan, []int{2, 1, 1}) {
		t.Errorf("OutFan = %v", p.OutFan)
	}
	if !reflect.DeepEqual(p.InFan, []int{2, 1, 1}) {
		t.Errorf("InFan = %v", p.InFan)
	}
	if p.Symmetric {
		t.Error("asymmetric matrix reported symmetric")
	}
}

func TestProfileReciprocal(t *testing.T) {
	m := MustFromRows([][]int{
		{0, 1, 1},
		{1, 0, 0},
		{0, 0, 0},
	})
	p := NewProfile(m)
	if p.Reciprocal != 1 {
		t.Errorf("Reciprocal = %d, want 1 (only 0↔1)", p.Reciprocal)
	}
}

func TestProfileNonSquare(t *testing.T) {
	if p := NewProfile(NewDense(2, 3)); p.N != -1 {
		t.Error("non-square profile should report N=-1")
	}
}

func TestSupernodesDetection(t *testing.T) {
	// Vertex 0 sends to 1,2,3 → out supernode; 3 receives from 0
	// only.
	m := NewSquare(4)
	m.Set(0, 1, 1)
	m.Set(0, 2, 1)
	m.Set(0, 3, 1)
	hubs := Supernodes(m, 3)
	if len(hubs) != 1 {
		t.Fatalf("Supernodes = %v", hubs)
	}
	if hubs[0].Index != 0 || hubs[0].Direction != "out" || hubs[0].Fan != 3 {
		t.Errorf("hub = %+v", hubs[0])
	}
}

func TestSupernodesSorted(t *testing.T) {
	m := NewSquare(6)
	// Vertex 5 receives from 4 peers; vertex 0 sends to 3.
	for i := 1; i < 5; i++ {
		m.Set(i, 5, 1)
	}
	for j := 1; j < 4; j++ {
		m.Set(0, j, 1)
	}
	hubs := Supernodes(m, 3)
	if len(hubs) != 2 || hubs[0].Index != 5 || hubs[1].Index != 0 {
		t.Errorf("expected fan-4 hub first: %+v", hubs)
	}
}

func TestIsolatedPairsDetection(t *testing.T) {
	m := NewSquare(6)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2) // isolated pair 0↔1
	m.Set(2, 3, 1) // one-way, still isolated as a pair
	m.Set(4, 5, 1)
	m.Set(4, 2, 1) // 4 talks to both 5 and 2: not isolated
	pairs := IsolatedPairs(m)
	want := [][2]int{{0, 1}}
	// Pair {2,3} is broken: vertex 2 also receives from 4.
	if !reflect.DeepEqual(pairs, want) {
		t.Errorf("IsolatedPairs = %v, want %v", pairs, want)
	}
}

func TestDegreeHistogram(t *testing.T) {
	m := NewSquare(3)
	m.Set(0, 1, 1)
	// Degrees (in-fan + out-fan): v0=1, v1=1, v2=0.
	hist := DegreeHistogram(m)
	if !reflect.DeepEqual(hist, []int{1, 2}) {
		t.Errorf("DegreeHistogram = %v", hist)
	}
}

func TestTopLinks(t *testing.T) {
	m := MustFromRows([][]int{
		{0, 5, 1},
		{0, 0, 5},
		{2, 0, 0},
	})
	top := TopLinks(m, 2)
	if len(top) != 2 {
		t.Fatalf("TopLinks len = %d", len(top))
	}
	// Two fives, tie broken by row: (0,1) before (1,2).
	if top[0] != (Entry{0, 1, 5}) || top[1] != (Entry{1, 2, 5}) {
		t.Errorf("TopLinks = %v", top)
	}
	if got := TopLinks(m, 100); len(got) != 4 {
		t.Errorf("TopLinks overshoot = %d entries", len(got))
	}
}
