package matrix

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestMergeCOOContextCancelled: a cancelled merge returns the
// context's error and leaves the shards retryable — a second merge on
// a live context produces the full result.
func TestMergeCOOContextCancelled(t *testing.T) {
	mkShard := func(vals ...int) *COO {
		c := NewCOO(4, 4)
		for i, v := range vals {
			c.Add(i%4, (i+1)%4, v)
		}
		return c
	}
	a, b := mkShard(1, 2, 3), mkShard(10, 20)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MergeCOOContext(ctx, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled merge: err = %v, want context.Canceled", err)
	}

	merged, err := MergeCOOContext(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MergeCOO(mkShard(1, 2, 3), mkShard(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Entries(), want.Entries()) {
		t.Error("retry after cancellation lost shard data")
	}
}
