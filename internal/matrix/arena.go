package matrix

import "sync"

// The buffer arena for the generation→merge→compact hot path. Under
// served concurrency every cold request used to allocate fresh COO
// builder slabs — per-worker shards, per-window shards, the merge
// output — that die within the request: pure GC pressure at exactly
// the event volume the request budget admits. An Arena keeps that
// builder storage on explicit free-lists instead, so steady-state
// serving re-files triples into slabs recycled from earlier requests.
//
// The free-lists are explicit (not sync.Pool) on purpose: reuse is
// then deterministic — unaffected by GC timing — which is what lets
// the CI allocation-regression gate compare allocs/op across runs.
//
// Ownership rules (DESIGN.md "Arena ownership" has the full story):
//
//   - Only builder storage is ever pooled. CSR output arrays
//     (rowPtr/colIdx/vals) are always freshly allocated and owned by
//     the consumer forever — results enter the LRU cache and stream
//     frames alias them, so the arena must never see them.
//   - Put/Release is an ownership assertion: the caller proves the
//     slab is unreachable (nothing cached, sealed, or in flight
//     aliases it). Using a COO after Release panics.
//   - A nil *Arena is valid everywhere and means "allocate fresh":
//     the pooled and pool-free paths are bit-identical by
//     construction, pinned by the pooled-vs-reference parity suite.

// PoolStats counts one free-list's traffic. Hits/Gets is the steady-
// state reuse rate; Retained bounds the pooled footprint.
type PoolStats struct {
	// Gets counts slab requests; Hits the ones served from the pool.
	Gets, Hits uint64
	// Puts counts slabs returned; Drops the ones evicted to stay
	// within the retention bound.
	Puts, Drops uint64
	// Retained is the total element count currently pooled, across
	// Slabs free slabs.
	Retained, Slabs int
}

// SlabPool is an explicit free-list of zero-length slices, ordered by
// capacity. Safe for concurrent use. The zero value is NOT usable;
// build with NewSlabPool. A nil pool is valid and always allocates.
type SlabPool[T any] struct {
	mu sync.Mutex
	// slabs is kept sorted by ascending capacity so Get can take the
	// smallest slab that fits (best fit keeps big slabs for big asks).
	slabs    [][]T
	retained int
	maxElems int
	stats    PoolStats
}

// NewSlabPool builds a pool retaining at most maxElems elements of
// free storage; beyond that, returned slabs evict smallest-first.
func NewSlabPool[T any](maxElems int) *SlabPool[T] {
	return &SlabPool[T]{maxElems: maxElems}
}

// Get returns a zero-length slice for the caller to append into:
// the smallest pooled slab whose capacity is at least c when one
// exists, otherwise a fresh slab with ~25% headroom over c (the
// headroom is what lets slightly-varying request shapes keep hitting
// the pool). c ≤ 0 takes the smallest pooled slab of any size, or a
// small fresh one. nil-safe.
func (p *SlabPool[T]) Get(c int) []T {
	if c < 0 {
		c = 0
	}
	if p == nil {
		return make([]T, 0, freshCap(c))
	}
	p.mu.Lock()
	p.stats.Gets++
	// Best fit: first slab (ascending capacity) with cap ≥ c.
	for i, s := range p.slabs {
		if cap(s) >= c {
			p.slabs = append(p.slabs[:i], p.slabs[i+1:]...)
			p.retained -= cap(s)
			p.stats.Hits++
			p.mu.Unlock()
			return s[:0]
		}
	}
	p.mu.Unlock()
	return make([]T, 0, freshCap(c))
}

// freshCap sizes a miss allocation: 25% headroom, floor of 64.
func freshCap(c int) int {
	if c < 64 {
		return 64
	}
	return c + c/4
}

// Put returns a slab to the pool. Slabs smaller than the floor are
// not worth refiling; retention beyond the bound evicts the smallest
// slabs first (they are the cheapest to reallocate). nil-safe.
func (p *SlabPool[T]) Put(s []T) {
	if p == nil || cap(s) < 64 {
		return
	}
	s = s[:0]
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Puts++
	if cap(s) > p.maxElems {
		p.stats.Drops++
		return
	}
	// Insert keeping ascending capacity order.
	i := 0
	for i < len(p.slabs) && cap(p.slabs[i]) < cap(s) {
		i++
	}
	p.slabs = append(p.slabs, nil)
	copy(p.slabs[i+1:], p.slabs[i:])
	p.slabs[i] = s
	p.retained += cap(s)
	for p.retained > p.maxElems && len(p.slabs) > 0 {
		drop := p.slabs[0]
		p.slabs = append(p.slabs[:0], p.slabs[1:]...)
		p.retained -= cap(drop)
		p.stats.Drops++
	}
}

// Stats snapshots the pool counters. nil-safe.
func (p *SlabPool[T]) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Retained = p.retained
	st.Slabs = len(p.slabs)
	return st
}

// DefaultArenaElems bounds an Arena's retained triple storage. A
// maxed-out request budget folds ~1e8 events; retaining 8M triples
// (~192 MiB) covers the documented serving workloads' steady state
// while keeping one process's pooled footprint firmly bounded.
const DefaultArenaElems = 8 << 20

// Arena pools the sparse builders' backing storage: the []Entry
// slabs behind COO accumulators. One Arena per service instance,
// shared by every request; all methods are safe for concurrent use
// and all are nil-safe (a nil Arena allocates fresh).
type Arena struct {
	entries *SlabPool[Entry]
}

// NewArena builds an arena with the default retention bound.
func NewArena() *Arena { return NewArenaSized(DefaultArenaElems) }

// NewArenaSized builds an arena retaining at most maxElems pooled
// triples.
func NewArenaSized(maxElems int) *Arena {
	return &Arena{entries: NewSlabPool[Entry](maxElems)}
}

// GetEntries takes a zero-length triple slab with capacity ≥ c
// (best effort; see SlabPool.Get). nil-safe.
func (a *Arena) GetEntries(c int) []Entry {
	if a == nil {
		return make([]Entry, 0, freshCap(c))
	}
	return a.entries.Get(c)
}

// PutEntries files a triple slab back. The caller asserts the slab
// is unreachable — never Put storage aliased by a cached or returned
// matrix. nil-safe.
func (a *Arena) PutEntries(s []Entry) {
	if a == nil {
		return
	}
	a.entries.Put(s)
}

// Stats snapshots the arena's entry-pool counters. nil-safe.
func (a *Arena) Stats() PoolStats {
	if a == nil {
		return PoolStats{}
	}
	return a.entries.Stats()
}
