package matrix

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
)

// This file is the aggregation hot path for the concurrent scenario
// engine: netsim's generator shards an event stream across workers,
// each accumulating into a private COO, and the shards meet here.
// Because COO addition is commutative and associative (duplicates sum
// on compaction), the merged matrix is identical no matter how the
// events were partitioned — the property netsim's determinism tests
// lean on.

// CompactParallel sorts and deduplicates the triples like Compact,
// but splits the sort across up to workers goroutines: each segment
// is sorted independently and the sorted runs are then merged in one
// linear pass. workers ≤ 1 (or a small matrix) falls back to the
// serial Compact. It returns the receiver for chaining.
func (c *COO) CompactParallel(workers int) *COO {
	const minSegment = 1 << 12
	if c.compacted || workers <= 1 || len(c.entries) < 2*minSegment {
		return c.Compact()
	}
	if max := len(c.entries) / minSegment; workers > max {
		workers = max
	}
	seg := (len(c.entries) + workers - 1) / workers
	runs := make([][]Entry, 0, workers)
	var wg sync.WaitGroup
	for lo := 0; lo < len(c.entries); lo += seg {
		hi := lo + seg
		if hi > len(c.entries) {
			hi = len(c.entries)
		}
		run := c.entries[lo:hi]
		runs = append(runs, run)
		wg.Add(1)
		go func(run []Entry) {
			defer wg.Done()
			sortEntries(run)
		}(run)
	}
	wg.Wait()
	c.entries = mergeRuns(runs)
	c.compacted = true
	return c
}

// sortEntries orders a triple slice row-major.
func sortEntries(es []Entry) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].Row != es[b].Row {
			return es[a].Row < es[b].Row
		}
		return es[a].Col < es[b].Col
	})
}

// entryLess is the row-major triple order shared by every merge.
func entryLess(a, b Entry) bool {
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	return a.Col < b.Col
}

// runHeap is a min-heap over the heads of sorted entry runs.
type runHeap struct {
	runs [][]Entry
}

func (h *runHeap) Len() int           { return len(h.runs) }
func (h *runHeap) Less(i, j int) bool { return entryLess(h.runs[i][0], h.runs[j][0]) }
func (h *runHeap) Swap(i, j int)      { h.runs[i], h.runs[j] = h.runs[j], h.runs[i] }
func (h *runHeap) Push(x interface{}) { h.runs = append(h.runs, x.([]Entry)) }
func (h *runHeap) Pop() interface{} {
	n := len(h.runs)
	r := h.runs[n-1]
	h.runs = h.runs[:n-1]
	return r
}

// mergeRuns k-way merges sorted runs into one deduplicated,
// zero-free, row-major slice. Duplicate coordinates sum.
func mergeRuns(runs [][]Entry) []Entry { return mergeRunsIn(nil, runs) }

// mergeRunsIn is mergeRuns with the output slab taken from an arena
// (nil allocates fresh). The output never aliases a run: every entry
// is copied, so the runs' own slabs may be released afterwards.
func mergeRunsIn(a *Arena, runs [][]Entry) []Entry {
	nonEmpty := runs[:0]
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			nonEmpty = append(nonEmpty, r)
			total += len(r)
		}
	}
	runs = nonEmpty
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return dedupSorted(append(a.GetEntries(total), runs[0]...))
	}
	out := a.GetEntries(total)
	h := &runHeap{runs: runs}
	heap.Init(h)
	for h.Len() > 0 {
		r := h.runs[0]
		e := r[0]
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
		} else {
			out = append(out, e)
		}
		if len(r) > 1 {
			h.runs[0] = r[1:]
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return dropZeros(out)
}

// dedupSorted sums duplicate coordinates in a sorted slice in place
// and drops zero-sum cells.
func dedupSorted(es []Entry) []Entry {
	out := es[:0]
	for _, e := range es {
		if n := len(out); n > 0 && out[n-1].Row == e.Row && out[n-1].Col == e.Col {
			out[n-1].Val += e.Val
			continue
		}
		out = append(out, e)
	}
	return dropZeros(out)
}

// dropZeros filters zero-valued cells in place.
func dropZeros(es []Entry) []Entry {
	out := es[:0]
	for _, e := range es {
		if e.Val != 0 {
			out = append(out, e)
		}
	}
	return out
}

// MergeCOO combines sharded COO accumulators into one compacted
// matrix. Every part must share the same dimensions; parts may be nil
// (skipped) and are left unmodified aside from being compacted. The
// compaction of each part runs concurrently — on a multicore host the
// dominant O(E log E) sort cost parallelizes across shards — and the
// sorted shards then merge in a single linear k-way pass.
func MergeCOO(parts ...*COO) (*COO, error) {
	return MergeCOOContext(context.Background(), parts...)
}

// MergeCOOContext is MergeCOO with cancellation at shard granularity:
// a shard whose compaction has not started when ctx is cancelled is
// skipped, and the cancelled merge returns the context's error
// instead of a partial matrix. Shards that were skipped keep their
// un-compacted triples, so a retry on a fresh context merges the same
// data.
func MergeCOOContext(ctx context.Context, parts ...*COO) (*COO, error) {
	return MergeCOOArena(ctx, nil, parts...)
}

// MergeCOOArena is MergeCOOContext with the merged output's triple
// storage taken from the arena (nil allocates fresh — identical to
// MergeCOOContext). The output copies every triple and never aliases
// a part's storage, so on success the caller may Release the parts;
// the parts themselves are only compacted, never released, here —
// a cancelled merge leaves them intact for a retry.
func MergeCOOArena(ctx context.Context, a *Arena, parts ...*COO) (*COO, error) {
	var live []*COO
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("matrix: MergeCOO of no matrices")
	}
	rows, cols := live[0].rows, live[0].cols
	for _, p := range live[1:] {
		if p.rows != rows || p.cols != cols {
			return nil, fmt.Errorf("matrix: MergeCOO dimension mismatch %dx%d vs %dx%d",
				rows, cols, p.rows, p.cols)
		}
	}
	var wg sync.WaitGroup
	for _, p := range live {
		wg.Add(1)
		go func(p *COO) {
			defer wg.Done()
			if ctx.Err() == nil {
				p.Compact()
			}
		}(p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	runs := make([][]Entry, len(live))
	for i, p := range live {
		runs[i] = p.entries
	}
	out := NewCOO(rows, cols)
	out.arena = a
	out.entries = mergeRunsIn(a, runs)
	out.compacted = true
	return out, nil
}
