package matrix

import (
	"fmt"
	"sort"
	"strings"
)

// Assoc is a D4M-style associative array: a sparse matrix whose rows
// and columns are keyed by strings rather than integers. The paper
// notes that in real networks sources and destinations are "other
// labels … (such as strings) which can be handled with the more
// general associative array abstraction"; netsim uses Assoc to
// aggregate traffic keyed by host name before projecting onto a fixed
// label order for display.
type Assoc struct {
	cells map[string]map[string]int
}

// NewAssoc returns an empty associative array.
func NewAssoc() *Assoc {
	return &Assoc{cells: make(map[string]map[string]int)}
}

// Set assigns the value for (row, col). Setting zero deletes the
// cell so the array stays sparse.
func (a *Assoc) Set(row, col string, v int) {
	if v == 0 {
		if r, ok := a.cells[row]; ok {
			delete(r, col)
			if len(r) == 0 {
				delete(a.cells, row)
			}
		}
		return
	}
	r, ok := a.cells[row]
	if !ok {
		r = make(map[string]int)
		a.cells[row] = r
	}
	r[col] = v
}

// Add increments the value for (row, col) by v.
func (a *Assoc) Add(row, col string, v int) {
	a.Set(row, col, a.At(row, col)+v)
}

// At returns the value for (row, col), zero when absent.
func (a *Assoc) At(row, col string) int {
	return a.cells[row][col]
}

// NNZ returns the number of stored non-zero cells.
func (a *Assoc) NNZ() int {
	n := 0
	for _, r := range a.cells {
		n += len(r)
	}
	return n
}

// Sum returns the total of all cells.
func (a *Assoc) Sum() int {
	s := 0
	for _, r := range a.cells {
		for _, v := range r {
			s += v
		}
	}
	return s
}

// RowKeys returns the sorted set of row keys with at least one cell.
func (a *Assoc) RowKeys() []string {
	keys := make([]string, 0, len(a.cells))
	for k := range a.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ColKeys returns the sorted set of column keys with at least one
// cell.
func (a *Assoc) ColKeys() []string {
	set := make(map[string]struct{})
	for _, r := range a.cells {
		for c := range r {
			set[c] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Keys returns the sorted union of row and column keys: the vertex
// set of the traffic graph.
func (a *Assoc) Keys() []string {
	set := make(map[string]struct{})
	for r, cols := range a.cells {
		set[r] = struct{}{}
		for c := range cols {
			set[c] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Range calls fn for every non-zero cell in sorted (row, col) order.
func (a *Assoc) Range(fn func(row, col string, v int)) {
	for _, r := range a.RowKeys() {
		cols := make([]string, 0, len(a.cells[r]))
		for c := range a.cells[r] {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			fn(r, c, a.cells[r][c])
		}
	}
}

// Clone returns a deep copy.
func (a *Assoc) Clone() *Assoc {
	out := NewAssoc()
	a.Range(func(row, col string, v int) { out.Set(row, col, v) })
	return out
}

// Equal reports whether two associative arrays hold identical cells.
func (a *Assoc) Equal(o *Assoc) bool {
	if a.NNZ() != o.NNZ() {
		return false
	}
	equal := true
	a.Range(func(row, col string, v int) {
		if o.At(row, col) != v {
			equal = false
		}
	})
	return equal
}

// AddAssoc returns a + o cell-wise.
func (a *Assoc) AddAssoc(o *Assoc) *Assoc {
	out := a.Clone()
	o.Range(func(row, col string, v int) { out.Add(row, col, v) })
	return out
}

// Transpose returns the associative array with row and column keys
// exchanged.
func (a *Assoc) Transpose() *Assoc {
	out := NewAssoc()
	a.Range(func(row, col string, v int) { out.Set(col, row, v) })
	return out
}

// ToDense projects the associative array onto the given label order,
// producing the square dense matrix a learning module displays. Cells
// whose row or column key is not in labels are dropped; the returned
// int reports how many packets were dropped that way, so callers can
// detect truncation.
func (a *Assoc) ToDense(labels []string) (*Dense, int) {
	index := make(map[string]int, len(labels))
	for i, l := range labels {
		index[l] = i
	}
	d := NewSquare(len(labels))
	dropped := 0
	a.Range(func(row, col string, v int) {
		i, okRow := index[row]
		j, okCol := index[col]
		if !okRow || !okCol {
			dropped += v
			return
		}
		d.Add(i, j, v)
	})
	return d, dropped
}

// FromDenseLabels lifts a dense matrix into an associative array
// using labels for both axes. It returns an error when the label
// count does not match the (square) matrix size or labels repeat.
func FromDenseLabels(d *Dense, labels []string) (*Assoc, error) {
	if d.Rows() != len(labels) || d.Cols() != len(labels) {
		return nil, fmt.Errorf("matrix: %dx%d matrix needs %d labels, got %d", d.Rows(), d.Cols(), d.Rows(), len(labels))
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if seen[l] {
			return nil, fmt.Errorf("matrix: duplicate label %q", l)
		}
		seen[l] = true
	}
	a := NewAssoc()
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if v := d.At(i, j); v != 0 {
				a.Set(labels[i], labels[j], v)
			}
		}
	}
	return a, nil
}

// String renders the associative array as a label-bordered grid.
func (a *Assoc) String() string {
	rows, cols := a.RowKeys(), a.ColKeys()
	width := 1
	for _, c := range cols {
		if len(c) > width {
			width = len(c)
		}
	}
	a.Range(func(_, _ string, v int) {
		if n := len(fmt.Sprint(v)); n > width {
			width = n
		}
	})
	rowWidth := 0
	for _, r := range rows {
		if len(r) > rowWidth {
			rowWidth = len(r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s", rowWidth, "")
	for _, c := range cols {
		fmt.Fprintf(&b, " %*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%*s", rowWidth, r)
		for _, c := range cols {
			if v := a.At(r, c); v != 0 {
				fmt.Fprintf(&b, " %*d", width, v)
			} else {
				fmt.Fprintf(&b, " %*s", width, ".")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
