package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPermutation returns a deterministic pseudo-random bijection on
// [0,n).
func randomPermutation(n int, rng *rand.Rand) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// randomSquareCOO builds a deterministic sparse test matrix with
// duplicate coordinates (exercising compaction on the way to CSR).
func randomSquareCOO(n, entries int, rng *rand.Rand) *COO {
	c := NewCOO(n, n)
	for k := 0; k < entries; k++ {
		c.Add(rng.Intn(n), rng.Intn(n), 1+rng.Intn(9))
	}
	return c
}

func TestPermuteCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 32, 100} {
		coo := randomSquareCOO(n, 4*n, rng)
		csr := coo.ToCSR()
		dense := coo.ToDense()
		perm := randomPermutation(n, rng)

		got, err := PermuteCSR(csr, perm, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := PermuteDense(dense, perm)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.ToDense().Equal(want) {
			t.Errorf("n=%d: PermuteCSR disagrees with PermuteDense", n)
		}
		if got.NNZ() != csr.NNZ() {
			t.Errorf("n=%d: permutation changed nnz %d -> %d", n, csr.NNZ(), got.NNZ())
		}
	}
}

// TestPermuteCSRDeterministicAcrossWorkers pins the parallel-kernel
// contract: byte-identical output for any worker count.
func TestPermuteCSRDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	csr := randomSquareCOO(64, 512, rng).ToCSR()
	perm := randomPermutation(64, rng)
	base, err := PermuteCSR(csr, perm, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := PermuteCSR(csr, perm, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: permuted CSR differs from 1-worker result", workers)
		}
	}
}

// TestPermuteCSRIdentityAndInverse: the identity is a no-op and
// applying the inverse permutation round-trips.
func TestPermuteCSRIdentityAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	csr := randomSquareCOO(20, 90, rng).ToCSR()
	id := make([]int, 20)
	inv := make([]int, 20)
	perm := randomPermutation(20, rng)
	for i := range id {
		id[i] = i
		inv[perm[i]] = i
	}
	same, err := PermuteCSR(csr, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, csr) {
		t.Error("identity permutation changed the matrix")
	}
	fwd, err := PermuteCSR(csr, perm, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := PermuteCSR(fwd, inv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, csr) {
		t.Error("inverse permutation did not round-trip")
	}
}

func TestPermuteCSRRejectsBadInput(t *testing.T) {
	csr := NewCOO(3, 3).ToCSR()
	for name, perm := range map[string][]int{
		"short":        {0, 1},
		"out of range": {0, 1, 3},
		"duplicate":    {0, 1, 1},
	} {
		if _, err := PermuteCSR(csr, perm, 0); err == nil {
			t.Errorf("%s permutation accepted", name)
		}
	}
	rect := NewCOO(2, 3).ToCSR()
	if _, err := PermuteCSR(rect, []int{0, 1}, 0); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := PermuteDense(NewDense(2, 3), []int{0, 1}); err == nil {
		t.Error("PermuteDense accepted non-square matrix")
	}
}
