package matrix

import (
	"fmt"
	"sort"
)

// The parallel permutation kernel. A host relabeling of a traffic
// matrix is the symmetric permutation B = P·A·Pᵀ: row and column i
// both move to perm[i]. The netsim Relabel combinator renames hosts
// at the event level; this kernel is the matrix-level equivalent, and
// the compose tests pin that the two agree cell for cell — the
// algebraic fact that makes relabeled scenarios teachable (the shape
// is invariant, only the axis labels move).

// checkPermutation verifies perm is a bijection on [0,n).
func checkPermutation(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("matrix: permutation length %d does not match dimension %d", len(perm), n)
	}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || p >= n {
			return fmt.Errorf("matrix: permutation maps %d to %d, outside [0,%d)", i, p, n)
		}
		if seen[p] {
			return fmt.Errorf("matrix: permutation maps two indices to %d", p)
		}
		seen[p] = true
	}
	return nil
}

// PermuteCSR returns the symmetric permutation B = P·A·Pᵀ of a square
// matrix: B[perm[i]][perm[j]] = m[i][j]. perm must be a bijection on
// [0,n). The scatter shards across input-row bands — every input row
// owns a disjoint output segment, so goroutines never contend and the
// result is byte-identical for any worker count. workers ≤ 0 selects
// runtime.NumCPU().
func PermuteCSR(m *CSR, perm []int, workers int) (*CSR, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot symmetrically permute %dx%d (not square)", m.rows, m.cols)
	}
	if err := checkPermutation(perm, m.rows); err != nil {
		return nil, err
	}
	n := m.rows
	out := &CSR{
		rows:   n,
		cols:   n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, len(m.vals)),
		vals:   make([]int, len(m.vals)),
	}
	// Output row perm[i] holds exactly row i's entries.
	for i := 0; i < n; i++ {
		out.rowPtr[perm[i]+1] = m.rowPtr[i+1] - m.rowPtr[i]
	}
	for i := 0; i < n; i++ {
		out.rowPtr[i+1] += out.rowPtr[i]
	}
	type cell struct{ col, val int }
	parallelBands(rowBands(n, workers), func(_, lo, hi int) {
		var buf []cell
		for i := lo; i < hi; i++ {
			buf = buf[:0]
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				buf = append(buf, cell{col: perm[m.colIdx[k]], val: m.vals[k]})
			}
			// The permuted columns arrive out of order; CSR rows store
			// ascending columns.
			sort.Slice(buf, func(a, b int) bool { return buf[a].col < buf[b].col })
			base := out.rowPtr[perm[i]]
			for k, c := range buf {
				out.colIdx[base+k] = c.col
				out.vals[base+k] = c.val
			}
		}
	})
	return out, nil
}

// PermuteDense returns the symmetric permutation B = P·A·Pᵀ of a
// square dense matrix: the reference the sparse kernel is verified
// against.
func PermuteDense(m *Dense, perm []int) (*Dense, error) {
	if !m.IsSquare() {
		return nil, fmt.Errorf("matrix: cannot symmetrically permute %dx%d (not square)", m.Rows(), m.Cols())
	}
	if err := checkPermutation(perm, m.Rows()); err != nil {
		return nil, err
	}
	out := NewSquare(m.Rows())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if v := m.At(i, j); v != 0 {
				out.Set(perm[i], perm[j], v)
			}
		}
	}
	return out, nil
}
