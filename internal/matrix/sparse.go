package matrix

import (
	"fmt"
	"sort"
)

// Entry is a single (row, col, value) triple in a sparse matrix.
type Entry struct {
	Row, Col, Val int
}

// COO is a coordinate-format sparse matrix builder. Duplicate
// coordinates are permitted and sum together on compaction, which is
// exactly the semantics of streaming packet events into a traffic
// matrix: each event contributes its packet count to its (src,dst)
// cell. The netsim substrate builds COO matrices from event streams.
type COO struct {
	rows, cols int
	entries    []Entry
	// compacted records that entries are row-major sorted, duplicate
	// free, and zero free, letting Compact (and therefore ToCSR on a
	// freshly merged matrix) skip the O(E log E) re-sort.
	compacted bool
	// arena, when non-nil, owns the builder storage: Release files
	// entries back onto its free-list instead of leaving them to the
	// GC. released marks the storage gone — further use panics, so a
	// lifecycle bug fails loudly instead of corrupting a pooled slab.
	arena    *Arena
	released bool
}

// NewCOO returns an empty rows×cols COO matrix.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// NewCOOIn returns an empty rows×cols COO matrix whose triple
// storage comes from the arena (capHint pre-sizes the slab request).
// A nil arena makes it equivalent to NewCOO. The caller must Release
// the matrix once its triples are provably unreachable.
func NewCOOIn(a *Arena, rows, cols, capHint int) *COO {
	c := NewCOO(rows, cols)
	c.arena = a
	if a != nil {
		c.entries = a.GetEntries(capHint)
	}
	return c
}

// Release returns the builder storage to the arena and marks the
// matrix dead: any later Add, Compact, Entries, or ToCSR panics.
// Release is idempotent and a no-op for arena-less matrices' storage
// (the slab simply stays with the GC), so cleanup paths can call it
// unconditionally.
func (c *COO) Release() {
	if c.released {
		return
	}
	c.released = true
	if c.arena != nil {
		c.arena.PutEntries(c.entries)
	}
	c.entries = nil
	c.compacted = false
}

// checkLive panics on use-after-Release — the loud failure that
// keeps an aliased pooled slab from silently corrupting a matrix.
func (c *COO) checkLive() {
	if c.released {
		panic("matrix: use of released COO")
	}
}

// Rows returns the number of rows.
func (c *COO) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *COO) Cols() int { return c.cols }

// Len returns the number of stored triples (before duplicate
// compaction).
func (c *COO) Len() int { return len(c.entries) }

// Add appends the triple (i, j, v). Panics when the coordinate is out
// of range, matching Dense's behaviour.
func (c *COO) Add(i, j, v int) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	c.checkLive()
	c.entries = append(c.entries, Entry{Row: i, Col: j, Val: v})
	c.compacted = false
}

// Compact sorts the triples in row-major order and sums duplicates
// in place, dropping resulting zeros. It returns the receiver for
// chaining.
func (c *COO) Compact() *COO {
	c.checkLive()
	if c.compacted || len(c.entries) == 0 {
		return c
	}
	sortEntries(c.entries)
	c.entries = dedupSorted(c.entries)
	c.compacted = true
	return c
}

// Entries returns a copy of the stored triples.
func (c *COO) Entries() []Entry {
	c.checkLive()
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// ToDense materializes the COO matrix as a Dense matrix, summing
// duplicates.
func (c *COO) ToDense() *Dense {
	d := NewDense(c.rows, c.cols)
	for _, e := range c.entries {
		d.Add(e.Row, e.Col, e.Val)
	}
	return d
}

// FromDense converts a dense matrix to COO, keeping only non-zero
// entries.
func FromDense(d *Dense) *COO {
	c := NewCOO(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if v := d.At(i, j); v != 0 {
				c.Add(i, j, v)
			}
		}
	}
	// The row-major scan emits unique sorted non-zero coordinates.
	c.compacted = true
	return c
}

// CSR is a compressed-sparse-row matrix: the standard read-optimized
// layout for row-oriented traversal (out-edges of each source).
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []int
}

// ToCSR compacts the COO matrix and converts it to CSR. The CSR's
// arrays are always freshly allocated — never arena storage — because
// CSR results outlive the request that built them (the LRU cache and
// stream frames alias them); see the ownership rules in arena.go.
func (c *COO) ToCSR() *CSR {
	c.Compact()
	m := &CSR{
		rows:   c.rows,
		cols:   c.cols,
		rowPtr: make([]int, c.rows+1),
		colIdx: make([]int, len(c.entries)),
		vals:   make([]int, len(c.entries)),
	}
	for _, e := range c.entries {
		m.rowPtr[e.Row+1]++
	}
	for i := 0; i < c.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	// Entries are already row-major sorted after Compact, so a single
	// pass fills colIdx/vals in order.
	for k, e := range c.entries {
		m.colIdx[k] = e.Col
		m.vals[k] = e.Val
	}
	return m
}

// ToCOO converts the CSR matrix back to a compacted COO: the exact
// inverse of COO.ToCSR, so COO↔CSR round trips are lossless.
func (m *CSR) ToCOO() *COO {
	c := NewCOO(m.rows, m.cols)
	c.entries = make([]Entry, 0, len(m.vals))
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c.entries = append(c.entries, Entry{Row: i, Col: m.colIdx[k], Val: m.vals[k]})
		}
	}
	c.compacted = true
	return c
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the value at (i, j) using binary search within the row.
func (m *CSR) At(i, j int) int {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// Row calls fn for every stored entry (j, v) in row i, in column
// order.
func (m *CSR) Row(i int, fn func(j, v int)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// RowSums returns the out-degree of every source.
func (m *CSR) RowSums() []int {
	sums := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k]
		}
		sums[i] = s
	}
	return sums
}

// ColSums returns the in-degree of every destination.
func (m *CSR) ColSums() []int {
	sums := make([]int, m.cols)
	for k, j := range m.colIdx {
		sums[j] += m.vals[k]
	}
	return sums
}

// Sum returns the total of all stored values.
func (m *CSR) Sum() int {
	s := 0
	for _, v := range m.vals {
		s += v
	}
	return s
}

// MatVec computes y = m·x over conventional arithmetic.
func (m *CSR) MatVec(x []int) ([]int, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("matrix: vector length %d does not match %d columns", len(x), m.cols)
	}
	y := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y, nil
}

// ToDense materializes the CSR matrix densely.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// Transpose returns the CSC-equivalent as a new CSR matrix (a
// transposed CSR is CSC of the original).
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.vals)),
		vals:   make([]int, len(m.vals)),
	}
	for _, j := range m.colIdx {
		t.rowPtr[j+1]++
	}
	for i := 0; i < t.rows; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			pos := next[j]
			next[j]++
			t.colIdx[pos] = i
			t.vals[pos] = m.vals[k]
		}
	}
	return t
}
