package matrix

// Matrix is the read-only accessor contract shared by the dense and
// sparse representations. The analysis layer (Profile, Supernodes,
// IsolatedPairs, DegreeHistogram, TopLinks) and the pattern
// classifiers consume this interface instead of *Dense, so a traffic
// matrix aggregated by the concurrent scenario engine can flow from
// the sharded COO merge straight into classification as a CSR —
// never materializing the n² cells a large sparse matrix would
// waste.
//
// The contract mirrors sparse semantics: Row visits only stored
// non-zero entries, in increasing column order, and At returns 0 for
// any cell Row would skip. Dense satisfies the contract by skipping
// its zero cells during Row; CSR satisfies it natively. Implementors
// must keep Row iteration row-major deterministic — the analysis
// helpers rely on identical visit order across representations to
// produce byte-identical results (first-seen tie-breaks).
type Matrix interface {
	// Rows returns the number of rows.
	Rows() int
	// Cols returns the number of columns.
	Cols() int
	// At returns the value at (i, j), 0 when the cell is not stored.
	At(i, j int) int
	// NNZ returns the number of non-zero cells.
	NNZ() int
	// Sum returns the total of all cells.
	Sum() int
	// Row calls fn for every non-zero entry (j, v) of row i in
	// increasing column order.
	Row(i int, fn func(j, v int))
}

// Both representations satisfy the accessor contract.
var (
	_ Matrix = (*Dense)(nil)
	_ Matrix = (*CSR)(nil)
)

// Row calls fn for every non-zero entry (j, v) of row i in column
// order, satisfying the Matrix accessor contract.
func (m *Dense) Row(i int, fn func(j, v int)) {
	base := i * m.cols
	for j := 0; j < m.cols; j++ {
		if v := m.data[base+j]; v != 0 {
			fn(j, v)
		}
	}
}
