package matrix

// Matrix is the read-only accessor contract shared by the dense and
// sparse representations. The analysis layer (Profile, Supernodes,
// IsolatedPairs, DegreeHistogram, TopLinks) and the pattern
// classifiers consume this interface instead of *Dense, so a traffic
// matrix aggregated by the concurrent scenario engine can flow from
// the sharded COO merge straight into classification as a CSR —
// never materializing the n² cells a large sparse matrix would
// waste.
//
// The contract mirrors sparse semantics: Row visits only stored
// non-zero entries, in increasing column order, and At returns 0 for
// any cell Row would skip. Dense satisfies the contract by skipping
// its zero cells during Row; CSR satisfies it natively. Implementors
// must keep Row iteration row-major deterministic — the analysis
// helpers rely on identical visit order across representations to
// produce byte-identical results (first-seen tie-breaks).
type Matrix interface {
	// Rows returns the number of rows.
	Rows() int
	// Cols returns the number of columns.
	Cols() int
	// At returns the value at (i, j), 0 when the cell is not stored.
	At(i, j int) int
	// NNZ returns the number of non-zero cells.
	NNZ() int
	// Sum returns the total of all cells.
	Sum() int
	// Row calls fn for every non-zero entry (j, v) of row i in
	// increasing column order.
	Row(i int, fn func(j, v int))
}

// Both representations satisfy the accessor contract.
var (
	_ Matrix = (*Dense)(nil)
	_ Matrix = (*CSR)(nil)
)

// Row calls fn for every non-zero entry (j, v) of row i in column
// order, satisfying the Matrix accessor contract.
func (m *Dense) Row(i int, fn func(j, v int)) {
	base := i * m.cols
	for j := 0; j < m.cols; j++ {
		if v := m.data[base+j]; v != 0 {
			fn(j, v)
		}
	}
}

// EachStored calls fn for every stored non-zero entry (i, j, v) in
// row-major, increasing-column order — the same visit order a
// Row loop produces.
//
// This is the allocation-discipline entry point for full-matrix
// scans: a naive `for i { m.Row(i, func(j, v int) {...}) }` loop
// builds a fresh closure per row (the closure captures the loop
// variable), which on the served per-window classifier path turned
// closure construction into the dominant allocation source. Here the
// concrete representations are walked directly with no closure at
// all, and the interface fallback hoists a single closure out of the
// loop, so one scan costs O(1) allocations regardless of n.
func EachStored(m Matrix, fn func(i, j, v int)) {
	switch t := m.(type) {
	case *CSR:
		for i := 0; i < t.rows; i++ {
			for k := t.rowPtr[i]; k < t.rowPtr[i+1]; k++ {
				fn(i, t.colIdx[k], t.vals[k])
			}
		}
	case *Dense:
		for i := 0; i < t.rows; i++ {
			base := i * t.cols
			for j := 0; j < t.cols; j++ {
				if v := t.data[base+j]; v != 0 {
					fn(i, j, v)
				}
			}
		}
	default:
		i := 0
		row := func(j, v int) { fn(i, j, v) }
		for i = 0; i < m.Rows(); i++ {
			m.Row(i, row)
		}
	}
}
