package matrix

import "fmt"

// Semiring bundles the add/multiply pair used by GraphBLAS-style
// matrix products. The paper motivates traffic matrices with the
// GraphBLAS ecosystem; the pattern classifier uses the OrAnd semiring
// to count paths and the PlusTimes semiring for ordinary products.
type Semiring struct {
	// Name identifies the semiring in diagnostics.
	Name string
	// Add is the commutative monoid operation with identity Zero.
	Add func(a, b int) int
	// Mul is the multiplicative operation with identity One.
	Mul func(a, b int) int
	// Zero is the additive identity (and Mul's annihilator).
	Zero int
	// One is the multiplicative identity.
	One int
}

// PlusTimes is the conventional (+,*) arithmetic semiring.
var PlusTimes = Semiring{
	Name: "plus-times",
	Add:  func(a, b int) int { return a + b },
	Mul:  func(a, b int) int { return a * b },
	Zero: 0,
	One:  1,
}

// OrAnd is the boolean (|,&) semiring on 0/1 values; products count
// reachability rather than path multiplicity.
var OrAnd = Semiring{
	Name: "or-and",
	Add: func(a, b int) int {
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	},
	Mul: func(a, b int) int {
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	},
	Zero: 0,
	One:  1,
}

// maxIdentity is the additive identity for MaxPlus: a value small
// enough to act as -inf for packet-count magnitudes.
const maxIdentity = -1 << 40

// MaxPlus is the (max,+) semiring: products compute heaviest paths.
var MaxPlus = Semiring{
	Name: "max-plus",
	Add: func(a, b int) int {
		if a > b {
			return a
		}
		return b
	},
	Mul:  func(a, b int) int { return a + b },
	Zero: maxIdentity,
	One:  0,
}

// MulSemiring computes the matrix product A⊗B over the semiring s.
// A must be r×k and B k×c; the result is r×c.
func MulSemiring(a, b *Dense, s Semiring) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("matrix: cannot multiply %dx%d by %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	for i := range out.data {
		out.data[i] = s.Zero
	}
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			av := a.data[i*a.cols+k]
			if av == s.Zero {
				continue
			}
			for j := 0; j < b.cols; j++ {
				bv := b.data[k*b.cols+j]
				if bv == s.Zero {
					continue
				}
				idx := i*out.cols + j
				out.data[idx] = s.Add(out.data[idx], s.Mul(av, bv))
			}
		}
	}
	return out, nil
}

// Mul is MulSemiring over the conventional arithmetic semiring.
func Mul(a, b *Dense) (*Dense, error) { return MulSemiring(a, b, PlusTimes) }

// TriangleCount returns the number of triangles in the undirected
// graph whose adjacency structure is m (entries are treated as
// boolean). It evaluates trace(A³)/6, the classic linear-algebra
// triangle census the GraphBLAS literature uses, which the Fig 10i
// "triangle" pattern test relies on.
func TriangleCount(m *Dense) (int, error) {
	if !m.IsSquare() {
		return 0, fmt.Errorf("matrix: triangle count needs a square matrix, got %dx%d", m.rows, m.cols)
	}
	a := m.Pattern()
	// Ignore self loops: they create degenerate "triangles".
	for i := 0; i < a.rows; i++ {
		a.Set(i, i, 0)
	}
	a2, err := Mul(a, a)
	if err != nil {
		return 0, err
	}
	a3, err := Mul(a2, a)
	if err != nil {
		return 0, err
	}
	return a3.Trace() / 6, nil
}

// Reachable returns the transitive closure of m's adjacency structure
// computed by repeated OrAnd squaring: out(i,j)=1 when a directed
// path from i to j exists (of length ≥ 1).
func Reachable(m *Dense) (*Dense, error) {
	if !m.IsSquare() {
		return nil, fmt.Errorf("matrix: reachability needs a square matrix, got %dx%d", m.rows, m.cols)
	}
	closure := m.Pattern()
	// After ⌈log2 n⌉ rounds of closure = closure | closure² the
	// result is stable for any n-vertex graph.
	for steps := 1; steps < m.rows; steps *= 2 {
		sq, err := MulSemiring(closure, closure, OrAnd)
		if err != nil {
			return nil, err
		}
		next, err := closure.EWiseMax(sq)
		if err != nil {
			return nil, err
		}
		if next.Equal(closure) {
			break
		}
		closure = next
	}
	return closure, nil
}
