package matrix

import (
	"reflect"
	"testing"
)

// Native fuzz targets for the sparse substrate. Each target decodes
// the fuzz input as a triple stream on a small matrix and asserts
// the algebraic invariants the concurrent engine leans on:
// compaction idempotence, merge-order invariance, and lossless
// representation round trips. Seed corpora live in
// testdata/fuzz/<Target>/ and are extended automatically by local
// `go test -fuzz` runs.

// decodeTriples interprets fuzz bytes as (rows, cols, triples):
// the first two bytes pick dimensions in [1,16], then every 3-byte
// group is one (row, col, val) with val in [-2, 6] so duplicate
// sums regularly cancel to zero.
func decodeTriples(data []byte) (rows, cols int, entries []Entry) {
	if len(data) < 2 {
		return 1, 1, nil
	}
	rows = int(data[0])%16 + 1
	cols = int(data[1])%16 + 1
	data = data[2:]
	for len(data) >= 3 {
		entries = append(entries, Entry{
			Row: int(data[0]) % rows,
			Col: int(data[1]) % cols,
			Val: int(data[2])%9 - 2,
		})
		data = data[3:]
	}
	return rows, cols, entries
}

// buildCOO assembles a COO from decoded triples.
func buildCOO(rows, cols int, entries []Entry) *COO {
	c := NewCOO(rows, cols)
	for _, e := range entries {
		c.Add(e.Row, e.Col, e.Val)
	}
	return c
}

// denseReference accumulates the triples densely: the ground truth
// every sparse representation must reproduce.
func denseReference(rows, cols int, entries []Entry) *Dense {
	d := NewDense(rows, cols)
	for _, e := range entries {
		d.Add(e.Row, e.Col, e.Val)
	}
	return d
}

// entriesEqual compares triple slices element-wise, treating nil and
// empty as equal (compaction may leave either).
func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertCompactInvariants checks the compacted-entries contract:
// row-major sorted, unique coordinates, no zero values.
func assertCompactInvariants(t *testing.T, es []Entry) {
	t.Helper()
	for k, e := range es {
		if e.Val == 0 {
			t.Fatalf("entry %d has zero value: %+v", k, e)
		}
		if k > 0 && !entryLess(es[k-1], e) {
			t.Fatalf("entries %d,%d out of order or duplicated: %+v, %+v", k-1, k, es[k-1], e)
		}
	}
}

func fuzzSeeds(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{4, 4})
	f.Add([]byte{3, 3, 0, 0, 5, 0, 0, 255, 1, 2, 9, 1, 2, 9, 2, 0, 2})
	f.Add([]byte{16, 1, 7, 0, 3, 7, 0, 1, 15, 0, 6, 2, 0, 0})
}

func FuzzCompact(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, entries := decodeTriples(data)
		want := denseReference(rows, cols, entries)

		c := buildCOO(rows, cols, entries)
		c.Compact()
		assertCompactInvariants(t, c.entries)
		if !c.ToDense().Equal(want) {
			t.Fatal("Compact changed the accumulated matrix")
		}
		// Idempotence, with the fast-path flag cleared so the dedup
		// pass genuinely re-runs over already-compact entries.
		once := append([]Entry(nil), c.entries...)
		c.compacted = false
		c.Compact()
		if !entriesEqual(c.entries, once) {
			t.Fatalf("Compact not idempotent: %v then %v", once, c.entries)
		}
		// CompactParallel must agree with Compact for any worker
		// count, including degenerate ones.
		for _, workers := range []int{1, 2, 7} {
			p := buildCOO(rows, cols, entries).CompactParallel(workers)
			if !entriesEqual(p.entries, once) {
				t.Fatalf("CompactParallel(%d) = %v, want %v", workers, p.entries, once)
			}
		}
	})
}

func FuzzMergeCOO(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, entries := decodeTriples(data)
		want := denseReference(rows, cols, entries)

		for _, shards := range []int{1, 2, 3, 5} {
			parts := make([]*COO, shards)
			for s := range parts {
				parts[s] = NewCOO(rows, cols)
			}
			for k, e := range entries {
				parts[k%shards].Add(e.Row, e.Col, e.Val)
			}
			merged, err := MergeCOO(parts...)
			if err != nil {
				t.Fatal(err)
			}
			assertCompactInvariants(t, merged.entries)
			if !merged.ToDense().Equal(want) {
				t.Fatalf("MergeCOO over %d shards changed the matrix", shards)
			}
			// Order invariance: merging the shards reversed (fresh
			// accumulators — MergeCOO compacts its inputs in place)
			// must produce identical entries.
			rev := make([]*COO, shards)
			for s := range rev {
				rev[s] = NewCOO(rows, cols)
			}
			for k, e := range entries {
				rev[k%shards].Add(e.Row, e.Col, e.Val)
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			back, err := MergeCOO(rev...)
			if err != nil {
				t.Fatal(err)
			}
			if !entriesEqual(back.entries, merged.entries) {
				t.Fatalf("shard order changed MergeCOO output: %v vs %v", back.entries, merged.entries)
			}
		}
	})
}

func FuzzCSRRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, entries := decodeTriples(data)
		want := denseReference(rows, cols, entries)

		csr := buildCOO(rows, cols, entries).ToCSR()
		if csr.Rows() != rows || csr.Cols() != cols {
			t.Fatalf("CSR shape %dx%d, want %dx%d", csr.Rows(), csr.Cols(), rows, cols)
		}
		if !csr.ToDense().Equal(want) {
			t.Fatal("COO→CSR→Dense differs from direct accumulation")
		}
		// Lossless COO↔CSR↔Dense round trips.
		back := csr.ToCOO()
		assertCompactInvariants(t, back.entries)
		if !reflect.DeepEqual(back.ToCSR(), csr) {
			t.Fatal("CSR→COO→CSR not identical")
		}
		if !reflect.DeepEqual(FromDense(csr.ToDense()).ToCSR(), csr) {
			t.Fatal("CSR→Dense→COO→CSR not identical")
		}
		// At must agree with the dense cells, including zeros.
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if csr.At(i, j) != want.At(i, j) {
					t.Fatalf("At(%d,%d) = %d, want %d", i, j, csr.At(i, j), want.At(i, j))
				}
			}
		}
		// Double transpose is the identity, serial or parallel.
		if !reflect.DeepEqual(csr.Transpose().Transpose(), csr) {
			t.Fatal("Transpose∘Transpose not identity")
		}
		if !reflect.DeepEqual(csr.TransposeParallel(3).TransposeParallel(2), csr) {
			t.Fatal("TransposeParallel∘TransposeParallel not identity")
		}
	})
}
