package matrix

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestWindowCompactorMatchesPerWindowCOO is the compactor's core
// contract: for a random triple stream folded concurrently in random
// order, every sealed window is bit-identical to a COO built from the
// same window's triples sequentially.
func TestWindowCompactorMatchesPerWindowCOO(t *testing.T) {
	const n, windows, triples = 12, 7, 5000
	rng := rand.New(rand.NewSource(1))
	type triple struct{ w, i, j, v int }
	all := make([]triple, triples)
	for k := range all {
		all[k] = triple{rng.Intn(windows), rng.Intn(n), rng.Intn(n), 1 + rng.Intn(5)}
	}

	// Sequential reference, in emission order.
	ref := make([]*COO, windows)
	for w := range ref {
		ref[w] = NewCOO(n, n)
	}
	for _, tr := range all {
		ref[tr.w].Add(tr.i, tr.j, tr.v)
	}

	// Concurrent fold in shuffled order across 8 goroutines.
	wc := NewWindowCompactor(n, n, windows)
	shuffled := append([]triple(nil), all...)
	rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := g; k < len(shuffled); k += 8 {
				tr := shuffled[k]
				wc.Add(tr.w, tr.i, tr.j, tr.v)
				wc.Note(tr.w, 1, 0)
			}
		}(g)
	}
	wg.Wait()

	for w := 0; w < windows; w++ {
		got, events, _ := wc.Seal(w)
		want := ref[w].ToCSR()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("window %d: sealed CSR differs from sequential reference", w)
		}
		wantEvents := 0
		for _, tr := range all {
			if tr.w == w {
				wantEvents++
			}
		}
		if events != wantEvents {
			t.Errorf("window %d: events = %d, want %d", w, events, wantEvents)
		}
	}
}

// TestWindowCompactorEmptyWindow pins that an untouched window seals
// to a valid empty CSR, not nil.
func TestWindowCompactorEmptyWindow(t *testing.T) {
	wc := NewWindowCompactor(4, 4, 2)
	m, events, extra := wc.Seal(1)
	if m == nil || m.NNZ() != 0 || m.Rows() != 4 || m.Cols() != 4 {
		t.Fatalf("empty window sealed to %+v", m)
	}
	if events != 0 || extra != 0 {
		t.Fatalf("empty window tallies = %d, %d", events, extra)
	}
}

// TestWindowCompactorSealReleasesStorage pins the bounded-memory
// property the streaming engine relies on: sealing drops the shard,
// so PendingNNZ shrinks as windows close.
func TestWindowCompactorSealReleasesStorage(t *testing.T) {
	wc := NewWindowCompactor(8, 8, 3)
	for k := 0; k < 100; k++ {
		wc.Add(k%3, k%8, (k*3)%8, 1)
	}
	before := wc.PendingNNZ()
	if before != 100 {
		t.Fatalf("PendingNNZ = %d before sealing, want 100", before)
	}
	wc.Seal(0)
	wc.Seal(1)
	if after := wc.PendingNNZ(); after >= before || after == 0 {
		t.Fatalf("PendingNNZ = %d after sealing two of three windows (was %d)", after, before)
	}
}

// TestWindowCompactorMisusePanics pins the guard rails: double seal
// and add-after-seal are engine bugs and must fail loudly.
func TestWindowCompactorMisusePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	wc := NewWindowCompactor(2, 2, 1)
	wc.Seal(0)
	expectPanic("double seal", func() { wc.Seal(0) })
	expectPanic("add after seal", func() { wc.Add(0, 0, 0, 1) })
	expectPanic("note after seal", func() { wc.Note(0, 1, 0) })
}
