package matrix

import (
	"fmt"
	"sync"
)

// The incremental window compactor: the bounded-memory counterpart of
// building one COO per window over a fully materialized trace. A
// WindowCompactor holds one COO shard per aggregation window; event
// triples stream in concurrently in any order, and each window is
// compacted to CSR — and its builder storage released — the moment
// the caller knows no more triples can reach it (Seal). Because
// compaction sorts triples by coordinate and sums duplicates, the
// sealed CSR is a pure function of the window's triple multiset:
// identical for any arrival order, any worker count, any interleaving.
// That multiset-determinism is what lets the netsim streaming engine
// keep the batch engine's bit-identical-output contract while
// finalizing windows mid-run.

// WindowCompactor accumulates (window, row, col, value) triples into
// per-window COO shards and compacts each shard to CSR on Seal. Add
// and Note are safe for concurrent use (per-window locking); Seal for
// a given window must not race with Adds to that same window — the
// caller's sealing discipline (all contributing producers finished)
// is exactly what makes that safe.
type WindowCompactor struct {
	rows, cols int
	shards     []*COO
	locks      []sync.Mutex
	events     []int
	extra      []int
	sealed     []bool
	// arena, when non-nil, supplies each window shard's builder
	// storage (sized by hint triples) and receives it back on Seal —
	// the sealed CSR itself is always freshly allocated and belongs
	// to the consumer.
	arena *Arena
	hint  int
}

// NewWindowCompactor builds a compactor for `windows` aggregation
// intervals over rows×cols matrices.
func NewWindowCompactor(rows, cols, windows int) *WindowCompactor {
	return NewWindowCompactorArena(nil, rows, cols, windows, 0)
}

// NewWindowCompactorArena is NewWindowCompactor with the per-window
// builder storage pooled in an arena. hint pre-sizes each window's
// slab request (typically the request's event budget divided by the
// window count); a nil arena makes both extra parameters moot.
func NewWindowCompactorArena(a *Arena, rows, cols, windows, hint int) *WindowCompactor {
	if windows < 0 {
		panic(fmt.Sprintf("matrix: negative window count %d", windows))
	}
	return &WindowCompactor{
		rows:   rows,
		cols:   cols,
		shards: make([]*COO, windows),
		locks:  make([]sync.Mutex, windows),
		events: make([]int, windows),
		extra:  make([]int, windows),
		sealed: make([]bool, windows),
		arena:  a,
		hint:   hint,
	}
}

// Windows returns the number of aggregation intervals.
func (wc *WindowCompactor) Windows() int { return len(wc.shards) }

// Add folds the triple (i, j, v) into window w's shard. The shard is
// allocated lazily, so untouched windows cost nothing until sealed.
func (wc *WindowCompactor) Add(w, i, j, v int) {
	wc.locks[w].Lock()
	defer wc.locks[w].Unlock()
	if wc.sealed[w] {
		panic(fmt.Sprintf("matrix: Add to sealed window %d", w))
	}
	if wc.shards[w] == nil {
		wc.shards[w] = NewCOOIn(wc.arena, wc.rows, wc.cols, wc.hint)
	}
	wc.shards[w].Add(i, j, v)
}

// Note records window bookkeeping that is not matrix data: events
// counts an observation, extra accumulates a caller-defined tally
// (the netsim engine counts dropped packet volume there). Both are
// returned by Seal.
func (wc *WindowCompactor) Note(w, events, extra int) {
	wc.locks[w].Lock()
	defer wc.locks[w].Unlock()
	if wc.sealed[w] {
		panic(fmt.Sprintf("matrix: Note on sealed window %d", w))
	}
	wc.events[w] += events
	wc.extra[w] += extra
}

// Seal compacts window w to CSR, releases its builder storage (into
// the arena, when the compactor has one), and returns the matrix
// with the window's noted tallies. Sealing twice panics: a sealed
// window's data is gone, and handing out an empty matrix in its
// place would silently corrupt a stream.
func (wc *WindowCompactor) Seal(w int) (m *CSR, events, extra int) {
	wc.locks[w].Lock()
	defer wc.locks[w].Unlock()
	if wc.sealed[w] {
		panic(fmt.Sprintf("matrix: window %d sealed twice", w))
	}
	wc.sealed[w] = true
	shard := wc.shards[w]
	wc.shards[w] = nil
	if shard == nil {
		shard = NewCOO(wc.rows, wc.cols)
	}
	csr := shard.ToCSR()
	shard.Release()
	return csr, wc.events[w], wc.extra[w]
}

// PendingNNZ reports the total un-compacted triples currently
// buffered across unsealed windows: the compactor's live builder
// footprint, exposed so the streaming benchmarks can show memory
// staying bounded by the open-window set rather than the run length.
func (wc *WindowCompactor) PendingNNZ() int {
	total := 0
	for w := range wc.shards {
		wc.locks[w].Lock()
		if wc.shards[w] != nil {
			total += wc.shards[w].Len()
		}
		wc.locks[w].Unlock()
	}
	return total
}
