package matrix

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

func TestSlabPoolReuse(t *testing.T) {
	p := NewSlabPool[Entry](1 << 20)
	s := p.Get(1000)
	if len(s) != 0 || cap(s) < 1000 {
		t.Fatalf("Get(1000) = len %d cap %d", len(s), cap(s))
	}
	got := cap(s)
	p.Put(s)
	r := p.Get(900)
	if cap(r) != got {
		t.Fatalf("expected the pooled slab (cap %d) back, got cap %d", got, cap(r))
	}
	st := p.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 hit / 1 put", st)
	}
}

func TestSlabPoolBestFit(t *testing.T) {
	p := NewSlabPool[Entry](1 << 20)
	small := p.Get(100)
	big := p.Get(10000)
	p.Put(big)
	p.Put(small)
	// A small ask must take the small slab, leaving the big one for a
	// big ask.
	if got := p.Get(80); cap(got) >= 10000 {
		t.Fatalf("small ask stole the big slab (cap %d)", cap(got))
	}
	if got := p.Get(9000); cap(got) < 10000 {
		t.Fatalf("big ask missed the big slab, got cap %d", cap(got))
	}
}

func TestSlabPoolEvictionBound(t *testing.T) {
	p := NewSlabPool[Entry](1000)
	for i := 0; i < 10; i++ {
		p.Put(make([]Entry, 0, 300))
	}
	st := p.Stats()
	if st.Retained > 1000 {
		t.Fatalf("retained %d exceeds the 1000-element bound", st.Retained)
	}
	if st.Drops == 0 {
		t.Fatal("expected evictions beyond the bound")
	}
}

func TestSlabPoolNilSafe(t *testing.T) {
	var p *SlabPool[Entry]
	s := p.Get(10)
	if len(s) != 0 || cap(s) < 10 {
		t.Fatalf("nil pool Get = len %d cap %d", len(s), cap(s))
	}
	p.Put(s)
	if st := p.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", st)
	}
	var a *Arena
	if s := a.GetEntries(10); cap(s) < 10 {
		t.Fatal("nil arena GetEntries under-capacity")
	}
	a.PutEntries(nil)
	_ = a.Stats()
}

func TestCOOReleaseRefilesStorage(t *testing.T) {
	a := NewArena()
	c := NewCOOIn(a, 8, 8, 500)
	c.Add(1, 2, 3)
	c.Release()
	if st := a.Stats(); st.Puts != 1 {
		t.Fatalf("release did not refile the slab: %+v", st)
	}
	// A second builder of similar size reuses the slab.
	before := a.Stats().Hits
	d := NewCOOIn(a, 8, 8, 400)
	if a.Stats().Hits != before+1 {
		t.Fatal("fresh builder missed the refiled slab")
	}
	d.Add(0, 0, 1)
	if got := d.ToCSR().At(0, 0); got != 1 {
		t.Fatalf("reused builder produced %d, want 1", got)
	}
}

func TestCOOReleaseIsIdempotentAndGuards(t *testing.T) {
	c := NewCOOIn(NewArena(), 4, 4, 10)
	c.Add(0, 1, 2)
	c.Release()
	c.Release() // must not double-file the slab
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a released COO did not panic")
		}
	}()
	c.Add(0, 0, 1)
}

func TestMergeCOOArenaParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	build := func(a *Arena) []*COO {
		r := rand.New(rand.NewSource(31))
		parts := make([]*COO, 5)
		for s := range parts {
			parts[s] = NewCOOIn(a, 40, 40, 0)
			for k := 0; k < 500+r.Intn(500); k++ {
				parts[s].Add(r.Intn(40), r.Intn(40), 1+r.Intn(5))
			}
		}
		return parts
	}
	_ = rng
	plain, err := MergeCOO(build(nil)...)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	parts := build(a)
	pooled, err := MergeCOOArena(context.Background(), a, parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Entries(), pooled.Entries()) {
		t.Fatal("arena-backed merge differs from the plain merge")
	}
	// The merged output copies every triple: releasing the parts and
	// the merged matrix afterwards must leave a usable pool, and a
	// second identical round must produce identical triples again
	// from recycled slabs.
	want := plain.Entries()
	for _, p := range parts {
		p.Release()
	}
	csr := pooled.ToCSR()
	pooled.Release()
	parts2 := build(a)
	pooled2, err := MergeCOOArena(context.Background(), a, parts2...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, pooled2.Entries()) {
		t.Fatal("second merge over recycled slabs differs")
	}
	if a.Stats().Hits == 0 {
		t.Fatal("second round did not reuse any slab")
	}
	// The first round's CSR must be untouched by the reuse.
	if !reflect.DeepEqual(csr.ToCOO().Entries(), want) {
		t.Fatal("consumer-owned CSR was corrupted by slab reuse")
	}
}

func TestWindowCompactorArenaParity(t *testing.T) {
	type add struct{ w, i, j, v int }
	rng := rand.New(rand.NewSource(17))
	var adds []add
	for k := 0; k < 4000; k++ {
		adds = append(adds, add{rng.Intn(6), rng.Intn(20), rng.Intn(20), 1 + rng.Intn(4)})
	}
	run := func(wc *WindowCompactor) []*CSR {
		for _, ad := range adds {
			wc.Add(ad.w, ad.i, ad.j, ad.v)
			wc.Note(ad.w, 1, 0)
		}
		out := make([]*CSR, wc.Windows())
		for w := range out {
			out[w], _, _ = wc.Seal(w)
		}
		return out
	}
	plain := run(NewWindowCompactor(20, 20, 6))
	a := NewArena()
	pooled := run(NewWindowCompactorArena(a, 20, 20, 6, 700))
	for w := range plain {
		if !reflect.DeepEqual(plain[w].ToCOO().Entries(), pooled[w].ToCOO().Entries()) {
			t.Fatalf("window %d differs between plain and arena compactors", w)
		}
	}
	if a.Stats().Puts == 0 {
		t.Fatal("Seal did not refile any builder slab")
	}
	// Sealing released the builders; a second compactor on the same
	// arena must reuse them and reproduce the same windows.
	pooled2 := run(NewWindowCompactorArena(a, 20, 20, 6, 700))
	if a.Stats().Hits == 0 {
		t.Fatal("second compactor did not reuse any slab")
	}
	for w := range plain {
		if !reflect.DeepEqual(plain[w].ToCOO().Entries(), pooled2[w].ToCOO().Entries()) {
			t.Fatalf("window %d differs after slab reuse", w)
		}
	}
}
