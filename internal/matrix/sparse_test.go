package matrix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCOOCompactSumsDuplicates(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(1, 1, 2)
	c.Add(1, 1, 3)
	c.Add(0, 2, 1)
	c.Compact()
	if c.Len() != 2 {
		t.Fatalf("compacted to %d entries, want 2", c.Len())
	}
	if got := c.ToDense().At(1, 1); got != 5 {
		t.Errorf("duplicate sum = %d, want 5", got)
	}
}

func TestCOOCompactDropsZeroSums(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 4)
	c.Add(0, 0, -4)
	c.Add(1, 1, 1)
	c.Compact()
	if c.Len() != 1 {
		t.Errorf("zero-sum cell kept: %v", c.Entries())
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	c := NewCOO(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Add(2, 0, 1)
}

func TestCOODenseRoundTripProperty(t *testing.T) {
	f := func(vals [12]uint8) bool {
		d := NewDense(3, 4)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				d.Set(i, j, int(vals[i*4+j])%5)
			}
		}
		return FromDense(d).ToDense().Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSRFromCOO(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(2, 0, 7)
	c.Add(0, 1, 3)
	c.Add(2, 2, 1)
	m := c.ToCSR()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(2, 0) != 7 || m.At(0, 1) != 3 || m.At(1, 1) != 0 {
		t.Error("CSR At wrong")
	}
}

func TestCSRRowIteration(t *testing.T) {
	c := NewCOO(2, 4)
	c.Add(1, 3, 9)
	c.Add(1, 0, 4)
	m := c.ToCSR()
	var cols, vals []int
	m.Row(1, func(j, v int) {
		cols = append(cols, j)
		vals = append(vals, v)
	})
	if !reflect.DeepEqual(cols, []int{0, 3}) || !reflect.DeepEqual(vals, []int{4, 9}) {
		t.Errorf("Row iteration: cols=%v vals=%v", cols, vals)
	}
}

func TestCSRSumsMatchDenseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		d := NewDense(rows, cols)
		c := NewCOO(rows, cols)
		for k := 0; k < rows*cols/2+1; k++ {
			i, j, v := rng.Intn(rows), rng.Intn(cols), 1+rng.Intn(9)
			d.Add(i, j, v)
			c.Add(i, j, v)
		}
		m := c.ToCSR()
		if !reflect.DeepEqual(m.RowSums(), d.RowSums()) {
			t.Fatalf("trial %d: RowSums differ", trial)
		}
		if !reflect.DeepEqual(m.ColSums(), d.ColSums()) {
			t.Fatalf("trial %d: ColSums differ", trial)
		}
		if m.Sum() != d.Sum() {
			t.Fatalf("trial %d: Sum differs", trial)
		}
		if !m.ToDense().Equal(d) {
			t.Fatalf("trial %d: ToDense differs", trial)
		}
	}
}

func TestCSRMatVec(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 0, 1)
	c.Add(0, 2, 2)
	c.Add(1, 1, 3)
	m := c.ToCSR()
	y, err := m.MatVec([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, []int{7, 6}) {
		t.Errorf("MatVec = %v", y)
	}
	if _, err := m.MatVec([]int{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCSRTranspose(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 2, 5)
	c.Add(1, 0, 7)
	tr := c.ToCSR().Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 0) != 5 || tr.At(0, 1) != 7 {
		t.Error("transpose values wrong")
	}
}

func TestCSRTransposeInvolutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		c := NewCOO(rows, cols)
		for k := 0; k < 6; k++ {
			c.Add(rng.Intn(rows), rng.Intn(cols), 1+rng.Intn(5))
		}
		m := c.ToCSR()
		if !m.Transpose().Transpose().ToDense().Equal(m.ToDense()) {
			t.Fatalf("trial %d: transpose not involutive", trial)
		}
	}
}

func TestCSRAtBoundsPanic(t *testing.T) {
	m := NewCOO(2, 2).ToCSR()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.At(0, 5)
}
