package matrix

import "sort"

// Profile summarizes the structural features of a traffic matrix that
// the paper's learning modules train students to read by eye: how
// many links are active, how concentrated traffic is on single
// sources or destinations, whether the pattern is symmetric, and
// whether hosts talk to themselves. The pattern classifier consumes a
// Profile rather than re-deriving features ad hoc.
type Profile struct {
	// N is the matrix dimension (square matrices only).
	N int
	// NNZ is the number of active (non-zero) links.
	NNZ int
	// Sum is the total packet count.
	Sum int
	// MaxEntry is the largest single-cell packet count.
	MaxEntry int
	// OutFan[i] is the number of distinct destinations source i
	// sends to; InFan[j] is the number of distinct sources that send
	// to destination j.
	OutFan, InFan []int
	// MaxOutFan and MaxInFan are the largest fan-out/fan-in.
	MaxOutFan, MaxInFan int
	// DiagNNZ is the number of non-zero diagonal cells (self loops).
	DiagNNZ int
	// OffDiagNNZ is NNZ minus DiagNNZ.
	OffDiagNNZ int
	// Symmetric reports whether the matrix equals its transpose.
	Symmetric bool
	// ActiveSources and ActiveDests count rows/cols with any
	// traffic.
	ActiveSources, ActiveDests int
	// Reciprocal counts unordered pairs {i,j}, i≠j, linked in both
	// directions.
	Reciprocal int
}

// NewProfile computes the structural profile of a square dense
// matrix. It is ProfileOf restricted to the historical *Dense
// signature.
func NewProfile(m *Dense) Profile { return ProfileOf(m) }

// ProfileOf computes the structural profile of a square matrix
// through the read-only accessor, visiting only stored non-zeros:
// O(nnz·log deg) on a CSR instead of the dense O(n²) scan.
// Non-square matrices yield a zero profile with N = -1.
func ProfileOf(m Matrix) Profile {
	if m.Rows() != m.Cols() {
		return Profile{N: -1}
	}
	n := m.Rows()
	p := Profile{
		N:         n,
		NNZ:       m.NNZ(),
		Sum:       m.Sum(),
		OutFan:    make([]int, n),
		InFan:     make([]int, n),
		Symmetric: true,
	}
	EachStored(m, func(i, j, v int) {
		if v > p.MaxEntry {
			p.MaxEntry = v
		}
		p.OutFan[i]++
		p.InFan[j]++
		if i == j {
			p.DiagNNZ++
			return
		}
		// One transposed lookup settles both symmetry and (for
		// the upper triangle) reciprocity. Lower-triangle entries
		// only matter for symmetry, so skip their lookup once
		// asymmetry is established.
		if i < j || p.Symmetric {
			r := m.At(j, i)
			if r != v {
				p.Symmetric = false
			}
			if i < j && r != 0 {
				p.Reciprocal++
			}
		}
	})
	p.OffDiagNNZ = p.NNZ - p.DiagNNZ
	for i := 0; i < n; i++ {
		if p.OutFan[i] > p.MaxOutFan {
			p.MaxOutFan = p.OutFan[i]
		}
		if p.InFan[i] > p.MaxInFan {
			p.MaxInFan = p.InFan[i]
		}
		if p.OutFan[i] > 0 {
			p.ActiveSources++
		}
		if p.InFan[i] > 0 {
			p.ActiveDests++
		}
	}
	return p
}

// HotSpot identifies a vertex with unusually concentrated traffic.
type HotSpot struct {
	// Index is the vertex (row/column) position.
	Index int
	// Fan is the number of distinct peers.
	Fan int
	// Packets is the traffic volume through the vertex in the
	// concentrated direction.
	Packets int
	// Direction is "in" for a destination supernode (many sources →
	// one destination) or "out" for a source supernode.
	Direction string
}

// Supernodes returns vertices whose fan-in or fan-out is at least
// minFan, the dense entry point of SupernodesOf.
func Supernodes(m *Dense, minFan int) []HotSpot { return SupernodesOf(m, minFan) }

// SupernodesOf returns vertices whose fan-in or fan-out is at least
// minFan, sorted by decreasing fan then index: the "supernode"
// concept from the paper's traffic-topologies module. A vertex can
// appear twice, once per direction.
func SupernodesOf(m Matrix, minFan int) []HotSpot {
	p := ProfileOf(m)
	if p.N < 0 {
		return nil
	}
	rowSums := make([]int, p.N)
	colSums := make([]int, p.N)
	EachStored(m, func(i, j, v int) {
		rowSums[i] += v
		colSums[j] += v
	})
	var hits []HotSpot
	for i := 0; i < p.N; i++ {
		if p.OutFan[i] >= minFan {
			hits = append(hits, HotSpot{Index: i, Fan: p.OutFan[i], Packets: rowSums[i], Direction: "out"})
		}
		if p.InFan[i] >= minFan {
			hits = append(hits, HotSpot{Index: i, Fan: p.InFan[i], Packets: colSums[i], Direction: "in"})
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Fan != hits[b].Fan {
			return hits[a].Fan > hits[b].Fan
		}
		if hits[a].Index != hits[b].Index {
			return hits[a].Index < hits[b].Index
		}
		return hits[a].Direction < hits[b].Direction
	})
	return hits
}

// IsolatedPairs returns the unordered pairs {i,j} that exchange
// traffic only with each other, the dense entry point of
// IsolatedPairsOf.
func IsolatedPairs(m *Dense) [][2]int { return IsolatedPairsOf(m) }

// IsolatedPairsOf returns the unordered pairs {i,j} that exchange
// traffic only with each other (their entire fan is the pair), the
// paper's "isolated links" topology. Self loops are ignored. The
// sparse formulation tracks each vertex's unique off-diagonal peer
// in one pass over the stored entries — O(nnz + n) instead of the
// dense O(n³) pair scan.
func IsolatedPairsOf(m Matrix) [][2]int {
	if m.Rows() != m.Cols() {
		return nil
	}
	n := m.Rows()
	const (
		noPeer   = -1
		manyPeer = -2
	)
	// peer[v] is v's sole off-diagonal counterparty (either
	// direction), or manyPeer once a second one appears.
	peer := make([]int, n)
	for i := range peer {
		peer[i] = noPeer
	}
	note := func(v, other int) {
		switch peer[v] {
		case noPeer:
			peer[v] = other
		case other:
		default:
			peer[v] = manyPeer
		}
	}
	EachStored(m, func(i, j, _ int) {
		if i == j {
			return
		}
		note(i, j)
		note(j, i)
	})
	var pairs [][2]int
	for i := 0; i < n; i++ {
		if j := peer[i]; j > i && peer[j] == i {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return pairs
}

// DegreeHistogram returns the unweighted degree distribution, the
// dense entry point of DegreeHistogramOf.
func DegreeHistogram(m *Dense) []int { return DegreeHistogramOf(m) }

// DegreeHistogramOf returns counts[k] = number of vertices with
// unweighted total degree k (in-fan + out-fan). The multi-temporal
// analysis literature the paper cites studies exactly these degree
// distributions.
func DegreeHistogramOf(m Matrix) []int {
	p := ProfileOf(m)
	if p.N < 0 {
		return nil
	}
	maxDeg := 0
	degs := make([]int, p.N)
	for i := 0; i < p.N; i++ {
		degs[i] = p.OutFan[i] + p.InFan[i]
		if degs[i] > maxDeg {
			maxDeg = degs[i]
		}
	}
	counts := make([]int, maxDeg+1)
	for _, d := range degs {
		counts[d]++
	}
	return counts
}

// TopLinks returns the k heaviest links, the dense entry point of
// TopLinksOf.
func TopLinks(m *Dense, k int) []Entry { return TopLinksOf(m, k) }

// TopLinksOf returns the k heaviest (row, col, value) triples in
// decreasing value order (ties broken by row then col). Useful for
// "which link dominates this matrix?" quiz content.
func TopLinksOf(m Matrix, k int) []Entry {
	all := make([]Entry, 0, m.NNZ())
	EachStored(m, func(i, j, v int) {
		all = append(all, Entry{Row: i, Col: j, Val: v})
	})
	sort.Slice(all, func(a, b int) bool {
		if all[a].Val != all[b].Val {
			return all[a].Val > all[b].Val
		}
		if all[a].Row != all[b].Row {
			return all[a].Row < all[b].Row
		}
		return all[a].Col < all[b].Col
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}
