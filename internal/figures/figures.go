package figures

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/engine"
	"repro/internal/game"
	"repro/internal/gdscript"
	"repro/internal/matrix"
	"repro/internal/modules"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/render"
)

// Artifact is one regenerated file: text, or a PPM image when PPM
// is non-nil.
type Artifact struct {
	// Name is the suggested file name.
	Name string
	// Text is the text content (empty for images).
	Text string
	// PPM holds binary image bytes when the artifact is an image.
	PPM []byte
}

// Figure is one paper artifact with its regeneration function.
type Figure struct {
	// ID is the experiment id ("T1", "F5", …).
	ID string
	// Paper names the artifact as the paper does.
	Paper string
	// Title describes the content.
	Title string
	// Generate produces the artifacts and a one-line summary of the
	// reproduced claim.
	Generate func() ([]Artifact, string, error)
}

// All returns every table and figure in paper order.
func All() []Figure {
	return []Figure{
		{ID: "T1", Paper: "Table I", Title: "Game engine comparison", Generate: genTableI},
		{ID: "T2", Paper: "Table II", Title: "3D modeling tool comparison", Generate: genTableII},
		{ID: "F1", Paper: "Fig 1", Title: "Hello World in C#, Python, and GDScript", Generate: genFig1},
		{ID: "F2", Paper: "Fig 2", Title: "Scene tree of the training level", Generate: genFig2},
		{ID: "F3", Paper: "Fig 3", Title: "Export variables in the Inspector", Generate: genFig3},
		{ID: "F4", Paper: "Fig 4", Title: "X and Y label nodes", Generate: genFig4},
		{ID: "F5", Paper: "Fig 5", Title: "Traffic matrix training level", Generate: genFig5},
		{ID: "F6", Paper: "Fig 6", Title: "Traffic topologies", Generate: genFamily(patterns.FamilyTopology, classifyTopology)},
		{ID: "F7", Paper: "Fig 7", Title: "Notional attack", Generate: genFamily(patterns.FamilyAttack, classifyAttack)},
		{ID: "F8", Paper: "Fig 8", Title: "Security, defense, deterrence", Generate: genFamily(patterns.FamilySDD, classifySDD)},
		{ID: "F9", Paper: "Fig 9", Title: "DDoS attack", Generate: genFig9},
		{ID: "F10", Paper: "Fig 10", Title: "Graph theory patterns", Generate: genFamily(patterns.FamilyGraph, classifyGraph)},
	}
}

// Lookup finds a figure by ID.
func Lookup(id string) (Figure, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

func genTableI() ([]Artifact, string, error) {
	t := TableI()
	return []Artifact{{Name: "table1_engines.txt", Text: t.Render()}},
		fmt.Sprintf("6 criteria × 3 engines; Godot selected for cost (%q) and GDScript", t.Rows[0].Cells[0]), nil
}

func genTableII() ([]Artifact, string, error) {
	t := TableII()
	// Verify the MagicaVoxel column's capability claims against the
	// voxel substitute so the table is backed by living code.
	checks := VerifyVoxelCapabilities()
	var b strings.Builder
	b.WriteString(t.Render())
	b.WriteString("\nMagicaVoxel-column capabilities verified against internal/voxel:\n")
	failed := 0
	for _, c := range checks {
		mark := "ok"
		if !c.OK {
			mark = "FAIL"
			failed++
		}
		fmt.Fprintf(&b, "  [%s] %s — %s\n", mark, c.Claim, c.Evidence)
	}
	if failed > 0 {
		return nil, "", fmt.Errorf("figures: %d Table II capability checks failed", failed)
	}
	return []Artifact{{Name: "table2_modeling.txt", Text: b.String()}},
		fmt.Sprintf("5 criteria × 3 tools; all %d MagicaVoxel capability rows verified in code", len(checks)), nil
}

func genFig1() ([]Artifact, string, error) {
	script, err := gdscript.Parse(gdscript.HelloWorldGDScript)
	if err != nil {
		return nil, "", err
	}
	inst, err := gdscript.NewInstance(script, nil)
	if err != nil {
		return nil, "", err
	}
	if err := inst.Ready(); err != nil {
		return nil, "", err
	}
	output := inst.Stdout.String()
	if output != "Hello, world!\n" {
		return nil, "", fmt.Errorf("figures: GDScript hello world printed %q", output)
	}
	var b strings.Builder
	b.WriteString("(a) C#\n" + gdscript.HelloWorldCSharp + "\n")
	b.WriteString("(b) Python\n" + gdscript.HelloWorldPython + "\n")
	b.WriteString("(c) GDScript\n" + gdscript.HelloWorldGDScript + "\n")
	b.WriteString("GDScript listing executed by internal/gdscript, output: " + output)
	return []Artifact{{Name: "fig1_hello_world.txt", Text: b.String()}},
		"three listings reproduced; the GDScript one runs on our interpreter and prints Hello, world!", nil
}

// trainingScene builds and starts the training level scene.
func trainingScene() (*engine.SceneTree, error) {
	root, err := game.BuildLevelScene(game.TrainingModule())
	if err != nil {
		return nil, err
	}
	tree := engine.NewSceneTree(root)
	tree.Start()
	return tree, nil
}

func genFig2() ([]Artifact, string, error) {
	tree, err := trainingScene()
	if err != nil {
		return nil, "", err
	}
	text := tree.Root().TreeString()
	nodes := 0
	tree.Root().Walk(func(*engine.Node) bool { nodes++; return true })
	return []Artifact{{Name: "fig2_scene_tree.txt", Text: text}},
		fmt.Sprintf("training-level scene tree rebuilt: %d nodes under %s", nodes, tree.Root().Name()), nil
}

func genFig3() ([]Artifact, string, error) {
	tree, err := trainingScene()
	if err != nil {
		return nil, "", err
	}
	controller := tree.Root().MustGetNode(game.NodeController)
	text := engine.Inspector(controller)
	return []Artifact{{Name: "fig3_inspector.txt", Text: text}},
		fmt.Sprintf("controller exports %d variables editable in the Inspector", controller.Props().Len()), nil
}

func genFig4() ([]Artifact, string, error) {
	tree, err := trainingScene()
	if err != nil {
		return nil, "", err
	}
	x := tree.Root().MustGetNode(game.NodeXAxis)
	y := tree.Root().MustGetNode(game.NodeYAxis)
	text := x.TreeString() + "\n" + y.TreeString()
	return []Artifact{{Name: "fig4_axis_nodes.txt", Text: text}},
		fmt.Sprintf("X and Y axes carry %d and %d label nodes", x.ChildCount(), y.ChildCount()), nil
}

func genFig5() ([]Artifact, string, error) {
	module := game.TrainingModule()
	var arts []Artifact

	// (a) 2D view.
	fb2d, err := game.RenderStatic(module, false, 0, true)
	if err != nil {
		return nil, "", err
	}
	arts = append(arts, Artifact{Name: "fig5a_training_2d.txt", Text: fb2d.Text()})

	// (b) 3D view.
	fb3d, err := game.RenderStatic(module, true, 0, true)
	if err != nil {
		return nil, "", err
	}
	arts = append(arts, Artifact{Name: "fig5b_training_3d.txt", Text: fb3d.Text()})

	// (c) all packets placed, reached by actually playing.
	g, err := game.New(game.TrainingLesson(), "figure-harness", rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, "", err
	}
	for _, a := range []game.Action{game.ActionToggleColors, game.ActionFillAll, game.ActionToggleView} {
		g.Update(a)
	}
	if !g.Level().Complete() {
		return nil, "", fmt.Errorf("figures: training level not complete after fill")
	}
	fbDone, err := g.Level().Render()
	if err != nil {
		return nil, "", err
	}
	arts = append(arts, Artifact{Name: "fig5c_training_complete.txt", Text: fbDone.Text()})

	// Voxel-exact PPM screenshot of the completed warehouse.
	target := g.Level().Target()
	colors, err := module.Colors()
	if err != nil {
		return nil, "", err
	}
	scene, err := render.ComposeWarehouse(target, colors, g.Level().Placed(), true)
	if err != nil {
		return nil, "", err
	}
	iso := render.VoxelIso(scene, 0)
	var ppm bytes.Buffer
	if err := iso.WritePPM(&ppm, 2, 4); err != nil {
		return nil, "", err
	}
	arts = append(arts, Artifact{Name: "fig5c_training_complete.ppm", PPM: ppm.Bytes()})

	return arts, fmt.Sprintf("training level rendered 2D+3D and played to completion (%d boxes placed)", target.Sum()), nil
}

// classify callbacks return a verdict line for a family panel.
type classifier func(m *matrix.Dense, e patterns.Entry) (string, bool)

func classifyTopology(m *matrix.Dense, e patterns.Entry) (string, bool) {
	got := patterns.ClassifyTopology(m, patterns.StandardZones10)
	return got.String(), got.String() == e.Title
}

func classifyAttack(m *matrix.Dense, e patterns.Entry) (string, bool) {
	got, conf := patterns.ClassifyAttackStage(m, patterns.StandardZones10)
	return fmt.Sprintf("%s (confidence %.2f)", got, conf), got.String() == e.Title
}

func classifySDD(m *matrix.Dense, e patterns.Entry) (string, bool) {
	got, conf := patterns.ClassifyPosture(m, patterns.StandardZones10)
	return fmt.Sprintf("%s (confidence %.2f)", got, conf), got.String() == e.Title
}

func classifyGraph(m *matrix.Dense, e patterns.Entry) (string, bool) {
	got := patterns.ClassifyGraph(m)
	return got.String(), got.String() == e.Title
}

// genFamily renders every panel of a module family with its color
// overlay and checks the family classifier recovers the panel's
// concept.
func genFamily(family patterns.Family, classify classifier) func() ([]Artifact, string, error) {
	return func() ([]Artifact, string, error) {
		var arts []Artifact
		correct, total := 0, 0
		var summary []string
		for _, e := range patterns.ByFamily(family) {
			m, colors, err := e.Build()
			if err != nil {
				return nil, "", err
			}
			fb, err := render.Matrix2D(m, render.Matrix2DOptions{
				Labels:     patterns.StandardLabels10,
				Colors:     colors,
				ShowColors: true,
				Title:      fmt.Sprintf("Fig %s: %s", e.Figure, e.Title),
			})
			if err != nil {
				return nil, "", err
			}
			verdict, ok := classify(m, e)
			total++
			if ok {
				correct++
			}
			text := fb.Text() + fmt.Sprintf("\nclassifier: %s — %s\n", verdict, okString(ok))
			arts = append(arts, Artifact{Name: fmt.Sprintf("fig%s_%s.txt", e.Figure, slugify(e.Title)), Text: text})
			summary = append(summary, fmt.Sprintf("%s→%s", e.Figure, okString(ok)))
		}
		if correct != total {
			return nil, "", fmt.Errorf("figures: %s: classifier recovered %d/%d panels", family, correct, total)
		}
		return arts, fmt.Sprintf("%d/%d panels classified correctly (%s)", correct, total, strings.Join(summary, " ")), nil
	}
}

// genFig9 extends the family generator with the netsim cross-check:
// the live DDoS scenario must reproduce the same component shapes.
func genFig9() ([]Artifact, string, error) {
	roles, err := patterns.AssignDDoSRoles(patterns.StandardZones10)
	if err != nil {
		return nil, "", err
	}
	arts, summary, err := genFamily(patterns.FamilyDDoS, func(m *matrix.Dense, e patterns.Entry) (string, bool) {
		got, conf := patterns.ClassifyDDoS(m, roles)
		return fmt.Sprintf("%s (confidence %.2f)", got, conf), got.String() == e.Title
	})()
	if err != nil {
		return nil, "", err
	}

	// Cross-check: simulate the DDoS live and classify each phase
	// window.
	net := netsim.StandardNetwork()
	rng := rand.New(rand.NewSource(99))
	trace, phases, err := netsim.DDoSScenario(net, rng, 40)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	b.WriteString("Live netsim DDoS cross-check (10s windows over a 40s scenario):\n")
	matched := 0
	for _, phase := range phases {
		window := trace.Between(phase.Start, phase.End)
		m, _ := window.Matrix(net)
		got, conf := patterns.ClassifyDDoS(m, roles)
		ok := got == phase.Component
		if ok {
			matched++
		}
		fmt.Fprintf(&b, "  [%5.1fs,%5.1fs) %-20s → %-20s conf %.2f %s\n",
			phase.Start, phase.End, phase.Component, got, conf, okString(ok))
	}
	if matched != len(phases) {
		return nil, "", fmt.Errorf("figures: netsim DDoS phases matched %d/%d", matched, len(phases))
	}
	arts = append(arts, Artifact{Name: "fig9_netsim_crosscheck.txt", Text: b.String()})
	return arts, summary + fmt.Sprintf("; live scenario phases matched %d/%d", matched, len(phases)), nil
}

func okString(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

// slugify lowercases and hyphenates a title for file names.
func slugify(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == '-':
			out = append(out, '-')
		}
	}
	return string(out)
}

// Module library sanity used by the harness summary: every built-in
// lesson validates.
func builtinLessonCount() (int, error) {
	lessons, err := modules.AllLessons()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, l := range lessons {
		if issues := l.Validate(); !issues.OK() {
			return 0, fmt.Errorf("figures: lesson %s invalid: %s", l.Name, issues.Errs())
		}
		n += l.Len()
	}
	return n, nil
}

// Summary runs every figure and returns the experiment-index
// summary block, used by cmd/twfigures and EXPERIMENTS.md.
func Summary() (string, error) {
	var b strings.Builder
	b.WriteString("Paper artifact reproduction summary\n")
	for _, f := range All() {
		_, line, err := f.Generate()
		if err != nil {
			return "", fmt.Errorf("%s (%s): %w", f.ID, f.Paper, err)
		}
		fmt.Fprintf(&b, "  %-3s %-9s %s — %s\n", f.ID, f.Paper, f.Title+":", line)
	}
	n, err := builtinLessonCount()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  built-in module library: %d modules across %d lessons, all valid\n", n, len(modules.LessonNames))
	return b.String(), nil
}
