// Package figures regenerates every table and figure of the paper:
// Table I (game-engine comparison), Table II (3D-modeling-tool
// comparison), and Figures 1–10. Each artifact is produced from
// typed data or live package output — never from hard-coded screen
// text — so the harness doubles as an integration test of the whole
// system.
package figures

import (
	"strings"

	"repro/internal/term"
)

// TableRow is one criterion row of a comparison table.
type TableRow struct {
	// Criterion is the row label.
	Criterion string
	// Cells are the per-column values.
	Cells []string
}

// ComparisonTable is a typed comparison table.
type ComparisonTable struct {
	// Title is the table caption.
	Title string
	// Columns are the compared products.
	Columns []string
	// Rows are the criteria.
	Rows []TableRow
}

// Render prints the table with box-drawing borders.
func (t ComparisonTable) Render() string {
	tab := term.NewTable(append([]string{""}, t.Columns...)...)
	for _, r := range t.Rows {
		tab.AddRow(append([]string{r.Criterion}, r.Cells...)...)
	}
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	b.WriteString(tab.String())
	return b.String()
}

// TableI reproduces the paper's Table I: "Comparison between the
// Godot engine and two other industry standards, Unity and Unreal."
func TableI() ComparisonTable {
	return ComparisonTable{
		Title:   "Table I: Game engine comparison (Godot vs Unity vs Unreal)",
		Columns: []string{"Godot", "Unity", "Unreal"},
		Rows: []TableRow{
			{Criterion: "Cost", Cells: []string{
				"Always Free",
				"Free when making less than $100k/yr",
				"Free when making less than $1mil",
			}},
			{Criterion: "Language Used", Cells: []string{"C#, GDScript", "C#", "C++"}},
			{Criterion: "Can Import .obj", Cells: []string{"Yes", "Yes", "Yes"}},
			{Criterion: "Exports to Platform", Cells: []string{
				"HTML5, Windows, Mac, *NIX",
				"HTML5, Windows, Mac, *NIX",
				"HTML5, Windows, Mac, *NIX",
			}},
			{Criterion: "Online Tutorials", Cells: []string{"Some", "Many", "Many"}},
			{Criterion: "Asset Store", Cells: []string{
				"Almost non-existent",
				"Many high quality assets",
				"Many high quality assets",
			}},
		},
	}
}

// TableII reproduces the paper's Table II: "Comparison between two
// industry standard 3D modeling programs and MagicaVoxel."
func TableII() ComparisonTable {
	return ComparisonTable{
		Title:   "Table II: 3D modeling tool comparison (MagicaVoxel vs Blender vs Maya)",
		Columns: []string{"MagicaVoxel", "Blender", "Maya"},
		Rows: []TableRow{
			{Criterion: "Cost", Cells: []string{"Free to use", "Free to use", "$1,875/yr"}},
			{Criterion: "Model Creation", Cells: []string{
				"LEGO-like voxel building",
				"Polygon mesh, digital sculpting",
				"Polygon mesh, digital sculpting",
			}},
			{Criterion: "Texture Creation", Cells: []string{
				"Paint-by-voxel, place colored voxel",
				"UV Unwrapping, paint-on-model",
				"UV Unwrapping, paint-on-model",
			}},
			{Criterion: "Animation", Cells: []string{
				"Simple animations",
				"Advanced animations",
				"Advanced animations",
			}},
			{Criterion: "Can export to .obj", Cells: []string{"Yes", "Yes", "Yes"}},
		},
	}
}
