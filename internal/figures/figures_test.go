package figures

import (
	"strings"
	"testing"
)

// TestAllFiguresGenerate is the big integration test: every paper
// artifact must regenerate without error and report a summary.
func TestAllFiguresGenerate(t *testing.T) {
	for _, f := range All() {
		arts, summary, err := f.Generate()
		if err != nil {
			t.Fatalf("%s (%s): %v", f.ID, f.Paper, err)
		}
		if len(arts) == 0 {
			t.Errorf("%s: no artifacts", f.ID)
		}
		if summary == "" {
			t.Errorf("%s: empty summary", f.ID)
		}
		for _, a := range arts {
			if a.Name == "" {
				t.Errorf("%s: artifact without name", f.ID)
			}
			if a.Text == "" && a.PPM == nil {
				t.Errorf("%s: artifact %s is empty", f.ID, a.Name)
			}
		}
	}
}

func TestFigureCount(t *testing.T) {
	if got := len(All()); got != 12 {
		t.Errorf("registry has %d artifacts, want 12 (2 tables + 10 figures)", got)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("F5"); !ok {
		t.Error("F5 missing")
	}
	if _, ok := Lookup("F99"); ok {
		t.Error("F99 found")
	}
}

func TestTableIContent(t *testing.T) {
	tab := TableI()
	out := tab.Render()
	for _, want := range []string{
		"Godot", "Unity", "Unreal",
		"Always Free", "C#, GDScript",
		"Almost non-existent", "HTML5, Windows, Mac, *NIX",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	if len(tab.Rows) != 6 {
		t.Errorf("Table I has %d rows, want 6", len(tab.Rows))
	}
}

func TestTableIIContent(t *testing.T) {
	tab := TableII()
	out := tab.Render()
	for _, want := range []string{
		"MagicaVoxel", "Blender", "Maya",
		"LEGO-like voxel building", "$1,875/yr",
		"Paint-by-voxel", "Simple animations",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	if len(tab.Rows) != 5 {
		t.Errorf("Table II has %d rows, want 5", len(tab.Rows))
	}
}

func TestVoxelCapabilitiesAllVerified(t *testing.T) {
	checks := VerifyVoxelCapabilities()
	if len(checks) != 5 {
		t.Fatalf("capability checks = %d, want 5 (one per Table II row)", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("capability %q failed: %s", c.Claim, c.Evidence)
		}
	}
}

func TestSummaryMentionsEveryArtifact(t *testing.T) {
	summary, err := Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range All() {
		if !strings.Contains(summary, f.ID) {
			t.Errorf("summary missing %s", f.ID)
		}
	}
	if !strings.Contains(summary, "25 modules") {
		t.Errorf("summary missing module-library line:\n%s", summary)
	}
}

func TestFig5ArtifactsIncludeScreenshot(t *testing.T) {
	f, _ := Lookup("F5")
	arts, _, err := f.Generate()
	if err != nil {
		t.Fatal(err)
	}
	hasPPM := false
	for _, a := range arts {
		if a.PPM != nil {
			hasPPM = true
			if !strings.HasPrefix(string(a.PPM[:2]), "P6") {
				t.Error("PPM artifact is not a P6 image")
			}
		}
	}
	if !hasPPM {
		t.Error("Fig 5 has no voxel screenshot")
	}
	if len(arts) != 4 {
		t.Errorf("Fig 5 artifacts = %d, want 4", len(arts))
	}
}

func TestFigureTextsCarryClassifierVerdicts(t *testing.T) {
	f, _ := Lookup("F10")
	arts, _, err := f.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arts {
		if !strings.Contains(a.Text, "classifier:") || !strings.Contains(a.Text, "ok") {
			t.Errorf("%s missing classifier verdict", a.Name)
		}
	}
}
