package figures

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/voxel"
)

// CapabilityCheck is one verified claim from Table II's MagicaVoxel
// column.
type CapabilityCheck struct {
	// Claim is the table cell being verified.
	Claim string
	// Evidence describes what the check did.
	Evidence string
	// OK reports whether the capability held.
	OK bool
}

// VerifyVoxelCapabilities exercises internal/voxel against each
// capability Table II credits MagicaVoxel with, so the comparison
// table is backed by a working substitute rather than prose.
func VerifyVoxelCapabilities() []CapabilityCheck {
	var checks []CapabilityCheck

	// "LEGO-like voxel building": build a pallet voxel by voxel and
	// confirm structure.
	pallet := voxel.Pallet(voxel.PaintWood)
	checks = append(checks, CapabilityCheck{
		Claim:    "Model creation: LEGO-like voxel building",
		Evidence: fmt.Sprintf("built pallet asset from %d voxels", pallet.Count()),
		OK:       pallet.Count() > 0,
	})

	// "Paint-by-voxel, place colored voxel": place voxels of
	// several colors and read them back.
	m := voxel.New(4, 4, 4)
	m.Set(0, 0, 0, voxel.PaintBlue)
	m.Set(1, 0, 0, voxel.PaintRed)
	m.Set(2, 0, 0, voxel.PaintGrey)
	paintOK := m.At(0, 0, 0) == voxel.PaintBlue && m.At(1, 0, 0) == voxel.PaintRed && m.At(2, 0, 0) == voxel.PaintGrey
	checks = append(checks, CapabilityCheck{
		Claim:    "Texture creation: paint-by-voxel, place colored voxel",
		Evidence: "placed blue/red/grey voxels and read them back",
		OK:       paintOK,
	})

	// "Simple animations": the box-drop animation loops.
	anim, err := voxel.BoxDropAnimation(6)
	animOK := err == nil && anim.Len() == 6 && anim.FrameAt(anim.Duration()*2.5) != nil
	checks = append(checks, CapabilityCheck{
		Claim:    "Animation: simple animations",
		Evidence: "built a 6-frame box-drop animation and sampled it mid-loop",
		OK:       animOK,
	})

	// "Can export to .obj": export the box mesh and check OBJ
	// structure.
	var obj, mtl bytes.Buffer
	mesh := voxel.GreedyMesh(voxel.Box())
	objErr := voxel.WriteOBJ(&obj, mesh, "box", "box.mtl")
	mtlErr := voxel.WriteMTL(&mtl, mesh)
	objText := obj.String()
	objOK := objErr == nil && mtlErr == nil &&
		strings.Contains(objText, "v ") && strings.Contains(objText, "f ") &&
		strings.Contains(objText, "usemtl") && strings.Contains(mtl.String(), "newmtl")
	checks = append(checks, CapabilityCheck{
		Claim:    "Can export to .obj: yes",
		Evidence: fmt.Sprintf("exported box mesh: %d quads, %d bytes OBJ + MTL", len(mesh.Quads), obj.Len()),
		OK:       objOK,
	})

	// "Cost: free to use": trivially true of a stdlib package; we
	// record it for completeness.
	checks = append(checks, CapabilityCheck{
		Claim:    "Cost: free to use",
		Evidence: "stdlib-only package in this repository",
		OK:       true,
	})
	return checks
}
