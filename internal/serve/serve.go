// Package serve is the HTTP face of the api façade, extracted from
// cmd/twserve so every front-end that serves the api.Core surface —
// the twserve binary, its proxy mode, and the test harnesses that
// need a real backend over a socket — shares one route table instead
// of each re-implementing the wire contract.
//
//	GET    /v1/healthz          liveness probe (static, no core call)
//	GET    /v1/catalog          scenario + figure-pattern catalog
//	POST   /v1/generate         api.GenerateRequest  → api.GenerateResult
//	POST   /v1/generate/stream  api.GenerateRequest  → NDJSON frame stream
//	POST   /v1/analyze          api.AnalyzeRequest   → api.AnalyzeResult
//	POST   /v1/module           api.ModuleRequest    → core.Module JSON
//	POST   /v1/campaign         api.CampaignRequest  → bridge.Campaign JSON
//	POST   /v1/player                      create a player account
//	GET    /v1/player/{id}                 account view (history + progress)
//	POST   /v1/player/{id}/attempt         start a quiz attempt on a module
//	POST   /v1/player/{id}/attempt/{n}     submit an answer for attempt n
//	GET    /v1/player/{id}/progress        course-progress summary
//	POST   /v1/player/{id}/progress        complete a unit ({"unit": ...})
//	GET    /v1/player/mastery              cohort item statistics
//	GET    /v1/sessions         in-flight work (merged across workers)
//	DELETE /v1/sessions/{id}    cancel one in-flight run
//	GET    /v1/cache            result-cache counters (fleet aggregate)
//	GET    /v1/stats            per-worker, per-shard counters
//
// Player errors map onto statuses through the package's sentinels: an
// unknown player or unit is 404, a duplicate create / replayed attempt
// / locked unit is 409, and a rate-limited player gets 429 with a
// Retry-After header (and a retry_after_ms field in the error
// envelope, which is how a cluster proxy reconstructs the identical
// error on its side of the wire).
//
// A mux built with NewProxyMux additionally mounts the live ring
// membership surface a cluster proxy needs:
//
//	GET    /v1/cluster          current backend list
//	POST   /v1/cluster/add      {"backend": url} — grow the ring
//	POST   /v1/cluster/remove   {"backend": url} — shrink + drain
//
// Every handler is written against api.Core, so the same table
// fronts a single *api.Service, a router.Pool of in-process workers,
// or a cluster.Cluster of remote twserve processes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/player"
	"repro/internal/router"
)

// MaxBodyBytes bounds request bodies; an analyze matrix at the
// paper's sizes is a few KB, so 8 MiB leaves room for large posted
// matrices without inviting abuse.
const MaxBodyBytes = 8 << 20

// NewServer builds the hardened http.Server around a handler.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:    addr,
		Handler: h,
		// A client trickling its headers or body must not pin a
		// connection forever; idle keep-alives recycle after two
		// minutes. ReadTimeout comfortably covers an 8 MiB body on a
		// slow classroom link.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
		// WriteTimeout is deliberately absent: it clocks from the end
		// of the request headers, and the streaming route legitimately
		// writes frames for as long as a big run takes — a fixed write
		// deadline would sever healthy long streams. Slow or hung
		// batch readers are bounded by the request context instead
		// (client hangup cancels end to end).
	}
}

// Membership is the live-ring admin surface a cluster proxy exposes:
// grow or shrink the backend set under load. An Add error means the
// backend spec was unusable (HTTP 400); a Remove error means the
// backend is not a member (HTTP 404). Remove reports whether the
// departing backend's in-flight requests drained before the bounded
// drain window closed.
type Membership interface {
	AddBackend(backend string) error
	RemoveBackend(backend string) (drained bool, err error)
	Backends() []string
}

// NewMux builds the route table over a service core.
func NewMux(svc api.Core) http.Handler { return NewProxyMux(svc, nil) }

// NewProxyMux builds the route table plus, when m is non-nil, the
// cluster membership routes.
func NewProxyMux(svc api.Core, m Membership) http.Handler {
	routes := "GET /v1/healthz · GET /v1/catalog · POST /v1/generate · POST /v1/generate/stream · POST /v1/analyze · POST /v1/module · POST /v1/campaign · POST /v1/player · GET /v1/player/{id} · POST /v1/player/{id}/attempt · POST /v1/player/{id}/attempt/{n} · GET|POST /v1/player/{id}/progress · GET /v1/player/mastery · GET /v1/sessions · DELETE /v1/sessions/{id} · GET /v1/cache · GET /v1/stats"
	if m != nil {
		routes += " · GET /v1/cluster · POST /v1/cluster/add · POST /v1/cluster/remove"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			httpError(w, http.StatusNotFound, fmt.Errorf("no such route %s (api version %s)", r.URL.Path, api.Version))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{
			"service": "twserve",
			"version": api.Version,
			"routes":  routes,
		})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the route answers the moment the listener is
		// up, without a round-trip through the core (a proxy's healthz
		// must not depend on its backends being reachable). CI and
		// orchestration poll this instead of a real route.
		writeJSON(w, http.StatusOK, HealthResult{Status: "ok", Version: api.Version})
	})
	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Catalog(r.Context()))
	})
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		var req api.GenerateRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.Generate(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		w.Header().Set("X-Cache", cacheHeader(res.CacheHit))
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/generate/stream", func(w http.ResponseWriter, r *http.Request) {
		var req api.GenerateRequest
		if !readJSON(w, r, &req) {
			return
		}
		flusher, _ := w.(http.Flusher)
		wroteAny := false
		err := svc.GenerateStream(r.Context(), req, func(f api.StreamFrame) error {
			if !wroteAny {
				// Headers commit on the first frame, after validation has
				// already passed inside GenerateStream.
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				wroteAny = true
			}
			if err := api.EncodeFrame(w, f); err != nil {
				return err
			}
			if flusher != nil {
				// Flush per frame: the whole point of the route is that a
				// window leaves the process the moment it seals, not when
				// the response buffer happens to fill.
				flusher.Flush()
			}
			return nil
		})
		if err == nil {
			return
		}
		if !wroteAny {
			// Nothing committed yet: answer like the batch route (400 for
			// invalid requests, and so on).
			serviceError(w, r, err)
			return
		}
		// Mid-stream failure: the status line is gone, so the error
		// travels in-band as a final frame. A hung-up client won't see
		// it, which is fine — it ended the stream on purpose.
		if encErr := api.EncodeFrame(w, api.StreamFrame{Type: api.FrameError, Error: err.Error()}); encErr == nil && flusher != nil {
			flusher.Flush()
		}
	})
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		var req api.AnalyzeRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.Analyze(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		w.Header().Set("X-Cache", cacheHeader(res.CacheHit))
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/module", func(w http.ResponseWriter, r *http.Request) {
		var req api.ModuleRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.Module(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/campaign", func(w http.ResponseWriter, r *http.Request) {
		var req api.CampaignRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.Campaign(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/player", func(w http.ResponseWriter, r *http.Request) {
		var req api.PlayerCreateRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, err := svc.PlayerCreate(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/player/{id}", func(w http.ResponseWriter, r *http.Request) {
		res, err := svc.PlayerGet(r.Context(), api.PlayerGetRequest{ID: r.PathValue("id")})
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/player/{id}/attempt", func(w http.ResponseWriter, r *http.Request) {
		var req api.AttemptStartRequest
		if !readJSON(w, r, &req) {
			return
		}
		req.Player = r.PathValue("id")
		res, err := svc.PlayerAttemptStart(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/player/{id}/attempt/{n}", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.ParseInt(r.PathValue("n"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad attempt id %q", r.PathValue("n")))
			return
		}
		var req api.AttemptSubmitRequest
		if !readJSON(w, r, &req) {
			return
		}
		req.Player, req.Attempt = r.PathValue("id"), n
		res, err := svc.PlayerAttemptSubmit(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/player/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		res, err := svc.PlayerProgress(r.Context(), api.ProgressRequest{Player: r.PathValue("id")})
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/player/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		var req api.ProgressRequest
		if !readJSON(w, r, &req) {
			return
		}
		req.Player = r.PathValue("id")
		if req.Unit == "" {
			httpError(w, http.StatusBadRequest, errors.New(`advancing needs a unit; send {"unit": "..."} (or GET for the summary)`))
			return
		}
		res, err := svc.PlayerProgress(r.Context(), req)
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	// The literal route wins over GET /v1/player/{id} by the mux's
	// most-specific-pattern rule, so "mastery" is not a usable player
	// ID on the wire (ValidID would admit it).
	mux.HandleFunc("GET /v1/player/mastery", func(w http.ResponseWriter, r *http.Request) {
		res, err := svc.PlayerMastery(r.Context())
		if err != nil {
			serviceError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Sessions())
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad session id %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, CancelResult{Cancelled: svc.CancelSession(id)})
	})
	mux.HandleFunc("GET /v1/cache", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.CacheStats())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	if m != nil {
		mountCluster(mux, m)
	}
	return mux
}

// CancelResult answers DELETE /v1/sessions/{id}: whether an
// in-flight run with that ID was found and cancelled.
type CancelResult struct {
	Cancelled bool `json:"cancelled"`
}

// MembershipResult answers the cluster admin routes with the
// post-change backend list; Drained reports (on remove) whether the
// departing backend's in-flight requests completed inside the drain
// window.
type MembershipResult struct {
	Backends []string `json:"backends"`
	Drained  *bool    `json:"drained,omitempty"`
}

// membershipReq is the admin request body naming one backend.
type membershipReq struct {
	Backend string `json:"backend"`
}

// mountCluster adds the live-ring admin routes.
func mountCluster(mux *http.ServeMux, m Membership) {
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, MembershipResult{Backends: m.Backends()})
	})
	mux.HandleFunc("POST /v1/cluster/add", func(w http.ResponseWriter, r *http.Request) {
		var req membershipReq
		if !readJSON(w, r, &req) {
			return
		}
		if err := m.AddBackend(req.Backend); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, MembershipResult{Backends: m.Backends()})
	})
	mux.HandleFunc("POST /v1/cluster/remove", func(w http.ResponseWriter, r *http.Request) {
		var req membershipReq
		if !readJSON(w, r, &req) {
			return
		}
		drained, err := m.RemoveBackend(req.Backend)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, MembershipResult{Backends: m.Backends(), Drained: &drained})
	})
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// readJSON decodes a bounded request body, answering 413 when the
// body busts the size cap and 400 on garbage. It reports whether
// the handler should proceed.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return false
	}
	if len(body) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty request body; send a JSON request object"))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// serviceError maps façade errors onto status codes: invalid
// requests are the caller's fault (400), a cancelled request context
// means the client hung up (499, best-effort — the connection is
// usually gone), a proxy with no live backends is temporarily
// unavailable (503), everything else is a 500.
func serviceError(w http.ResponseWriter, r *http.Request, err error) {
	var limited *player.RateLimitError
	switch {
	case errors.Is(err, api.ErrInvalidRequest), errors.Is(err, player.ErrInvalid):
		httpError(w, http.StatusBadRequest, err)
	case errors.Is(err, player.ErrNotFound):
		httpError(w, http.StatusNotFound, err)
	case errors.As(err, &limited):
		// Per-player throttle: Retry-After carries whole seconds
		// (rounded up, minimum 1 — the header has no finer unit), the
		// envelope's retry_after_ms the exact wait. A cluster proxy
		// rebuilds the identical RateLimitError from the envelope, so
		// the response is bit-identical through the proxy hop.
		secs := (limited.RetryAfter + time.Second - 1) / time.Second
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(int64(secs), 10))
		ms := limited.RetryAfter.Milliseconds()
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Version: api.Version, RetryAfterMS: &ms})
	case errors.Is(err, player.ErrConflict), errors.Is(err, api.ErrSessionCancelled):
		// A player-state collision (duplicate create, replayed attempt,
		// locked unit), or the run was killed server-side
		// (CancelSession) while this client was still connected.
		httpError(w, http.StatusConflict, err)
	case errors.Is(err, router.ErrEmptyRing):
		// Every backend was removed from the ring: the proxy is up but
		// cannot place the key anywhere. Retryable once an operator
		// adds a backend, so 503 rather than 500.
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled), errors.Is(r.Context().Err(), context.Canceled):
		// 499 is nginx's "client closed request"; there is no
		// standard constant.
		httpError(w, 499, err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// errorBody is the uniform error envelope. RetryAfterMS rides along
// on 429s only: it is the machine-readable form of the Retry-After
// header (exact milliseconds, where the header is coarse seconds),
// and the field a cluster proxy reads to reconstruct the backend's
// RateLimitError precisely.
type errorBody struct {
	Error        string `json:"error"`
	Version      string `json:"version"`
	RetryAfterMS *int64 `json:"retry_after_ms,omitempty"`
}

// HealthResult answers GET /v1/healthz.
type HealthResult struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error(), Version: api.Version})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// api.WriteJSON encodes through a pooled buffer and reaches the
	// socket in one Write — a large generate result no longer
	// allocates a fresh multi-megabyte encode buffer per response.
	if err := api.WriteJSON(w, v); err != nil {
		// Headers are gone; nothing to do but log.
		log.Printf("serve: encode response: %v", err)
	}
}
