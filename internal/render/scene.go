package render

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/voxel"
)

// Voxel-exact rendering: ComposeWarehouse assembles the full voxel
// scene (checkerboard floor, one pallet per matrix cell, one box per
// packet) from the built-in MagicaVoxel-style assets, and VoxelIso
// splats any voxel model to the framebuffer in isometric projection.
// These are the paths behind the PPM "screenshots" of Fig 5; the
// terminal plays the lighter Iso3D view.

// cellPitch is the voxel spacing between adjacent pallet cells.
const cellPitch = voxel.PalletSize + 2

// ComposeWarehouse builds the warehouse voxel scene for a traffic
// matrix. Boxes stack one per packet; colors select the pallet
// material when showColors is set (grey/blue/red with the black
// fallback, per the game's material swap).
func ComposeWarehouse(m *matrix.Dense, colors *matrix.Dense, placed *matrix.Dense, showColors bool) (*voxel.Model, error) {
	n := m.Rows()
	if m.Cols() != n {
		return nil, fmt.Errorf("render: warehouse scene needs a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	if colors != nil && (colors.Rows() != n || colors.Cols() != n) {
		return nil, fmt.Errorf("render: color matrix %dx%d does not match %dx%d", colors.Rows(), colors.Cols(), n, n)
	}
	if placed != nil && (placed.Rows() != n || placed.Cols() != n) {
		return nil, fmt.Errorf("render: placed matrix %dx%d does not match %dx%d", placed.Rows(), placed.Cols(), n, n)
	}
	maxCount := m.Max()
	if placed != nil {
		if pm := placed.Max(); pm > maxCount {
			maxCount = pm
		}
	}
	sceneW := n * cellPitch
	sceneD := n * cellPitch
	sceneH := 1 + 3 + maxCount*voxel.BoxSize + 1
	scene := voxel.New(sceneW, sceneH, sceneD)

	// Checkerboard floor.
	for ti := 0; ti < n; ti++ {
		for tj := 0; tj < n; tj++ {
			tile := voxel.FloorTile((ti+tj)%2 == 1)
			blit(scene, tile, tj*cellPitch, 0, ti*cellPitch)
		}
	}
	box := voxel.Box()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			material := uint8(voxel.PaintWood)
			if showColors && colors != nil {
				material = voxel.MaterialForColorCode(colors.At(i, j))
			}
			pallet := voxel.Pallet(material)
			// Rows run along Z (depth), columns along X.
			ox := j*cellPitch + 1
			oz := i*cellPitch + 1
			blit(scene, pallet, ox, 1, oz)
			count := m.At(i, j)
			if placed != nil {
				count = placed.At(i, j)
			}
			for b := 0; b < count; b++ {
				blit(scene, box, ox+2, 4+b*voxel.BoxSize, oz+2)
			}
		}
	}
	return scene, nil
}

// blit copies every non-empty voxel of src into dst at the offset,
// clipping at dst's bounds.
func blit(dst, src *voxel.Model, ox, oy, oz int) {
	w, h, d := src.Size()
	for y := 0; y < h; y++ {
		for z := 0; z < d; z++ {
			for x := 0; x < w; x++ {
				if c := src.At(x, y, z); c != voxel.Empty && dst.InBounds(ox+x, oy+y, oz+z) {
					dst.Set(ox+x, oy+y, oz+z, c)
				}
			}
		}
	}
}

// VoxelIso renders a voxel model in 2:1 isometric projection. Each
// voxel splats two character cells; the painter's order (back to
// front, bottom to top) resolves occlusion.
func VoxelIso(m *voxel.Model, rot Rotation) *Framebuffer {
	w, h, d := m.Size()
	palette := m.Palette()
	// Projected extents: sx = 2*(x' - z'), sy = (x' + z') - y.
	width := 2*(w+d) + 2
	height := w + d + h + 2
	fb := NewFramebuffer(width, height)
	offsetX := 2 * d // shifts min sx to ≥ 0
	offsetY := h     // shifts min sy to ≥ 0

	// rotated returns the model coordinates for rotated iteration
	// coordinates, turning the model in quarter turns about Y.
	rotated := func(x, z int) (mx, mz int) {
		switch rot.Normalize() {
		case 1:
			return z, w - 1 - x
		case 2:
			return w - 1 - x, d - 1 - z
		case 3:
			return d - 1 - z, x
		default:
			return x, z
		}
	}
	// After rotation the iterated footprint swaps dimensions for
	// odd rotations.
	iw, id := w, d
	if rot.Normalize() == 1 || rot.Normalize() == 3 {
		iw, id = d, w
	}
	for s := 0; s <= iw+id-2; s++ {
		for x := 0; x < iw; x++ {
			z := s - x
			if z < 0 || z >= id {
				continue
			}
			mx, mz := rotated(x, z)
			for y := 0; y < h; y++ {
				c := m.At(mx, y, mz)
				if c == voxel.Empty {
					continue
				}
				rgb := palette[c]
				sx := 2*(x-z) + offsetX
				sy := (x + z) - y + offsetY
				cell := Cell{Ch: '█', FG: rgb, HasFG: true, BG: rgb, HasBG: true}
				fb.Set(sx, sy, cell)
				fb.Set(sx+1, sy, cell)
			}
		}
	}
	return fb
}
