// Package render is the software renderer standing in for Godot's
// viewport: a character framebuffer with ANSI-terminal, plain-text,
// and PPM-image backends, a top-down 2D traffic-matrix view, and an
// isometric 3D projection of the voxel warehouse with the four Q/E
// rotations. Every figure in the paper is a screenshot of one of
// these views.
package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/term"
	"repro/internal/voxel"
)

// Cell is one character cell: a rune plus optional foreground and
// background colors in full RGB (quantized to 16 colors for ANSI
// output, kept exact for PPM output).
type Cell struct {
	// Ch is the glyph; zero renders as space.
	Ch rune
	// FG and BG are the colors; valid only when HasFG/HasBG.
	FG, BG voxel.RGB
	// HasFG and HasBG mark whether the colors are set.
	HasFG, HasBG bool
	// Bold marks emphasized text.
	Bold bool
}

// Framebuffer is a W×H grid of cells with (0,0) at the top left.
type Framebuffer struct {
	w, h  int
	cells []Cell
}

// NewFramebuffer returns a cleared framebuffer.
func NewFramebuffer(w, h int) *Framebuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("render: invalid framebuffer size %dx%d", w, h))
	}
	return &Framebuffer{w: w, h: h, cells: make([]Cell, w*h)}
}

// Size returns the width and height.
func (f *Framebuffer) Size() (w, h int) { return f.w, f.h }

// InBounds reports whether (x,y) is inside the framebuffer.
func (f *Framebuffer) InBounds(x, y int) bool {
	return x >= 0 && x < f.w && y >= 0 && y < f.h
}

// Set writes a cell; writes outside the framebuffer are clipped.
func (f *Framebuffer) Set(x, y int, c Cell) {
	if !f.InBounds(x, y) {
		return
	}
	f.cells[y*f.w+x] = c
}

// At returns the cell at (x,y); a zero Cell outside the bounds.
func (f *Framebuffer) At(x, y int) Cell {
	if !f.InBounds(x, y) {
		return Cell{}
	}
	return f.cells[y*f.w+x]
}

// DrawText writes a string starting at (x,y) with the given colors,
// clipping at the right edge.
func (f *Framebuffer) DrawText(x, y int, s string, fg voxel.RGB, hasFG, bold bool) {
	for i, r := range []rune(s) {
		cell := f.At(x+i, y)
		cell.Ch = r
		cell.FG = fg
		cell.HasFG = hasFG
		cell.Bold = bold
		f.Set(x+i, y, cell)
	}
}

// FillBG paints the background of the inclusive rectangle.
func (f *Framebuffer) FillBG(x0, y0, x1, y1 int, bg voxel.RGB) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			cell := f.At(x, y)
			cell.BG = bg
			cell.HasBG = true
			f.Set(x, y, cell)
		}
	}
}

// Text renders the framebuffer as plain text lines, trimming
// trailing spaces on each line.
func (f *Framebuffer) Text() string {
	var b strings.Builder
	for y := 0; y < f.h; y++ {
		line := make([]rune, f.w)
		for x := 0; x < f.w; x++ {
			ch := f.cells[y*f.w+x].Ch
			if ch == 0 {
				ch = ' '
			}
			line[x] = ch
		}
		b.WriteString(strings.TrimRight(string(line), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// ANSI renders the framebuffer with 16-color escape sequences
// (subject to term.SetEnabled).
func (f *Framebuffer) ANSI() string {
	var b strings.Builder
	for y := 0; y < f.h; y++ {
		for x := 0; x < f.w; x++ {
			cell := f.cells[y*f.w+x]
			ch := cell.Ch
			if ch == 0 {
				ch = ' '
			}
			style := term.Style{Bold: cell.Bold}
			if cell.HasFG {
				style.FG = QuantizeANSI(cell.FG)
			}
			if cell.HasBG {
				style.BG = QuantizeANSI(cell.BG)
			}
			b.WriteString(style.Apply(string(ch)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePPM writes the framebuffer as a binary PPM (P6) image, the
// repo's screenshot format: each cell becomes a cellW×cellH pixel
// block of its background color (foreground color when only a glyph
// is present; dark grey otherwise).
func (f *Framebuffer) WritePPM(w io.Writer, cellW, cellH int) error {
	if cellW < 1 || cellH < 1 {
		return fmt.Errorf("render: invalid PPM cell size %dx%d", cellW, cellH)
	}
	imgW, imgH := f.w*cellW, f.h*cellH
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", imgW, imgH); err != nil {
		return err
	}
	background := voxel.RGB{R: 0x20, G: 0x20, B: 0x24}
	row := make([]byte, imgW*3)
	for cy := 0; cy < f.h; cy++ {
		for py := 0; py < cellH; py++ {
			for cx := 0; cx < f.w; cx++ {
				cell := f.cells[cy*f.w+cx]
				rgb := background
				switch {
				case cell.HasBG:
					rgb = cell.BG
				case cell.HasFG && cell.Ch != 0 && cell.Ch != ' ':
					rgb = cell.FG
				}
				for px := 0; px < cellW; px++ {
					o := (cx*cellW + px) * 3
					row[o], row[o+1], row[o+2] = rgb.R, rgb.G, rgb.B
				}
			}
			if _, err := w.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// ansiPalette approximates the 16 ANSI colors for quantization.
var ansiPalette = []struct {
	color term.Color
	rgb   voxel.RGB
}{
	{term.Black, voxel.RGB{R: 0x00, G: 0x00, B: 0x00}},
	{term.Red, voxel.RGB{R: 0xaa, G: 0x00, B: 0x00}},
	{term.Green, voxel.RGB{R: 0x00, G: 0xaa, B: 0x00}},
	{term.Yellow, voxel.RGB{R: 0xaa, G: 0x55, B: 0x00}},
	{term.Blue, voxel.RGB{R: 0x00, G: 0x00, B: 0xaa}},
	{term.Magenta, voxel.RGB{R: 0xaa, G: 0x00, B: 0xaa}},
	{term.Cyan, voxel.RGB{R: 0x00, G: 0xaa, B: 0xaa}},
	{term.White, voxel.RGB{R: 0xaa, G: 0xaa, B: 0xaa}},
	{term.BrightBlack, voxel.RGB{R: 0x55, G: 0x55, B: 0x55}},
	{term.BrightRed, voxel.RGB{R: 0xff, G: 0x55, B: 0x55}},
	{term.BrightGreen, voxel.RGB{R: 0x55, G: 0xff, B: 0x55}},
	{term.BrightYellow, voxel.RGB{R: 0xff, G: 0xff, B: 0x55}},
	{term.BrightBlue, voxel.RGB{R: 0x55, G: 0x55, B: 0xff}},
	{term.BrightMagenta, voxel.RGB{R: 0xff, G: 0x55, B: 0xff}},
	{term.BrightCyan, voxel.RGB{R: 0x55, G: 0xff, B: 0xff}},
	{term.BrightWhite, voxel.RGB{R: 0xff, G: 0xff, B: 0xff}},
}

// QuantizeANSI maps an RGB color to the nearest of the 16 ANSI
// colors by squared distance.
func QuantizeANSI(c voxel.RGB) term.Color {
	best, bestDist := term.Default, 1<<62
	for _, entry := range ansiPalette {
		dr := int(c.R) - int(entry.rgb.R)
		dg := int(c.G) - int(entry.rgb.G)
		db := int(c.B) - int(entry.rgb.B)
		dist := dr*dr + dg*dg + db*db
		if dist < bestDist {
			best, bestDist = entry.color, dist
		}
	}
	return best
}
