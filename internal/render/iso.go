package render

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/voxel"
)

// The 3D view: "The student has the ability to go into a 3D mode by
// pressing the spacebar key. The student can rotate the view using
// the Q and E keys." Iso3D draws the warehouse floor as an isometric
// diamond of pallets with boxes stacked per packet, supporting the
// four quarter-turn rotations.

// Rotation is a quarter-turn view angle in {0,1,2,3}.
type Rotation int

// Normalize wraps any integer rotation into {0,1,2,3}.
func (r Rotation) Normalize() Rotation {
	m := int(r) % 4
	if m < 0 {
		m += 4
	}
	return Rotation(m)
}

// Left returns the rotation one quarter-turn counter-clockwise (the
// Q key); Right one clockwise (the E key).
func (r Rotation) Left() Rotation  { return (r + 3).Normalize() }
func (r Rotation) Right() Rotation { return (r + 1).Normalize() }

// String renders the rotation in degrees.
func (r Rotation) String() string {
	return fmt.Sprintf("%d°", int(r.Normalize())*90)
}

// display maps original grid coordinates (i,j) to display
// coordinates under the rotation.
func (r Rotation) display(i, j, n int) (dr, dc int) {
	switch r.Normalize() {
	case 1:
		return j, n - 1 - i
	case 2:
		return n - 1 - i, n - 1 - j
	case 3:
		return n - 1 - j, i
	default:
		return i, j
	}
}

// Iso3DOptions configures the isometric warehouse view.
type Iso3DOptions struct {
	// Labels are the axis labels (optional).
	Labels []string
	// Colors is the pallet color-code matrix (optional).
	Colors *matrix.Dense
	// ShowColors toggles pallet coloring.
	ShowColors bool
	// Placed, when set, draws only the already-placed boxes; the
	// full target count otherwise.
	Placed *matrix.Dense
	// Rotation is the view angle.
	Rotation Rotation
	// Title is drawn above the scene when non-empty.
	Title string
}

// Iso-view cell geometry: each pallet projects to a 4-character
// footprint; adjacent diagonal cells offset by (±cellDX, cellDY).
const (
	isoCellW = 4
	isoDX    = 3
	isoDY    = 1
)

// Iso3D renders the warehouse in isometric projection. Cells are
// drawn back to front (painter's algorithm) so near stacks occlude
// far ones, exactly as the camera sees the voxel warehouse.
func Iso3D(m *matrix.Dense, opts Iso3DOptions) (*Framebuffer, error) {
	n := m.Rows()
	if m.Cols() != n {
		return nil, fmt.Errorf("render: 3D view needs a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	if len(opts.Labels) > 0 && len(opts.Labels) != n {
		return nil, fmt.Errorf("render: %d labels for %dx%d matrix", len(opts.Labels), n, n)
	}
	if opts.Colors != nil && (opts.Colors.Rows() != n || opts.Colors.Cols() != n) {
		return nil, fmt.Errorf("render: color matrix %dx%d does not match %dx%d", opts.Colors.Rows(), opts.Colors.Cols(), n, n)
	}
	if opts.Placed != nil && (opts.Placed.Rows() != n || opts.Placed.Cols() != n) {
		return nil, fmt.Errorf("render: placed matrix %dx%d does not match %dx%d", opts.Placed.Rows(), opts.Placed.Cols(), n, n)
	}

	maxStack := m.Max()
	if opts.Placed != nil {
		maxStack = opts.Placed.Max()
	}
	labelGutter := 1
	for _, l := range opts.Labels {
		if len(l)+2 > labelGutter {
			labelGutter = len(l) + 2
		}
	}
	titleRows := 0
	if opts.Title != "" {
		titleRows = 2
	}
	// The diamond spans (2n-1) diagonal steps horizontally and
	// vertically; stacks extend upward by maxStack rows.
	width := (2*n-2)*isoDX + isoCellW + 2*labelGutter
	height := titleRows + maxStack + (2*n-2)*isoDY + 3
	fb := NewFramebuffer(width, height)
	if opts.Title != "" {
		fb.DrawText(0, 0, opts.Title, whiteFG, true, true)
	}
	originX := labelGutter + (n-1)*isoDX
	originY := titleRows + maxStack + 1

	// screenPos returns the top-left of the pallet footprint for
	// display coordinates (dr,dc).
	screenPos := func(dr, dc int) (x, y int) {
		x = originX + (dc-dr)*isoDX
		y = originY + (dc+dr)*isoDY
		return x, y
	}

	palette := voxel.DefaultPalette()
	woodBG := palette[voxel.PaintWood]
	boxBG := palette[voxel.PaintCardb]
	tapeFG := palette[voxel.PaintTape]

	// Painter's algorithm: draw in increasing dr+dc (back to
	// front).
	for s := 0; s <= 2*(n-1); s++ {
		for dr := 0; dr < n; dr++ {
			dc := s - dr
			if dc < 0 || dc >= n {
				continue
			}
			// Invert the rotation to find the source cell.
			i, j := invertDisplay(opts.Rotation, dr, dc, n)
			count := m.At(i, j)
			shown := count
			if opts.Placed != nil {
				shown = opts.Placed.At(i, j)
			}
			x, y := screenPos(dr, dc)
			// Pallet slab.
			bg := woodBG
			if opts.ShowColors && opts.Colors != nil {
				bg = palette[voxel.MaterialForColorCode(opts.Colors.At(i, j))]
			}
			for k := 0; k < isoCellW; k++ {
				fb.Set(x+k, y, Cell{Ch: '▒', FG: bg, HasFG: true, BG: bg, HasBG: true})
			}
			// Box stack, one row per packet, centered on the
			// pallet.
			for b := 0; b < shown; b++ {
				by := y - 1 - b
				fb.Set(x+1, by, Cell{Ch: '[', FG: tapeFG, HasFG: true, BG: boxBG, HasBG: true})
				fb.Set(x+2, by, Cell{Ch: ']', FG: tapeFG, HasFG: true, BG: boxBG, HasBG: true})
			}
		}
	}

	// Axis labels follow the rotation: the row axis runs along the
	// cells (i, 0), the column axis along (0, j). Labels are placed
	// outward from whichever screen side their edge cell lands on.
	if len(opts.Labels) > 0 {
		centerX := originX + isoCellW/2
		place := func(i, j int, label string) {
			dr, dc := opts.Rotation.display(i, j, n)
			x, y := screenPos(dr, dc)
			// One row below the pallet base keeps labels clear of
			// box stacks, which only grow upward.
			if x+isoCellW/2 <= centerX {
				fb.DrawText(x-len(label)-1, y+1, label, whiteFG, true, false)
			} else {
				fb.DrawText(x+isoCellW+1, y+1, label, whiteFG, true, false)
			}
		}
		for i, l := range opts.Labels {
			place(i, 0, l)
		}
		for j, l := range opts.Labels {
			if j == 0 {
				continue // (0,0) already labeled by the row axis
			}
			place(0, j, l)
		}
	}
	return fb, nil
}

// invertDisplay maps display coordinates back to original grid
// coordinates under the rotation.
func invertDisplay(r Rotation, dr, dc, n int) (i, j int) {
	switch r.Normalize() {
	case 1:
		return n - 1 - dc, dr
	case 2:
		return n - 1 - dr, n - 1 - dc
	case 3:
		return dc, n - 1 - dr
	default:
		return dr, dc
	}
}
