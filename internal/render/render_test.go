package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/term"
	"repro/internal/voxel"
)

func plainText(t *testing.T) {
	t.Helper()
	prev := term.SetEnabled(true)
	t.Cleanup(func() { term.SetEnabled(prev) })
}

func TestFramebufferSetAtClip(t *testing.T) {
	fb := NewFramebuffer(4, 3)
	fb.Set(1, 1, Cell{Ch: 'x'})
	if fb.At(1, 1).Ch != 'x' {
		t.Error("Set/At wrong")
	}
	// Out-of-bounds writes clip silently; reads return zero.
	fb.Set(-1, 0, Cell{Ch: 'y'})
	fb.Set(9, 9, Cell{Ch: 'y'})
	if fb.At(-1, 0).Ch != 0 || fb.At(9, 9).Ch != 0 {
		t.Error("clip failed")
	}
}

func TestFramebufferText(t *testing.T) {
	fb := NewFramebuffer(5, 2)
	fb.DrawText(0, 0, "ab", voxel.RGB{}, false, false)
	fb.DrawText(2, 1, "cd", voxel.RGB{}, false, false)
	got := fb.Text()
	want := "ab\n  cd\n"
	if got != want {
		t.Errorf("Text = %q, want %q", got, want)
	}
}

func TestFramebufferDrawTextClips(t *testing.T) {
	fb := NewFramebuffer(3, 1)
	fb.DrawText(1, 0, "long text", voxel.RGB{}, false, false)
	if got := fb.Text(); got != " lo\n" {
		t.Errorf("clipped text = %q", got)
	}
}

func TestFillBG(t *testing.T) {
	fb := NewFramebuffer(3, 3)
	fb.FillBG(0, 0, 1, 1, voxel.RGB{R: 10})
	if !fb.At(1, 1).HasBG || fb.At(2, 2).HasBG {
		t.Error("FillBG region wrong")
	}
}

func TestANSIContainsCodes(t *testing.T) {
	plainText(t)
	fb := NewFramebuffer(2, 1)
	fb.Set(0, 0, Cell{Ch: 'x', FG: voxel.RGB{R: 255}, HasFG: true})
	out := fb.ANSI()
	if !strings.Contains(out, "\x1b[") {
		t.Errorf("no escape codes in ANSI output: %q", out)
	}
	if term.Strip(out) != "x \n" {
		t.Errorf("ANSI content = %q", term.Strip(out))
	}
}

func TestWritePPM(t *testing.T) {
	fb := NewFramebuffer(2, 2)
	fb.Set(0, 0, Cell{Ch: '█', BG: voxel.RGB{R: 1, G: 2, B: 3}, HasBG: true})
	var buf bytes.Buffer
	if err := fb.WritePPM(&buf, 2, 3); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P6\n4 6\n255\n")) {
		t.Errorf("PPM header wrong: %q", data[:20])
	}
	// Header + 4*6 pixels × 3 bytes.
	wantLen := len("P6\n4 6\n255\n") + 4*6*3
	if len(data) != wantLen {
		t.Errorf("PPM size = %d, want %d", len(data), wantLen)
	}
	// First pixel carries the BG color.
	px := data[len("P6\n4 6\n255\n"):]
	if px[0] != 1 || px[1] != 2 || px[2] != 3 {
		t.Errorf("first pixel = %v", px[:3])
	}
	if err := fb.WritePPM(&buf, 0, 1); err == nil {
		t.Error("zero cell size accepted")
	}
}

func TestQuantizeANSI(t *testing.T) {
	cases := map[voxel.RGB]term.Color{
		{R: 0, G: 0, B: 0}:       term.Black,
		{R: 255, G: 255, B: 255}: term.BrightWhite,
		{R: 170, G: 0, B: 0}:     term.Red,
		{R: 80, G: 80, B: 255}:   term.BrightBlue,
	}
	for rgb, want := range cases {
		if got := QuantizeANSI(rgb); got != want {
			t.Errorf("Quantize(%v) = %v, want %v", rgb, got, want)
		}
	}
}

func sampleMatrix() *matrix.Dense {
	return matrix.MustFromRows([][]int{
		{1, 0, 2},
		{0, 3, 0},
		{1, 0, 1},
	})
}

func TestMatrix2DContent(t *testing.T) {
	fb, err := Matrix2D(sampleMatrix(), Matrix2DOptions{
		Labels: []string{"AA", "BB", "CC"},
		Title:  "Test",
	})
	if err != nil {
		t.Fatal(err)
	}
	text := fb.Text()
	for _, want := range []string{"Test", "AA", "BB", "CC", "3", "2"} {
		if !strings.Contains(text, want) {
			t.Errorf("2D view missing %q:\n%s", want, text)
		}
	}
	// Zeros render as dots by default.
	if !strings.Contains(text, ".") {
		t.Error("zero cells not dotted")
	}
}

func TestMatrix2DShowZero(t *testing.T) {
	fb, err := Matrix2D(sampleMatrix(), Matrix2DOptions{ShowZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fb.Text(), ".") {
		t.Error("ShowZero still dotted")
	}
}

func TestMatrix2DPlacedForm(t *testing.T) {
	placed := matrix.NewSquare(3)
	placed.Set(0, 2, 1)
	fb, err := Matrix2D(sampleMatrix(), Matrix2DOptions{Placed: placed})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb.Text(), "1/2") {
		t.Errorf("placed/target form missing:\n%s", fb.Text())
	}
}

func TestMatrix2DCursorMarked(t *testing.T) {
	fb, err := Matrix2D(sampleMatrix(), Matrix2DOptions{
		CursorRow: 1, CursorCol: 1, HasCursor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb.Text(), "[3]") {
		t.Errorf("cursor not marked:\n%s", fb.Text())
	}
}

func TestMatrix2DColorsPaintBackground(t *testing.T) {
	colors := matrix.MustFromRows([][]int{
		{0, 0, 2},
		{0, 1, 0},
		{0, 0, 0},
	})
	fb, err := Matrix2D(sampleMatrix(), Matrix2DOptions{Colors: colors, ShowColors: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find a cell with red background.
	w, h := fb.Size()
	foundRed, foundBlue := false, false
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := fb.At(x, y)
			if c.HasBG && c.BG == DefaultPaletteRGB(voxel.PaintRed) {
				foundRed = true
			}
			if c.HasBG && c.BG == DefaultPaletteRGB(voxel.PaintBlue) {
				foundBlue = true
			}
		}
	}
	if !foundRed || !foundBlue {
		t.Errorf("color overlay missing: red=%v blue=%v", foundRed, foundBlue)
	}
}

func TestMatrix2DValidation(t *testing.T) {
	if _, err := Matrix2D(matrix.NewDense(2, 3), Matrix2DOptions{}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Matrix2D(sampleMatrix(), Matrix2DOptions{Labels: []string{"A"}}); err == nil {
		t.Error("label count mismatch accepted")
	}
	if _, err := Matrix2D(sampleMatrix(), Matrix2DOptions{Colors: matrix.NewSquare(2)}); err == nil {
		t.Error("color shape mismatch accepted")
	}
	if _, err := Matrix2D(sampleMatrix(), Matrix2DOptions{Placed: matrix.NewSquare(2)}); err == nil {
		t.Error("placed shape mismatch accepted")
	}
}

func TestRotationAlgebra(t *testing.T) {
	r := Rotation(0)
	if r.Left() != 3 || r.Right() != 1 {
		t.Errorf("Left/Right = %v/%v", r.Left(), r.Right())
	}
	if Rotation(-1).Normalize() != 3 || Rotation(7).Normalize() != 3 {
		t.Error("Normalize wrong")
	}
	if Rotation(2).String() != "180°" {
		t.Errorf("String = %q", Rotation(2).String())
	}
	// Four rights return home.
	r = 0
	for i := 0; i < 4; i++ {
		r = r.Right()
	}
	if r != 0 {
		t.Error("4 right turns did not return to 0")
	}
}

func TestRotationDisplayInverse(t *testing.T) {
	n := 5
	for rot := Rotation(0); rot < 4; rot++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dr, dc := rot.display(i, j, n)
				bi, bj := invertDisplay(rot, dr, dc, n)
				if bi != i || bj != j {
					t.Fatalf("rot %v: (%d,%d) → (%d,%d) → (%d,%d)", rot, i, j, dr, dc, bi, bj)
				}
			}
		}
	}
}

// lowMatrix has stacks of height ≤ 2, which geometry guarantees can
// never occlude each other in the iso projection.
func lowMatrix() *matrix.Dense {
	return matrix.MustFromRows([][]int{
		{1, 0, 2},
		{0, 2, 0},
		{1, 0, 1},
	})
}

func TestIso3DStacksMatchCounts(t *testing.T) {
	m := lowMatrix()
	fb, err := Iso3D(m, Iso3DOptions{})
	if err != nil {
		t.Fatal(err)
	}
	text := fb.Text()
	// Each box renders "[]": with no occlusion possible, the
	// bracket count equals the packet count.
	if got := strings.Count(text, "[]"); got != m.Sum() {
		t.Errorf("3D view shows %d boxes, want %d:\n%s", got, m.Sum(), text)
	}
}

// TestIso3DOcclusion: a tall front stack genuinely hides a short
// stack directly behind it — the painter's algorithm at work.
func TestIso3DOcclusion(t *testing.T) {
	m := sampleMatrix() // (1,1) holds 3 boxes in front of (0,0)'s 1
	fb, err := Iso3D(m, Iso3DOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(fb.Text(), "[]"); got != m.Sum()-1 {
		t.Errorf("expected exactly one occluded box: visible %d of %d", got, m.Sum())
	}
}

func TestIso3DPlacedPartial(t *testing.T) {
	m := sampleMatrix()
	placed := matrix.NewSquare(3)
	placed.Set(1, 1, 2)
	fb, err := Iso3D(m, Iso3DOptions{Placed: placed})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(fb.Text(), "[]"); got != 2 {
		t.Errorf("partial view shows %d boxes, want 2", got)
	}
}

func TestIso3DRotationsPreserveBoxes(t *testing.T) {
	m := lowMatrix()
	for rot := Rotation(0); rot < 4; rot++ {
		fb, err := Iso3D(m, Iso3DOptions{Rotation: rot})
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(fb.Text(), "[]"); got != m.Sum() {
			t.Errorf("rotation %v shows %d boxes, want %d", rot, got, m.Sum())
		}
	}
}

func TestIso3DRotationChangesLayout(t *testing.T) {
	m := matrix.NewSquare(3)
	m.Set(0, 0, 3) // one tall corner stack makes rotations distinct
	a, _ := Iso3D(m, Iso3DOptions{Rotation: 0, Labels: []string{"A", "B", "C"}})
	b, _ := Iso3D(m, Iso3DOptions{Rotation: 1, Labels: []string{"A", "B", "C"}})
	if a.Text() == b.Text() {
		t.Error("rotation did not change the view")
	}
}

func TestIso3DLabelsShown(t *testing.T) {
	fb, err := Iso3D(sampleMatrix(), Iso3DOptions{Labels: []string{"AA", "BB", "CC"}})
	if err != nil {
		t.Fatal(err)
	}
	text := fb.Text()
	for _, l := range []string{"AA", "BB", "CC"} {
		if !strings.Contains(text, l) {
			t.Errorf("3D view missing label %q:\n%s", l, text)
		}
	}
}

func TestIso3DValidation(t *testing.T) {
	if _, err := Iso3D(matrix.NewDense(2, 3), Iso3DOptions{}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Iso3D(sampleMatrix(), Iso3DOptions{Labels: []string{"A"}}); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestComposeWarehouseGeometry(t *testing.T) {
	m := sampleMatrix()
	scene, err := ComposeWarehouse(m, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	w, h, d := scene.Size()
	if w != 3*cellPitch || d != 3*cellPitch {
		t.Errorf("scene footprint %dx%d", w, d)
	}
	if h < 1+3+m.Max()*voxel.BoxSize {
		t.Errorf("scene height %d too small", h)
	}
	// Scene contains floor + pallets + boxes: count must exceed a
	// floor-and-pallets-only scene.
	empty, err := ComposeWarehouse(matrix.NewSquare(3), nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if scene.Count() <= empty.Count() {
		t.Error("boxes not present in composed scene")
	}
	boxVoxels := voxel.Box().Count()
	if scene.Count() != empty.Count()+m.Sum()*boxVoxels {
		t.Errorf("scene voxels = %d, want %d", scene.Count(), empty.Count()+m.Sum()*boxVoxels)
	}
}

func TestComposeWarehouseColors(t *testing.T) {
	m := sampleMatrix()
	colors := matrix.NewSquare(3)
	colors.Fill(2)
	scene, err := ComposeWarehouse(m, colors, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// With showColors, pallet voxels take the red material.
	found := false
	w, h, d := scene.Size()
	for y := 0; y < h && !found; y++ {
		for z := 0; z < d && !found; z++ {
			for x := 0; x < w && !found; x++ {
				if scene.At(x, y, z) == voxel.PaintRed {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("no red pallet voxels in colored scene")
	}
}

func TestVoxelIsoDeterministicAndRotates(t *testing.T) {
	scene, err := ComposeWarehouse(sampleMatrix(), nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	a := VoxelIso(scene, 0).Text()
	b := VoxelIso(scene, 0).Text()
	if a != b {
		t.Error("VoxelIso not deterministic")
	}
	c := VoxelIso(scene, 1).Text()
	if a == c {
		t.Error("rotation 1 identical to rotation 0")
	}
	if len(strings.TrimSpace(a)) == 0 {
		t.Error("VoxelIso produced empty output")
	}
}
