package render

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/voxel"
)

// The 2D top-down view: "how they would generally see a matrix in a
// spreadsheet, a textbook, or a presentation". Each cell shows its
// packet count; the color toggle paints cell backgrounds from the
// color matrix exactly as the in-game button recolors pallets.

// Matrix2DOptions configures the 2D view.
type Matrix2DOptions struct {
	// Labels are the axis labels applied to both axes; optional.
	Labels []string
	// Colors is the color-code matrix (0 grey, 1 blue, 2 red);
	// optional.
	Colors *matrix.Dense
	// ShowColors enables the color overlay (the toggle-pallet-color
	// button).
	ShowColors bool
	// Placed, when set, renders game progress as "placed/target"
	// per cell.
	Placed *matrix.Dense
	// CursorRow and CursorCol select a highlighted cell when
	// HasCursor is set.
	CursorRow, CursorCol int
	HasCursor            bool
	// Title is drawn above the grid when non-empty.
	Title string
	// ShowZero renders zero cells as "." (default) or "0".
	ShowZero bool
}

// Palette for the 2D view, shared with the voxel assets so both
// views agree on what blue/red/grey mean.
var (
	colorGridBG = map[int]voxel.RGB{
		0: DefaultPaletteRGB(voxel.PaintGrey),
		1: DefaultPaletteRGB(voxel.PaintBlue),
		2: DefaultPaletteRGB(voxel.PaintRed),
		3: DefaultPaletteRGB(voxel.PaintGreen),
		4: DefaultPaletteRGB(voxel.PaintYellow),
		5: DefaultPaletteRGB(voxel.PaintPurple),
	}
	blackBG = DefaultPaletteRGB(voxel.PaintBlack)
	whiteFG = DefaultPaletteRGB(voxel.PaintWhite)
	cyanFG  = voxel.RGB{R: 0x55, G: 0xff, B: 0xff}
)

// DefaultPaletteRGB returns a color from the default voxel palette.
func DefaultPaletteRGB(index uint8) voxel.RGB {
	p := voxel.DefaultPalette()
	return p[index]
}

// Matrix2D renders the traffic matrix as a labeled grid. The matrix
// must be square when labels are provided (one list labels both
// axes, as the module format specifies).
func Matrix2D(m *matrix.Dense, opts Matrix2DOptions) (*Framebuffer, error) {
	n := m.Rows()
	if m.Cols() != n {
		return nil, fmt.Errorf("render: 2D view needs a square matrix, got %dx%d", m.Rows(), m.Cols())
	}
	if len(opts.Labels) > 0 && len(opts.Labels) != n {
		return nil, fmt.Errorf("render: %d labels for %dx%d matrix", len(opts.Labels), n, n)
	}
	if opts.Colors != nil && (opts.Colors.Rows() != n || opts.Colors.Cols() != n) {
		return nil, fmt.Errorf("render: color matrix %dx%d does not match %dx%d", opts.Colors.Rows(), opts.Colors.Cols(), n, n)
	}
	if opts.Placed != nil && (opts.Placed.Rows() != n || opts.Placed.Cols() != n) {
		return nil, fmt.Errorf("render: placed matrix %dx%d does not match %dx%d", opts.Placed.Rows(), opts.Placed.Cols(), n, n)
	}

	// Geometry: row-label gutter on the left, one header line on
	// top, fixed-width cells separated by one space.
	gutter := 0
	for _, l := range opts.Labels {
		if len(l) > gutter {
			gutter = len(l)
		}
	}
	cellW := 3
	if opts.Placed != nil {
		cellW = 5 // "p/t" forms
	}
	for _, l := range opts.Labels {
		if len(l) > cellW {
			cellW = len(l)
		}
	}
	titleRows := 0
	if opts.Title != "" {
		titleRows = 2
	}
	headerRows := 0
	if len(opts.Labels) > 0 {
		headerRows = 1
	}
	width := gutter + 1 + n*(cellW+1)
	height := titleRows + headerRows + n
	fb := NewFramebuffer(width, height)

	if opts.Title != "" {
		fb.DrawText(0, 0, opts.Title, whiteFG, true, true)
	}
	if headerRows > 0 {
		for j, l := range opts.Labels {
			x := gutter + 1 + j*(cellW+1)
			fb.DrawText(x+(cellW-len(l))/2, titleRows, l, whiteFG, true, false)
		}
	}
	for i := 0; i < n; i++ {
		y := titleRows + headerRows + i
		if len(opts.Labels) > 0 {
			fb.DrawText(gutter-len(opts.Labels[i]), y, opts.Labels[i], whiteFG, true, false)
		}
		for j := 0; j < n; j++ {
			x := gutter + 1 + j*(cellW+1)
			text := cellText(m, opts, i, j, cellW)
			var bg voxel.RGB
			hasBG := false
			if opts.ShowColors && opts.Colors != nil {
				code := opts.Colors.At(i, j)
				if rgb, ok := colorGridBG[code]; ok {
					bg = rgb
				} else {
					bg = blackBG
				}
				hasBG = true
			}
			for k, r := range []rune(text) {
				cell := Cell{Ch: r, FG: whiteFG, HasFG: true, BG: bg, HasBG: hasBG}
				if opts.HasCursor && i == opts.CursorRow && j == opts.CursorCol {
					cell.FG = cyanFG
					cell.Bold = true
				}
				fb.Set(x+k, y, cell)
			}
		}
	}
	return fb, nil
}

// cellText formats the content of cell (i,j), centered in cellW.
func cellText(m *matrix.Dense, opts Matrix2DOptions, i, j, cellW int) string {
	v := m.At(i, j)
	var body string
	switch {
	case opts.Placed != nil:
		if v == 0 {
			body = "."
		} else {
			body = fmt.Sprintf("%d/%d", opts.Placed.At(i, j), v)
		}
	case v == 0 && !opts.ShowZero:
		body = "."
	default:
		body = fmt.Sprint(v)
	}
	if opts.HasCursor && i == opts.CursorRow && j == opts.CursorCol {
		if len(body)+2 <= cellW {
			body = "[" + body + "]"
		}
	}
	// Center within cellW.
	pad := cellW - len(body)
	left := pad / 2
	out := make([]byte, 0, cellW)
	for k := 0; k < left; k++ {
		out = append(out, ' ')
	}
	out = append(out, body...)
	for len(out) < cellW {
		out = append(out, ' ')
	}
	return string(out)
}
