package gdscript

import (
	"fmt"
	"strings"
)

// eval computes an expression's value.
func (in *Instance) eval(e Expr, sc *scope) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *Ident:
		return in.lookupName(x.Name, sc, x.Line)
	case *NodePathExpr:
		if in.node == nil {
			return nil, fmt.Errorf("gdscript: line %d: $%q outside a scene", x.Line, x.Path)
		}
		node, err := in.node.GetNode(x.Path)
		if err != nil {
			return nil, fmt.Errorf("gdscript: line %d: %w", x.Line, err)
		}
		return &NodeRef{Node: node}, nil
	case *ArrayLit:
		arr := &Array{}
		for _, item := range x.Items {
			v, err := in.eval(item, sc)
			if err != nil {
				return nil, err
			}
			arr.Items = append(arr.Items, v)
		}
		return arr, nil
	case *DictLit:
		d := NewDict()
		for i := range x.Keys {
			k, err := in.eval(x.Keys[i], sc)
			if err != nil {
				return nil, err
			}
			key, ok := k.(string)
			if !ok {
				return nil, fmt.Errorf("gdscript: line %d: dictionary key must be String, got %s", x.Line, TypeName(k))
			}
			v, err := in.eval(x.Values[i], sc)
			if err != nil {
				return nil, err
			}
			d.Set(key, v)
		}
		return d, nil
	case *AttrExpr:
		obj, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		return in.getAttr(obj, x.Name, x.Line)
	case *IndexExpr:
		obj, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.Index, sc)
		if err != nil {
			return nil, err
		}
		return getIndex(obj, idx, x.Line)
	case *CallExpr:
		return in.evalCall(x, sc)
	case *BinaryExpr:
		// Short-circuit and/or.
		if x.Op == "and" || x.Op == "or" {
			left, err := in.eval(x.X, sc)
			if err != nil {
				return nil, err
			}
			if x.Op == "and" && !Truthy(left) {
				return false, nil
			}
			if x.Op == "or" && Truthy(left) {
				return true, nil
			}
			right, err := in.eval(x.Y, sc)
			if err != nil {
				return nil, err
			}
			return Truthy(right), nil
		}
		left, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		right, err := in.eval(x.Y, sc)
		if err != nil {
			return nil, err
		}
		return binaryOp(x.Op, left, right, x.Line)
	case *UnaryExpr:
		v, err := in.eval(x.X, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("gdscript: line %d: cannot negate %s", x.Line, TypeName(v))
		case "not":
			return !Truthy(v), nil
		}
		return nil, fmt.Errorf("gdscript: line %d: unknown unary %q", x.Line, x.Op)
	default:
		return nil, fmt.Errorf("gdscript: unknown expression %T", e)
	}
}

// lookupName resolves an identifier: locals, export props, globals.
// (Function references are handled at call sites.)
func (in *Instance) lookupName(name string, sc *scope, line int) (Value, error) {
	if sc != nil {
		if v, ok := sc.lookup(name); ok {
			return v, nil
		}
	}
	if in.exports[name] && in.node != nil {
		v, _ := in.node.Props().Get(name)
		return FromGo(v), nil
	}
	if v, ok := in.globals[name]; ok {
		return v, nil
	}
	if name == "self" && in.node != nil {
		return &NodeRef{Node: in.node}, nil
	}
	return nil, fmt.Errorf("gdscript: line %d: undefined identifier %q", line, name)
}

// getAttr reads obj.name: node properties/data, container pseudo
// attributes.
func (in *Instance) getAttr(obj Value, name string, line int) (Value, error) {
	switch o := obj.(type) {
	case *NodeRef:
		if name == "name" {
			return o.Node.Name(), nil
		}
		if o.Node.Props().Has(name) {
			v, _ := o.Node.Props().Get(name)
			return FromGo(v), nil
		}
		if v, ok := o.Node.Data[name]; ok {
			return FromGo(v), nil
		}
		// Reading the whole Data map as ".data" mirrors the paper's
		// level_data.data dictionary access.
		if name == "data" {
			return FromGo(o.Node.Data), nil
		}
		return nil, fmt.Errorf("gdscript: line %d: node %q has no property %q", line, o.Node.Name(), name)
	case *Dict:
		if v, ok := o.Get(name); ok {
			return v, nil
		}
		return nil, fmt.Errorf("gdscript: line %d: dictionary has no key %q", line, name)
	default:
		return nil, fmt.Errorf("gdscript: line %d: %s has no attribute %q", line, TypeName(obj), name)
	}
}

// getIndex reads obj[idx].
func getIndex(obj, idx Value, line int) (Value, error) {
	switch o := obj.(type) {
	case *Array:
		i, ok := idx.(int64)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: array index must be int, got %s", line, TypeName(idx))
		}
		if i < 0 || int(i) >= len(o.Items) {
			return nil, fmt.Errorf("gdscript: line %d: array index %d out of range %d", line, i, len(o.Items))
		}
		return o.Items[i], nil
	case *Dict:
		k, ok := idx.(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: dictionary key must be String, got %s", line, TypeName(idx))
		}
		v, found := o.Get(k)
		if !found {
			return nil, fmt.Errorf("gdscript: line %d: missing dictionary key %q", line, k)
		}
		return v, nil
	case string:
		i, ok := idx.(int64)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: string index must be int", line)
		}
		runes := []rune(o)
		if i < 0 || int(i) >= len(runes) {
			return nil, fmt.Errorf("gdscript: line %d: string index %d out of range %d", line, i, len(runes))
		}
		return string(runes[i]), nil
	default:
		return nil, fmt.Errorf("gdscript: line %d: cannot index %s", line, TypeName(obj))
	}
}

// binaryOp implements arithmetic, comparison, and concatenation with
// GDScript's int/float coercion. "+" concatenates strings and
// arrays (the paper's script concatenates rows into
// pallet_color_array with +=).
func binaryOp(op string, a, b Value, line int) (Value, error) {
	switch op {
	case "==":
		return Equal(a, b), nil
	case "!=":
		return !Equal(a, b), nil
	case "in":
		switch container := b.(type) {
		case *Array:
			for _, item := range container.Items {
				if Equal(item, a) {
					return true, nil
				}
			}
			return false, nil
		case *Dict:
			k, ok := a.(string)
			if !ok {
				return false, nil
			}
			_, found := container.Get(k)
			return found, nil
		case string:
			s, ok := a.(string)
			if !ok {
				return false, nil
			}
			return strings.Contains(container, s), nil
		default:
			return nil, fmt.Errorf("gdscript: line %d: 'in' needs a container, got %s", line, TypeName(b))
		}
	}

	// String concatenation: "Matching color: " + str(color).
	if as, ok := a.(string); ok {
		if op == "+" {
			bs, ok := b.(string)
			if !ok {
				return nil, fmt.Errorf("gdscript: line %d: cannot add %s to String (use str())", line, TypeName(b))
			}
			return as + bs, nil
		}
		if bs, ok := b.(string); ok {
			switch op {
			case "<":
				return as < bs, nil
			case ">":
				return as > bs, nil
			case "<=":
				return as <= bs, nil
			case ">=":
				return as >= bs, nil
			}
		}
	}
	// Array concatenation.
	if aa, ok := a.(*Array); ok && op == "+" {
		ba, ok := b.(*Array)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: cannot add %s to Array", line, TypeName(b))
		}
		out := &Array{Items: make([]Value, 0, len(aa.Items)+len(ba.Items))}
		out.Items = append(out.Items, aa.Items...)
		out.Items = append(out.Items, ba.Items...)
		return out, nil
	}

	ai, aInt := a.(int64)
	bi, bInt := b.(int64)
	if aInt && bInt {
		switch op {
		case "+":
			return ai + bi, nil
		case "-":
			return ai - bi, nil
		case "*":
			return ai * bi, nil
		case "/":
			if bi == 0 {
				return nil, fmt.Errorf("gdscript: line %d: division by zero", line)
			}
			return ai / bi, nil
		case "%":
			if bi == 0 {
				return nil, fmt.Errorf("gdscript: line %d: modulo by zero", line)
			}
			return ai % bi, nil
		case "<":
			return ai < bi, nil
		case ">":
			return ai > bi, nil
		case "<=":
			return ai <= bi, nil
		case ">=":
			return ai >= bi, nil
		}
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch op {
		case "+":
			return af + bf, nil
		case "-":
			return af - bf, nil
		case "*":
			return af * bf, nil
		case "/":
			if bf == 0 {
				return nil, fmt.Errorf("gdscript: line %d: division by zero", line)
			}
			return af / bf, nil
		case "<":
			return af < bf, nil
		case ">":
			return af > bf, nil
		case "<=":
			return af <= bf, nil
		case ">=":
			return af >= bf, nil
		}
	}
	return nil, fmt.Errorf("gdscript: line %d: unsupported %s %s %s", line, TypeName(a), op, TypeName(b))
}
