package gdscript

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse lexes and parses a script file.
func Parse(src string) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseScript()
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token when it matches kind and text
// (empty text matches any).
func (p *parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = kind.String()
		}
		return t, fmt.Errorf("gdscript: line %d: expected %s, found %s %q", t.Line, want, t.Kind, t.Text)
	}
	return p.next(), nil
}

// skipNewlines consumes consecutive newline tokens.
func (p *parser) skipNewlines() {
	for p.accept(TokNewline, "") {
	}
}

// parseScript parses the whole file.
func (p *parser) parseScript() (*Script, error) {
	s := &Script{Funcs: make(map[string]*FuncDecl)}
	p.skipNewlines()
	for p.peek().Kind != TokEOF {
		t := p.peek()
		switch {
		case t.Kind == TokKeyword && t.Text == "extends":
			p.next()
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			s.Extends = name.Text
			if _, err := p.expect(TokNewline, ""); err != nil {
				return nil, err
			}
		case t.Kind == TokAnnotation:
			p.next()
			decl, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			switch t.Text {
			case "export":
				decl.Export = true
			case "onready":
				decl.OnReady = true
			default:
				return nil, fmt.Errorf("gdscript: line %d: unsupported annotation @%s", t.Line, t.Text)
			}
			s.Vars = append(s.Vars, decl)
		case t.Kind == TokKeyword && (t.Text == "var" || t.Text == "const"):
			decl, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			s.Vars = append(s.Vars, decl)
		case t.Kind == TokKeyword && t.Text == "func":
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			if _, dup := s.Funcs[fn.Name]; dup {
				return nil, fmt.Errorf("gdscript: line %d: duplicate function %q", fn.Line, fn.Name)
			}
			s.Funcs[fn.Name] = fn
			s.FuncOrder = append(s.FuncOrder, fn.Name)
		default:
			return nil, fmt.Errorf("gdscript: line %d: unexpected %s %q at top level", t.Line, t.Kind, t.Text)
		}
		p.skipNewlines()
	}
	return s, nil
}

// parseVarDecl parses `var name [: Type] [= expr]` (or const),
// consuming the trailing newline.
func (p *parser) parseVarDecl() (*VarDecl, error) {
	kw := p.peek()
	isConst := kw.Text == "const"
	if kw.Kind != TokKeyword || (kw.Text != "var" && kw.Text != "const") {
		return nil, fmt.Errorf("gdscript: line %d: expected var, found %q", kw.Line, kw.Text)
	}
	p.next()
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	decl := &VarDecl{Name: name.Text, Line: name.Line, Const: isConst}
	if p.accept(TokOp, ":") {
		typ, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		decl.Type = typ.Text
	}
	if p.accept(TokOp, "=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		decl.Init = init
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	return decl, nil
}

// parseFunc parses a function definition with its indented body.
func (p *parser) parseFunc() (*FuncDecl, error) {
	kw, err := p.expect(TokKeyword, "func")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Line: kw.Line}
	for !p.accept(TokOp, ")") {
		param, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		// Optional parameter type annotation.
		if p.accept(TokOp, ":") {
			if _, err := p.expect(TokIdent, ""); err != nil {
				return nil, err
			}
		}
		fn.Params = append(fn.Params, param.Text)
		if !p.accept(TokOp, ",") && p.peek().Text != ")" {
			return nil, fmt.Errorf("gdscript: line %d: expected , or ) in parameters", p.peek().Line)
		}
	}
	// Optional return type: -> Type. ("-" ">" as two ops.)
	if p.peek().Kind == TokOp && p.peek().Text == "-" {
		p.next()
		if _, err := p.expect(TokOp, ">"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokIdent, ""); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseBlock parses either an inline simple statement (after a
// colon on the same line) or a NEWLINE INDENT stmts DEDENT suite.
func (p *parser) parseBlock() ([]Stmt, error) {
	if p.peek().Kind != TokNewline {
		// Inline suite: one simple statement.
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokNewline, ""); err != nil {
			return nil, err
		}
		return []Stmt{st}, nil
	}
	p.next() // newline
	if _, err := p.expect(TokIndent, ""); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for {
		p.skipNewlines()
		if p.accept(TokDedent, "") {
			break
		}
		if p.peek().Kind == TokEOF {
			break
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("gdscript: empty block near line %d", p.peek().Line)
	}
	return stmts, nil
}

// parseStmt parses one statement (compound or simple).
func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "match":
			return p.parseMatch()
		case "var", "const":
			decl, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			return &LocalVarStmt{Decl: decl}, nil
		}
	}
	st, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	return st, nil
}

// parseSimpleStmt parses a one-line statement without its newline.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "return":
			p.next()
			rs := &ReturnStmt{Line: t.Line}
			if p.peek().Kind != TokNewline {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				rs.Value = v
			}
			return rs, nil
		case "pass":
			p.next()
			return &PassStmt{Line: t.Line}, nil
		case "break":
			p.next()
			return &BreakStmt{Line: t.Line}, nil
		case "continue":
			p.next()
			return &ContinueStmt{Line: t.Line}, nil
		}
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if op := p.peek(); op.Kind == TokOp && isAssignOp(op.Text) {
		p.next()
		value, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !isAssignable(expr) {
			return nil, fmt.Errorf("gdscript: line %d: cannot assign to this expression", op.Line)
		}
		return &AssignStmt{Target: expr, Op: op.Text, Value: value, Line: op.Line}, nil
	}
	return &ExprStmt{X: expr, Line: t.Line}, nil
}

func isAssignOp(op string) bool {
	switch op {
	case "=", "+=", "-=", "*=", "/=":
		return true
	}
	return false
}

func isAssignable(e Expr) bool {
	switch e.(type) {
	case *Ident, *AttrExpr, *IndexExpr:
		return true
	}
	return false
}

// parseIf parses an if/elif/else chain.
func (p *parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(TokKeyword, "if")
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Body: body, Line: kw.Line}
	for {
		p.skipNewlines()
		t := p.peek()
		if t.Kind == TokKeyword && t.Text == "elif" {
			p.next()
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ":"); err != nil {
				return nil, err
			}
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Elifs = append(st.Elifs, struct {
				Cond Expr
				Body []Stmt
			}{c, b})
			continue
		}
		if t.Kind == TokKeyword && t.Text == "else" {
			p.next()
			if _, err := p.expect(TokOp, ":"); err != nil {
				return nil, err
			}
			b, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = b
		}
		break
	}
	return st, nil
}

// parseFor parses `for name in expr: block`.
func (p *parser) parseFor() (Stmt, error) {
	kw, _ := p.expect(TokKeyword, "for")
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	seq, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: name.Text, Seq: seq, Body: body, Line: kw.Line}, nil
}

// parseWhile parses `while expr: block`.
func (p *parser) parseWhile() (Stmt, error) {
	kw, _ := p.expect(TokKeyword, "while")
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: kw.Line}, nil
}

// parseMatch parses a match statement with literal patterns and the
// "_" wildcard; case bodies may be inline.
func (p *parser) parseMatch() (Stmt, error) {
	kw, _ := p.expect(TokKeyword, "match")
	subject, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokOp, ":"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokNewline, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokIndent, ""); err != nil {
		return nil, err
	}
	st := &MatchStmt{Subject: subject, Line: kw.Line}
	for {
		p.skipNewlines()
		if p.accept(TokDedent, "") || p.peek().Kind == TokEOF {
			break
		}
		var mc MatchCase
		if t := p.peek(); t.Kind == TokIdent && t.Text == "_" {
			p.next()
			mc.Wildcard = true
		} else {
			pat, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			mc.Pattern = pat
		}
		if _, err := p.expect(TokOp, ":"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		mc.Body = body
		st.Cases = append(st.Cases, mc)
	}
	if len(st.Cases) == 0 {
		return nil, fmt.Errorf("gdscript: line %d: match with no cases", kw.Line)
	}
	return st, nil
}

// Expression parsing: precedence climbing.
// or < and < not < comparison < additive < multiplicative < unary
// < postfix < primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if (t.Kind == TokKeyword && t.Text == "or") || (t.Kind == TokOp && t.Text == "||") {
			p.next()
			y, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: "or", X: x, Y: y, Line: t.Line}
			continue
		}
		return x, nil
	}
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if (t.Kind == TokKeyword && t.Text == "and") || (t.Kind == TokOp && t.Text == "&&") {
			p.next()
			y, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: "and", X: x, Y: y, Line: t.Line}
			continue
		}
		return x, nil
	}
}

func (p *parser) parseNot() (Expr, error) {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "not" {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", X: x, Line: t.Line}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	x, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "==", "!=", "<", ">", "<=", ">=":
			p.next()
			y, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, X: x, Y: y, Line: t.Line}, nil
		}
	}
	// `x in seq` membership.
	if t.Kind == TokKeyword && t.Text == "in" {
		p.next()
		y, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "in", X: x, Y: y, Line: t.Line}, nil
	}
	return x, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	x, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.next()
			y, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: t.Text, X: x, Y: y, Line: t.Line}
			continue
		}
		return x, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			y, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: t.Text, X: x, Y: y, Line: t.Line}
			continue
		}
		return x, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.Kind == TokOp && t.Text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, Line: t.Line}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses primary expressions followed by .attr, [index]
// and (args) chains.
func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp {
			return x, nil
		}
		switch t.Text {
		case ".":
			p.next()
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &AttrExpr{X: x, Name: name.Text, Line: t.Line}
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, "]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, Index: idx, Line: t.Line}
		case "(":
			p.next()
			call := &CallExpr{Fn: x, Line: t.Line}
			for !p.accept(TokOp, ")") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(TokOp, ",") && p.peek().Text != ")" {
					return nil, fmt.Errorf("gdscript: line %d: expected , or ) in call", p.peek().Line)
				}
			}
			x = call
		default:
			return x, nil
		}
	}
}

// parsePrimary parses literals, identifiers, node paths, arrays,
// dictionaries, and parenthesized expressions.
func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("gdscript: line %d: bad number %q", t.Line, t.Text)
			}
			return &Literal{Value: f, Line: t.Line}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gdscript: line %d: bad number %q", t.Line, t.Text)
		}
		return &Literal{Value: n, Line: t.Line}, nil
	case TokString:
		p.next()
		return &Literal{Value: t.Text, Line: t.Line}, nil
	case TokNodePath:
		p.next()
		return &NodePathExpr{Path: t.Text, Line: t.Line}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.next()
			return &Literal{Value: true, Line: t.Line}, nil
		case "false":
			p.next()
			return &Literal{Value: false, Line: t.Line}, nil
		case "null":
			p.next()
			return &Literal{Value: nil, Line: t.Line}, nil
		}
		return nil, fmt.Errorf("gdscript: line %d: unexpected keyword %q in expression", t.Line, t.Text)
	case TokIdent:
		p.next()
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokOp:
		switch t.Text {
		case "(":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			p.next()
			lit := &ArrayLit{Line: t.Line}
			for !p.accept(TokOp, "]") {
				item, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Items = append(lit.Items, item)
				if !p.accept(TokOp, ",") && p.peek().Text != "]" {
					return nil, fmt.Errorf("gdscript: line %d: expected , or ] in array", p.peek().Line)
				}
			}
			return lit, nil
		case "{":
			p.next()
			lit := &DictLit{Line: t.Line}
			for !p.accept(TokOp, "}") {
				k, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokOp, ":"); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit.Keys = append(lit.Keys, k)
				lit.Values = append(lit.Values, v)
				if !p.accept(TokOp, ",") && p.peek().Text != "}" {
					return nil, fmt.Errorf("gdscript: line %d: expected , or } in dictionary", p.peek().Line)
				}
			}
			return lit, nil
		}
	}
	return nil, fmt.Errorf("gdscript: line %d: unexpected %s %q in expression", t.Line, t.Kind, t.Text)
}
