package gdscript

// AST node types for the supported GDScript subset. Type
// annotations (": Node3D") are parsed and recorded but not enforced
// beyond the engine bridge's own checks, matching GDScript's
// gradual typing.

// Script is a parsed file: an optional extends clause, ordered
// variable declarations, and functions.
type Script struct {
	// Extends records the base class name ("Node3D"); informational.
	Extends string
	// Vars are the script-level variable declarations in order.
	Vars []*VarDecl
	// Funcs maps function names to declarations.
	Funcs map[string]*FuncDecl
	// FuncOrder preserves declaration order for listings.
	FuncOrder []string
}

// VarDecl is a script-level or local variable declaration.
type VarDecl struct {
	// Name is the variable name.
	Name string
	// Type is the annotation text, "" when absent.
	Type string
	// Init is the initializer, nil when absent.
	Init Expr
	// Export marks @export variables (backed by node props).
	Export bool
	// OnReady marks @onready variables (initialized at _ready).
	OnReady bool
	// Const marks const declarations.
	Const bool
	// Line is the source line.
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	// Name is the function name.
	Name string
	// Params are the parameter names.
	Params []string
	// Body is the statement block.
	Body []Stmt
	// Line is the source line.
	Line int
}

// Stmt is any statement.
type Stmt interface{ stmtNode() }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X    Expr
	Line int
}

// AssignStmt assigns Value to Target with operator "=", "+=", "-=",
// "*=", or "/=".
type AssignStmt struct {
	Target Expr
	Op     string
	Value  Expr
	Line   int
}

// LocalVarStmt declares a local variable.
type LocalVarStmt struct {
	Decl *VarDecl
}

// IfStmt is an if/elif/else chain; Elifs pair conditions with
// bodies.
type IfStmt struct {
	Cond  Expr
	Body  []Stmt
	Elifs []struct {
		Cond Expr
		Body []Stmt
	}
	Else []Stmt
	Line int
}

// ForStmt iterates a sequence.
type ForStmt struct {
	Var  string
	Seq  Expr
	Body []Stmt
	Line int
}

// WhileStmt loops while the condition holds.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// MatchStmt compares a subject against case patterns in order; "_"
// is the wildcard.
type MatchStmt struct {
	Subject Expr
	Cases   []MatchCase
	Line    int
}

// MatchCase is one pattern and its body. Wildcard marks "_".
type MatchCase struct {
	Pattern  Expr
	Wildcard bool
	Body     []Stmt
}

// ReturnStmt returns from a function; Value may be nil.
type ReturnStmt struct {
	Value Expr
	Line  int
}

// PassStmt does nothing.
type PassStmt struct{ Line int }

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt skips to the next loop iteration.
type ContinueStmt struct{ Line int }

func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*LocalVarStmt) stmtNode() {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*MatchStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*PassStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is any expression.
type Expr interface{ exprNode() }

// Literal is a constant: int64, float64, string, bool, or nil.
type Literal struct {
	Value any
	Line  int
}

// Ident references a variable or function name.
type Ident struct {
	Name string
	Line int
}

// NodePathExpr is $"path" sugar.
type NodePathExpr struct {
	Path string
	Line int
}

// ArrayLit is [a, b, c].
type ArrayLit struct {
	Items []Expr
	Line  int
}

// DictLit is {"k": v, …}.
type DictLit struct {
	Keys   []Expr
	Values []Expr
	Line   int
}

// AttrExpr is X.Name.
type AttrExpr struct {
	X    Expr
	Name string
	Line int
}

// IndexExpr is X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
	Line  int
}

// CallExpr is Fn(Args...); Fn is an Ident (function or builtin) or
// AttrExpr (method).
type CallExpr struct {
	Fn   Expr
	Args []Expr
	Line int
}

// BinaryExpr applies Op to X and Y.
type BinaryExpr struct {
	Op   string
	X, Y Expr
	Line int
}

// UnaryExpr applies Op ("-" or "not") to X.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

func (*Literal) exprNode()      {}
func (*Ident) exprNode()        {}
func (*NodePathExpr) exprNode() {}
func (*ArrayLit) exprNode()     {}
func (*DictLit) exprNode()      {}
func (*AttrExpr) exprNode()     {}
func (*IndexExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
