package gdscript

import (
	"testing"

	"repro/internal/engine"
)

func TestArrayMethods(t *testing.T) {
	src := `func f():
	var a = []
	a.append(1)
	a.push_back(2)
	var n = a.size()
	var had = a.has(2)
	a.clear()
	return [n, had, a.size()]
`
	v, _ := runScript(t, src, "f")
	if Str(v) != "[2, true, 0]" {
		t.Errorf("array methods = %s", Str(v))
	}
}

func TestDictMethods(t *testing.T) {
	src := `func f():
	var d = {"x": 1}
	d["y"] = 2
	var ks = d.keys()
	return [d.size(), d.has("x"), d.has("z"), ks[0], ks[1]]
`
	v, _ := runScript(t, src, "f")
	if Str(v) != `[2, true, false, "x", "y"]` {
		t.Errorf("dict methods = %s", Str(v))
	}
}

func TestDictAttributeAccess(t *testing.T) {
	// Dot access reads dictionary keys, as in GDScript.
	src := `func f():
	var d = {"speed": 9}
	return d.speed
`
	v, _ := runScript(t, src, "f")
	if v != int64(9) {
		t.Errorf("dict attr = %v", v)
	}
}

func TestStringMethods(t *testing.T) {
	src := `func f():
	var s = "abc"
	return [s.length(), s.to_upper(), s[1]]
`
	v, _ := runScript(t, src, "f")
	if Str(v) != `[3, "ABC", "b"]` {
		t.Errorf("string methods = %s", Str(v))
	}
}

func TestFloatArithmetic(t *testing.T) {
	src := `func f():
	var x = 1.5 * 2.0
	var neg = -x
	return [x, neg, 7.0 / 2.0, 1.0 < 2.0]
`
	v, _ := runScript(t, src, "f")
	if Str(v) != "[3, -3, 3.5, true]" {
		t.Errorf("float ops = %s", Str(v))
	}
}

func TestNodeGetSetAndCounts(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	child := engine.NewNode("Node3D", "Child")
	child.Props().Export("visible", true)
	root.AddChild(child)
	src := `func f():
	var c = get_node("Child")
	c.set("visible", false)
	return [c.get("visible"), get_node(".").get_child_count(), c.get_parent().get_name()]
`
	b, err := AttachScript(root, src)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := b.Instance.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if Str(v) != `[false, 1, "Root"]` {
		t.Errorf("node get/set = %s", Str(v))
	}
}

func TestNodeAttrWriteFallsBackToData(t *testing.T) {
	// Assigning an attribute that is not an exported property lands
	// in the node's Data map — how scripts stash state on nodes.
	root := engine.NewNode("Node3D", "Root")
	src := `func f():
	var me = get_node(".")
	me.custom_state = 42
	return me.custom_state
`
	b, err := AttachScript(root, src)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := b.Instance.Call("f")
	if err != nil || v != int64(42) {
		t.Fatalf("data fallback: %v, %v", v, err)
	}
	if root.Data["custom_state"] != 42 {
		t.Errorf("Data map = %v", root.Data["custom_state"])
	}
}

func TestSelfReference(t *testing.T) {
	root := engine.NewNode("Node3D", "Me")
	b, err := AttachScript(root, "func f():\n\treturn self.name\n")
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := b.Instance.Call("f")
	if err != nil || v != "Me" {
		t.Errorf("self = %v, %v", v, err)
	}
}

func TestGetParentOfRootIsNull(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	b, err := AttachScript(root, "func f():\n\treturn get_node(\".\").get_parent() == null\n")
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := b.Instance.Call("f")
	if err != nil || v != true {
		t.Errorf("root parent = %v, %v", v, err)
	}
}

func TestNodePathOutsideSceneErrors(t *testing.T) {
	script, err := Parse("func f():\n\treturn $\"../Data\"\n")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("f"); err == nil {
		t.Error("node path resolved without a scene")
	}
}

func TestMethodErrors(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	cases := map[string]string{
		"unknown node method": "func f():\n\treturn get_node(\".\").frobnicate()\n",
		"unknown builtin":     "func f():\n\treturn frobnicate()\n",
		"get_child range":     "func f():\n\treturn get_node(\".\").get_child(9)\n",
		"bad attr":            "func f():\n\treturn get_node(\".\").missing_attr\n",
		"call non-callable":   "func f():\n\treturn (1 + 2)()\n",
		"index int":           "func f():\n\treturn (5)[0]\n",
	}
	for name, src := range cases {
		b, err := AttachScript(engine.NewNode("Node3D", "N"), src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := b.Instance.Call("f"); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	_ = root
}

func TestMembershipDictAndMismatchedTypes(t *testing.T) {
	src := `func f():
	var d = {"k": 1}
	return [1 in d, "k" in d]
`
	v, _ := runScript(t, src, "f")
	if Str(v) != "[false, true]" {
		t.Errorf("membership = %s", Str(v))
	}
}

func TestStrMultipleArgs(t *testing.T) {
	src := "func f():\n\treturn str(\"a\", 1, true)\n"
	v, _ := runScript(t, src, "f")
	if v != "a1true" {
		t.Errorf("str = %v", v)
	}
}

func TestNodeRefStrAndEquality(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	src := `func f():
	var a = get_node(".")
	var b = get_node(".")
	return [a == b, str(a)]
`
	beh, err := AttachScript(root, src)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := beh.Instance.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if Str(v) != `[true, "Root:<Node3D>"]` {
		t.Errorf("node ref = %s", Str(v))
	}
}
