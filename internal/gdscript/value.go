package gdscript

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// Value is any GDScript runtime value: nil, bool, int64, float64,
// string, *Array, *Dict, or *NodeRef.
type Value any

// Array is a mutable reference-semantics list, like GDScript's
// Array.
type Array struct {
	Items []Value
}

// Dict is a string-keyed dictionary (the subset the module format
// needs; Godot dictionaries read from JSON are string-keyed too).
type Dict struct {
	m     map[string]Value
	order []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{m: make(map[string]Value)}
}

// Set stores a key, preserving first-insertion order.
func (d *Dict) Set(key string, v Value) {
	if _, ok := d.m[key]; !ok {
		d.order = append(d.order, key)
	}
	d.m[key] = v
}

// Get fetches a key.
func (d *Dict) Get(key string) (Value, bool) {
	v, ok := d.m[key]
	return v, ok
}

// Keys returns keys in insertion order.
func (d *Dict) Keys() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// Len returns the entry count.
func (d *Dict) Len() int { return len(d.m) }

// NodeRef wraps an engine node as a script value.
type NodeRef struct {
	Node *engine.Node
}

// FromGo converts a Go value (as stored in engine node Data and
// props) into a script value. Slices and maps convert recursively.
func FromGo(v any) Value {
	switch val := v.(type) {
	case nil, bool, int64, float64, string:
		return val
	case int:
		return int64(val)
	case *engine.Node:
		if val == nil {
			return nil
		}
		return &NodeRef{Node: val}
	case []int:
		arr := &Array{}
		for _, x := range val {
			arr.Items = append(arr.Items, int64(x))
		}
		return arr
	case [][]int:
		arr := &Array{}
		for _, row := range val {
			arr.Items = append(arr.Items, FromGo(row))
		}
		return arr
	case []string:
		arr := &Array{}
		for _, s := range val {
			arr.Items = append(arr.Items, s)
		}
		return arr
	case []any:
		arr := &Array{}
		for _, x := range val {
			arr.Items = append(arr.Items, FromGo(x))
		}
		return arr
	case map[string]any:
		d := NewDict()
		// Insertion order of Go maps is unstable; sort for
		// determinism.
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			d.Set(k, FromGo(val[k]))
		}
		return d
	case *Array, *Dict, *NodeRef:
		return val
	default:
		return fmt.Sprint(val)
	}
}

// sortStrings is a tiny insertion sort to avoid importing sort for
// one call site with small inputs.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ToGo converts a script value back to a Go value for storage in
// node props.
func ToGo(v Value) any {
	switch val := v.(type) {
	case *NodeRef:
		return val.Node
	case int64:
		// Engine props use int for counters.
		return int(val)
	default:
		return val
	}
}

// Truthy implements GDScript truthiness: nil, false, zero, "" and
// empty containers are false.
func Truthy(v Value) bool {
	switch val := v.(type) {
	case nil:
		return false
	case bool:
		return val
	case int64:
		return val != 0
	case float64:
		return val != 0
	case string:
		return val != ""
	case *Array:
		return len(val.Items) > 0
	case *Dict:
		return val.Len() > 0
	default:
		return true
	}
}

// Equal implements GDScript == with numeric int/float coercion.
func Equal(a, b Value) bool {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			return af == bf
		}
		return false
	}
	switch av := a.(type) {
	case nil:
		return b == nil
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case *NodeRef:
		bv, ok := b.(*NodeRef)
		return ok && av.Node == bv.Node
	case *Array:
		bv, ok := b.(*Array)
		if !ok || len(av.Items) != len(bv.Items) {
			return false
		}
		for i := range av.Items {
			if !Equal(av.Items[i], bv.Items[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func toFloat(v Value) (float64, bool) {
	switch val := v.(type) {
	case int64:
		return float64(val), true
	case float64:
		return val, true
	default:
		return 0, false
	}
}

// Str renders a value the way GDScript's str()/print do.
func Str(v Value) string {
	switch val := v.(type) {
	case nil:
		return "null"
	case bool:
		if val {
			return "true"
		}
		return "false"
	case int64:
		return fmt.Sprint(val)
	case float64:
		return fmt.Sprint(val)
	case string:
		return val
	case *Array:
		parts := make([]string, len(val.Items))
		for i, x := range val.Items {
			parts[i] = Repr(x)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Dict:
		parts := make([]string, 0, val.Len())
		for _, k := range val.Keys() {
			x, _ := val.Get(k)
			parts = append(parts, fmt.Sprintf("%q: %s", k, Repr(x)))
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *NodeRef:
		return fmt.Sprintf("%s:<%s>", val.Node.Name(), val.Node.Kind())
	default:
		return fmt.Sprint(val)
	}
}

// Repr is Str except strings are quoted (inside containers).
func Repr(v Value) string {
	if s, ok := v.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	return Str(v)
}

// TypeName names a value's type for error messages.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "String"
	case *Array:
		return "Array"
	case *Dict:
		return "Dictionary"
	case *NodeRef:
		return "Node"
	default:
		return fmt.Sprintf("%T", v)
	}
}
