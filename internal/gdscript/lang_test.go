package gdscript

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

// runScript parses src, binds it standalone, calls fn, and returns
// the result.
func runScript(t *testing.T, src, fn string, args ...Value) (Value, *Instance) {
	t.Helper()
	script, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	inst, err := NewInstance(script, nil)
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	v, err := inst.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	return v, inst
}

func TestArithmetic(t *testing.T) {
	src := `func f():
	return (1 + 2 * 3 - 4) / 3 + 10 % 3
`
	v, _ := runScript(t, src, "f")
	if v != int64(2) { // (1+6-4)/3 = 1, 10%3 = 1
		t.Errorf("arithmetic = %v", v)
	}
}

func TestFloatCoercion(t *testing.T) {
	src := `func f():
	return 1 + 2.5
`
	v, _ := runScript(t, src, "f")
	if v != 3.5 {
		t.Errorf("coercion = %v", v)
	}
}

func TestComparisonAndLogic(t *testing.T) {
	const src = `func f(a, b):
	if a < b and not (a == b):
		return "less"
	elif a > b or false:
		return "greater"
	else:
		return "equal"
`
	cases := []struct {
		a, b Value
		want string
	}{
		{int64(1), int64(2), "less"},
		{int64(3), int64(2), "greater"},
		{int64(2), int64(2), "equal"},
	}
	for _, c := range cases {
		v, _ := runScript(t, src, "f", c.a, c.b)
		if v != c.want {
			t.Errorf("f(%v,%v) = %v, want %v", c.a, c.b, v, c.want)
		}
	}
}

func TestStringOps(t *testing.T) {
	src := `func f():
	var s = "Matching color: " + str(2)
	return s
`
	v, _ := runScript(t, src, "f")
	if v != "Matching color: 2" {
		t.Errorf("concat = %v", v)
	}
}

func TestArraysAndLoops(t *testing.T) {
	src := `func f():
	var total = 0
	var arr = [1, 2, 3, 4]
	for x in arr:
		total += x
	return total
`
	v, _ := runScript(t, src, "f")
	if v != int64(10) {
		t.Errorf("sum = %v", v)
	}
}

func TestArrayConcatPlusEquals(t *testing.T) {
	// The paper's pallet_color_array += array idiom.
	src := `var acc = []

func f():
	for row in [[1, 2], [3], [4, 5]]:
		acc += row
	return len(acc)
`
	v, inst := runScript(t, src, "f")
	if v != int64(5) {
		t.Errorf("len = %v", v)
	}
	acc := inst.globals["acc"].(*Array)
	if Str(acc) != "[1, 2, 3, 4, 5]" {
		t.Errorf("acc = %s", Str(acc))
	}
}

func TestArrayIndexingAndAssignment(t *testing.T) {
	src := `func f():
	var arr = [10, 20, 30]
	arr[1] = 99
	return arr[1] + arr[2]
`
	v, _ := runScript(t, src, "f")
	if v != int64(129) {
		t.Errorf("index = %v", v)
	}
}

func TestArrayIndexOutOfRange(t *testing.T) {
	script, _ := Parse("func f():\n\tvar a = [1]\n\treturn a[5]\n")
	inst, _ := NewInstance(script, nil)
	if _, err := inst.Call("f"); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestDictOps(t *testing.T) {
	src := `func f():
	var d = {"a": 1, "b": 2}
	d["c"] = 3
	var total = 0
	for k in d:
		total += d[k]
	return total
`
	v, _ := runScript(t, src, "f")
	if v != int64(6) {
		t.Errorf("dict sum = %v", v)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `func f():
	var i = 0
	var total = 0
	while true:
		i += 1
		if i > 10:
			break
		if i % 2 == 0:
			continue
		total += i
	return total
`
	v, _ := runScript(t, src, "f")
	if v != int64(25) { // 1+3+5+7+9
		t.Errorf("loop = %v", v)
	}
}

func TestMatchStatement(t *testing.T) {
	src := `func f(x):
	match x:
		0:
			return "zero"
		1, 2:
			return "unreachable comma form"
		_:
			return "other"
`
	// Note: the comma-pattern form is not in the subset; use
	// separate literals instead.
	src = `func f(x):
	match x:
		0:
			return "zero"
		1:
			return "one"
		_:
			return "other"
`
	for x, want := range map[int64]string{0: "zero", 1: "one", 9: "other"} {
		v, _ := runScript(t, src, "f", x)
		if v != want {
			t.Errorf("match(%d) = %v, want %v", x, v, want)
		}
	}
}

func TestMatchInlineBodies(t *testing.T) {
	// The paper's change_pallet_color uses inline case bodies.
	src := `var hit = ""

func f(c):
	match int(c):
		0: hit = "grey"
		1: hit = "blue"
		_: hit = "black"
	return hit
`
	for c, want := range map[int64]string{0: "grey", 1: "blue", 7: "black"} {
		v, _ := runScript(t, src, "f", c)
		if v != want {
			t.Errorf("inline match(%d) = %v, want %v", c, v, want)
		}
	}
}

func TestMatchNoCaseFallsThrough(t *testing.T) {
	src := `func f():
	match 9:
		0: return "zero"
	return "fell through"
`
	v, _ := runScript(t, src, "f")
	if v != "fell through" {
		t.Errorf("match = %v", v)
	}
}

func TestRangeBuiltin(t *testing.T) {
	src := `func f():
	var total = 0
	for i in range(5):
		total += i
	for i in range(2, 5):
		total += i
	for i in range(10, 0, -5):
		total += i
	return total
`
	v, _ := runScript(t, src, "f")
	if v != int64(10+9+15) {
		t.Errorf("range = %v", v)
	}
}

func TestBuiltins(t *testing.T) {
	src := `func f():
	return [len("abc"), int("42"), int(3.9), abs(-5), min(3, 1, 2), max(3, 1, 2), float(2)]
`
	v, _ := runScript(t, src, "f")
	if got := Str(v); got != "[3, 42, 3, 5, 1, 3, 2]" {
		t.Errorf("builtins = %s", got)
	}
}

func TestInOperator(t *testing.T) {
	src := `func f():
	var hits = 0
	if 2 in [1, 2, 3]:
		hits += 1
	if "a" in {"a": 1}:
		hits += 1
	if "ell" in "hello":
		hits += 1
	if 9 in [1]:
		hits += 100
	return hits
`
	v, _ := runScript(t, src, "f")
	if v != int64(3) {
		t.Errorf("in = %v", v)
	}
}

func TestRecursionAndReturn(t *testing.T) {
	src := `func fib(n):
	if n < 2:
		return n
	return fib(n - 1) + fib(n - 2)
`
	v, _ := runScript(t, src, "fib", int64(10))
	if v != int64(55) {
		t.Errorf("fib(10) = %v", v)
	}
}

func TestDivisionByZeroError(t *testing.T) {
	script, _ := Parse("func f():\n\treturn 1 / 0\n")
	inst, _ := NewInstance(script, nil)
	if _, err := inst.Call("f"); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestUndefinedVariableError(t *testing.T) {
	script, _ := Parse("func f():\n\treturn nosuchvar\n")
	inst, _ := NewInstance(script, nil)
	if _, err := inst.Call("f"); err == nil {
		t.Error("undefined identifier accepted")
	}
}

func TestAssignUndeclaredError(t *testing.T) {
	script, _ := Parse("func f():\n\tnosuchvar = 1\n")
	inst, _ := NewInstance(script, nil)
	if _, err := inst.Call("f"); err == nil {
		t.Error("assignment to undeclared accepted")
	}
}

func TestStepLimitStopsRunaway(t *testing.T) {
	script, _ := Parse("func f():\n\twhile true:\n\t\tpass\n")
	inst, _ := NewInstance(script, nil)
	inst.MaxSteps = 1000
	if _, err := inst.Call("f"); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("runaway not stopped: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad indent":     "func f():\n\tif true:\n\t\t\t\tpass\n\t  pass\n",
		"unterminated":   "func f():\n\treturn \"oops\n",
		"missing colon":  "func f()\n\tpass\n",
		"stray bracket":  "func f():\n\treturn ]\n",
		"dup func":       "func f():\n\tpass\nfunc f():\n\tpass\n",
		"top level expr": "1 + 2\n",
		"bad annotation": "@frobnicate var x = 1\n",
		"empty block":    "func f():\n",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: parsed successfully", name)
		}
	}
}

func TestLexerStringsAndComments(t *testing.T) {
	toks, err := Lex("var s = \"a # not comment\" # real comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var strTok *Token
	for i := range toks {
		if toks[i].Kind == TokString {
			strTok = &toks[i]
		}
		if toks[i].Kind == TokIdent && toks[i].Text == "real" {
			t.Error("comment not stripped")
		}
	}
	if strTok == nil || strTok.Text != "a # not comment" {
		t.Errorf("string token = %v", strTok)
	}
}

func TestLexerEscapes(t *testing.T) {
	toks, err := Lex(`var s = "a\n\t\"b\""` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind == TokString {
			if tok.Text != "a\n\t\"b\"" {
				t.Errorf("escaped string = %q", tok.Text)
			}
			return
		}
	}
	t.Fatal("no string token")
}

func TestMultilineArrayLiteral(t *testing.T) {
	src := `var grid = [
	[1, 2],
	[3, 4],
]

func f():
	return grid[1][0]
`
	v, _ := runScript(t, src, "f")
	if v != int64(3) {
		t.Errorf("multiline literal = %v", v)
	}
}

func TestExportVarBackedByProps(t *testing.T) {
	src := `@export var speed : int = 7

func bump():
	speed += 1
	return speed
`
	node := engine.NewNode("Node3D", "N")
	b, err := AttachScript(node, src)
	if err != nil {
		t.Fatal(err)
	}
	// Default exported to props at attach.
	if node.Props().GetInt("speed", -1) != 7 {
		t.Errorf("default not exported: %v", node.Props().GetInt("speed", -1))
	}
	// Inspector-side change visible to the script.
	if err := node.Props().Set("speed", 20); err != nil {
		t.Fatal(err)
	}
	v, err := b.Instance.Call("bump")
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(21) || node.Props().GetInt("speed", -1) != 21 {
		t.Errorf("two-way binding broken: ret=%v prop=%d", v, node.Props().GetInt("speed", -1))
	}
}

func TestExportVarInspectorOverrideWins(t *testing.T) {
	// A value assigned in the Inspector before the script attaches
	// must survive (the paper assigns axis references that way).
	node := engine.NewNode("Node3D", "N")
	node.Props().Export("speed", 99)
	b, err := AttachScript(node, "@export var speed : int = 7\n\nfunc get_speed():\n\treturn speed\n")
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Instance.Call("get_speed")
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(99) {
		t.Errorf("inspector override lost: %v", v)
	}
}

func TestOnReadyAndProcess(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	data := engine.NewNode("Node3D", "Data")
	data.Data["value"] = 5
	holder := engine.NewNode("Node3D", "Holder")
	root.AddChild(data)
	root.AddChild(holder)
	src := `@onready var d : Node3D = $"../Data"

var ticks = 0

func _process(delta):
	ticks += 1

func get_value():
	return d.value
`
	b, err := AttachScript(holder, src)
	if err != nil {
		t.Fatal(err)
	}
	tree := engine.NewSceneTree(root)
	tree.Start()
	if b.Err != nil {
		t.Fatal(b.Err)
	}
	v, err := b.Instance.Call("get_value")
	if err != nil || v != int64(5) {
		t.Errorf("onready node access = %v, %v", v, err)
	}
	tree.Run(3, 0.016)
	if b.Instance.globals["ticks"] != int64(3) {
		t.Errorf("_process ticks = %v", b.Instance.globals["ticks"])
	}
}

func TestNodeMethodsBridge(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	for _, n := range []string{"A", "B", "C"} {
		root.AddChild(engine.NewNode("Node3D", n))
	}
	src := `func f():
	var kids = get_node(".").get_children()
	var names = []
	for k in kids:
		names.append(k.name)
	return str(len(kids)) + ":" + names[1]
`
	b, err := AttachScript(root, src)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := b.Instance.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v != "3:B" {
		t.Errorf("bridge = %v", v)
	}
}

func TestNodeGroupAndSignalBridge(t *testing.T) {
	root := engine.NewNode("Node3D", "Root")
	fired := 0
	root.Connect("custom", func(*engine.Node, ...any) { fired++ })
	src := `func f():
	var me = get_node(".")
	me.add_to_group("testers")
	me.emit_signal("custom")
	return me.is_in_group("testers")
`
	b, err := AttachScript(root, src)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	v, err := b.Instance.Call("f")
	if err != nil || v != true || fired != 1 {
		t.Errorf("group/signal bridge: v=%v err=%v fired=%d", v, err, fired)
	}
}

func TestValueHelpers(t *testing.T) {
	if !Truthy(int64(1)) || Truthy(int64(0)) || Truthy("") || !Truthy("x") {
		t.Error("Truthy wrong")
	}
	if Truthy(&Array{}) || !Truthy(&Array{Items: []Value{int64(1)}}) {
		t.Error("Truthy on arrays wrong")
	}
	if !Equal(int64(2), 2.0) || Equal(int64(2), "2") {
		t.Error("Equal coercion wrong")
	}
	if TypeName(&Dict{}) != "Dictionary" || TypeName(nil) != "null" {
		t.Error("TypeName wrong")
	}
	if Str(true) != "true" || Str(nil) != "null" {
		t.Error("Str wrong")
	}
	d := NewDict()
	d.Set("k", int64(1))
	if Str(d) != `{"k": 1}` {
		t.Errorf("dict Str = %s", Str(d))
	}
}

func TestCallArityErrors(t *testing.T) {
	script, _ := Parse("func f(a, b):\n\treturn a\n")
	inst, _ := NewInstance(script, nil)
	if _, err := inst.Call("f", int64(1)); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := inst.Call("missing"); err == nil {
		t.Error("missing function accepted")
	}
}
