package gdscript

import (
	"math/rand"
	"testing"
)

// TestLexerNeverPanics: the lexer must return tokens or an error —
// never panic — on arbitrary byte soup.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	alphabet := []byte("abc_09 \t\n\"'\\$@#:=+-*/%()[]{}<>!.,⚡")
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(80)
		src := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			src = append(src, alphabet[rng.Intn(len(alphabet))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panic on %q: %v", src, r)
				}
			}()
			_, _ = Lex(string(src))
		}()
	}
}

// TestParserNeverPanics: same contract for the parser over
// token-soup that lexes successfully.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	words := []string{
		"func", "var", "if", "else", "for", "in", "while", "match",
		"return", "pass", "x", "y", "f", "(", ")", ":", "=", "+",
		"[", "]", "{", "}", "\"s\"", "1", "2.5", "$\"p\"", "@export",
		"\n", "\n\t", "\n\t\t", ",", ".",
	}
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(25)
		src := ""
		for i := 0; i < n; i++ {
			src += words[rng.Intn(len(words))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panic on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestInterpreterErrorsDoNotCorruptInstance: after a failed call the
// instance still evaluates correct code.
func TestInterpreterErrorsDoNotCorruptInstance(t *testing.T) {
	src := `var counter = 0

func bad():
	counter += 1
	return 1 / 0

func good():
	counter += 1
	return counter
`
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Call("bad"); err == nil {
		t.Fatal("division by zero not reported")
	}
	v, err := inst.Call("good")
	if err != nil {
		t.Fatalf("instance corrupted after error: %v", err)
	}
	// counter was incremented once in bad() before the error and
	// once in good().
	if v != int64(2) {
		t.Errorf("counter = %v, want 2", v)
	}
}
