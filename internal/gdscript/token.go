// Package gdscript implements an interpreter for the GDScript
// subset the paper's listings use: typed var declarations with
// @export and @onready annotations, functions, if/elif/else, for,
// while, match (including inline case bodies), arrays and
// dictionaries, node-path sugar ($"../Data"), and the engine bridge
// that lets scripts read and write scene nodes.
//
// The paper's argument for Godot rests on GDScript being easy for
// non-game-developers; running the paper's own "Pallet and label
// controller" script unmodified against internal/engine verifies the
// engine exposes the same scripting surface.
package gdscript

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokNewline
	TokIndent
	TokDedent
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
	TokNodePath // $"path" or $name
	TokAnnotation
)

// kindNames maps kinds to display names for diagnostics.
var kindNames = map[TokenKind]string{
	TokEOF: "EOF", TokNewline: "newline", TokIndent: "indent",
	TokDedent: "dedent", TokIdent: "identifier", TokKeyword: "keyword",
	TokNumber: "number", TokString: "string", TokOp: "operator",
	TokNodePath: "node path", TokAnnotation: "annotation",
}

// String names the kind.
func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Token is one lexical unit with its source line for diagnostics.
type Token struct {
	Kind TokenKind
	Text string
	Line int
}

// keywords of the supported subset.
var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "elif": true, "else": true,
	"for": true, "while": true, "in": true, "match": true,
	"return": true, "pass": true, "true": true, "false": true,
	"null": true, "and": true, "or": true, "not": true,
	"extends": true, "break": true, "continue": true, "const": true,
}

// multi-character operators, longest first.
var multiOps = []string{
	"==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "&&", "||",
}

// singleOps are the single-character operators.
const singleOps = "+-*/%=<>:,.()[]{}"

// Lex tokenizes source into a token stream with Python-style
// INDENT/DEDENT tokens. Comments (#) and blank lines are skipped;
// tabs count as one indent unit each, spaces as one each (scripts
// must be internally consistent, as in GDScript).
func Lex(src string) ([]Token, error) {
	var toks []Token
	indents := []int{0}
	lines := strings.Split(src, "\n")
	parenDepth := 0

	for lineNo, raw := range lines {
		line := raw
		// Strip comments outside strings.
		line = stripComment(line)
		trimmed := strings.TrimSpace(line)
		if trimmed == "" && parenDepth == 0 {
			continue
		}
		if parenDepth == 0 {
			// Measure indentation.
			level := 0
			for _, r := range line {
				if r == '\t' || r == ' ' {
					level++
				} else {
					break
				}
			}
			top := indents[len(indents)-1]
			if level > top {
				indents = append(indents, level)
				toks = append(toks, Token{Kind: TokIndent, Line: lineNo + 1})
			}
			for level < indents[len(indents)-1] {
				indents = indents[:len(indents)-1]
				toks = append(toks, Token{Kind: TokDedent, Line: lineNo + 1})
			}
			if level != indents[len(indents)-1] {
				return nil, fmt.Errorf("gdscript: line %d: inconsistent indentation", lineNo+1)
			}
		}
		lineToks, depth, err := lexLine(trimmed, lineNo+1, parenDepth)
		if err != nil {
			return nil, err
		}
		parenDepth = depth
		toks = append(toks, lineToks...)
		if parenDepth == 0 {
			toks = append(toks, Token{Kind: TokNewline, Line: lineNo + 1})
		}
	}
	for len(indents) > 1 {
		indents = indents[:len(indents)-1]
		toks = append(toks, Token{Kind: TokDedent, Line: len(lines)})
	}
	toks = append(toks, Token{Kind: TokEOF, Line: len(lines)})
	return toks, nil
}

// stripComment removes a # comment, respecting string literals.
func stripComment(line string) string {
	inString := false
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		if inString {
			if c == '\\' {
				i++
			} else if c == quote {
				inString = false
			}
			continue
		}
		switch c {
		case '"', '\'':
			inString = true
			quote = c
		case '#':
			return line[:i]
		}
	}
	return line
}

// lexLine tokenizes one logical line, tracking bracket depth so
// multi-line literals continue onto the next physical line.
func lexLine(s string, lineNo, depth int) ([]Token, int, error) {
	var toks []Token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '$':
			// Node-path sugar: $"path" or $Name/Sub.
			i++
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				str, n, err := lexString(s[i:], lineNo)
				if err != nil {
					return nil, depth, err
				}
				toks = append(toks, Token{Kind: TokNodePath, Text: str, Line: lineNo})
				i += n
			} else {
				start := i
				for i < len(s) && (isIdentChar(s[i]) || s[i] == '/') {
					i++
				}
				if i == start {
					return nil, depth, fmt.Errorf("gdscript: line %d: bare $", lineNo)
				}
				toks = append(toks, Token{Kind: TokNodePath, Text: s[start:i], Line: lineNo})
			}
		case c == '@':
			i++
			start := i
			for i < len(s) && isIdentChar(s[i]) {
				i++
			}
			if i == start {
				return nil, depth, fmt.Errorf("gdscript: line %d: bare @", lineNo)
			}
			toks = append(toks, Token{Kind: TokAnnotation, Text: s[start:i], Line: lineNo})
		case c == '"' || c == '\'':
			str, n, err := lexString(s[i:], lineNo)
			if err != nil {
				return nil, depth, err
			}
			toks = append(toks, Token{Kind: TokString, Text: str, Line: lineNo})
			i += n
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.' && !seenDot) {
				if s[i] == '.' {
					// A trailing method call like 3.abs() is not
					// supported; treat dot-digit as decimal.
					if i+1 >= len(s) || s[i+1] < '0' || s[i+1] > '9' {
						break
					}
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: s[start:i], Line: lineNo})
		case isIdentStart(c):
			start := i
			for i < len(s) && isIdentChar(s[i]) {
				i++
			}
			word := s[start:i]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: lineNo})
		default:
			matched := false
			for _, op := range multiOps {
				if strings.HasPrefix(s[i:], op) {
					toks = append(toks, Token{Kind: TokOp, Text: op, Line: lineNo})
					i += len(op)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if strings.IndexByte(singleOps, c) >= 0 {
				switch c {
				case '(', '[', '{':
					depth++
				case ')', ']', '}':
					depth--
				}
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Line: lineNo})
				i++
				continue
			}
			return nil, depth, fmt.Errorf("gdscript: line %d: unexpected character %q", lineNo, c)
		}
	}
	return toks, depth, nil
}

// lexString lexes a quoted string starting at s[0] (the quote) and
// returns the decoded value and consumed byte count. Curly/smart
// quotes from the paper's PDF extraction are normalized upstream.
func lexString(s string, lineNo int) (string, int, error) {
	quote := s[0]
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case quote:
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("gdscript: line %d: dangling escape", lineNo)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'':
				b.WriteByte(s[i])
			default:
				return "", 0, fmt.Errorf("gdscript: line %d: unknown escape \\%c", lineNo, s[i])
			}
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("gdscript: line %d: unterminated string", lineNo)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
