package gdscript

import (
	"fmt"

	"repro/internal/engine"
)

// evalCall dispatches calls: script functions, builtins, and
// methods on nodes, arrays, dictionaries, and strings.
func (in *Instance) evalCall(call *CallExpr, sc *scope) (Value, error) {
	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch fn := call.Fn.(type) {
	case *Ident:
		// Script function first, then builtin.
		if _, ok := in.script.Funcs[fn.Name]; ok {
			return in.Call(fn.Name, args...)
		}
		return in.callBuiltin(fn.Name, args, call.Line)
	case *AttrExpr:
		obj, err := in.eval(fn.X, sc)
		if err != nil {
			return nil, err
		}
		return in.callMethod(obj, fn.Name, args, call.Line)
	default:
		return nil, fmt.Errorf("gdscript: line %d: expression is not callable", call.Line)
	}
}

// callBuiltin implements the global builtin functions the paper's
// scripts use (plus a few general-purpose ones).
func (in *Instance) callBuiltin(name string, args []Value, line int) (Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("gdscript: line %d: %s takes %d args, got %d", line, name, n, len(args))
		}
		return nil
	}
	switch name {
	case "print":
		for _, a := range args {
			in.Stdout.WriteString(Str(a))
		}
		in.Stdout.WriteByte('\n')
		return nil, nil
	case "printerr", "push_error":
		for _, a := range args {
			in.Stderr.WriteString(Str(a))
		}
		in.Stderr.WriteByte('\n')
		return nil, nil
	case "str":
		var out string
		for _, a := range args {
			out += Str(a)
		}
		return out, nil
	case "len":
		if err := arity(1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case *Array:
			return int64(len(v.Items)), nil
		case *Dict:
			return int64(v.Len()), nil
		case string:
			return int64(len([]rune(v))), nil
		default:
			return nil, fmt.Errorf("gdscript: line %d: len() of %s", line, TypeName(args[0]))
		}
	case "int":
		if err := arity(1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case int64:
			return v, nil
		case float64:
			return int64(v), nil
		case bool:
			if v {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			var n int64
			if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
				return int64(0), nil
			}
			return n, nil
		default:
			return nil, fmt.Errorf("gdscript: line %d: int() of %s", line, TypeName(args[0]))
		}
	case "float":
		if err := arity(1); err != nil {
			return nil, err
		}
		if f, ok := toFloat(args[0]); ok {
			return f, nil
		}
		return nil, fmt.Errorf("gdscript: line %d: float() of %s", line, TypeName(args[0]))
	case "abs":
		if err := arity(1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case float64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		}
		return nil, fmt.Errorf("gdscript: line %d: abs() of %s", line, TypeName(args[0]))
	case "min", "max":
		if len(args) < 2 {
			return nil, fmt.Errorf("gdscript: line %d: %s needs ≥2 args", line, name)
		}
		best := args[0]
		for _, a := range args[1:] {
			cmp, err := binaryOp("<", a, best, line)
			if err != nil {
				return nil, err
			}
			less := cmp.(bool)
			if (name == "min" && less) || (name == "max" && !less) {
				best = a
			}
		}
		return best, nil
	case "range":
		var start, stop, step int64 = 0, 0, 1
		switch len(args) {
		case 1:
			stop, _ = args[0].(int64)
		case 2:
			start, _ = args[0].(int64)
			stop, _ = args[1].(int64)
		case 3:
			start, _ = args[0].(int64)
			stop, _ = args[1].(int64)
			step, _ = args[2].(int64)
			if step == 0 {
				return nil, fmt.Errorf("gdscript: line %d: range() step cannot be 0", line)
			}
		default:
			return nil, fmt.Errorf("gdscript: line %d: range() takes 1-3 args", line)
		}
		arr := &Array{}
		if step > 0 {
			for i := start; i < stop; i += step {
				arr.Items = append(arr.Items, i)
			}
		} else {
			for i := start; i > stop; i += step {
				arr.Items = append(arr.Items, i)
			}
		}
		return arr, nil
	case "preload", "load":
		// Resources are identified by their path strings in this
		// engine; preload is the identity on the path.
		if err := arity(1); err != nil {
			return nil, err
		}
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: preload() needs a path string", line)
		}
		return path, nil
	case "get_node":
		if err := arity(1); err != nil {
			return nil, err
		}
		if in.node == nil {
			return nil, fmt.Errorf("gdscript: line %d: get_node outside a scene", line)
		}
		return in.callMethod(&NodeRef{Node: in.node}, "get_node", args, line)
	default:
		return nil, fmt.Errorf("gdscript: line %d: unknown function %q", line, name)
	}
}

// callMethod implements methods on nodes and containers.
func (in *Instance) callMethod(obj Value, name string, args []Value, line int) (Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("gdscript: line %d: %s takes %d args, got %d", line, name, n, len(args))
		}
		return nil
	}
	switch o := obj.(type) {
	case *NodeRef:
		return in.callNodeMethod(o.Node, name, args, line, arity)
	case *Array:
		switch name {
		case "append", "push_back":
			if err := arity(1); err != nil {
				return nil, err
			}
			o.Items = append(o.Items, args[0])
			return nil, nil
		case "size":
			if err := arity(0); err != nil {
				return nil, err
			}
			return int64(len(o.Items)), nil
		case "clear":
			if err := arity(0); err != nil {
				return nil, err
			}
			o.Items = nil
			return nil, nil
		case "has":
			if err := arity(1); err != nil {
				return nil, err
			}
			for _, item := range o.Items {
				if Equal(item, args[0]) {
					return true, nil
				}
			}
			return false, nil
		}
	case *Dict:
		switch name {
		case "keys":
			if err := arity(0); err != nil {
				return nil, err
			}
			arr := &Array{}
			for _, k := range o.Keys() {
				arr.Items = append(arr.Items, k)
			}
			return arr, nil
		case "has":
			if err := arity(1); err != nil {
				return nil, err
			}
			k, ok := args[0].(string)
			if !ok {
				return false, nil
			}
			_, found := o.Get(k)
			return found, nil
		case "size":
			if err := arity(0); err != nil {
				return nil, err
			}
			return int64(o.Len()), nil
		}
	case string:
		switch name {
		case "length":
			if err := arity(0); err != nil {
				return nil, err
			}
			return int64(len([]rune(o))), nil
		case "to_upper":
			if err := arity(0); err != nil {
				return nil, err
			}
			return toUpper(o), nil
		}
	}
	return nil, fmt.Errorf("gdscript: line %d: %s has no method %q", line, TypeName(obj), name)
}

// toUpper uppercases ASCII letters (axis labels are ASCII).
func toUpper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// callNodeMethod implements the engine bridge methods.
func (in *Instance) callNodeMethod(node *engine.Node, name string, args []Value, line int, arity func(int) error) (Value, error) {
	switch name {
	case "get_children":
		if err := arity(0); err != nil {
			return nil, err
		}
		arr := &Array{}
		for _, c := range node.Children() {
			arr.Items = append(arr.Items, &NodeRef{Node: c})
		}
		return arr, nil
	case "get_child":
		if err := arity(1); err != nil {
			return nil, err
		}
		i, ok := args[0].(int64)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: get_child index must be int", line)
		}
		c, err := node.Child(int(i))
		if err != nil {
			return nil, fmt.Errorf("gdscript: line %d: %w", line, err)
		}
		return &NodeRef{Node: c}, nil
	case "get_child_count":
		if err := arity(0); err != nil {
			return nil, err
		}
		return int64(node.ChildCount()), nil
	case "get_node":
		if err := arity(1); err != nil {
			return nil, err
		}
		path, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: get_node needs a path string", line)
		}
		target, err := node.GetNode(path)
		if err != nil {
			return nil, fmt.Errorf("gdscript: line %d: %w", line, err)
		}
		return &NodeRef{Node: target}, nil
	case "get_parent":
		if err := arity(0); err != nil {
			return nil, err
		}
		if node.Parent() == nil {
			return nil, nil
		}
		return &NodeRef{Node: node.Parent()}, nil
	case "get_name":
		if err := arity(0); err != nil {
			return nil, err
		}
		return node.Name(), nil
	case "add_to_group":
		if err := arity(1); err != nil {
			return nil, err
		}
		g, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: add_to_group needs a string", line)
		}
		node.AddToGroup(g)
		return nil, nil
	case "is_in_group":
		if err := arity(1); err != nil {
			return nil, err
		}
		g, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: is_in_group needs a string", line)
		}
		return node.IsInGroup(g), nil
	case "emit_signal":
		if len(args) < 1 {
			return nil, fmt.Errorf("gdscript: line %d: emit_signal needs a signal name", line)
		}
		sig, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: emit_signal needs a string", line)
		}
		goArgs := make([]any, 0, len(args)-1)
		for _, a := range args[1:] {
			goArgs = append(goArgs, ToGo(a))
		}
		return int64(node.Emit(sig, goArgs...)), nil
	case "get":
		if err := arity(1); err != nil {
			return nil, err
		}
		prop, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: get needs a property name", line)
		}
		v, _ := node.Props().Get(prop)
		return FromGo(v), nil
	case "set":
		if err := arity(2); err != nil {
			return nil, err
		}
		prop, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("gdscript: line %d: set needs a property name", line)
		}
		if err := node.Props().Set(prop, ToGo(args[1])); err != nil {
			return nil, fmt.Errorf("gdscript: line %d: %w", line, err)
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("gdscript: line %d: node has no method %q", line, name)
	}
}
