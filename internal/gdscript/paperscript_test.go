package gdscript_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/game"
	"repro/internal/gdscript"
)

// buildPaperLevel builds a training-level scene, removes the native
// Go controller behavior, and attaches the paper's GDScript instead.
func buildPaperLevel(t *testing.T) (*engine.SceneTree, *gdscript.Behavior, *engine.Node) {
	t.Helper()
	module := game.TrainingModule()
	root, err := game.BuildLevelScene(module)
	if err != nil {
		t.Fatal(err)
	}
	controller := root.MustGetNode(game.NodeController)
	controller.SetBehavior(nil) // replace the Go port with the original
	b, err := gdscript.AttachScript(controller, gdscript.PaperControllerScript)
	if err != nil {
		t.Fatal(err)
	}
	tree := engine.NewSceneTree(root)
	tree.Start()
	if b.Err != nil {
		t.Fatalf("paper script _ready failed: %v", b.Err)
	}
	return tree, b, controller
}

// TestPaperScriptParses verifies the paper's listing parses with all
// three functions and seven script variables.
func TestPaperScriptParses(t *testing.T) {
	script, err := gdscript.Parse(gdscript.PaperControllerScript)
	if err != nil {
		t.Fatal(err)
	}
	if script.Extends != "Node3D" {
		t.Errorf("extends %q, want Node3D", script.Extends)
	}
	for _, fn := range []string{"_ready", "set_labels", "change_pallet_color"} {
		if _, ok := script.Funcs[fn]; !ok {
			t.Errorf("missing function %q", fn)
		}
	}
	// 4 @export + 2 @onready + pallet_color_array + 5 materials.
	if len(script.Vars) != 12 {
		t.Errorf("parsed %d script vars, want 12", len(script.Vars))
	}
}

// TestPaperScriptSetsLabels verifies _ready → set_labels writes the
// module's axis labels onto both axes' Label3D children.
func TestPaperScriptSetsLabels(t *testing.T) {
	tree, _, _ := buildPaperLevel(t)
	module := game.TrainingModule()
	for _, axisName := range []string{game.NodeXAxis, game.NodeYAxis} {
		axis := tree.Root().MustGetNode(axisName)
		got := game.AxisLabelTexts(axis)
		if len(got) != len(module.AxisLabels) {
			t.Fatalf("axis %s has %d labels, want %d", axisName, len(got), len(module.AxisLabels))
		}
		for i, want := range module.AxisLabels {
			if got[i] != want {
				t.Errorf("axis %s label %d = %q, want %q", axisName, i, got[i], want)
			}
		}
	}
}

// TestPaperScriptColorToggle verifies change_pallet_color colors
// every pallet according to the module's color matrix, then restores
// the default material on the second call — and that its state
// round-trips through the exported pallets_are_colored property.
func TestPaperScriptColorToggle(t *testing.T) {
	tree, b, controller := buildPaperLevel(t)
	module := game.TrainingModule()
	n, _ := module.Dim()

	if got := controller.Props().GetBool("pallets_are_colored", true); got {
		t.Fatal("pallets_are_colored should start false")
	}
	if _, err := b.Instance.Call("change_pallet_color"); err != nil {
		t.Fatal(err)
	}
	if got := controller.Props().GetBool("pallets_are_colored", false); !got {
		t.Fatal("pallets_are_colored should be true after first toggle")
	}
	pallets := tree.Root().MustGetNode(game.NodePallets)
	for idx, pallet := range pallets.Children() {
		i, j := idx/n, idx%n
		want := game.MaterialForCode(module.TrafficMatrixColors[i][j])
		got := pallet.MustChild(0).Props().GetString("material_override", "")
		if got != want {
			t.Fatalf("pallet (%d,%d) material %q, want %q", i, j, got, want)
		}
	}
	if _, err := b.Instance.Call("change_pallet_color"); err != nil {
		t.Fatal(err)
	}
	for idx, pallet := range pallets.Children() {
		got := pallet.MustChild(0).Props().GetString("material_override", "")
		if got != game.MaterialDefault {
			t.Fatalf("pallet %d material %q after untoggle, want default", idx, got)
		}
	}
	out := b.Instance.Stdout.String()
	if !strings.Contains(out, "Palets are default! Making them colored") {
		t.Errorf("missing colored-path print; got:\n%s", out)
	}
	if !strings.Contains(out, "Palets are colored! Making them default") {
		t.Errorf("missing default-path print; got:\n%s", out)
	}
}

// TestPaperScriptMatchesGoPort verifies the GDScript original and
// the Go port produce identical pallet materials for every color
// code, including the black fallback.
func TestPaperScriptMatchesGoPort(t *testing.T) {
	module := game.TrainingModule()
	// Inject an out-of-range color to exercise the fallback arm.
	module.TrafficMatrixColors[5][5] = 9

	// GDScript path.
	root, err := game.BuildLevelScene(module)
	if err != nil {
		t.Fatal(err)
	}
	controller := root.MustGetNode(game.NodeController)
	controller.SetBehavior(nil)
	b, err := gdscript.AttachScript(controller, gdscript.PaperControllerScript)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	if b.Err != nil {
		t.Fatal(b.Err)
	}
	if _, err := b.Instance.Call("change_pallet_color"); err != nil {
		t.Fatal(err)
	}

	// Go-port path.
	root2, err := game.BuildLevelScene(module)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root2).Start()
	controller2 := root2.MustGetNode(game.NodeController)
	if err := game.ChangePalletColor(controller2); err != nil {
		t.Fatal(err)
	}

	p1 := root.MustGetNode(game.NodePallets).Children()
	p2 := root2.MustGetNode(game.NodePallets).Children()
	if len(p1) != len(p2) {
		t.Fatalf("pallet counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		m1 := p1[i].MustChild(0).Props().GetString("material_override", "")
		m2 := p2[i].MustChild(0).Props().GetString("material_override", "")
		if m1 != m2 {
			t.Errorf("pallet %d: script %q vs port %q", i, m1, m2)
		}
	}
	// The injected bad code must have produced the black fallback.
	n, _ := module.Dim()
	bad := p1[5*n+5].MustChild(0).Props().GetString("material_override", "")
	if bad != game.MaterialBlack {
		t.Errorf("out-of-range color produced %q, want black fallback", bad)
	}
}

// TestHelloWorld runs Fig 1c end to end.
func TestHelloWorld(t *testing.T) {
	script, err := gdscript.Parse(gdscript.HelloWorldGDScript)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := gdscript.NewInstance(script, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Ready(); err != nil {
		t.Fatal(err)
	}
	if got := inst.Stdout.String(); got != "Hello, world!\n" {
		t.Errorf("stdout = %q, want %q", got, "Hello, world!\n")
	}
}

// TestPaperScriptLabelMismatch verifies the script's printerr branch
// fires when the level data disagrees with the label count, exactly
// like the original's error handling.
func TestPaperScriptLabelMismatch(t *testing.T) {
	module := game.TrainingModule()
	root, err := game.BuildLevelScene(module)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the Data node after scene construction.
	data := root.MustGetNode(game.NodeData)
	data.Data["axis_labels"] = []string{"A", "B"}

	controller := root.MustGetNode(game.NodeController)
	controller.SetBehavior(nil)
	b, err := gdscript.AttachScript(controller, gdscript.PaperControllerScript)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	if b.Err != nil {
		t.Fatalf("script errored instead of printerr: %v", b.Err)
	}
	if !strings.Contains(b.Instance.Stderr.String(), "Level data does not match number of labels!") {
		t.Errorf("expected printerr output, got %q", b.Instance.Stderr.String())
	}
}
