package gdscript

import (
	"fmt"
	"strings"

	"repro/internal/engine"
)

// Instance is a script bound to a scene node (the node may be nil
// for standalone scripts). Script-level variables live in the
// instance; @export variables are backed by the node's property bag
// so the Inspector and the script observe the same state, exactly as
// in Godot.
type Instance struct {
	script  *Script
	node    *engine.Node
	globals map[string]Value
	exports map[string]bool

	// Stdout and Stderr collect print/printerr output.
	Stdout strings.Builder
	Stderr strings.Builder

	// steps guards against runaway scripts; MaxSteps bounds total
	// statement executions per Instance.
	steps    int
	MaxSteps int
}

// NewInstance binds a parsed script to a node and evaluates the
// plain (non-@onready) variable initializers, mirroring load-time
// evaluation.
func NewInstance(script *Script, node *engine.Node) (*Instance, error) {
	in := &Instance{
		script:   script,
		node:     node,
		globals:  make(map[string]Value),
		exports:  make(map[string]bool),
		MaxSteps: 1_000_000,
	}
	for _, decl := range script.Vars {
		if decl.OnReady {
			// Placeholder until Ready.
			in.globals[decl.Name] = nil
			continue
		}
		var v Value
		if decl.Init != nil {
			var err error
			v, err = in.eval(decl.Init, nil)
			if err != nil {
				return nil, err
			}
		}
		if decl.Export && node != nil {
			in.exports[decl.Name] = true
			if !node.Props().Has(decl.Name) {
				node.Props().Export(decl.Name, ToGo(v))
			}
			continue
		}
		in.globals[decl.Name] = v
	}
	return in, nil
}

// Node returns the bound node, or nil.
func (in *Instance) Node() *engine.Node { return in.node }

// Ready evaluates @onready initializers and then runs _ready when
// defined: the engine's enter-tree sequence.
func (in *Instance) Ready() error {
	for _, decl := range in.script.Vars {
		if !decl.OnReady {
			continue
		}
		var v Value
		if decl.Init != nil {
			var err error
			v, err = in.eval(decl.Init, nil)
			if err != nil {
				return fmt.Errorf("gdscript: @onready %s: %w", decl.Name, err)
			}
		}
		in.globals[decl.Name] = v
	}
	if _, ok := in.script.Funcs["_ready"]; ok {
		_, err := in.Call("_ready")
		return err
	}
	return nil
}

// HasFunc reports whether the script defines a function.
func (in *Instance) HasFunc(name string) bool {
	_, ok := in.script.Funcs[name]
	return ok
}

// Call invokes a script function by name.
func (in *Instance) Call(name string, args ...Value) (Value, error) {
	fn, ok := in.script.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("gdscript: no function %q", name)
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("gdscript: %s takes %d args, got %d", name, len(fn.Params), len(args))
	}
	locals := newScope(nil)
	for i, p := range fn.Params {
		locals.define(p, args[i])
	}
	err := in.execBlock(fn.Body, locals)
	if ret, ok := err.(returnSignal); ok {
		return ret.value, nil
	}
	return nil, err
}

// Behavior adapts the instance to engine.Behavior so scripts attach
// to nodes like GDScript files attach in Godot.
type Behavior struct {
	// Instance is the bound script instance.
	Instance *Instance
	// Err records the first lifecycle error (engine callbacks
	// cannot return one).
	Err error
}

// AttachScript parses source, binds it to the node, and attaches it
// as the node's behavior. The caller inspects Behavior.Err after the
// tree starts.
func AttachScript(node *engine.Node, src string) (*Behavior, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(script, node)
	if err != nil {
		return nil, err
	}
	b := &Behavior{Instance: inst}
	node.SetBehavior(b)
	return b, nil
}

// Ready implements engine.Behavior.
func (b *Behavior) Ready(*engine.Node) {
	if err := b.Instance.Ready(); err != nil && b.Err == nil {
		b.Err = err
	}
}

// Process implements engine.Behavior, calling _process(delta) when
// defined.
func (b *Behavior) Process(_ *engine.Node, dt float64) {
	if !b.Instance.HasFunc("_process") {
		return
	}
	if _, err := b.Instance.Call("_process", dt); err != nil && b.Err == nil {
		b.Err = err
	}
}

// scope is a chained local-variable environment.
type scope struct {
	vars   map[string]Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]Value), parent: parent}
}

func (s *scope) define(name string, v Value) { s.vars[name] = v }

func (s *scope) lookup(name string) (Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) assign(name string, v Value) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return true
		}
	}
	return false
}

// Control-flow signals travel as error values.
type returnSignal struct{ value Value }
type breakSignal struct{}
type continueSignal struct{}

func (returnSignal) Error() string   { return "return outside function" }
func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }

// execBlock runs statements in a fresh child scope.
func (in *Instance) execBlock(stmts []Stmt, parent *scope) error {
	sc := newScope(parent)
	for _, st := range stmts {
		if err := in.exec(st, sc); err != nil {
			return err
		}
	}
	return nil
}

// exec runs one statement.
func (in *Instance) exec(st Stmt, sc *scope) error {
	in.steps++
	if in.steps > in.MaxSteps {
		return fmt.Errorf("gdscript: execution exceeded %d steps", in.MaxSteps)
	}
	switch s := st.(type) {
	case *ExprStmt:
		_, err := in.eval(s.X, sc)
		return err
	case *LocalVarStmt:
		var v Value
		if s.Decl.Init != nil {
			var err error
			v, err = in.eval(s.Decl.Init, sc)
			if err != nil {
				return err
			}
		}
		sc.define(s.Decl.Name, v)
		return nil
	case *AssignStmt:
		return in.execAssign(s, sc)
	case *IfStmt:
		cond, err := in.eval(s.Cond, sc)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.execBlock(s.Body, sc)
		}
		for _, elif := range s.Elifs {
			c, err := in.eval(elif.Cond, sc)
			if err != nil {
				return err
			}
			if Truthy(c) {
				return in.execBlock(elif.Body, sc)
			}
		}
		if s.Else != nil {
			return in.execBlock(s.Else, sc)
		}
		return nil
	case *ForStmt:
		seq, err := in.eval(s.Seq, sc)
		if err != nil {
			return err
		}
		items, err := iterate(seq, s.Line)
		if err != nil {
			return err
		}
		for _, item := range items {
			loop := newScope(sc)
			loop.define(s.Var, item)
			err := in.execBlock(s.Body, loop)
			switch err.(type) {
			case nil, continueSignal:
				continue
			case breakSignal:
				return nil
			default:
				return err
			}
		}
		return nil
	case *WhileStmt:
		for {
			cond, err := in.eval(s.Cond, sc)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			err = in.execBlock(s.Body, sc)
			switch err.(type) {
			case nil, continueSignal:
				continue
			case breakSignal:
				return nil
			default:
				return err
			}
		}
	case *MatchStmt:
		subject, err := in.eval(s.Subject, sc)
		if err != nil {
			return err
		}
		for _, c := range s.Cases {
			if c.Wildcard {
				return in.execBlock(c.Body, sc)
			}
			pat, err := in.eval(c.Pattern, sc)
			if err != nil {
				return err
			}
			if Equal(subject, pat) {
				return in.execBlock(c.Body, sc)
			}
		}
		return nil
	case *ReturnStmt:
		var v Value
		if s.Value != nil {
			var err error
			v, err = in.eval(s.Value, sc)
			if err != nil {
				return err
			}
		}
		return returnSignal{value: v}
	case *PassStmt:
		return nil
	case *BreakStmt:
		return breakSignal{}
	case *ContinueStmt:
		return continueSignal{}
	default:
		return fmt.Errorf("gdscript: unknown statement %T", st)
	}
}

// iterate expands a for-loop sequence.
func iterate(seq Value, line int) ([]Value, error) {
	switch s := seq.(type) {
	case *Array:
		out := make([]Value, len(s.Items))
		copy(out, s.Items)
		return out, nil
	case *Dict:
		var out []Value
		for _, k := range s.Keys() {
			out = append(out, k)
		}
		return out, nil
	case string:
		var out []Value
		for _, r := range s {
			out = append(out, string(r))
		}
		return out, nil
	case int64:
		var out []Value
		for i := int64(0); i < s; i++ {
			out = append(out, i)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("gdscript: line %d: cannot iterate %s", line, TypeName(seq))
	}
}

// execAssign handles =, +=, -=, *=, /= on identifiers, attributes,
// and indexes.
func (in *Instance) execAssign(s *AssignStmt, sc *scope) error {
	var value Value
	rhs, err := in.eval(s.Value, sc)
	if err != nil {
		return err
	}
	if s.Op == "=" {
		value = rhs
	} else {
		current, err := in.eval(s.Target, sc)
		if err != nil {
			return err
		}
		value, err = binaryOp(strings.TrimSuffix(s.Op, "="), current, rhs, s.Line)
		if err != nil {
			return err
		}
	}
	switch target := s.Target.(type) {
	case *Ident:
		return in.assignName(target.Name, value, sc, s.Line)
	case *AttrExpr:
		obj, err := in.eval(target.X, sc)
		if err != nil {
			return err
		}
		return in.setAttr(obj, target.Name, value, s.Line)
	case *IndexExpr:
		obj, err := in.eval(target.X, sc)
		if err != nil {
			return err
		}
		idx, err := in.eval(target.Index, sc)
		if err != nil {
			return err
		}
		return setIndex(obj, idx, value, s.Line)
	default:
		return fmt.Errorf("gdscript: line %d: invalid assignment target", s.Line)
	}
}

// assignName writes a variable through local scope, export props,
// then instance globals.
func (in *Instance) assignName(name string, v Value, sc *scope, line int) error {
	if sc != nil && sc.assign(name, v) {
		return nil
	}
	if in.exports[name] && in.node != nil {
		return in.node.Props().Set(name, ToGo(v))
	}
	if _, ok := in.globals[name]; ok {
		in.globals[name] = v
		return nil
	}
	return fmt.Errorf("gdscript: line %d: assignment to undeclared variable %q", line, name)
}

// setAttr assigns obj.name.
func (in *Instance) setAttr(obj Value, name string, v Value, line int) error {
	node, ok := obj.(*NodeRef)
	if !ok {
		return fmt.Errorf("gdscript: line %d: cannot set attribute %q on %s", line, name, TypeName(obj))
	}
	if node.Node.Props().Has(name) {
		return node.Node.Props().Set(name, ToGo(v))
	}
	node.Node.Data[name] = ToGo(v)
	return nil
}

// setIndex assigns obj[idx].
func setIndex(obj, idx, v Value, line int) error {
	switch o := obj.(type) {
	case *Array:
		i, ok := idx.(int64)
		if !ok {
			return fmt.Errorf("gdscript: line %d: array index must be int, got %s", line, TypeName(idx))
		}
		if i < 0 || int(i) >= len(o.Items) {
			return fmt.Errorf("gdscript: line %d: array index %d out of range %d", line, i, len(o.Items))
		}
		o.Items[i] = v
		return nil
	case *Dict:
		k, ok := idx.(string)
		if !ok {
			return fmt.Errorf("gdscript: line %d: dictionary key must be String, got %s", line, TypeName(idx))
		}
		o.Set(k, v)
		return nil
	default:
		return fmt.Errorf("gdscript: line %d: cannot index-assign %s", line, TypeName(obj))
	}
}
