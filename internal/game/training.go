package game

import "repro/internal/core"

// The built-in training level (Fig 5): "This module walks the player
// through what a traffic matrix is, how to read one, how it is of
// value to them, and how it will be represented in the game
// environment. The training module also provides a space for the
// player to learn the controls of the game without needing to load
// in a learning module."

// TrainingModuleName identifies the built-in training module.
const TrainingModuleName = "Traffic Matrix Training"

// TrainingModule returns the built-in training module: a small
// 6×6 network whose anti-diagonal mirrors the template exercise,
// with the introductory question the walkthrough builds toward.
func TrainingModule() *core.Module {
	return &core.Module{
		Name:   TrainingModuleName,
		Size:   "6x6",
		Author: "Traffic Warehouse",
		Hint:   "A traffic matrix entry A(i,j)=v means source i sent v packets to destination j.",
		AxisLabels: []string{
			"WS1", "WS2", "SRV1", "EXT1", "ADV1", "ADV2",
		},
		TrafficMatrix: [][]int{
			{1, 0, 2, 0, 0, 1},
			{0, 1, 2, 0, 0, 0},
			{1, 1, 0, 2, 0, 0},
			{0, 0, 2, 0, 0, 0},
			{0, 0, 3, 0, 0, 1},
			{0, 0, 0, 0, 1, 0},
		},
		TrafficMatrixColors: [][]int{
			{1, 1, 1, 0, 2, 2},
			{1, 1, 1, 0, 2, 2},
			{1, 1, 1, 0, 2, 2},
			{0, 0, 0, 0, 0, 0},
			{2, 2, 2, 0, 0, 0},
			{2, 2, 2, 0, 0, 0},
		},
		HasQuestion: true,
		Question:    "How many packets did ADV1 send to SRV1?",
		Answers:     []string{"1", "2", "3"},
		// ADV1 (row 4) sends 3 packets to SRV1 (column 2).
		CorrectAnswerElement: 2,
	}
}

// TrainingSteps is the guided walkthrough text shown alongside the
// training level, one step per screen. The player advances with
// ActionNext; each step teaches one concept or control from the
// paper's description of the level.
var TrainingSteps = []string{
	"Welcome to Traffic Warehouse! A network traffic matrix records\n" +
		"who talks to whom: the entry at row i, column j counts the\n" +
		"packets source i sent to destination j.",
	"This warehouse floor IS the matrix. Every pallet is one\n" +
		"source/destination pair, and every box on a pallet is one\n" +
		"packet to be shipped.",
	"Read the axes: rows are sources, columns are destinations.\n" +
		"WS are your workstations, SRV your server, EXT external\n" +
		"hosts, and ADV adversaries.",
	"Move the cursor with W/A/S/D and place a box with P (remove\n" +
		"with X). The manifest shows placed/target for each pallet —\n" +
		"fill every pallet to match the lesson's matrix.",
	"Press SPACE to step into the 3D warehouse and back; rotate the\n" +
		"view with Q and E. Network defenders read these shapes at a\n" +
		"glance — that intuition is what you are here to build.",
	"Press C to toggle pallet colors: blue is your own network, red\n" +
		"is adversary space, grey is neutral. Colors turn a matrix\n" +
		"into a map of trust boundaries.",
	"That's the training. Place all the boxes to complete the\n" +
		"level, then answer the question. Good luck!",
}

// TrainingLesson wraps the training module as a single-module
// lesson.
func TrainingLesson() *core.Lesson {
	return &core.Lesson{Name: "training", Modules: []*core.Module{TrainingModule()}}
}
