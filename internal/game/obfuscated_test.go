package game

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestObfuscatedModulePlays: a lesson whose answers are stored as
// salted digests (the paper's future-work obfuscation) must play and
// grade identically to its plain twin.
func TestObfuscatedModulePlays(t *testing.T) {
	plain := core.MustTemplate(10)
	hidden := plain.Clone()
	hidden.AnswerSalt = "fixed-test-salt"
	if err := hidden.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}

	play := func(m *core.Module) float64 {
		g, err := New(&core.Lesson{Name: "t", Modules: []*core.Module{m}}, "s", rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		g.Update(ActionFillAll)
		for g.Phase() == PhasePlaying {
			g.Update(ActionNext)
		}
		q, ok := g.Question()
		if !ok {
			t.Fatal("no question")
		}
		g.Update([]Action{ActionAnswer1, ActionAnswer2, ActionAnswer3}[q.CorrectOption])
		g.Update(ActionNext)
		return g.Session().Score()
	}

	if plainScore, hiddenScore := play(plain), play(hidden); plainScore != 1.0 || hiddenScore != 1.0 {
		t.Errorf("scores: plain=%f obfuscated=%f, want 1.0 both", plainScore, hiddenScore)
	}
}
