package game

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Action is one player input.
type Action int

// The game's input vocabulary. The paper documents spacebar (2D/3D
// toggle) and Q/E (rotation); the rest follows common keyboard
// conventions.
const (
	ActionNone Action = iota
	ActionUp
	ActionDown
	ActionLeft
	ActionRight
	ActionPlaceBox
	ActionRemoveBox
	ActionToggleView // spacebar
	ActionRotateLeft // Q
	ActionRotateRight
	ActionToggleColors
	ActionAnswer1
	ActionAnswer2
	ActionAnswer3
	ActionNext
	ActionFillAll
	ActionQuit
)

// actionNames maps actions to the script words used by scripted
// play.
var actionNames = map[Action]string{
	ActionNone:         "none",
	ActionUp:           "up",
	ActionDown:         "down",
	ActionLeft:         "left",
	ActionRight:        "right",
	ActionPlaceBox:     "place",
	ActionRemoveBox:    "remove",
	ActionToggleView:   "view",
	ActionRotateLeft:   "rotl",
	ActionRotateRight:  "rotr",
	ActionToggleColors: "colors",
	ActionAnswer1:      "answer1",
	ActionAnswer2:      "answer2",
	ActionAnswer3:      "answer3",
	ActionNext:         "next",
	ActionFillAll:      "fill",
	ActionQuit:         "quit",
}

// String returns the action's script word.
func (a Action) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// ParseAction parses a script word (or single key) into an Action.
func ParseAction(word string) (Action, error) {
	w := strings.ToLower(strings.TrimSpace(word))
	for a, name := range actionNames {
		if w == name {
			return a, nil
		}
	}
	if len([]rune(w)) == 1 {
		if a, ok := KeyAction([]rune(w)[0]); ok {
			return a, nil
		}
	}
	return ActionNone, fmt.Errorf("game: unknown action %q", word)
}

// KeyAction maps a keyboard rune to an action: WASD movement,
// space for the 2D/3D toggle, Q/E rotation, C colors, P/X place and
// remove, 1–3 answers, N next, F fill, Z quit.
func KeyAction(r rune) (Action, bool) {
	switch r {
	case 'w', 'W', 'k':
		return ActionUp, true
	case 's', 'S', 'j':
		return ActionDown, true
	case 'a', 'A', 'h':
		return ActionLeft, true
	case 'd', 'D', 'l':
		return ActionRight, true
	case ' ':
		return ActionToggleView, true
	case 'q', 'Q':
		return ActionRotateLeft, true
	case 'e', 'E':
		return ActionRotateRight, true
	case 'c', 'C':
		return ActionToggleColors, true
	case 'p', 'P', '\r', '\n':
		return ActionPlaceBox, true
	case 'x', 'X':
		return ActionRemoveBox, true
	case '1':
		return ActionAnswer1, true
	case '2':
		return ActionAnswer2, true
	case '3':
		return ActionAnswer3, true
	case 'n', 'N':
		return ActionNext, true
	case 'f', 'F':
		return ActionFillAll, true
	case 'z', 'Z':
		return ActionQuit, true
	default:
		return ActionNone, false
	}
}

// Source yields player actions; ok=false means input is exhausted.
type Source interface {
	Next() (action Action, ok bool)
}

// ScriptSource replays a whitespace-separated action script: the
// deterministic input channel tests and demos use. Words are parsed
// by ParseAction; unknown words are an error at construction time.
type ScriptSource struct {
	actions []Action
	pos     int
}

// NewScriptSource parses a script into a source.
func NewScriptSource(script string) (*ScriptSource, error) {
	var actions []Action
	for _, w := range strings.Fields(script) {
		a, err := ParseAction(w)
		if err != nil {
			return nil, err
		}
		actions = append(actions, a)
	}
	return &ScriptSource{actions: actions}, nil
}

// Next implements Source.
func (s *ScriptSource) Next() (Action, bool) {
	if s.pos >= len(s.actions) {
		return ActionNone, false
	}
	a := s.actions[s.pos]
	s.pos++
	return a, true
}

// ReaderSource reads keys from an io.Reader (one action per rune,
// skipping unmapped runes): the interactive terminal channel.
type ReaderSource struct {
	r *bufio.Reader
}

// NewReaderSource wraps a reader.
func NewReaderSource(r io.Reader) *ReaderSource {
	return &ReaderSource{r: bufio.NewReader(r)}
}

// Next implements Source, skipping runes with no mapping.
func (s *ReaderSource) Next() (Action, bool) {
	for {
		r, _, err := s.r.ReadRune()
		if err != nil {
			return ActionNone, false
		}
		if a, ok := KeyAction(r); ok {
			return a, true
		}
	}
}
