// Package game implements Traffic Warehouse itself: the warehouse
// levels built as engine scene trees, the pallet/label controller
// ported line-for-line from the paper's GDScript, the 2D/3D views
// with spacebar toggle and Q/E rotation, box placement, the built-in
// training level, and sequential lesson play with multiple-choice
// questions.
package game

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Material resource paths. The first five match the paper's preloads
// verbatim; the last three implement its "expanding the range of
// colors and materials" future-work item.
const (
	MaterialDefault = "res://Assets/Objects/pallet_material.tres"
	MaterialRed     = "res://Assets/Objects/pallet_material_r.tres"
	MaterialBlue    = "res://Assets/Objects/pallet_material_b.tres"
	MaterialGrey    = "res://Assets/Objects/pallet_material_g.tres"
	MaterialBlack   = "res://Assets/Objects/pallet_material_black.tres"
	MaterialGreen   = "res://Assets/Objects/pallet_material_green.tres"
	MaterialYellow  = "res://Assets/Objects/pallet_material_yellow.tres"
	MaterialPurple  = "res://Assets/Objects/pallet_material_purple.tres"
)

// CodeBlack is the sentinel CodeForMaterial reports for the black
// fallback material; CodeUncolored for the default wood.
const (
	CodeBlack     = -2
	CodeUncolored = -1
)

// MaterialForCode maps a module color code to its material resource:
// the Go rendering of the paper's match statement in
// change_pallet_color, extended with the green/yellow/purple range
// (codes 3–5). The paper's original GDScript predates the extension
// and renders those codes black; the equivalence tests compare the
// two only over the paper's 0–2 range plus the shared fallback.
func MaterialForCode(code int) string {
	switch code {
	case 0:
		return MaterialGrey
	case 1:
		return MaterialBlue
	case 2:
		return MaterialRed
	case 3:
		return MaterialGreen
	case 4:
		return MaterialYellow
	case 5:
		return MaterialPurple
	default:
		return MaterialBlack
	}
}

// CodeForMaterial inverts MaterialForCode; the renderer uses it to
// read pallet colors back out of the scene. The default material
// reports CodeUncolored and black reports CodeBlack so neither
// collides with a real color code.
func CodeForMaterial(material string) int {
	switch material {
	case MaterialGrey:
		return 0
	case MaterialBlue:
		return 1
	case MaterialRed:
		return 2
	case MaterialGreen:
		return 3
	case MaterialYellow:
		return 4
	case MaterialPurple:
		return 5
	case MaterialBlack:
		return CodeBlack
	default:
		return CodeUncolored
	}
}

// Scene node names, matching Fig 2.
const (
	NodeData       = "Data"
	NodeController = "Pallet and label controller"
	NodeXAxis      = "X"
	NodeYAxis      = "Y"
	NodePallets    = "Pallets"
	NodeBoxes      = "Boxes"
	NodeCamera     = "Camera3D"
	NodeUI         = "UI"
	NodeTraining   = "TrainingGuide"
)

// BuildLevelScene constructs the scene tree of a standard level for
// one learning module, mirroring Fig 2: a Data node holding the
// parsed module dictionary, the pallet/label controller with its
// exported node references, X and Y axis nodes with one label child
// per axis entry (Fig 4), a Pallets node with n×n pallet children
// (each with a mesh child carrying material_override), an empty
// Boxes node, a camera, and a UI node.
//
// The returned tree has NOT been started; callers wrap it in an
// engine.SceneTree and Start it, which runs the controller's _ready.
func BuildLevelScene(m *core.Module) (*engine.Node, error) {
	if issues := m.Validate(); !issues.OK() {
		return nil, fmt.Errorf("game: module %q is invalid:\n%s", m.Name, issues.Errs())
	}
	n, err := m.Dim()
	if err != nil {
		return nil, err
	}

	root := engine.NewNode("Node3D", levelRootName(m))

	data := engine.NewNode("Node3D", NodeData)
	// Godot "can natively read in a JSON file and store it as a
	// dictionary"; Data carries that dictionary.
	data.Data["module"] = m
	data.Data["axis_labels"] = append([]string(nil), m.AxisLabels...)
	data.Data["traffic_matrix"] = m.TrafficMatrix
	data.Data["traffic_matrix_colors"] = m.TrafficMatrixColors
	root.AddChild(data)

	controller := engine.NewNode("Node3D", NodeController)
	root.AddChild(controller)

	makeAxis := func(name, prefix string) *engine.Node {
		axis := engine.NewNode("Node3D", name)
		for i := 0; i < n; i++ {
			label := engine.NewNode("Node3D", fmt.Sprintf("%sLabel%d", prefix, i+1))
			// Child 0: the plinth mesh. Child 1: the Label3D text —
			// the paper's scripts address it as get_child(1).
			mesh := engine.NewNode("MeshInstance3D", "Plinth")
			text := engine.NewNode("Label3D", "Text")
			text.Props().Export("text", "")
			label.AddChild(mesh)
			label.AddChild(text)
			axis.AddChild(label)
		}
		return axis
	}
	xAxis := makeAxis(NodeXAxis, "X")
	yAxis := makeAxis(NodeYAxis, "Y")
	root.AddChild(xAxis)
	root.AddChild(yAxis)

	pallets := engine.NewNode("Node3D", NodePallets)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pallet := engine.NewNode("Node3D", fmt.Sprintf("Pallet_%d_%d", i, j))
			mesh := engine.NewNode("MeshInstance3D", "PalletMesh")
			mesh.Props().Export("material_override", MaterialDefault)
			pallet.AddChild(mesh)
			pallet.AddToGroup("pallets")
			pallets.AddChild(pallet)
		}
	}
	root.AddChild(pallets)

	boxes := engine.NewNode("Node3D", NodeBoxes)
	root.AddChild(boxes)

	camera := engine.NewNode("Camera3D", NodeCamera)
	camera.Props().Export("mode_3d", false)
	camera.Props().Export("rotation_steps", 0)
	root.AddChild(camera)

	ui := engine.NewNode("Control", NodeUI)
	ui.Props().Export("question_visible", false)
	root.AddChild(ui)

	// Attach the controller script with its export variables
	// assigned "using the Inspector tab" (Fig 3).
	controller.Props().Export("y_axis", yAxis)
	controller.Props().Export("x_axis", xAxis)
	controller.Props().Export("pallets", pallets)
	controller.Props().Export("pallets_are_colored", false)
	controller.SetBehavior(&PalletLabelController{})

	return root, nil
}

// levelRootName derives the root node name from the module, falling
// back to "Level".
func levelRootName(m *core.Module) string {
	if m.Name == TrainingModuleName {
		return "TrainingLevel"
	}
	return "Level"
}

// PalletAt returns the pallet node for cell (i,j) in an n×n level.
func PalletAt(root *engine.Node, n, i, j int) (*engine.Node, error) {
	pallets, err := root.GetNode(NodePallets)
	if err != nil {
		return nil, err
	}
	return pallets.Child(i*n + j)
}

// AxisLabelTexts reads back the label texts of an axis node, in
// order: the proof that set_labels reached the scene.
func AxisLabelTexts(axis *engine.Node) []string {
	out := make([]string, 0, axis.ChildCount())
	for _, label := range axis.Children() {
		text := label.MustChild(1)
		out = append(out, text.Props().GetString("text", ""))
	}
	return out
}
