package game

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/quiz"
	"repro/internal/term"
)

// Phase is the game's current mode.
type Phase int

const (
	// PhasePlaying: the student is loading boxes (or exploring).
	PhasePlaying Phase = iota
	// PhaseQuestion: the module's multiple-choice question is up.
	PhaseQuestion
	// PhaseModuleDone: between modules, waiting for Next.
	PhaseModuleDone
	// PhaseLessonDone: every module has been presented.
	PhaseLessonDone
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhasePlaying:
		return "playing"
	case PhaseQuestion:
		return "question"
	case PhaseModuleDone:
		return "module done"
	case PhaseLessonDone:
		return "lesson done"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Game runs a lesson: modules presented sequentially, each played to
// completion, each question asked with shuffled answers, the session
// scored at the end.
type Game struct {
	lesson  *core.Lesson
	rng     *rand.Rand
	session *quiz.Session

	index    int
	level    *Level
	phase    Phase
	question quiz.Presented
	hasQ     bool

	// trainingStep indexes TrainingSteps while the training module
	// is active; -1 otherwise.
	trainingStep int

	// message is transient feedback shown under the view.
	message string
	// quit is set by ActionQuit.
	quit bool
}

// New creates a game over a lesson. The rng drives answer
// shuffling; pass a seeded source for reproducible classroom runs.
func New(lesson *core.Lesson, student string, rng *rand.Rand) (*Game, error) {
	if lesson == nil || len(lesson.Modules) == 0 {
		return nil, fmt.Errorf("game: empty lesson")
	}
	if issues := lesson.Validate(); !issues.OK() {
		return nil, fmt.Errorf("game: lesson %q is invalid:\n%s", lesson.Name, issues.Errs())
	}
	g := &Game{
		lesson:  lesson,
		rng:     rng,
		session: quiz.NewSession(student),
	}
	if err := g.loadModule(0); err != nil {
		return nil, err
	}
	return g, nil
}

// loadModule switches to module idx.
func (g *Game) loadModule(idx int) error {
	level, err := NewLevel(g.lesson.Modules[idx])
	if err != nil {
		return err
	}
	g.index = idx
	g.level = level
	g.phase = PhasePlaying
	g.hasQ = false
	g.message = ""
	if level.Module().Name == TrainingModuleName {
		g.trainingStep = 0
	} else {
		g.trainingStep = -1
	}
	return nil
}

// Level returns the active level.
func (g *Game) Level() *Level { return g.level }

// Phase returns the current phase.
func (g *Game) Phase() Phase { return g.phase }

// Session returns the quiz session (live; do not mutate).
func (g *Game) Session() *quiz.Session { return g.session }

// ModuleIndex returns the zero-based index of the active module.
func (g *Game) ModuleIndex() int { return g.index }

// Done reports whether the lesson is over (completed or quit).
func (g *Game) Done() bool { return g.phase == PhaseLessonDone || g.quit }

// Quit reports whether the player quit early.
func (g *Game) Quit() bool { return g.quit }

// Question returns the currently presented question during
// PhaseQuestion.
func (g *Game) Question() (quiz.Presented, bool) {
	return g.question, g.phase == PhaseQuestion && g.hasQ
}

// Update applies one player action and returns transient feedback
// (empty when silent).
func (g *Game) Update(a Action) string {
	g.message = ""
	switch g.phase {
	case PhasePlaying:
		g.updatePlaying(a)
	case PhaseQuestion:
		g.updateQuestion(a)
	case PhaseModuleDone:
		switch a {
		case ActionNext:
			g.advanceModule()
		case ActionQuit:
			g.quit = true
		}
	case PhaseLessonDone:
		if a == ActionQuit {
			g.quit = true
		}
	}
	return g.message
}

// updatePlaying handles actions during play.
func (g *Game) updatePlaying(a Action) {
	l := g.level
	switch a {
	case ActionUp:
		l.MoveCursor(-1, 0)
	case ActionDown:
		l.MoveCursor(1, 0)
	case ActionLeft:
		l.MoveCursor(0, -1)
	case ActionRight:
		l.MoveCursor(0, 1)
	case ActionPlaceBox:
		if err := l.PlaceBox(); err != nil {
			g.message = err.Error()
		}
	case ActionRemoveBox:
		if err := l.RemoveBox(); err != nil {
			g.message = err.Error()
		}
	case ActionFillAll:
		l.FillAll()
		g.message = "all boxes placed"
	case ActionToggleView:
		l.ToggleView()
	case ActionRotateLeft:
		l.RotateLeft()
	case ActionRotateRight:
		l.RotateRight()
	case ActionToggleColors:
		if err := l.ToggleColors(); err != nil {
			g.message = err.Error()
		}
	case ActionNext:
		if g.trainingStep >= 0 && g.trainingStep < len(TrainingSteps)-1 {
			g.trainingStep++
			return
		}
		if !l.Complete() {
			g.message = fmt.Sprintf("%d boxes still to place", l.Remaining())
			return
		}
		g.finishPlacement()
	case ActionQuit:
		g.quit = true
	}
	if g.phase == PhasePlaying && l.Complete() && a == ActionPlaceBox {
		g.message = "all packets placed! press N to continue"
	}
}

// finishPlacement moves from play to the question (or straight to
// module done).
func (g *Game) finishPlacement() {
	q, ok := g.level.Module().Quiz()
	if !ok {
		g.phase = PhaseModuleDone
		g.message = "module complete"
		return
	}
	// "Traffic Warehouse will randomize the list that has the
	// answers when they are displayed."
	g.question = quiz.Shuffle(q, g.rng)
	g.hasQ = true
	g.phase = PhaseQuestion
	ui := g.level.Scene().Root().MustGetNode(NodeUI)
	_ = ui.Props().Set("question_visible", true)
}

// updateQuestion handles answer selection.
func (g *Game) updateQuestion(a Action) {
	var choice int
	switch a {
	case ActionAnswer1:
		choice = 0
	case ActionAnswer2:
		choice = 1
	case ActionAnswer3:
		choice = 2
	case ActionQuit:
		g.quit = true
		return
	default:
		return
	}
	if choice >= len(g.question.Options) {
		g.message = "no such option"
		return
	}
	correct, err := g.session.Record(g.question, choice)
	if err != nil {
		g.message = err.Error()
		return
	}
	if correct {
		g.message = "correct!"
	} else {
		g.message = fmt.Sprintf("not quite — the answer was %q", g.question.Options[g.question.CorrectOption])
	}
	ui := g.level.Scene().Root().MustGetNode(NodeUI)
	_ = ui.Props().Set("question_visible", false)
	g.phase = PhaseModuleDone
}

// advanceModule moves to the next module or ends the lesson.
func (g *Game) advanceModule() {
	if g.index+1 >= len(g.lesson.Modules) {
		g.phase = PhaseLessonDone
		return
	}
	if err := g.loadModule(g.index + 1); err != nil {
		// A module that validated at construction should always
		// load; fail safe by ending the lesson with the error shown.
		g.message = err.Error()
		g.phase = PhaseLessonDone
	}
}

// View renders the full game screen as plain text (the ANSI variant
// is Screen).
func (g *Game) View() string {
	var b strings.Builder
	fb, err := g.level.Render()
	if err != nil {
		return fmt.Sprintf("render error: %v\n", err)
	}
	b.WriteString(fb.Text())
	g.writeOverlay(&b)
	return b.String()
}

// Screen renders the full game screen with ANSI colors.
func (g *Game) Screen() string {
	var b strings.Builder
	fb, err := g.level.Render()
	if err != nil {
		return fmt.Sprintf("render error: %v\n", err)
	}
	b.WriteString(fb.ANSI())
	g.writeOverlay(&b)
	return b.String()
}

// writeOverlay appends the textual UI below the rendered view:
// training steps, question panel, progress, and transient messages.
func (g *Game) writeOverlay(b *strings.Builder) {
	fmt.Fprintf(b, "\nmodule %d/%d — %s\n", g.index+1, len(g.lesson.Modules), g.phase)
	if g.trainingStep >= 0 && g.phase == PhasePlaying {
		fmt.Fprintf(b, "\n[training %d/%d]\n%s\n", g.trainingStep+1, len(TrainingSteps), TrainingSteps[g.trainingStep])
	}
	if g.phase == PhaseQuestion && g.hasQ {
		fmt.Fprintf(b, "\n%s\n", g.question.Prompt)
		for i, opt := range g.question.Options {
			fmt.Fprintf(b, "  %d) %s\n", i+1, opt)
		}
		if hint := g.level.Module().Hint; hint != "" {
			fmt.Fprintf(b, "  hint: %s\n", hint)
		}
	}
	if g.phase == PhaseLessonDone {
		b.WriteString("\n" + g.session.Report())
	}
	if g.message != "" {
		fmt.Fprintf(b, "\n» %s\n", g.message)
	}
}

// Play drives the game from an input source until input runs out or
// the lesson ends, writing each frame to out (which may be nil for
// headless runs). It returns the final session.
func (g *Game) Play(src Source, out func(frame string)) *quiz.Session {
	if out != nil {
		out(g.View())
	}
	for !g.Done() {
		a, ok := src.Next()
		if !ok {
			break
		}
		g.Update(a)
		if out != nil {
			out(g.View())
		}
	}
	return g.session
}

// Banner renders the game's startup banner.
func Banner() string {
	title := term.Style{FG: term.BrightYellow, Bold: true}
	return title.Apply("TRAFFIC WAREHOUSE") + " — learn network traffic matrices by loading the floor\n"
}
