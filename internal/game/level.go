package game

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/render"
)

// Level is one playable learning module: the engine scene plus the
// player's progress loading boxes (packets) onto pallets. The level
// renders through the scene — labels and pallet colors are read back
// from the nodes the controller script wrote, so the engine path is
// load-bearing, not decorative.
type Level struct {
	module *core.Module
	tree   *engine.SceneTree
	n      int

	target *matrix.Dense
	placed *matrix.Dense

	cursorRow, cursorCol int
	mode3D               bool
	rotation             render.Rotation
}

// NewLevel builds and starts the scene for a module.
func NewLevel(m *core.Module) (*Level, error) {
	root, err := BuildLevelScene(m)
	if err != nil {
		return nil, err
	}
	tree := engine.NewSceneTree(root)
	tree.Start()
	controller := root.MustGetNode(NodeController)
	if msg, bad := controller.Data[keyLastError].(string); bad {
		return nil, fmt.Errorf("game: controller failed to initialize: %s", msg)
	}
	n, err := m.Dim()
	if err != nil {
		return nil, err
	}
	target, err := m.Matrix()
	if err != nil {
		return nil, err
	}
	return &Level{
		module: m,
		tree:   tree,
		n:      n,
		target: target,
		placed: matrix.NewSquare(n),
	}, nil
}

// Module returns the level's learning module.
func (l *Level) Module() *core.Module { return l.module }

// Scene returns the level's scene tree.
func (l *Level) Scene() *engine.SceneTree { return l.tree }

// Size returns the matrix dimension.
func (l *Level) Size() int { return l.n }

// Cursor returns the selected cell.
func (l *Level) Cursor() (row, col int) { return l.cursorRow, l.cursorCol }

// Mode3D reports whether the 3D view is active.
func (l *Level) Mode3D() bool { return l.mode3D }

// Rotation returns the 3D view rotation.
func (l *Level) Rotation() render.Rotation { return l.rotation }

// Target returns the module's traffic matrix (the shipping
// manifest).
func (l *Level) Target() *matrix.Dense { return l.target.Clone() }

// Placed returns the player's progress matrix.
func (l *Level) Placed() *matrix.Dense { return l.placed.Clone() }

// MoveCursor moves the selection by (dRow,dCol), clamped to the
// grid.
func (l *Level) MoveCursor(dRow, dCol int) {
	l.cursorRow = clamp(l.cursorRow+dRow, 0, l.n-1)
	l.cursorCol = clamp(l.cursorCol+dCol, 0, l.n-1)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PlaceBox loads one box onto the selected pallet. It refuses to
// exceed the manifest ("the pallet is full") so a completed level is
// exactly the module's matrix. The box also becomes a node under
// Boxes, keeping the scene authoritative.
func (l *Level) PlaceBox() error {
	i, j := l.cursorRow, l.cursorCol
	have, want := l.placed.At(i, j), l.target.At(i, j)
	if have >= want {
		if want == 0 {
			return fmt.Errorf("game: no packets ship from %s to %s in this lesson", l.labelFor(i), l.labelFor(j))
		}
		return fmt.Errorf("game: pallet (%s→%s) already has all %d boxes", l.labelFor(i), l.labelFor(j), want)
	}
	l.placed.Add(i, j, 1)
	boxes := l.tree.Root().MustGetNode(NodeBoxes)
	boxes.AddChild(engine.NewNode("MeshInstance3D", fmt.Sprintf("Box_%d_%d_%d", i, j, have+1)))
	return nil
}

// RemoveBox takes one box off the selected pallet.
func (l *Level) RemoveBox() error {
	i, j := l.cursorRow, l.cursorCol
	have := l.placed.At(i, j)
	if have == 0 {
		return fmt.Errorf("game: pallet (%s→%s) is empty", l.labelFor(i), l.labelFor(j))
	}
	boxes := l.tree.Root().MustGetNode(NodeBoxes)
	name := fmt.Sprintf("Box_%d_%d_%d", i, j, have)
	if node := boxes.FindByName(name); node != nil {
		boxes.RemoveChild(node)
	}
	l.placed.Add(i, j, -1)
	return nil
}

// FillAll places every remaining box: the presenter shortcut that
// produces Fig 5c's "packets are all placed" state.
func (l *Level) FillAll() {
	for i := 0; i < l.n; i++ {
		for j := 0; j < l.n; j++ {
			for l.placed.At(i, j) < l.target.At(i, j) {
				l.cursorRow, l.cursorCol = i, j
				if err := l.PlaceBox(); err != nil {
					return // unreachable: bounded by target
				}
			}
		}
	}
}

// Complete reports whether every packet has been placed.
func (l *Level) Complete() bool { return l.placed.Equal(l.target) }

// Remaining returns the number of boxes still to place.
func (l *Level) Remaining() int { return l.target.Sum() - l.placed.Sum() }

// ToggleView switches between the 2D and 3D views (spacebar).
func (l *Level) ToggleView() {
	l.mode3D = !l.mode3D
	camera := l.tree.Root().MustGetNode(NodeCamera)
	_ = camera.Props().Set("mode_3d", l.mode3D)
}

// RotateLeft turns the 3D view a quarter-turn counter-clockwise
// (Q); RotateRight clockwise (E). Rotation also applies in 2D mode
// so the student can pre-orient, matching the game.
func (l *Level) RotateLeft()  { l.setRotation(l.rotation.Left()) }
func (l *Level) RotateRight() { l.setRotation(l.rotation.Right()) }

func (l *Level) setRotation(r render.Rotation) {
	l.rotation = r
	camera := l.tree.Root().MustGetNode(NodeCamera)
	_ = camera.Props().Set("rotation_steps", int(r.Normalize()))
}

// ColorsOn reports whether pallets are currently colored, read from
// the controller's exported toggle.
func (l *Level) ColorsOn() bool {
	controller := l.tree.Root().MustGetNode(NodeController)
	return controller.Props().GetBool("pallets_are_colored", false)
}

// ToggleColors clicks the toggle-pallet-color button.
func (l *Level) ToggleColors() error {
	controller := l.tree.Root().MustGetNode(NodeController)
	return ChangePalletColor(controller)
}

// labelFor returns the axis label for index i, read back from the
// scene's Y axis.
func (l *Level) labelFor(i int) string {
	yAxis := l.tree.Root().MustGetNode(NodeYAxis)
	texts := AxisLabelTexts(yAxis)
	if i >= 0 && i < len(texts) && texts[i] != "" {
		return texts[i]
	}
	return fmt.Sprintf("#%d", i)
}

// sceneColorMatrix reconstructs the color matrix from the pallets'
// current material_override properties: what the scene is actually
// showing, not what the module file says.
func (l *Level) sceneColorMatrix() *matrix.Dense {
	pallets := l.tree.Root().MustGetNode(NodePallets)
	colors := matrix.NewSquare(l.n)
	for idx, pallet := range pallets.Children() {
		material := pallet.MustChild(0).Props().GetString("material_override", MaterialDefault)
		colors.Set(idx/l.n, idx%l.n, CodeForMaterial(material))
	}
	return colors
}

// Render draws the level's current view. The 2D view shows
// placed/target per cell; the 3D view stacks placed boxes on the
// warehouse floor.
func (l *Level) Render() (*render.Framebuffer, error) {
	labels := AxisLabelTexts(l.tree.Root().MustGetNode(NodeYAxis))
	showColors := l.ColorsOn()
	var colors *matrix.Dense
	if showColors {
		colors = l.sceneColorMatrix()
	}
	title := fmt.Sprintf("%s — %d boxes to place", l.module.Name, l.Remaining())
	if l.Complete() {
		title = fmt.Sprintf("%s — all packets placed!", l.module.Name)
	}
	if l.mode3D {
		return render.Iso3D(l.target, render.Iso3DOptions{
			Labels:     labels,
			Colors:     colors,
			ShowColors: showColors,
			Placed:     l.placed,
			Rotation:   l.rotation,
			Title:      title + "  [3D " + l.rotation.String() + "]",
		})
	}
	return render.Matrix2D(l.target, render.Matrix2DOptions{
		Labels:     labels,
		Colors:     colors,
		ShowColors: showColors,
		Placed:     l.placed,
		CursorRow:  l.cursorRow,
		CursorCol:  l.cursorCol,
		HasCursor:  true,
		Title:      title + "  [2D]",
	})
}

// RenderStatic draws a module's matrix without play state: the view
// used by module previews and figure regeneration. showColors paints
// the module's color matrix.
func RenderStatic(m *core.Module, mode3D bool, rotation render.Rotation, showColors bool) (*render.Framebuffer, error) {
	mat, err := m.Matrix()
	if err != nil {
		return nil, err
	}
	var colors *matrix.Dense
	if showColors {
		colors, err = m.Colors()
		if err != nil {
			return nil, err
		}
	}
	if mode3D {
		return render.Iso3D(mat, render.Iso3DOptions{
			Labels:     m.AxisLabels,
			Colors:     colors,
			ShowColors: showColors,
			Rotation:   rotation,
			Title:      m.Name + "  [3D " + rotation.String() + "]",
		})
	}
	return render.Matrix2D(mat, render.Matrix2DOptions{
		Labels:     m.AxisLabels,
		Colors:     colors,
		ShowColors: showColors,
		Title:      m.Name + "  [2D]",
	})
}
