package game

import (
	"strings"
	"testing"
)

func TestKeyActionMapping(t *testing.T) {
	cases := map[rune]Action{
		'w': ActionUp, 'W': ActionUp, 'k': ActionUp,
		's': ActionDown, 'a': ActionLeft, 'd': ActionRight,
		' ': ActionToggleView,
		'q': ActionRotateLeft, 'e': ActionRotateRight,
		'c': ActionToggleColors,
		'p': ActionPlaceBox, '\n': ActionPlaceBox,
		'x': ActionRemoveBox,
		'1': ActionAnswer1, '2': ActionAnswer2, '3': ActionAnswer3,
		'n': ActionNext, 'f': ActionFillAll, 'z': ActionQuit,
	}
	for r, want := range cases {
		got, ok := KeyAction(r)
		if !ok || got != want {
			t.Errorf("KeyAction(%q) = %v,%v, want %v", r, got, ok, want)
		}
	}
	if _, ok := KeyAction('~'); ok {
		t.Error("unmapped rune accepted")
	}
}

func TestParseAction(t *testing.T) {
	a, err := ParseAction("place")
	if err != nil || a != ActionPlaceBox {
		t.Errorf("ParseAction(place) = %v, %v", a, err)
	}
	a, err = ParseAction("Q")
	if err != nil || a != ActionRotateLeft {
		t.Errorf("single-key parse = %v, %v", a, err)
	}
	if _, err := ParseAction("jump"); err == nil {
		t.Error("unknown word accepted")
	}
}

func TestActionStringRoundTrip(t *testing.T) {
	for a := ActionNone; a <= ActionQuit; a++ {
		back, err := ParseAction(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v → %q → %v (%v)", a, a.String(), back, err)
		}
	}
	if Action(99).String() != "action(99)" {
		t.Error("unknown action String")
	}
}

func TestScriptSource(t *testing.T) {
	src, err := NewScriptSource("up down  place\nview")
	if err != nil {
		t.Fatal(err)
	}
	var got []Action
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	want := []Action{ActionUp, ActionDown, ActionPlaceBox, ActionToggleView}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("action %d = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := NewScriptSource("up bogus"); err == nil {
		t.Error("bad script accepted")
	}
}

func TestReaderSource(t *testing.T) {
	src := NewReaderSource(strings.NewReader("w?x"))
	a, ok := src.Next()
	if !ok || a != ActionUp {
		t.Errorf("first = %v", a)
	}
	// '?' is unmapped and skipped.
	a, ok = src.Next()
	if !ok || a != ActionRemoveBox {
		t.Errorf("second = %v", a)
	}
	if _, ok := src.Next(); ok {
		t.Error("EOF not signalled")
	}
}

func TestBannerNonEmpty(t *testing.T) {
	if !strings.Contains(Banner(), "TRAFFIC WAREHOUSE") {
		t.Error("banner missing title")
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhasePlaying: "playing", PhaseQuestion: "question",
		PhaseModuleDone: "module done", PhaseLessonDone: "lesson done",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
