package game

import (
	"testing"

	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/voxel"
)

// extendedModule returns a module using the full extended palette.
func extendedModule() *core.Module {
	return &core.Module{
		Name:           "Extended Palette",
		Size:           "3x3",
		Author:         "T",
		ExtendedColors: true,
		AxisLabels:     []string{"A", "B", "C"},
		TrafficMatrix: [][]int{
			{1, 1, 1},
			{1, 1, 1},
			{1, 1, 1},
		},
		TrafficMatrixColors: [][]int{
			{0, 1, 2},
			{3, 4, 5},
			{0, 0, 0},
		},
		HasQuestion: false,
	}
}

// TestExtendedColorsReachTheScene: the controller's material swap
// must paint green/yellow/purple pallets for codes 3–5.
func TestExtendedColorsReachTheScene(t *testing.T) {
	level, err := NewLevel(extendedModule())
	if err != nil {
		t.Fatal(err)
	}
	if err := level.ToggleColors(); err != nil {
		t.Fatal(err)
	}
	colors := level.sceneColorMatrix()
	wants := map[[2]int]int{
		{1, 0}: 3, {1, 1}: 4, {1, 2}: 5,
	}
	for pos, want := range wants {
		if got := colors.At(pos[0], pos[1]); got != want {
			t.Errorf("scene color at %v = %d, want %d", pos, got, want)
		}
	}
}

// TestExtendedColorsRender: the 2D view paints distinct backgrounds
// for all six codes.
func TestExtendedColorsRender(t *testing.T) {
	fb, err := RenderStatic(extendedModule(), false, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	palette := voxel.DefaultPalette()
	found := map[uint8]bool{}
	w, h := fb.Size()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := fb.At(x, y)
			if !c.HasBG {
				continue
			}
			for _, paint := range []uint8{voxel.PaintGreen, voxel.PaintYellow, voxel.PaintPurple} {
				if c.BG == palette[paint] {
					found[paint] = true
				}
			}
		}
	}
	for _, paint := range []uint8{voxel.PaintGreen, voxel.PaintYellow, voxel.PaintPurple} {
		if !found[paint] {
			t.Errorf("extended paint %d missing from 2D render", paint)
		}
	}
}

// TestBlackFallbackStillBlack: a bad code on an extended module
// renders black in the scene read-back and the 2D view, not a real
// color.
func TestBlackFallbackStillBlack(t *testing.T) {
	m := extendedModule()
	m.TrafficMatrixColors[2][2] = 77
	level, err := NewLevel(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := level.ToggleColors(); err != nil {
		t.Fatal(err)
	}
	if got := level.sceneColorMatrix().At(2, 2); got != CodeBlack {
		t.Errorf("bad code read back as %d, want CodeBlack", got)
	}
	fb, err := level.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Find the (2,2) cell background: it must be the black paint.
	palette := voxel.DefaultPalette()
	foundBlack := false
	w, h := fb.Size()
	for y := 0; y < h && !foundBlack; y++ {
		for x := 0; x < w; x++ {
			if c := fb.At(x, y); c.HasBG && c.BG == palette[voxel.PaintBlack] {
				foundBlack = true
				break
			}
		}
	}
	if !foundBlack {
		t.Error("black fallback background missing from render")
	}
}

// TestExtendedIso3D: the 3D view accepts extended codes through the
// voxel material mapping.
func TestExtendedIso3D(t *testing.T) {
	m := extendedModule()
	mat, err := m.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	colors, err := m.Colors()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := render.Iso3D(mat, render.Iso3DOptions{Colors: colors, ShowColors: true})
	if err != nil {
		t.Fatal(err)
	}
	palette := voxel.DefaultPalette()
	foundGreen := false
	w, h := fb.Size()
	for y := 0; y < h && !foundGreen; y++ {
		for x := 0; x < w; x++ {
			if c := fb.At(x, y); c.HasBG && c.BG == palette[voxel.PaintGreen] {
				foundGreen = true
				break
			}
		}
	}
	if !foundGreen {
		t.Error("green pallet missing from 3D render")
	}
}
