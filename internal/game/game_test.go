package game

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/render"
)

func newTrainingGame(t *testing.T) *Game {
	t.Helper()
	g, err := New(TrainingLesson(), "tester", rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildLevelSceneShape(t *testing.T) {
	module := TrainingModule()
	root, err := BuildLevelScene(module)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := module.Dim()
	for _, name := range []string{NodeData, NodeController, NodeXAxis, NodeYAxis, NodePallets, NodeBoxes, NodeCamera, NodeUI} {
		if _, err := root.GetNode(name); err != nil {
			t.Errorf("scene missing %s: %v", name, err)
		}
	}
	pallets := root.MustGetNode(NodePallets)
	if pallets.ChildCount() != n*n {
		t.Errorf("pallet count = %d, want %d", pallets.ChildCount(), n*n)
	}
	xAxis := root.MustGetNode(NodeXAxis)
	if xAxis.ChildCount() != n {
		t.Errorf("X axis children = %d, want %d", xAxis.ChildCount(), n)
	}
	// Each label node: child 0 plinth, child 1 Label3D (the paper
	// indexes get_child(1)).
	label := xAxis.MustChild(0)
	if label.MustChild(1).Kind() != "Label3D" {
		t.Error("label child 1 is not the Label3D")
	}
}

func TestBuildLevelSceneRejectsInvalid(t *testing.T) {
	bad := TrainingModule()
	bad.AxisLabels = bad.AxisLabels[:2]
	if _, err := BuildLevelScene(bad); err == nil {
		t.Error("invalid module accepted")
	}
}

func TestControllerReadySetsLabels(t *testing.T) {
	module := TrainingModule()
	level, err := NewLevel(module)
	if err != nil {
		t.Fatal(err)
	}
	for _, axis := range []string{NodeXAxis, NodeYAxis} {
		texts := AxisLabelTexts(level.Scene().Root().MustGetNode(axis))
		for i, want := range module.AxisLabels {
			if texts[i] != want {
				t.Errorf("%s label %d = %q, want %q", axis, i, texts[i], want)
			}
		}
	}
}

func TestMaterialCodeRoundTrip(t *testing.T) {
	for code := 0; code <= 2; code++ {
		if got := CodeForMaterial(MaterialForCode(code)); got != code {
			t.Errorf("material round trip %d → %d", code, got)
		}
	}
	if MaterialForCode(9) != MaterialBlack {
		t.Error("unknown code did not map to black")
	}
	if CodeForMaterial(MaterialDefault) != -1 {
		t.Error("default material should map to -1")
	}
}

func TestChangePalletColorToggles(t *testing.T) {
	module := TrainingModule()
	level, err := NewLevel(module)
	if err != nil {
		t.Fatal(err)
	}
	if level.ColorsOn() {
		t.Fatal("colors start on")
	}
	if err := level.ToggleColors(); err != nil {
		t.Fatal(err)
	}
	if !level.ColorsOn() {
		t.Fatal("toggle did not enable colors")
	}
	n, _ := module.Dim()
	colors := level.sceneColorMatrix()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if colors.At(i, j) != module.TrafficMatrixColors[i][j] {
				t.Fatalf("scene color (%d,%d) = %d, want %d", i, j, colors.At(i, j), module.TrafficMatrixColors[i][j])
			}
		}
	}
	if err := level.ToggleColors(); err != nil {
		t.Fatal(err)
	}
	if level.ColorsOn() {
		t.Error("second toggle did not disable colors")
	}
}

func TestPlaceRemoveBox(t *testing.T) {
	level, err := NewLevel(TrainingModule())
	if err != nil {
		t.Fatal(err)
	}
	// Cursor starts at (0,0): training matrix has 1 packet there.
	if err := level.PlaceBox(); err != nil {
		t.Fatal(err)
	}
	if level.Placed().At(0, 0) != 1 {
		t.Error("box not placed")
	}
	// The box exists as a scene node.
	boxes := level.Scene().Root().MustGetNode(NodeBoxes)
	if boxes.ChildCount() != 1 {
		t.Errorf("boxes node has %d children", boxes.ChildCount())
	}
	// The manifest caps placement.
	if err := level.PlaceBox(); err == nil {
		t.Error("overfill accepted")
	}
	if err := level.RemoveBox(); err != nil {
		t.Fatal(err)
	}
	if level.Placed().At(0, 0) != 0 || boxes.ChildCount() != 0 {
		t.Error("remove incomplete")
	}
	if err := level.RemoveBox(); err == nil {
		t.Error("remove from empty accepted")
	}
}

func TestPlaceBoxOnZeroCell(t *testing.T) {
	level, err := NewLevel(TrainingModule())
	if err != nil {
		t.Fatal(err)
	}
	level.MoveCursor(0, 1) // (0,1) is 0 in the training matrix
	if err := level.PlaceBox(); err == nil {
		t.Error("placing on a zero cell accepted")
	}
}

func TestCursorClamping(t *testing.T) {
	level, err := NewLevel(TrainingModule())
	if err != nil {
		t.Fatal(err)
	}
	level.MoveCursor(-5, -5)
	if r, c := level.Cursor(); r != 0 || c != 0 {
		t.Errorf("cursor = %d,%d", r, c)
	}
	level.MoveCursor(100, 100)
	n := level.Size()
	if r, c := level.Cursor(); r != n-1 || c != n-1 {
		t.Errorf("cursor = %d,%d", r, c)
	}
}

func TestFillAllCompletes(t *testing.T) {
	level, err := NewLevel(TrainingModule())
	if err != nil {
		t.Fatal(err)
	}
	if level.Complete() {
		t.Fatal("level complete at start")
	}
	level.FillAll()
	if !level.Complete() || level.Remaining() != 0 {
		t.Error("FillAll did not complete")
	}
	if !level.Placed().Equal(level.Target()) {
		t.Error("placed != target after fill")
	}
}

func TestViewTogglesAndRotation(t *testing.T) {
	level, err := NewLevel(TrainingModule())
	if err != nil {
		t.Fatal(err)
	}
	level.ToggleView()
	if !level.Mode3D() {
		t.Error("toggle to 3D failed")
	}
	cam := level.Scene().Root().MustGetNode(NodeCamera)
	if !cam.Props().GetBool("mode_3d", false) {
		t.Error("camera prop not updated")
	}
	level.RotateRight()
	if level.Rotation() != render.Rotation(1) {
		t.Error("rotate right failed")
	}
	level.RotateLeft()
	level.RotateLeft()
	if level.Rotation() != render.Rotation(3) {
		t.Errorf("rotation = %v", level.Rotation())
	}
	if cam.Props().GetInt("rotation_steps", -1) != 3 {
		t.Error("camera rotation prop not updated")
	}
}

func TestLevelRenderShowsProgress(t *testing.T) {
	level, err := NewLevel(TrainingModule())
	if err != nil {
		t.Fatal(err)
	}
	_ = level.PlaceBox()
	fb, err := level.Render()
	if err != nil {
		t.Fatal(err)
	}
	text := fb.Text()
	if !strings.Contains(text, "1/1") {
		t.Errorf("2D progress missing:\n%s", text)
	}
	level.ToggleView()
	fb3, err := level.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb3.Text(), "[]") {
		t.Error("3D view missing the placed box")
	}
}

func TestGameFlowCompleteLesson(t *testing.T) {
	g := newTrainingGame(t)
	if g.Phase() != PhasePlaying {
		t.Fatal("not playing at start")
	}
	// Walk all training steps.
	for i := 0; i < len(TrainingSteps)-1; i++ {
		g.Update(ActionNext)
	}
	// Not complete yet: Next complains.
	msg := g.Update(ActionNext)
	if !strings.Contains(msg, "still to place") {
		t.Errorf("incomplete Next message = %q", msg)
	}
	g.Update(ActionFillAll)
	g.Update(ActionNext)
	if g.Phase() != PhaseQuestion {
		t.Fatalf("phase = %v, want question", g.Phase())
	}
	q, ok := g.Question()
	if !ok {
		t.Fatal("no question presented")
	}
	answers := []Action{ActionAnswer1, ActionAnswer2, ActionAnswer3}
	msg = g.Update(answers[q.CorrectOption])
	if !strings.Contains(msg, "correct") {
		t.Errorf("answer feedback = %q", msg)
	}
	if g.Phase() != PhaseModuleDone {
		t.Fatalf("phase = %v", g.Phase())
	}
	g.Update(ActionNext)
	if g.Phase() != PhaseLessonDone || !g.Done() {
		t.Error("lesson did not finish")
	}
	if g.Session().Score() != 1.0 {
		t.Errorf("score = %f", g.Session().Score())
	}
}

func TestGameWrongAnswerRecorded(t *testing.T) {
	g := newTrainingGame(t)
	g.Update(ActionFillAll)
	for g.Phase() == PhasePlaying {
		g.Update(ActionNext)
	}
	q, _ := g.Question()
	wrong := (q.CorrectOption + 1) % len(q.Options)
	msg := g.Update([]Action{ActionAnswer1, ActionAnswer2, ActionAnswer3}[wrong])
	if !strings.Contains(msg, "not quite") {
		t.Errorf("wrong-answer feedback = %q", msg)
	}
	if g.Session().CorrectCount() != 0 || g.Session().Answered() != 1 {
		t.Error("session not updated")
	}
}

func TestGameQuit(t *testing.T) {
	g := newTrainingGame(t)
	g.Update(ActionQuit)
	if !g.Done() || !g.Quit() {
		t.Error("quit ignored")
	}
}

func TestGameViewOverlays(t *testing.T) {
	g := newTrainingGame(t)
	view := g.View()
	if !strings.Contains(view, "[training 1/") {
		t.Errorf("training overlay missing:\n%s", view)
	}
	g.Update(ActionFillAll)
	for g.Phase() == PhasePlaying {
		g.Update(ActionNext)
	}
	view = g.View()
	if !strings.Contains(view, "How many packets did ADV1 send to SRV1?") {
		t.Errorf("question overlay missing:\n%s", view)
	}
	if !strings.Contains(view, "1)") || !strings.Contains(view, "3)") {
		t.Error("options not numbered")
	}
}

func TestGamePlayScripted(t *testing.T) {
	g := newTrainingGame(t)
	src, err := NewScriptSource("colors view rotr rotl fill next next next next next next next")
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	g.Play(src, func(string) { frames++ })
	// Script ends at the question (no answer given).
	if g.Phase() != PhaseQuestion {
		t.Errorf("phase after script = %v", g.Phase())
	}
	if frames == 0 {
		t.Error("no frames rendered")
	}
}

func TestGameMultiModuleLesson(t *testing.T) {
	lesson := &core.Lesson{Name: "two", Modules: []*core.Module{
		core.MustTemplate(6),
		core.MustTemplate(10),
	}}
	g, err := New(lesson, "s", rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for module := 0; module < 2; module++ {
		g.Update(ActionFillAll)
		for g.Phase() == PhasePlaying {
			g.Update(ActionNext)
		}
		if q, ok := g.Question(); ok {
			g.Update([]Action{ActionAnswer1, ActionAnswer2, ActionAnswer3}[q.CorrectOption])
		}
		g.Update(ActionNext)
	}
	if !g.Done() {
		t.Error("two-module lesson did not finish")
	}
	if g.Session().Answered() != 2 || g.Session().Score() != 1.0 {
		t.Errorf("session: %d answered, score %f", g.Session().Answered(), g.Session().Score())
	}
}

func TestGameRejectsEmptyAndInvalidLessons(t *testing.T) {
	if _, err := New(&core.Lesson{Name: "empty"}, "s", nil); err == nil {
		t.Error("empty lesson accepted")
	}
	bad := core.MustTemplate(6)
	bad.Name = ""
	if _, err := New(&core.Lesson{Name: "bad", Modules: []*core.Module{bad}}, "s", nil); err == nil {
		t.Error("invalid lesson accepted")
	}
}

func TestUIQuestionVisibility(t *testing.T) {
	g := newTrainingGame(t)
	ui := g.Level().Scene().Root().MustGetNode(NodeUI)
	if ui.Props().GetBool("question_visible", true) {
		t.Error("question visible at start")
	}
	g.Update(ActionFillAll)
	for g.Phase() == PhasePlaying {
		g.Update(ActionNext)
	}
	if !ui.Props().GetBool("question_visible", false) {
		t.Error("question not visible during question phase")
	}
	q, _ := g.Question()
	g.Update([]Action{ActionAnswer1, ActionAnswer2, ActionAnswer3}[q.CorrectOption])
	if ui.Props().GetBool("question_visible", true) {
		t.Error("question still visible after answering")
	}
}

func TestRenderStaticBothViews(t *testing.T) {
	m := TrainingModule()
	fb2, err := RenderStatic(m, false, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb2.Text(), "SRV1") {
		t.Error("2D static missing labels")
	}
	fb3, err := RenderStatic(m, true, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fb3.Text(), "[]") {
		t.Error("3D static missing boxes")
	}
}

func TestTrainingModuleValid(t *testing.T) {
	m := TrainingModule()
	if issues := m.Validate(); !issues.OK() {
		t.Errorf("training module invalid:\n%s", issues.Errs())
	}
	// The stated answer must match the matrix: ADV1 (row 4) →
	// SRV1 (col 2) is 3 packets, answers[2] = "3".
	if m.TrafficMatrix[4][2] != 3 || m.Answers[m.CorrectAnswerElement] != "3" {
		t.Error("training question inconsistent with matrix")
	}
}

func TestScenePalletAt(t *testing.T) {
	module := TrainingModule()
	root, err := BuildLevelScene(module)
	if err != nil {
		t.Fatal(err)
	}
	engine.NewSceneTree(root).Start()
	n, _ := module.Dim()
	p, err := PalletAt(root, n, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Pallet_2_3" {
		t.Errorf("PalletAt = %s", p.Name())
	}
}
