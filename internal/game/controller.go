package game

import (
	"fmt"

	"repro/internal/engine"
)

// PalletLabelController is the Go port of the paper's "Pallet and
// label controller" GDScript, attached to the controller node of
// every level. The original's structure is preserved:
//
//	@export var y_axis / x_axis / pallets : Node3D
//	@export var pallets_are_colored : bool = false
//	@onready var level_data = $"../Data"
//	@onready var pallet_array = pallets.get_children()
//	func _ready(): flatten colors; set_labels()
//	func set_labels(): assign axis label texts with mismatch checks
//	func change_pallet_color(): toggle default/colored materials
type PalletLabelController struct{}

// Keys under which the controller stores its @onready state in the
// node's Data map.
const (
	keyLevelData        = "level_data"
	keyPalletArray      = "pallet_array"
	keyPalletColorArray = "pallet_color_array"
	keyLastError        = "last_error"
)

// Ready is _ready: resolve @onready references, flatten the color
// matrix, and set the axis labels.
func (PalletLabelController) Ready(n *engine.Node) {
	levelData, err := n.GetNode("../Data")
	if err != nil {
		n.Data[keyLastError] = fmt.Sprintf("cannot resolve ../Data: %v", err)
		return
	}
	n.Data[keyLevelData] = levelData

	pallets := n.Props().GetNode("pallets")
	if pallets == nil {
		n.Data[keyLastError] = "export variable 'pallets' not assigned"
		return
	}
	n.Data[keyPalletArray] = pallets.Children()

	// for array in level_data.data["traffic_matrix_colors"]:
	//     pallet_color_array += array
	var flat []int
	if colors, ok := levelData.Data["traffic_matrix_colors"].([][]int); ok {
		for _, row := range colors {
			flat = append(flat, row...)
		}
	}
	n.Data[keyPalletColorArray] = flat

	if err := SetLabels(n); err != nil {
		n.Data[keyLastError] = err.Error()
	}
}

// Process implements Behavior; the controller is event-driven and
// does nothing per frame.
func (PalletLabelController) Process(*engine.Node, float64) {}

// SetLabels is set_labels: copy the module's axis label list onto
// both axes' Label3D children. The two mismatch checks mirror the
// original's printerr branches and surface as errors.
func SetLabels(n *engine.Node) error {
	yAxis := n.Props().GetNode("y_axis")
	xAxis := n.Props().GetNode("x_axis")
	levelData, _ := n.Data[keyLevelData].(*engine.Node)
	if yAxis == nil || xAxis == nil || levelData == nil {
		return fmt.Errorf("game: set_labels: axis or data references unresolved")
	}
	yLabels := yAxis.Children()
	xLabels := xAxis.Children()
	axisLabels, _ := levelData.Data["axis_labels"].([]string)
	switch {
	case len(yLabels) != len(xLabels):
		// printerr("Number of y labels does not match number of x labels!")
		return fmt.Errorf("game: number of y labels does not match number of x labels")
	case len(axisLabels) != len(yLabels):
		// printerr("Level data does not match number of labels!")
		return fmt.Errorf("game: level data does not match number of labels")
	}
	c := 0
	for _, label := range axisLabels {
		if err := yLabels[c].MustChild(1).Props().Set("text", label); err != nil {
			return err
		}
		if err := xLabels[c].MustChild(1).Props().Set("text", label); err != nil {
			return err
		}
		c++
	}
	return nil
}

// ChangePalletColor is change_pallet_color: called whenever the
// toggle-pallet-color button is clicked. When the pallets are
// colored it resets every pallet mesh to the default material;
// otherwise it assigns each pallet the material matching its color
// code, with the black fallback for unknown codes.
func ChangePalletColor(n *engine.Node) error {
	colored := n.Props().GetBool("pallets_are_colored", false)
	palletArray, _ := n.Data[keyPalletArray].([]*engine.Node)
	colorArray, _ := n.Data[keyPalletColorArray].([]int)
	if palletArray == nil {
		return fmt.Errorf("game: change_pallet_color: controller not ready")
	}
	if len(colorArray) != len(palletArray) {
		return fmt.Errorf("game: change_pallet_color: %d colors for %d pallets", len(colorArray), len(palletArray))
	}
	if colored {
		// "Palets are colored! Making them default"
		c := 0
		for range colorArray {
			mesh := palletArray[c].MustChild(0)
			if err := mesh.Props().Set("material_override", MaterialDefault); err != nil {
				return err
			}
			c++
		}
		return n.Props().Set("pallets_are_colored", false)
	}
	// "Palets are default! Making them colored"
	c := 0
	for _, color := range colorArray {
		mesh := palletArray[c].MustChild(0)
		if err := mesh.Props().Set("material_override", MaterialForCode(color)); err != nil {
			return err
		}
		c++
	}
	return n.Props().Set("pallets_are_colored", true)
}
