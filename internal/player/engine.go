package player

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/modules"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/quiz"
)

// Engine defaults.
const (
	// DefaultCourseSpec enrolls new players without an explicit
	// course in the paper's flagship scenario.
	DefaultCourseSpec = "ddos"
	// DefaultCourseWindow is the campaign aggregation window for
	// default enrollments (seconds).
	DefaultCourseWindow = 15
	// maxHosts bounds the scenario network a player request may ask
	// for — far below the api layer's general limit, because player
	// renders are interactive teaching content, not bulk generation.
	maxHosts = 512
	// maxPendingAttempts bounds the in-flight (started, unsubmitted)
	// attempts kept per player; the oldest is dropped beyond it.
	maxPendingAttempts = 16
	// engineStripes is the per-player lock stripe count.
	engineStripes = 64
	// courseMemoCap bounds the rendered-course memo; the memo is
	// flushed wholesale when full (refs are few in practice — the
	// cap is a safety valve, not a working set).
	courseMemoCap = 32
)

// ModuleRef names the deterministic learning module a quiz attempt is
// rendered from: exactly one of Spec (scenario aggregate via the
// bridge) or Pattern (paper-figure panel) must be set.
type ModuleRef struct {
	// Spec is a netsim scenario name or composition expression.
	Spec string `json:"spec,omitempty"`
	// Pattern is a paper-figure pattern ID.
	Pattern string `json:"pattern,omitempty"`
	// Hosts sizes the scenario network for the Spec path.
	Hosts int `json:"hosts,omitempty"`
	// Seed drives the deterministic generation for the Spec path.
	Seed int64 `json:"seed,omitempty"`
}

// ProgressView is the course-progress summary: unit names in authored
// course order, so the same store state always renders the same view.
type ProgressView struct {
	Player    string   `json:"player"`
	Course    string   `json:"course"`
	Completed []string `json:"completed"`
	Available []string `json:"available"`
	Locked    []string `json:"locked"`
	Done      bool     `json:"done"`
}

// View is the account summary returned by Create and Get.
type View struct {
	ID       string       `json:"id"`
	Name     string       `json:"name"`
	Course   CourseRef    `json:"course"`
	Answered int          `json:"answered"`
	Correct  int          `json:"correct"`
	Score    float64      `json:"score"`
	Progress ProgressView `json:"progress"`
}

// Attempt is a started quiz attempt: the presented question with its
// options in display order.
type Attempt struct {
	Player  string   `json:"player"`
	Attempt int64    `json:"attempt"`
	Module  string   `json:"module"`
	Prompt  string   `json:"prompt"`
	Options []string `json:"options"`
}

// Submission is the graded outcome of an attempt.
type Submission struct {
	Player      string  `json:"player"`
	Attempt     int64   `json:"attempt"`
	Correct     bool    `json:"correct"`
	CorrectText string  `json:"correct_text"`
	Answered    int     `json:"answered"`
	CorrectN    int     `json:"correct_n"`
	Score       float64 `json:"score"`
}

// MasteryItem is one question's cohort statistics across every
// player's history, hardest first.
type MasteryItem struct {
	Prompt     string         `json:"prompt"`
	Attempts   int            `json:"attempts"`
	Correct    int            `json:"correct"`
	Difficulty float64        `json:"difficulty"`
	Distractor map[string]int `json:"distractors,omitempty"`
}

// pendingAttempt is a started, unsubmitted quiz attempt.
type pendingAttempt struct {
	presented quiz.Presented
	module    string
}

// playerAttempts tracks one player's attempt counter and in-flight
// attempts. nextID is monotonically increasing within a process and
// re-seeded from the persisted history length after a restart, so IDs
// never collide with already-recorded attempts.
type playerAttempts struct {
	nextID  int64
	pending map[int64]pendingAttempt
}

// Engine implements the player layer's behaviour on a Store. All
// methods are safe for concurrent use; operations touching one
// player serialize on a striped lock, so two racing submits for the
// same player can never lose a history update.
type Engine struct {
	store   Store
	limiter *Limiter
	workers int

	locks [engineStripes]sync.Mutex

	attemptMu sync.Mutex
	attempts  map[string]*playerAttempts

	// memo caches rendered courses by canonical CourseRef: rendering
	// replays the whole generation pipeline, and the result is a pure
	// function of the ref. This is the player layer's only cache — it
	// deliberately bypasses the api result cache, because everything
	// else the engine serves is mutable per-player state.
	memoMu sync.Mutex
	memo   map[CourseRef]*course.Course
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithLimiter installs a per-player rate limiter (nil admits all).
func WithLimiter(l *Limiter) EngineOption { return func(e *Engine) { e.limiter = l } }

// WithWorkers sets the worker count for module/course rendering
// (≤ 0 selects all CPUs).
func WithWorkers(n int) EngineOption { return func(e *Engine) { e.workers = n } }

// NewEngine builds an engine over a store.
func NewEngine(store Store, opts ...EngineOption) *Engine {
	e := &Engine{
		store:    store,
		attempts: make(map[string]*playerAttempts),
		memo:     make(map[CourseRef]*course.Course),
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// lock returns the player's stripe lock.
func (e *Engine) lock(id string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &e.locks[h.Sum32()%engineStripes]
}

// admit applies the per-player rate limit.
func (e *Engine) admit(id string) error {
	ok, retry := e.limiter.Allow(id)
	if !ok {
		return &RateLimitError{RetryAfter: retry}
	}
	return nil
}

// resolveSpec resolves a scenario name or composition expression.
func resolveSpec(spec string) (netsim.Scenario, error) {
	spec = strings.TrimSpace(spec)
	if s, ok := netsim.LookupScenario(spec); ok {
		return s, nil
	}
	s, err := netsim.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	return s, nil
}

// normalizeCourse validates and canonicalizes a course ref, applying
// engine defaults for zero fields.
func normalizeCourse(ref CourseRef) (CourseRef, error) {
	if strings.TrimSpace(ref.Spec) == "" {
		ref.Spec = DefaultCourseSpec
	}
	scn, err := resolveSpec(ref.Spec)
	if err != nil {
		return CourseRef{}, err
	}
	ref.Spec = netsim.SpecString(scn)
	if ref.Window == 0 {
		ref.Window = DefaultCourseWindow
	}
	if ref.Window < 0 {
		return CourseRef{}, fmt.Errorf("%w: course window must be positive, got %g", ErrInvalid, ref.Window)
	}
	if ref.Hosts < 0 || ref.Hosts > maxHosts {
		return CourseRef{}, fmt.Errorf("%w: hosts %d out of range [0,%d]", ErrInvalid, ref.Hosts, maxHosts)
	}
	return ref, nil
}

// renderCourse renders (or recalls) the deterministic course for a
// canonical ref.
func (e *Engine) renderCourse(ctx context.Context, ref CourseRef) (*course.Course, error) {
	e.memoMu.Lock()
	if c, ok := e.memo[ref]; ok {
		e.memoMu.Unlock()
		return c, nil
	}
	e.memoMu.Unlock()
	scn, err := resolveSpec(ref.Spec)
	if err != nil {
		return nil, err
	}
	camp, err := bridge.CampaignFromScenarioContext(ctx, scn, netsim.ScaledNetwork(ref.Hosts),
		ref.Seed, e.workers, netsim.Params{}, ref.Window)
	if err != nil {
		return nil, err
	}
	e.memoMu.Lock()
	if len(e.memo) >= courseMemoCap {
		e.memo = make(map[CourseRef]*course.Course)
	}
	e.memo[ref] = camp.Course
	e.memoMu.Unlock()
	return camp.Course, nil
}

// renderModule renders the module a quiz attempt draws from.
func (e *Engine) renderModule(ctx context.Context, ref ModuleRef) (*core.Module, error) {
	hasSpec := strings.TrimSpace(ref.Spec) != ""
	hasPattern := strings.TrimSpace(ref.Pattern) != ""
	if hasSpec == hasPattern {
		return nil, fmt.Errorf("%w: exactly one of spec or pattern must be set", ErrInvalid)
	}
	if hasPattern {
		entry, ok := patterns.Lookup(strings.TrimSpace(ref.Pattern))
		if !ok {
			return nil, fmt.Errorf("%w: unknown pattern %q", ErrInvalid, ref.Pattern)
		}
		return modules.FromEntry(entry)
	}
	if ref.Hosts < 0 || ref.Hosts > maxHosts {
		return nil, fmt.Errorf("%w: hosts %d out of range [0,%d]", ErrInvalid, ref.Hosts, maxHosts)
	}
	scn, err := resolveSpec(ref.Spec)
	if err != nil {
		return nil, err
	}
	return bridge.AggregateModuleContext(ctx, scn, netsim.ScaledNetwork(ref.Hosts),
		ref.Seed, e.workers, netsim.Params{})
}

// replayProgress rebuilds a live Progress from the persisted
// completed-unit snapshot.
func replayProgress(c *course.Course, completed []string) (*course.Progress, error) {
	p := course.NewProgress(c)
	for _, unit := range completed {
		if err := p.Complete(unit); err != nil {
			return nil, fmt.Errorf("player: corrupt progress snapshot: %w", err)
		}
	}
	return p, nil
}

// loadProgress reads the player's snapshot (empty when none yet) and
// replays it over the rendered course.
func (e *Engine) loadProgress(ctx context.Context, rec Record) (*course.Course, *course.Progress, []string, error) {
	c, err := e.renderCourse(ctx, rec.Course)
	if err != nil {
		return nil, nil, nil, err
	}
	completed, err := e.store.Progress(rec.ID)
	if err != nil && err != errNoProgress {
		return nil, nil, nil, err
	}
	p, err := replayProgress(c, completed)
	if err != nil {
		return nil, nil, nil, err
	}
	return c, p, completed, nil
}

// progressView renders the canonical summary: unit names bucketed by
// state in authored course order.
func progressView(id string, c *course.Course, p *course.Progress) ProgressView {
	v := ProgressView{Player: id, Course: c.Name, Completed: []string{}, Available: []string{}, Locked: []string{}}
	for _, u := range c.Units {
		switch {
		case p.Completed(u.Name):
			v.Completed = append(v.Completed, u.Name)
		case p.Unlocked(u.Name):
			v.Available = append(v.Available, u.Name)
		default:
			v.Locked = append(v.Locked, u.Name)
		}
	}
	v.Done = p.Done()
	return v
}

// view assembles the account summary from store state.
func (e *Engine) view(ctx context.Context, rec Record) (View, error) {
	c, p, _, err := e.loadProgress(ctx, rec)
	if err != nil {
		return View{}, err
	}
	history, err := e.store.History(rec.ID)
	if err != nil {
		return View{}, err
	}
	sess := quiz.RestoreSession(rec.ID, history)
	return View{
		ID: rec.ID, Name: rec.Name, Course: rec.Course,
		Answered: sess.Answered(), Correct: sess.CorrectCount(), Score: sess.Score(),
		Progress: progressView(rec.ID, c, p),
	}, nil
}

// Create registers a new player and returns its initial view. A
// zero-valued Course enrolls the default campaign; the spec is
// validated and rendered before anything is stored, so a stored
// player always has a renderable course.
func (e *Engine) Create(ctx context.Context, rec Record) (View, error) {
	if !ValidID(rec.ID) {
		return View{}, fmt.Errorf("%w: bad player id %q (want [a-z0-9][a-z0-9_-]*, ≤%d bytes)", ErrInvalid, rec.ID, MaxIDLength)
	}
	if err := e.admit(rec.ID); err != nil {
		return View{}, err
	}
	ref, err := normalizeCourse(rec.Course)
	if err != nil {
		return View{}, err
	}
	rec.Course = ref
	if strings.TrimSpace(rec.Name) == "" {
		rec.Name = rec.ID
	}
	if _, err := e.renderCourse(ctx, ref); err != nil {
		return View{}, err
	}
	mu := e.lock(rec.ID)
	mu.Lock()
	defer mu.Unlock()
	if err := e.store.Create(rec); err != nil {
		return View{}, err
	}
	return e.view(ctx, rec)
}

// Get returns the player's account summary.
func (e *Engine) Get(ctx context.Context, id string) (View, error) {
	if err := e.admit(id); err != nil {
		return View{}, err
	}
	mu := e.lock(id)
	mu.Lock()
	defer mu.Unlock()
	rec, err := e.store.Get(id)
	if err != nil {
		return View{}, err
	}
	return e.view(ctx, rec)
}

// attemptsFor returns the player's attempt tracker, seeding the
// counter past the persisted history so IDs stay unique across
// restarts.
func (e *Engine) attemptsFor(id string, answered int) *playerAttempts {
	e.attemptMu.Lock()
	defer e.attemptMu.Unlock()
	pa, ok := e.attempts[id]
	if !ok {
		pa = &playerAttempts{nextID: 1, pending: make(map[int64]pendingAttempt)}
		e.attempts[id] = pa
	}
	if next := int64(answered) + 1; pa.nextID < next {
		pa.nextID = next
	}
	return pa
}

// StartAttempt renders the referenced module's question, shuffles its
// answers with a permutation derived deterministically from the
// player, attempt number, and prompt, and returns the presented
// attempt. The attempt stays pending until submitted; at most
// maxPendingAttempts are kept per player (oldest dropped).
func (e *Engine) StartAttempt(ctx context.Context, id string, ref ModuleRef) (Attempt, error) {
	if err := e.admit(id); err != nil {
		return Attempt{}, err
	}
	mu := e.lock(id)
	mu.Lock()
	defer mu.Unlock()
	rec, err := e.store.Get(id)
	if err != nil {
		return Attempt{}, err
	}
	m, err := e.renderModule(ctx, ref)
	if err != nil {
		return Attempt{}, err
	}
	q, ok := m.Quiz()
	if !ok {
		return Attempt{}, fmt.Errorf("%w: module %q has no question", ErrInvalid, m.Name)
	}
	history, err := e.store.History(rec.ID)
	if err != nil {
		return Attempt{}, err
	}
	pa := e.attemptsFor(id, len(history))
	e.attemptMu.Lock()
	attemptID := pa.nextID
	pa.nextID++
	presented := quiz.Shuffle(q, attemptRand(id, attemptID, q.Prompt))
	pa.pending[attemptID] = pendingAttempt{presented: presented, module: m.Name}
	for len(pa.pending) > maxPendingAttempts {
		oldest := int64(-1)
		for k := range pa.pending {
			if oldest < 0 || k < oldest {
				oldest = k
			}
		}
		delete(pa.pending, oldest)
	}
	e.attemptMu.Unlock()
	return Attempt{
		Player: id, Attempt: attemptID, Module: m.Name,
		Prompt: presented.Prompt, Options: append([]string(nil), presented.Options...),
	}, nil
}

// attemptRand seeds the display shuffle from the attempt's identity,
// so the same attempt presents the same option order on any worker.
func attemptRand(id string, attempt int64, prompt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s", id, attempt, prompt)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Submit grades a pending attempt and appends the result to the
// player's persisted history. A submit for an attempt that was never
// started, already submitted, or evicted returns ErrConflict — the
// caller should start a fresh attempt.
func (e *Engine) Submit(ctx context.Context, id string, attemptID int64, answer int) (Submission, error) {
	if err := e.admit(id); err != nil {
		return Submission{}, err
	}
	mu := e.lock(id)
	mu.Lock()
	defer mu.Unlock()
	rec, err := e.store.Get(id)
	if err != nil {
		return Submission{}, err
	}
	e.attemptMu.Lock()
	pa := e.attempts[id]
	var pending pendingAttempt
	ok := false
	if pa != nil {
		pending, ok = pa.pending[attemptID]
	}
	e.attemptMu.Unlock()
	if !ok {
		return Submission{}, fmt.Errorf("%w: attempt %d is not pending for player %q", ErrConflict, attemptID, id)
	}
	if answer < 0 || answer >= len(pending.presented.Options) {
		return Submission{}, fmt.Errorf("%w: answer %d out of range [0,%d)", ErrInvalid, answer, len(pending.presented.Options))
	}
	history, err := e.store.History(rec.ID)
	if err != nil {
		return Submission{}, err
	}
	sess := quiz.RestoreSession(rec.ID, history)
	correct, err := sess.Record(pending.presented, answer)
	if err != nil {
		return Submission{}, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	if err := e.store.PutHistory(rec.ID, sess.Results()); err != nil {
		return Submission{}, err
	}
	e.attemptMu.Lock()
	if pa := e.attempts[id]; pa != nil {
		delete(pa.pending, attemptID)
	}
	e.attemptMu.Unlock()
	return Submission{
		Player: id, Attempt: attemptID, Correct: correct,
		CorrectText: pending.presented.Options[pending.presented.CorrectOption],
		Answered:    sess.Answered(), CorrectN: sess.CorrectCount(), Score: sess.Score(),
	}, nil
}

// Advance marks a course unit completed for the player, enforcing the
// prerequisite gate: an unknown unit is ErrNotFound, a locked one
// ErrConflict, and re-completing a done unit is idempotent.
func (e *Engine) Advance(ctx context.Context, id, unit string) (ProgressView, error) {
	if err := e.admit(id); err != nil {
		return ProgressView{}, err
	}
	mu := e.lock(id)
	mu.Lock()
	defer mu.Unlock()
	rec, err := e.store.Get(id)
	if err != nil {
		return ProgressView{}, err
	}
	c, p, completed, err := e.loadProgress(ctx, rec)
	if err != nil {
		return ProgressView{}, err
	}
	if _, ok := c.Unit(unit); !ok {
		return ProgressView{}, fmt.Errorf("%w: unit %q is not in course %q", ErrNotFound, unit, c.Name)
	}
	if !p.Completed(unit) {
		if !p.Unlocked(unit) {
			return ProgressView{}, fmt.Errorf("%w: unit %q is locked (prerequisites incomplete)", ErrConflict, unit)
		}
		if err := p.Complete(unit); err != nil {
			return ProgressView{}, fmt.Errorf("%w: %w", ErrConflict, err)
		}
		completed = append(completed, unit)
		if err := e.store.PutProgress(rec.ID, c, completed); err != nil {
			return ProgressView{}, err
		}
	}
	return progressView(id, c, p), nil
}

// Progress returns the player's course-progress summary.
func (e *Engine) Progress(ctx context.Context, id string) (ProgressView, error) {
	if err := e.admit(id); err != nil {
		return ProgressView{}, err
	}
	mu := e.lock(id)
	mu.Lock()
	defer mu.Unlock()
	rec, err := e.store.Get(id)
	if err != nil {
		return ProgressView{}, err
	}
	c, p, _, err := e.loadProgress(ctx, rec)
	if err != nil {
		return ProgressView{}, err
	}
	return progressView(id, c, p), nil
}

// Mastery aggregates every player's history into cohort item
// statistics, hardest first — the educator dashboard view. It is not
// rate limited (it is an operator call, not a player one).
func (e *Engine) Mastery(ctx context.Context) ([]MasteryItem, error) {
	ids, err := e.store.Players()
	if err != nil {
		return nil, err
	}
	cohort := quiz.NewCohort()
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		history, err := e.store.History(id)
		if err != nil {
			return nil, err
		}
		cohort.AddSession(quiz.RestoreSession(id, history))
	}
	items := cohort.HardestFirst()
	out := make([]MasteryItem, 0, len(items))
	for _, it := range items {
		mi := MasteryItem{
			Prompt: it.Prompt, Attempts: it.Attempts, Correct: it.Correct,
			Difficulty: it.Difficulty(),
		}
		if len(it.Distractors) > 0 {
			mi.Distractor = make(map[string]int, len(it.Distractors))
			for k, v := range it.Distractors {
				mi.Distractor[k] = v
			}
		}
		out = append(out, mi)
	}
	return out, nil
}
