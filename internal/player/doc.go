// Package player is the multi-tenant account layer behind twserve:
// the subsystem that finally makes the server know who a student is.
// The paper's premise is students playing an interactive game, and the
// seed has carried the student-facing state all along — quiz sessions
// with persistence and cohort statistics, course progress with
// prerequisite gating — but disconnected from the served pipeline.
// This package connects them.
//
// The pieces:
//
//   - Store: the persistence interface for player records, quiz
//     attempt history, and course-progress snapshots. Two backends
//     ship behind it: a lock-striped in-memory store (MemStore) and a
//     directory-backed store (DirStore) that persists each player as
//     a small set of JSON files — attempt history through the
//     existing quiz.Save/LoadSession format, course state through the
//     course manifest JSON round-trip — every write crash-safe via
//     write-temp-then-rename. Both are safe for concurrent use and
//     share last-write-wins whole-record semantics.
//
//   - Limiter: a per-player token-bucket rate limiter whose bucket
//     table is itself an LRU — idle players' buckets are evicted, so
//     a million transient users cannot grow the limiter without
//     bound. One client exceeding its budget gets a RateLimitError
//     (HTTP 429 with Retry-After) without affecting anyone else.
//
//   - Engine: the behaviour on top — create/look up players, start
//     and submit quiz attempts rendered from internal/bridge learning
//     modules (answers shuffled per attempt with a deterministic
//     permutation, graded against the authored answer), advance and
//     summarize course progress with prerequisite gating, and
//     aggregate cohort mastery statistics via quiz.Cohort. Per-player
//     operations serialize on a striped lock, so concurrent attempts
//     from one player never lose history updates.
//
// Determinism matters here the same way it does in the generation
// engine: every response is a pure function of the store state and
// the request sequence (no timestamps, no global RNG), which is what
// lets the sharded -workers fleet and the PR 9 cluster proxy serve
// player traffic bit-identically to a single process. Player state
// deliberately bypasses the api result cache — it is mutable
// per-user state, the opposite of the cache's immutable
// spec-determined results; only the module/course *rendering* inside
// an attempt is derived from deterministic specs (and memoized).
package player
