package player

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors for the player layer. Every error leaving the
// package wraps one of these, and every wrapped message BEGINS with
// the sentinel's text — the same prefix discipline the api package
// follows — so the serve layer can map them to HTTP statuses and the
// cluster proxy can splice identical errors back together from a
// status and body on the far side of the wire.
var (
	// ErrInvalid marks a malformed request (bad ID, unknown spec,
	// out-of-range answer): HTTP 400.
	ErrInvalid = errors.New("player: invalid request")
	// ErrNotFound marks a reference to a player or unit that does not
	// exist: HTTP 404.
	ErrNotFound = errors.New("player: not found")
	// ErrConflict marks a request that is valid but collides with
	// current state (duplicate create, replayed attempt, locked
	// unit): HTTP 409.
	ErrConflict = errors.New("player: conflict")
	// ErrRateLimited marks a player that has exhausted its request
	// budget: HTTP 429. Errors carrying a retry hint are
	// *RateLimitError values, which wrap this sentinel.
	ErrRateLimited = errors.New("player: rate limited")
)

// RateLimitError is the concrete 429 error: it satisfies
// errors.Is(err, ErrRateLimited) and carries how long the player
// should wait before retrying, which serve surfaces as a Retry-After
// header and the cluster proxy reconstructs from the error envelope.
type RateLimitError struct {
	// RetryAfter is the wait until the token bucket readmits the
	// player.
	RetryAfter time.Duration
}

// Error renders the sentinel-prefixed message. The text is a pure
// function of RetryAfter so a reconstructed proxy-side error prints
// identically to the origin's.
func (e *RateLimitError) Error() string {
	return fmt.Sprintf("%s: retry in %dms", ErrRateLimited.Error(), e.RetryAfter.Milliseconds())
}

// Is makes errors.Is(err, ErrRateLimited) true for RateLimitError
// values.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// MaxIDLength bounds player identifiers.
const MaxIDLength = 64

// ValidID reports whether id is a usable player identifier:
// lowercase letters, digits, '-' and '_', starting with a letter or
// digit, at most MaxIDLength bytes. The alphabet is deliberately
// path-safe — the dir store uses the ID verbatim as a directory name.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLength {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case (c == '-' || c == '_') && i > 0:
		default:
			return false
		}
	}
	return true
}

// CourseRef names the deterministic course a player is enrolled in: a
// scenario spec rendered through the bridge campaign path. The zero
// Window/Hosts/Seed fields take the engine defaults, so the same ref
// always renders the same course on any worker.
type CourseRef struct {
	// Spec is the netsim scenario name or composition expression.
	Spec string `json:"spec"`
	// Window is the campaign aggregation window in seconds.
	Window float64 `json:"window,omitempty"`
	// Hosts sizes the scenario network (0 = the standard layout).
	Hosts int `json:"hosts,omitempty"`
	// Seed drives the deterministic generation.
	Seed int64 `json:"seed,omitempty"`
}

// Record is one player's account row.
type Record struct {
	// ID is the stable identifier (see ValidID).
	ID string `json:"id"`
	// Name is the display name; defaults to the ID.
	Name string `json:"name,omitempty"`
	// Course is the enrolled course.
	Course CourseRef `json:"course"`
}
