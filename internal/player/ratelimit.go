package player

import (
	"container/list"
	"sync"
	"time"
)

// DefaultMaxBuckets bounds the limiter's bucket table when the
// constructor is given no cap.
const DefaultMaxBuckets = 4096

// Limiter is a per-player token-bucket rate limiter. Each player has
// an independent bucket refilling at rps tokens per second up to
// burst, so one player exhausting its budget never slows another —
// the isolation property the multi-tenant layer exists for. The
// bucket table is an LRU capped at maxBuckets: idle players' buckets
// are evicted (eviction can only ever hand tokens back, never debt,
// so it is always safe), which keeps memory bounded however many
// transient players a load test invents.
//
// A nil Limiter, or one built with rps ≤ 0, admits everything.
type Limiter struct {
	rps   float64
	burst float64
	max   int

	mu      sync.Mutex
	buckets map[string]*list.Element
	lru     *list.List // front = most recently used
	// now is the clock; injectable for tests.
	now func() time.Time
}

// bucket is one player's token state.
type bucket struct {
	id     string
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter admitting rps requests per second per
// player with the given burst (values ≤ 0 fall back to 1), keeping at
// most maxBuckets player buckets (≤ 0 selects DefaultMaxBuckets).
// rps ≤ 0 disables limiting entirely.
func NewLimiter(rps, burst float64, maxBuckets int) *Limiter {
	if rps <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	if maxBuckets <= 0 {
		maxBuckets = DefaultMaxBuckets
	}
	return &Limiter{
		rps:     rps,
		burst:   burst,
		max:     maxBuckets,
		buckets: make(map[string]*list.Element),
		lru:     list.New(),
		now:     time.Now,
	}
}

// Allow consumes one token from the player's bucket. When the bucket
// is empty it reports false with the wait until one token refills.
func (l *Limiter) Allow(id string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	var b *bucket
	if el, exists := l.buckets[id]; exists {
		b = el.Value.(*bucket)
		b.tokens += now.Sub(b.last).Seconds() * l.rps
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
		l.lru.MoveToFront(el)
	} else {
		// A brand-new (or evicted-and-returned) player starts with a
		// full bucket.
		b = &bucket{id: id, tokens: l.burst, last: now}
		l.buckets[id] = l.lru.PushFront(b)
		if l.lru.Len() > l.max {
			oldest := l.lru.Back()
			l.lru.Remove(oldest)
			delete(l.buckets, oldest.Value.(*bucket).id)
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return false, wait
}

// Len reports the number of live buckets (for tests).
func (l *Limiter) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lru.Len()
}
