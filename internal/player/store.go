package player

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/course"
	"repro/internal/quiz"
)

// errNoProgress is the store-internal "no snapshot yet" signal: the
// engine falls back to a fresh progress view. It is distinct from
// ErrNotFound (the player itself is missing).
var errNoProgress = errors.New("player: no progress snapshot")

// Store persists player state. Implementations are safe for
// concurrent use; writes are whole-record with last-write-wins
// semantics (the Engine serializes per-player mutation on its own
// striped locks, so races only arise when callers bypass it — and
// even then a record is one writer's value, never an interleaving).
//
// Errors: Create returns ErrConflict when the ID exists; the other
// methods return ErrNotFound for an unknown player; Progress returns
// errNoProgress (unexported) before the first PutProgress, which
// callers inside the package treat as the empty snapshot.
type Store interface {
	// Create inserts a new player record.
	Create(rec Record) error
	// Get returns the player record.
	Get(id string) (Record, error)
	// Players lists every player ID in sorted order.
	Players() ([]string, error)
	// History returns the player's recorded quiz results in answer
	// order.
	History(id string) ([]quiz.Result, error)
	// PutHistory replaces the player's recorded quiz results.
	PutHistory(id string, results []quiz.Result) error
	// Progress returns the names of the course units the player has
	// completed, in completion order.
	Progress(id string) ([]string, error)
	// PutProgress replaces the player's progress snapshot. The
	// rendered course rides along so persistent stores can write a
	// self-describing snapshot (the manifest round-trips through the
	// course JSON format); in-memory stores may ignore it.
	PutProgress(id string, c *course.Course, completed []string) error
}

// memStripes is the MemStore lock-stripe count; player IDs hash
// across stripes so unrelated players never contend.
const memStripes = 16

// MemStore is the in-memory Store: lock-striped by player ID, with
// every slice copied on the way in and out so callers can never
// mutate stored state behind the lock.
type MemStore struct {
	stripes [memStripes]memStripe
}

type memStripe struct {
	mu      sync.RWMutex
	players map[string]*memPlayer
}

type memPlayer struct {
	rec         Record
	history     []quiz.Result
	completed   []string
	hasProgress bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	s := &MemStore{}
	for i := range s.stripes {
		s.stripes[i].players = make(map[string]*memPlayer)
	}
	return s
}

// stripe picks the lock stripe for an ID.
func (s *MemStore) stripe(id string) *memStripe {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.stripes[h.Sum32()%memStripes]
}

// Create inserts a new player record.
func (s *MemStore) Create(rec Record) error {
	st := s.stripe(rec.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.players[rec.ID]; ok {
		return fmt.Errorf("%w: player %q already exists", ErrConflict, rec.ID)
	}
	st.players[rec.ID] = &memPlayer{rec: rec}
	return nil
}

// Get returns the player record.
func (s *MemStore) Get(id string) (Record, error) {
	st := s.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, ok := st.players[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	return p.rec, nil
}

// Players lists every player ID in sorted order.
func (s *MemStore) Players() ([]string, error) {
	var out []string
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for id := range st.players {
			out = append(out, id)
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out, nil
}

// History returns a copy of the player's recorded quiz results.
func (s *MemStore) History(id string) ([]quiz.Result, error) {
	st := s.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, ok := st.players[id]
	if !ok {
		return nil, fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	return append([]quiz.Result(nil), p.history...), nil
}

// PutHistory replaces the player's recorded quiz results.
func (s *MemStore) PutHistory(id string, results []quiz.Result) error {
	st := s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	p, ok := st.players[id]
	if !ok {
		return fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	p.history = append([]quiz.Result(nil), results...)
	return nil
}

// Progress returns the player's completed-unit snapshot.
func (s *MemStore) Progress(id string) ([]string, error) {
	st := s.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, ok := st.players[id]
	if !ok {
		return nil, fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	if !p.hasProgress {
		return nil, errNoProgress
	}
	return append([]string(nil), p.completed...), nil
}

// PutProgress replaces the player's progress snapshot. The in-memory
// store keeps only the completed list — the course is deterministic
// from the player's CourseRef and re-rendered on demand.
func (s *MemStore) PutProgress(id string, _ *course.Course, completed []string) error {
	st := s.stripe(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	p, ok := st.players[id]
	if !ok {
		return fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	p.completed = append([]string(nil), completed...)
	p.hasProgress = true
	return nil
}
