package player

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/course"
	"repro/internal/quiz"
)

// testCourse is a small three-unit course with a prerequisite chain.
func testCourse(t *testing.T) *course.Course {
	t.Helper()
	c := &course.Course{
		Name: "test course",
		Units: []course.Unit{
			{Name: "a", Lessons: []string{"l1"}},
			{Name: "b", Lessons: []string{"l2"}, Requires: []string{"a"}},
			{Name: "c", Lessons: []string{"l3"}, Requires: []string{"b"}},
		},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// eachStore runs a subtest against both Store backends.
func eachStore(t *testing.T, run func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { run(t, NewMemStore()) })
	t.Run("dir", func(t *testing.T) {
		s, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		run(t, s)
	})
}

func TestStoreLifecycle(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		rec := Record{ID: "alice", Name: "Alice", Course: CourseRef{Spec: "ddos", Window: 15}}
		if err := s.Create(rec); err != nil {
			t.Fatal(err)
		}
		if err := s.Create(rec); !errors.Is(err, ErrConflict) {
			t.Fatalf("duplicate create: got %v, want ErrConflict", err)
		}
		got, err := s.Get("alice")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("Get = %+v, want %+v", got, rec)
		}
		if _, err := s.Get("nobody"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(nobody): got %v, want ErrNotFound", err)
		}

		// Fresh player: empty history, no progress snapshot.
		h, err := s.History("alice")
		if err != nil || len(h) != 0 {
			t.Fatalf("fresh history = %v, %v", h, err)
		}
		if _, err := s.Progress("alice"); err != errNoProgress {
			t.Fatalf("fresh progress err = %v, want errNoProgress", err)
		}
		if _, err := s.History("nobody"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("History(nobody): got %v, want ErrNotFound", err)
		}
		if err := s.PutHistory("nobody", nil); !errors.Is(err, ErrNotFound) {
			t.Fatalf("PutHistory(nobody): got %v, want ErrNotFound", err)
		}

		results := []quiz.Result{
			{Prompt: "p1", Selected: "x", CorrectText: "x", Correct: true},
			{Prompt: "p2", Selected: "y", CorrectText: "z", Correct: false},
		}
		if err := s.PutHistory("alice", results); err != nil {
			t.Fatal(err)
		}
		h, err = s.History("alice")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h, results) {
			t.Fatalf("history = %+v, want %+v", h, results)
		}

		c := testCourse(t)
		if err := s.PutProgress("alice", c, []string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
		done, err := s.Progress("alice")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(done, []string{"a", "b"}) {
			t.Fatalf("progress = %v", done)
		}

		if err := s.Create(Record{ID: "bob"}); err != nil {
			t.Fatal(err)
		}
		ids, err := s.Players()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids, []string{"alice", "bob"}) {
			t.Fatalf("Players = %v", ids)
		}
	})
}

// TestStoreLastWriteWins pins whole-record semantics under racing
// writers: the final state equals exactly one writer's value, never an
// interleaving. Run with -race.
func TestStoreLastWriteWins(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.Create(Record{ID: "p"}); err != nil {
			t.Fatal(err)
		}
		c := testCourse(t)
		const writers = 8
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results := []quiz.Result{{
					Prompt: "p", Selected: fmt.Sprintf("writer-%d", w),
					CorrectText: "p", Correct: false,
				}}
				if err := s.PutHistory("p", results); err != nil {
					t.Error(err)
				}
				if err := s.PutProgress("p", c, []string{"a"}); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		h, err := s.History("p")
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != 1 {
			t.Fatalf("history holds %d results, want exactly one writer's record", len(h))
		}
		found := false
		for w := 0; w < writers; w++ {
			if h[0].Selected == fmt.Sprintf("writer-%d", w) {
				found = true
			}
		}
		if !found {
			t.Fatalf("final history %+v is not any writer's value", h[0])
		}
		done, err := s.Progress("p")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(done, []string{"a"}) {
			t.Fatalf("progress = %v", done)
		}
	})
}

// TestStoreCopiesSlices pins that mutating a caller-held slice after
// a Put (or a slice returned by a read) never reaches stored state.
func TestStoreCopiesSlices(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.Create(Record{ID: "p"}); err != nil {
			t.Fatal(err)
		}
		in := []quiz.Result{{Prompt: "p1", Selected: "x", CorrectText: "x", Correct: true}}
		if err := s.PutHistory("p", in); err != nil {
			t.Fatal(err)
		}
		in[0].Selected = "mutated"
		out, err := s.History("p")
		if err != nil {
			t.Fatal(err)
		}
		if out[0].Selected != "x" {
			t.Fatal("PutHistory aliased the caller's slice")
		}
		out[0].Selected = "mutated again"
		again, err := s.History("p")
		if err != nil {
			t.Fatal(err)
		}
		if again[0].Selected != "x" {
			t.Fatal("History handed out aliased storage")
		}
	})
}

func TestDirStoreSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	s, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: "alice", Name: "Alice", Course: CourseRef{Spec: "ddos", Window: 15}}
	if err := s.Create(rec); err != nil {
		t.Fatal(err)
	}
	results := []quiz.Result{{Prompt: "p1", Selected: "x", CorrectText: "x", Correct: true}}
	if err := s.PutHistory("alice", results); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProgress("alice", testCourse(t), []string{"a"}); err != nil {
		t.Fatal(err)
	}

	// A different store over the same root sees everything.
	back, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("reopened record = %+v", got)
	}
	h, err := back.History("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, results) {
		t.Fatalf("reopened history = %+v", h)
	}
	done, err := back.Progress("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done, []string{"a"}) {
		t.Fatalf("reopened progress = %v", done)
	}
}

// TestDirStoreCorruptFiles pins the failure taxonomy: a damaged
// history file surfaces quiz.ErrCorruptSession, a damaged progress
// file course.ErrCorrupt — never a silently empty player.
func TestDirStoreCorruptFiles(t *testing.T) {
	root := t.TempDir()
	s, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Create(Record{ID: "p"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutHistory("p", []quiz.Result{{Prompt: "q", Selected: "a", CorrectText: "a", Correct: true}}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutProgress("p", testCourse(t), []string{"a"}); err != nil {
		t.Fatal(err)
	}

	histPath := filepath.Join(root, "p", "history.json")
	progPath := filepath.Join(root, "p", "progress.json")

	// Truncate the history file mid-document.
	data, err := os.ReadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(histPath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.History("p"); !errors.Is(err, quiz.ErrCorruptSession) {
		t.Fatalf("truncated history: got %v, want ErrCorruptSession", err)
	}

	// Scribble over the progress file.
	if err := os.WriteFile(progPath, []byte(`{"completed":["a"],"course":{"name":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Progress("p"); !errors.Is(err, course.ErrCorrupt) {
		t.Fatalf("corrupt progress: got %v, want course.ErrCorrupt", err)
	}

	// A completed unit the manifest does not contain is corruption too.
	if err := os.WriteFile(progPath, []byte(`{"completed":["ghost"],"course":{"name":"c","units":[{"name":"a","lessons":["l"]}]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Progress("p"); !errors.Is(err, course.ErrCorrupt) {
		t.Fatalf("ghost unit: got %v, want course.ErrCorrupt", err)
	}
}

func TestDirStoreRejectsBadIDs(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "UPPER", "a b", "-lead"} {
		if err := s.Create(Record{ID: id}); !errors.Is(err, ErrInvalid) {
			t.Errorf("Create(%q): got %v, want ErrInvalid", id, err)
		}
		if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q): got %v, want ErrNotFound", id, err)
		}
	}
}
