package player

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a Limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withClock(l *Limiter, c *fakeClock) *Limiter {
	l.now = c.now
	return l
}

func TestLimiterBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	l := withClock(NewLimiter(2, 3, 0), clock) // 2 rps, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("p"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.Allow("p")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v out of range (0, 1s] at 2 rps", retry)
	}

	// Half a second refills one token at 2 rps.
	clock.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("p"); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := l.Allow("p"); ok {
		t.Fatal("second request after a single-token refill admitted")
	}
}

func TestLimiterIsolatesPlayers(t *testing.T) {
	clock := newFakeClock()
	l := withClock(NewLimiter(1, 1, 0), clock)
	if ok, _ := l.Allow("noisy"); !ok {
		t.Fatal("first request denied")
	}
	if ok, _ := l.Allow("noisy"); ok {
		t.Fatal("noisy player not limited")
	}
	// The noisy player's exhaustion must not touch anyone else.
	if ok, _ := l.Allow("quiet"); !ok {
		t.Fatal("unrelated player limited by a noisy neighbour")
	}
}

func TestLimiterEvictsIdleBuckets(t *testing.T) {
	clock := newFakeClock()
	l := withClock(NewLimiter(1, 1, 4), clock)
	for i := 0; i < 10; i++ {
		l.Allow(fmt.Sprintf("p%d", i))
	}
	if n := l.Len(); n != 4 {
		t.Fatalf("limiter holds %d buckets, want the cap of 4", n)
	}
	// p0's bucket was evicted while empty; returning, it starts full —
	// eviction hands tokens back, never debt.
	if ok, _ := l.Allow("p0"); !ok {
		t.Fatal("evicted player denied its fresh burst")
	}
}

func TestLimiterDisabled(t *testing.T) {
	if l := NewLimiter(0, 5, 0); l != nil {
		t.Fatal("rps=0 should disable the limiter")
	}
	var l *Limiter
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("p"); !ok {
			t.Fatal("nil limiter denied a request")
		}
	}
	if l.Len() != 0 {
		t.Fatal("nil limiter reports buckets")
	}
}

func TestRateLimitErrorShape(t *testing.T) {
	err := error(&RateLimitError{RetryAfter: 1500 * time.Millisecond})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("RateLimitError does not match ErrRateLimited")
	}
	want := "player: rate limited: retry in 1500ms"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	// The message is a pure function of RetryAfter: the proxy rebuilds
	// the error from the wire and must print identically.
	rebuilt := &RateLimitError{RetryAfter: 1500 * time.Millisecond}
	if rebuilt.Error() != err.Error() {
		t.Fatal("reconstructed error prints differently")
	}
}
