package player

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// testEngine builds an engine over a fresh store with a tiny module
// workload (the fig9c pattern needs no generation run).
func testEngine(t *testing.T, opts ...EngineOption) *Engine {
	t.Helper()
	return NewEngine(NewMemStore(), append([]EngineOption{WithWorkers(2)}, opts...)...)
}

// patternRef is the cheapest deterministic module with a question.
var patternRef = ModuleRef{Pattern: "fig9c-ddos-attack"}

func TestEngineCreateAndGet(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()

	v, err := e.Create(ctx, Record{ID: "alice", Name: "Alice"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Course.Spec != "ddos" || v.Course.Window != DefaultCourseWindow {
		t.Fatalf("default enrollment = %+v", v.Course)
	}
	if v.Progress.Done || len(v.Progress.Available) == 0 {
		t.Fatalf("fresh progress = %+v", v.Progress)
	}
	if v.Progress.Available[0] != "overview" {
		t.Fatalf("first available unit = %q, want overview", v.Progress.Available[0])
	}

	got, err := e.Get(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("Get = %+v, want the Create view %+v", got, v)
	}

	if _, err := e.Create(ctx, Record{ID: "alice"}); !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := e.Get(ctx, "nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown get: %v", err)
	}
	if _, err := e.Create(ctx, Record{ID: "Bad ID"}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad id: %v", err)
	}
	if _, err := e.Create(ctx, Record{ID: "x", Course: CourseRef{Spec: "no-such-scenario"}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad spec: %v", err)
	}
}

func TestEngineAttemptLifecycle(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
		t.Fatal(err)
	}

	a, err := e.StartAttempt(ctx, "alice", patternRef)
	if err != nil {
		t.Fatal(err)
	}
	if a.Attempt != 1 || a.Prompt == "" || len(a.Options) < 2 {
		t.Fatalf("attempt = %+v", a)
	}

	// Find the correct option via the deterministic shuffle, then
	// submit it.
	correct := -1
	sub, err := e.Submit(ctx, "alice", a.Attempt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Answered != 1 {
		t.Fatalf("answered = %d", sub.Answered)
	}
	if sub.Correct {
		correct = 0
	}
	_ = correct

	// Replaying the same attempt is a conflict (it was consumed).
	if _, err := e.Submit(ctx, "alice", a.Attempt, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("replayed submit: %v", err)
	}
	// A made-up attempt ID is a conflict too.
	if _, err := e.Submit(ctx, "alice", 999, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("unknown attempt: %v", err)
	}

	// The history shows up in the account view.
	v, err := e.Get(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answered != 1 {
		t.Fatalf("view answered = %d", v.Answered)
	}

	// Out-of-range answers are invalid, not conflicts.
	b, err := e.StartAttempt(ctx, "alice", patternRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(ctx, "alice", b.Attempt, 99); !errors.Is(err, ErrInvalid) {
		t.Fatalf("out-of-range answer: %v", err)
	}
}

// TestEngineAttemptShuffleDeterministic pins that the same attempt
// identity presents the same option order — the property that makes
// player responses bit-identical on any worker.
func TestEngineAttemptShuffleDeterministic(t *testing.T) {
	ctx := context.Background()
	var first []string
	for trial := 0; trial < 2; trial++ {
		e := testEngine(t)
		if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
			t.Fatal(err)
		}
		a, err := e.StartAttempt(ctx, "alice", patternRef)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = a.Options
			continue
		}
		if !reflect.DeepEqual(a.Options, first) {
			t.Fatalf("attempt 1 shuffled differently across engines: %v vs %v", a.Options, first)
		}
	}
}

// TestEngineConcurrentSubmits hammers one player with racing
// start+submit pairs under -race: every successful submit must land in
// the history (the striped lock serializes the read-modify-write), so
// the final count equals the success count exactly.
func TestEngineConcurrentSubmits(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				a, err := e.StartAttempt(ctx, "alice", patternRef)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Submit(ctx, "alice", a.Attempt, 0); err != nil {
					// A racing worker may evict our pending attempt past
					// the cap; that surfaces as ErrConflict and is the
					// documented contract — anything else is a bug.
					if !errors.Is(err, ErrConflict) {
						t.Error(err)
					}
					continue
				}
				mu.Lock()
				succeeded++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	v, err := e.Get(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answered != succeeded {
		t.Fatalf("history holds %d answers, %d submits succeeded — a write was lost", v.Answered, succeeded)
	}
	if succeeded == 0 {
		t.Fatal("no submit succeeded; the test exercised nothing")
	}
}

func TestEngineProgressGating(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
		t.Fatal(err)
	}

	// The default ddos campaign gates "timeline" behind "overview".
	if _, err := e.Advance(ctx, "alice", "timeline"); !errors.Is(err, ErrConflict) {
		t.Fatalf("locked unit: %v", err)
	}
	if _, err := e.Advance(ctx, "alice", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown unit: %v", err)
	}
	p, err := e.Advance(ctx, "alice", "overview")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Completed, []string{"overview"}) {
		t.Fatalf("completed = %v", p.Completed)
	}
	// Idempotent re-complete.
	again, err := e.Advance(ctx, "alice", "overview")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, p) {
		t.Fatalf("re-advance changed the view: %+v vs %+v", again, p)
	}
	p2, err := e.Advance(ctx, "alice", "timeline")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Done {
		t.Fatalf("course not done after all units: %+v", p2)
	}
	got, err := e.Progress(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p2) {
		t.Fatalf("Progress = %+v, want %+v", got, p2)
	}
}

// TestEngineRestartKeepsState pins the dir-store restart story: a new
// engine over the same directory serves the same views and continues
// the attempt numbering past the persisted history.
func TestEngineRestartKeepsState(t *testing.T) {
	root := t.TempDir()
	ctx := context.Background()
	store, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(store, WithWorkers(2))
	if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
		t.Fatal(err)
	}
	a, err := e.StartAttempt(ctx, "alice", patternRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(ctx, "alice", a.Attempt, 0); err != nil {
		t.Fatal(err)
	}
	before, err := e.Advance(ctx, "alice", "overview")
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store and engine over the same root.
	store2, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(store2, WithWorkers(2))
	after, err := e2.Progress(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("progress across restart: %+v vs %+v", after, before)
	}
	v, err := e2.Get(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answered != 1 {
		t.Fatalf("restarted view answered = %d", v.Answered)
	}
	// Attempt IDs continue past the persisted history.
	b, err := e2.StartAttempt(ctx, "alice", patternRef)
	if err != nil {
		t.Fatal(err)
	}
	if b.Attempt != 2 {
		t.Fatalf("post-restart attempt = %d, want 2", b.Attempt)
	}
}

func TestEngineRateLimiting(t *testing.T) {
	clock := newFakeClock()
	lim := withClock(NewLimiter(1, 2, 0), clock)
	e := testEngine(t, WithLimiter(lim))
	ctx := context.Background()
	if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	// Burst exhausted: the next call is a RateLimitError with a hint.
	_, err := e.Get(ctx, "alice")
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("got %v, want ErrRateLimited", err)
	}
	var rle *RateLimitError
	if !errors.As(err, &rle) || rle.RetryAfter <= 0 {
		t.Fatalf("429 without a retry hint: %v", err)
	}
	// Another player is unaffected.
	if _, err := e.Create(ctx, Record{ID: "bob"}); err != nil {
		t.Fatal(err)
	}
	// Mastery is an operator call and is never limited.
	for i := 0; i < 5; i++ {
		if _, err := e.Mastery(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Time heals the limited player.
	clock.advance(2 * time.Second)
	if _, err := e.Get(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
}

func TestEngineMastery(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	for _, id := range []string{"alice", "bob"} {
		if _, err := e.Create(ctx, Record{ID: id}); err != nil {
			t.Fatal(err)
		}
		a, err := e.StartAttempt(ctx, id, patternRef)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Submit(ctx, id, a.Attempt, 0); err != nil {
			t.Fatal(err)
		}
	}
	items, err := e.Mastery(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("mastery items = %+v", items)
	}
	if items[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", items[0].Attempts)
	}
	if items[0].Correct+len(items[0].Distractor) == 0 && items[0].Attempts > 0 &&
		items[0].Correct != items[0].Attempts {
		t.Fatalf("stats inconsistent: %+v", items[0])
	}
}

func TestEngineStartAttemptValidation(t *testing.T) {
	e := testEngine(t)
	ctx := context.Background()
	if _, err := e.Create(ctx, Record{ID: "alice"}); err != nil {
		t.Fatal(err)
	}
	cases := map[string]ModuleRef{
		"both set":        {Spec: "ddos", Pattern: "fig9c-ddos-attack"},
		"neither set":     {},
		"unknown pattern": {Pattern: "fig0-nope"},
		"unknown spec":    {Spec: "no-such-scenario"},
		"hosts too big":   {Spec: "ddos", Hosts: maxHosts + 1},
	}
	for name, ref := range cases {
		if _, err := e.StartAttempt(ctx, "alice", ref); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: got %v, want ErrInvalid", name, err)
		}
	}
	if _, err := e.StartAttempt(ctx, "nobody", patternRef); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown player: %v", err)
	}
}
