package player

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/course"
	"repro/internal/quiz"
)

// DirStore is the persistent Store: one directory per player under a
// root, holding at most three small JSON files —
//
//	<root>/<id>/player.json    the account record
//	<root>/<id>/history.json   quiz results in the quiz.Save format
//	<root>/<id>/progress.json  completed units + the course manifest
//
// Every write goes through write-temp-then-rename in the player's own
// directory, so a crash mid-write leaves the previous file intact and
// a reader never observes a torn document. The history file is the
// exact quiz session format (version + checksum), and the progress
// file embeds the course manifest round-tripped through course.Parse,
// so damage to either surfaces as quiz.ErrCorruptSession or
// course.ErrCorrupt — a diagnosable state, never a silently empty
// player.
type DirStore struct {
	root string
	// now stamps saved sessions; injectable for deterministic tests.
	now func() time.Time
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("player: open store: %w", err)
	}
	return &DirStore{root: root, now: time.Now}, nil
}

// dir returns the player's directory.
func (s *DirStore) dir(id string) string { return filepath.Join(s.root, id) }

// exists reports whether the player's record file is present.
func (s *DirStore) exists(id string) bool {
	if !ValidID(id) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir(id), "player.json"))
	return err == nil
}

// writeFileAtomic writes data to path crash-safely: a temp file in
// the same directory, synced and closed, then renamed over the
// target. Rename within one directory is atomic on POSIX systems, so
// concurrent readers see the old document or the new one — never a
// prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("player: write %s: %w", filepath.Base(path), err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	serr := f.Sync()
	cerr := f.Close()
	if werr == nil {
		werr = serr
	}
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("player: write %s: %w", filepath.Base(path), werr)
	}
	return nil
}

// Create inserts a new player: the directory creation is the
// existence check (Mkdir is atomic), so two racing creates resolve to
// exactly one winner.
func (s *DirStore) Create(rec Record) error {
	if !ValidID(rec.ID) {
		return fmt.Errorf("%w: bad player id %q", ErrInvalid, rec.ID)
	}
	if err := os.Mkdir(s.dir(rec.ID), 0o755); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return fmt.Errorf("%w: player %q already exists", ErrConflict, rec.ID)
		}
		return fmt.Errorf("player: create: %w", err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("player: create: %w", err)
	}
	return writeFileAtomic(filepath.Join(s.dir(rec.ID), "player.json"), append(data, '\n'))
}

// Get returns the player record.
func (s *DirStore) Get(id string) (Record, error) {
	data, err := os.ReadFile(filepath.Join(s.dir(id), "player.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) || !ValidID(id) {
			return Record{}, fmt.Errorf("%w: player %q", ErrNotFound, id)
		}
		return Record{}, fmt.Errorf("player: get: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return Record{}, fmt.Errorf("player: corrupt record for %q: %w", id, err)
	}
	if rec.ID != id {
		return Record{}, fmt.Errorf("player: corrupt record for %q: holds id %q", id, rec.ID)
	}
	return rec, nil
}

// Players lists every player directory holding a record, sorted.
func (s *DirStore) Players() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("player: list: %w", err)
	}
	var out []string
	for _, e := range entries { // ReadDir sorts by name
		if e.IsDir() && s.exists(e.Name()) {
			out = append(out, e.Name())
		}
	}
	return out, nil
}

// History returns the player's recorded quiz results. A missing
// history file is an empty history; a damaged one surfaces
// quiz.ErrCorruptSession.
func (s *DirStore) History(id string) ([]quiz.Result, error) {
	if !s.exists(id) {
		return nil, fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	f, err := os.Open(filepath.Join(s.dir(id), "history.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("player: history: %w", err)
	}
	defer f.Close()
	sess, err := quiz.LoadSession(f)
	if err != nil {
		return nil, fmt.Errorf("player: history for %q: %w", id, err)
	}
	return sess.Results(), nil
}

// PutHistory replaces the player's recorded quiz results, persisted
// in the standard quiz session format.
func (s *DirStore) PutHistory(id string, results []quiz.Result) error {
	if !s.exists(id) {
		return fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	var buf bytes.Buffer
	if err := quiz.RestoreSession(id, results).Save(&buf, s.now()); err != nil {
		return fmt.Errorf("player: history for %q: %w", id, err)
	}
	return writeFileAtomic(filepath.Join(s.dir(id), "history.json"), buf.Bytes())
}

// progressRecord is the on-disk progress snapshot: the completed
// units plus the rendered course manifest, which round-trips through
// course.Parse on load so a damaged or drifted manifest is diagnosed
// instead of silently unlocking the wrong units.
type progressRecord struct {
	Completed []string        `json:"completed"`
	Course    json.RawMessage `json:"course"`
}

// Progress returns the player's completed-unit snapshot. A missing
// file means no snapshot yet; a damaged one surfaces course.ErrCorrupt
// (manifest damage) or a wrapped decode error (envelope damage).
func (s *DirStore) Progress(id string) ([]string, error) {
	if !s.exists(id) {
		return nil, fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	data, err := os.ReadFile(filepath.Join(s.dir(id), "progress.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, errNoProgress
		}
		return nil, fmt.Errorf("player: progress: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("player: progress for %q: %w: empty document", id, course.ErrCorrupt)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec progressRecord
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("player: progress for %q: %w: %w", id, course.ErrCorrupt, err)
	}
	c, err := course.Parse(rec.Course)
	if err != nil {
		return nil, fmt.Errorf("player: progress for %q: %w", id, err)
	}
	for _, unit := range rec.Completed {
		if _, ok := c.Unit(unit); !ok {
			return nil, fmt.Errorf("player: progress for %q: %w: completed unit %q not in manifest", id, course.ErrCorrupt, unit)
		}
	}
	return rec.Completed, nil
}

// PutProgress replaces the player's progress snapshot.
func (s *DirStore) PutProgress(id string, c *course.Course, completed []string) error {
	if !s.exists(id) {
		return fmt.Errorf("%w: player %q", ErrNotFound, id)
	}
	manifest, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("player: progress for %q: %w", id, err)
	}
	if completed == nil {
		completed = []string{}
	}
	data, err := json.MarshalIndent(progressRecord{Completed: completed, Course: manifest}, "", "  ")
	if err != nil {
		return fmt.Errorf("player: progress for %q: %w", id, err)
	}
	return writeFileAtomic(filepath.Join(s.dir(id), "progress.json"), append(data, '\n'))
}
