// Package cluster scales the service across processes: a
// RemoteWorker speaks the full api.Core surface to one backend
// twserve process over HTTP, and a Cluster fronts N of them with the
// same consistent spec-hash ring that router.Pool uses in-process —
// so a request's canonical RouteKey lands on the same backend every
// time, and that backend's warm result cache, singleflight group,
// and arenas keep composing across every client of the proxy.
//
// The wire contract is exactly the one cmd/twserve already serves
// (internal/serve's route table), which is what makes the proxy
// bit-identical to a single process: the proxy decodes a backend's
// JSON into the same wire structs and re-encodes them with the same
// encoder, so bytes in equal bytes out.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/player"
)

// Defaults for the per-backend HTTP posture. The inflight cap bounds
// how many requests the proxy lets pile onto one backend (beyond it,
// callers queue at the proxy instead of thundering the backend); the
// retry/backoff pair covers the transient connection errors a
// backend restart produces during a membership change.
const (
	DefaultInflightLimit = 256
	DefaultRetries       = 2
	DefaultBackoff       = 50 * time.Millisecond
	// probeTimeout bounds the context-free observability calls
	// (Sessions, CacheStats, Stats, CancelSession) so one dead
	// backend cannot hang a /v1/stats scrape of the whole cluster.
	probeTimeout = 5 * time.Second
)

// maxResponseBytes bounds a decoded backend response. Large windowed
// generate results are a few MB; 64 MiB is far above any legitimate
// response while still bounding a misbehaving backend.
const maxResponseBytes = 64 << 20

// WorkerOption configures a RemoteWorker under construction.
type WorkerOption func(*RemoteWorker)

// WithHTTPClient substitutes the HTTP client (tests use a stub; the
// default client carries a pooled keep-alive transport). The caller
// keeps ownership: Close will not tear down a substituted client's
// idle connections.
func WithHTTPClient(c *http.Client) WorkerOption {
	return func(w *RemoteWorker) { w.client, w.transport = c, nil }
}

// WithInflightLimit caps concurrent requests to the backend
// (n ≤ 0 removes the cap).
func WithInflightLimit(n int) WorkerOption {
	return func(w *RemoteWorker) {
		if n <= 0 {
			w.sem = nil
			return
		}
		w.sem = make(chan struct{}, n)
	}
}

// WithRetry sets the retry budget for idempotent requests: up to
// `retries` re-sends after a transport-level failure, with backoff
// doubling from the base between attempts. Zero retries disables.
func WithRetry(retries int, backoff time.Duration) WorkerOption {
	return func(w *RemoteWorker) { w.retries, w.backoff = retries, backoff }
}

// RemoteWorker implements api.Core against one backend twserve
// process. Request methods translate to the backend's HTTP routes;
// observability methods probe with a bounded internal timeout. All
// methods are safe for concurrent use.
type RemoteWorker struct {
	base      string
	client    *http.Client
	transport *http.Transport // owned iff built here; nil for substituted clients
	sem       chan struct{}
	retries   int
	backoff   time.Duration
}

var _ api.Core = (*RemoteWorker)(nil)

// normalizeBase canonicalizes a backend URL: scheme+host(+path),
// no trailing slash. Two spellings of one backend must normalize
// identically or the membership map would hold duplicates.
func normalizeBase(base string) (string, error) {
	base = strings.TrimRight(strings.TrimSpace(base), "/")
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("cluster: bad backend URL %q: %w", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: backend URL %q must be http or https", base)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: backend URL %q has no host", base)
	}
	return base, nil
}

// NewRemoteWorker builds a worker for one backend base URL
// (e.g. "http://10.0.0.7:8080").
func NewRemoteWorker(base string, opts ...WorkerOption) (*RemoteWorker, error) {
	norm, err := normalizeBase(base)
	if err != nil {
		return nil, err
	}
	// A dedicated pooled transport per backend: keep-alives recycle
	// across requests (the proxy's steady state is zero new TCP
	// connections), and removing the backend can tear down exactly its
	// idle pool without touching other members'.
	tr := &http.Transport{
		MaxIdleConns:        DefaultInflightLimit,
		MaxIdleConnsPerHost: DefaultInflightLimit,
		IdleConnTimeout:     90 * time.Second,
	}
	w := &RemoteWorker{
		base:      norm,
		client:    &http.Client{Transport: tr},
		transport: tr,
		sem:       make(chan struct{}, DefaultInflightLimit),
		retries:   DefaultRetries,
		backoff:   DefaultBackoff,
	}
	for _, opt := range opts {
		opt(w)
	}
	return w, nil
}

// Base returns the normalized backend URL.
func (w *RemoteWorker) Base() string { return w.base }

// Close releases the worker's idle connections. In-flight requests
// are unaffected (the Cluster drains them before calling Close).
func (w *RemoteWorker) Close() {
	if w.transport != nil {
		w.transport.CloseIdleConnections()
	}
}

// acquire takes an inflight slot, waiting until one frees or the
// caller's context ends.
func (w *RemoteWorker) acquire(ctx context.Context) (func(), error) {
	if w.sem == nil {
		return func() {}, nil
	}
	select {
	case w.sem <- struct{}{}:
		return func() { <-w.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// remoteError rebuilds a façade error from a backend's error
// envelope, re-attaching the sentinel the status code encodes so the
// proxy's own error mapping (and its callers' errors.Is checks)
// behave exactly as if the failure were local. The backend's message
// already carries the sentinel's text, so the reconstruction splices
// rather than double-wrapping.
func remoteError(status int, msg string, retryAfterMS int64) error {
	resentinel := func(sentinel error) error {
		if rest, ok := strings.CutPrefix(msg, sentinel.Error()); ok {
			return fmt.Errorf("%w%s", sentinel, rest)
		}
		return fmt.Errorf("%w: %s", sentinel, msg)
	}
	// A status can encode more than one sentinel (400 is both the api
	// and the player invalid-request error; 409 both a cancelled run
	// and a player-state conflict); the message prefix says which one
	// the backend actually raised.
	prefer := func(candidates ...error) error {
		for _, sentinel := range candidates {
			if strings.HasPrefix(msg, sentinel.Error()) {
				return resentinel(sentinel)
			}
		}
		return resentinel(candidates[0])
	}
	switch status {
	case http.StatusBadRequest:
		return prefer(api.ErrInvalidRequest, player.ErrInvalid)
	case http.StatusNotFound:
		return resentinel(player.ErrNotFound)
	case http.StatusConflict:
		return prefer(api.ErrSessionCancelled, player.ErrConflict)
	case http.StatusTooManyRequests:
		// The envelope's retry_after_ms rebuilds the exact
		// RateLimitError: the proxy's serve layer then re-derives the
		// same Retry-After header, body, and message the backend sent.
		return &player.RateLimitError{RetryAfter: time.Duration(retryAfterMS) * time.Millisecond}
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w: %s", context.DeadlineExceeded, msg)
	case 499:
		return fmt.Errorf("%w: %s", context.Canceled, msg)
	default:
		return fmt.Errorf("cluster: backend answered status %d: %s", status, msg)
	}
}

// decodeError extracts the backend's error envelope from a non-200
// response body.
func decodeError(status int, body []byte) error {
	var eb struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return remoteError(status, eb.Error, eb.RetryAfterMS)
	}
	return remoteError(status, strings.TrimSpace(string(body)), 0)
}

// retryable reports whether a transport-level failure is worth
// re-sending: the caller must still want the result (context alive)
// — a cancelled context wrapped in a url.Error must not spin the
// backoff loop.
func retryable(ctx context.Context, err error) bool {
	return err != nil && ctx.Err() == nil &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// do runs one JSON request against the backend. Idempotent requests
// (every generate-family request is: the engine is deterministic, so
// re-sending after a connection failure cannot produce a different
// or duplicated result) retry transport-level failures with doubling
// backoff. HTTP-level errors never retry — the backend answered;
// resending would get the same answer.
func (w *RemoteWorker) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	release, err := w.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()

	var payload []byte
	if in != nil {
		if payload, err = json.Marshal(in); err != nil {
			return fmt.Errorf("cluster: encode request: %w", err)
		}
	}
	attempts := 1
	if idempotent && w.retries > 0 {
		attempts += w.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(w.backoff << (attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		var body io.Reader
		if in != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, w.base+path, body)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := w.client.Do(req)
		if err != nil {
			if retryable(ctx, err) {
				lastErr = err
				continue
			}
			return err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		resp.Body.Close()
		if err != nil {
			if retryable(ctx, err) {
				lastErr = err
				continue
			}
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp.StatusCode, data)
		}
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return fmt.Errorf("cluster: %s %s%s failed after %d attempts: %w", method, w.base, path, attempts, lastErr)
}

// Generate routes the batch request to the backend.
func (w *RemoteWorker) Generate(ctx context.Context, req api.GenerateRequest) (*api.GenerateResult, error) {
	var res api.GenerateResult
	if err := w.do(ctx, http.MethodPost, "/v1/generate", req, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// Analyze routes the analyze request to the backend.
func (w *RemoteWorker) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResult, error) {
	var res api.AnalyzeResult
	if err := w.do(ctx, http.MethodPost, "/v1/analyze", req, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// Module routes the module request to the backend.
func (w *RemoteWorker) Module(ctx context.Context, req api.ModuleRequest) (*core.Module, error) {
	var res core.Module
	if err := w.do(ctx, http.MethodPost, "/v1/module", req, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// Campaign routes the campaign request to the backend.
func (w *RemoteWorker) Campaign(ctx context.Context, req api.CampaignRequest) (*bridge.Campaign, error) {
	var res bridge.Campaign
	if err := w.do(ctx, http.MethodPost, "/v1/campaign", req, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// GenerateStream opens the backend's NDJSON stream and hands every
// frame to emit as it arrives — a pure pass-through, so the proxy's
// client sees each window the moment the backend seals it. Streams
// never retry (frames already delivered cannot be unwound) and never
// buffer more than one frame. Hangup propagates upstream: an emit
// failure (the proxy's client disconnected) cancels the backend
// request mid-body, which the backend turns into an end-to-end run
// cancellation — the cross-process mirror of the in-process
// emit-failure fix.
func (w *RemoteWorker) GenerateStream(ctx context.Context, req api.GenerateRequest, emit func(api.StreamFrame) error) error {
	release, err := w.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()

	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: encode request: %w", err)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hreq, err := http.NewRequestWithContext(sctx, http.MethodPost, w.base+"/v1/generate/stream", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		return decodeError(resp.StatusCode, data)
	}

	dec := api.NewFrameDecoder(resp.Body)
	sawSummary := false
	for {
		f, err := dec.Next()
		if errors.Is(err, io.EOF) {
			if !sawSummary {
				return fmt.Errorf("cluster: backend %s truncated the stream before the summary frame", w.base)
			}
			return nil
		}
		if err != nil {
			// A decode failure after our own cancel is the cancel, not a
			// protocol violation by the backend.
			if cause := sctx.Err(); cause != nil {
				return cause
			}
			return err
		}
		if f.Type == api.FrameError {
			// The backend failed mid-run; surface its message as the
			// stream error (the proxy's mux re-emits it in-band).
			return errors.New(f.Error)
		}
		if f.Type == api.FrameSummary {
			sawSummary = true
		}
		if err := emit(f); err != nil {
			// The proxy's own consumer hung up: abort the backend request
			// so the upstream run cancels instead of streaming into void.
			cancel()
			return err
		}
	}
}

// PlayerCreate registers a player on the backend. Mutations never
// retry: a create that landed but lost its response would turn a
// retry into a spurious 409.
func (w *RemoteWorker) PlayerCreate(ctx context.Context, req api.PlayerCreateRequest) (*api.PlayerResult, error) {
	var res api.PlayerResult
	if err := w.do(ctx, http.MethodPost, "/v1/player", req, &res, false); err != nil {
		return nil, err
	}
	return &res, nil
}

// PlayerGet reads a player's account view (idempotent).
func (w *RemoteWorker) PlayerGet(ctx context.Context, req api.PlayerGetRequest) (*api.PlayerResult, error) {
	var res api.PlayerResult
	if err := w.do(ctx, http.MethodGet, "/v1/player/"+url.PathEscape(req.ID), nil, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// PlayerAttemptStart starts an attempt on the backend. Not retried:
// each start consumes an attempt ID.
func (w *RemoteWorker) PlayerAttemptStart(ctx context.Context, req api.AttemptStartRequest) (*api.AttemptResult, error) {
	var res api.AttemptResult
	path := "/v1/player/" + url.PathEscape(req.Player) + "/attempt"
	if err := w.do(ctx, http.MethodPost, path, req, &res, false); err != nil {
		return nil, err
	}
	return &res, nil
}

// PlayerAttemptSubmit submits an answer on the backend. Not retried:
// a submit that landed but lost its response would turn a retry into
// a spurious 409.
func (w *RemoteWorker) PlayerAttemptSubmit(ctx context.Context, req api.AttemptSubmitRequest) (*api.SubmitResult, error) {
	var res api.SubmitResult
	path := fmt.Sprintf("/v1/player/%s/attempt/%d", url.PathEscape(req.Player), req.Attempt)
	if err := w.do(ctx, http.MethodPost, path, req, &res, false); err != nil {
		return nil, err
	}
	return &res, nil
}

// PlayerProgress reads (Unit empty) or advances (Unit set) progress
// on the backend. Advancing is idempotent server-side (re-completing
// a done unit is a no-op), so both paths may retry.
func (w *RemoteWorker) PlayerProgress(ctx context.Context, req api.ProgressRequest) (*api.ProgressResult, error) {
	var res api.ProgressResult
	path := "/v1/player/" + url.PathEscape(req.Player) + "/progress"
	if strings.TrimSpace(req.Unit) == "" {
		if err := w.do(ctx, http.MethodGet, path, nil, &res, true); err != nil {
			return nil, err
		}
		return &res, nil
	}
	if err := w.do(ctx, http.MethodPost, path, req, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// PlayerMastery reads the backend's cohort statistics (idempotent).
func (w *RemoteWorker) PlayerMastery(ctx context.Context) (*api.MasteryResult, error) {
	var res api.MasteryResult
	if err := w.do(ctx, http.MethodGet, "/v1/player/mastery", nil, &res, true); err != nil {
		return nil, err
	}
	return &res, nil
}

// Catalog probes the backend's catalog. api.Core's signature has no
// error path; an unreachable backend answers with an empty (but
// versioned) catalog rather than a panic.
func (w *RemoteWorker) Catalog(ctx context.Context) *api.CatalogResult {
	var res api.CatalogResult
	if err := w.do(ctx, http.MethodGet, "/v1/catalog", nil, &res, true); err != nil {
		return &api.CatalogResult{Version: api.Version}
	}
	return &res
}

// probeCtx bounds the context-free observability calls.
func probeCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), probeTimeout)
}

// Sessions lists the backend's in-flight runs, each tagged with this
// backend's URL (session IDs are only process-unique).
func (w *RemoteWorker) Sessions() []api.SessionInfo {
	ctx, cancel := probeCtx()
	defer cancel()
	var res []api.SessionInfo
	if err := w.do(ctx, http.MethodGet, "/v1/sessions", nil, &res, true); err != nil {
		return nil
	}
	for i := range res {
		res[i].Backend = w.base
	}
	return res
}

// CancelSession cancels the backend's session with that ID.
func (w *RemoteWorker) CancelSession(id int64) bool {
	ctx, cancel := probeCtx()
	defer cancel()
	var res struct {
		Cancelled bool `json:"cancelled"`
	}
	if err := w.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/sessions/%d", id), nil, &res, false); err != nil {
		return false
	}
	return res.Cancelled
}

// CacheStats reads the backend's fleet-aggregate cache counters.
func (w *RemoteWorker) CacheStats() api.CacheStats {
	st, _ := w.cacheStats()
	return st
}

func (w *RemoteWorker) cacheStats() (api.CacheStats, error) {
	ctx, cancel := probeCtx()
	defer cancel()
	var res api.CacheStats
	err := w.do(ctx, http.MethodGet, "/v1/cache", nil, &res, true)
	return res, err
}

// Stats reads the backend's full per-worker stats report.
func (w *RemoteWorker) Stats() api.StatsReport {
	st, _ := w.stats()
	return st
}

func (w *RemoteWorker) stats() (api.StatsReport, error) {
	ctx, cancel := probeCtx()
	defer cancel()
	var res api.StatsReport
	err := w.do(ctx, http.MethodGet, "/v1/stats", nil, &res, true)
	return res, err
}
