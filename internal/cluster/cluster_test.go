package cluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/router"
	"repro/internal/serve"
)

// fixture is one proxy topology: n real backend servers (each a full
// serve mux over its own api.Service, exactly what `twserve` runs),
// a Cluster fronting them, and the proxy's own HTTP server.
type fixture struct {
	svcs     []*api.Service
	backends []*httptest.Server
	cl       *cluster.Cluster
	proxy    *httptest.Server
}

func newBackend(t *testing.T) (*api.Service, *httptest.Server) {
	t.Helper()
	svc := api.New()
	srv := httptest.NewServer(serve.NewMux(svc))
	t.Cleanup(srv.Close)
	return svc, srv
}

func newFixture(t *testing.T, n int, opts ...cluster.Option) *fixture {
	t.Helper()
	f := &fixture{}
	var urls []string
	for i := 0; i < n; i++ {
		svc, srv := newBackend(t)
		f.svcs = append(f.svcs, svc)
		f.backends = append(f.backends, srv)
		urls = append(urls, srv.URL)
	}
	cl, err := cluster.New(urls, opts...)
	if err != nil {
		t.Fatal(err)
	}
	f.cl = cl
	f.proxy = httptest.NewServer(serve.NewProxyMux(cl, cl))
	t.Cleanup(f.proxy.Close)
	return f
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

// slowClusterScenario mirrors the router package's slow scenario so
// drain and cancellation tests have a long run to observe.
type slowClusterScenario struct{}

func (slowClusterScenario) Name() string                              { return "cluster-slow-test" }
func (slowClusterScenario) Description() string                       { return "slow scenario for cluster tests" }
func (slowClusterScenario) Shape() string                             { return "one cell, slowly" }
func (slowClusterScenario) Chunks(*netsim.Network, netsim.Params) int { return 200 }
func (slowClusterScenario) Emit(net *netsim.Network, rng *rand.Rand, p netsim.Params, chunk int, emit func(netsim.Event)) error {
	time.Sleep(5 * time.Millisecond)
	emit(netsim.Event{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1})
	return nil
}

var registerSlowCluster sync.Once

func slowClusterSpec(t *testing.T) string {
	t.Helper()
	registerSlowCluster.Do(func() {
		if err := netsim.Register(slowClusterScenario{}); err != nil {
			t.Fatal(err)
		}
	})
	return "cluster-slow-test"
}

// TestEmptyClusterAnswers503: the empty-ring satellite end to end —
// a proxy with every backend removed answers 503 (never a panic),
// and recovers the moment a backend is added through the admin
// route.
func TestEmptyClusterAnswers503(t *testing.T) {
	cl, err := cluster.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(serve.NewProxyMux(cl, cl))
	t.Cleanup(proxy.Close)

	// In-process: the error wraps router.ErrEmptyRing.
	if _, err := cl.Generate(t.Context(), api.GenerateRequest{Spec: "scan"}); !errors.Is(err, router.ErrEmptyRing) {
		t.Fatalf("Generate on empty cluster: err = %v, want ErrEmptyRing", err)
	}

	// Over the wire: 503 with the error envelope.
	resp := postJSON(t, proxy.URL+"/v1/generate", api.GenerateRequest{Spec: "scan", Workers: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty cluster generate: status %d, want 503", resp.StatusCode)
	}

	// Streams and analyzes degrade identically.
	for _, route := range []string{"/v1/generate/stream", "/v1/analyze"} {
		r := postJSON(t, proxy.URL+route, api.GenerateRequest{Spec: "scan", Window: 2})
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s on empty cluster: status %d, want 503", route, r.StatusCode)
		}
	}

	// Recovery: add a live backend through the admin surface.
	_, backend := newBackend(t)
	add := postJSON(t, proxy.URL+"/v1/cluster/add", map[string]string{"backend": backend.URL})
	if add.StatusCode != http.StatusOK {
		t.Fatalf("cluster add: status %d", add.StatusCode)
	}
	if got := decode[serve.MembershipResult](t, add); len(got.Backends) != 1 {
		t.Fatalf("backends after add = %v", got.Backends)
	}
	ok := postJSON(t, proxy.URL+"/v1/generate",
		api.GenerateRequest{Spec: "scan", Seed: 1, Workers: 1, Duration: 2})
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("generate after recovery: status %d", ok.StatusCode)
	}
}

// TestMembershipAdminSurface: the add/remove routes validate input
// and keep the backend list coherent.
func TestMembershipAdminSurface(t *testing.T) {
	f := newFixture(t, 2)

	resp, err := http.Get(f.proxy.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := decode[serve.MembershipResult](t, resp); len(got.Backends) != 2 {
		t.Fatalf("initial backends = %v", got.Backends)
	}

	// A garbage URL is the caller's fault.
	bad := postJSON(t, f.proxy.URL+"/v1/cluster/add", map[string]string{"backend": "not a url"})
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("add garbage URL: status %d, want 400", bad.StatusCode)
	}
	// Removing a non-member is a 404.
	miss := postJSON(t, f.proxy.URL+"/v1/cluster/remove", map[string]string{"backend": "http://127.0.0.1:1"})
	if miss.StatusCode != http.StatusNotFound {
		t.Errorf("remove non-member: status %d, want 404", miss.StatusCode)
	}
	// Re-adding an existing member is idempotent.
	dup := postJSON(t, f.proxy.URL+"/v1/cluster/add", map[string]string{"backend": f.backends[0].URL})
	if dup.StatusCode != http.StatusOK {
		t.Errorf("idempotent re-add: status %d", dup.StatusCode)
	}
	if got := f.cl.Backends(); len(got) != 2 {
		t.Errorf("backends after idempotent re-add = %v", got)
	}

	// Remove one for real: an idle backend drains instantly.
	rm := postJSON(t, f.proxy.URL+"/v1/cluster/remove", map[string]string{"backend": f.backends[1].URL})
	if rm.StatusCode != http.StatusOK {
		t.Fatalf("remove member: status %d", rm.StatusCode)
	}
	got := decode[serve.MembershipResult](t, rm)
	if len(got.Backends) != 1 || got.Drained == nil || !*got.Drained {
		t.Fatalf("remove result = %+v", got)
	}
}

// TestMembershipChangeUnderLoad is the acceptance scenario: a live
// backend add and remove while concurrent clients hammer the proxy,
// with zero failed requests — in-flight work on the departing
// backend drains, keys move only to the new member, and routing
// never produces an error window.
func TestMembershipChangeUnderLoad(t *testing.T) {
	f := newFixture(t, 2)
	_, extra := newBackend(t)

	specs := []string{"scan", "ddos", "background", "worm", "exfil", "beacon"}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var total, failures atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := api.GenerateRequest{
					Spec: specs[rng.Intn(len(specs))], Seed: int64(rng.Intn(4)),
					Workers: 1, Duration: 4, Window: 2,
				}
				data, _ := json.Marshal(req)
				resp, err := http.Post(f.proxy.URL+"/v1/generate", "application/json", bytes.NewReader(data))
				total.Add(1)
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}(g)
	}

	// Let the load warm up, then resize the ring both ways under it.
	time.Sleep(200 * time.Millisecond)
	if err := f.cl.AddBackend(extra.URL); err != nil {
		t.Errorf("add under load: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if _, err := f.cl.RemoveBackend(extra.URL); err != nil {
		t.Errorf("remove under load: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if total.Load() == 0 {
		t.Fatal("load loop issued no requests")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed across the membership change", failures.Load(), total.Load())
	}
	if got := f.cl.Backends(); len(got) != 2 {
		t.Fatalf("backends after add+remove = %v", got)
	}
}

// TestRemoveBackendDrainsInflight: removing a backend with a run in
// flight blocks until that run completes (bounded by the drain
// timeout), and the in-flight request itself succeeds.
func TestRemoveBackendDrainsInflight(t *testing.T) {
	spec := slowClusterSpec(t)
	f := newFixture(t, 1)

	var reqErr error
	var reqDone atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, reqErr = f.cl.Generate(t.Context(),
			api.GenerateRequest{Spec: spec, Seed: 1, Workers: 1})
		reqDone.Store(true)
	}()

	// Wait until the run is visibly in flight on the backend.
	deadline := time.Now().Add(5 * time.Second)
	for len(f.svcs[0].Sessions()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never appeared in the backend's session list")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drained, err := f.cl.RemoveBackend(f.backends[0].URL)
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if !drained {
		t.Error("remove reported an incomplete drain for a finishing run")
	}
	if !reqDone.Load() {
		t.Error("RemoveBackend returned before the in-flight run completed")
	}
	<-done
	if reqErr != nil {
		t.Errorf("in-flight run failed during drain: %v", reqErr)
	}

	// The ring is now empty: the next request degrades, not panics.
	if _, err := f.cl.Generate(t.Context(), api.GenerateRequest{Spec: "scan"}); !errors.Is(err, router.ErrEmptyRing) {
		t.Errorf("post-drain generate err = %v, want ErrEmptyRing", err)
	}
}

// TestClusterStatsAggregation is the stats satellite: the proxy's
// /v1/stats reports every backend's workers (renumbered, tagged,
// stripe detail intact) plus per-backend rollups and cluster totals
// — not the proxy's own empty state.
func TestClusterStatsAggregation(t *testing.T) {
	f := newFixture(t, 2)

	// Warm 16 distinct runs; with 128 vnodes both backends get some.
	cached := 0
	for seed := int64(0); seed < 16; seed++ {
		resp := postJSON(t, f.proxy.URL+"/v1/generate",
			api.GenerateRequest{Spec: "scan", Seed: seed, Workers: 1, Duration: 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		io := decode[api.GenerateResult](t, resp)
		if !io.CacheHit {
			cached++
		}
	}

	resp, err := http.Get(f.proxy.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rep := decode[api.StatsReport](t, resp)

	if rep.Version != api.Version {
		t.Errorf("stats version = %q", rep.Version)
	}
	if rep.Cluster == nil {
		t.Fatal("proxy stats carry no cluster rollup")
	}
	if len(rep.Cluster.Backends) != 2 {
		t.Fatalf("cluster rollup lists %d backends, want 2", len(rep.Cluster.Backends))
	}
	if len(rep.Workers) == 0 {
		t.Fatal("proxy stats flatten no backend workers")
	}
	byBackend := map[string]int{}
	totalLen := 0
	for i, w := range rep.Workers {
		if w.Worker != i {
			t.Errorf("flattened worker %d labeled %d", i, w.Worker)
		}
		if w.Backend == "" {
			t.Errorf("flattened worker %d carries no backend tag", i)
		}
		if len(w.Cache.Shards) == 0 {
			t.Errorf("flattened worker %d lost its per-stripe breakdown", i)
		}
		byBackend[w.Backend]++
		totalLen += w.Cache.Len
	}
	if len(byBackend) != 2 {
		t.Errorf("flattened workers span %d backends, want 2", len(byBackend))
	}
	if totalLen != cached {
		t.Errorf("flattened workers hold %d cached runs, want %d", totalLen, cached)
	}
	if rep.Cluster.Totals.Len != cached {
		t.Errorf("cluster totals hold %d cached runs, want %d", rep.Cluster.Totals.Len, cached)
	}
	for _, b := range rep.Cluster.Backends {
		if b.Error != "" {
			t.Errorf("backend %s reported a probe error: %s", b.Backend, b.Error)
		}
		if b.Workers == 0 {
			t.Errorf("backend %s rollup reports zero workers", b.Backend)
		}
	}

	// The fleet-aggregate cache view composes the same way.
	cresp, err := http.Get(f.proxy.URL + "/v1/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	cs := decode[api.CacheStats](t, cresp)
	if cs.Len != cached || len(cs.Shards) != 2 {
		t.Errorf("proxy cache view = len %d (%d backend shards), want len %d over 2", cs.Len, len(cs.Shards), cached)
	}

	// A dead backend degrades its rollup entry, not the whole report.
	f.backends[1].Close()
	rep2 := f.cl.Stats()
	if rep2.Cluster == nil || len(rep2.Cluster.Backends) != 2 {
		t.Fatal("stats with a dead backend lost the rollup")
	}
	dead := 0
	for _, b := range rep2.Cluster.Backends {
		if b.Error != "" {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("%d backends report probe errors, want 1", dead)
	}
}

// TestClusterSessionsTagBackends: merged session lists name the
// process holding each run — IDs alone are ambiguous across
// processes.
func TestClusterSessionsTagBackends(t *testing.T) {
	spec := slowClusterSpec(t)
	f := newFixture(t, 2)

	done := make(chan error, 1)
	go func() {
		_, err := f.cl.Generate(t.Context(), api.GenerateRequest{Spec: spec, Seed: 2, Workers: 1})
		done <- err
	}()
	var sessions []api.SessionInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		sessions = f.cl.Sessions()
		if len(sessions) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(sessions) != 1 {
		t.Fatalf("cluster reports %d sessions, want 1", len(sessions))
	}
	if sessions[0].Backend == "" {
		t.Error("merged session carries no backend tag")
	}
	if !f.cl.CancelSession(sessions[0].ID) {
		t.Error("CancelSession found nothing")
	}
	if err := <-done; !errors.Is(err, api.ErrSessionCancelled) {
		t.Errorf("cancelled run returned %v, want ErrSessionCancelled", err)
	}
}

// TestProxyRouteListing keeps the proxy's index honest about the
// membership surface.
func TestProxyRouteListing(t *testing.T) {
	f := newFixture(t, 1)
	resp, err := http.Get(f.proxy.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	idx := decode[map[string]string](t, resp)
	for _, want := range []string{"/v1/cluster/add", "/v1/cluster/remove", "/v1/campaign", "DELETE /v1/sessions/{id}"} {
		if !bytes.Contains([]byte(idx["routes"]), []byte(want)) {
			t.Errorf("proxy route listing omits %s: %q", want, idx["routes"])
		}
	}
}
