package cluster_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// TestProxyStreamHangupCancelsBackendRun is the hangup-regression
// satellite: a client that disconnects mid-stream THROUGH THE PROXY
// must cancel the run on the backend — the proxy's emit fails, the
// RemoteWorker cancels its upstream request, and the backend's
// request context kills the engine. The regression this pins: a
// proxy that keeps draining the backend stream into a dead client
// leaks a goroutine and a core's worth of work per hangup.
func TestProxyStreamHangupCancelsBackendRun(t *testing.T) {
	svc, backend := newBackend(t)
	cl, err := cluster.New([]string{backend.URL})
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(serve.NewProxyMux(cl, cl))
	t.Cleanup(proxy.Close)

	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		// A run long enough to hang up in the middle of: windows seal
		// every 5 simulated seconds while the engine works through
		// ~160k events.
		req := api.GenerateRequest{
			Spec: "background", Seed: int64(100 + round), Hosts: 200,
			Duration: 200, Rate: 800, Window: 5, Workers: 1,
		}
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(proxy.URL+"/v1/generate/stream", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		dec := api.NewFrameDecoder(resp.Body)
		for i := 0; i < 2; i++ { // meta + first window
			if _, err := dec.Next(); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
		}
		resp.Body.Close() // hang up mid-run

		// The backend must notice and drain the session: proxy emit
		// fails → upstream request cancelled → backend context done.
		deadline := time.Now().Add(10 * time.Second)
		for len(svc.Sessions()) != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: backend session still alive %v after client hangup", round, 10*time.Second)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// No goroutine may survive the hangups (allow slack for the
	// HTTP servers' connection churn).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+8 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across proxy hangups: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}
