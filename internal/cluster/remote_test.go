package cluster_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/serve"
)

// TestRemoteWorkerErrorMapping: façade sentinels survive the HTTP
// hop — a backend 400 comes back as api.ErrInvalidRequest, without
// doubling the sentinel prefix in the message.
func TestRemoteWorkerErrorMapping(t *testing.T) {
	_, backend := newBackend(t)
	w, err := cluster.NewRemoteWorker(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	_, err = w.Generate(t.Context(), api.GenerateRequest{Spec: "no-such-scenario"})
	if !errors.Is(err, api.ErrInvalidRequest) {
		t.Fatalf("remote invalid spec err = %v, want ErrInvalidRequest", err)
	}
	if n := strings.Count(err.Error(), api.ErrInvalidRequest.Error()); n != 1 {
		t.Errorf("sentinel appears %d times in %q, want exactly once (double-wrapped over the wire)", n, err)
	}

	// A cancelled caller context maps to context.Canceled, not an
	// opaque transport error.
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := w.Generate(ctx, api.GenerateRequest{Spec: "scan", Workers: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled generate err = %v, want context.Canceled", err)
	}
}

// TestRemoteWorkerRejectsBadBase pins URL validation at construction.
func TestRemoteWorkerRejectsBadBase(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host", "http://"} {
		if _, err := cluster.NewRemoteWorker(bad); err == nil {
			t.Errorf("NewRemoteWorker(%q) accepted a bad base", bad)
		}
	}
	// Trailing slashes normalize away so ring slots stay stable.
	w, err := cluster.NewRemoteWorker("http://127.0.0.1:9/")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if w.Base() != "http://127.0.0.1:9" {
		t.Errorf("Base() = %q, want trailing slash trimmed", w.Base())
	}
}

// TestRemoteWorkerRetriesTransportFailure: a connection severed
// before any response bytes is retried for idempotent requests — the
// deterministic engine makes a replayed generate harmless — and the
// second attempt succeeds.
func TestRemoteWorkerRetriesTransportFailure(t *testing.T) {
	inner := serve.NewMux(api.New())
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Sever the connection mid-request: the client sees a
			// transport error with no HTTP status.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	w, err := cluster.NewRemoteWorker(srv.URL, cluster.WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	res, err := w.Generate(t.Context(), api.GenerateRequest{Spec: "scan", Seed: 1, Workers: 1, Duration: 2})
	if err != nil {
		t.Fatalf("generate after one severed connection: %v", err)
	}
	if res.Events == 0 {
		t.Error("retried generate returned an empty run")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend saw %d calls, want 2 (one failure + one retry)", got)
	}
}

// TestRemoteWorkerStreamNeverRetries: streams are not idempotent at
// the wire level (frames may already have been emitted), so a
// severed stream connection surfaces the error instead of replaying.
func TestRemoteWorkerStreamNeverRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(srv.Close)

	w, err := cluster.NewRemoteWorker(srv.URL, cluster.WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	err = w.GenerateStream(t.Context(), api.GenerateRequest{Spec: "scan", Window: 2, Workers: 1},
		func(api.StreamFrame) error { return nil })
	if err == nil {
		t.Fatal("severed stream returned no error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d stream attempts, want 1 (streams must not retry)", got)
	}
}

// TestRemoteWorkerTruncatedStream: a stream that ends without a
// summary frame is a broken backend, not a clean EOF.
func TestRemoteWorkerTruncatedStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		// A lone meta frame, then EOF.
		api.EncodeFrame(w, api.StreamFrame{Type: api.FrameMeta, Meta: &api.StreamMeta{Version: api.Version, Spec: "scan", Window: 1, Windows: 1, Labels: []string{"A"}}})
	}))
	t.Cleanup(srv.Close)

	w, err := cluster.NewRemoteWorker(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	err = w.GenerateStream(t.Context(), api.GenerateRequest{Spec: "scan", Window: 2},
		func(api.StreamFrame) error { return nil })
	if err == nil {
		t.Fatal("truncated stream (no summary) returned no error")
	}
}

// TestRemoteWorkerInflightCap: the per-backend semaphore bounds
// concurrent requests so one proxy cannot stampede a backend.
func TestRemoteWorkerInflightCap(t *testing.T) {
	var cur, peak atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}))
	t.Cleanup(srv.Close)

	w, err := cluster.NewRemoteWorker(srv.URL, cluster.WithInflightLimit(2), cluster.WithRetry(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Generate(context.Background(), api.GenerateRequest{Spec: "scan"}); err != nil {
				t.Errorf("capped generate: %v", err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("backend observed %d concurrent requests, cap is 2", p)
	}
}

// TestRemoteWorkerCancelSession drives the DELETE route end to end:
// list the remote run (tagged with the backend base), cancel it, and
// watch the run die with the cancellation sentinel.
func TestRemoteWorkerCancelSession(t *testing.T) {
	spec := slowClusterSpec(t)
	_, backend := newBackend(t)
	w, err := cluster.NewRemoteWorker(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	done := make(chan error, 1)
	go func() {
		_, err := w.Generate(context.Background(), api.GenerateRequest{Spec: spec, Seed: 5, Workers: 1})
		done <- err
	}()

	var sessions []api.SessionInfo
	deadline := time.Now().Add(5 * time.Second)
	for {
		sessions = w.Sessions()
		if len(sessions) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(sessions) != 1 {
		t.Fatalf("remote sessions = %d, want 1", len(sessions))
	}
	if sessions[0].Backend != w.Base() {
		t.Errorf("session backend tag = %q, want %q", sessions[0].Backend, w.Base())
	}
	if !w.CancelSession(sessions[0].ID) {
		t.Error("remote CancelSession found nothing")
	}
	if err := <-done; !errors.Is(err, api.ErrSessionCancelled) {
		t.Errorf("cancelled remote run returned %v, want ErrSessionCancelled", err)
	}
}
