package cluster_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/player"
	"repro/internal/router"
	"repro/internal/serve"
)

// playerScript is the scripted flow the parity test replays against
// every topology: happy path, every error class, and the dashboard.
// Player responses carry no timings or cache markers, so the bodies
// must be byte-identical — stricter than the generate parity sweep.
func playerScript() []struct {
	name, method, path, body string
} {
	return []struct {
		name, method, path, body string
	}{
		{"create", "POST", "/v1/player", `{"id":"alice","name":"Alice"}`},
		{"duplicate create", "POST", "/v1/player", `{"id":"alice"}`},
		{"bad id", "POST", "/v1/player", `{"id":"Not Valid"}`},
		{"get", "GET", "/v1/player/alice", ""},
		{"unknown player", "GET", "/v1/player/ghost", ""},
		{"attempt", "POST", "/v1/player/alice/attempt", `{"pattern":"fig9c-ddos-attack"}`},
		{"submit", "POST", "/v1/player/alice/attempt/1", `{"answer":0}`},
		{"replayed submit", "POST", "/v1/player/alice/attempt/1", `{"answer":0}`},
		{"progress", "GET", "/v1/player/alice/progress", ""},
		{"locked unit", "POST", "/v1/player/alice/progress", `{"unit":"timeline"}`},
		{"advance", "POST", "/v1/player/alice/progress", `{"unit":"overview"}`},
		{"get after advance", "GET", "/v1/player/alice", ""},
		{"mastery", "GET", "/v1/player/mastery", ""},
	}
}

// runPlayerScript replays the script against one base URL and returns
// each step's status line plus raw body.
func runPlayerScript(t *testing.T, base string) []string {
	t.Helper()
	var out []string
	for _, s := range playerScript() {
		req, err := http.NewRequest(s.method, base+s.path, strings.NewReader(s.body))
		if err != nil {
			t.Fatal(err)
		}
		if s.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: read: %v", s.name, err)
		}
		out = append(out, fmt.Sprintf("%s: %d %s %s", s.name, resp.StatusCode,
			resp.Header.Get("Content-Type"), body))
	}
	return out
}

// TestPlayerFlowParityAcrossTopologies is the player half of the
// parity contract: the identical scripted flow against a single
// process, a 3-worker pool, and a 2-backend proxy produces
// byte-identical responses at every step — success and every error
// status alike (the 404/409 splice-reconstruction through the proxy
// is what this pins).
func TestPlayerFlowParityAcrossTopologies(t *testing.T) {
	_, direct := newBackend(t)
	pool := httptest.NewServer(serve.NewMux(router.NewPool(3)))
	t.Cleanup(pool.Close)
	f := newFixture(t, 2)

	want := runPlayerScript(t, direct.URL)
	for name, base := range map[string]string{"pool": pool.URL, "proxy": f.proxy.URL} {
		got := runPlayerScript(t, base)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s diverges from direct at step %d:\n direct: %s\n %s: %s",
					name, i, want[i], name, got[i])
			}
		}
	}
}

// TestPlayerRateLimitThroughProxy: a backend's 429 crosses the proxy
// hop intact — same status, a Retry-After header that is exactly the
// body's millisecond wait rounded up to whole seconds, and the
// sentinel-prefixed message rebuilt from retry_after_ms.
func TestPlayerRateLimitThroughProxy(t *testing.T) {
	eng := player.NewEngine(player.NewMemStore(),
		player.WithLimiter(player.NewLimiter(0.001, 1, 16)))
	svc := api.New(api.WithPlayers(eng))
	backend := httptest.NewServer(serve.NewMux(svc))
	t.Cleanup(backend.Close)
	cl, err := cluster.New([]string{backend.URL})
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(serve.NewProxyMux(cl, cl))
	t.Cleanup(proxy.Close)

	// The burst of 1 is spent on the enroll; everything after is 429.
	if resp := postJSON(t, proxy.URL+"/v1/player", api.PlayerCreateRequest{ID: "greedy"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("create through proxy: status %d", resp.StatusCode)
	}
	limited, err := http.Get(proxy.URL + "/v1/player/greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer limited.Body.Close()
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", limited.StatusCode)
	}
	body := decode[struct {
		Error        string `json:"error"`
		Version      string `json:"version"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}](t, limited)
	if body.Version != api.Version || body.RetryAfterMS <= 0 {
		t.Fatalf("429 envelope = %+v", body)
	}
	// The message is a pure function of the wait, so the proxy's
	// reconstruction from retry_after_ms must reproduce it exactly.
	want := (&player.RateLimitError{RetryAfter: time.Duration(body.RetryAfterMS) * time.Millisecond}).Error()
	if body.Error != want {
		t.Errorf("429 message = %q, want %q", body.Error, want)
	}
	secs, err := strconv.Atoi(limited.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After = %q: %v", limited.Header.Get("Retry-After"), err)
	}
	if ceil := max((body.RetryAfterMS+999)/1000, 1); int64(secs) != ceil {
		t.Errorf("Retry-After = %ds, want ceil(%dms) = %d", secs, body.RetryAfterMS, ceil)
	}
}
