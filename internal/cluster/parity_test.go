package cluster_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/netsim"
)

// catalogNames lists every registered scenario except the
// test-support slow scenarios other tests in this binary register.
func catalogNames() []string {
	var names []string
	for _, s := range netsim.Scenarios() {
		if strings.HasSuffix(s.Name(), "-test") {
			continue
		}
		names = append(names, s.Name())
	}
	return names
}

// composedSpecs derives n deterministic pseudo-random compositions
// over the catalog, exercising every combinator the spec grammar
// offers (nested included).
func composedSpecs(n int, names []string) []string {
	rng := rand.New(rand.NewSource(9))
	pick := func() string { return names[rng.Intn(len(names))] }
	factors := []string{"0.5", "1.5", "2"}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var s string
		switch i % 5 {
		case 0:
			s = fmt.Sprintf("overlay(%s, %s)", pick(), pick())
		case 1:
			// Offsets stay well under the request duration so the final
			// step always gets time (a zero-length step is a 4xx).
			s = fmt.Sprintf("sequence(%s@%ds, %s)", pick(), 2+rng.Intn(3), pick())
		case 2:
			s = fmt.Sprintf("dilate(%s, %s)", pick(), factors[rng.Intn(len(factors))])
		case 3:
			s = fmt.Sprintf("amplify(overlay(%s, %s), %d)", pick(), pick(), 2+rng.Intn(2))
		case 4:
			s = fmt.Sprintf("overlay(%s, sequence(%s@%ds, dilate(%s, 2)))",
				pick(), pick(), 2+rng.Intn(2), pick())
		}
		out = append(out, s)
	}
	return out
}

// normalizeBody strips the only legitimately nondeterministic fields
// — wall-clock timings and the cache-hit marker — and re-marshals.
// Everything else must be byte-identical between a direct twserve
// response and the same request through the proxy hop: Go's JSON
// float round-trip is exact, so the proxy's decode→re-encode of the
// backend body cannot change a single digit.
func normalizeBody(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("normalize: %v\nbody: %.200s", err, body)
	}
	delete(m, "timings")
	delete(m, "cache_hit")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func postBody(t *testing.T, url string, req any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestProxyBatchParity is the parity satellite's batch half: for the
// full catalog plus 20 random composed specs, generate / analyze /
// module responses through a two-backend proxy are bit-identical
// (modulo timings and cache markers) to a single-process twserve.
func TestProxyBatchParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep is long under -short")
	}
	_, ref := newBackend(t) // single-process reference
	f := newFixture(t, 2)

	names := catalogNames()
	if len(names) == 0 {
		t.Fatal("empty scenario catalog")
	}
	specs := append(append([]string{}, names...), composedSpecs(20, names)...)

	for i, spec := range specs {
		req := api.GenerateRequest{
			Spec: spec, Seed: int64(i + 1), Hosts: 30,
			Duration: 6, Rate: 40, Workers: 1,
			IncludeMatrices: i%7 == 0,
		}
		wantCode, wantBody := postBody(t, ref.URL+"/v1/generate", req)
		gotCode, gotBody := postBody(t, f.proxy.URL+"/v1/generate", req)
		if wantCode != http.StatusOK || gotCode != wantCode {
			t.Fatalf("%s: status direct %d vs proxy %d", spec, wantCode, gotCode)
		}
		if want, got := normalizeBody(t, wantBody), normalizeBody(t, gotBody); want != got {
			t.Errorf("%s: generate diverges through the proxy\ndirect: %.300s\nproxy:  %.300s", spec, want, got)
		}

		if i%3 != 0 {
			continue
		}
		areq := api.AnalyzeRequest{Spec: spec, Seed: int64(i + 1), Hosts: 30, Duration: 6, Rate: 40, Workers: 1}
		wantCode, wantBody = postBody(t, ref.URL+"/v1/analyze", areq)
		gotCode, gotBody = postBody(t, f.proxy.URL+"/v1/analyze", areq)
		if wantCode != http.StatusOK || gotCode != wantCode {
			t.Fatalf("%s: analyze status direct %d vs proxy %d", spec, wantCode, gotCode)
		}
		if want, got := normalizeBody(t, wantBody), normalizeBody(t, gotBody); want != got {
			t.Errorf("%s: analyze diverges through the proxy", spec)
		}
	}

	// Module and campaign ride the same pipe; spot-check both.
	mreq := api.ModuleRequest{Spec: names[0], Seed: 3, Hosts: 24, Duration: 6, Rate: 40}
	_, wantBody := postBody(t, ref.URL+"/v1/module", mreq)
	_, gotBody := postBody(t, f.proxy.URL+"/v1/module", mreq)
	if normalizeBody(t, wantBody) != normalizeBody(t, gotBody) {
		t.Error("module response diverges through the proxy")
	}
	creq := api.CampaignRequest{Spec: "overlay(" + names[0] + ", " + names[len(names)-1] + ")",
		Window: 2, Seed: 4, Hosts: 24, Duration: 6, Rate: 40}
	wantCode, wantBody := postBody(t, ref.URL+"/v1/campaign", creq)
	gotCode, gotBody := postBody(t, f.proxy.URL+"/v1/campaign", creq)
	if wantCode != http.StatusOK || gotCode != wantCode {
		t.Fatalf("campaign status direct %d vs proxy %d", wantCode, gotCode)
	}
	if normalizeBody(t, wantBody) != normalizeBody(t, gotBody) {
		t.Error("campaign response diverges through the proxy")
	}

	// Catalog itself is served verbatim from a backend.
	refCat, _ := http.Get(ref.URL + "/v1/catalog")
	proxyCat, _ := http.Get(f.proxy.URL + "/v1/catalog")
	wantBody, _ = io.ReadAll(refCat.Body)
	gotBody, _ = io.ReadAll(proxyCat.Body)
	refCat.Body.Close()
	proxyCat.Body.Close()
	if !bytes.Equal(wantBody, gotBody) {
		t.Error("catalog diverges through the proxy")
	}
}

// streamLines posts a stream request and returns the raw NDJSON
// lines.
func streamLines(t *testing.T, url string, req api.GenerateRequest) []string {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/generate/stream", "application/x-ndjson", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %.200s", resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), api.MaxFrameBytes+1024)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestProxyStreamParity is the parity satellite's streaming half:
// the proxy's pass-through re-encode leaves every meta and window
// frame byte-identical to the single-process stream, and the summary
// frame identical after timing normalization.
func TestProxyStreamParity(t *testing.T) {
	_, ref := newBackend(t)
	f := newFixture(t, 2)

	names := catalogNames()
	specs := append([]string{names[0], names[len(names)/2]},
		"overlay("+names[0]+", sequence("+names[1%len(names)]+"@3s, "+names[0]+"))")
	for i, spec := range specs {
		req := api.GenerateRequest{
			Spec: spec, Seed: int64(40 + i), Hosts: 30,
			Duration: 8, Rate: 40, Window: 2, Workers: 1,
		}
		want := streamLines(t, ref.URL, req)
		got := streamLines(t, f.proxy.URL, req)
		if len(want) != len(got) {
			t.Fatalf("%s: direct stream has %d frames, proxy %d", spec, len(want), len(got))
		}
		if len(want) < 3 {
			t.Fatalf("%s: degenerate stream of %d frames", spec, len(want))
		}
		for j := range want {
			var frame struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal([]byte(want[j]), &frame); err != nil {
				t.Fatal(err)
			}
			if frame.Type == api.FrameError {
				t.Fatalf("%s: direct stream errored: %.200s", spec, want[j])
			}
			if frame.Type != api.FrameSummary {
				if want[j] != got[j] {
					t.Errorf("%s: frame %d (%s) diverges through the proxy\ndirect: %.200s\nproxy:  %.200s",
						spec, j, frame.Type, want[j], got[j])
				}
				continue
			}
			// Summary frames carry wall-clock timings; normalize those.
			if w, g := normalizeStreamSummary(t, want[j]), normalizeStreamSummary(t, got[j]); w != g {
				t.Errorf("%s: summary frame diverges through the proxy\ndirect: %.300s\nproxy:  %.300s", spec, w, g)
			}
		}
	}
}

func normalizeStreamSummary(t *testing.T, line string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatal(err)
	}
	if sum, ok := m["summary"].(map[string]any); ok {
		delete(sum, "timings")
		delete(sum, "cache_hit")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestProxyWarmAffinity: the whole point of ring routing by
// RouteKey — a respelled spec and the analyze twin of a generate
// both land on the backend already holding the run, and come back as
// cache hits through the proxy.
func TestProxyWarmAffinity(t *testing.T) {
	f := newFixture(t, 2)

	canonical := api.GenerateRequest{Spec: "overlay(background, scan)", Seed: 7, Hosts: 30, Duration: 6, Rate: 40, Workers: 1}
	respelled := api.GenerateRequest{Spec: "overlay( background ,  scan )", Seed: 7, Hosts: 30, Duration: 6, Rate: 40, Workers: 1}

	first := postJSON(t, f.proxy.URL+"/v1/generate", canonical)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("cold generate: status %d", first.StatusCode)
	}
	if h := first.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("cold generate X-Cache = %q, want miss", h)
	}
	warm := postJSON(t, f.proxy.URL+"/v1/generate", respelled)
	if h := warm.Header.Get("X-Cache"); h != "hit" {
		t.Errorf("respelled warm generate X-Cache = %q, want hit (affinity lost)", h)
	}

	// Generate → Analyze affinity across the same ring key.
	analyze := postJSON(t, f.proxy.URL+"/v1/analyze",
		api.AnalyzeRequest{Spec: canonical.Spec, Seed: 7, Hosts: 30, Duration: 6, Rate: 40, Workers: 1})
	if analyze.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d", analyze.StatusCode)
	}
	if res := decode[api.AnalyzeResult](t, analyze); !res.CacheHit {
		t.Error("analyze of a generated spec missed the warm cache through the proxy")
	}
}
