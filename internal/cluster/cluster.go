package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/player"
	"repro/internal/router"
)

// ErrNoBackends reports a request against a cluster whose every
// backend has been removed. It wraps router.ErrEmptyRing, so the
// serve layer's single errors.Is check turns both the in-process and
// the cross-process flavor into HTTP 503.
var ErrNoBackends = fmt.Errorf("cluster: no live backends (%w)", router.ErrEmptyRing)

// ErrUnknownBackend reports a Remove of a URL that is not a member.
var ErrUnknownBackend = errors.New("cluster: backend is not a member")

// DefaultDrainTimeout bounds how long RemoveBackend waits for the
// departing backend's in-flight requests (streams included) before
// reporting the drain incomplete. The backend keeps serving whatever
// is still attached either way — the bound is on the admin call, not
// on the requests.
const DefaultDrainTimeout = 30 * time.Second

// Option configures a Cluster under construction.
type Option func(*Cluster)

// WithWorkerOptions forwards options to every RemoteWorker the
// cluster builds (present and future members).
func WithWorkerOptions(opts ...WorkerOption) Option {
	return func(c *Cluster) { c.workerOpts = opts }
}

// WithDrainTimeout sets the RemoveBackend drain bound.
func WithDrainTimeout(d time.Duration) Option {
	return func(c *Cluster) {
		if d > 0 {
			c.drainTimeout = d
		}
	}
}

// member is one live backend: its worker plus the in-flight counter
// RemoveBackend drains against.
type member struct {
	url    string
	worker *RemoteWorker
	wg     sync.WaitGroup
}

// Cluster fronts N backend twserve processes with one api.Core
// surface, routing every request's canonical RouteKey through a
// consistent hash ring so respelled specs and Generate↔Analyze pairs
// keep hitting the same backend's warm cache — the cross-process
// twin of router.Pool. Membership is live: AddBackend and
// RemoveBackend grow and shrink the ring under load, moving only the
// ≤~K/N keyspace slice the ring's property tests bound, and removal
// drains the departing backend's in-flight requests before its
// connections are torn down.
//
// Slots are stable per URL for the cluster's lifetime: a backend
// removed and re-added gets its old ring position back, so its
// surviving warm cache lines become hits again — the remove/re-add
// assignment-restoration property the ring pins.
type Cluster struct {
	workerOpts   []WorkerOption
	drainTimeout time.Duration

	mu      sync.RWMutex
	ring    *router.Ring
	members map[int]*member // slot → live member
	slots   map[string]int  // URL → stable slot, kept across removals
	next    int             // next fresh slot
}

var _ api.Core = (*Cluster)(nil)

// New builds a cluster over the given backend base URLs. An empty
// list is legal — the cluster answers ErrNoBackends until an
// AddBackend lands.
func New(backends []string, opts ...Option) (*Cluster, error) {
	c := &Cluster{
		drainTimeout: DefaultDrainTimeout,
		ring:         router.NewRing(0),
		members:      map[int]*member{},
		slots:        map[string]int{},
	}
	for _, opt := range opts {
		opt(c)
	}
	for _, b := range backends {
		if err := c.AddBackend(b); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// AddBackend grows the ring with a backend URL. Adding a URL that is
// already a member is a no-op; re-adding a previously removed URL
// restores its old ring slot (and therefore its old keyspace slice).
func (c *Cluster) AddBackend(backend string) error {
	w, err := NewRemoteWorker(backend, c.workerOpts...)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, seen := c.slots[w.Base()]
	if seen {
		if _, live := c.members[slot]; live {
			return nil // already a member
		}
	} else {
		slot = c.next
		c.next++
		c.slots[w.Base()] = slot
	}
	c.members[slot] = &member{url: w.Base(), worker: w}
	c.ring.Add(slot)
	return nil
}

// RemoveBackend shrinks the ring: the backend stops receiving new
// requests immediately, its keyspace slice falls to the survivors,
// and the call then waits (bounded by the drain timeout) for its
// in-flight requests to finish before tearing down its idle
// connections. Reports whether the drain completed in time;
// ErrUnknownBackend if the URL is not a member.
func (c *Cluster) RemoveBackend(backend string) (drained bool, err error) {
	norm, err := normalizeBase(backend)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	slot, seen := c.slots[norm]
	m, live := c.members[slot]
	if !seen || !live {
		c.mu.Unlock()
		return false, fmt.Errorf("%w: %s", ErrUnknownBackend, norm)
	}
	c.ring.Remove(slot)
	delete(c.members, slot)
	c.mu.Unlock()

	// Every in-flight pick registered under the read lock before the
	// write lock above landed, so the wait below covers all of them;
	// no new request can reach the member anymore.
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		drained = true
	case <-time.After(c.drainTimeout):
	}
	m.worker.Close()
	return drained, nil
}

// Backends lists the live member URLs in slot (join) order.
func (c *Cluster) Backends() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slots := make([]int, 0, len(c.members))
	for s := range c.members {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	out := make([]string, len(slots))
	for i, s := range slots {
		out[i] = c.members[s].url
	}
	return out
}

// Size reports the live backend count.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.members)
}

// pick resolves a routing key to its live member and registers the
// caller in-flight; the returned release must be called when the
// request finishes so RemoveBackend's drain can complete.
func (c *Cluster) pick(key string) (*member, func(), error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slot, err := c.ring.Pick(key)
	if err != nil {
		return nil, nil, ErrNoBackends
	}
	m := c.members[slot]
	m.wg.Add(1)
	return m, func() { m.wg.Done() }, nil
}

// snapshot returns the live members in slot order for fan-out calls.
func (c *Cluster) snapshot() []*member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	slots := make([]int, 0, len(c.members))
	for s := range c.members {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	out := make([]*member, len(slots))
	for i, s := range slots {
		out[i] = c.members[s]
	}
	return out
}

// Generate routes the request to its spec's backend.
func (c *Cluster) Generate(ctx context.Context, req api.GenerateRequest) (*api.GenerateResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.Generate(ctx, req)
}

// GenerateStream routes the stream to the same backend the batch
// request would use, keeping cache and arena locality.
func (c *Cluster) GenerateStream(ctx context.Context, req api.GenerateRequest, emit func(api.StreamFrame) error) error {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return err
	}
	defer release()
	return m.worker.GenerateStream(ctx, req, emit)
}

// Analyze routes spec-path requests with their generate identity (so
// they share the cached run) and matrix posts by shape.
func (c *Cluster) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.Analyze(ctx, req)
}

// Module routes by the module's cache identity.
func (c *Cluster) Module(ctx context.Context, req api.ModuleRequest) (*core.Module, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.Module(ctx, req)
}

// Campaign routes by the campaign's cache identity.
func (c *Cluster) Campaign(ctx context.Context, req api.CampaignRequest) (*bridge.Campaign, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.Campaign(ctx, req)
}

// Player methods route by player identity: unlike the in-process
// pool (whose workers share one engine), each backend process owns
// its own player store, so the ring genuinely partitions players
// across the cluster and per-player rate limits are enforced by the
// one backend that owns the player.

// PlayerCreate routes by player identity.
func (c *Cluster) PlayerCreate(ctx context.Context, req api.PlayerCreateRequest) (*api.PlayerResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.PlayerCreate(ctx, req)
}

// PlayerGet routes by player identity.
func (c *Cluster) PlayerGet(ctx context.Context, req api.PlayerGetRequest) (*api.PlayerResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.PlayerGet(ctx, req)
}

// PlayerAttemptStart routes by player identity.
func (c *Cluster) PlayerAttemptStart(ctx context.Context, req api.AttemptStartRequest) (*api.AttemptResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.PlayerAttemptStart(ctx, req)
}

// PlayerAttemptSubmit routes by player identity.
func (c *Cluster) PlayerAttemptSubmit(ctx context.Context, req api.AttemptSubmitRequest) (*api.SubmitResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.PlayerAttemptSubmit(ctx, req)
}

// PlayerProgress routes by player identity.
func (c *Cluster) PlayerProgress(ctx context.Context, req api.ProgressRequest) (*api.ProgressResult, error) {
	m, release, err := c.pick(req.RouteKey())
	if err != nil {
		return nil, err
	}
	defer release()
	return m.worker.PlayerProgress(ctx, req)
}

// PlayerMastery fans out: each backend owns a disjoint slice of the
// player population, so the cohort view is the merge of every
// backend's local statistics. Backends are probed concurrently; a
// failed probe fails the whole read (a partial cohort would silently
// misreport difficulty).
func (c *Cluster) PlayerMastery(ctx context.Context) (*api.MasteryResult, error) {
	members := c.snapshot()
	if len(members) == 0 {
		return nil, ErrNoBackends
	}
	parts := make([][]player.MasteryItem, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		m.wg.Add(1)
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			defer m.wg.Done()
			res, err := m.worker.PlayerMastery(ctx)
			if err != nil {
				errs[i] = fmt.Errorf("cluster: mastery probe of %s: %w", m.url, err)
				return
			}
			parts[i] = res.Items
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &api.MasteryResult{Version: api.Version, Items: api.MergeMastery(parts...)}, nil
}

// Catalog is identical on every backend; the first live one answers.
// An empty cluster answers an empty (but versioned) catalog.
func (c *Cluster) Catalog(ctx context.Context) *api.CatalogResult {
	members := c.snapshot()
	if len(members) == 0 {
		return &api.CatalogResult{Version: api.Version}
	}
	return members[0].worker.Catalog(ctx)
}

// Sessions merges every backend's in-flight list. Session IDs are
// only unique per process, so entries are identified by the
// (Backend, ID) pair and ordered by ID then backend.
func (c *Cluster) Sessions() []api.SessionInfo {
	var out []api.SessionInfo
	for _, m := range c.snapshot() {
		out = append(out, m.worker.Sessions()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Backend < out[j].Backend
	})
	return out
}

// CancelSession broadcasts the cancel to every backend. IDs are not
// unique across processes, so this is best-effort by design: it
// cancels every backend's session with that ID and reports whether
// any was found.
func (c *Cluster) CancelSession(id int64) bool {
	found := false
	for _, m := range c.snapshot() {
		if m.worker.CancelSession(id) {
			found = true
		}
	}
	return found
}

// CacheStats aggregates the cluster's cache counters; each Shards
// entry is one backend's own fleet aggregate.
func (c *Cluster) CacheStats() api.CacheStats {
	members := c.snapshot()
	var agg api.CacheStats
	agg.Shards = make([]api.CacheStats, len(members))
	for i, m := range members {
		st := m.worker.CacheStats()
		st.Shards = nil
		agg.Shards[i] = st
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Len += st.Len
		agg.Capacity += st.Capacity
	}
	return agg
}

// Stats aggregates /v1/stats across the backends: every backend's
// workers appear (renumbered fleet-wide, tagged with their backend
// URL, per-stripe detail intact) plus the per-backend rollup and
// cluster totals under Cluster. Backends are probed concurrently so
// one slow member delays the scrape by at most the probe timeout; a
// failed probe reports its error in its BackendStats entry rather
// than failing the whole report.
func (c *Cluster) Stats() api.StatsReport {
	members := c.snapshot()
	type probe struct {
		rep api.StatsReport
		err error
	}
	probes := make([]probe, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			probes[i].rep, probes[i].err = m.worker.stats()
		}(i, m)
	}
	wg.Wait()

	rep := api.StatsReport{Version: api.Version, Cluster: &api.ClusterStats{}}
	for i, m := range members {
		if probes[i].err != nil {
			rep.Cluster.Backends = append(rep.Cluster.Backends,
				api.BackendStats{Backend: m.url, Error: probes[i].err.Error()})
			continue
		}
		var bs api.BackendStats
		bs.Backend = m.url
		bs.Workers = len(probes[i].rep.Workers)
		for _, ws := range probes[i].rep.Workers {
			ws.Worker = len(rep.Workers)
			ws.Backend = m.url
			rep.Workers = append(rep.Workers, ws)

			bs.Sessions += ws.Sessions
			bs.Cache.Hits += ws.Cache.Hits
			bs.Cache.Misses += ws.Cache.Misses
			bs.Cache.Evictions += ws.Cache.Evictions
			bs.Cache.Len += ws.Cache.Len
			bs.Cache.Capacity += ws.Cache.Capacity
		}
		rep.Cluster.Backends = append(rep.Cluster.Backends, bs)
		rep.Cluster.Sessions += bs.Sessions
		rep.Cluster.Totals.Hits += bs.Cache.Hits
		rep.Cluster.Totals.Misses += bs.Cache.Misses
		rep.Cluster.Totals.Evictions += bs.Cache.Evictions
		rep.Cluster.Totals.Len += bs.Cache.Len
		rep.Cluster.Totals.Capacity += bs.Cache.Capacity
	}
	return rep
}
