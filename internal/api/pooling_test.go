package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// normalizeResult strips the per-call fields (timings are wall-clock,
// the hit marker depends on interleaving) and returns the wire JSON —
// the canonical identity two services' answers are compared by.
func normalizeResult(t *testing.T, r *GenerateResult) string {
	t.Helper()
	cp := *r
	cp.Timings = Timings{}
	cp.CacheHit = false
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// normalizeFrames does the same for a collected stream.
func normalizeFrames(t *testing.T, frames []StreamFrame) string {
	t.Helper()
	cp := make([]StreamFrame, len(frames))
	copy(cp, frames)
	for i := range cp {
		if cp[i].Summary != nil {
			s := *cp[i].Summary
			s.Timings = Timings{}
			cp[i].Summary = &s
		}
	}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCacheHitDefensiveCopies pins the warm-path aliasing fix: a
// caller mutating the result it was handed must not be able to
// corrupt the cached value other callers are served from.
func TestCacheHitDefensiveCopies(t *testing.T) {
	svc := New()
	req := NewGenerateRequest("attack", WithSeed(3), WithWorkers(2), WithParams(8, 4, 1), WithWindow(2))
	if _, err := svc.Generate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	warm, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second request missed the cache")
	}
	if len(warm.Windows) == 0 || len(warm.Labels) == 0 {
		t.Fatalf("test needs windows and labels to mutate: %+v", warm)
	}
	pristine := normalizeResult(t, warm)

	// Vandalize every mutable header the caller can reach.
	warm.Labels[0] = "corrupted"
	for i := range warm.Schedule {
		warm.Schedule[i].Label = "corrupted"
	}
	for i := range warm.ComposedOf {
		warm.ComposedOf[i] = "corrupted"
	}
	for i := range warm.Aggregate.Mixture {
		warm.Aggregate.Mixture[i].Label = "corrupted"
	}
	for i := range warm.Windows {
		warm.Windows[i].Events = -1
		if r := warm.Windows[i].AttackStage; r != nil {
			r.Label = "corrupted"
		}
		if r := warm.Windows[i].DDoS; r != nil {
			r.Label = "corrupted"
		}
		if h := warm.Windows[i].Hub; h != nil {
			h.Host = "corrupted"
		}
	}

	again, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := normalizeResult(t, again); got != pristine {
		t.Fatal("mutating a warm result leaked into the cache")
	}
}

// TestStreamEmitFailurePostFirstFrame pins the mid-stream error path:
// a consumer failing after frames have been delivered must get its
// own error back (not a bare context.Canceled), must see no further
// frames, and must leave no session behind.
func TestStreamEmitFailurePostFirstFrame(t *testing.T) {
	svc := New(WithDefaultWorkers(4))
	boom := errors.New("consumer hung up")
	var frames []string
	windowsSeen := 0
	req := NewGenerateRequest("background", WithSeed(5), WithParams(120, 40, 1), WithWindow(2))
	err := svc.GenerateStream(context.Background(), req, func(f StreamFrame) error {
		frames = append(frames, f.Type)
		if f.Type == FrameWindow {
			windowsSeen++
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the consumer's own error", err)
	}
	if windowsSeen != 1 {
		t.Fatalf("saw %d window frames, want exactly the failing one", windowsSeen)
	}
	if frames[len(frames)-1] != FrameWindow {
		t.Fatalf("frames after the failure: %v", frames)
	}
	if n := len(svc.Sessions()); n != 0 {
		t.Fatalf("%d sessions left behind", n)
	}
}

// TestPooledMatchesReference is the pooling property test: a pooled
// service hammered with concurrent mixed cold/warm/stream requests
// answers bit-identically (modulo timings and hit markers) to a
// pool-free reference service asked the same questions. Run under
// -race in CI, this is the aliasing detector for the whole arena
// design: any slab recycled while a response still referenced it
// shows up as a data race or a JSON mismatch.
func TestPooledMatchesReference(t *testing.T) {
	pooled := New(WithDefaultWorkers(4))
	ref := New(WithoutPooling(), WithDefaultWorkers(4))

	reqs := []GenerateRequest{
		NewGenerateRequest("scan", WithSeed(1), WithHosts(40), WithParams(8, 20, 1), WithWindow(2)),
		NewGenerateRequest("background", WithSeed(2), WithHosts(60), WithParams(10, 30, 1), WithWindow(5)),
		NewGenerateRequest("attack", WithSeed(3), WithHosts(20), WithParams(12, 4, 1), WithWindow(3)),
		NewGenerateRequest("overlay(background,scan)", WithSeed(4), WithHosts(40), WithParams(9, 15, 1), WithWindow(3), WithMatrices()),
	}

	const goroutines = 8
	const opsEach = 18
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				req := reqs[(g*7+i)%len(reqs)]
				if (g+i)%3 == 2 {
					// Stream op: collect both services' frames.
					var pf, rf []StreamFrame
					if err := pooled.GenerateStream(context.Background(), req, func(f StreamFrame) error {
						pf = append(pf, f)
						return nil
					}); err != nil {
						errc <- err
						return
					}
					if err := ref.GenerateStream(context.Background(), req, func(f StreamFrame) error {
						rf = append(rf, f)
						return nil
					}); err != nil {
						errc <- err
						return
					}
					if normalizeFrames(t, pf) != normalizeFrames(t, rf) {
						errc <- fmt.Errorf("goroutine %d op %d: pooled stream differs from reference", g, i)
						return
					}
					continue
				}
				// Batch op (cold or warm depending on interleaving).
				pr, err := pooled.Generate(context.Background(), req)
				if err != nil {
					errc <- err
					return
				}
				rr, err := ref.Generate(context.Background(), req)
				if err != nil {
					errc <- err
					return
				}
				if normalizeResult(t, pr) != normalizeResult(t, rr) {
					errc <- fmt.Errorf("goroutine %d op %d: pooled result differs from reference", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := pooled.ArenaStats(); st.Entries.Hits == 0 && st.Events.Hits == 0 {
		t.Fatalf("pooled service never reused a slab: %+v", st)
	}
	if st := ref.ArenaStats(); st.Entries.Gets != 0 || st.Events.Gets != 0 {
		t.Fatalf("reference service touched an arena: %+v", st)
	}
}
