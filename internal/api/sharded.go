package api

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Lock striping for the service's three hot shared tables — the
// result cache, the session registry, and the singleflight group.
// The single-mutex variants serialized every lookup behind one lock:
// under a concurrent mixed load the cheap warm path (a map read plus
// a recency bump) queued behind every other caller's map write. The
// sharded variants split each table into a power-of-two number of
// independently locked stripes; a key's stripe is a pure function of
// its hash, so two requests contend only when they collide on the
// same stripe. Nothing about results changes — sharding moves locks,
// not data — which is what the single-vs-sharded parity suite pins.

// ResultCache is the bounded result cache the service stores
// completed runs in. Implementations must be safe for concurrent
// use; values are treated as immutable by convention.
type ResultCache interface {
	// Get returns the cached value for key, refreshing its recency.
	Get(key string) (any, bool)
	// Put inserts or refreshes key, evicting beyond capacity.
	Put(key string, val any)
	// Stats snapshots the counters (with a per-shard breakdown when
	// the cache is sharded).
	Stats() CacheStats
}

// shardHash is FNV-1a over the key with a 64-bit avalanche
// finalizer. Raw FNV-1a disperses structured cache keys (long shared
// canonical prefixes, a few digits of difference at the tail) badly
// in its low bits — measured on real gen-keys it left every odd
// stripe empty and piled 5× the mean onto stripe 0 — and the stripe
// index is exactly those low bits. The murmur-style fmix64 mixes
// every input bit into the low ones, restoring a near-uniform stripe
// load for pennies.
func shardHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// KeyHash is the canonical key hash the service stripes by, exported
// so the router's consistent-hash ring places keys and virtual nodes
// in the same well-mixed space the cache stripes use.
func KeyHash(key string) uint64 { return shardHash(key) }

// nextPow2 rounds n up to a power of two (minimum 1), so a stripe
// index is a mask of the hash instead of a modulo.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// DefaultShards picks the stripe count from GOMAXPROCS: the next
// power of two at or above 4× the processor count, clamped to
// [4, 64]. Over-provisioning stripes relative to cores is standard
// lock-striping practice — the goal is that two runnable goroutines
// rarely hash to the same stripe, and idle stripes cost only a map
// header each. The floor keeps the sharded code path exercised even
// on a single-core runner; the ceiling bounds the per-shard capacity
// fragmentation of a small cache.
func DefaultShards() int {
	s := nextPow2(4 * runtime.GOMAXPROCS(0))
	if s < 4 {
		s = 4
	}
	if s > 64 {
		s = 64
	}
	return s
}

// shardedCache stripes the LRU result cache: each shard is an
// independent lruCache (own mutex, own recency list, own counters)
// holding its slice of the capacity. Recency and eviction are
// per-shard — a globally-LRU entry on a cold shard can outlive a
// hotter entry on a full shard — which is an accepted property of
// striped LRUs: the capacity bound and the hit path stay exact, only
// the eviction victim choice is approximate.
type shardedCache struct {
	shards []*lruCache
	mask   uint64
}

// newShardedCache builds a cache of the given total capacity striped
// over nshards (rounded up to a power of two). Capacity ≤ 0 disables
// caching exactly like the single-mutex cache did. The total
// capacity is split evenly with the remainder spread over the first
// shards, so the aggregate Capacity is exactly the requested one;
// the stripe count is clamped down so no shard ends up with zero
// slots (a capacity-1 cache is one stripe, not one lucky stripe and
// three that silently never store).
func newShardedCache(capacity, nshards int) *shardedCache {
	n := nextPow2(max(1, nshards))
	for capacity > 0 && n > capacity {
		n >>= 1
	}
	c := &shardedCache{shards: make([]*lruCache, n), mask: uint64(n - 1)}
	for i := range c.shards {
		per := 0
		if capacity > 0 {
			per = capacity / n
			if i < capacity%n {
				per++
			}
		}
		c.shards[i] = newLRUCache(per)
	}
	return c
}

func (c *shardedCache) shard(key string) *lruCache {
	return c.shards[shardHash(key)&c.mask]
}

// Get returns the cached value for key, refreshing its recency
// within the key's shard.
func (c *shardedCache) Get(key string) (any, bool) { return c.shard(key).get(key) }

// Put inserts or refreshes key in its shard, evicting that shard's
// least recently used entries beyond its capacity slice.
func (c *shardedCache) Put(key string, val any) { c.shard(key).put(key, val) }

// Stats aggregates the shard counters and carries the per-shard
// breakdown for observability (/v1/stats).
func (c *shardedCache) Stats() CacheStats {
	var agg CacheStats
	agg.Shards = make([]CacheStats, len(c.shards))
	for i, sh := range c.shards {
		st := sh.stats()
		agg.Shards[i] = st
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Len += st.Len
		agg.Capacity += st.Capacity
	}
	return agg
}

// shardedFlights stripes the singleflight group the same way. A
// canonical key always hashes to the same stripe, so the coalescing
// invariant — at most one in-flight computation per key — holds
// per-shard exactly as it held globally; striping only splits the
// bookkeeping lock that every cold request briefly takes.
type shardedFlights struct {
	shards []flightGroup
	mask   uint64
}

func newShardedFlights(nshards int) *shardedFlights {
	n := nextPow2(max(1, nshards))
	return &shardedFlights{shards: make([]flightGroup, n), mask: uint64(n - 1)}
}

func (g *shardedFlights) do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	return g.shards[shardHash(key)&g.mask].do(ctx, key, fn)
}

// sessionIDSource hands out globally unique session IDs. A single
// service owns its own source; a router pool shares one source
// across all its workers so an ID names one session process-wide and
// operator cancellation can be broadcast unambiguously.
type sessionIDSource = atomic.Int64
