package api

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
)

// TestShardedCacheAggregateStats: counters and occupancy aggregate
// exactly across stripes, and the per-shard breakdown sums to the
// top-level numbers.
func TestShardedCacheAggregateStats(t *testing.T) {
	c := newShardedCache(64, 8)
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(c.shards))
	}
	for i := 0; i < 40; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	hits, misses := 0, 0
	for i := 0; i < 60; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); ok {
			hits++
		} else {
			misses++
		}
	}
	if hits != 40 || misses != 20 {
		t.Fatalf("hits=%d misses=%d, want 40/20", hits, misses)
	}
	st := c.Stats()
	if st.Hits != 40 || st.Misses != 20 || st.Len != 40 || st.Capacity != 64 {
		t.Errorf("aggregate stats = %+v", st)
	}
	if len(st.Shards) != 8 {
		t.Fatalf("breakdown has %d shards, want 8", len(st.Shards))
	}
	var sum CacheStats
	for _, sh := range st.Shards {
		sum.Hits += sh.Hits
		sum.Misses += sh.Misses
		sum.Evictions += sh.Evictions
		sum.Len += sh.Len
		sum.Capacity += sh.Capacity
	}
	if sum.Hits != st.Hits || sum.Misses != st.Misses || sum.Len != st.Len || sum.Capacity != st.Capacity {
		t.Errorf("shard breakdown sums to %+v, aggregate says %+v", sum, st)
	}
}

// TestShardedCacheTinyCapacity: a capacity smaller than the stripe
// count clamps the stripes instead of minting zero-capacity shards
// that silently never store.
func TestShardedCacheTinyCapacity(t *testing.T) {
	c := newShardedCache(1, 16)
	if len(c.shards) != 1 {
		t.Fatalf("capacity-1 cache built %d shards, want 1", len(c.shards))
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		c.Put(key, i)
		if v, ok := c.Get(key); !ok || v.(int) != i {
			t.Fatalf("capacity-1 cache dropped the entry it just stored (key %s)", key)
		}
	}
	if st := c.Stats(); st.Len != 1 || st.Capacity != 1 {
		t.Errorf("stats = %+v, want len=1 cap=1", st)
	}
}

// TestShardedCacheZeroCapacityDisables mirrors the flat-cache
// contract: capacity ≤ 0 stores nothing on any shard.
func TestShardedCacheZeroCapacityDisables(t *testing.T) {
	c := newShardedCache(0, 8)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity sharded cache stored an entry")
	}
	if st := c.Stats(); st.Len != 0 || st.Capacity != 0 || st.Misses != 1 {
		t.Errorf("stats = %+v, want len=0 cap=0 misses=1", st)
	}
}

// TestShardedCacheConcurrentMixed hammers one cache from many
// goroutines under -race: correctness is "no race, no lost own
// writes within a goroutine's private key space".
func TestShardedCacheConcurrentMixed(t *testing.T) {
	c := newShardedCache(1024, DefaultShards())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-%d", g, i%8)
				c.Put(key, i)
				if _, ok := c.Get(key); !ok {
					t.Errorf("goroutine %d lost its own fresh write %s", g, key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Len == 0 || st.Len > 1024 {
		t.Errorf("post-churn len = %d, want within (0, 1024]", st.Len)
	}
}

// TestShardHashDispersesRealKeys pins the avalanche finalizer: raw
// FNV-1a left every odd stripe empty on real structured cache keys.
// Over 1024 gen-shaped keys and 32 stripes (mean 32/stripe), every
// stripe must see traffic and none may take more than 3× the mean.
func TestShardHashDispersesRealKeys(t *testing.T) {
	counts := make([]int, 32)
	for i := 0; i < 1024; i++ {
		key := fmt.Sprintf("%s|gen|spec=bench-%d|n=200|seed=%d|dur=40|rate=8|scale=4|win=10", Version, i, i)
		counts[shardHash(key)&31]++
	}
	for stripe, n := range counts {
		if n == 0 {
			t.Errorf("stripe %d got no keys (low-bit clustering is back)", stripe)
		}
		if n > 96 {
			t.Errorf("stripe %d got %d of 1024 keys (mean 32)", stripe, n)
		}
	}
}

// TestSessionSnapshotSortedAcrossShards pins the satellite fix:
// sessions live on different stripes, but the snapshot comes back
// ordered by ID, so /v1/sessions output is stable.
func TestSessionSnapshotSortedAcrossShards(t *testing.T) {
	store := newSessionStore(8, nil)
	var ends []func()
	for i := 0; i < 50; i++ {
		_, end := store.Begin(context.Background(), "test", fmt.Sprintf("key-%d", i))
		ends = append(ends, end)
	}
	snap := store.Snapshot()
	if len(snap) != 50 {
		t.Fatalf("snapshot has %d sessions, want 50", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID }) {
		t.Errorf("snapshot not sorted by ID: %v", snap)
	}
	ids := map[int64]bool{}
	for _, s := range snap {
		if ids[s.ID] {
			t.Errorf("duplicate session ID %d", s.ID)
		}
		ids[s.ID] = true
	}
	for _, end := range ends {
		end()
	}
	if n := store.Len(); n != 0 {
		t.Errorf("store holds %d sessions after every end(), want 0", n)
	}
}

// TestSessionCancelByIDAcrossShards: an operator cancel lands on the
// right stripe and surfaces ErrSessionCancelled as the context
// cause, whichever shard the session lives on.
func TestSessionCancelByIDAcrossShards(t *testing.T) {
	store := newSessionStore(8, nil)
	type live struct {
		ctx context.Context
		end func()
	}
	byID := map[int64]live{}
	for i := 0; i < 32; i++ {
		ctx, end := store.Begin(context.Background(), "test", "k")
		byID[store.Snapshot()[len(byID)].ID] = live{ctx, end}
	}
	for id, l := range byID {
		if !store.CancelByID(id) {
			t.Fatalf("CancelByID(%d) did not find the session", id)
		}
		<-l.ctx.Done()
		if cause := context.Cause(l.ctx); !errors.Is(cause, ErrSessionCancelled) {
			t.Errorf("session %d cause = %v, want ErrSessionCancelled", id, cause)
		}
		l.end()
		if store.CancelByID(id) {
			t.Errorf("CancelByID(%d) found a finished session", id)
		}
	}
}

// TestSessionChurnAndCancelRace is the cross-shard spawn/cancel race
// under -race: goroutines churn sessions while a canceller fires
// CancelByID at random live-or-dead IDs and a reader snapshots. The
// store must stay consistent and drain to empty.
func TestSessionChurnAndCancelRace(t *testing.T) {
	store := newSessionStore(8, nil)
	var churn, aux sync.WaitGroup
	stop := make(chan struct{})

	// Churners: begin/end in tight loops; an operator cancel racing
	// a natural end() must never double-release or resurrect.
	for g := 0; g < 8; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for i := 0; i < 300; i++ {
				_, end := store.Begin(context.Background(), "churn", fmt.Sprintf("g%d", g))
				end()
				end() // idempotent: double end must be harmless
			}
		}(g)
	}
	// Canceller: sprays IDs across the live range, hitting a mix of
	// in-flight and already-finished sessions.
	aux.Add(1)
	go func() {
		defer aux.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			store.CancelByID(int64(rng.Intn(8*300) + 1))
		}
	}()
	// Reader: snapshots must always be ID-sorted, even mid-churn.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := store.Snapshot()
			if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID }) {
				t.Error("mid-churn snapshot not sorted by ID")
				return
			}
		}
	}()

	churn.Wait()
	close(stop)
	aux.Wait()
	if n := store.Len(); n != 0 {
		t.Errorf("store holds %d sessions after churn, want 0", n)
	}
}

// TestServiceSharesSessionIDSource: two services on one ID source
// never mint the same session ID — the invariant a router pool needs
// for process-unique cancellation.
func TestServiceSharesSessionIDSource(t *testing.T) {
	var ids sessionIDSource
	a := newSessionStore(4, &ids)
	b := newSessionStore(4, &ids)
	var ends []func()
	for i := 0; i < 20; i++ {
		_, endA := a.Begin(context.Background(), "a", "k")
		_, endB := b.Begin(context.Background(), "b", "k")
		ends = append(ends, endA, endB)
	}
	seen := map[int64]string{}
	for _, s := range a.Snapshot() {
		seen[s.ID] = "a"
	}
	for _, s := range b.Snapshot() {
		if who, dup := seen[s.ID]; dup {
			t.Fatalf("ID %d minted by both %s and b", s.ID, who)
		}
	}
	for _, end := range ends {
		end()
	}
}

// TestShardedFlightsCoalescePerKey: the striped singleflight still
// coalesces concurrent callers of one key onto one execution.
func TestShardedFlightsCoalescePerKey(t *testing.T) {
	g := newShardedFlights(8)
	var mu sync.Mutex
	runs := 0
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.do(context.Background(), "same-key", func() (any, error) {
				mu.Lock()
				runs++
				mu.Unlock()
				<-gate
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("do = %v, %v", v, err)
			}
		}()
	}
	// Let every goroutine reach the flight group before releasing the
	// leader; a tiny sleep-free sync: close the gate once someone is
	// inside (runs is incremented by the single leader only).
	for {
		mu.Lock()
		r := runs
		mu.Unlock()
		if r >= 1 {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if runs != 1 {
		t.Errorf("fn ran %d times for one key, want 1 (coalesced)", runs)
	}
}
