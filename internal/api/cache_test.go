package api

import "testing"

func TestLRUCacheHitMissCounters(t *testing.T) {
	c := newLRUCache(4)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put("a", 1)
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get after put = %v, %v", v, ok)
	}
	c.get("b") // miss
	st := c.stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 || st.Len != 1 || st.Capacity != 4 {
		t.Errorf("stats = %+v, want hits=1 misses=2 evictions=0 len=1 cap=4", st)
	}
}

func TestLRUCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	// Touch "a" so "b" is the LRU entry when "c" arrives.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.put("c", 3)
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("new entry c missing")
	}
	if st := c.stats(); st.Evictions != 1 || st.Len != 2 {
		t.Errorf("stats = %+v, want evictions=1 len=2", st)
	}
}

func TestLRUCachePutRefreshesExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("a", 10) // refresh, not a new entry
	c.put("c", 3)  // should evict b, the LRU
	if v, ok := c.get("a"); !ok || v.(int) != 10 {
		t.Errorf("refreshed entry = %v, %v; want 10", v, ok)
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived; refresh of a did not update recency")
	}
}

func TestLRUCacheZeroCapacityDisables(t *testing.T) {
	c := newLRUCache(0)
	c.put("a", 1)
	if _, ok := c.get("a"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
	if st := c.stats(); st.Len != 0 || st.Misses != 1 {
		t.Errorf("stats = %+v, want len=0 misses=1", st)
	}
}
