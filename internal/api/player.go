package api

import (
	"context"
	"sort"
	"strings"

	"repro/internal/player"
)

// Player-layer wire surface. The façade exposes internal/player's
// engine behind the same Core discipline as everything else: requests
// are plain JSON structs, results carry the api version, and errors
// wrap the player package's sentinels (which serve maps to 400, 404,
// 409, and 429). Every result is a pure function of store state and
// the request sequence — no timestamps — so a sharded pool or a
// cluster proxy serves player traffic bit-identically to a single
// process.

// PlayerCreateRequest registers a new player. A zero Course enrolls
// the default campaign.
type PlayerCreateRequest struct {
	ID     string           `json:"id"`
	Name   string           `json:"name,omitempty"`
	Course player.CourseRef `json:"course,omitzero"`
}

// PlayerGetRequest names a player.
type PlayerGetRequest struct {
	ID string `json:"id"`
}

// AttemptStartRequest starts a quiz attempt for a player on the
// module the embedded ref renders (spec or pattern).
type AttemptStartRequest struct {
	Player string `json:"player"`
	player.ModuleRef
}

// AttemptSubmitRequest answers a pending attempt.
type AttemptSubmitRequest struct {
	Player  string `json:"player"`
	Attempt int64  `json:"attempt"`
	Answer  int    `json:"answer"`
}

// ProgressRequest reads (Unit empty) or advances (Unit set) a
// player's course progress.
type ProgressRequest struct {
	Player string `json:"player"`
	Unit   string `json:"unit,omitempty"`
}

// PlayerResult is a player account view plus the api version.
type PlayerResult struct {
	Version string `json:"version"`
	player.View
}

// AttemptResult is a started attempt plus the api version.
type AttemptResult struct {
	Version string `json:"version"`
	player.Attempt
}

// SubmitResult is a graded submission plus the api version.
type SubmitResult struct {
	Version string `json:"version"`
	player.Submission
}

// ProgressResult is a progress summary plus the api version.
type ProgressResult struct {
	Version string `json:"version"`
	player.ProgressView
}

// MasteryResult is the cohort item-statistics dashboard, hardest
// first.
type MasteryResult struct {
	Version string               `json:"version"`
	Items   []player.MasteryItem `json:"items"`
}

// WithPlayers installs the player engine the service fronts. Without
// it, New builds a default engine over an in-memory store with no
// rate limit.
func WithPlayers(e *player.Engine) Option { return func(s *Service) { s.players = e } }

// Players returns the service's player engine (shared, never nil
// after New).
func (svc *Service) Players() *player.Engine { return svc.players }

// PlayerCreate registers a player.
func (svc *Service) PlayerCreate(ctx context.Context, req PlayerCreateRequest) (*PlayerResult, error) {
	v, err := svc.players.Create(ctx, player.Record{ID: strings.TrimSpace(req.ID), Name: req.Name, Course: req.Course})
	if err != nil {
		return nil, err
	}
	return &PlayerResult{Version: Version, View: v}, nil
}

// PlayerGet returns a player's account view.
func (svc *Service) PlayerGet(ctx context.Context, req PlayerGetRequest) (*PlayerResult, error) {
	v, err := svc.players.Get(ctx, req.ID)
	if err != nil {
		return nil, err
	}
	return &PlayerResult{Version: Version, View: v}, nil
}

// PlayerAttemptStart starts a quiz attempt.
func (svc *Service) PlayerAttemptStart(ctx context.Context, req AttemptStartRequest) (*AttemptResult, error) {
	a, err := svc.players.StartAttempt(ctx, req.Player, req.ModuleRef)
	if err != nil {
		return nil, err
	}
	return &AttemptResult{Version: Version, Attempt: a}, nil
}

// PlayerAttemptSubmit grades a pending attempt.
func (svc *Service) PlayerAttemptSubmit(ctx context.Context, req AttemptSubmitRequest) (*SubmitResult, error) {
	s, err := svc.players.Submit(ctx, req.Player, req.Attempt, req.Answer)
	if err != nil {
		return nil, err
	}
	return &SubmitResult{Version: Version, Submission: s}, nil
}

// PlayerProgress reads or advances a player's course progress.
func (svc *Service) PlayerProgress(ctx context.Context, req ProgressRequest) (*ProgressResult, error) {
	var (
		v   player.ProgressView
		err error
	)
	if strings.TrimSpace(req.Unit) == "" {
		v, err = svc.players.Progress(ctx, req.Player)
	} else {
		v, err = svc.players.Advance(ctx, req.Player, req.Unit)
	}
	if err != nil {
		return nil, err
	}
	return &ProgressResult{Version: Version, ProgressView: v}, nil
}

// PlayerMastery aggregates cohort item statistics across every
// player.
func (svc *Service) PlayerMastery(ctx context.Context) (*MasteryResult, error) {
	items, err := svc.players.Mastery(ctx)
	if err != nil {
		return nil, err
	}
	return &MasteryResult{Version: Version, Items: items}, nil
}

// playerRouteKey is the routing identity of per-player requests: the
// player's whole state lives behind one key, so a sharded pool or
// cluster sends every request touching one player to the same worker
// — the property that keeps pending attempts and store state
// coherent.
func playerRouteKey(id string) string { return "player|" + strings.TrimSpace(id) }

// RouteKey routes by player identity.
func (r PlayerCreateRequest) RouteKey() string { return playerRouteKey(r.ID) }

// RouteKey routes by player identity.
func (r PlayerGetRequest) RouteKey() string { return playerRouteKey(r.ID) }

// RouteKey routes by player identity.
func (r AttemptStartRequest) RouteKey() string { return playerRouteKey(r.Player) }

// RouteKey routes by player identity.
func (r AttemptSubmitRequest) RouteKey() string { return playerRouteKey(r.Player) }

// RouteKey routes by player identity.
func (r ProgressRequest) RouteKey() string { return playerRouteKey(r.Player) }

// MergeMastery re-aggregates mastery items from several shards into
// one hardest-first list: attempts, corrects, and distractor counts
// sum by prompt, and the result is re-sorted by increasing difficulty
// with the prompt as tiebreak — the same canonical order every shard
// produces locally, so merged output is indistinguishable from a
// single store's.
func MergeMastery(parts ...[]player.MasteryItem) []player.MasteryItem {
	byPrompt := make(map[string]*player.MasteryItem)
	var order []string
	for _, part := range parts {
		for _, it := range part {
			agg, ok := byPrompt[it.Prompt]
			if !ok {
				agg = &player.MasteryItem{Prompt: it.Prompt}
				byPrompt[it.Prompt] = agg
				order = append(order, it.Prompt)
			}
			agg.Attempts += it.Attempts
			agg.Correct += it.Correct
			for text, n := range it.Distractor {
				if agg.Distractor == nil {
					agg.Distractor = make(map[string]int)
				}
				agg.Distractor[text] += n
			}
		}
	}
	out := make([]player.MasteryItem, 0, len(order))
	for _, prompt := range order {
		it := byPrompt[prompt]
		if it.Attempts > 0 {
			it.Difficulty = float64(it.Correct) / float64(it.Attempts)
		}
		out = append(out, *it)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Difficulty != out[b].Difficulty {
			return out[a].Difficulty < out[b].Difficulty
		}
		return out[a].Prompt < out[b].Prompt
	})
	return out
}
