package api

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/netsim"
)

// Version is the wire version of the request/response contract.
// twserve mounts every route under it and results carry it.
const Version = "v1"

// ErrInvalidRequest marks request validation failures — the caller
// sent something no configuration could give meaning to. twserve
// maps it to HTTP 400; everything else is a 500.
var ErrInvalidRequest = errors.New("api: invalid request")

// Request bounds: generous enough for every documented workload
// (the perf suite benches 10k-host networks), small enough that one
// unauthenticated request cannot exhaust a served deployment by
// asking for a million-host network or a billion windows. The
// remaining work a maxed-out request can demand is large but
// cancellable — it holds a worker pool, not the heap.
const (
	// MaxHosts bounds the network size.
	MaxHosts = 10_000
	// MaxDuration bounds the scenario length in seconds.
	MaxDuration = 1e6
	// MaxRate bounds the intensity hint in events/sec.
	MaxRate = 1e6
	// MaxScale bounds the volume multiplier.
	MaxScale = 1 << 20
	// MaxWindows bounds how many aggregation windows one request may
	// split its run into.
	MaxWindows = 10_000
	// MaxEventBudget bounds the product duration × rate × scale — a
	// proxy for the event volume a run buffers. Individual caps on
	// each factor still compose into ~10^18 events; the budget keeps
	// the product itself at a size one server can hold in memory.
	MaxEventBudget = 1e8
)

// GenerateRequest asks for a full scenario run: generation, optional
// windowing with per-window readings, and the aggregate sparse-path
// analysis. The zero value of every optional field selects the
// documented default, so GenerateRequest{Spec: "ddos"} is a complete
// request.
type GenerateRequest struct {
	// Spec names what to run: a catalog scenario name ("ddos") or a
	// composition expression ("overlay(background, scan)"). Required.
	// The service never reads the filesystem — front-ends resolve
	// file arguments with ResolveSpecArg first.
	Spec string `json:"spec"`
	// Hosts sizes the network (≤ 10 selects the paper's standard
	// 10-host network).
	Hosts int `json:"hosts,omitempty"`
	// Seed is the deterministic run seed.
	Seed int64 `json:"seed,omitempty"`
	// Workers sets the generation worker count (0 = all CPUs). It is
	// deliberately absent from the cache key: the engine's output is
	// identical for any worker count.
	Workers int `json:"workers,omitempty"`
	// Duration, Rate, and Scale are the scenario parameters
	// (netsim.Params); zero fields take the engine defaults.
	Duration float64 `json:"duration,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Scale    int     `json:"scale,omitempty"`
	// Window, when positive, adds the per-window spatial-temporal
	// view (WindowResult per interval) to the response.
	Window float64 `json:"window,omitempty"`
	// IncludeMatrices adds dense cell grids to the JSON encoding of
	// the windows and the aggregate — off by default because they are
	// n² per window on the wire.
	IncludeMatrices bool `json:"include_matrices,omitempty"`
}

// GenerateOption mutates a GenerateRequest under construction: the
// options pattern that replaces the positional-parameter sprawl the
// CLIs used to hand-wire.
type GenerateOption func(*GenerateRequest)

// NewGenerateRequest builds a request for spec with the given
// options applied in order.
func NewGenerateRequest(spec string, opts ...GenerateOption) GenerateRequest {
	r := GenerateRequest{Spec: spec}
	for _, opt := range opts {
		opt(&r)
	}
	return r
}

// WithHosts sets the network size.
func WithHosts(n int) GenerateOption { return func(r *GenerateRequest) { r.Hosts = n } }

// WithSeed sets the run seed.
func WithSeed(seed int64) GenerateOption { return func(r *GenerateRequest) { r.Seed = seed } }

// WithWorkers sets the generation worker count (0 = all CPUs).
func WithWorkers(n int) GenerateOption { return func(r *GenerateRequest) { r.Workers = n } }

// WithParams sets the scenario parameters (zero fields keep the
// engine defaults).
func WithParams(duration, rate float64, scale int) GenerateOption {
	return func(r *GenerateRequest) {
		r.Duration, r.Rate, r.Scale = duration, rate, scale
	}
}

// WithWindow enables the per-window view at the given aggregation
// window length in seconds.
func WithWindow(seconds float64) GenerateOption {
	return func(r *GenerateRequest) { r.Window = seconds }
}

// WithMatrices includes dense cell grids in the JSON encoding.
func WithMatrices() GenerateOption {
	return func(r *GenerateRequest) { r.IncludeMatrices = true }
}

// params assembles the netsim parameters the request configures.
func (r GenerateRequest) params() netsim.Params {
	return netsim.Params{Duration: r.Duration, Rate: r.Rate, Scale: r.Scale}
}

// validate rejects fields no run could give meaning to. Zero values
// are always acceptable (they mean "default"); only actively bad
// values — negatives, NaN, ±Inf — fail.
func (r GenerateRequest) validate() error {
	if strings.TrimSpace(r.Spec) == "" {
		return fmt.Errorf("%w: empty spec", ErrInvalidRequest)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"duration", r.Duration}, {"rate", r.Rate}, {"window", r.Window},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("%w: %s must be a finite non-negative number, got %g", ErrInvalidRequest, f.name, f.v)
		}
	}
	if r.Scale < 0 {
		return fmt.Errorf("%w: scale must not be negative, got %d", ErrInvalidRequest, r.Scale)
	}
	if r.Hosts < 0 {
		return fmt.Errorf("%w: hosts must not be negative, got %d", ErrInvalidRequest, r.Hosts)
	}
	switch {
	case r.Hosts > MaxHosts:
		return fmt.Errorf("%w: hosts %d exceeds the %d limit", ErrInvalidRequest, r.Hosts, MaxHosts)
	case r.Duration > MaxDuration:
		return fmt.Errorf("%w: duration %g exceeds the %g limit", ErrInvalidRequest, r.Duration, float64(MaxDuration))
	case r.Rate > MaxRate:
		return fmt.Errorf("%w: rate %g exceeds the %g limit", ErrInvalidRequest, r.Rate, float64(MaxRate))
	case r.Scale > MaxScale:
		return fmt.Errorf("%w: scale %d exceeds the %d limit", ErrInvalidRequest, r.Scale, MaxScale)
	}
	p := r.params().Normalized()
	if budget := p.Duration * p.Rate * float64(p.Scale); budget > MaxEventBudget {
		return fmt.Errorf("%w: duration×rate×scale demands ~%.3g events (limit %g)",
			ErrInvalidRequest, budget, float64(MaxEventBudget))
	}
	if r.Window > 0 {
		if windows := p.Duration / r.Window; windows > MaxWindows {
			return fmt.Errorf("%w: window %g splits the run into %.0f windows (limit %d)",
				ErrInvalidRequest, r.Window, windows, MaxWindows)
		}
	}
	return nil
}

// paramsKey is the canonical identity shared by every cached kind:
// the canonical spec string plus every parameter the traffic depends
// on, normalized so spellings that configure the same run collide.
// The worker count is deliberately absent — the engine is
// worker-count deterministic.
func paramsKey(kind, canonicalSpec string, hosts int, seed int64, p netsim.Params) string {
	pn := p.Normalized()
	return fmt.Sprintf("%s|%s|spec=%s|n=%d|seed=%d|dur=%g|rate=%g|scale=%d",
		Version, kind, canonicalSpec, hosts, seed, pn.Duration, pn.Rate, pn.Scale)
}

// cacheKey is the canonical identity of the result this request
// computes. IncludeMatrices is absent because it only changes the
// JSON encoding — the cell grids are derived per call, never stored.
func (r GenerateRequest) cacheKey(canonicalSpec string, hosts int) string {
	return paramsKey("gen", canonicalSpec, hosts, r.Seed, r.params()) +
		fmt.Sprintf("|win=%g", r.Window)
}

// AnalyzeRequest asks for the pattern-classifier reading of a
// traffic matrix: either generate-and-analyze a spec (served from
// the same cache as Generate) or analyze a matrix posted directly —
// the "what is this traffic I captured?" path.
type AnalyzeRequest struct {
	// Spec, when set, generates the scenario and analyzes its
	// aggregate. Mutually exclusive with Matrix.
	Spec string `json:"spec,omitempty"`
	// Matrix, when set, is analyzed as posted: square rows of
	// non-negative packet counts.
	Matrix [][]int `json:"matrix,omitempty"`
	// BlueEnd and GreyEnd optionally place the blue→grey→red zone
	// boundaries for a posted matrix (host order is assumed zoned).
	// Zero selects a standard layout for the matrix size.
	BlueEnd int `json:"blue_end,omitempty"`
	GreyEnd int `json:"grey_end,omitempty"`
	// The remaining fields parameterize the Spec path exactly like
	// GenerateRequest.
	Hosts    int     `json:"hosts,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Scale    int     `json:"scale,omitempty"`
}

// ModuleRequest asks for a playable learning module: either
// synthesized from a scenario run (Spec) or built from a paper
// figure panel (Pattern).
type ModuleRequest struct {
	// Spec names a scenario or composition to synthesize from.
	// Mutually exclusive with Pattern.
	Spec string `json:"spec,omitempty"`
	// Pattern is a figure-catalog pattern ID (see Catalog.Patterns),
	// e.g. "fig9c-ddos-attack".
	Pattern string `json:"pattern,omitempty"`
	// Scenario-path parameters, as in GenerateRequest.
	Hosts    int     `json:"hosts,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Scale    int     `json:"scale,omitempty"`
}

// CampaignRequest asks for a whole synthesized course: an overview
// lesson plus a window-by-window timeline lesson.
type CampaignRequest struct {
	// Spec names the scenario or composition to build the course
	// from. Required.
	Spec string `json:"spec"`
	// Window is the timeline aggregation window in seconds.
	// Required (positive).
	Window float64 `json:"window"`
	// Scenario parameters, as in GenerateRequest.
	Hosts    int     `json:"hosts,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Scale    int     `json:"scale,omitempty"`
}

// resolveSpec turns a request's spec string into a scenario. Bare
// names resolve against the catalog with a helpful listing on miss;
// anything containing spec syntax goes through the composition
// grammar. The filesystem is never touched.
func resolveSpec(spec string) (netsim.Scenario, error) {
	spec = strings.TrimSpace(spec)
	if s, ok := netsim.LookupScenario(spec); ok {
		return s, nil
	}
	if !strings.ContainsAny(spec, "()@=,") {
		return nil, fmt.Errorf("%w: unknown scenario %q; available: %s (or compose one with a spec expression)",
			ErrInvalidRequest, spec, strings.Join(catalogNames(), ", "))
	}
	s, err := netsim.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
	}
	return s, nil
}

// catalogNames lists the registered scenario names in catalog order.
func catalogNames() []string {
	var names []string
	for _, s := range netsim.Scenarios() {
		names = append(names, s.Name())
	}
	return names
}

// ResolveSpecArg resolves a CLI -spec argument — an inline
// expression, a bare catalog name, or a path to a spec file — into
// the canonical spec string a request carries. File access stays in
// the front-end (readFile is typically os.ReadFile); the service
// itself never reads the filesystem, so a served deployment cannot
// be pointed at arbitrary paths.
func ResolveSpecArg(arg string, readFile func(string) ([]byte, error)) (string, error) {
	s, err := netsim.LoadSpec(arg, readFile)
	if err != nil {
		return "", err
	}
	return netsim.SpecString(s), nil
}
