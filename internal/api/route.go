package api

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
)

// Routing identity. A spec-hash router in front of several Service
// workers must send every spelling of one run to the same worker, or
// worker-local caches and singleflight coalescing stop composing
// across clients. RouteKey therefore canonicalizes exactly like the
// cache key does — netsim.SpecString of the resolved scenario plus
// the normalized parameters — so "overlay(background,scan)" and
// "overlay( background , scan )" route identically, and a Generate
// and an Analyze of the same spec land on the same worker and share
// one cached run.
//
// RouteKey never fails: a spec that does not resolve routes by its
// raw text, and the chosen worker then reports the validation error
// the caller would have gotten anyway.

// RouteKey returns the canonical routing identity of the request.
func (r GenerateRequest) RouteKey() string {
	scn, err := resolveSpec(r.Spec)
	if err != nil {
		return "invalid|" + strings.TrimSpace(r.Spec)
	}
	return r.cacheKey(netsim.SpecString(scn), netsim.ScaledNetwork(r.Hosts).Len())
}

// RouteKey routes the spec path exactly like the Generate it turns
// into; a posted matrix is stateless, so it routes by shape and a
// sampled checksum just to spread load.
func (r AnalyzeRequest) RouteKey() string {
	if strings.TrimSpace(r.Spec) != "" {
		return GenerateRequest{
			Spec: r.Spec, Hosts: r.Hosts, Seed: r.Seed,
			Duration: r.Duration, Rate: r.Rate, Scale: r.Scale,
		}.RouteKey()
	}
	// Sample up to 64 cells so two different matrices of one size
	// usually hash apart without walking n² cells on the router.
	sum, n := 0, len(r.Matrix)
	stride := n*n/64 + 1
	for k := 0; k < n*n; k += stride {
		row := r.Matrix[k/n]
		if j := k % n; j < len(row) {
			sum += row[j] * (k + 1)
		}
	}
	return fmt.Sprintf("matrix|n=%d|s=%d", n, sum)
}

// RouteKey routes spec-path modules like their cached identity and
// pattern-path modules by pattern ID.
func (r ModuleRequest) RouteKey() string {
	if strings.TrimSpace(r.Pattern) != "" {
		return "pattern|" + strings.TrimSpace(r.Pattern)
	}
	scn, err := resolveSpec(r.Spec)
	if err != nil {
		return "invalid|" + strings.TrimSpace(r.Spec)
	}
	p := netsim.Params{Duration: r.Duration, Rate: r.Rate, Scale: r.Scale}
	return paramsKey("module", netsim.SpecString(scn), netsim.ScaledNetwork(r.Hosts).Len(), r.Seed, p)
}

// RouteKey routes campaigns by the same identity their cache entry
// uses.
func (r CampaignRequest) RouteKey() string {
	scn, err := resolveSpec(r.Spec)
	if err != nil {
		return "invalid|" + strings.TrimSpace(r.Spec)
	}
	p := netsim.Params{Duration: r.Duration, Rate: r.Rate, Scale: r.Scale}
	return paramsKey("campaign", netsim.SpecString(scn), netsim.ScaledNetwork(r.Hosts).Len(), r.Seed, p) +
		fmt.Sprintf("|win=%g", r.Window)
}
