package api

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/modules"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/player"
)

// DefaultCacheCapacity bounds the result cache when no option
// overrides it.
const DefaultCacheCapacity = 64

// Service is the façade instance: one per process (twserve) or per
// command invocation (the CLIs). All methods are safe for concurrent
// use.
type Service struct {
	cacheCap   int
	workers    int
	shards     int
	noPooling  bool
	sessionIDs *sessionIDSource
	cache      ResultCache
	sessions   SessionStore
	flights    *shardedFlights
	// players is the account layer (see internal/player): mutable
	// per-user state served beside — never through — the result
	// cache.
	players *player.Engine
	// arena pools the generation pipeline's builder storage across
	// requests (nil when pooling is disabled — every netsim arena
	// entry point treats a nil arena as "allocate fresh", and the two
	// modes are bit-identical; see the pooled-vs-reference property
	// suite). Results handed to callers never alias arena storage:
	// CSR outputs are always freshly allocated, which is what lets
	// the LRU cache hold them forever without the arena ever
	// reclaiming a cached buffer.
	arena *netsim.Arena
}

// Option configures a Service under construction.
type Option func(*Service)

// WithCacheCapacity bounds the result cache to n entries; n ≤ 0
// disables caching.
func WithCacheCapacity(n int) Option { return func(s *Service) { s.cacheCap = n } }

// WithDefaultWorkers sets the worker count used when a request
// leaves Workers at 0 (which otherwise selects all CPUs).
func WithDefaultWorkers(n int) Option { return func(s *Service) { s.workers = n } }

// WithoutPooling disables the buffer arena: every request allocates
// fresh, exactly the pre-arena behaviour. The output is bit-identical
// either way; the option exists for A/B benchmarking and as the
// reference side of the pooling parity suite.
func WithoutPooling() Option { return func(s *Service) { s.noPooling = true } }

// WithShards sets the lock-stripe count for the result cache, the
// session store, and the singleflight group (rounded up to a power
// of two). n ≤ 0 selects DefaultShards. Sharding never changes
// results — WithShards(1) is the single-mutex reference behaviour
// the parity suite compares against.
func WithShards(n int) Option { return func(s *Service) { s.shards = n } }

// WithSessionIDs makes the service draw session IDs from a shared
// atomic counter instead of a private one, so several Service
// workers behind one router hand out process-unique IDs and an
// operator's CancelSession(id) names exactly one run.
func WithSessionIDs(ids *atomic.Int64) Option { return func(s *Service) { s.sessionIDs = ids } }

// New builds a Service with the given options.
func New(opts ...Option) *Service {
	s := &Service{cacheCap: DefaultCacheCapacity}
	for _, opt := range opts {
		opt(s)
	}
	if s.shards <= 0 {
		s.shards = DefaultShards()
	}
	s.cache = newShardedCache(s.cacheCap, s.shards)
	s.sessions = newSessionStore(s.shards, s.sessionIDs)
	s.flights = newShardedFlights(s.shards)
	if !s.noPooling {
		s.arena = netsim.NewArena()
	}
	if s.players == nil {
		s.players = player.NewEngine(player.NewMemStore())
	}
	return s
}

// CacheStats snapshots the result cache counters (with the
// per-shard breakdown).
func (svc *Service) CacheStats() CacheStats { return svc.cache.Stats() }

// ArenaStats snapshots the buffer arena's pool counters (zero when
// pooling is disabled).
func (svc *Service) ArenaStats() netsim.ArenaStats { return svc.arena.Stats() }

// Sessions snapshots the in-flight requests, oldest first.
func (svc *Service) Sessions() []SessionInfo { return svc.sessions.Snapshot() }

// SessionCount counts the in-flight requests without building the
// snapshot — the /v1/stats hot probe.
func (svc *Service) SessionCount() int { return svc.sessions.Len() }

// CancelSession aborts an in-flight request by ID, reporting whether
// it was found. The cancelled call returns context.Canceled to its
// own caller; nothing partial is cached.
func (svc *Service) CancelSession(id int64) bool { return svc.sessions.CancelByID(id) }

// resolveWorkers applies the request → service → all-CPUs default
// chain.
func (svc *Service) resolveWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	if svc.workers > 0 {
		return svc.workers
	}
	return runtime.NumCPU()
}

// Generate runs the full pipeline for the request: deterministic
// event generation on the worker pool, the optional per-window view,
// and the aggregate sparse-path analysis. Repeated requests for the
// same canonical spec and parameters are served from the LRU cache,
// and concurrent identical cold requests coalesce onto one run.
// Cancelling ctx aborts the sharded generation mid-run; a cancelled
// or failed run never enters the cache.
func (svc *Service) Generate(ctx context.Context, req GenerateRequest) (*GenerateResult, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	scn, err := resolveSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	canonical := netsim.SpecString(scn)
	net := netsim.ScaledNetwork(req.Hosts)
	key := req.cacheKey(canonical, net.Len())
	if v, ok := svc.cache.Get(key); ok {
		return finishResult(v.(*GenerateResult), true, req.IncludeMatrices), nil
	}
	res, shared, err := svc.flights.do(ctx, key, func() (any, error) {
		fctx, end := svc.sessions.Begin(ctx, "generate", key)
		defer end()
		r, err := svc.generate(fctx, scn, canonical, net, req)
		if err != nil {
			return nil, sessionErr(fctx, err)
		}
		svc.cache.Put(key, r)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return finishResult(res.(*GenerateResult), shared, req.IncludeMatrices), nil
}

// finishResult builds the per-call view of a (possibly shared)
// result: the hit marker and the opt-in dense cell grids, derived on
// demand so the cached value itself stays encoding-neutral — two
// requests differing only in IncludeMatrices share one entry and
// each still gets exactly what it asked for.
//
// The view defensively copies every mutable header the cached value
// owns — label and schedule slices, the window list with its Reading
// and Hub pointers, the mixture readings. A warm hit used to alias
// them straight out of the cache, so one caller appending to Labels
// or rewriting a window's AttackStage silently corrupted every later
// response for the same key. The CSR matrices stay shared on purpose:
// they are the immutable bulk, never reclaimed or rewritten (the
// arena never pools CSR storage — a cached buffer is permanently the
// cache's), so sharing them is safe where sharing the headers was
// not.
func finishResult(res *GenerateResult, hit, includeMatrices bool) *GenerateResult {
	out := *res
	out.CacheHit = hit
	out.Labels = append([]string(nil), res.Labels...)
	out.Schedule = append([]Phase(nil), res.Schedule...)
	out.ComposedOf = append([]string(nil), res.ComposedOf...)
	out.Aggregate.Mixture = append([]Reading(nil), res.Aggregate.Mixture...)
	if len(res.Windows) > 0 {
		ws := make([]WindowResult, len(res.Windows))
		copy(ws, res.Windows)
		for i := range ws {
			if r := ws[i].AttackStage; r != nil {
				cp := *r
				ws[i].AttackStage = &cp
			}
			if r := ws[i].DDoS; r != nil {
				cp := *r
				ws[i].DDoS = &cp
			}
			if h := ws[i].Hub; h != nil {
				cp := *h
				ws[i].Hub = &cp
			}
		}
		out.Windows = ws
	}
	if includeMatrices {
		out.Cells = out.AggregateCSR.ToDense().ToRows()
		for i := range out.Windows {
			out.Windows[i].Cells = out.Windows[i].Matrix.ToDense().ToRows()
		}
	}
	return &out
}

// generate is the cold path behind Generate.
func (svc *Service) generate(ctx context.Context, scn netsim.Scenario, canonical string, net *netsim.Network, req GenerateRequest) (*GenerateResult, error) {
	zones, err := net.Zones()
	if err != nil {
		return nil, err
	}
	workers := svc.resolveWorkers(req.Workers)
	p := req.params().Normalized()

	genStart := time.Now()
	trace, err := netsim.GenerateTraceArena(ctx, svc.arena, scn, net, req.Seed, workers, p)
	if err != nil {
		return nil, err
	}
	genElapsed := time.Since(genStart)

	res := &GenerateResult{
		Version:  Version,
		Spec:     canonical,
		Scenario: scn.Name(),
		Shape:    scn.Shape(),
		Hosts:    net.Len(),
		Seed:     req.Seed,
		Workers:  workers,
		Duration: p.Duration,
		Events:   len(trace),
		Packets:  trace.TotalPackets(),
		Labels:   net.Labels(),
		Network:  net,
		Zones:    zones,
	}
	if sched, ok := scn.(netsim.Scheduler); ok {
		for _, ph := range sched.Schedule(p) {
			res.Schedule = append(res.Schedule, Phase{Label: ph.Label, Start: ph.Start, End: ph.End})
		}
	}
	if _, ok := scn.(netsim.Composite); ok {
		for _, leaf := range netsim.Leaves(scn) {
			res.ComposedOf = append(res.ComposedOf, leaf.Name())
		}
	}

	if req.Window > 0 {
		windows, err := trace.WindowsCSRArena(ctx, svc.arena, net, req.Window, p.Duration)
		if err != nil {
			svc.arena.ReleaseTrace(trace)
			return nil, err
		}
		roles, rolesErr := patterns.AssignDDoSRoles(zones)
		res.Windows = make([]WindowResult, 0, len(windows))
		for k, w := range windows {
			res.Windows = append(res.Windows, windowResult(k, w, zones, roles, rolesErr, res.Labels))
		}
	}

	// The whole-run readings go through the sparse path: one linear
	// fold into a CSR, analyzed through the accessor interface — no
	// dense n² materialization.
	aggStart := time.Now()
	csr, _ := trace.SparseMatrixArena(svc.arena, net)
	aggElapsed := time.Since(aggStart)
	// The sparse fold was the trace's last reader: every value derived
	// from it (event counts, window CSRs, the aggregate CSR) owns its
	// own storage, so the trace slab can recycle for the next request.
	svc.arena.ReleaseTrace(trace)
	analyzeStart := time.Now()
	res.Aggregate = analyzeMatrix(csr, zones)
	analyzeElapsed := time.Since(analyzeStart)
	res.AggregateCSR = csr
	res.Timings = Timings{Generate: genElapsed, Aggregate: aggElapsed, Analyze: analyzeElapsed}
	return res, nil
}

// windowResult builds one interval's WindowResult with its
// classifier readings. It is the single construction point shared by
// the batch per-window view and the streaming path, which is what
// guarantees a streamed window frame carries exactly the readings
// the batch result would for the same window.
func windowResult(k int, w netsim.SparseWindow, zones patterns.Zones, roles patterns.DDoSRoles, rolesErr error, labels []string) WindowResult {
	wr := WindowResult{
		Index: k, Start: w.Start, End: w.End,
		Events: w.Events, Packets: w.Matrix.Sum(), NNZ: w.Matrix.NNZ(),
		Dropped: w.Dropped, Matrix: w.Matrix,
	}
	if wr.NNZ > 0 {
		stage, conf := patterns.ClassifyAttackStageOf(w.Matrix, zones)
		wr.AttackStage = &Reading{Label: stage.String(), Confidence: conf}
		if rolesErr == nil {
			comp, dconf := patterns.ClassifyDDoSOf(w.Matrix, roles)
			wr.DDoS = &Reading{Label: comp.String(), Confidence: dconf}
		}
		if hubs := matrix.SupernodesOf(w.Matrix, patterns.SupernodeFanThreshold); len(hubs) > 0 {
			h := hubs[0]
			wr.Hub = &Hub{Host: labels[h.Index], Direction: h.Direction, Fan: h.Fan, Packets: h.Packets}
		}
	}
	return wr
}

// analyzeMatrix runs every classifier over a matrix through the
// read-only accessor interface.
func analyzeMatrix(m matrix.Matrix, zones patterns.Zones) Aggregate {
	agg := Aggregate{Profile: profileResult(matrix.ProfileOf(m))}
	if b, conf := patterns.ClassifyBehaviorOf(m, zones); b != patterns.BehaviorUnknown {
		agg.Behavior = &Reading{Label: b.String(), Confidence: conf}
	}
	agg.Topology = patterns.ClassifyTopologyOf(m, zones).String()
	stage, sconf := patterns.ClassifyAttackStageOf(m, zones)
	agg.Attack = Reading{Label: stage.String(), Confidence: sconf}
	for _, c := range patterns.ClassifyMixtureOf(m, zones) {
		agg.Mixture = append(agg.Mixture, Reading{Label: c.Label, Confidence: c.Score})
	}
	return agg
}

// supernodeHubs converts the supernode list to wire form.
func supernodeHubs(m matrix.Matrix, labels []string) []Hub {
	var out []Hub
	for _, h := range matrix.SupernodesOf(m, patterns.SupernodeFanThreshold) {
		out = append(out, Hub{Host: labels[h.Index], Direction: h.Direction, Fan: h.Fan, Packets: h.Packets})
	}
	return out
}

// Analyze classifies traffic: the Spec path generates (or re-serves
// from cache) a scenario run and reads its aggregate; the Matrix
// path classifies a posted matrix directly.
func (svc *Service) Analyze(ctx context.Context, req AnalyzeRequest) (*AnalyzeResult, error) {
	hasSpec := strings.TrimSpace(req.Spec) != ""
	hasMatrix := len(req.Matrix) > 0
	if hasSpec == hasMatrix {
		return nil, fmt.Errorf("%w: exactly one of spec or matrix must be set", ErrInvalidRequest)
	}
	if hasSpec {
		gres, err := svc.Generate(ctx, GenerateRequest{
			Spec: req.Spec, Hosts: req.Hosts, Seed: req.Seed, Workers: req.Workers,
			Duration: req.Duration, Rate: req.Rate, Scale: req.Scale,
		})
		if err != nil {
			return nil, err
		}
		return &AnalyzeResult{
			Version: Version, Source: "spec", Spec: gres.Spec, Hosts: gres.Hosts,
			Aggregate:  gres.Aggregate,
			Supernodes: supernodeHubs(gres.AggregateCSR, gres.Labels),
			CacheHit:   gres.CacheHit,
		}, nil
	}

	ctx, end := svc.sessions.Begin(ctx, "analyze", fmt.Sprintf("matrix %dx%d", len(req.Matrix), len(req.Matrix)))
	defer end()
	if len(req.Matrix) > MaxHosts {
		return nil, fmt.Errorf("%w: matrix size %d exceeds the %d limit", ErrInvalidRequest, len(req.Matrix), MaxHosts)
	}
	for i, row := range req.Matrix {
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("%w: matrix cell [%d][%d] = %d; packet counts must not be negative", ErrInvalidRequest, i, j, v)
			}
		}
	}
	dense, err := matrix.FromRows(req.Matrix)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidRequest, err)
	}
	if dense.Rows() != dense.Cols() {
		return nil, fmt.Errorf("%w: matrix must be square, got %dx%d", ErrInvalidRequest, dense.Rows(), dense.Cols())
	}
	zones, err := zonesFor(dense.Rows(), req.BlueEnd, req.GreyEnd)
	if err != nil {
		return nil, err
	}
	labels := matrixLabels(dense.Rows())
	res := &AnalyzeResult{
		Version: Version, Source: "matrix", Hosts: dense.Rows(),
		Aggregate:  analyzeMatrix(dense, zones),
		Supernodes: supernodeHubs(dense, labels),
	}
	// The classification is synchronous and quick, so cancellation
	// is honored at call granularity: a cancelled session (or
	// caller) gets the context error, not a result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// zonesFor places the blue→grey→red boundaries for a posted matrix:
// explicit boundaries when given, the paper's standard 10-host
// layout at n=10, and the scaled role mix proportions otherwise.
func zonesFor(n, blueEnd, greyEnd int) (patterns.Zones, error) {
	if blueEnd != 0 || greyEnd != 0 {
		z := patterns.Zones{N: n, BlueEnd: blueEnd, GreyEnd: greyEnd}
		if blueEnd < 0 || greyEnd < blueEnd || greyEnd > n {
			return patterns.Zones{}, fmt.Errorf("%w: zone split blue_end=%d grey_end=%d invalid for n=%d",
				ErrInvalidRequest, blueEnd, greyEnd, n)
		}
		return z, nil
	}
	if n == 10 {
		return patterns.Zones{N: 10, BlueEnd: 4, GreyEnd: 6}, nil
	}
	red := n * 3 / 20
	if red < 1 {
		red = 1
	}
	grey := n * 3 / 20
	if grey < 1 {
		grey = 1
	}
	blue := n - red - grey
	if blue < 1 {
		blue = 1
	}
	// Tiny matrices cannot hold all three zones at the floor sizes;
	// give blue priority and shrink grey so the boundaries stay
	// within the axis (a 1×1 matrix is all blue).
	if blue > n {
		blue = n
	}
	if blue+grey > n {
		grey = n - blue
	}
	return patterns.Zones{N: n, BlueEnd: blue, GreyEnd: blue + grey}, nil
}

// matrixLabels names the axis of a posted matrix: the paper's
// standard labels at n=10, positional names otherwise.
func matrixLabels(n int) []string {
	if n == 10 {
		return netsim.StandardNetwork().Labels()
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("H%d", i)
	}
	return out
}

// Module synthesizes a playable learning module: from a scenario run
// (Spec) via the bridge, or from a paper figure panel (Pattern).
// Spec-path modules are cached and coalesced like Generate results;
// returned modules are shared and must be treated as immutable.
func (svc *Service) Module(ctx context.Context, req ModuleRequest) (*core.Module, error) {
	hasSpec := strings.TrimSpace(req.Spec) != ""
	hasPattern := strings.TrimSpace(req.Pattern) != ""
	if hasSpec == hasPattern {
		return nil, fmt.Errorf("%w: exactly one of spec or pattern must be set", ErrInvalidRequest)
	}
	if hasPattern {
		entry, ok := patterns.Lookup(req.Pattern)
		if !ok {
			return nil, fmt.Errorf("%w: unknown pattern %q (see the catalog's patterns list)", ErrInvalidRequest, req.Pattern)
		}
		return modules.FromEntry(entry)
	}
	// Reuse the generate-request field validation for the shared
	// scenario parameters.
	gr := GenerateRequest{Spec: req.Spec, Hosts: req.Hosts, Duration: req.Duration, Rate: req.Rate, Scale: req.Scale}
	if err := gr.validate(); err != nil {
		return nil, err
	}
	scn, err := resolveSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	net := netsim.ScaledNetwork(req.Hosts)
	p := netsim.Params{Duration: req.Duration, Rate: req.Rate, Scale: req.Scale}
	key := paramsKey("module", netsim.SpecString(scn), net.Len(), req.Seed, p)
	if v, ok := svc.cache.Get(key); ok {
		return v.(*core.Module), nil
	}
	m, _, err := svc.flights.do(ctx, key, func() (any, error) {
		fctx, end := svc.sessions.Begin(ctx, "module", key)
		defer end()
		m, err := bridge.AggregateModuleContext(fctx, scn, net, req.Seed, svc.resolveWorkers(0), p)
		if err != nil {
			return nil, sessionErr(fctx, err)
		}
		svc.cache.Put(key, m)
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	return m.(*core.Module), nil
}

// Campaign synthesizes a whole course from a scenario: overview
// lesson plus window-by-window timeline. Campaigns are cached and
// coalesced like Generate results; returned campaigns are shared
// and must be treated as immutable.
func (svc *Service) Campaign(ctx context.Context, req CampaignRequest) (*bridge.Campaign, error) {
	if req.Window <= 0 {
		return nil, fmt.Errorf("%w: campaign window must be positive, got %g", ErrInvalidRequest, req.Window)
	}
	gr := GenerateRequest{Spec: req.Spec, Hosts: req.Hosts, Duration: req.Duration, Rate: req.Rate, Scale: req.Scale, Window: req.Window}
	if err := gr.validate(); err != nil {
		return nil, err
	}
	scn, err := resolveSpec(req.Spec)
	if err != nil {
		return nil, err
	}
	net := netsim.ScaledNetwork(req.Hosts)
	p := netsim.Params{Duration: req.Duration, Rate: req.Rate, Scale: req.Scale}
	key := paramsKey("campaign", netsim.SpecString(scn), net.Len(), req.Seed, p) +
		fmt.Sprintf("|win=%g", req.Window)
	if v, ok := svc.cache.Get(key); ok {
		return v.(*bridge.Campaign), nil
	}
	c, _, err := svc.flights.do(ctx, key, func() (any, error) {
		fctx, end := svc.sessions.Begin(ctx, "campaign", key)
		defer end()
		c, err := bridge.CampaignFromScenarioContext(fctx, scn, net, req.Seed, svc.resolveWorkers(0), p, req.Window)
		if err != nil {
			return nil, sessionErr(fctx, err)
		}
		svc.cache.Put(key, c)
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return c.(*bridge.Campaign), nil
}

// Catalog lists everything the service can produce. The context is
// accepted for interface uniformity; the listing is immediate.
func (svc *Service) Catalog(context.Context) *CatalogResult {
	out := &CatalogResult{Version: Version}
	for _, s := range netsim.Scenarios() {
		_, composite := s.(netsim.Composite)
		out.Scenarios = append(out.Scenarios, ScenarioInfo{
			Name: s.Name(), Description: s.Description(), Shape: s.Shape(), Composite: composite,
		})
	}
	for _, f := range patterns.Families() {
		for _, e := range patterns.ByFamily(f) {
			out.Patterns = append(out.Patterns, PatternInfo{
				ID: e.ID, Family: string(e.Family), Figure: e.Figure, Title: e.Title,
			})
		}
	}
	return out
}

// WindowModule renders one window of a generated result as an
// editable learning module (no question; an educator adds one): the
// twsim -export path, kept next to the result types so front-ends
// need no matrix/patterns wiring of their own.
func WindowModule(res *GenerateResult, w *WindowResult, author string) *core.Module {
	clamped := w.Matrix.ToDense()
	clamped.Apply(func(v int) int {
		if v > core.MaxDisplayPackets {
			return core.MaxDisplayPackets
		}
		return v
	})
	name := res.Scenario
	if name != "" {
		name = strings.ToUpper(name[:1]) + name[1:]
	}
	return &core.Module{
		Name:                "Captured " + name + " Traffic",
		Size:                core.FormatSize(res.Hosts),
		Author:              author,
		AxisLabels:          res.Labels,
		TrafficMatrix:       clamped.ToRows(),
		TrafficMatrixColors: res.Zones.ColorMatrix().ToRows(),
		HasQuestion:         false,
	}
}
