package api

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// streamAll runs GenerateStream and collects every frame.
func streamAll(t *testing.T, svc *Service, req GenerateRequest) []StreamFrame {
	t.Helper()
	var frames []StreamFrame
	if err := svc.GenerateStream(context.Background(), req, func(f StreamFrame) error {
		frames = append(frames, f)
		return nil
	}); err != nil {
		t.Fatalf("GenerateStream: %v", err)
	}
	return frames
}

// TestGenerateStreamMatchesBatch is the façade-level parity contract:
// the stream's meta, window frames, and summary carry exactly what
// the batch result does for the same request — same windows in the
// same order with the same classifier readings, same aggregate
// analysis, same tallies.
func TestGenerateStreamMatchesBatch(t *testing.T) {
	req := NewGenerateRequest("overlay(background, ddos)",
		WithSeed(11), WithParams(20, 6, 1), WithWindow(2.5))
	batch, err := New().Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	frames := streamAll(t, New(), req)

	if len(frames) != 2+len(batch.Windows) {
		t.Fatalf("%d frames for %d batch windows", len(frames), len(batch.Windows))
	}
	meta := frames[0]
	if meta.Type != FrameMeta || meta.Meta == nil {
		t.Fatalf("first frame = %+v, want meta", meta)
	}
	m := meta.Meta
	if m.Version != batch.Version || m.Spec != batch.Spec || m.Scenario != batch.Scenario ||
		m.Shape != batch.Shape || m.Hosts != batch.Hosts || m.Seed != batch.Seed ||
		m.Duration != batch.Duration || m.Windows != len(batch.Windows) ||
		!reflect.DeepEqual(m.Labels, batch.Labels) ||
		!reflect.DeepEqual(m.Schedule, batch.Schedule) ||
		!reflect.DeepEqual(m.ComposedOf, batch.ComposedOf) {
		t.Errorf("meta frame %+v does not mirror batch header %+v", m, batch)
	}

	for i, wf := range frames[1 : len(frames)-1] {
		if wf.Type != FrameWindow || wf.Window == nil {
			t.Fatalf("frame %d = %+v, want window", i+1, wf)
		}
		if !reflect.DeepEqual(*wf.Window, batch.Windows[i]) {
			t.Errorf("window frame %d differs from batch window:\n stream: %+v\n batch:  %+v",
				i, *wf.Window, batch.Windows[i])
		}
	}

	last := frames[len(frames)-1]
	if last.Type != FrameSummary || last.Summary == nil {
		t.Fatalf("last frame = %+v, want summary", last)
	}
	s := last.Summary
	if s.Events != batch.Events || s.Packets != batch.Packets {
		t.Errorf("summary tallies %d/%d, batch %d/%d", s.Events, s.Packets, batch.Events, batch.Packets)
	}
	if !reflect.DeepEqual(s.Aggregate, batch.Aggregate) {
		t.Errorf("summary aggregate differs from batch:\n stream: %+v\n batch:  %+v", s.Aggregate, batch.Aggregate)
	}
}

// TestGenerateStreamIncludeMatrices pins that the opt-in dense grids
// ride window frames exactly as they do batch windows.
func TestGenerateStreamIncludeMatrices(t *testing.T) {
	req := quick(WithMatrices())
	frames := streamAll(t, New(), req)
	batch, err := New().Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, wf := range frames[1 : len(frames)-1] {
		if wf.Window.Cells == nil {
			t.Fatalf("window frame %d missing cells", i)
		}
		if !reflect.DeepEqual(wf.Window.Cells, batch.Windows[i].Cells) {
			t.Errorf("window frame %d cells differ from batch", i)
		}
	}
}

// TestGenerateStreamBypassesCache pins the cache contract from both
// sides: a stream neither reads nor writes the result cache — a
// priming batch request does not short-circuit a stream, and a
// completed stream leaves the cache exactly as it found it.
func TestGenerateStreamBypassesCache(t *testing.T) {
	svc := New()
	req := quick()
	if _, err := svc.Generate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	before := svc.CacheStats()

	frames := streamAll(t, svc, req)
	if len(frames) < 3 {
		t.Fatalf("stream produced %d frames", len(frames))
	}

	after := svc.CacheStats()
	if after.Len != before.Len || after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("stream touched the cache: before %+v, after %+v", before, after)
	}
}

// TestStreamThenBatchRecomputes is the regression test for the
// partial-result hazard: a stream cancelled mid-run must leave
// nothing behind, so a cold batch request for the same key recomputes
// in full and only then becomes cacheable.
func TestStreamThenBatchRecomputes(t *testing.T) {
	svc := New()
	req := NewGenerateRequest("background", WithSeed(3), WithParams(60, 4, 1), WithWindow(5))

	ctx, cancel := context.WithCancel(context.Background())
	windows := 0
	err := svc.GenerateStream(ctx, req, func(f StreamFrame) error {
		if f.Type == FrameWindow {
			windows++
			cancel()
		}
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v", err)
	}
	if windows == 0 {
		t.Fatal("stream cancelled before any window")
	}
	if st := svc.CacheStats(); st.Len != 0 {
		t.Fatalf("cancelled stream left %d cache entries", st.Len)
	}

	res, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("batch request after cancelled stream reported a cache hit")
	}
	if len(res.Windows) != 12 {
		t.Errorf("batch recompute produced %d windows, want 12", len(res.Windows))
	}
	again, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("second batch request missed the cache")
	}
}

// TestGenerateStreamCancellation pins prompt mid-stream cancellation
// at the façade: the consumer hangs up after the first window, the
// call returns the context error quickly, the session registry
// drains, and no goroutines leak.
func TestGenerateStreamCancellation(t *testing.T) {
	svc := New()
	req := NewGenerateRequest("background", WithSeed(5), WithParams(3600, 2, 1), WithWindow(5))
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	err := svc.GenerateStream(ctx, req, func(f StreamFrame) error {
		if f.Type == FrameWindow {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if sessions := svc.Sessions(); len(sessions) != 0 {
		t.Fatalf("sessions did not drain: %+v", sessions)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGenerateStreamSessionVisible pins that an in-flight stream
// appears in the session registry under its own kind, so operators
// can see and cancel it like any other work.
func TestGenerateStreamSessionVisible(t *testing.T) {
	svc := New()
	req := NewGenerateRequest("background", WithSeed(5), WithParams(120, 4, 1), WithWindow(5))
	sawKind := make(chan string, 1)
	err := svc.GenerateStream(context.Background(), req, func(f StreamFrame) error {
		if f.Type == FrameMeta {
			for _, s := range svc.Sessions() {
				select {
				case sawKind <- s.Kind:
				default:
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case kind := <-sawKind:
		if kind != "stream" {
			t.Errorf("session kind = %q, want stream", kind)
		}
	default:
		t.Error("no session visible during the stream")
	}
}

// TestGenerateStreamOperatorCancel pins the CancelSession path: an
// operator kill surfaces as ErrSessionCancelled, not as the
// consumer's own hangup.
func TestGenerateStreamOperatorCancel(t *testing.T) {
	svc := New()
	req := NewGenerateRequest("background", WithSeed(5), WithParams(3600, 2, 1), WithWindow(5))
	err := svc.GenerateStream(context.Background(), req, func(f StreamFrame) error {
		for _, s := range svc.Sessions() {
			svc.CancelSession(s.ID)
		}
		return nil
	})
	if !errors.Is(err, ErrSessionCancelled) {
		t.Fatalf("operator-cancelled stream returned %v, want ErrSessionCancelled", err)
	}
}

// TestGenerateStreamValidation pins the request taxonomy: a stream
// without a window, and every invalid field a batch request rejects,
// fail with ErrInvalidRequest before any frame is emitted.
func TestGenerateStreamValidation(t *testing.T) {
	svc := New()
	bad := []GenerateRequest{
		NewGenerateRequest("background"),                                            // no window
		NewGenerateRequest("", WithWindow(5)),                                       // empty spec
		NewGenerateRequest("no-such-thing", WithWindow(5)),                          // unknown scenario
		NewGenerateRequest("background", WithWindow(5), WithParams(1e6, 1e6, 1000)), // over budget
	}
	for i, req := range bad {
		frames := 0
		err := svc.GenerateStream(context.Background(), req, func(StreamFrame) error {
			frames++
			return nil
		})
		if !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("bad request %d returned %v, want ErrInvalidRequest", i, err)
		}
		if frames != 0 {
			t.Errorf("bad request %d emitted %d frames", i, frames)
		}
	}
}

// TestFrameCodecRoundTrip pins the NDJSON wire contract frame by
// frame: encode → decode is the identity on every frame type.
func TestFrameCodecRoundTrip(t *testing.T) {
	frames := []StreamFrame{
		{Type: FrameMeta, Meta: &StreamMeta{
			Version: Version, Spec: "ddos", Scenario: "ddos", Shape: "row+column",
			Hosts: 10, Seed: 7, Workers: 4, Duration: 40, Window: 10, Windows: 4,
			Labels:   []string{"WS1", "WS2"},
			Schedule: []Phase{{Label: "recruit", Start: 0, End: 10}},
		}},
		{Type: FrameWindow, Window: &WindowResult{
			Index: 2, Start: 20, End: 30, Events: 5, Packets: 40, NNZ: 3,
			AttackStage: &Reading{Label: "attack", Confidence: 0.9},
			Hub:         &Hub{Host: "SRV1", Direction: "in", Fan: 6, Packets: 40},
			Cells:       [][]int{{0, 1}, {2, 0}},
		}},
		{Type: FrameSummary, Summary: &StreamSummary{Events: 100, Packets: 900}},
		{Type: FrameError, Error: "worker pool exploded"},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := EncodeFrame(&buf, f); err != nil {
			t.Fatalf("EncodeFrame(%s): %v", f.Type, err)
		}
	}
	dec := NewFrameDecoder(&buf)
	for i, want := range frames {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("Next() frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d round trip:\n got:  %+v\n want: %+v", i, got, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("decoder at end returned %v, want io.EOF", err)
	}
}

// TestFrameCodecRejectsMalformed pins the decoder's error taxonomy —
// and that the encoder refuses to produce frames the decoder would
// reject.
func TestFrameCodecRejectsMalformed(t *testing.T) {
	badLines := []string{
		`not json at all`,
		`{"type":"zebra"}`,
		`{"type":"meta"}`,
		`{"type":"window"}`,
		`{"type":"summary"}`,
		`{"type":"error"}`,
		`{"type":"window","summary":{"events":1},"window":{"index":0}}`,
		`{"type":"error","error":"x","meta":{"version":"v1"}}`,
		`{}`,
	}
	for _, line := range badLines {
		dec := NewFrameDecoder(strings.NewReader(line + "\n"))
		if _, err := dec.Next(); err == nil || err == io.EOF {
			t.Errorf("decoder accepted %q", line)
		}
	}

	badFrames := []StreamFrame{
		{},
		{Type: "zebra"},
		{Type: FrameMeta},
		{Type: FrameWindow, Window: &WindowResult{}, Error: "both"},
		{Type: FrameSummary, Summary: &StreamSummary{}, Meta: &StreamMeta{}},
	}
	for i, f := range badFrames {
		if err := EncodeFrame(io.Discard, f); err == nil {
			t.Errorf("encoder accepted bad frame %d: %+v", i, f)
		}
	}

	// Blank lines between frames are tolerated; an oversized line is
	// an error, not a hang or a panic.
	dec := NewFrameDecoder(strings.NewReader("\n  \n" + `{"type":"error","error":"x"}` + "\n"))
	if f, err := dec.Next(); err != nil || f.Type != FrameError {
		t.Errorf("decoder tripped on blank lines: %+v, %v", f, err)
	}
	huge := strings.Repeat("x", MaxFrameBytes+1)
	dec = NewFrameDecoder(strings.NewReader(huge))
	if _, err := dec.Next(); err == nil {
		t.Error("decoder accepted an oversized line")
	}
}
