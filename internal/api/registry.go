package api

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrSessionCancelled marks a run aborted by an operator through
// CancelSession — distinct from context.Canceled (the caller's own
// hangup) so that coalesced waiters do not re-elect a leader and
// silently restart work an operator just killed.
var ErrSessionCancelled = errors.New("api: session cancelled by operator")

// SessionInfo describes one in-flight request: what kind of work it
// is, the canonical key it runs under, and when it started. Served
// by twserve's /v1/sessions.
type SessionInfo struct {
	ID      int64     `json:"id"`
	Kind    string    `json:"kind"`
	Key     string    `json:"key"`
	Started time.Time `json:"started"`
}

// session pairs the public info with the cancel handle
// CancelSession pulls.
type session struct {
	info   SessionInfo
	cancel context.CancelCauseFunc
}

// sessionRegistry tracks in-flight work. Every service call passes
// through begin/end, so a snapshot at any moment names exactly the
// requests currently holding worker pools.
type sessionRegistry struct {
	mu     sync.Mutex
	nextID int64
	active map[int64]*session
}

func newSessionRegistry() *sessionRegistry {
	return &sessionRegistry{active: make(map[int64]*session)}
}

// begin registers an in-flight request and returns a context derived
// from ctx whose cancellation is additionally reachable through
// cancelByID — the hook that lets an operator abort a runaway
// generation.
func (r *sessionRegistry) begin(ctx context.Context, kind, key string) (context.Context, *session) {
	ctx, cancel := context.WithCancelCause(ctx)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s := &session{
		info:   SessionInfo{ID: r.nextID, Kind: kind, Key: key, Started: time.Now()},
		cancel: cancel,
	}
	r.active[s.info.ID] = s
	return ctx, s
}

// end removes the session and releases its context resources.
func (r *sessionRegistry) end(s *session) {
	r.mu.Lock()
	delete(r.active, s.info.ID)
	r.mu.Unlock()
	s.cancel(nil)
}

// snapshot returns the in-flight sessions ordered by ID.
func (r *sessionRegistry) snapshot() []SessionInfo {
	r.mu.Lock()
	out := make([]SessionInfo, 0, len(r.active))
	for _, s := range r.active {
		out = append(out, s.info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// cancelByID cancels the identified session's context with
// ErrSessionCancelled as the cause, reporting whether it was in
// flight.
func (r *sessionRegistry) cancelByID(id int64) bool {
	r.mu.Lock()
	s, ok := r.active[id]
	r.mu.Unlock()
	if ok {
		s.cancel(ErrSessionCancelled)
	}
	return ok
}

// sessionErr rewrites a cancellation that an operator caused into
// ErrSessionCancelled, so callers (and coalesced waiters) can tell
// "the operator killed this run" from "my own caller hung up". Any
// other error passes through.
func sessionErr(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), ErrSessionCancelled) {
		return ErrSessionCancelled
	}
	return err
}
