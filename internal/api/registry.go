package api

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// ErrSessionCancelled marks a run aborted by an operator through
// CancelSession — distinct from context.Canceled (the caller's own
// hangup) so that coalesced waiters do not re-elect a leader and
// silently restart work an operator just killed.
var ErrSessionCancelled = errors.New("api: session cancelled by operator")

// SessionInfo describes one in-flight request: what kind of work it
// is, the canonical key it runs under, and when it started. Served
// by twserve's /v1/sessions.
type SessionInfo struct {
	ID      int64     `json:"id"`
	Kind    string    `json:"kind"`
	Key     string    `json:"key"`
	Started time.Time `json:"started"`
	// Backend names the backend process holding the session when the
	// list was merged by a cluster proxy. Session IDs are only unique
	// within one process, so the pair (Backend, ID) is the cluster-wide
	// identity. Empty for in-process sessions.
	Backend string `json:"backend,omitempty"`
}

// session pairs the public info with the cancel handle
// CancelSession pulls.
type session struct {
	info   SessionInfo
	cancel context.CancelCauseFunc
}

// SessionStore tracks in-flight work. Every service call passes
// through Begin (and the end func it returns), so a snapshot at any
// moment names exactly the requests currently holding worker pools.
// Implementations must be safe for concurrent use.
type SessionStore interface {
	// Begin registers an in-flight request and returns a context
	// derived from ctx whose cancellation is additionally reachable
	// through CancelByID, plus the end func that deregisters the
	// session and releases its context resources (idempotent).
	Begin(ctx context.Context, kind, key string) (context.Context, func())
	// Snapshot returns the in-flight sessions ordered by ID.
	Snapshot() []SessionInfo
	// CancelByID cancels the identified session's context with
	// ErrSessionCancelled as the cause, reporting whether it was in
	// flight.
	CancelByID(id int64) bool
	// Len counts the in-flight sessions.
	Len() int
}

// sessionShard is one stripe of the session table: a mutex and the
// slice of active sessions whose IDs hash here.
type sessionShard struct {
	mu     sync.Mutex
	active map[int64]*session
}

// sessionStore is the lock-striped SessionStore. IDs come from an
// atomic counter (optionally shared with other stores — a router
// pool hands every worker the same source so IDs are unique across
// the whole process), and a session lives on the stripe its ID masks
// to, so CancelByID goes straight to one stripe without scanning.
type sessionStore struct {
	ids    *sessionIDSource
	shards []*sessionShard
	mask   uint64
}

// newSessionStore builds a store striped over nshards (rounded up to
// a power of two), drawing IDs from ids — or from a fresh private
// counter when ids is nil.
func newSessionStore(nshards int, ids *sessionIDSource) *sessionStore {
	if ids == nil {
		ids = new(sessionIDSource)
	}
	n := nextPow2(max(1, nshards))
	r := &sessionStore{ids: ids, shards: make([]*sessionShard, n), mask: uint64(n - 1)}
	for i := range r.shards {
		r.shards[i] = &sessionShard{active: make(map[int64]*session)}
	}
	return r
}

// Begin registers an in-flight request and returns a context derived
// from ctx whose cancellation is additionally reachable through
// CancelByID — the hook that lets an operator abort a runaway
// generation — plus the idempotent end func.
func (r *sessionStore) Begin(ctx context.Context, kind, key string) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(ctx)
	id := r.ids.Add(1)
	s := &session{
		info:   SessionInfo{ID: id, Kind: kind, Key: key, Started: time.Now()},
		cancel: cancel,
	}
	sh := r.shards[uint64(id)&r.mask]
	sh.mu.Lock()
	sh.active[id] = s
	sh.mu.Unlock()
	var once sync.Once
	end := func() {
		once.Do(func() {
			sh.mu.Lock()
			delete(sh.active, id)
			sh.mu.Unlock()
			cancel(nil)
		})
	}
	return ctx, end
}

// Snapshot returns the in-flight sessions ordered by ID — the merge
// across stripes sorts, so /v1/sessions output is stable no matter
// which stripe each session landed on.
func (r *sessionStore) Snapshot() []SessionInfo {
	var out []SessionInfo
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, s := range sh.active {
			out = append(out, s.info)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CancelByID cancels the identified session's context with
// ErrSessionCancelled as the cause, reporting whether it was in
// flight. The ID's stripe is a pure function of the ID, so this is
// one lock, not a scan.
func (r *sessionStore) CancelByID(id int64) bool {
	sh := r.shards[uint64(id)&r.mask]
	sh.mu.Lock()
	s, ok := sh.active[id]
	sh.mu.Unlock()
	if ok {
		s.cancel(ErrSessionCancelled)
	}
	return ok
}

// Len counts the in-flight sessions across all stripes.
func (r *sessionStore) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += len(sh.active)
		sh.mu.Unlock()
	}
	return n
}

// sessionErr rewrites a cancellation that an operator caused into
// ErrSessionCancelled, so callers (and coalesced waiters) can tell
// "the operator killed this run" from "my own caller hung up". Any
// other error passes through.
func sessionErr(ctx context.Context, err error) error {
	if err != nil && errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), ErrSessionCancelled) {
		return ErrSessionCancelled
	}
	return err
}
