package api

import (
	"time"

	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/patterns"
)

// Reading is one classifier verdict: a label and the classifier's
// confidence (for mixture readings, the component score) in [0,1].
type Reading struct {
	Label      string  `json:"label"`
	Confidence float64 `json:"confidence"`
}

// ProfileResult is the wire form of the structural matrix profile.
type ProfileResult struct {
	N          int     `json:"n"`
	NNZ        int     `json:"nnz"`
	DensityPct float64 `json:"density_pct"`
	Packets    int     `json:"packets"`
	MaxCell    int     `json:"max_cell"`
	MaxOutFan  int     `json:"max_out_fan"`
	MaxInFan   int     `json:"max_in_fan"`
	DiagNNZ    int     `json:"diag_nnz"`
	Symmetric  bool    `json:"symmetric"`
	Sources    int     `json:"active_sources"`
	Dests      int     `json:"active_dests"`
	Reciprocal int     `json:"reciprocal_pairs"`
}

// profileResult converts a matrix.Profile.
func profileResult(p matrix.Profile) ProfileResult {
	density := 0.0
	if p.N > 0 {
		density = 100 * float64(p.NNZ) / (float64(p.N) * float64(p.N))
	}
	return ProfileResult{
		N: p.N, NNZ: p.NNZ, DensityPct: density, Packets: p.Sum, MaxCell: p.MaxEntry,
		MaxOutFan: p.MaxOutFan, MaxInFan: p.MaxInFan, DiagNNZ: p.DiagNNZ,
		Symmetric: p.Symmetric, Sources: p.ActiveSources, Dests: p.ActiveDests,
		Reciprocal: p.Reciprocal,
	}
}

// Aggregate is the whole-run sparse-path analysis block: the
// structural profile plus every classifier's reading.
type Aggregate struct {
	Profile ProfileResult `json:"profile"`
	// Behavior is nil when the behavior classifier abstains.
	Behavior *Reading `json:"behavior,omitempty"`
	Topology string   `json:"topology"`
	Attack   Reading  `json:"attack"`
	// Mixture is the disentangle reading: component shapes the
	// mixture classifier recognizes, strongest first.
	Mixture []Reading `json:"mixture,omitempty"`
}

// Hub identifies a supernode in a window or aggregate matrix.
type Hub struct {
	Host      string `json:"host"`
	Direction string `json:"direction"` // "in" or "out"
	Fan       int    `json:"fan"`
	Packets   int    `json:"packets"`
}

// Phase is one labeled interval of the ground-truth schedule.
type Phase struct {
	Label string  `json:"label"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Timings reports the run's wall-clock split. Durations marshal as
// nanoseconds.
type Timings struct {
	// Generate covers event generation on the worker pool.
	Generate time.Duration `json:"generate_ns"`
	// Aggregate covers the sparse fold of the trace into a CSR.
	Aggregate time.Duration `json:"aggregate_ns"`
	// Analyze covers profiling and every classifier pass.
	Analyze time.Duration `json:"analyze_ns"`
}

// WindowResult is one aggregation interval of the per-window view,
// with its classifier readings.
type WindowResult struct {
	Index   int     `json:"index"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Events  int     `json:"events"`
	Packets int     `json:"packets"`
	NNZ     int     `json:"nnz"`
	Dropped int     `json:"dropped,omitempty"`
	// AttackStage, DDoS, and Hub are nil for empty windows (and DDoS
	// also when the network's zone layout fits no DDoS cast).
	AttackStage *Reading `json:"attack_stage,omitempty"`
	DDoS        *Reading `json:"ddos,omitempty"`
	Hub         *Hub     `json:"hub,omitempty"`
	// Cells is the dense grid, present only when the request set
	// IncludeMatrices.
	Cells [][]int `json:"cells,omitempty"`
	// Matrix is the window's CSR for in-process front-ends (twsim
	// renders from it); it does not travel over the wire.
	Matrix *matrix.CSR `json:"-"`
}

// GenerateResult is the full response to a GenerateRequest. Results
// are immutable once returned: the service may hand the same inner
// data to many callers from the cache.
type GenerateResult struct {
	Version string `json:"version"`
	// Spec is the canonical spec string (the cache identity);
	// Scenario is the scenario's display name.
	Spec     string `json:"spec"`
	Scenario string `json:"scenario"`
	Shape    string `json:"shape"`
	Hosts    int    `json:"hosts"`
	Seed     int64  `json:"seed"`
	// Workers is the resolved worker count the run used. It does not
	// affect the traffic (the engine is worker-count deterministic).
	Workers int `json:"workers"`
	// Duration is the normalized run length in seconds.
	Duration float64  `json:"duration"`
	Events   int      `json:"events"`
	Packets  int      `json:"packets"`
	Labels   []string `json:"labels"`
	// Schedule is the ground-truth phase timeline, when the scenario
	// publishes one.
	Schedule []Phase `json:"schedule,omitempty"`
	// ComposedOf lists the primitive leaves of a composed scenario.
	ComposedOf []string       `json:"composed_of,omitempty"`
	Windows    []WindowResult `json:"windows,omitempty"`
	Aggregate  Aggregate      `json:"aggregate"`
	// Cells is the aggregate dense grid, present only when the
	// request set IncludeMatrices.
	Cells   [][]int `json:"cells,omitempty"`
	Timings Timings `json:"timings"`
	// CacheHit reports whether this response was served from the
	// result cache (per-call; the cached copy itself stores false).
	CacheHit bool `json:"cache_hit"`

	// In-process handles for local front-ends; never serialized.
	// Renderers needing the zone color grid derive it on demand
	// (Zones.ColorMatrix is an O(n²) dense build, too costly to
	// compute for callers that never draw).
	Network      *netsim.Network `json:"-"`
	Zones        patterns.Zones  `json:"-"`
	AggregateCSR *matrix.CSR     `json:"-"`
}

// AnalyzeResult is the response to an AnalyzeRequest.
type AnalyzeResult struct {
	Version string `json:"version"`
	// Source is "spec" or "matrix".
	Source string `json:"source"`
	Spec   string `json:"spec,omitempty"`
	Hosts  int    `json:"hosts"`
	// Aggregate is the classifier block over the analyzed matrix.
	Aggregate Aggregate `json:"aggregate"`
	// Supernodes lists every qualifying hub, busiest first.
	Supernodes []Hub `json:"supernodes,omitempty"`
	CacheHit   bool  `json:"cache_hit"`
}

// ScenarioInfo is one catalog entry in a CatalogResult.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Shape       string `json:"shape"`
	Composite   bool   `json:"composite,omitempty"`
}

// PatternInfo is one figure-catalog panel in a CatalogResult.
type PatternInfo struct {
	ID     string `json:"id"`
	Family string `json:"family"`
	Figure string `json:"figure"`
	Title  string `json:"title"`
}

// CatalogResult lists everything the service can produce: runnable
// scenarios (including runtime-registered composites) and the paper's
// figure patterns.
type CatalogResult struct {
	Version   string         `json:"version"`
	Scenarios []ScenarioInfo `json:"scenarios"`
	Patterns  []PatternInfo  `json:"patterns"`
}
