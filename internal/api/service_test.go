package api

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
)

// quick is a small, fast request used throughout the suite.
func quick(opts ...GenerateOption) GenerateRequest {
	base := []GenerateOption{WithSeed(1), WithWorkers(1), WithParams(4, 4, 1), WithWindow(2)}
	return NewGenerateRequest("scan", append(base, opts...)...)
}

func TestGenerateDeterministicAndCached(t *testing.T) {
	svc := New()
	first, err := svc.Generate(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if first.Events == 0 || first.Aggregate.Profile.NNZ == 0 {
		t.Fatalf("empty generation: %+v", first)
	}
	if first.Spec != "scan" || first.Scenario != "scan" || first.Hosts != 10 {
		t.Errorf("result header wrong: %+v", first)
	}
	if len(first.Windows) != 2 {
		t.Errorf("got %d windows, want 2", len(first.Windows))
	}

	second, err := svc.Generate(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical request missed the cache")
	}
	if !reflect.DeepEqual(first.Aggregate, second.Aggregate) ||
		first.Events != second.Events || first.Packets != second.Packets {
		t.Error("cached result differs from the computed one")
	}
	st := svc.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 {
		t.Errorf("stats = %+v, want hits=1 misses=1 len=1", st)
	}
}

// TestGenerateCanonicalKey: different spellings of the same mixture,
// zero-vs-explicit default parameters, and different worker counts
// all collapse onto one cache entry.
func TestGenerateCanonicalKey(t *testing.T) {
	svc := New()
	if _, err := svc.Generate(context.Background(),
		NewGenerateRequest("overlay(background, sequence(scan, ddos))", WithSeed(7), WithWorkers(1))); err != nil {
		t.Fatal(err)
	}
	for name, req := range map[string]GenerateRequest{
		"respelled spec":    NewGenerateRequest("  overlay( background ,sequence( scan,ddos ) ) ", WithSeed(7), WithWorkers(1)),
		"explicit defaults": NewGenerateRequest("overlay(background, sequence(scan, ddos))", WithSeed(7), WithWorkers(1), WithParams(40, 4, 1)),
		"other workers":     NewGenerateRequest("overlay(background, sequence(scan, ddos))", WithSeed(7), WithWorkers(4)),
	} {
		res, err := svc.Generate(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.CacheHit {
			t.Errorf("%s: did not hit the canonical cache entry", name)
		}
	}
	if st := svc.CacheStats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

func TestGenerateCacheEviction(t *testing.T) {
	svc := New(WithCacheCapacity(1))
	a := quick()
	b := quick(WithSeed(2))
	for _, req := range []GenerateRequest{a, b, a} {
		if _, err := svc.Generate(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.CacheStats()
	// a: miss; b: miss, evicts a; a again: miss.
	if st.Hits != 0 || st.Misses != 3 || st.Evictions < 2 || st.Len != 1 {
		t.Errorf("stats = %+v, want hits=0 misses=3 evictions≥2 len=1", st)
	}
}

// slowScenario is a many-chunk, deliberately slow scenario for
// cancellation and session-registry tests. Registered once so spec
// resolution finds it.
type slowScenario struct{}

func (slowScenario) Name() string                              { return "api-slow-test" }
func (slowScenario) Description() string                       { return "slow scenario for api tests" }
func (slowScenario) Shape() string                             { return "one cell, slowly" }
func (slowScenario) Chunks(*netsim.Network, netsim.Params) int { return 400 }
func (slowScenario) Emit(net *netsim.Network, rng *rand.Rand, p netsim.Params, chunk int, emit func(netsim.Event)) error {
	time.Sleep(5 * time.Millisecond)
	emit(netsim.Event{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1})
	return nil
}

var registerSlow sync.Once

func slowSpec(t *testing.T) string {
	t.Helper()
	registerSlow.Do(func() {
		if err := netsim.Register(slowScenario{}); err != nil {
			t.Fatal(err)
		}
	})
	return "api-slow-test"
}

// TestCancelledContextNeverPoisonsCache is the satellite acceptance:
// a request cancelled mid-generation leaves no cache entry, and the
// same request later recomputes cleanly.
func TestCancelledContextNeverPoisonsCache(t *testing.T) {
	spec := slowSpec(t)
	svc := New()
	req := NewGenerateRequest(spec, WithWorkers(2))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := svc.Generate(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled generate: err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 800*time.Millisecond {
		t.Errorf("cancelled generate still took %v", elapsed)
	}
	if st := svc.CacheStats(); st.Len != 0 {
		t.Fatalf("cancelled run left %d cache entries", st.Len)
	}

	// The same request on a live context computes and caches.
	res, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("post-cancellation request claimed a cache hit; the cancelled run poisoned the cache")
	}
	again, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("completed run was not cached")
	}
}

// TestSessionsTrackAndCancelInFlight: in-flight work is visible in
// the registry and abortable through it.
func TestSessionsTrackAndCancelInFlight(t *testing.T) {
	spec := slowSpec(t)
	svc := New()
	errc := make(chan error, 1)
	go func() {
		_, err := svc.Generate(context.Background(), NewGenerateRequest(spec, WithWorkers(2)))
		errc <- err
	}()

	var sess []SessionInfo
	deadline := time.Now().Add(2 * time.Second)
	for len(sess) == 0 && time.Now().Before(deadline) {
		sess = svc.Sessions()
		time.Sleep(5 * time.Millisecond)
	}
	if len(sess) != 1 {
		t.Fatalf("in-flight sessions = %d, want 1", len(sess))
	}
	if sess[0].Kind != "generate" || !strings.Contains(sess[0].Key, spec) {
		t.Errorf("session = %+v", sess[0])
	}
	if !svc.CancelSession(sess[0].ID) {
		t.Fatal("CancelSession did not find the in-flight session")
	}
	select {
	case err := <-errc:
		if !errors.Is(err, ErrSessionCancelled) {
			t.Errorf("cancelled session returned %v, want ErrSessionCancelled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled generation did not return")
	}
	if got := svc.Sessions(); len(got) != 0 {
		t.Errorf("registry still holds %d sessions after completion", len(got))
	}
	if svc.CancelSession(sess[0].ID) {
		t.Error("CancelSession found a finished session")
	}
}

func TestGenerateValidation(t *testing.T) {
	svc := New()
	for name, req := range map[string]GenerateRequest{
		"empty spec":        {},
		"negative duration": {Spec: "scan", Duration: -1},
		"nan rate":          {Spec: "scan", Rate: math.NaN()},
		"negative window":   {Spec: "scan", Window: -2},
		"negative scale":    {Spec: "scan", Scale: -1},
		"negative hosts":    {Spec: "scan", Hosts: -5},
		"unknown scenario":  {Spec: "nope"},
		"broken spec":       {Spec: "overlay(background"},
	} {
		_, err := svc.Generate(context.Background(), req)
		if !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: err = %v, want ErrInvalidRequest", name, err)
		}
	}
	// The unknown-scenario message lists the catalog, pointing lost
	// users somewhere useful.
	_, err := svc.Generate(context.Background(), GenerateRequest{Spec: "nope"})
	if err == nil || !strings.Contains(err.Error(), "available:") || !strings.Contains(err.Error(), "ddos") {
		t.Errorf("unknown-scenario error %q does not list the catalog", err)
	}
}

func TestAnalyzeSpecSharesGenerateCache(t *testing.T) {
	svc := New()
	if _, err := svc.Generate(context.Background(),
		NewGenerateRequest("scan", WithSeed(1), WithWorkers(1), WithParams(4, 4, 1))); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Analyze(context.Background(), AnalyzeRequest{Spec: "scan", Seed: 1, Workers: 1, Duration: 4, Rate: 4, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("analyze of a generated spec missed the shared cache")
	}
	if res.Source != "spec" || res.Aggregate.Profile.NNZ == 0 {
		t.Errorf("analyze result = %+v", res)
	}
}

func TestAnalyzePostedMatrix(t *testing.T) {
	svc := New()
	// A 10-host matrix with a destination supernode in blue space:
	// every other host floods column 3.
	rows := make([][]int, 10)
	for i := range rows {
		rows[i] = make([]int, 10)
		if i != 3 {
			rows[i][3] = 10
		}
	}
	res, err := svc.Analyze(context.Background(), AnalyzeRequest{Matrix: rows})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "matrix" || res.Hosts != 10 {
		t.Errorf("result header = %+v", res)
	}
	if res.Aggregate.Profile.NNZ != 9 {
		t.Errorf("profile nnz = %d, want 9", res.Aggregate.Profile.NNZ)
	}
	if len(res.Supernodes) == 0 || res.Supernodes[0].Host != "SRV1" || res.Supernodes[0].Direction != "in" {
		t.Errorf("supernodes = %+v, want SRV1 fan-in first", res.Supernodes)
	}

	for name, req := range map[string]AnalyzeRequest{
		"neither":       {},
		"both":          {Spec: "scan", Matrix: rows},
		"ragged":        {Matrix: [][]int{{1, 2}, {3}}},
		"not square":    {Matrix: [][]int{{1, 2, 3}, {4, 5, 6}}},
		"bad zone ends": {Matrix: rows, BlueEnd: 8, GreyEnd: 4},
	} {
		if _, err := svc.Analyze(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: err = %v, want ErrInvalidRequest", name, err)
		}
	}
}

func TestModuleFromSpecAndPattern(t *testing.T) {
	svc := New()
	m, err := svc.Module(context.Background(), ModuleRequest{Spec: "ddos", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(); !issues.OK() {
		t.Fatalf("spec module invalid:\n%s", issues.Errs())
	}
	if !m.HasQuestion {
		t.Error("spec module has no question")
	}

	pm, err := svc.Module(context.Background(), ModuleRequest{Pattern: "fig9c-ddos-attack"})
	if err != nil {
		t.Fatal(err)
	}
	if issues := pm.Validate(); !issues.OK() {
		t.Fatalf("pattern module invalid:\n%s", issues.Errs())
	}

	for name, req := range map[string]ModuleRequest{
		"neither":         {},
		"both":            {Spec: "ddos", Pattern: "fig9c-ddos-attack"},
		"unknown pattern": {Pattern: "fig99-nope"},
	} {
		if _, err := svc.Module(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: err = %v, want ErrInvalidRequest", name, err)
		}
	}
}

func TestCampaignSynthesis(t *testing.T) {
	svc := New()
	c, err := svc.Campaign(context.Background(), CampaignRequest{Spec: "attack", Seed: 7, Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Lessons) < 2 {
		t.Errorf("campaign has %d lessons, want overview + timeline", len(c.Lessons))
	}
	if _, err := svc.Campaign(context.Background(), CampaignRequest{Spec: "attack"}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("window-less campaign: err = %v, want ErrInvalidRequest", err)
	}
}

func TestCatalogListsScenariosAndPatterns(t *testing.T) {
	svc := New()
	cat := svc.Catalog(context.Background())
	if cat.Version != Version {
		t.Errorf("catalog version = %q", cat.Version)
	}
	names := map[string]bool{}
	for _, s := range cat.Scenarios {
		names[s.Name] = true
	}
	for _, want := range []string{"background", "scan", "attack", "ddos", "worm", "exfil", "flashcrowd", "beacon"} {
		if !names[want] {
			t.Errorf("catalog missing scenario %q", want)
		}
	}
	if len(cat.Patterns) == 0 {
		t.Error("catalog lists no figure patterns")
	}
}

func TestWindowModuleExport(t *testing.T) {
	svc := New()
	res, err := svc.Generate(context.Background(),
		NewGenerateRequest("ddos", WithSeed(2), WithWorkers(1), WithParams(4, 4, 1), WithWindow(2)))
	if err != nil {
		t.Fatal(err)
	}
	busiest := &res.Windows[0]
	for i := range res.Windows {
		if res.Windows[i].Packets > busiest.Packets {
			busiest = &res.Windows[i]
		}
	}
	m := WindowModule(res, busiest, "twsim")
	if m.Name != "Captured Ddos Traffic" || m.Author != "twsim" {
		t.Errorf("module header = %q by %q", m.Name, m.Author)
	}
	if issues := m.Validate(); !issues.OK() {
		t.Fatalf("window module invalid:\n%s", issues.Errs())
	}
}

// TestGenerateRequestBounds: one request cannot demand a network or
// window count that would exhaust a served deployment.
func TestGenerateRequestBounds(t *testing.T) {
	svc := New()
	for name, req := range map[string]GenerateRequest{
		"oversized network": {Spec: "scan", Hosts: MaxHosts + 1},
		"endless run":       {Spec: "scan", Duration: MaxDuration * 2},
		"firehose rate":     {Spec: "scan", Rate: MaxRate * 2},
		"oversized scale":   {Spec: "scan", Scale: MaxScale + 1},
		"too many windows":  {Spec: "scan", Duration: 1000, Window: 0.001},
	} {
		if _, err := svc.Generate(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: err = %v, want ErrInvalidRequest", name, err)
		}
	}
}

// TestAnalyzeTinyMatrixZones: the default zone layout stays within
// the axis even for matrices too small to hold all three zones.
func TestAnalyzeTinyMatrixZones(t *testing.T) {
	svc := New()
	for n := 1; n <= 4; n++ {
		rows := make([][]int, n)
		for i := range rows {
			rows[i] = make([]int, n)
			rows[i][(i+1)%n] = 5
		}
		res, err := svc.Analyze(context.Background(), AnalyzeRequest{Matrix: rows})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Aggregate.Profile.N != n {
			t.Errorf("n=%d: profile.N = %d", n, res.Aggregate.Profile.N)
		}
	}
}

// countScenario counts every emitted event so the coalescing test
// can prove how many generations actually ran.
var countEmits atomic.Int64

type countScenario struct{}

func (countScenario) Name() string                              { return "api-count-test" }
func (countScenario) Description() string                       { return "emission-counting scenario for api tests" }
func (countScenario) Shape() string                             { return "one cell, counted" }
func (countScenario) Chunks(*netsim.Network, netsim.Params) int { return 50 }
func (countScenario) Emit(net *netsim.Network, rng *rand.Rand, p netsim.Params, chunk int, emit func(netsim.Event)) error {
	countEmits.Add(1)
	time.Sleep(2 * time.Millisecond)
	emit(netsim.Event{Time: 0, Src: "WS1", Dst: "SRV1", Packets: 1})
	return nil
}

var registerCount sync.Once

// TestConcurrentColdRequestsCoalesce: a thundering herd of identical
// cold requests runs exactly one generation; everyone shares it.
func TestConcurrentColdRequestsCoalesce(t *testing.T) {
	registerCount.Do(func() {
		if err := netsim.Register(countScenario{}); err != nil {
			t.Fatal(err)
		}
	})
	countEmits.Store(0)
	svc := New()
	req := NewGenerateRequest("api-count-test", WithWorkers(2))
	const herd = 8
	results := make(chan *GenerateResult, herd)
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		go func() {
			res, err := svc.Generate(context.Background(), req)
			results <- res
			errs <- err
		}()
	}
	hits := 0
	for i := 0; i < herd; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		if res := <-results; res.CacheHit {
			hits++
		}
	}
	if got := countEmits.Load(); got != 50 {
		t.Errorf("herd of %d ran %d chunk emissions, want 50 (one generation)", herd, got)
	}
	if hits != herd-1 {
		t.Errorf("%d of %d requests shared the run, want %d", hits, herd, herd-1)
	}
}

// TestIncludeMatricesIsPerCall: the cells grids are derived per
// request, so requests differing only in include_matrices share one
// cache entry and each still gets exactly what it asked for.
func TestIncludeMatricesIsPerCall(t *testing.T) {
	svc := New()
	plain, err := svc.Generate(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cells != nil {
		t.Error("cold request without include_matrices carries cells")
	}
	withCells, err := svc.Generate(context.Background(), quick(WithMatrices()))
	if err != nil {
		t.Fatal(err)
	}
	if !withCells.CacheHit {
		t.Error("include_matrices variant missed the shared cache entry")
	}
	if len(withCells.Cells) != withCells.Hosts {
		t.Errorf("cache-hit with include_matrices has %d cell rows, want %d", len(withCells.Cells), withCells.Hosts)
	}
	for _, w := range withCells.Windows {
		if len(w.Cells) != withCells.Hosts {
			t.Fatalf("window %d missing cells on include_matrices hit", w.Index)
		}
	}
	plainAgain, err := svc.Generate(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if plainAgain.Cells != nil || (len(plainAgain.Windows) > 0 && plainAgain.Windows[0].Cells != nil) {
		t.Error("include_matrices leaked into the shared cache entry")
	}
}

// TestAnalyzeMatrixHonorsCancelledContext: even the synchronous
// matrix path reports cancellation instead of a result.
func TestAnalyzeMatrixHonorsCancelledContext(t *testing.T) {
	svc := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := svc.Analyze(ctx, AnalyzeRequest{Matrix: [][]int{{0, 1}, {1, 0}}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled analyze: err = %v, want context.Canceled", err)
	}
}

// TestGenerateEventBudget: the per-factor caps compose, so the
// product is bounded too.
func TestGenerateEventBudget(t *testing.T) {
	svc := New()
	req := GenerateRequest{Spec: "background", Duration: 1e6, Rate: 1e6, Scale: 1 << 20}
	if _, err := svc.Generate(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("budget-busting request: err = %v, want ErrInvalidRequest", err)
	}
}

// TestCancelSessionStopsCoalescedHerd: killing the one visible
// session aborts every coalesced waiter — nobody re-elects a leader
// and silently restarts work an operator just killed.
func TestCancelSessionStopsCoalescedHerd(t *testing.T) {
	spec := slowSpec(t)
	svc := New()
	const herd = 4
	errc := make(chan error, herd)
	for i := 0; i < herd; i++ {
		go func() {
			_, err := svc.Generate(context.Background(), NewGenerateRequest(spec, WithWorkers(2)))
			errc <- err
		}()
	}
	var sess []SessionInfo
	deadline := time.Now().Add(2 * time.Second)
	for len(sess) == 0 && time.Now().Before(deadline) {
		sess = svc.Sessions()
		time.Sleep(5 * time.Millisecond)
	}
	if len(sess) != 1 {
		t.Fatalf("coalesced herd shows %d sessions, want 1", len(sess))
	}
	if !svc.CancelSession(sess[0].ID) {
		t.Fatal("CancelSession did not find the herd's session")
	}
	for i := 0; i < herd; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrSessionCancelled) {
				t.Errorf("herd member %d returned %v, want ErrSessionCancelled", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("herd member did not return after CancelSession")
		}
	}
	if got := svc.Sessions(); len(got) != 0 {
		t.Errorf("sessions after herd cancel = %d, want 0 (no re-elected leader)", len(got))
	}
}

// TestModuleAndCampaignAreCached: the authoring paths share the
// result cache like Generate.
func TestModuleAndCampaignAreCached(t *testing.T) {
	svc := New()
	req := ModuleRequest{Spec: "ddos", Seed: 7}
	first, err := svc.Module(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	before := svc.CacheStats()
	second, err := svc.Module(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	after := svc.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Errorf("repeated module request did not hit the cache (hits %d → %d)", before.Hits, after.Hits)
	}
	if first != second {
		t.Error("cached module is not the shared instance")
	}

	creq := CampaignRequest{Spec: "attack", Seed: 7, Window: 10}
	if _, err := svc.Campaign(context.Background(), creq); err != nil {
		t.Fatal(err)
	}
	before = svc.CacheStats()
	if _, err := svc.Campaign(context.Background(), creq); err != nil {
		t.Fatal(err)
	}
	if after := svc.CacheStats(); after.Hits != before.Hits+1 {
		t.Errorf("repeated campaign request did not hit the cache")
	}
}

// TestAnalyzeRejectsNegativeAndOversizedMatrices: the posted-matrix
// path enforces the documented contract.
func TestAnalyzeRejectsNegativeAndOversizedMatrices(t *testing.T) {
	svc := New()
	if _, err := svc.Analyze(context.Background(), AnalyzeRequest{Matrix: [][]int{{0, -5}, {2, 0}}}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("negative cells: err = %v, want ErrInvalidRequest", err)
	}
	huge := make([][]int, MaxHosts+1)
	if _, err := svc.Analyze(context.Background(), AnalyzeRequest{Matrix: huge}); !errors.Is(err, ErrInvalidRequest) {
		t.Errorf("oversized matrix: err = %v, want ErrInvalidRequest", err)
	}
}
