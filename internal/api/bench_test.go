package api

import (
	"context"
	"testing"
)

// benchRequest is heavy enough that generation dominates: the
// cold/hot pair below is the acceptance measurement that a cache hit
// is far cheaper than a cold generation.
func benchRequest() GenerateRequest {
	return NewGenerateRequest("overlay(background, sequence(scan, ddos))",
		WithSeed(42), WithHosts(200), WithParams(40, 8, 4), WithWindow(10))
}

// BenchmarkGenerateCold measures the uncached pipeline: a fresh
// service (empty cache) per iteration.
func BenchmarkGenerateCold(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := New()
		if _, err := svc.Generate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateCacheHit measures the classroom hot path: one
// service, primed once, then repeated identical requests.
func BenchmarkGenerateCacheHit(b *testing.B) {
	svc := New()
	req := benchRequest()
	if _, err := svc.Generate(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Generate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("hot request missed the cache")
		}
	}
}
