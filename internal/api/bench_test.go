package api

import (
	"context"
	"fmt"
	"testing"
)

// benchRequest is heavy enough that generation dominates: the
// cold/hot pair below is the acceptance measurement that a cache hit
// is far cheaper than a cold generation.
func benchRequest() GenerateRequest {
	return NewGenerateRequest("overlay(background, sequence(scan, ddos))",
		WithSeed(42), WithHosts(200), WithParams(40, 8, 4), WithWindow(10))
}

// BenchmarkGenerateCold measures the uncached pipeline: a fresh
// service (empty cache) per iteration.
func BenchmarkGenerateCold(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := New()
		if _, err := svc.Generate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// cold300Request is the PR 7 acceptance workload: the in-process cold
// generate path on a 300-host network, 1.2M-event budget, windowed.
// Workers are pinned so the measurement is machine-independent.
func cold300Request() GenerateRequest {
	return NewGenerateRequest("background",
		WithSeed(7), WithHosts(300), WithWorkers(4), WithParams(600, 2000, 1), WithWindow(10))
}

// benchCold300 measures steady-state cold generation on one service:
// the cache is disabled so every iteration runs the whole
// generate→merge→compact pipeline, and one priming request runs
// before the timer so a pooled service is measured with warm arenas
// (the steady state a served process lives in) rather than on its
// very first fill.
func benchCold300(b *testing.B, opts ...Option) {
	svc := New(append([]Option{WithCacheCapacity(0)}, opts...)...)
	req := cold300Request()
	if _, err := svc.Generate(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Generate(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateCold300 is the pooled acceptance benchmark: its
// allocs/op against BenchmarkGenerateCold300Unpooled is the measured
// win, and its committed BENCH_PR7.json value is the CI regression
// gate.
func BenchmarkGenerateCold300(b *testing.B) { benchCold300(b) }

// BenchmarkGenerateCold300Unpooled is the same workload with the
// arena disabled: the pre-PR 7 allocation behaviour, kept runnable so
// the pooled/unpooled gap stays measurable on any machine.
func BenchmarkGenerateCold300Unpooled(b *testing.B) { benchCold300(b, WithoutPooling()) }

// benchCacheParallelGet measures the warm lookup path under
// contention: many goroutines hammering Get on one cache built with
// the given stripe count. shards=1 is the old single-mutex cache —
// every lookup serialized behind one lock even though a hit only
// reads a map entry and bumps a recency pointer. The sharded
// variants let lookups on different stripes proceed concurrently;
// the delta between shards=1 and shards=32 is the contention the
// single mutex was costing. SetParallelism inflates the goroutine
// count well past GOMAXPROCS so the convoy effect is visible even on
// small runners.
func benchCacheParallelGet(b *testing.B, shards int) {
	c := newShardedCache(4096, shards)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s|gen|spec=bench-%d|n=200|seed=%d", Version, i, i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.SetParallelism(16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, ok := c.Get(keys[i&1023]); !ok {
				b.Error("primed key missed")
				return
			}
			i += 7 // stride so neighbours land on different stripes
		}
	})
}

func BenchmarkCacheParallelGet(b *testing.B) {
	for _, shards := range []int{1, 4, 32} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchCacheParallelGet(b, shards)
		})
	}
}

// BenchmarkGenerateCacheHit measures the classroom hot path: one
// service, primed once, then repeated identical requests.
func BenchmarkGenerateCacheHit(b *testing.B) {
	svc := New()
	req := benchRequest()
	if _, err := svc.Generate(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Generate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("hot request missed the cache")
		}
	}
}
