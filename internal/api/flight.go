package api

import (
	"context"
	"errors"
	"sync"
)

// flightGroup coalesces concurrent cold requests for the same
// canonical key: the classroom thundering herd — thirty students
// posting the same assigned spec inside one generation's runtime —
// runs one generation, and everyone else waits for that result. A
// stdlib-only stand-in for x/sync/singleflight with one twist: a
// leader cancelled by its own caller must not fail the herd, so a
// waiter whose own context is still live retries and elects a new
// leader instead of inheriting the cancellation.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight computation; done closes when res/err
// are final.
type flightCall struct {
	done chan struct{}
	res  any
	err  error
}

// do runs fn for key, unless another caller is already running it —
// then it waits and shares that caller's outcome (shared=true).
// Waiting respects the waiter's own context. An ErrSessionCancelled
// leader failure is shared, not retried: the operator killed that
// run on purpose.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (res any, shared bool, err error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[string]*flightCall)
		}
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if c.err != nil && errors.Is(c.err, context.Canceled) {
				// The leader's caller hung up, not ours: take the
				// lead ourselves.
				continue
			}
			return c.res, true, c.err
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()
		c.res, c.err = fn()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		return c.res, false, c.err
	}
}
