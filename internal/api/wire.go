package api

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
)

// Pooled wire encoding. Large /v1/generate responses and stream
// frames used to marshal into a fresh byte slice per call — for a
// 300-host windowed result that is megabytes of garbage per request.
// The encoders here marshal into pooled buffers and hand the bytes to
// the writer in a single Write, so the serve path's steady-state
// encoding cost is the copy onto the socket, not the allocation.
//
// The buffers live in a sync.Pool (unlike the generation arenas'
// explicit free-lists): encode buffers are not part of the
// deterministic allocs/op CI gate, and GC-mediated retention is
// exactly right for bursty response sizes.

// maxPooledEncodeBytes bounds what a drained encode buffer may retain
// when refiled: a rare oversized response should not pin megabytes in
// the pool forever.
const maxPooledEncodeBytes = 1 << 20

type wireEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var wirePool = sync.Pool{New: func() any {
	we := &wireEncoder{}
	we.enc = json.NewEncoder(&we.buf)
	return we
}}

func getWireEncoder() *wireEncoder {
	we := wirePool.Get().(*wireEncoder)
	we.buf.Reset()
	return we
}

func putWireEncoder(we *wireEncoder) {
	if we.buf.Cap() > maxPooledEncodeBytes {
		return
	}
	wirePool.Put(we)
}

// WriteJSON encodes v as two-space-indented JSON followed by a
// newline (the twserve response format) through a pooled buffer,
// reaching the writer in a single Write call.
func WriteJSON(w io.Writer, v any) error {
	we := getWireEncoder()
	defer putWireEncoder(we)
	we.enc.SetIndent("", "  ")
	if err := we.enc.Encode(v); err != nil {
		return err
	}
	_, err := w.Write(we.buf.Bytes())
	return err
}
