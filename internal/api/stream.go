package api

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/patterns"
)

// The streaming variant of Generate. Batch Generate holds the whole
// run — trace, windows, readings — until everything is done;
// GenerateStream emits NDJSON-able frames as the run progresses, one
// meta frame up front, one window frame per sealed aggregation
// window (bit-identical to the batch WindowResult, because both
// paths share windowResult and the engine's streaming windows are
// bit-identical to the batch ones), and one summary frame with the
// whole-run aggregate analysis at the end.
//
// Streaming requests deliberately bypass the result cache and the
// flight group: a stream's value is its timing, its windows leave
// the process as they are produced, and a consumer hangup mid-run
// must never insert a partial result — so nothing of a stream is
// ever cached and no two streams coalesce. A cancelled stream
// followed by a batch request for the same key recomputes from cold
// (pinned by TestStreamThenBatchRecomputes).

// StreamMeta is the stream's opening frame payload: everything about
// the run that is known before generation starts, mirroring the
// header fields of GenerateResult.
type StreamMeta struct {
	Version  string  `json:"version"`
	Spec     string  `json:"spec"`
	Scenario string  `json:"scenario"`
	Shape    string  `json:"shape"`
	Hosts    int     `json:"hosts"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
	Duration float64 `json:"duration"`
	// Window is the aggregation window length in seconds; Windows is
	// how many window frames the stream will carry if it runs to
	// completion.
	Window  float64  `json:"window"`
	Windows int      `json:"windows"`
	Labels  []string `json:"labels"`
	// Schedule and ComposedOf mirror GenerateResult.
	Schedule   []Phase  `json:"schedule,omitempty"`
	ComposedOf []string `json:"composed_of,omitempty"`
}

// StreamSummary is the stream's closing frame payload: the whole-run
// tallies and the aggregate sparse-path analysis, exactly the values
// the batch result carries.
type StreamSummary struct {
	Events    int       `json:"events"`
	Packets   int       `json:"packets"`
	Aggregate Aggregate `json:"aggregate"`
	Timings   Timings   `json:"timings"`
}

// Frame types. A well-formed stream is meta, then zero or more
// window frames in index order, then exactly one summary — or an
// error frame at the point of failure instead.
const (
	FrameMeta    = "meta"
	FrameWindow  = "window"
	FrameSummary = "summary"
	FrameError   = "error"
)

// StreamFrame is one NDJSON line of a generate stream: a type tag
// plus exactly the payload field matching the type.
type StreamFrame struct {
	Type    string         `json:"type"`
	Meta    *StreamMeta    `json:"meta,omitempty"`
	Window  *WindowResult  `json:"window,omitempty"`
	Summary *StreamSummary `json:"summary,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// validate rejects frames whose payload does not match their type —
// the shared gate that keeps encoder and decoder honest about the
// wire contract.
func (f StreamFrame) validate() error {
	var want string
	switch f.Type {
	case FrameMeta:
		if f.Meta == nil {
			return fmt.Errorf("api: meta frame without meta payload")
		}
		want = FrameMeta
	case FrameWindow:
		if f.Window == nil {
			return fmt.Errorf("api: window frame without window payload")
		}
		want = FrameWindow
	case FrameSummary:
		if f.Summary == nil {
			return fmt.Errorf("api: summary frame without summary payload")
		}
		want = FrameSummary
	case FrameError:
		if f.Error == "" {
			return fmt.Errorf("api: error frame without message")
		}
		want = FrameError
	default:
		return fmt.Errorf("api: unknown frame type %q", f.Type)
	}
	if f.Meta != nil && want != FrameMeta {
		return fmt.Errorf("api: %s frame carries a meta payload", f.Type)
	}
	if f.Window != nil && want != FrameWindow {
		return fmt.Errorf("api: %s frame carries a window payload", f.Type)
	}
	if f.Summary != nil && want != FrameSummary {
		return fmt.Errorf("api: %s frame carries a summary payload", f.Type)
	}
	if f.Error != "" && want != FrameError {
		return fmt.Errorf("api: %s frame carries an error message", f.Type)
	}
	return nil
}

// MaxFrameBytes bounds one encoded frame line. Window frames with
// dense cells on a large axis are the biggest legitimate frames;
// the cap matches twserve's request body bound.
const MaxFrameBytes = 8 << 20

// EncodeFrame writes one frame as a single NDJSON line through a
// pooled buffer: the line (json.Encoder appends the newline itself)
// is validated, bounded, and handed to the writer in one Write, and
// the buffer recycles for the next frame instead of becoming
// per-frame garbage.
func EncodeFrame(w io.Writer, f StreamFrame) error {
	if err := f.validate(); err != nil {
		return err
	}
	we := getWireEncoder()
	defer putWireEncoder(we)
	we.enc.SetIndent("", "")
	if err := we.enc.Encode(f); err != nil {
		return err
	}
	if we.buf.Len() > MaxFrameBytes {
		return fmt.Errorf("api: frame of %d bytes exceeds the %d limit", we.buf.Len(), MaxFrameBytes)
	}
	_, err := w.Write(we.buf.Bytes())
	return err
}

// FrameDecoder reads a generate stream frame by frame: the consumer
// half of the NDJSON contract, used by twsim's stream mode and the
// tests, and fuzzed against malformed input (FuzzFrameCodec).
type FrameDecoder struct {
	sc *bufio.Scanner
}

// NewFrameDecoder wraps a stream reader. Lines beyond MaxFrameBytes
// fail decoding rather than growing without bound.
func NewFrameDecoder(r io.Reader) *FrameDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)
	return &FrameDecoder{sc: sc}
}

// Next returns the next frame, io.EOF at clean end of stream, or a
// descriptive error for malformed input (never a panic). Blank lines
// between frames are tolerated.
func (d *FrameDecoder) Next() (StreamFrame, error) {
	for d.sc.Scan() {
		line := d.sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		var f StreamFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return StreamFrame{}, fmt.Errorf("api: malformed stream frame: %w", err)
		}
		if err := f.validate(); err != nil {
			return StreamFrame{}, err
		}
		return f, nil
	}
	if err := d.sc.Err(); err != nil {
		return StreamFrame{}, err
	}
	return StreamFrame{}, io.EOF
}

// trimSpace is bytes.TrimSpace for the only whitespace NDJSON lines
// can legally carry, avoiding an allocation per frame.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// GenerateStream runs the request as an incremental stream: emit
// receives the meta frame, each window frame the moment the engine
// seals that window, and finally the summary frame. Window must be
// positive — a stream with no windows is just Generate. An emit
// error (typically the consumer hanging up) stops generation at
// chunk granularity and is returned; frames already emitted stand.
// The result cache is bypassed entirely in both directions.
func (svc *Service) GenerateStream(ctx context.Context, req GenerateRequest, emit func(StreamFrame) error) error {
	if err := req.validate(); err != nil {
		return err
	}
	if req.Window <= 0 {
		return fmt.Errorf("%w: streaming requires a positive window, got %g", ErrInvalidRequest, req.Window)
	}
	scn, err := resolveSpec(req.Spec)
	if err != nil {
		return err
	}
	canonical := netsim.SpecString(scn)
	net := netsim.ScaledNetwork(req.Hosts)
	zones, err := net.Zones()
	if err != nil {
		return err
	}
	workers := svc.resolveWorkers(req.Workers)
	p := req.params().Normalized()

	fctx, end := svc.sessions.Begin(ctx, "stream", req.cacheKey(canonical, net.Len()))
	defer end()
	// A consumer that fails mid-stream (hangup, encode error) must
	// stop the generation workers promptly, not just surface an error
	// after they finish the run: cancel the run's context on the first
	// emit failure, and refuse every later frame so nothing is emitted
	// after a failure — the regression the post-first-frame error test
	// pins.
	sctx, cancel := context.WithCancelCause(fctx)
	defer cancel(nil)
	var emitFailed atomic.Bool
	send := func(f StreamFrame) error {
		if emitFailed.Load() {
			return context.Cause(sctx)
		}
		if err := emit(f); err != nil {
			emitFailed.Store(true)
			cancel(err)
			return err
		}
		return nil
	}

	nw := int(math.Ceil(p.Duration / req.Window))
	if nw < 1 {
		nw = 1
	}
	meta := &StreamMeta{
		Version: Version, Spec: canonical, Scenario: scn.Name(), Shape: scn.Shape(),
		Hosts: net.Len(), Seed: req.Seed, Workers: workers,
		Duration: p.Duration, Window: req.Window, Windows: nw,
		Labels: net.Labels(),
	}
	if sched, ok := scn.(netsim.Scheduler); ok {
		for _, ph := range sched.Schedule(p) {
			meta.Schedule = append(meta.Schedule, Phase{Label: ph.Label, Start: ph.Start, End: ph.End})
		}
	}
	if _, ok := scn.(netsim.Composite); ok {
		for _, leaf := range netsim.Leaves(scn) {
			meta.ComposedOf = append(meta.ComposedOf, leaf.Name())
		}
	}
	if err := send(StreamFrame{Type: FrameMeta, Meta: meta}); err != nil {
		return sessionErr(fctx, err)
	}

	roles, rolesErr := patterns.AssignDDoSRoles(zones)
	labels := net.Labels()
	genStart := time.Now()
	csr, stats, err := netsim.StreamCSRArena(sctx, svc.arena, scn, net, req.Seed, workers, p, req.Window, p.Duration,
		func(k int, w netsim.SparseWindow) error {
			wr := windowResult(k, w, zones, roles, rolesErr, labels)
			if req.IncludeMatrices {
				wr.Cells = wr.Matrix.ToDense().ToRows()
			}
			return send(StreamFrame{Type: FrameWindow, Window: &wr})
		})
	if err != nil {
		// A run stopped by an emit failure reports the consumer's
		// error, not the context.Canceled our own cancel induced —
		// whichever of the two surfaced first from the worker pool.
		if emitFailed.Load() {
			err = context.Cause(sctx)
		}
		return sessionErr(fctx, err)
	}
	genElapsed := time.Since(genStart)

	analyzeStart := time.Now()
	agg := analyzeMatrix(csr, zones)
	analyzeElapsed := time.Since(analyzeStart)
	summary := &StreamSummary{
		Events: stats.Events, Packets: stats.Packets, Aggregate: agg,
		Timings: Timings{Generate: genElapsed, Analyze: analyzeElapsed},
	}
	return sessionErr(fctx, send(StreamFrame{Type: FrameSummary, Summary: summary}))
}
