// Package api is the versioned programmatic façade over the whole
// traffic-matrix pipeline: every front-end — the twsim and twmodule
// CLIs, the twserve HTTP server, a future game client — goes through
// it instead of hand-wiring netsim→matrix→patterns→bridge.
//
// The surface is a small set of typed request/response pairs on a
// Service value:
//
//	svc := api.New(api.WithCacheCapacity(128))
//	res, err := svc.Generate(ctx, api.NewGenerateRequest("overlay(background, scan)",
//	        api.WithSeed(42), api.WithWindow(10)))
//
// Four properties define the layer:
//
//   - Context-aware: every call takes a context.Context, and
//     cancellation is threaded all the way into the sharded netsim
//     chunk workers, the matrix shard merge, and the window
//     compaction loops — a caller hanging up aborts the work, not
//     just the wait.
//
//   - Cached: generation is deterministic (same spec, seed, and
//     parameters ⇒ same traffic, for any worker count), so results
//     are memoized in a bounded LRU keyed by the canonical spec
//     string (netsim.SpecString) plus normalized parameters. The
//     classroom hot path — thirty students requesting the same
//     scenario — hits the cache after the first generation.
//     Cancelled or failed runs never enter the cache. GenerateStream
//     is the deliberate exception: it delivers NDJSON-ready frames
//     (meta, one per sealed window as netsim.StreamCSR finalizes it,
//     then summary — see StreamFrame, EncodeFrame, FrameDecoder) and
//     bypasses the cache and request coalescing entirely, since a
//     partially consumed stream must never seed either.
//
//   - Observable: a concurrent session registry tracks in-flight
//     requests (Sessions, CancelSession), CacheStats exposes
//     hit/miss/eviction counters with a per-stripe breakdown, and
//     Stats reports the full worker view (StatsReport).
//
//   - Versioned: Version names the wire contract; twserve mounts
//     every route under it ("/v1/generate", …), and results carry it
//     so stored documents are self-describing.
//
// Internally the cache, the session registry, and the singleflight
// group are lock-striped (see sharded.go): a key's stripe is a pure
// function of its avalanche-finalized hash, so concurrent requests
// contend only on stripe collisions, never on one global mutex. The
// Core interface names the full serving surface; internal/router
// fronts N Services with a consistent spec-hash ring behind the same
// interface, which is how `twserve -workers N` scales out. RouteKey
// on each request type exposes the canonical routing identity, and
// WithSessionIDs lets a fleet share one session-ID source so IDs
// stay process-unique across workers.
package api
