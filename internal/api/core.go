package api

import (
	"context"

	"repro/internal/bridge"
	"repro/internal/core"
	"repro/internal/netsim"
)

// Core is the full façade surface a front-end serves: every request
// method plus the observability probes. A single *Service implements
// it, and so does router.Pool — which is what lets twserve swap one
// worker for a sharded fleet without the route table noticing.
type Core interface {
	Generate(ctx context.Context, req GenerateRequest) (*GenerateResult, error)
	GenerateStream(ctx context.Context, req GenerateRequest, emit func(StreamFrame) error) error
	Analyze(ctx context.Context, req AnalyzeRequest) (*AnalyzeResult, error)
	Module(ctx context.Context, req ModuleRequest) (*core.Module, error)
	Campaign(ctx context.Context, req CampaignRequest) (*bridge.Campaign, error)
	Catalog(ctx context.Context) *CatalogResult
	PlayerCreate(ctx context.Context, req PlayerCreateRequest) (*PlayerResult, error)
	PlayerGet(ctx context.Context, req PlayerGetRequest) (*PlayerResult, error)
	PlayerAttemptStart(ctx context.Context, req AttemptStartRequest) (*AttemptResult, error)
	PlayerAttemptSubmit(ctx context.Context, req AttemptSubmitRequest) (*SubmitResult, error)
	PlayerProgress(ctx context.Context, req ProgressRequest) (*ProgressResult, error)
	PlayerMastery(ctx context.Context) (*MasteryResult, error)
	Sessions() []SessionInfo
	CancelSession(id int64) bool
	CacheStats() CacheStats
	Stats() StatsReport
}

var _ Core = (*Service)(nil)

// WorkerStats is one worker's slice of a StatsReport: its cache
// counters (with the per-shard breakdown), its in-flight session
// count, and its arena pool counters.
type WorkerStats struct {
	Worker   int               `json:"worker"`
	Cache    CacheStats        `json:"cache"`
	Sessions int               `json:"sessions"`
	Arena    netsim.ArenaStats `json:"arena"`
	// Backend names the twserve process the worker lives in when the
	// report was aggregated by a cluster proxy; empty in-process.
	Backend string `json:"backend,omitempty"`
}

// BackendStats is one backend process's summary inside a cluster
// proxy's StatsReport: its base URL, how many in-process workers it
// fronts, its fleet-aggregate cache counters, and its in-flight
// session count. A backend that failed its stats probe reports the
// error instead (its counters zero) — the cluster report stays
// servable when one member is down.
type BackendStats struct {
	Backend  string     `json:"backend"`
	Workers  int        `json:"workers"`
	Cache    CacheStats `json:"cache"`
	Sessions int        `json:"sessions"`
	Error    string     `json:"error,omitempty"`
}

// ClusterStats is the proxy-mode extension of a StatsReport: the
// per-backend summaries plus cluster totals, so one scrape of the
// proxy's /v1/stats sees the whole topology instead of only the
// proxy's own (stateless) process.
type ClusterStats struct {
	Backends []BackendStats `json:"backends"`
	// Totals sums every live backend's cache counters; Sessions sums
	// their in-flight counts.
	Totals   CacheStats `json:"totals"`
	Sessions int        `json:"sessions"`
}

// StatsReport is the /v1/stats payload: per-worker, per-shard
// observability for a served deployment. A single service reports
// one worker; a router pool reports one entry per worker; a cluster
// proxy reports every backend's workers (renumbered fleet-wide,
// each tagged with its backend URL) plus the Cluster rollup.
type StatsReport struct {
	Version string        `json:"version"`
	Workers []WorkerStats `json:"workers"`
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// Stats reports this service as a one-worker fleet.
func (svc *Service) Stats() StatsReport {
	return StatsReport{Version: Version, Workers: []WorkerStats{{
		Worker:   0,
		Cache:    svc.CacheStats(),
		Sessions: svc.SessionCount(),
		Arena:    svc.ArenaStats(),
	}}}
}
