package api

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzFrameCodec drives the NDJSON frame decoder with arbitrary
// bytes and checks two properties:
//
//   - resilience: malformed input produces an error, never a panic
//     or unbounded growth — the decoder fronts twserve's streaming
//     endpoint output on the twsim side, so it must survive anything
//     a broken proxy could splice into the stream;
//   - round-trip stability: every frame the decoder does accept
//     re-encodes through EncodeFrame and decodes back to a deeply
//     equal frame, so encoder and decoder agree on the wire contract
//     for the entire accepted language, not just the frames our own
//     encoder happens to produce.
func FuzzFrameCodec(f *testing.F) {
	// Seed with one well-formed stream of every frame type, plus the
	// malformed shapes the unit tests pin.
	var good bytes.Buffer
	for _, fr := range []StreamFrame{
		{Type: FrameMeta, Meta: &StreamMeta{Version: Version, Spec: "ddos", Scenario: "ddos",
			Hosts: 10, Duration: 40, Window: 10, Windows: 4, Labels: []string{"WS1"}}},
		{Type: FrameWindow, Window: &WindowResult{Index: 0, Start: 0, End: 10, Events: 3,
			AttackStage: &Reading{Label: "attack", Confidence: 0.5}}},
		{Type: FrameSummary, Summary: &StreamSummary{Events: 3, Packets: 30}},
		{Type: FrameError, Error: "boom"},
	} {
		if err := EncodeFrame(&good, fr); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(good.Bytes())
	f.Add([]byte(`{"type":"meta"}` + "\n"))
	f.Add([]byte(`{"type":"zebra","error":"x"}` + "\n"))
	f.Add([]byte(`{"type":"window","window":{"index":0},"error":"both"}` + "\n"))
	f.Add([]byte("not json\n\n  \n{\"type\":\"error\",\"error\":\"x\"}\n"))
	f.Add([]byte(`{"type":"window","window":{"index":2,"start":20,"end":30,"cells":[[1,0],[0,2]]}}` + "\n"))
	f.Add([]byte(strings.Repeat(`{"type":"error","error":"xx"}`+"\n", 50)))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewFrameDecoder(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			frame, err := dec.Next()
			if err != nil {
				// io.EOF or a decode error both end the stream; either
				// way the decoder must have stopped cleanly.
				return
			}
			// Accepted frames must satisfy the shared validity gate…
			if verr := frame.validate(); verr != nil {
				t.Fatalf("decoder accepted invalid frame %+v: %v", frame, verr)
			}
			// …and survive an encode→decode round trip unchanged.
			var buf bytes.Buffer
			if err := EncodeFrame(&buf, frame); err != nil {
				t.Fatalf("accepted frame does not re-encode: %+v: %v", frame, err)
			}
			again, err := NewFrameDecoder(&buf).Next()
			if err != nil {
				t.Fatalf("re-encoded frame does not decode: %v", err)
			}
			if !reflect.DeepEqual(again, frame) {
				t.Fatalf("round trip changed frame:\n first:  %+v\n second: %+v", frame, again)
			}
		}
	})
}
