package api

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of the result cache's
// counters, served by twserve for observability and pinned by the
// cache behavior tests.
type CacheStats struct {
	// Hits and Misses count lookups since the service was built.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to stay within Capacity.
	Evictions uint64 `json:"evictions"`
	// Len and Capacity describe the current occupancy.
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
	// Shards, when the cache is lock-striped, breaks the aggregate
	// down per shard (each entry's counters cover one stripe; the
	// top-level counters are their sums). Empty for a flat cache and
	// for the entries themselves.
	Shards []CacheStats `json:"shards,omitempty"`
}

// lruCache is the bounded result cache: a mutex-guarded map plus
// recency list. Values are stored as-is and treated as immutable by
// convention — Generate hands out shallow copies of the result
// header, never mutating cached innards.
type lruCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheEntry is one key/value pair threaded on the recency list.
type cacheEntry struct {
	key string
	val any
}

// newLRUCache builds a cache holding at most capacity entries;
// capacity ≤ 0 disables caching (every get misses, put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached value for key, refreshing its recency.
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used
// entries beyond capacity.
func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for len(c.items) > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       len(c.items),
		Capacity:  c.capacity,
	}
}
