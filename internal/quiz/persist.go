package quiz

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Session persistence: educators running the game "as a core unit as
// part of a formal course" need records that outlive the process.
// Sessions serialize to a small JSON document; cohorts rebuild from
// any number of saved sessions.

// ErrCorruptSession marks a saved session that cannot be trusted:
// truncated or malformed JSON, an unsupported format version, or a
// checksum that disagrees with the payload. Every LoadSession failure
// wraps it, so a caller that owns session files as server state (the
// player layer's dir-backed store) can distinguish "this file is
// damaged" from an I/O error with errors.Is — and never receives a
// zero-value session in place of a diagnosis.
var ErrCorruptSession = errors.New("quiz: corrupt session")

// sessionRecord is the on-disk form.
type sessionRecord struct {
	Student  string    `json:"student"`
	SavedAt  time.Time `json:"saved_at"`
	Results  []Result  `json:"results"`
	Version  int       `json:"version"`
	Checksum int       `json:"answered"` // redundancy for quick sanity checks
}

// currentSessionVersion guards the format.
const currentSessionVersion = 1

// Save writes the session as JSON.
func (s *Session) Save(w io.Writer, now time.Time) error {
	rec := sessionRecord{
		Student:  s.Student,
		SavedAt:  now.UTC(),
		Results:  s.Results(),
		Version:  currentSessionVersion,
		Checksum: s.Answered(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("quiz: save session: %w", err)
	}
	return nil
}

// LoadSession reads a session saved by Save. A session that fails to
// load for any structural reason — malformed or truncated JSON, an
// unsupported version, a checksum mismatch — returns an error wrapping
// ErrCorruptSession; read failures return the underlying I/O error.
func LoadSession(r io.Reader) (*Session, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("quiz: load session: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("%w: empty document", ErrCorruptSession)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec sessionRecord
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptSession, err)
	}
	if rec.Version != currentSessionVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptSession, rec.Version)
	}
	if rec.Checksum != len(rec.Results) {
		return nil, fmt.Errorf("%w: answered count %d does not match %d results", ErrCorruptSession, rec.Checksum, len(rec.Results))
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return nil, fmt.Errorf("%w: more than one JSON document in file", ErrCorruptSession)
	}
	return RestoreSession(rec.Student, rec.Results), nil
}

// RestoreSession rebuilds a session from previously recorded results
// — the constructor the player store uses to turn a persisted attempt
// history back into a live session without a JSON round-trip.
func RestoreSession(student string, results []Result) *Session {
	s := NewSession(student)
	s.results = append(s.results, results...)
	return s
}
