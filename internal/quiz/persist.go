package quiz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Session persistence: educators running the game "as a core unit as
// part of a formal course" need records that outlive the process.
// Sessions serialize to a small JSON document; cohorts rebuild from
// any number of saved sessions.

// sessionRecord is the on-disk form.
type sessionRecord struct {
	Student  string    `json:"student"`
	SavedAt  time.Time `json:"saved_at"`
	Results  []Result  `json:"results"`
	Version  int       `json:"version"`
	Checksum int       `json:"answered"` // redundancy for quick sanity checks
}

// currentSessionVersion guards the format.
const currentSessionVersion = 1

// Save writes the session as JSON.
func (s *Session) Save(w io.Writer, now time.Time) error {
	rec := sessionRecord{
		Student:  s.Student,
		SavedAt:  now.UTC(),
		Results:  s.Results(),
		Version:  currentSessionVersion,
		Checksum: s.Answered(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("quiz: save session: %w", err)
	}
	return nil
}

// LoadSession reads a session saved by Save.
func LoadSession(r io.Reader) (*Session, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("quiz: load session: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec sessionRecord
	if err := dec.Decode(&rec); err != nil {
		return nil, fmt.Errorf("quiz: load session: %w", err)
	}
	if rec.Version != currentSessionVersion {
		return nil, fmt.Errorf("quiz: load session: unsupported version %d", rec.Version)
	}
	if rec.Checksum != len(rec.Results) {
		return nil, fmt.Errorf("quiz: load session: answered count %d does not match %d results", rec.Checksum, len(rec.Results))
	}
	s := NewSession(rec.Student)
	s.results = append(s.results, rec.Results...)
	return s, nil
}
