package quiz

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleQuestion() Question {
	return Question{
		Prompt:  "How many packets did WS1 send to ADV4?",
		Answers: []string{"0", "1", "2"},
		Correct: 2,
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleQuestion().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]Question{
		"empty prompt":     {Prompt: " ", Answers: []string{"a", "b"}, Correct: 0},
		"one answer":       {Prompt: "q", Answers: []string{"a"}, Correct: 0},
		"correct too big":  {Prompt: "q", Answers: []string{"a", "b"}, Correct: 2},
		"correct negative": {Prompt: "q", Answers: []string{"a", "b"}, Correct: -1},
		"duplicates":       {Prompt: "q", Answers: []string{"a", "a", "b"}, Correct: 0},
	}
	for name, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCorrectText(t *testing.T) {
	if got := sampleQuestion().CorrectText(); got != "2" {
		t.Errorf("CorrectText = %q", got)
	}
}

func TestShuffleNilRNGKeepsOrder(t *testing.T) {
	p := Shuffle(sampleQuestion(), nil)
	for i, want := range sampleQuestion().Answers {
		if p.Options[i] != want {
			t.Errorf("option %d = %q, want %q", i, p.Options[i], want)
		}
	}
	if p.CorrectOption != 2 {
		t.Errorf("CorrectOption = %d", p.CorrectOption)
	}
}

// TestShufflePermutationProperty: a shuffled presentation is always
// a permutation of the authored answers, and CorrectOption always
// names the correct text — the paper's randomization requirement.
func TestShufflePermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		q := sampleQuestion()
		p := Shuffle(q, rand.New(rand.NewSource(seed)))
		if len(p.Options) != len(q.Answers) {
			return false
		}
		seen := make(map[string]bool)
		for _, o := range p.Options {
			seen[o] = true
		}
		for _, a := range q.Answers {
			if !seen[a] {
				return false
			}
		}
		return p.Options[p.CorrectOption] == q.CorrectText()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestShuffleActuallyShuffles: across many seeds the correct answer
// must appear at every display position — the first element "will
// not always be the first option given".
func TestShuffleActuallyShuffles(t *testing.T) {
	q := sampleQuestion()
	positions := make(map[int]int)
	for seed := int64(0); seed < 300; seed++ {
		p := Shuffle(q, rand.New(rand.NewSource(seed)))
		positions[p.CorrectOption]++
	}
	for pos := 0; pos < 3; pos++ {
		if positions[pos] == 0 {
			t.Errorf("correct answer never displayed at position %d", pos)
		}
	}
	// Roughly uniform: each position within [50, 150] of 100.
	for pos, n := range positions {
		if n < 50 || n > 150 {
			t.Errorf("position %d frequency %d of 300 is far from uniform", pos, n)
		}
	}
}

// TestShuffleAuthoredRoundTripProperty: for every permutation seed
// (and any answer count the validator accepts), the display option
// that Grades correct maps back through AuthoredIndex to exactly
// Question.Correct — the invariant that lets grading, statistics,
// and answer obfuscation all speak authored indices regardless of
// presentation order. A nil rng must additionally present the
// authored order unchanged, with AuthoredIndex the identity.
func TestShuffleAuthoredRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeHint uint8, correctHint uint8) bool {
		n := 2 + int(sizeHint)%5 // 2..6 answers
		answers := make([]string, n)
		for i := range answers {
			answers[i] = string(rune('A' + i))
		}
		q := Question{Prompt: "q", Answers: answers, Correct: int(correctHint) % n}
		if err := q.Validate(); err != nil {
			return false
		}
		p := Shuffle(q, rand.New(rand.NewSource(seed)))
		// Exactly one display option grades correct, and it
		// round-trips to the authored correct index.
		correctCount := 0
		for display := range p.Options {
			ok, err := p.Grade(display)
			if err != nil {
				return false
			}
			if !ok {
				continue
			}
			correctCount++
			authored, err := p.AuthoredIndex(display)
			if err != nil || authored != q.Correct {
				return false
			}
		}
		return correctCount == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}

	// Nil rng: authored order preserved, AuthoredIndex is identity.
	q := sampleQuestion()
	p := Shuffle(q, nil)
	for display := range p.Options {
		if p.Options[display] != q.Answers[display] {
			t.Errorf("nil rng reordered option %d", display)
		}
		authored, err := p.AuthoredIndex(display)
		if err != nil || authored != display {
			t.Errorf("nil rng AuthoredIndex(%d) = %d (err %v), want identity", display, authored, err)
		}
	}
	if got, err := p.AuthoredIndex(p.CorrectOption); err != nil || got != q.Correct {
		t.Errorf("nil rng round trip = %d (err %v), want %d", got, err, q.Correct)
	}
}

func TestGrade(t *testing.T) {
	p := Shuffle(sampleQuestion(), rand.New(rand.NewSource(4)))
	ok, err := p.Grade(p.CorrectOption)
	if err != nil || !ok {
		t.Errorf("grading the correct option: ok=%v err=%v", ok, err)
	}
	wrong := (p.CorrectOption + 1) % len(p.Options)
	ok, err = p.Grade(wrong)
	if err != nil || ok {
		t.Errorf("grading a wrong option: ok=%v err=%v", ok, err)
	}
	if _, err := p.Grade(7); err == nil {
		t.Error("out-of-range selection accepted")
	}
}

func TestAuthoredIndex(t *testing.T) {
	q := sampleQuestion()
	p := Shuffle(q, rand.New(rand.NewSource(9)))
	for display := range p.Options {
		authored, err := p.AuthoredIndex(display)
		if err != nil {
			t.Fatal(err)
		}
		if q.Answers[authored] != p.Options[display] {
			t.Errorf("display %d maps to authored %d but texts differ", display, authored)
		}
	}
	if _, err := p.AuthoredIndex(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestSessionScoring(t *testing.T) {
	s := NewSession("test")
	p := Shuffle(sampleQuestion(), nil)
	if _, err := s.Record(p, p.CorrectOption); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(p, (p.CorrectOption+1)%3); err != nil {
		t.Fatal(err)
	}
	if s.Answered() != 2 || s.CorrectCount() != 1 {
		t.Errorf("answered/correct = %d/%d", s.Answered(), s.CorrectCount())
	}
	if s.Score() != 0.5 {
		t.Errorf("score = %f", s.Score())
	}
}

func TestSessionEmptyScore(t *testing.T) {
	if NewSession("x").Score() != 0 {
		t.Error("empty session score should be 0")
	}
}

func TestSessionRecordRejectsBadSelection(t *testing.T) {
	s := NewSession("x")
	p := Shuffle(sampleQuestion(), nil)
	if _, err := s.Record(p, 99); err == nil {
		t.Error("bad selection recorded")
	}
	if s.Answered() != 0 {
		t.Error("failed record still counted")
	}
}

func TestSessionReport(t *testing.T) {
	s := NewSession("alice")
	p := Shuffle(sampleQuestion(), nil)
	_, _ = s.Record(p, p.CorrectOption)
	_, _ = s.Record(p, (p.CorrectOption+1)%3)
	report := s.Report()
	for _, want := range []string{"alice", "✓", "✗", "1/2", "50%"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestResultsCopy(t *testing.T) {
	s := NewSession("x")
	p := Shuffle(sampleQuestion(), nil)
	_, _ = s.Record(p, 0)
	r := s.Results()
	r[0].Prompt = "mutated"
	if s.Results()[0].Prompt == "mutated" {
		t.Error("Results aliases internal state")
	}
}
