package quiz

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSessionSaveLoadRoundTrip(t *testing.T) {
	s := NewSession("alice")
	p := Shuffle(sampleQuestion(), nil)
	if _, err := s.Record(p, p.CorrectOption); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(p, (p.CorrectOption+1)%3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf, time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Student != "alice" || back.Answered() != 2 || back.Score() != 0.5 {
		t.Errorf("reloaded session wrong: %s %d %f", back.Student, back.Answered(), back.Score())
	}
	if back.Report() != s.Report() {
		t.Error("report changed across the round trip")
	}
}

func TestLoadSessionRejectsCorruption(t *testing.T) {
	valid := `{"student":"x","saved_at":"2026-01-01T00:00:00Z","results":[],"version":1,"answered":0}`
	cases := map[string]string{
		"garbage":       "not json",
		"empty":         "",
		"whitespace":    "  \n\t ",
		"truncated":     valid[:len(valid)/2],
		"bad version":   `{"student":"x","saved_at":"2026-01-01T00:00:00Z","results":[],"version":9,"answered":0}`,
		"bad checksum":  `{"student":"x","saved_at":"2026-01-01T00:00:00Z","results":[],"version":1,"answered":5}`,
		"unknown field": `{"student":"x","extra":true,"version":1,"answered":0,"results":[],"saved_at":"2026-01-01T00:00:00Z"}`,
		"wrong type":    `{"student":"x","saved_at":"2026-01-01T00:00:00Z","results":"none","version":1,"answered":0}`,
		"double doc":    valid + "\n" + valid,
	}
	for name, src := range cases {
		s, err := LoadSession(strings.NewReader(src))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if s != nil {
			t.Errorf("%s: returned a session alongside the error", name)
		}
		if err != nil && !errors.Is(err, ErrCorruptSession) {
			t.Errorf("%s: error %v does not wrap ErrCorruptSession", name, err)
		}
	}
}

func TestRestoreSessionMatchesRoundTrip(t *testing.T) {
	s := NewSession("bob")
	p := Shuffle(sampleQuestion(), nil)
	if _, err := s.Record(p, p.CorrectOption); err != nil {
		t.Fatal(err)
	}
	back := RestoreSession(s.Student, s.Results())
	if back.Report() != s.Report() {
		t.Error("restored session report differs")
	}
	// The restored session owns its results: mutating it must not
	// reach back into the source slice.
	if _, err := back.Record(p, (p.CorrectOption+1)%3); err != nil {
		t.Fatal(err)
	}
	if s.Answered() != 1 || back.Answered() != 2 {
		t.Errorf("restore aliased results: %d %d", s.Answered(), back.Answered())
	}
}

func TestCohortFromSavedSessions(t *testing.T) {
	save := func(correct bool) string {
		s := NewSession("s")
		p := Shuffle(sampleQuestion(), nil)
		sel := p.CorrectOption
		if !correct {
			sel = (p.CorrectOption + 1) % 3
		}
		if _, err := s.Record(p, sel); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf, time.Now()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cohort := NewCohort()
	for _, doc := range []string{save(true), save(false), save(true)} {
		s, err := LoadSession(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		cohort.AddSession(s)
	}
	items := cohort.Items()
	if len(items) != 1 || items[0].Attempts != 3 || items[0].Correct != 2 {
		t.Errorf("cohort from disk wrong: %+v", items)
	}
}
