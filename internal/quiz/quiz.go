// Package quiz implements the multiple-choice machinery of Traffic
// Warehouse: three-option questions whose answer order is randomized
// at display time ("Traffic Warehouse will randomize the list that has
// the answers when they are displayed, so the first element will not
// always be the first option given"), grading, per-session scoring,
// and per-item statistics for educators.
package quiz

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// RecommendedChoices is the paper's deliberate choice of three
// answers, citing the psychometric literature on three-option
// multiple-choice items.
const RecommendedChoices = 3

// Question is a multiple-choice item as authored: the answer list in
// file order with the index of the correct element.
type Question struct {
	// Prompt is the question text shown to the student.
	Prompt string
	// Answers is the authored answer list.
	Answers []string
	// Correct is the index into Answers of the correct option
	// (the module file's "correct_answer_element").
	Correct int
}

// Validate checks structural integrity: a non-empty prompt, at least
// two answers, a correct index in range, and no duplicate answers
// (duplicates make the correct choice ambiguous after shuffling).
func (q Question) Validate() error {
	if strings.TrimSpace(q.Prompt) == "" {
		return errors.New("quiz: empty prompt")
	}
	if len(q.Answers) < 2 {
		return fmt.Errorf("quiz: need at least 2 answers, got %d", len(q.Answers))
	}
	if q.Correct < 0 || q.Correct >= len(q.Answers) {
		return fmt.Errorf("quiz: correct answer index %d out of range [0,%d)", q.Correct, len(q.Answers))
	}
	seen := make(map[string]bool, len(q.Answers))
	for _, a := range q.Answers {
		if seen[a] {
			return fmt.Errorf("quiz: duplicate answer %q", a)
		}
		seen[a] = true
	}
	return nil
}

// CorrectText returns the text of the correct answer.
func (q Question) CorrectText() string { return q.Answers[q.Correct] }

// Presented is a question with its answers shuffled for display. The
// permutation is retained so grading can map a displayed choice back
// to the authored index.
type Presented struct {
	// Prompt is the question text.
	Prompt string
	// Options are the answers in display order.
	Options []string
	// CorrectOption is the display index of the correct answer.
	CorrectOption int
	// perm[k] is the authored index shown at display position k.
	perm []int
}

// Shuffle presents q with its answers permuted by rng. A nil rng
// presents the answers in authored order (used by deterministic
// tooling such as module previews).
func Shuffle(q Question, rng *rand.Rand) Presented {
	n := len(q.Answers)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if rng != nil {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	}
	p := Presented{
		Prompt:  q.Prompt,
		Options: make([]string, n),
		perm:    perm,
	}
	for k, authored := range perm {
		p.Options[k] = q.Answers[authored]
		if authored == q.Correct {
			p.CorrectOption = k
		}
	}
	return p
}

// Grade reports whether the displayed choice at index selected is
// correct. It returns an error for an out-of-range selection.
func (p Presented) Grade(selected int) (bool, error) {
	if selected < 0 || selected >= len(p.Options) {
		return false, fmt.Errorf("quiz: selection %d out of range [0,%d)", selected, len(p.Options))
	}
	return selected == p.CorrectOption, nil
}

// AuthoredIndex maps a displayed option position back to the authored
// answer index.
func (p Presented) AuthoredIndex(selected int) (int, error) {
	if selected < 0 || selected >= len(p.perm) {
		return 0, fmt.Errorf("quiz: selection %d out of range [0,%d)", selected, len(p.perm))
	}
	return p.perm[selected], nil
}

// Result records one answered question within a session.
type Result struct {
	// Prompt is the question text.
	Prompt string
	// Selected is the text of the chosen option.
	Selected string
	// CorrectText is the text of the correct option.
	CorrectText string
	// Correct reports whether the selection was right.
	Correct bool
}

// Session accumulates results across a lesson run and produces the
// score report the classroom example prints.
type Session struct {
	// Student is an optional display name.
	Student string
	results []Result
}

// NewSession creates a session for the named student.
func NewSession(student string) *Session {
	return &Session{Student: student}
}

// Record grades the selection against p and appends the result,
// returning whether it was correct.
func (s *Session) Record(p Presented, selected int) (bool, error) {
	ok, err := p.Grade(selected)
	if err != nil {
		return false, err
	}
	s.results = append(s.results, Result{
		Prompt:      p.Prompt,
		Selected:    p.Options[selected],
		CorrectText: p.Options[p.CorrectOption],
		Correct:     ok,
	})
	return ok, nil
}

// Results returns a copy of the recorded results in answer order.
func (s *Session) Results() []Result {
	out := make([]Result, len(s.results))
	copy(out, s.results)
	return out
}

// Answered returns the number of questions answered.
func (s *Session) Answered() int { return len(s.results) }

// CorrectCount returns the number answered correctly.
func (s *Session) CorrectCount() int {
	n := 0
	for _, r := range s.results {
		if r.Correct {
			n++
		}
	}
	return n
}

// Score returns the fraction correct in [0,1], or 0 when nothing has
// been answered.
func (s *Session) Score() float64 {
	if len(s.results) == 0 {
		return 0
	}
	return float64(s.CorrectCount()) / float64(len(s.results))
}

// Report renders a plain-text score report.
func (s *Session) Report() string {
	var b strings.Builder
	name := s.Student
	if name == "" {
		name = "student"
	}
	fmt.Fprintf(&b, "Score report for %s\n", name)
	for i, r := range s.results {
		mark := "✗"
		if r.Correct {
			mark = "✓"
		}
		fmt.Fprintf(&b, "%2d. [%s] %s\n", i+1, mark, r.Prompt)
		if !r.Correct {
			fmt.Fprintf(&b, "       answered %q, correct answer was %q\n", r.Selected, r.CorrectText)
		}
	}
	fmt.Fprintf(&b, "Total: %d/%d (%.0f%%)\n", s.CorrectCount(), s.Answered(), 100*s.Score())
	return b.String()
}
