package quiz

import (
	"strings"
	"testing"
)

// makeSession records the given correctness sequence against a
// two-question lesson.
func makeSession(t *testing.T, name string, q1ok, q2ok bool) *Session {
	t.Helper()
	s := NewSession(name)
	q1 := Shuffle(Question{Prompt: "Q1", Answers: []string{"a", "b", "c"}, Correct: 0}, nil)
	q2 := Shuffle(Question{Prompt: "Q2", Answers: []string{"x", "y", "z"}, Correct: 1}, nil)
	record := func(p Presented, ok bool) {
		sel := p.CorrectOption
		if !ok {
			sel = (p.CorrectOption + 1) % len(p.Options)
		}
		if _, err := s.Record(p, sel); err != nil {
			t.Fatal(err)
		}
	}
	record(q1, q1ok)
	record(q2, q2ok)
	return s
}

func TestCohortAggregation(t *testing.T) {
	c := NewCohort()
	c.AddSession(makeSession(t, "a", true, true))
	c.AddSession(makeSession(t, "b", true, false))
	c.AddSession(makeSession(t, "c", false, false))
	items := c.Items()
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Prompt != "Q1" || items[0].Attempts != 3 || items[0].Correct != 2 {
		t.Errorf("Q1 stats = %+v", items[0])
	}
	if items[1].Correct != 1 {
		t.Errorf("Q2 stats = %+v", items[1])
	}
}

func TestDifficulty(t *testing.T) {
	it := ItemStats{Attempts: 4, Correct: 1}
	if it.Difficulty() != 0.25 {
		t.Errorf("difficulty = %f", it.Difficulty())
	}
	if (ItemStats{}).Difficulty() != 0 {
		t.Error("unattempted difficulty should be 0")
	}
}

func TestHardestFirst(t *testing.T) {
	c := NewCohort()
	c.AddSession(makeSession(t, "a", true, false))
	c.AddSession(makeSession(t, "b", true, false))
	hardest := c.HardestFirst()
	if hardest[0].Prompt != "Q2" {
		t.Errorf("hardest = %q", hardest[0].Prompt)
	}
}

func TestDistractorTracking(t *testing.T) {
	c := NewCohort()
	c.AddSession(makeSession(t, "a", false, true))
	items := c.Items()
	if len(items[0].Distractors) != 1 {
		t.Errorf("distractors = %v", items[0].Distractors)
	}
}

func TestCohortReport(t *testing.T) {
	c := NewCohort()
	c.AddSession(makeSession(t, "a", false, true))
	report := c.Report()
	if !strings.Contains(report, "Q1") || !strings.Contains(report, "top distractor") {
		t.Errorf("report missing content:\n%s", report)
	}
}
