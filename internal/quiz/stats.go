package quiz

import (
	"fmt"
	"sort"
	"strings"
)

// ItemStats aggregates responses to a single question across many
// sessions, giving educators the item-difficulty view the paper's
// future-work section gestures at ("measuring the outcome and effect
// on the student").
type ItemStats struct {
	// Prompt identifies the question.
	Prompt string
	// Attempts is the total number of responses recorded.
	Attempts int
	// Correct is the number of correct responses.
	Correct int
	// Distractors counts how often each wrong answer text was
	// chosen.
	Distractors map[string]int
}

// Difficulty returns the fraction answered correctly (the classical
// item "P value"); 0 when unattempted.
func (it ItemStats) Difficulty() float64 {
	if it.Attempts == 0 {
		return 0
	}
	return float64(it.Correct) / float64(it.Attempts)
}

// Cohort aggregates sessions from a whole class.
type Cohort struct {
	items map[string]*ItemStats
	order []string
}

// NewCohort returns an empty cohort aggregate.
func NewCohort() *Cohort {
	return &Cohort{items: make(map[string]*ItemStats)}
}

// AddSession folds one session's results into the aggregate.
func (c *Cohort) AddSession(s *Session) {
	for _, r := range s.Results() {
		it, ok := c.items[r.Prompt]
		if !ok {
			it = &ItemStats{Prompt: r.Prompt, Distractors: make(map[string]int)}
			c.items[r.Prompt] = it
			c.order = append(c.order, r.Prompt)
		}
		it.Attempts++
		if r.Correct {
			it.Correct++
		} else {
			it.Distractors[r.Selected]++
		}
	}
}

// Items returns per-question statistics in first-seen order.
func (c *Cohort) Items() []ItemStats {
	out := make([]ItemStats, 0, len(c.order))
	for _, prompt := range c.order {
		out = append(out, *c.items[prompt])
	}
	return out
}

// HardestFirst returns the items sorted by increasing difficulty
// value (hardest items first), ties broken by prompt.
func (c *Cohort) HardestFirst() []ItemStats {
	items := c.Items()
	sort.Slice(items, func(a, b int) bool {
		da, db := items[a].Difficulty(), items[b].Difficulty()
		if da != db {
			return da < db
		}
		return items[a].Prompt < items[b].Prompt
	})
	return items
}

// Report renders the cohort view as plain text.
func (c *Cohort) Report() string {
	var b strings.Builder
	b.WriteString("Cohort item analysis (hardest first)\n")
	for _, it := range c.HardestFirst() {
		fmt.Fprintf(&b, "  P=%.2f (%d/%d) %s\n", it.Difficulty(), it.Correct, it.Attempts, it.Prompt)
		// Most-chosen distractor, if any.
		best, bestN := "", 0
		for text, n := range it.Distractors {
			if n > bestN || (n == bestN && text < best) {
				best, bestN = text, n
			}
		}
		if bestN > 0 {
			fmt.Fprintf(&b, "      top distractor: %q (%d)\n", best, bestN)
		}
	}
	return b.String()
}
