// Package term provides minimal ANSI terminal styling used by the
// renderer and the command-line tools.
//
// The package deliberately supports only the classic 16-color SGR
// palette: the game's color language is grey/blue/red (plus green and
// black accents used by the pallet materials), which maps cleanly onto
// every terminal. Styling can be globally disabled for plain-text
// output (files, tests, pipes).
package term

import (
	"fmt"
	"strings"
)

// Color is a 16-color ANSI palette entry. The zero value is Default,
// which emits no color code.
type Color uint8

// The supported palette. Bright variants occupy the 90–97 SGR range.
const (
	Default Color = iota
	Black
	Red
	Green
	Yellow
	Blue
	Magenta
	Cyan
	White
	BrightBlack
	BrightRed
	BrightGreen
	BrightYellow
	BrightBlue
	BrightMagenta
	BrightCyan
	BrightWhite
)

// fgCode returns the SGR foreground code for c, or 0 if c is Default.
func (c Color) fgCode() int {
	switch {
	case c == Default:
		return 0
	case c <= White:
		return 29 + int(c) // Black=30 … White=37
	default:
		return 81 + int(c) // BrightBlack=90 … BrightWhite=97
	}
}

// bgCode returns the SGR background code for c, or 0 if c is Default.
func (c Color) bgCode() int {
	code := c.fgCode()
	if code == 0 {
		return 0
	}
	return code + 10
}

// String returns the human-readable name of the color.
func (c Color) String() string {
	names := [...]string{
		"default", "black", "red", "green", "yellow", "blue",
		"magenta", "cyan", "white", "bright-black", "bright-red",
		"bright-green", "bright-yellow", "bright-blue",
		"bright-magenta", "bright-cyan", "bright-white",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("color(%d)", uint8(c))
}

// Style describes a foreground/background pair plus the bold flag.
// The zero value renders text unchanged.
type Style struct {
	FG   Color
	BG   Color
	Bold bool
}

// IsZero reports whether the style performs no styling at all.
func (s Style) IsZero() bool { return s == Style{} }

// Sequence returns the ANSI escape sequence that activates the style,
// or "" for the zero style.
func (s Style) Sequence() string {
	if s.IsZero() {
		return ""
	}
	parts := make([]string, 0, 3)
	if s.Bold {
		parts = append(parts, "1")
	}
	if code := s.FG.fgCode(); code != 0 {
		parts = append(parts, fmt.Sprintf("%d", code))
	}
	if code := s.BG.bgCode(); code != 0 {
		parts = append(parts, fmt.Sprintf("%d", code))
	}
	if len(parts) == 0 {
		return ""
	}
	return "\x1b[" + strings.Join(parts, ";") + "m"
}

// Reset is the SGR sequence that clears all styling.
const Reset = "\x1b[0m"

// Apply wraps text in the style's escape sequence and a reset. When
// styling is disabled (see SetEnabled) or the style is zero, text is
// returned unchanged.
func (s Style) Apply(text string) string {
	if !enabled || s.IsZero() {
		return text
	}
	seq := s.Sequence()
	if seq == "" {
		return text
	}
	return seq + text + Reset
}

// enabled controls whether Apply emits escape sequences. Defaults to
// true; tools disable it when writing to files.
var enabled = true

// SetEnabled turns ANSI output on or off globally and returns the
// previous setting so callers can restore it.
func SetEnabled(on bool) (previous bool) {
	previous = enabled
	enabled = on
	return previous
}

// Enabled reports whether ANSI output is currently enabled.
func Enabled() bool { return enabled }

// Strip removes all ANSI escape sequences (CSI sequences) from s.
func Strip(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] == 0x1b && i+1 < len(s) && s[i+1] == '[' {
			// Skip to the final byte of the CSI sequence (an
			// ASCII letter in 0x40–0x7e).
			j := i + 2
			for j < len(s) && (s[j] < 0x40 || s[j] > 0x7e) {
				j++
			}
			if j < len(s) {
				j++ // consume the final byte
			}
			i = j
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// VisibleLen returns the number of runes in s after ANSI stripping.
func VisibleLen(s string) int {
	return len([]rune(Strip(s)))
}

// Pad right-pads s with spaces to the given visible width. Strings
// already wider than width are returned unchanged.
func Pad(s string, width int) string {
	n := VisibleLen(s)
	if n >= width {
		return s
	}
	return s + strings.Repeat(" ", width-n)
}

// PadLeft left-pads s with spaces to the given visible width.
func PadLeft(s string, width int) string {
	n := VisibleLen(s)
	if n >= width {
		return s
	}
	return strings.Repeat(" ", width-n) + s
}

// Center pads s on both sides to the given visible width, biasing the
// extra space to the right.
func Center(s string, width int) string {
	n := VisibleLen(s)
	if n >= width {
		return s
	}
	left := (width - n) / 2
	right := width - n - left
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", right)
}
