package term

import (
	"strings"
	"testing"
)

// restore re-enables ANSI output after a test that disables it.
func restore(t *testing.T) {
	t.Helper()
	prev := SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestColorCodes(t *testing.T) {
	cases := []struct {
		color Color
		fg    int
		bg    int
	}{
		{Default, 0, 0},
		{Black, 30, 40},
		{Red, 31, 41},
		{White, 37, 47},
		{BrightBlack, 90, 100},
		{BrightWhite, 97, 107},
	}
	for _, c := range cases {
		if got := c.color.fgCode(); got != c.fg {
			t.Errorf("%v fgCode = %d, want %d", c.color, got, c.fg)
		}
		if got := c.color.bgCode(); got != c.bg {
			t.Errorf("%v bgCode = %d, want %d", c.color, got, c.bg)
		}
	}
}

func TestColorString(t *testing.T) {
	if Red.String() != "red" || BrightBlue.String() != "bright-blue" {
		t.Errorf("color names wrong: %s %s", Red, BrightBlue)
	}
	if got := Color(200).String(); got != "color(200)" {
		t.Errorf("out-of-range color name = %q", got)
	}
}

func TestStyleApply(t *testing.T) {
	restore(t)
	s := Style{FG: Red, Bold: true}
	out := s.Apply("hi")
	if !strings.HasPrefix(out, "\x1b[1;31m") || !strings.HasSuffix(out, Reset) {
		t.Errorf("styled output = %q", out)
	}
	if !strings.Contains(out, "hi") {
		t.Errorf("styled output lost text: %q", out)
	}
}

func TestStyleZeroIsNoop(t *testing.T) {
	restore(t)
	if got := (Style{}).Apply("plain"); got != "plain" {
		t.Errorf("zero style changed text: %q", got)
	}
}

func TestStyleDisabled(t *testing.T) {
	restore(t)
	SetEnabled(false)
	s := Style{FG: Red, BG: Blue, Bold: true}
	if got := s.Apply("x"); got != "x" {
		t.Errorf("disabled styling still emitted codes: %q", got)
	}
}

func TestSetEnabledReturnsPrevious(t *testing.T) {
	restore(t)
	if prev := SetEnabled(false); !prev {
		t.Error("expected previous=true")
	}
	if prev := SetEnabled(true); prev {
		t.Error("expected previous=false")
	}
}

func TestStripRemovesSequences(t *testing.T) {
	restore(t)
	styled := Style{FG: Green, BG: Black}.Apply("abc") + " plain " + Style{Bold: true}.Apply("def")
	if got := Strip(styled); got != "abc plain def" {
		t.Errorf("Strip = %q", got)
	}
}

func TestStripPlainUnchanged(t *testing.T) {
	if got := Strip("no codes here"); got != "no codes here" {
		t.Errorf("Strip altered plain text: %q", got)
	}
}

func TestStripTruncatedSequence(t *testing.T) {
	// A dangling escape at end of string must not loop or panic.
	if got := Strip("abc\x1b["); got != "abc" {
		t.Errorf("Strip dangling = %q", got)
	}
}

func TestVisibleLen(t *testing.T) {
	restore(t)
	s := Style{FG: Red}.Apply("héllo")
	if got := VisibleLen(s); got != 5 {
		t.Errorf("VisibleLen = %d, want 5 (unicode-aware)", got)
	}
}

func TestPadding(t *testing.T) {
	if got := Pad("ab", 5); got != "ab   " {
		t.Errorf("Pad = %q", got)
	}
	if got := PadLeft("ab", 5); got != "   ab" {
		t.Errorf("PadLeft = %q", got)
	}
	if got := Center("ab", 6); got != "  ab  " {
		t.Errorf("Center = %q", got)
	}
	if got := Center("ab", 5); got != " ab  " {
		t.Errorf("Center odd = %q", got)
	}
	// Strings wider than the target come back unchanged.
	for _, f := range []func(string, int) string{Pad, PadLeft, Center} {
		if got := f("abcdef", 3); got != "abcdef" {
			t.Errorf("wide string changed: %q", got)
		}
	}
}

func TestTableLayout(t *testing.T) {
	restore(t)
	tab := NewTable("Name", "Value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("table has %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header row wrong: %q", lines[1])
	}
	// All lines share the same visible width.
	width := VisibleLen(lines[0])
	for i, l := range lines {
		if VisibleLen(l) != width {
			t.Errorf("line %d width %d != %d", i, VisibleLen(l), width)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("A")
	tab.AddRow("1", "2", "3")
	out := tab.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra columns dropped:\n%s", out)
	}
}

func TestTableStyledCellsAlign(t *testing.T) {
	restore(t)
	tab := NewTable("H")
	tab.AddRow(Style{FG: Red}.Apply("xx"))
	tab.AddRow("yyyy")
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	w := VisibleLen(lines[0])
	for i, l := range lines {
		if VisibleLen(l) != w {
			t.Errorf("styled cell broke alignment on line %d", i)
		}
	}
}
