package term

import (
	"fmt"
	"strings"
)

// Table lays out rows of text cells with box-drawing borders. It is
// used to print the paper's comparison tables (Tables I and II) and
// tool output. Cells may contain ANSI sequences; alignment uses
// visible width.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given header cells.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a data row. Short rows are padded with empty cells;
// long rows extend the column count.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// columns returns the number of columns across header and all rows.
func (t *Table) columns() int {
	n := len(t.header)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// widths computes the visible width of each column.
func (t *Table) widths() []int {
	w := make([]int, t.columns())
	measure := func(cells []string) {
		for i, c := range cells {
			if n := VisibleLen(c); n > w[i] {
				w[i] = n
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	return w
}

// String renders the table with Unicode box-drawing borders.
func (t *Table) String() string {
	w := t.widths()
	var b strings.Builder
	rule := func(left, mid, right string) {
		b.WriteString(left)
		for i, width := range w {
			b.WriteString(strings.Repeat("─", width+2))
			if i < len(w)-1 {
				b.WriteString(mid)
			}
		}
		b.WriteString(right)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		b.WriteString("│")
		for i, width := range w {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %s │", Pad(cell, width))
		}
		b.WriteByte('\n')
	}
	rule("┌", "┬", "┐")
	if len(t.header) > 0 {
		writeRow(t.header)
		rule("├", "┼", "┤")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	rule("└", "┴", "┘")
	return b.String()
}
