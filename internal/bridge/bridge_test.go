package bridge

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/game"
	"repro/internal/netsim"
	"repro/internal/quiz"
)

// gradeable asserts a module's question is structurally valid and
// that answering its correct option grades as correct after a
// shuffled presentation.
func gradeable(t *testing.T, m *core.Module) {
	t.Helper()
	q, ok := m.Quiz()
	if !ok {
		t.Fatalf("module %q has no resolvable question", m.Name)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("module %q question invalid: %v", m.Name, err)
	}
	p := quiz.Shuffle(q, rand.New(rand.NewSource(3)))
	correct, err := p.Grade(p.CorrectOption)
	if err != nil || !correct {
		t.Fatalf("module %q correct option does not grade correct: %v", m.Name, err)
	}
	authored, err := p.AuthoredIndex(p.CorrectOption)
	if err != nil || authored != q.Correct {
		t.Fatalf("module %q authored index %d (err %v), want %d", m.Name, authored, err, q.Correct)
	}
}

// TestModuleFromScenarioAllCatalog is the acceptance sweep: every
// catalog entry renders into a module that passes core validation
// and carries a gradeable question, on the paper's 10-host network
// and a scaled one.
func TestModuleFromScenarioAllCatalog(t *testing.T) {
	for _, s := range netsim.Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			for _, net := range []*netsim.Network{netsim.StandardNetwork(), netsim.ScaledNetwork(64)} {
				m, err := ModuleFromScenario(s, net, 42)
				if err != nil {
					t.Fatal(err)
				}
				if issues := m.Validate(); !issues.OK() {
					t.Fatalf("hosts=%d: module invalid:\n%s", net.Len(), issues.Errs())
				}
				if got, want := len(m.AxisLabels), net.Len(); got != want {
					t.Errorf("hosts=%d: %d axis labels, want %d", net.Len(), got, want)
				}
				if m.Size != core.FormatSize(net.Len()) {
					t.Errorf("hosts=%d: size %q", net.Len(), m.Size)
				}
				if m.TotalPackets() == 0 {
					t.Errorf("hosts=%d: module carries no traffic", net.Len())
				}
				gradeable(t, m)
			}
		})
	}
}

// TestModuleFromSpecDisentangleQuestion: a composed spec renders into
// a valid module whose question asks for the component set, with the
// true mixture as the gradeable correct answer.
func TestModuleFromSpecDisentangleQuestion(t *testing.T) {
	net := netsim.StandardNetwork()
	m, err := ModuleFromSpec("overlay(background, sequence(scan, ddos))", net, 42, netsim.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if issues := m.Validate(); !issues.OK() {
		t.Fatalf("module invalid:\n%s", issues.Errs())
	}
	gradeable(t, m)
	if !strings.Contains(m.Question, "layered") {
		t.Errorf("question %q is not the disentangle question", m.Question)
	}
	correct := m.Answers[m.CorrectAnswerElement]
	if correct != "background + ddos + scan" {
		t.Errorf("correct answer = %q, want the sorted component set", correct)
	}
	for i, a := range m.Answers {
		if i != m.CorrectAnswerElement && a == correct {
			t.Errorf("distractor %d duplicates the correct answer", i)
		}
	}
	if len(m.Answers) != quiz.RecommendedChoices {
		t.Errorf("%d answers, want %d", len(m.Answers), quiz.RecommendedChoices)
	}

	if _, err := ModuleFromSpec("overlay(", net, 42, netsim.Params{}); err == nil {
		t.Error("broken spec accepted")
	}
}

// TestCampaignFromComposedScenario: a composed scenario's campaign
// carries the merged schedule into its timeline questions and writes
// shell-friendly lesson references.
func TestCampaignFromComposedScenario(t *testing.T) {
	s, err := netsim.ParseSpec("sequence(scan@10s, ddos)")
	if err != nil {
		t.Fatal(err)
	}
	c, err := CampaignFromScenario(s, netsim.StandardNetwork(), 42, netsim.Params{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Course.ResolveAll(c.Loader()); err != nil {
		t.Fatal(err)
	}
	for ref := range c.Lessons {
		if strings.ContainsAny(ref, "(),@= ") {
			t.Errorf("lesson reference %q is not shell-friendly", ref)
		}
	}
	// The first timeline window sits in the scan slot, the later ones
	// in the DDoS phases: both component vocabularies must appear.
	var prompts, answers []string
	for _, lesson := range c.Lessons {
		for _, m := range lesson.Modules {
			gradeable(t, m)
			prompts = append(prompts, m.Question)
			answers = append(answers, m.Answers...)
		}
	}
	all := strings.Join(answers, "\n")
	if !strings.Contains(all, "scan") {
		t.Errorf("no scan phase among timeline answers:\n%s", all)
	}
	if !strings.Contains(all, "command and control") {
		t.Errorf("no DDoS component phase among timeline answers:\n%s", all)
	}
	if !strings.Contains(strings.Join(prompts, "\n"), "layered") {
		t.Errorf("overview prompt is not the disentangle question:\n%s", strings.Join(prompts, "\n"))
	}
}

// TestModuleMatrixStaysDisplayable pins the clamp: no cell exceeds
// the paper's display guidance even for heavy scenarios.
func TestModuleMatrixStaysDisplayable(t *testing.T) {
	s, _ := netsim.LookupScenario("ddos")
	m, err := AggregateModule(s, netsim.StandardNetwork(), 42, netsim.Params{Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.TrafficMatrix {
		for _, v := range row {
			if v > core.MaxDisplayPackets {
				t.Fatalf("cell %d exceeds display guidance %d", v, core.MaxDisplayPackets)
			}
		}
	}
}

// TestCampaignAllCatalog synthesizes a campaign from every catalog
// entry and checks the full loading path: manifest JSON through
// course.Parse, every lesson through ResolveAll, every module
// question gradeable.
func TestCampaignAllCatalog(t *testing.T) {
	net := netsim.StandardNetwork()
	for _, s := range netsim.Scenarios() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			c, err := CampaignFromScenario(s, net, 42, netsim.Params{}, 10)
			if err != nil {
				t.Fatal(err)
			}
			manifest, err := c.Manifest()
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := course.Parse(manifest)
			if err != nil {
				t.Fatalf("manifest does not parse back: %v", err)
			}
			lessons, err := parsed.ResolveAll(c.Loader())
			if err != nil {
				t.Fatalf("campaign does not resolve: %v", err)
			}
			if len(lessons["overview"]) != 1 {
				t.Fatalf("overview resolves %d lessons, want 1", len(lessons["overview"]))
			}
			timeline, ok := parsed.Unit("timeline")
			if !ok {
				t.Fatal("campaign has no timeline unit")
			}
			if len(timeline.Requires) != 1 || timeline.Requires[0] != "overview" {
				t.Errorf("timeline requires %v, want [overview]", timeline.Requires)
			}
			total := 0
			for _, unit := range lessons {
				for _, lesson := range unit {
					total += lesson.Len()
					for _, m := range lesson.Modules {
						gradeable(t, m)
					}
				}
			}
			if total < 2 {
				t.Errorf("campaign holds %d modules, want aggregate + windows", total)
			}
		})
	}
}

// TestCampaignPhaseQuestions pins the window→lesson mapping for a
// scheduled scenario: with 10s windows over the default 40s attack
// run, each window is phase-pure and its question's correct answer
// is that phase's ground-truth label, in timeline order.
func TestCampaignPhaseQuestions(t *testing.T) {
	s, ok := netsim.LookupScenario("attack")
	if !ok {
		t.Fatal("attack scenario missing")
	}
	c, err := CampaignFromScenario(s, netsim.StandardNetwork(), 42, netsim.Params{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	timeline := c.Lessons[c.Course.Units[1].Lessons[0]]
	want := []string{"planning", "staging", "infiltration", "lateral movement"}
	if len(timeline.Modules) != len(want) {
		t.Fatalf("timeline has %d modules, want %d", len(timeline.Modules), len(want))
	}
	for i, m := range timeline.Modules {
		q, ok := m.Quiz()
		if !ok {
			t.Fatalf("window %d has no question", i)
		}
		if got := q.CorrectText(); got != want[i] {
			t.Errorf("window %d correct answer %q, want %q", i, got, want[i])
		}
	}
}

// TestCampaignWriteDirRoundTrip materializes a campaign on disk and
// loads it back the way trafficwarehouse -course does: manifest via
// course.LoadFile, lesson zips via the file-aware loader with
// references relative to the campaign directory.
func TestCampaignWriteDirRoundTrip(t *testing.T) {
	s, _ := netsim.LookupScenario("ddos")
	c, err := CampaignFromScenario(s, netsim.StandardNetwork(), 42, netsim.Params{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	loaded, err := course.LoadFile(filepath.Join(dir, "course.json"))
	if err != nil {
		t.Fatal(err)
	}
	loader := course.FileAwareLoader(func(ref string) (*core.Lesson, error) {
		t.Fatalf("unexpected by-name lookup %q", ref)
		return nil, nil
	})
	lessons, err := loaded.ResolveAll(loader)
	if err != nil {
		t.Fatal(err)
	}
	for unit, ls := range lessons {
		for _, lesson := range ls {
			if lesson.Len() == 0 {
				t.Errorf("unit %q lesson %q is empty", unit, lesson.Name)
			}
		}
	}
}

// TestCampaignPlaysThroughGame closes the loop the paper promises:
// a synthesized campaign plays end to end in the actual game — fill
// the warehouse, answer the question, advance — for every lesson.
func TestCampaignPlaysThroughGame(t *testing.T) {
	s, _ := netsim.LookupScenario("ddos")
	c, err := CampaignFromScenario(s, netsim.StandardNetwork(), 42, netsim.Params{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	order, err := c.Course.Order()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, unit := range order {
		for _, ref := range unit.Lessons {
			lesson := c.Lessons[ref]
			g, err := game.New(lesson, "student", rng)
			if err != nil {
				t.Fatalf("unit %q: %v", unit.Name, err)
			}
			script := strings.TrimSpace(strings.Repeat("f n 1 n ", lesson.Len()))
			src, err := game.NewScriptSource(script)
			if err != nil {
				t.Fatal(err)
			}
			g.Play(src, nil)
			if !g.Done() {
				t.Fatalf("unit %q lesson %q did not play to completion", unit.Name, lesson.Name)
			}
			if g.Session().Answered() != lesson.Len() {
				t.Errorf("unit %q: answered %d of %d questions", unit.Name, g.Session().Answered(), lesson.Len())
			}
		}
	}
}

// TestBridgeRejectsBadInput pins the error paths.
func TestBridgeRejectsBadInput(t *testing.T) {
	s, _ := netsim.LookupScenario("ddos")
	net := netsim.StandardNetwork()
	if _, err := ModuleFromScenario(nil, net, 1); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := ModuleFromScenario(s, nil, 1); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := CampaignFromScenario(s, net, 1, netsim.Params{}, 0); err == nil {
		t.Error("zero window length accepted")
	}
	// A network whose cast cannot host the scenario surfaces the
	// generator's error.
	tiny, err := netsim.NewNetwork([]netsim.Host{{Name: "WS1", Role: netsim.RoleWorkstation}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ModuleFromScenario(s, tiny, 1); err == nil {
		t.Error("undersized network accepted")
	}
}
