// Package bridge turns netsim catalog scenarios into playable
// teaching content: the authoring path the paper's whole premise
// rests on — simulated network activity rendered as learning modules
// a student can load into Traffic Warehouse.
//
// ModuleFromScenario renders a scenario's aggregate traffic matrix
// into one core.Module: axis labels come from the netsim.Network,
// the color grid from the patterns zone classification, and a
// three-option quiz.Question is synthesized from the matrix itself
// (recognize the catalog shape, spot the supernode, name the attack
// phase). CampaignFromScenario goes further and emits one module per
// aggregation window, bundling the result as a course.Course whose
// units gate the window-by-window timeline behind the aggregate
// overview — a whole course unit from a single catalog entry.
//
// Composed scenarios (netsim's composition algebra: Overlay,
// Sequence, Dilate, Amplify, Relabel) flow through the same paths —
// ModuleFromSpec renders a declarative spec expression directly —
// but their aggregate question asks the student to disentangle the
// mixture: name the set of behaviours layered into the matrix, with
// near-miss sets as distractors. Their campaigns inherit the merged
// ground-truth schedule, so timeline windows still ask which phase
// (of whichever component owns the window) is showing.
package bridge

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/netsim"
	"repro/internal/patterns"
	"repro/internal/quiz"
)

// Author credited on synthesized modules.
const Author = "bridge"

// ModuleFromScenario generates the scenario with the default
// parameters and renders its aggregate traffic matrix as a playable
// learning module with a synthesized question. The generation runs
// on the sparse path (netsim.GenerateCSR) and densifies only the
// final lesson-sized grid.
func ModuleFromScenario(s netsim.Scenario, net *netsim.Network, seed int64) (*core.Module, error) {
	return AggregateModule(s, net, seed, netsim.Params{})
}

// AggregateModule is ModuleFromScenario with explicit scenario
// parameters.
func AggregateModule(s netsim.Scenario, net *netsim.Network, seed int64, p netsim.Params) (*core.Module, error) {
	return AggregateModuleContext(context.Background(), s, net, seed, 0, p)
}

// AggregateModuleContext is AggregateModule with cancellation and an
// explicit worker count (≤ 0 selects all CPUs): the underlying
// generation aborts when ctx is cancelled, so a served authoring
// request (the api layer's /v1/module) stops working the moment its
// caller hangs up.
func AggregateModuleContext(ctx context.Context, s netsim.Scenario, net *netsim.Network, seed int64, workers int, p netsim.Params) (*core.Module, error) {
	zones, err := checkInputs(s, net)
	if err != nil {
		return nil, err
	}
	csr, _, err := netsim.GenerateCSRContext(ctx, s, net, seed, workers, p)
	if err != nil {
		return nil, fmt.Errorf("bridge: generate %s: %w", s.Name(), err)
	}
	return aggregateModule(s, net, zones, csr), nil
}

// ModuleFromSpec parses a composition expression (see
// netsim.ParseSpec) and renders the resulting mixture as a playable
// module whose question asks the student to disentangle the layers —
// the one-call authoring path from a declarative spec to lesson
// content.
func ModuleFromSpec(spec string, net *netsim.Network, seed int64, p netsim.Params) (*core.Module, error) {
	s, err := netsim.ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("bridge: %w", err)
	}
	return AggregateModule(s, net, seed, p)
}

// aggregateModule renders an already-aggregated run as the
// scenario's overview module: primitive scenarios get the shape
// question, composed ones the disentangle question. Shared by
// AggregateModule and the campaign's overview lesson.
func aggregateModule(s netsim.Scenario, net *netsim.Network, zones patterns.Zones, csr *matrix.CSR) *core.Module {
	q := shapeQuestion(s)
	if _, ok := s.(netsim.Composite); ok {
		q = disentangleQuestion(s)
	}
	return buildModule(
		titleCase(s.Name())+" — aggregate traffic",
		fmt.Sprintf("Aggregate traffic matrix of a %d-host scenario run.", net.Len()),
		net, zones, csr.ToDense(), &q,
	)
}

// checkInputs validates the scenario/network pair and resolves the
// zone layout every synthesized color grid needs.
func checkInputs(s netsim.Scenario, net *netsim.Network) (patterns.Zones, error) {
	if s == nil {
		return patterns.Zones{}, fmt.Errorf("bridge: nil scenario")
	}
	if net == nil {
		return patterns.Zones{}, fmt.Errorf("bridge: nil network")
	}
	zones, err := net.Zones()
	if err != nil {
		return patterns.Zones{}, fmt.Errorf("bridge: %w", err)
	}
	return zones, nil
}

// buildModule renders a dense traffic matrix as a module: packet
// counts clamped to the paper's display guidance, colors from the
// zone classification, and an optional synthesized question.
func buildModule(name, hint string, net *netsim.Network, zones patterns.Zones, dense *matrix.Dense, q *quiz.Question) *core.Module {
	clamped := dense.Clone()
	clamped.Apply(func(v int) int {
		if v > core.MaxDisplayPackets {
			return core.MaxDisplayPackets
		}
		return v
	})
	m := &core.Module{
		Name:                name,
		Size:                core.FormatSize(net.Len()),
		Author:              Author,
		Hint:                hint,
		AxisLabels:          net.Labels(),
		TrafficMatrix:       clamped.ToRows(),
		TrafficMatrixColors: zones.ZoneColors(dense).ToRows(),
	}
	if q != nil {
		m.HasQuestion = true
		m.Question = q.Prompt
		m.Answers = append([]string(nil), q.Answers...)
		m.CorrectAnswerElement = q.Correct
	}
	return m
}

// shapeQuestion asks the student to recognize the scenario's
// aggregate traffic-matrix shape among distractor shapes drawn from
// the rest of the catalog.
func shapeQuestion(s netsim.Scenario) quiz.Question {
	answers := []string{s.Shape()}
	for _, other := range netsim.Scenarios() {
		if len(answers) == quiz.RecommendedChoices {
			break
		}
		if other.Name() == s.Name() || contains(answers, other.Shape()) {
			continue
		}
		answers = append(answers, other.Shape())
	}
	return assemble(
		"Which shape does this scenario's aggregate traffic matrix draw?",
		answers, len(s.Name()),
	)
}

// disentangleQuestion asks the student to name the set of scenario
// behaviours layered into a composed run — the skill mixtures teach.
// The correct answer is the set of primitive components; distractors
// are near-miss sets that swap one component for a catalog shape that
// is not in the mixture, so recognizing most-but-not-all layers is
// not enough.
func disentangleQuestion(s netsim.Scenario) quiz.Question {
	leaves := netsim.Leaves(s)
	inMix := map[string]bool{}
	var members []string
	for _, leaf := range leaves {
		if !inMix[leaf.Name()] {
			inMix[leaf.Name()] = true
			members = append(members, leaf.Name())
		}
	}
	sort.Strings(members)
	var others []string
	for _, entry := range netsim.Scenarios() {
		if _, composed := entry.(netsim.Composite); composed {
			continue // registered composites are answers, not shapes
		}
		if !inMix[entry.Name()] {
			others = append(others, entry.Name())
		}
	}
	answers := []string{strings.Join(members, " + ")}
	for k := 0; len(answers) < quiz.RecommendedChoices && k < len(others); k++ {
		wrong := append([]string(nil), members...)
		wrong[k%len(wrong)] = others[k]
		sort.Strings(wrong)
		if candidate := strings.Join(wrong, " + "); !contains(answers, candidate) {
			answers = append(answers, candidate)
		}
	}
	// A degenerate catalog (every primitive already in the mixture)
	// falls back to proper subsets as distractors.
	for k := 0; len(answers) < 2 && k < len(members) && len(members) > 1; k++ {
		subset := append([]string(nil), members[:k]...)
		subset = append(subset, members[k+1:]...)
		if candidate := strings.Join(subset, " + "); !contains(answers, candidate) {
			answers = append(answers, candidate)
		}
	}
	return assemble(
		"Which set of behaviours is layered into this composed traffic matrix?",
		answers, len(s.Name()),
	)
}

// supernodeQuestion asks which host is the matrix's busiest
// supernode. ok is false when the matrix has no qualifying hub or
// too few non-hub hosts to serve as distractors.
func supernodeQuestion(net *netsim.Network, m matrix.Matrix, rot int) (quiz.Question, bool) {
	hubs := matrix.SupernodesOf(m, patterns.SupernodeFanThreshold)
	if len(hubs) == 0 {
		return quiz.Question{}, false
	}
	isHub := make(map[int]bool, len(hubs))
	for _, h := range hubs {
		isHub[h.Index] = true
	}
	labels := net.Labels()
	answers := []string{labels[hubs[0].Index]}
	for i, label := range labels {
		if len(answers) == quiz.RecommendedChoices {
			break
		}
		if !isHub[i] {
			answers = append(answers, label)
		}
	}
	if len(answers) < 2 {
		return quiz.Question{}, false
	}
	prompt := fmt.Sprintf("Which host is the busiest supernode (≥%d distinct peers) in this traffic matrix?",
		patterns.SupernodeFanThreshold)
	return assemble(prompt, answers, hubs[0].Index+rot), true
}

// phaseQuestion asks which phase of a scripted scenario a window is
// showing, using the scenario's ground-truth schedule. ok is false
// when the scenario publishes no schedule or the labels cannot seed
// enough distractors.
func phaseQuestion(s netsim.Scenario, p netsim.Params, w netsim.SparseWindow, rot int) (quiz.Question, bool) {
	sched, ok := s.(netsim.Scheduler)
	if !ok {
		return quiz.Question{}, false
	}
	phases := sched.Schedule(p)
	if len(phases) == 0 {
		return quiz.Question{}, false
	}
	mid := w.Start + (w.End-w.Start)/2
	current := phases[len(phases)-1]
	for _, ph := range phases {
		if ph.Start <= mid && mid < ph.End {
			current = ph
			break
		}
	}
	answers := []string{current.Label}
	for _, ph := range phases {
		if len(answers) == quiz.RecommendedChoices {
			break
		}
		if ph.Label != current.Label && !contains(answers, ph.Label) {
			answers = append(answers, ph.Label)
		}
	}
	if len(answers) < 2 {
		return quiz.Question{}, false
	}
	prompt := fmt.Sprintf("Which phase of the scenario is the window [%gs,%gs) showing?", w.Start, w.End)
	return assemble(prompt, answers, rot), true
}

// assemble builds a Question from an answer list whose first element
// is correct, rotating the list by rot so the correct option's
// authored position varies deterministically across modules
// (educators may read the JSON aloud; display order is shuffled at
// presentation anyway).
func assemble(prompt string, answers []string, rot int) quiz.Question {
	correct := answers[0]
	n := len(answers)
	rot = ((rot % n) + n) % n
	out := make([]string, 0, n)
	out = append(out, answers[rot:]...)
	out = append(out, answers[:rot]...)
	idx := 0
	for i, a := range out {
		if a == correct {
			idx = i
			break
		}
	}
	return quiz.Question{Prompt: prompt, Answers: out, Correct: idx}
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// titleCase uppercases the first letter of a scenario name for
// module titles.
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
