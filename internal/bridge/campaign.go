package bridge

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/course"
	"repro/internal/netsim"
)

// Campaign is a whole course synthesized from one catalog entry: an
// overview lesson holding the aggregate-traffic module, a timeline
// lesson holding one module per aggregation window, and the course
// manifest that gates the timeline behind the overview. Lessons are
// keyed by the manifest's lesson references, so the campaign can be
// resolved in memory (Loader) or written to disk (WriteDir) and
// played with trafficwarehouse -course.
type Campaign struct {
	// Scenario is the catalog name the campaign was synthesized from.
	Scenario string
	// Course is the manifest: an overview unit and, when any window
	// held traffic, a timeline unit requiring it.
	Course *course.Course
	// Lessons maps each manifest lesson reference to its content.
	Lessons map[string]*core.Lesson
}

// CampaignFromScenario generates the scenario once and renders it
// into a campaign: the trace aggregates into the overview module
// (sparse fold, densified only at lesson size) and splits into
// windowLen-second windows via the single-pass WindowsCSR engine,
// each non-empty window becoming a timeline module with a question
// synthesized from its own matrix — the scenario's ground-truth
// phase when it publishes a schedule, the window's supernode when
// one stands out, the catalog shape otherwise.
func CampaignFromScenario(s netsim.Scenario, net *netsim.Network, seed int64, p netsim.Params, windowLen float64) (*Campaign, error) {
	return CampaignFromScenarioContext(context.Background(), s, net, seed, 0, p, windowLen)
}

// CampaignFromScenarioContext is CampaignFromScenario with
// cancellation threaded through the generation and windowing stages
// and an explicit worker count (≤ 0 selects all CPUs).
func CampaignFromScenarioContext(ctx context.Context, s netsim.Scenario, net *netsim.Network, seed int64, workers int, p netsim.Params, windowLen float64) (*Campaign, error) {
	zones, err := checkInputs(s, net)
	if err != nil {
		return nil, err
	}
	if windowLen <= 0 {
		return nil, fmt.Errorf("bridge: window length must be positive, got %g", windowLen)
	}
	trace, err := netsim.GenerateTraceContext(ctx, s, net, seed, workers, p)
	if err != nil {
		return nil, fmt.Errorf("bridge: generate %s: %w", s.Name(), err)
	}
	title := titleCase(s.Name())

	// Overview: the whole-run aggregate with the shape question.
	csr, _ := trace.SparseMatrix(net)
	overview := &core.Lesson{
		Name:    s.Name() + " overview",
		Modules: []*core.Module{aggregateModule(s, net, zones, csr)},
	}

	// Timeline: one module per non-empty window.
	windows, err := trace.WindowsCSRContext(ctx, net, windowLen, 0)
	if err != nil {
		return nil, err
	}
	timeline := &core.Lesson{Name: s.Name() + " timeline"}
	for k, w := range windows {
		if w.Matrix.NNZ() == 0 {
			continue
		}
		q, ok := phaseQuestion(s, p, w, k)
		if !ok {
			q, ok = supernodeQuestion(net, w.Matrix, k)
		}
		if !ok {
			q = shapeQuestion(s)
		}
		timeline.Modules = append(timeline.Modules, buildModule(
			fmt.Sprintf("%s — window %d [%gs,%gs)", title, k+1, w.Start, w.End),
			fmt.Sprintf("Window %d of the %s scenario timeline.", k+1, s.Name()),
			net, zones, w.Matrix.ToDense(), &q,
		))
	}

	overviewRef := refSlug(s.Name()) + "_overview.zip"
	timelineRef := refSlug(s.Name()) + "_timeline.zip"
	c := &Campaign{
		Scenario: s.Name(),
		Lessons:  map[string]*core.Lesson{overviewRef: overview},
		Course: &course.Course{
			Name:   "Scenario study: " + s.Name(),
			Author: Author,
			Units: []course.Unit{{
				Name:        "overview",
				Description: s.Description(),
				Lessons:     []string{overviewRef},
			}},
		},
	}
	if len(timeline.Modules) > 0 {
		c.Lessons[timelineRef] = timeline
		c.Course.Units = append(c.Course.Units, course.Unit{
			Name:        "timeline",
			Description: fmt.Sprintf("The same run window by window (%gs aggregation windows).", windowLen),
			Lessons:     []string{timelineRef},
			Requires:    []string{"overview"},
		})
	}
	if err := c.Course.Validate(); err != nil {
		return nil, fmt.Errorf("bridge: synthesized course invalid: %w", err)
	}
	return c, nil
}

// refSlug turns a scenario name into a filesystem-friendly lesson
// reference: composed names carry parentheses, commas, '@', and '='
// from the spec grammar, which collapse to underscores so the
// campaign's zip files stay shell-friendly.
func refSlug(name string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, r := range name {
		ok := r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		switch {
		case ok:
			b.WriteRune(r)
			lastUnderscore = false
		case !lastUnderscore:
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	return strings.Trim(b.String(), "_")
}

// Loader resolves the campaign's lesson references in memory,
// satisfying course.Course.ResolveAll without touching disk.
func (c *Campaign) Loader() course.Loader {
	return func(ref string) (*core.Lesson, error) {
		if l, ok := c.Lessons[ref]; ok {
			return l, nil
		}
		return nil, fmt.Errorf("bridge: campaign has no lesson %q", ref)
	}
}

// Manifest encodes the course manifest as JSON; the result parses
// back through course.Parse.
func (c *Campaign) Manifest() ([]byte, error) {
	data, err := json.MarshalIndent(c.Course, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bridge: encode manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteDir materializes the campaign on disk: course.json plus one
// lesson zip per reference, laid out so
//
//	cd dir && trafficwarehouse -course course.json
//
// plays the synthesized course (the manifest's zip references are
// relative to the directory).
func (c *Campaign) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bridge: write campaign: %w", err)
	}
	manifest, err := c.Manifest()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "course.json"), manifest, 0o644); err != nil {
		return fmt.Errorf("bridge: write campaign: %w", err)
	}
	refs := make([]string, 0, len(c.Lessons))
	for ref := range c.Lessons {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		f, err := os.Create(filepath.Join(dir, ref))
		if err != nil {
			return fmt.Errorf("bridge: write campaign: %w", err)
		}
		if err := c.Lessons[ref].WriteZip(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("bridge: write campaign: %w", err)
		}
	}
	return nil
}
