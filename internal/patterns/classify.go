package patterns

import (
	"repro/internal/matrix"
)

// The classifiers answer, mechanically, the question every module
// asks the student: "Which choice is the displayed traffic pattern
// most relevant to?" Tests use them to prove each generated figure is
// recognizably the behaviour it teaches; the analyst examples use
// them on simulated live traffic.

// GraphKind enumerates the graph-theory shapes of Fig 10.
type GraphKind int

const (
	// GraphUnknown is returned when no shape matches.
	GraphUnknown GraphKind = iota
	// GraphStar is a hub linked to every other active vertex.
	GraphStar
	// GraphClique is a complete subgraph (k ≥ 4; see GraphTriangle).
	GraphClique
	// GraphBipartite is a complete bipartite graph.
	GraphBipartite
	// GraphTree is a connected acyclic graph that is not a star.
	GraphTree
	// GraphRing is a single cycle over ≥ 4 vertices.
	GraphRing
	// GraphMesh is a non-regular triangle-free grid.
	GraphMesh
	// GraphTorus is a regular triangle-free grid with wraparound.
	GraphTorus
	// GraphSelfLoop is diagonal-only traffic.
	GraphSelfLoop
	// GraphTriangle is a single 3-cycle.
	GraphTriangle
)

// graphKindNames holds display names indexed by GraphKind.
var graphKindNames = [...]string{
	"unknown", "star", "clique", "bipartite", "tree", "ring",
	"mesh", "toroidal mesh", "self loop", "triangle",
}

// String returns the kind's display name.
func (k GraphKind) String() string {
	if k < 0 || int(k) >= len(graphKindNames) {
		return "unknown"
	}
	return graphKindNames[k]
}

// undirected captures the simple undirected graph underlying a
// traffic matrix: the view the Fig 10 shapes are defined on.
type undirected struct {
	n      int
	adj    [][]bool
	degree []int
	active []int
	edges  int
}

// newUndirected symmetrizes the off-diagonal pattern of m.
func newUndirected(m *matrix.Dense) *undirected {
	n := m.Rows()
	u := &undirected{
		n:      n,
		adj:    make([][]bool, n),
		degree: make([]int, n),
	}
	for i := range u.adj {
		u.adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.At(i, j) != 0 || m.At(j, i) != 0 {
				u.adj[i][j] = true
				u.adj[j][i] = true
				u.degree[i]++
				u.degree[j]++
				u.edges++
			}
		}
	}
	for i := 0; i < n; i++ {
		if u.degree[i] > 0 {
			u.active = append(u.active, i)
		}
	}
	return u
}

// connected reports whether the active vertices form one component.
func (u *undirected) connected() bool {
	if len(u.active) == 0 {
		return false
	}
	seen := make([]bool, u.n)
	queue := []int{u.active[0]}
	seen[u.active[0]] = true
	count := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		count++
		for w := 0; w < u.n; w++ {
			if u.adj[v][w] && !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return count == len(u.active)
}

// bipartition 2-colors the active vertices by BFS. It returns the
// two parts and whether the graph is bipartite.
func (u *undirected) bipartition() (a, b []int, ok bool) {
	color := make([]int, u.n) // 0 unvisited, 1/2 the parts
	for _, start := range u.active {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < u.n; w++ {
				if !u.adj[v][w] {
					continue
				}
				if color[w] == 0 {
					color[w] = 3 - color[v]
					queue = append(queue, w)
				} else if color[w] == color[v] {
					return nil, nil, false
				}
			}
		}
	}
	for _, v := range u.active {
		if color[v] == 1 {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	return a, b, true
}

// triangleFree reports whether the graph contains no 3-cycles.
func (u *undirected) triangleFree() bool {
	for _, a := range u.active {
		for _, b := range u.active {
			if b <= a || !u.adj[a][b] {
				continue
			}
			for _, c := range u.active {
				if c <= b || !u.adj[b][c] {
					continue
				}
				if u.adj[a][c] {
					return false
				}
			}
		}
	}
	return true
}

// regular returns the common degree of all active vertices, or -1
// when degrees differ.
func (u *undirected) regular() int {
	d := -1
	for _, v := range u.active {
		if d == -1 {
			d = u.degree[v]
		} else if u.degree[v] != d {
			return -1
		}
	}
	return d
}

// ClassifyGraph identifies which Fig 10 shape a traffic matrix
// draws. Ambiguous degenerate cases resolve in the order the checks
// run (documented on each branch); anything unrecognized returns
// GraphUnknown.
func ClassifyGraph(m *matrix.Dense) GraphKind {
	if !m.IsSquare() || m.NNZ() == 0 {
		return GraphUnknown
	}
	// Self loop: every non-zero cell sits on the diagonal.
	diagOnly := true
	for i := 0; i < m.Rows() && diagOnly; i++ {
		for j := 0; j < m.Cols(); j++ {
			if i != j && m.At(i, j) != 0 {
				diagOnly = false
				break
			}
		}
	}
	if diagOnly {
		return GraphSelfLoop
	}

	u := newUndirected(m)
	k := len(u.active)
	if k == 0 {
		return GraphUnknown
	}

	// Triangle: exactly three mutually linked vertices. Checked
	// before clique so K₃ reads as the triangle lesson.
	if k == 3 && u.edges == 3 {
		return GraphTriangle
	}
	// Clique: all pairs linked, k ≥ 4.
	if k >= 4 && u.edges == k*(k-1)/2 {
		return GraphClique
	}
	// Star: one hub of degree k-1, all others degree 1. Checked
	// before tree (a star is a tree) and before bipartite (a star
	// is K₁,ₖ).
	if k >= 4 && u.edges == k-1 {
		hubs, leaves := 0, 0
		for _, v := range u.active {
			switch u.degree[v] {
			case k - 1:
				hubs++
			case 1:
				leaves++
			}
		}
		if hubs == 1 && leaves == k-1 {
			return GraphStar
		}
	}
	if !u.connected() {
		return GraphUnknown
	}
	// Tree: connected and acyclic.
	if u.edges == k-1 {
		return GraphTree
	}
	// Ring: a single cycle over ≥ 4 vertices (a 3-cycle already
	// classified as triangle; a 2×2 mesh is also a 4-cycle and
	// resolves here as ring).
	if u.edges == k && u.regular() == 2 {
		return GraphRing
	}
	// Complete bipartite: 2-colorable with every cross pair linked.
	// Checked before torus because K₃,₃ is regular too.
	if a, b, ok := u.bipartition(); ok && len(a) >= 2 && len(b) >= 2 && u.edges == len(a)*len(b) {
		return GraphBipartite
	}
	// A torus is regular of degree 3 (when one grid dimension is 2)
	// or 4; it need not be triangle-free (wrapping a length-3
	// dimension creates 3-cycles). Cliques, rings, and complete
	// bipartite graphs — the other regular shapes — were classified
	// above.
	if d := u.regular(); d == 3 || d == 4 {
		return GraphTorus
	}
	// A bounded mesh is triangle-free with corner vertices of
	// smaller degree than interior ones.
	if u.triangleFree() {
		minDeg, maxDeg := u.n, 0
		for _, v := range u.active {
			if u.degree[v] < minDeg {
				minDeg = u.degree[v]
			}
			if u.degree[v] > maxDeg {
				maxDeg = u.degree[v]
			}
		}
		if minDeg >= 2 && maxDeg <= 4 && maxDeg > minDeg {
			return GraphMesh
		}
	}
	return GraphUnknown
}

// TopologyKind enumerates the Fig 6 basic traffic topologies.
type TopologyKind int

const (
	// TopologyUnknown is returned when no topology matches.
	TopologyUnknown TopologyKind = iota
	// TopologyIsolatedLinks is disjoint reciprocated pairs.
	TopologyIsolatedLinks
	// TopologySingleLinks is disjoint unreciprocated links.
	TopologySingleLinks
	// TopologyInternalSupernode is a high-fan hub in blue space.
	TopologyInternalSupernode
	// TopologyExternalSupernode is a high-fan hub outside blue
	// space.
	TopologyExternalSupernode
)

// topologyNames holds display names indexed by TopologyKind.
var topologyNames = [...]string{
	"unknown", "isolated links", "single links",
	"internal supernode", "external supernode",
}

// String returns the topology's display name.
func (k TopologyKind) String() string {
	if k < 0 || int(k) >= len(topologyNames) {
		return "unknown"
	}
	return topologyNames[k]
}

// SupernodeFanThreshold is the minimum distinct-peer count that makes
// a vertex a supernode rather than an ordinary busy host.
const SupernodeFanThreshold = 3

// ClassifyTopology identifies which Fig 6 topology a traffic matrix
// shows, using zones to split internal from external supernodes.
func ClassifyTopology(m *matrix.Dense, z Zones) TopologyKind {
	return ClassifyTopologyOf(m, z)
}

// ClassifyTopologyOf is ClassifyTopology over the read-only accessor
// interface, visiting only stored entries.
func ClassifyTopologyOf(m matrix.Matrix, z Zones) TopologyKind {
	if m.Rows() != m.Cols() || m.Rows() != z.N || m.NNZ() == 0 {
		return TopologyUnknown
	}
	n := m.Rows()
	// peers[v] is the set of distinct off-diagonal counterparties.
	peers := make([]map[int]bool, n)
	reciprocalOnly := true
	anyReciprocal := false
	matrix.EachStored(m, func(i, j, _ int) {
		if i == j {
			return
		}
		if peers[i] == nil {
			peers[i] = make(map[int]bool)
		}
		if peers[j] == nil {
			peers[j] = make(map[int]bool)
		}
		peers[i][j] = true
		peers[j][i] = true
		if m.At(j, i) != 0 {
			anyReciprocal = true
		} else {
			reciprocalOnly = false
		}
	})
	maxFan, hub := 0, -1
	allFanOne := true
	for v := 0; v < n; v++ {
		fan := len(peers[v])
		if fan > maxFan {
			maxFan, hub = fan, v
		}
		if fan > 1 {
			allFanOne = false
		}
	}
	if maxFan >= SupernodeFanThreshold {
		if z.Of(hub) == ZoneBlue {
			return TopologyInternalSupernode
		}
		return TopologyExternalSupernode
	}
	if allFanOne {
		if reciprocalOnly && anyReciprocal {
			return TopologyIsolatedLinks
		}
		if !anyReciprocal {
			return TopologySingleLinks
		}
	}
	return TopologyUnknown
}

// zoneCount is the number of Zone values (blue, grey, red), sizing
// the flow-count table below.
const zoneCount = 3

// zoneFlowCells tallies the stored non-zero cells of m by
// (source zone, destination zone) in one scan, plus the total cell
// count. Every signature-fraction classifier reads from this one
// table, so scoring k candidate signatures costs one matrix walk
// instead of k.
func zoneFlowCells(m matrix.Matrix, z Zones) (counts [zoneCount][zoneCount]int, total int) {
	matrix.EachStored(m, func(i, j, _ int) {
		counts[z.Of(i)][z.Of(j)]++
		total++
	})
	return counts, total
}

// signatureFraction is flowFraction over a precomputed zone-pair
// table: the fraction of cells whose zone pair is in the signature.
func signatureFraction(counts [zoneCount][zoneCount]int, total int, signature map[[2]Zone]bool) float64 {
	if total == 0 {
		return 0
	}
	hits := 0
	for pair := range signature {
		hits += counts[pair[0]][pair[1]]
	}
	return float64(hits) / float64(total)
}

// flowFraction returns the fraction of non-zero cells whose
// (source zone, destination zone) pair is in the signature set. It
// walks only stored entries through the accessor interface.
func flowFraction(m matrix.Matrix, z Zones, signature map[[2]Zone]bool) float64 {
	counts, total := zoneFlowCells(m, z)
	return signatureFraction(counts, total, signature)
}

// attackSignatures maps each stage to the zone flows that
// characterize it.
var attackSignatures = map[AttackStage]map[[2]Zone]bool{
	StagePlanning:     {{ZoneRed, ZoneRed}: true},
	StageStaging:      {{ZoneRed, ZoneGrey}: true, {ZoneGrey, ZoneRed}: true},
	StageInfiltration: {{ZoneGrey, ZoneBlue}: true, {ZoneBlue, ZoneGrey}: true},
	StageLateral:      {{ZoneBlue, ZoneBlue}: true},
}

// ClassifyAttackStage returns the attack stage whose signature flows
// explain the largest fraction of the matrix's links, with that
// fraction as a confidence. Pure single-stage matrices score 1.0;
// a combined campaign scores the dominant stage lower.
func ClassifyAttackStage(m *matrix.Dense, z Zones) (AttackStage, float64) {
	return ClassifyAttackStageOf(m, z)
}

// ClassifyAttackStageOf is ClassifyAttackStage over the read-only
// accessor interface. All four stage signatures score from one
// zone-pair tally, so a window classifies in a single O(nnz) scan.
func ClassifyAttackStageOf(m matrix.Matrix, z Zones) (AttackStage, float64) {
	counts, total := zoneFlowCells(m, z)
	best, bestScore := StagePlanning, -1.0
	for _, stage := range AttackStages {
		if score := signatureFraction(counts, total, attackSignatures[stage]); score > bestScore {
			best, bestScore = stage, score
		}
	}
	return best, bestScore
}

// postureSignatures maps each protection posture to its zone flows.
var postureSignatures = map[Posture]map[[2]Zone]bool{
	PostureSecurity:   {{ZoneBlue, ZoneBlue}: true},
	PostureDefense:    {{ZoneBlue, ZoneGrey}: true, {ZoneGrey, ZoneBlue}: true},
	PostureDeterrence: {{ZoneBlue, ZoneRed}: true, {ZoneRed, ZoneRed}: true},
}

// ClassifyPosture returns the security/defense/deterrence concept
// whose signature flows best explain the matrix, with the explained
// fraction as confidence.
func ClassifyPosture(m *matrix.Dense, z Zones) (Posture, float64) {
	counts, total := zoneFlowCells(m, z)
	best, bestScore := PostureSecurity, -1.0
	for _, p := range Postures {
		if score := signatureFraction(counts, total, postureSignatures[p]); score > bestScore {
			best, bestScore = p, score
		}
	}
	return best, bestScore
}

// ClassifyDDoS returns the DDoS component that best explains the
// matrix given the cast of the attack, with the explained fraction
// as confidence.
func ClassifyDDoS(m *matrix.Dense, roles DDoSRoles) (DDoSComponent, float64) {
	return ClassifyDDoSOf(m, roles)
}

// ClassifyDDoSOf is ClassifyDDoS over the read-only accessor
// interface: one pass over the stored entries tallies every
// component's hits, so a CSR window classifies in O(nnz) with no
// dense materialization.
func ClassifyDDoSOf(m matrix.Matrix, roles DDoSRoles) (DDoSComponent, float64) {
	n := m.Rows()
	inC2 := make([]bool, n)
	for _, v := range roles.C2 {
		if v >= 0 && v < n {
			inC2[v] = true
		}
	}
	inBots := make([]bool, n)
	for _, v := range roles.Bots {
		if v >= 0 && v < n {
			inBots[v] = true
		}
	}
	total := 0
	var hits [DDoSBackscatter + 1]int
	matrix.EachStored(m, func(i, j, _ int) {
		total++
		if inC2[i] && inC2[j] {
			hits[DDoSC2]++
		}
		if inC2[i] && inBots[j] {
			hits[DDoSBotnet]++
		}
		if inBots[i] && j == roles.Victim {
			hits[DDoSAttack]++
		}
		if i == roles.Victim && inBots[j] {
			hits[DDoSBackscatter]++
		}
	})
	best, bestScore := DDoSC2, -1.0
	for _, component := range DDoSComponents {
		score := 0.0
		if total > 0 {
			score = float64(hits[component]) / float64(total)
		}
		if score > bestScore {
			best, bestScore = component, score
		}
	}
	return best, bestScore
}
