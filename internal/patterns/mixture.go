package patterns

import (
	"sort"

	"repro/internal/matrix"
)

// Mixture-aware classification for the composition algebra: where
// ClassifyBehavior and ClassifyTopology each pick ONE best reading,
// real (and composed) traffic layers several shapes at once — a scan
// on top of background chatter, a DDoS following a worm.
// ClassifyMixtureOf scores every catalog shape independently against
// the same matrix and returns all components above a noise floor,
// ranked, so an analyst exercise can ask "which two behaviours are
// mixed here?" and grade the answer mechanically.

// MixtureComponent is one recognized layer of a traffic mixture.
type MixtureComponent struct {
	// Label names the shape using the netsim catalog vocabulary
	// ("background", "scan", "ddos", "attack", "worm", "exfil",
	// "flashcrowd", "beacon").
	Label string
	// Score is the fraction of off-diagonal traffic the shape's
	// signature explains, in [0,1] — by packet volume for the heavy
	// shapes, by active-cell count for the structurally light ones
	// (scan, beacon), whichever is larger. Scores are independent per
	// shape (layers overlap), so they need not sum to 1.
	Score float64
}

// MinMixtureScore is the noise floor: shapes explaining less than
// this fraction of the traffic are not reported as mixture
// components.
const MinMixtureScore = 0.05

// balanceRatio bounds how lopsided a reciprocated link may be and
// still read as conversational: a pair is balanced when each
// direction stays strictly below balanceRatio times the other.
// Request/reply chatter (roughly 2:1) sits inside the bound; floods,
// crowds, and exfiltration run at 3:1 or worse — the paper's own
// DDoS module floods at exactly three times its backscatter — and
// fall outside it.
const balanceRatio = 3

// mixtureLabels fixes the vocabulary and its tie-break order.
var mixtureLabels = []string{
	"background", "scan", "attack", "ddos",
	"worm", "exfil", "flashcrowd", "beacon",
}

// ClassifyMixtureOf scores every catalog shape against the matrix and
// returns the components above MinMixtureScore, strongest first (ties
// break in mixtureLabels order). A pure single-scenario matrix
// reports its own shape dominant; an overlay reports each layer it
// can still discern. It consumes the read-only accessor interface, so
// Dense and CSR classify identically, visiting only stored entries.
//
// Each shape is gated on the structural feature that separates it
// from its neighbours:
//
//   - background: balanced reciprocated chatter touching blue space
//     (blue↔blue, blue↔grey) — floods and exfiltration fail the
//     balance gate even though their victims reply;
//   - scan: unreciprocated red→blue probes from a red source fanning
//     to ≥ SupernodeFanThreshold blue targets (scored by cells as
//     well as volume: probes are light by design);
//   - attack: balanced zone migration — scored by 4× the weakest of
//     the four stage signatures, so a pure campaign scores 1 and a
//     mixture missing any stage scores 0;
//   - ddos: a blue column absorbing unbalanced fan-in from ≥
//     SupernodeFanThreshold non-blue sources, plus its backscatter
//     and any red→red C2 clique;
//   - flashcrowd: a blue column absorbing unbalanced fan-in from ≥
//     SupernodeFanThreshold sources at least half of which are blue —
//     the legitimate-demand tell the flood lacks;
//   - worm: predominantly unreciprocated blue→blue spread to ≥ 2
//     distinct destinations plus the red→blue seed;
//   - exfil: one dominant blue→grey cell ≥ balanceRatio× its
//     reverse;
//   - beacon: light blue→red carrier with at most symmetric tasking
//     replies (scored by cells as well as volume).
func ClassifyMixtureOf(m matrix.Matrix, z Zones) []MixtureComponent {
	scores := mixtureScores(m, z)
	var out []MixtureComponent
	for _, label := range mixtureLabels {
		if s := scores[label]; s >= MinMixtureScore {
			if s > 1 {
				s = 1
			}
			out = append(out, MixtureComponent{Label: label, Score: s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// ClassifyMixture is ClassifyMixtureOf for callers holding a *Dense,
// mirroring the other classifier pairs.
func ClassifyMixture(m *matrix.Dense, z Zones) []MixtureComponent {
	return ClassifyMixtureOf(m, z)
}

// mixtureScores gathers the per-shape fractions in one pass over the
// stored entries (plus At reciprocity lookups and one row re-visit
// per candidate hub column).
func mixtureScores(m matrix.Matrix, z Zones) map[string]float64 {
	scores := map[string]float64{}
	if m.Rows() != m.Cols() || m.Rows() != z.N || m.NNZ() == 0 {
		return scores
	}
	n := m.Rows()

	total := 0      // all off-diagonal packets
	totalCells := 0 // all off-diagonal stored cells
	zonePackets := map[[2]Zone]int{}
	balancedBlue := 0             // balanced chatter volume touching blue space
	scanPackets := make([]int, n) // per red row: unreciprocated red→blue volume
	scanCells := make([]int, n)   // per red row: distinct unreciprocated blue targets
	// unbalanced[j] maps each source pouring unbalanced traffic into
	// column j to that traffic's volume (candidate flood/crowd arms).
	unbalanced := make([]map[int]int, n)
	blueBlueDsts := map[int]bool{}
	recipBlueBlue := 0               // reciprocated blue→blue volume
	bgRow, bgCol, bgVal := -1, -1, 0 // heaviest blue→grey cell

	matrix.EachStored(m, func(i, j, v int) {
		if i == j {
			return
		}
		zi, zj := z.Of(i), z.Of(j)
		total += v
		totalCells++
		zonePackets[[2]Zone{zi, zj}] += v
		r := m.At(j, i)
		balanced := r > 0 && v < balanceRatio*r && r < balanceRatio*v
		if balanced && (zi == ZoneBlue || zj == ZoneBlue) && zi != ZoneRed && zj != ZoneRed {
			balancedBlue += v
		}
		if !balanced && zj == ZoneBlue && v >= balanceRatio*r {
			if unbalanced[j] == nil {
				unbalanced[j] = make(map[int]int)
			}
			unbalanced[j][i] += v
		}
		if zi == ZoneBlue && zj == ZoneBlue {
			blueBlueDsts[j] = true
			if r != 0 {
				recipBlueBlue += v
			}
		}
		if zi == ZoneBlue && zj == ZoneGrey && v > bgVal {
			bgRow, bgCol, bgVal = i, j, v
		}
		if zi == ZoneRed && zj == ZoneBlue && r == 0 {
			scanPackets[i] += v
			scanCells[i]++
		}
	})
	if total == 0 {
		return scores
	}
	frac := func(v int) float64 { return float64(v) / float64(total) }
	cellFrac := func(c int) float64 { return float64(c) / float64(totalCells) }

	// background: balanced conversational volume in blue/grey space.
	scores["background"] = frac(balancedBlue)

	// scan: every red row probing enough distinct blue targets
	// contributes; light probes score by structure (cells) when the
	// volume fraction undersells them.
	scannedPkts, scannedCells := 0, 0
	for i := 0; i < n; i++ {
		if z.Of(i) == ZoneRed && scanCells[i] >= SupernodeFanThreshold {
			scannedPkts += scanPackets[i]
			scannedCells += scanCells[i]
		}
	}
	scores["scan"] = max(frac(scannedPkts), cellFrac(scannedCells))

	// attack: balanced four-stage zone migration — 4× the weakest
	// stage fraction, so a pure quarter-per-stage campaign scores 1
	// and a mixture missing any stage scores 0.
	weakest := -1.0
	for _, stage := range AttackStages {
		hits := 0
		for pair := range attackSignatures[stage] {
			hits += zonePackets[pair]
		}
		if f := frac(hits); weakest < 0 || f < weakest {
			weakest = f
		}
	}
	if weakest > 0 {
		scores["attack"] = 4 * weakest
	}

	// ddos and flashcrowd: both are unbalanced fan-in columns on a
	// blue host; the source mix separates them — the flood arrives
	// from outside blue space, the crowd mostly from inside it.
	for j := 0; j < n; j++ {
		arms := unbalanced[j]
		if z.Of(j) != ZoneBlue || len(arms) < SupernodeFanThreshold {
			continue
		}
		inVol, blueArms, nonBlueArms, nonBlueVol := 0, 0, 0, 0
		for i, v := range arms {
			inVol += v
			if z.Of(i) == ZoneBlue {
				blueArms++
			} else {
				nonBlueArms++
				nonBlueVol += v
			}
		}
		// Replies out of the hub to its unbalanced sources: the
		// crowd's acknowledgements, the flood's backscatter.
		replies := 0
		m.Row(j, func(k, v int) {
			if _, ok := arms[k]; ok {
				replies += v
			}
		})
		if nonBlueArms >= SupernodeFanThreshold {
			flood := frac(nonBlueVol+replies) + frac(zonePackets[[2]Zone{ZoneRed, ZoneRed}])
			if flood > scores["ddos"] {
				scores["ddos"] = flood
			}
		}
		if 2*blueArms >= len(arms) {
			crowd := frac(inVol + replies)
			if crowd > scores["flashcrowd"] {
				scores["flashcrowd"] = crowd
			}
		}
	}

	// worm: predominantly unreciprocated blue→blue spread plus the
	// red→blue seed.
	if len(blueBlueDsts) >= 2 {
		spread := zonePackets[[2]Zone{ZoneBlue, ZoneBlue}] + zonePackets[[2]Zone{ZoneRed, ZoneBlue}]
		if 2*recipBlueBlue <= spread {
			scores["worm"] = frac(spread)
		}
	}

	// exfil: the dominant blue→grey cell, gated on asymmetry.
	if bgVal > 0 && m.At(bgCol, bgRow) <= bgVal/balanceRatio {
		scores["exfil"] = frac(bgVal)
	}

	// beacon: blue→red carrier with at most symmetric tasking back;
	// a light covert channel scores by structure when volume
	// undersells it.
	br := zonePackets[[2]Zone{ZoneBlue, ZoneRed}]
	rb := zonePackets[[2]Zone{ZoneRed, ZoneBlue}]
	if br > 0 && rb <= br {
		beaconCells := 0
		matrix.EachStored(m, func(i, j, _ int) {
			if z.Of(i) == ZoneBlue && z.Of(j) == ZoneRed {
				beaconCells++
			}
		})
		scores["beacon"] = max(frac(br+rb), cellFrac(beaconCells))
	}
	return scores
}
