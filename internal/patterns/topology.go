package patterns

import (
	"fmt"

	"repro/internal/matrix"
)

// Basic traffic topologies (Fig 6): "traffic patterns shown for
// isolated links, single links, internal supernodes, and external
// supernodes". These are the vocabulary of the multi-temporal network
// analysis literature the figure cites: the classifier below
// recognizes each so a student's intuition can be checked
// mechanically.

// IsolatedLinks returns a matrix of disjoint bidirectional pairs:
// (0↔1), (2↔3), … for the given number of pairs. Both endpoints of
// each pair talk only to each other — the paper's "isolated links"
// topology (Fig 6a).
func IsolatedLinks(n, pairs, weight int) (*matrix.Dense, error) {
	if pairs < 1 || 2*pairs > n {
		return nil, fmt.Errorf("patterns: %d isolated pairs do not fit %d vertices", pairs, n)
	}
	if weight < 1 {
		return nil, fmt.Errorf("patterns: weight must be positive, got %d", weight)
	}
	m := matrix.NewSquare(n)
	for p := 0; p < pairs; p++ {
		i, j := 2*p, 2*p+1
		m.Set(i, j, weight)
		m.Set(j, i, weight)
	}
	return m, nil
}

// SingleLinks returns a matrix of disjoint one-way links:
// (0→1), (2→3), … Each vertex participates in at most one link and
// nothing is reciprocated — the paper's "single links" topology
// (Fig 6b).
func SingleLinks(n, links, weight int) (*matrix.Dense, error) {
	if links < 1 || 2*links > n {
		return nil, fmt.Errorf("patterns: %d single links do not fit %d vertices", links, n)
	}
	if weight < 1 {
		return nil, fmt.Errorf("patterns: weight must be positive, got %d", weight)
	}
	m := matrix.NewSquare(n)
	for p := 0; p < links; p++ {
		m.Set(2*p, 2*p+1, weight)
	}
	return m, nil
}

// Supernode returns a matrix where one hub exchanges traffic with
// every vertex in the peer range [peerStart,peerEnd). When the hub is
// a blue-zone host this is the paper's "internal supernode" (Fig 6c,
// e.g. a busy internal server); a grey- or red-zone hub is the
// "external supernode" (Fig 6d, e.g. a popular external service).
// Traffic flows both ways, one packet heavier toward the hub so the
// fan-in is visible.
func Supernode(n, hub, peerStart, peerEnd, weight int) (*matrix.Dense, error) {
	if hub < 0 || hub >= n {
		return nil, fmt.Errorf("patterns: supernode hub %d out of range [0,%d)", hub, n)
	}
	if peerStart < 0 || peerEnd > n || peerStart >= peerEnd {
		return nil, fmt.Errorf("patterns: peer range [%d,%d) invalid for %d vertices", peerStart, peerEnd, n)
	}
	if weight < 1 {
		return nil, fmt.Errorf("patterns: weight must be positive, got %d", weight)
	}
	m := matrix.NewSquare(n)
	placed := 0
	for p := peerStart; p < peerEnd; p++ {
		if p == hub {
			continue
		}
		m.Set(p, hub, weight+1)
		m.Set(hub, p, weight)
		placed++
	}
	if placed == 0 {
		return nil, fmt.Errorf("patterns: supernode has no peers in [%d,%d)", peerStart, peerEnd)
	}
	return m, nil
}

// InternalSupernode builds Fig 6c on the standard zones: the blue
// server (SRV1, index BlueEnd-1) exchanging traffic with every other
// blue host and the grey externals.
func InternalSupernode(z Zones, weight int) (*matrix.Dense, error) {
	if !z.Valid() || z.BlueEnd == 0 {
		return nil, fmt.Errorf("patterns: zones %+v lack a blue region", z)
	}
	hub := z.BlueEnd - 1
	return Supernode(z.N, hub, 0, z.GreyEnd, weight)
}

// ExternalSupernode builds Fig 6d on the standard zones: a grey
// external service (EXT1, index BlueEnd) exchanging traffic with
// every blue host.
func ExternalSupernode(z Zones, weight int) (*matrix.Dense, error) {
	if !z.Valid() || z.GreyEnd == z.BlueEnd {
		return nil, fmt.Errorf("patterns: zones %+v lack a grey region", z)
	}
	hub := z.BlueEnd
	m, err := Supernode(z.N, hub, 0, z.BlueEnd, weight)
	if err != nil {
		return nil, err
	}
	return m, nil
}
