package patterns

import (
	"testing"

	"repro/internal/matrix"
)

// TestCatalogBuilds verifies every figure panel generates without
// error, on the standard 10×10 axis, with matching color overlay.
func TestCatalogBuilds(t *testing.T) {
	for _, e := range Catalog() {
		m, c, err := e.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", e.ID, err)
		}
		if m.Rows() != 10 || m.Cols() != 10 {
			t.Errorf("%s: matrix is %dx%d, want 10x10", e.ID, m.Rows(), m.Cols())
		}
		if c.Rows() != m.Rows() || c.Cols() != m.Cols() {
			t.Errorf("%s: color overlay %dx%d does not match matrix", e.ID, c.Rows(), c.Cols())
		}
		if m.NNZ() == 0 {
			t.Errorf("%s: pattern is empty", e.ID)
		}
		if m.Max() > 14 {
			t.Errorf("%s: max packet count %d exceeds display guidance", e.ID, m.Max())
		}
	}
}

// TestCatalogIDsUnique verifies catalog IDs and figures are unique.
func TestCatalogIDsUnique(t *testing.T) {
	ids := make(map[string]bool)
	figs := make(map[string]bool)
	for _, e := range Catalog() {
		if ids[e.ID] {
			t.Errorf("duplicate catalog ID %s", e.ID)
		}
		ids[e.ID] = true
		if figs[e.Figure] {
			t.Errorf("duplicate figure %s", e.Figure)
		}
		figs[e.Figure] = true
	}
	if len(ids) != 24 {
		t.Errorf("catalog has %d entries, want 24 (4+4+3+4+9)", len(ids))
	}
}

// TestClassifyGraphCatalog verifies the graph classifier identifies
// every Fig 10 panel as the shape it claims to be.
func TestClassifyGraphCatalog(t *testing.T) {
	want := map[string]GraphKind{
		"10a": GraphStar,
		"10b": GraphClique,
		"10c": GraphBipartite,
		"10d": GraphTree,
		"10e": GraphRing,
		"10f": GraphMesh,
		"10g": GraphTorus,
		"10h": GraphSelfLoop,
		"10i": GraphTriangle,
	}
	for _, e := range ByFamily(FamilyGraph) {
		m, _, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if got := ClassifyGraph(m); got != want[e.Figure] {
			t.Errorf("%s (%s): classified as %v, want %v", e.ID, e.Title, got, want[e.Figure])
		}
	}
}

// TestClassifyTopologyCatalog verifies the topology classifier on
// every Fig 6 panel.
func TestClassifyTopologyCatalog(t *testing.T) {
	want := map[string]TopologyKind{
		"6a": TopologyIsolatedLinks,
		"6b": TopologySingleLinks,
		"6c": TopologyInternalSupernode,
		"6d": TopologyExternalSupernode,
	}
	for _, e := range ByFamily(FamilyTopology) {
		m, _, err := e.Build()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if got := ClassifyTopology(m, StandardZones10); got != want[e.Figure] {
			t.Errorf("%s (%s): classified as %v, want %v", e.ID, e.Title, got, want[e.Figure])
		}
	}
}

// TestClassifyAttackCatalog verifies the attack-stage classifier
// scores every Fig 7 panel as its own stage with full confidence.
func TestClassifyAttackCatalog(t *testing.T) {
	for _, stage := range AttackStages {
		m, err := Attack(StandardZones10, stage, 2)
		if err != nil {
			t.Fatalf("%v: %v", stage, err)
		}
		got, conf := ClassifyAttackStage(m, StandardZones10)
		if got != stage {
			t.Errorf("stage %v classified as %v (confidence %.2f)", stage, got, conf)
		}
		if conf != 1.0 {
			t.Errorf("stage %v confidence %.2f, want 1.0", stage, conf)
		}
	}
}

// TestClassifyPostureCatalog verifies the SDD classifier on every
// Fig 8 panel.
func TestClassifyPostureCatalog(t *testing.T) {
	for _, p := range Postures {
		m, err := SDD(StandardZones10, p, 2)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		got, conf := ClassifyPosture(m, StandardZones10)
		if got != p {
			t.Errorf("posture %v classified as %v (confidence %.2f)", p, got, conf)
		}
		if conf != 1.0 {
			t.Errorf("posture %v confidence %.2f, want 1.0", p, conf)
		}
	}
}

// TestClassifyDDoSCatalog verifies the DDoS classifier on every
// Fig 9 panel.
func TestClassifyDDoSCatalog(t *testing.T) {
	roles, err := AssignDDoSRoles(StandardZones10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range DDoSComponents {
		m, err := DDoS(StandardZones10, c, 2)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		got, conf := ClassifyDDoS(m, roles)
		if got != c {
			t.Errorf("component %v classified as %v (confidence %.2f)", c, got, conf)
		}
		if conf != 1.0 {
			t.Errorf("component %v confidence %.2f, want 1.0", c, conf)
		}
	}
}

// TestTriangleHasOneTriangle cross-checks Fig 10i against the
// linear-algebra triangle census.
func TestTriangleHasOneTriangle(t *testing.T) {
	m, err := Triangle(10, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := matrix.TriangleCount(m)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("triangle count = %d, want 1", n)
	}
}
