// Package patterns generates and classifies the traffic-matrix
// patterns of every learning module in the paper: the basic traffic
// topologies (Fig 6), the notional-attack stages (Fig 7), the
// security/defense/deterrence concepts (Fig 8), the DDoS components
// (Fig 9), and the graph-theory shapes (Fig 10).
//
// Generators are pure and deterministic; the optional noise and
// composition helpers take an explicit *rand.Rand. Each generator
// family has a matching classifier so tests (and the analyst
// examples) can verify that a rendered pattern is recognizably the
// behaviour it claims to teach.
package patterns

import (
	"fmt"

	"repro/internal/matrix"
)

// Zone labels a region of the address space by trust color, the
// paper's blue/grey/red vocabulary.
type Zone int

const (
	// ZoneBlue is the student's own network (workstations and
	// servers).
	ZoneBlue Zone = iota
	// ZoneGrey is neutral external space.
	ZoneGrey
	// ZoneRed is adversary space.
	ZoneRed
)

// String returns "blue", "grey", or "red".
func (z Zone) String() string {
	switch z {
	case ZoneBlue:
		return "blue"
	case ZoneGrey:
		return "grey"
	case ZoneRed:
		return "red"
	default:
		return fmt.Sprintf("zone(%d)", int(z))
	}
}

// Zones partitions a label axis into contiguous blue, grey, and red
// regions: indices [0,BlueEnd) are blue, [BlueEnd,GreyEnd) grey, and
// [GreyEnd,N) red. The paper's example modules all use this layout.
type Zones struct {
	// N is the axis length.
	N int
	// BlueEnd is the first non-blue index.
	BlueEnd int
	// GreyEnd is the first red index.
	GreyEnd int
}

// StandardZones10 matches the paper's canonical 10-label axis:
// WS1–WS3 and SRV1 are blue, EXT1–EXT2 grey, ADV1–ADV4 red.
var StandardZones10 = Zones{N: 10, BlueEnd: 4, GreyEnd: 6}

// StandardLabels10 is the paper's canonical label list.
var StandardLabels10 = []string{
	"WS1", "WS2", "WS3", "SRV1",
	"EXT1", "EXT2",
	"ADV1", "ADV2", "ADV3", "ADV4",
}

// Valid reports whether the zone boundaries are ordered and in
// range.
func (z Zones) Valid() bool {
	return z.N > 0 && 0 <= z.BlueEnd && z.BlueEnd <= z.GreyEnd && z.GreyEnd <= z.N
}

// Of returns the zone of index i.
func (z Zones) Of(i int) Zone {
	switch {
	case i < z.BlueEnd:
		return ZoneBlue
	case i < z.GreyEnd:
		return ZoneGrey
	default:
		return ZoneRed
	}
}

// Indices returns the index range [start,end) of the given zone.
func (z Zones) Indices(zone Zone) (start, end int) {
	switch zone {
	case ZoneBlue:
		return 0, z.BlueEnd
	case ZoneGrey:
		return z.BlueEnd, z.GreyEnd
	default:
		return z.GreyEnd, z.N
	}
}

// Count returns the number of indices in the zone.
func (z Zones) Count(zone Zone) int {
	s, e := z.Indices(zone)
	return e - s
}

// FlowCounts tallies the number of non-zero cells between each
// (source zone, destination zone) pair — the nine-way breakdown the
// stage classifiers read.
func (z Zones) FlowCounts(m *matrix.Dense) map[[2]Zone]int {
	counts := make(map[[2]Zone]int)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != 0 {
				counts[[2]Zone{z.Of(i), z.Of(j)}]++
			}
		}
	}
	return counts
}

// ColorMatrix builds the module color matrix the paper's examples
// use: cells where blue hosts meet red space are painted red (the
// threat axis), cells where red hosts meet blue space are painted
// blue (the victim axis), everything else grey. This reproduces the
// paper's 10×10 template color listing exactly.
func (z Zones) ColorMatrix() *matrix.Dense {
	c := matrix.NewSquare(z.N)
	for i := 0; i < z.N; i++ {
		for j := 0; j < z.N; j++ {
			src, dst := z.Of(i), z.Of(j)
			switch {
			case src == ZoneBlue && dst == ZoneRed:
				c.Set(i, j, 2)
			case src == ZoneRed && dst == ZoneBlue:
				c.Set(i, j, 1)
			}
		}
	}
	return c
}

// HighlightColors paints every non-zero traffic cell with the given
// color code and leaves the rest grey: the style the topology and
// graph-theory figures use to call out the active pattern.
func HighlightColors(m *matrix.Dense, color int) *matrix.Dense {
	c := matrix.NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != 0 {
				c.Set(i, j, color)
			}
		}
	}
	return c
}

// ZoneColors paints each non-zero cell by the zone relationship of
// its endpoints: red when either endpoint is red, blue when both are
// blue, grey otherwise. The attack and DDoS figures use this to make
// stages readable at a glance.
func (z Zones) ZoneColors(m *matrix.Dense) *matrix.Dense {
	c := matrix.NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) == 0 {
				continue
			}
			src, dst := z.Of(i), z.Of(j)
			switch {
			case src == ZoneRed || dst == ZoneRed:
				c.Set(i, j, 2)
			case src == ZoneBlue && dst == ZoneBlue:
				c.Set(i, j, 1)
			default:
				c.Set(i, j, 0)
			}
		}
	}
	return c
}
