package patterns

import (
	"fmt"

	"repro/internal/matrix"
)

// DDoS components (Fig 9): command-and-control servers in red space,
// identical C2→client communications, the flood from the clients to
// the blue servers, and the backscatter of replies to the
// illegitimate traffic.

// DDoSComponent enumerates the four components.
type DDoSComponent int

const (
	// DDoSC2 is communication among command-and-control servers in
	// red space (Fig 9a).
	DDoSC2 DDoSComponent = iota
	// DDoSBotnet is the C2 servers instructing their clients with
	// identical messages (Fig 9b).
	DDoSBotnet
	// DDoSAttack is the flood from botnet clients to the blue
	// servers (Fig 9c).
	DDoSAttack
	// DDoSBackscatter is the servers replying to the illegitimate
	// traffic (Fig 9d).
	DDoSBackscatter
)

// ddosNames holds display names in component order.
var ddosNames = [...]string{"command and control", "botnet clients", "DDoS attack", "backscatter"}

// String returns the component's display name.
func (c DDoSComponent) String() string {
	if c < 0 || int(c) >= len(ddosNames) {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return ddosNames[c]
}

// DDoSComponents lists the components in the paper's order.
var DDoSComponents = []DDoSComponent{DDoSC2, DDoSBotnet, DDoSAttack, DDoSBackscatter}

// DDoSRoles assigns zone indices to the cast of a DDoS on the given
// zones: the first half of red space are C2 servers, the rest of red
// space plus all of grey space are botnet clients, and the last blue
// index is the victim server.
type DDoSRoles struct {
	// C2 are command-and-control hosts (red space).
	C2 []int
	// Bots are botnet clients (compromised grey hosts plus the
	// remaining red hosts).
	Bots []int
	// Victim is the targeted blue server.
	Victim int
}

// AssignDDoSRoles derives the standard role assignment from zones.
func AssignDDoSRoles(z Zones) (DDoSRoles, error) {
	if !z.Valid() {
		return DDoSRoles{}, fmt.Errorf("patterns: invalid zones %+v", z)
	}
	red0, red1 := z.Indices(ZoneRed)
	grey0, grey1 := z.Indices(ZoneGrey)
	if red1-red0 < 2 {
		return DDoSRoles{}, fmt.Errorf("patterns: DDoS needs ≥2 red hosts, zones have %d", red1-red0)
	}
	if z.BlueEnd == 0 {
		return DDoSRoles{}, fmt.Errorf("patterns: DDoS needs a blue victim")
	}
	nC2 := (red1 - red0) / 2
	if nC2 < 1 {
		nC2 = 1
	}
	roles := DDoSRoles{Victim: z.BlueEnd - 1}
	for i := red0; i < red0+nC2; i++ {
		roles.C2 = append(roles.C2, i)
	}
	for i := red0 + nC2; i < red1; i++ {
		roles.Bots = append(roles.Bots, i)
	}
	for i := grey0; i < grey1; i++ {
		roles.Bots = append(roles.Bots, i)
	}
	if len(roles.Bots) == 0 {
		return DDoSRoles{}, fmt.Errorf("patterns: DDoS role assignment produced no bots")
	}
	return roles, nil
}

// DDoS builds the traffic matrix of one DDoS component using the
// standard role assignment.
func DDoS(z Zones, component DDoSComponent, weight int) (*matrix.Dense, error) {
	roles, err := AssignDDoSRoles(z)
	if err != nil {
		return nil, err
	}
	return DDoSWithRoles(z.N, roles, component, weight)
}

// DDoSWithRoles builds the traffic matrix of one DDoS component for
// an explicit cast.
func DDoSWithRoles(n int, roles DDoSRoles, component DDoSComponent, weight int) (*matrix.Dense, error) {
	if weight < 1 {
		return nil, fmt.Errorf("patterns: weight must be positive, got %d", weight)
	}
	m := matrix.NewSquare(n)
	switch component {
	case DDoSC2:
		// C2 servers coordinate pairwise.
		if len(roles.C2) < 2 {
			return nil, fmt.Errorf("patterns: C2 component needs ≥2 C2 hosts")
		}
		for _, i := range roles.C2 {
			for _, j := range roles.C2 {
				if i != j {
					m.Set(i, j, weight)
				}
			}
		}
	case DDoSBotnet:
		// "The communication from the C2 servers to the individual
		// clients can be represented by identical communications
		// between the C2 nodes and the botnet clients."
		for _, c2 := range roles.C2 {
			for _, bot := range roles.Bots {
				m.Set(c2, bot, weight)
			}
		}
	case DDoSAttack:
		// Every bot floods the victim; the flood is the heaviest
		// traffic in the lesson set.
		for _, bot := range roles.Bots {
			m.Set(bot, roles.Victim, weight*3)
		}
	case DDoSBackscatter:
		// "…followed by the backscatter when the servers reply back
		// to the illegitimate traffic": the transpose of the attack
		// at reply weight.
		for _, bot := range roles.Bots {
			m.Set(roles.Victim, bot, weight)
		}
	default:
		return nil, fmt.Errorf("patterns: unknown DDoS component %d", component)
	}
	return m, nil
}

// DDoSCampaign sums all four components, optionally useful "combined
// together or have background noise added to give a student even more
// of a challenge".
func DDoSCampaign(z Zones, weight int) (*matrix.Dense, error) {
	total := matrix.NewSquare(z.N)
	for _, c := range DDoSComponents {
		m, err := DDoS(z, c, weight)
		if err != nil {
			return nil, err
		}
		total, err = total.AddMatrix(m)
		if err != nil {
			return nil, err
		}
	}
	return total, nil
}
