package patterns

import (
	"fmt"

	"repro/internal/matrix"
)

// Notional attack stages (Fig 7): "First is the planning stage,
// which is done in adversarial space. Second is staging, which takes
// place in greyspace. Third is the infiltration stage, which happens
// at the border between grey and blue space. The final stage is
// lateral movement, which happens inside blue space."

// AttackStage enumerates the four stages.
type AttackStage int

const (
	// StagePlanning is coordination inside red space (Fig 7a).
	StagePlanning AttackStage = iota
	// StageStaging is adversaries provisioning greyspace
	// infrastructure (Fig 7b).
	StageStaging
	// StageInfiltration is greyspace hosts crossing into blue space
	// (Fig 7c).
	StageInfiltration
	// StageLateral is movement between blue hosts (Fig 7d).
	StageLateral
)

// attackStageNames holds display names in stage order.
var attackStageNames = [...]string{"planning", "staging", "infiltration", "lateral movement"}

// String returns the stage's display name.
func (s AttackStage) String() string {
	if s < 0 || int(s) >= len(attackStageNames) {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return attackStageNames[s]
}

// AttackStages lists the stages in lifecycle order.
var AttackStages = []AttackStage{StagePlanning, StageStaging, StageInfiltration, StageLateral}

// Attack builds the traffic matrix of one attack stage on the given
// zones. The weight parameter scales packet counts (1–3 keeps the
// display within the paper's guidance).
func Attack(z Zones, stage AttackStage, weight int) (*matrix.Dense, error) {
	if !z.Valid() {
		return nil, fmt.Errorf("patterns: invalid zones %+v", z)
	}
	if weight < 1 {
		return nil, fmt.Errorf("patterns: weight must be positive, got %d", weight)
	}
	blue0, blue1 := z.Indices(ZoneBlue)
	grey0, grey1 := z.Indices(ZoneGrey)
	red0, red1 := z.Indices(ZoneRed)
	m := matrix.NewSquare(z.N)
	switch stage {
	case StagePlanning:
		// Adversaries coordinate pairwise in red space: a ring of
		// communication among the red hosts.
		if red1-red0 < 2 {
			return nil, fmt.Errorf("patterns: planning needs ≥2 red hosts, zones have %d", red1-red0)
		}
		for i := red0; i < red1; i++ {
			j := i + 1
			if j == red1 {
				j = red0
			}
			m.Set(i, j, weight)
			m.Set(j, i, weight)
		}
	case StageStaging:
		// Each adversary provisions a greyspace host: red → grey
		// fan-out with acknowledgements back.
		if red1 == red0 || grey1 == grey0 {
			return nil, fmt.Errorf("patterns: staging needs red and grey hosts")
		}
		for k, i := 0, red0; i < red1; i, k = i+1, k+1 {
			g := grey0 + k%(grey1-grey0)
			m.Set(i, g, weight+1)
			m.Set(g, i, weight)
		}
	case StageInfiltration:
		// Staged greyspace hosts push into blue space across the
		// border.
		if grey1 == grey0 || blue1 == blue0 {
			return nil, fmt.Errorf("patterns: infiltration needs grey and blue hosts")
		}
		for k, g := 0, grey0; g < grey1; g, k = g+1, k+1 {
			b := blue0 + k%(blue1-blue0)
			m.Set(g, b, weight+1)
			m.Set(b, g, weight)
		}
	case StageLateral:
		// The foothold spreads between blue hosts: a chain from the
		// entry workstation through the rest of blue space.
		if blue1-blue0 < 2 {
			return nil, fmt.Errorf("patterns: lateral movement needs ≥2 blue hosts")
		}
		for i := blue0; i < blue1-1; i++ {
			m.Set(i, i+1, weight+1)
			m.Set(i+1, i, weight)
		}
	default:
		return nil, fmt.Errorf("patterns: unknown attack stage %d", stage)
	}
	return m, nil
}

// AttackCampaign returns the sum of all four stages: the paper's
// suggestion that "they could all be combined together … for a
// student to analyze and determine what is happening in the network."
func AttackCampaign(z Zones, weight int) (*matrix.Dense, error) {
	total := matrix.NewSquare(z.N)
	for _, stage := range AttackStages {
		m, err := Attack(z, stage, weight)
		if err != nil {
			return nil, err
		}
		total, err = total.AddMatrix(m)
		if err != nil {
			return nil, err
		}
	}
	return total, nil
}
