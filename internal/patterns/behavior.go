package patterns

import (
	"repro/internal/matrix"
)

// Behavior classification for the extended netsim catalog: where
// ClassifyTopology, ClassifyAttackStage, and ClassifyDDoS recognize
// the paper's original module shapes, ClassifyBehavior recognizes
// the live-traffic behaviours the concurrent scenario engine adds —
// worm propagation, data exfiltration, flash crowds, and C2
// beaconing — from their aggregate traffic matrices.

// Behavior enumerates the extended-catalog traffic behaviours.
type Behavior int

const (
	// BehaviorUnknown is returned when no behaviour matches.
	BehaviorUnknown Behavior = iota
	// BehaviorWorm is a spreading blue→blue cascade from a red seed.
	BehaviorWorm
	// BehaviorExfiltration is one dominant asymmetric blue→grey
	// link.
	BehaviorExfiltration
	// BehaviorFlashCrowd is heavy reciprocated fan-in on a blue hub.
	BehaviorFlashCrowd
	// BehaviorBeaconing is a light blue→red link with at most a
	// trickle of red→blue tasking.
	BehaviorBeaconing
)

// behaviorNames holds display names indexed by Behavior.
var behaviorNames = [...]string{
	"unknown", "worm propagation", "data exfiltration",
	"flash crowd", "C2 beaconing",
}

// String returns the behaviour's display name.
func (b Behavior) String() string {
	if b < 0 || int(b) >= len(behaviorNames) {
		return "unknown"
	}
	return behaviorNames[b]
}

// Behaviors lists the recognizable behaviours.
var Behaviors = []Behavior{
	BehaviorWorm, BehaviorExfiltration, BehaviorFlashCrowd, BehaviorBeaconing,
}

// ClassifyBehavior returns the extended-catalog behaviour whose
// signature best explains the off-diagonal traffic, with the
// explained packet fraction as confidence. Each behaviour gates on
// the structural feature that separates it from its neighbours:
//
//   - flash crowd needs a blue hub column absorbing traffic from at
//     least SupernodeFanThreshold distinct sources (a worm cascade
//     never concentrates on one column);
//   - worm needs predominantly unreciprocated blue→blue traffic
//     spreading to ≥ 2 distinct blue destinations (a flash crowd's
//     blue→blue traffic all lands on the hub, and benign chatter is
//     answered);
//   - exfiltration needs a dominant blue→grey cell at least 4×
//     heavier than its reverse (a flash crowd's blue→grey replies
//     are lighter than the inbound crowd);
//   - beaconing needs blue→red traffic outweighing any red→blue
//     tasking replies.
func ClassifyBehavior(m *matrix.Dense, z Zones) (Behavior, float64) {
	return ClassifyBehaviorOf(m, z)
}

// ClassifyBehaviorOf is ClassifyBehavior over the read-only accessor
// interface: it visits only stored entries, so a CSR aggregated by
// the concurrent scenario engine classifies in O(nnz·log deg) with
// no dense materialization.
func ClassifyBehaviorOf(m matrix.Matrix, z Zones) (Behavior, float64) {
	if m.Rows() != m.Cols() || m.Rows() != z.N || m.NNZ() == 0 {
		return BehaviorUnknown, 0
	}
	n := m.Rows()
	total := 0
	zonePackets := map[[2]Zone]int{}
	inPackets := make([]int, n) // off-diagonal inbound packets per column
	inFan := make([]int, n)     // distinct off-diagonal sources per column
	blueBlueDsts := map[int]bool{}
	reciprocated := 0                // reciprocated blue→blue packet volume
	bgRow, bgCol, bgVal := -1, -1, 0 // heaviest blue→grey cell
	matrix.EachStored(m, func(i, j, v int) {
		if i == j {
			return
		}
		zi, zj := z.Of(i), z.Of(j)
		total += v
		zonePackets[[2]Zone{zi, zj}] += v
		inPackets[j] += v
		inFan[j]++
		if zi == ZoneBlue && zj == ZoneBlue {
			blueBlueDsts[j] = true
			if m.At(j, i) != 0 {
				reciprocated += v
			}
		}
		if zi == ZoneBlue && zj == ZoneGrey && v > bgVal {
			bgRow, bgCol, bgVal = i, j, v
		}
	})
	if total == 0 {
		return BehaviorUnknown, 0
	}
	score := map[Behavior]float64{}

	// Flash crowd: the busiest qualifying blue hub, scored by the
	// packets it exchanges (crowd in plus replies out).
	hub := -1
	for j := 0; j < n; j++ {
		if z.Of(j) != ZoneBlue || inFan[j] < SupernodeFanThreshold {
			continue
		}
		if hub == -1 || inPackets[j] > inPackets[hub] {
			hub = j
		}
	}
	if hub >= 0 {
		exchanged := inPackets[hub]
		m.Row(hub, func(j, v int) {
			if j != hub {
				exchanged += v
			}
		})
		score[BehaviorFlashCrowd] = float64(exchanged) / float64(total)
	}

	// Worm: spreading blue→blue plus the red→blue seed. The cascade
	// must be predominantly unreciprocated — benign blue chatter and
	// lateral-movement scripts answer back, an infection push does
	// not.
	if len(blueBlueDsts) >= 2 {
		spread := zonePackets[[2]Zone{ZoneBlue, ZoneBlue}] + zonePackets[[2]Zone{ZoneRed, ZoneBlue}]
		if 2*reciprocated <= spread {
			score[BehaviorWorm] = float64(spread) / float64(total)
		}
	}

	// Exfiltration: the dominant blue→grey cell, gated on ≥4×
	// volume asymmetry against its reverse.
	if bgVal > 0 && m.At(bgCol, bgRow) <= bgVal/4 {
		score[BehaviorExfiltration] = float64(bgVal) / float64(total)
	}

	// Beaconing: blue→red with at most symmetric tasking back.
	br := zonePackets[[2]Zone{ZoneBlue, ZoneRed}]
	rb := zonePackets[[2]Zone{ZoneRed, ZoneBlue}]
	if br > 0 && rb <= br {
		score[BehaviorBeaconing] = float64(br+rb) / float64(total)
	}

	best, bestScore := BehaviorUnknown, 0.0
	for _, b := range Behaviors {
		if s := score[b]; s > bestScore {
			best, bestScore = b, s
		}
	}
	return best, bestScore
}
