package patterns

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// Family groups catalog entries by the learning module they belong
// to.
type Family string

// The four module families of Figs 6–10.
const (
	FamilyTopology Family = "traffic topologies"
	FamilyAttack   Family = "notional attack"
	FamilySDD      Family = "security defense deterrence"
	FamilyDDoS     Family = "ddos attack"
	FamilyGraph    Family = "graph theory"
)

// Entry is one figure panel: a named, reproducible traffic pattern
// with its color overlay and the quiz choices its module offers.
type Entry struct {
	// ID is a stable slug, e.g. "fig6a-isolated-links".
	ID string
	// Figure is the paper panel, e.g. "6a".
	Figure string
	// Title is the concept the panel teaches (also the correct quiz
	// answer).
	Title string
	// Family is the module the panel belongs to.
	Family Family
	// Hint points at the explanatory reference the figure caption
	// cites.
	Hint string
	// Build generates the traffic matrix and its color overlay on
	// the standard 10-label axis.
	Build func() (*matrix.Dense, *matrix.Dense, error)
}

// catalog holds every figure panel in paper order.
var catalog = []Entry{
	// ——— Fig 6: basic traffic topologies ———
	{
		ID: "fig6a-isolated-links", Figure: "6a", Title: "isolated links",
		Family: FamilyTopology, Hint: hintScaling,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := IsolatedLinks(StandardZones10.N, 4, 2)
			if err != nil {
				return nil, nil, err
			}
			return m, HighlightColors(m, 1), nil
		},
	},
	{
		ID: "fig6b-single-links", Figure: "6b", Title: "single links",
		Family: FamilyTopology, Hint: hintScaling,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := SingleLinks(StandardZones10.N, 5, 1)
			if err != nil {
				return nil, nil, err
			}
			return m, HighlightColors(m, 1), nil
		},
	},
	{
		ID: "fig6c-internal-supernode", Figure: "6c", Title: "internal supernode",
		Family: FamilyTopology, Hint: hintScaling,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := InternalSupernode(StandardZones10, 2)
			if err != nil {
				return nil, nil, err
			}
			return m, HighlightColors(m, 1), nil
		},
	},
	{
		ID: "fig6d-external-supernode", Figure: "6d", Title: "external supernode",
		Family: FamilyTopology, Hint: hintScaling,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := ExternalSupernode(StandardZones10, 2)
			if err != nil {
				return nil, nil, err
			}
			return m, HighlightColors(m, 2), nil
		},
	},

	// ——— Fig 7: notional attack ———
	attackEntry("7a", StagePlanning),
	attackEntry("7b", StageStaging),
	attackEntry("7c", StageInfiltration),
	attackEntry("7d", StageLateral),

	// ——— Fig 8: security, defense, deterrence ———
	sddEntry("8a", PostureSecurity),
	sddEntry("8b", PostureDefense),
	sddEntry("8c", PostureDeterrence),

	// ——— Fig 9: DDoS ———
	ddosEntry("9a", DDoSC2),
	ddosEntry("9b", DDoSBotnet),
	ddosEntry("9c", DDoSAttack),
	ddosEntry("9d", DDoSBackscatter),

	// ——— Fig 10: graph theory ———
	graphEntry("10a", "star", func() (*matrix.Dense, error) { return Star(10, 0) }),
	graphEntry("10b", "clique", func() (*matrix.Dense, error) { return Clique(10, 10) }),
	graphEntry("10c", "bipartite", func() (*matrix.Dense, error) { return Bipartite(10, 5, 5) }),
	graphEntry("10d", "tree", func() (*matrix.Dense, error) { return Tree(10) }),
	graphEntry("10e", "ring", func() (*matrix.Dense, error) { return Ring(10) }),
	graphEntry("10f", "mesh", func() (*matrix.Dense, error) { return Mesh(10, 2, 5) }),
	graphEntry("10g", "toroidal mesh", func() (*matrix.Dense, error) { return ToroidalMesh(10, 2, 5) }),
	graphEntry("10h", "self loop", func() (*matrix.Dense, error) { return SelfLoops(10, 6) }),
	graphEntry("10i", "triangle", func() (*matrix.Dense, error) { return Triangle(10, 0, 1, 2) }),
}

// External references the figure captions point students at.
const (
	hintScaling = "Kepner et al., 'Multi-temporal analysis and scaling relations of 100,000,000,000 network packets', HPEC 2020"
	hintZeroBot = "Kepner et al., 'Zero Botnets: An observe-pursue-counter approach', Belfer Center Reports 2021"
	hintTEDx    = "Kepner, 'Beyond Zero Botnets: Web3 Enabled Observe-Pursue-Counter Approach', TEDxBoston 2022"
)

// attackEntry builds the catalog entry for one attack stage.
func attackEntry(figure string, stage AttackStage) Entry {
	return Entry{
		ID:     fmt.Sprintf("fig%s-%s", figure, slugify(stage.String())),
		Figure: figure, Title: stage.String(), Family: FamilyAttack,
		Hint: hintTEDx + "; " + hintZeroBot,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := Attack(StandardZones10, stage, 2)
			if err != nil {
				return nil, nil, err
			}
			return m, StandardZones10.ZoneColors(m), nil
		},
	}
}

// sddEntry builds the catalog entry for one protection posture.
func sddEntry(figure string, posture Posture) Entry {
	return Entry{
		ID:     fmt.Sprintf("fig%s-%s", figure, slugify(posture.String())),
		Figure: figure, Title: posture.String(), Family: FamilySDD,
		Hint: hintTEDx + "; " + hintZeroBot,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := SDD(StandardZones10, posture, 2)
			if err != nil {
				return nil, nil, err
			}
			return m, StandardZones10.ZoneColors(m), nil
		},
	}
}

// ddosEntry builds the catalog entry for one DDoS component.
func ddosEntry(figure string, component DDoSComponent) Entry {
	return Entry{
		ID:     fmt.Sprintf("fig%s-%s", figure, slugify(component.String())),
		Figure: figure, Title: component.String(), Family: FamilyDDoS,
		Hint: hintZeroBot,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := DDoS(StandardZones10, component, 2)
			if err != nil {
				return nil, nil, err
			}
			return m, StandardZones10.ZoneColors(m), nil
		},
	}
}

// graphEntry builds the catalog entry for one graph-theory shape.
func graphEntry(figure, title string, build func() (*matrix.Dense, error)) Entry {
	return Entry{
		ID:     fmt.Sprintf("fig%s-%s", figure, slugify(title)),
		Figure: figure, Title: title, Family: FamilyGraph,
		Build: func() (*matrix.Dense, *matrix.Dense, error) {
			m, err := build()
			if err != nil {
				return nil, nil, err
			}
			return m, HighlightColors(m, 1), nil
		},
	}
}

// slugify lowercases and hyphenates a display name for use in IDs.
func slugify(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ', r == '-', r == '_':
			out = append(out, '-')
		}
	}
	return string(out)
}

// Catalog returns every figure panel in paper order.
func Catalog() []Entry {
	out := make([]Entry, len(catalog))
	copy(out, catalog)
	return out
}

// ByFamily returns the catalog entries of one family, in paper
// order.
func ByFamily(f Family) []Entry {
	var out []Entry
	for _, e := range catalog {
		if e.Family == f {
			out = append(out, e)
		}
	}
	return out
}

// Lookup finds a catalog entry by ID.
func Lookup(id string) (Entry, bool) {
	for _, e := range catalog {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// Families returns the distinct families in paper order.
func Families() []Family {
	seen := make(map[Family]bool)
	var out []Family
	for _, e := range catalog {
		if !seen[e.Family] {
			seen[e.Family] = true
			out = append(out, e.Family)
		}
	}
	return out
}

// FamilyTitles returns the sorted distinct titles within a family:
// the answer pool its quiz questions draw distractors from.
func FamilyTitles(f Family) []string {
	var titles []string
	for _, e := range ByFamily(f) {
		titles = append(titles, e.Title)
	}
	sort.Strings(titles)
	return titles
}
