package patterns

import (
	"testing"

	"repro/internal/matrix"
)

// Hand-built matrices on the standard 10-host zones (0–3 blue, 4–5
// grey, 6–9 red), mirroring the shapes the netsim catalog draws.

func TestClassifyBehaviorWorm(t *testing.T) {
	m := matrix.NewSquare(10)
	m.Set(6, 0, 3) // red seed infects WS1
	m.Set(0, 1, 3) // cascade doubles through blue space
	m.Set(0, 2, 2)
	m.Set(1, 3, 3)
	got, conf := ClassifyBehavior(m, StandardZones10)
	if got != BehaviorWorm {
		t.Fatalf("worm matrix classified as %v (%.2f)", got, conf)
	}
	if conf != 1.0 {
		t.Errorf("pure worm confidence = %.2f, want 1.0", conf)
	}
}

func TestClassifyBehaviorExfiltration(t *testing.T) {
	m := matrix.NewSquare(10)
	m.Set(0, 5, 200) // WS1 streams to EXT2
	m.Set(5, 0, 9)   // sparse acks back
	got, conf := ClassifyBehavior(m, StandardZones10)
	if got != BehaviorExfiltration {
		t.Fatalf("exfil matrix classified as %v (%.2f)", got, conf)
	}
	if conf < 0.9 {
		t.Errorf("exfil confidence = %.2f, want ≥ 0.9", conf)
	}
	// Symmetric volume is not exfiltration: without the 4× skew the
	// dominant cell no longer qualifies.
	m.Set(5, 0, 150)
	if got, _ := ClassifyBehavior(m, StandardZones10); got == BehaviorExfiltration {
		t.Error("symmetric blue→grey link still classified as exfiltration")
	}
}

func TestClassifyBehaviorFlashCrowd(t *testing.T) {
	m := matrix.NewSquare(10)
	for _, client := range []int{0, 1, 2, 4, 5} { // workstations and externals
		m.Set(client, 3, 8) // pile onto SRV1
		m.Set(3, client, 2) // light replies
	}
	got, conf := ClassifyBehavior(m, StandardZones10)
	if got != BehaviorFlashCrowd {
		t.Fatalf("flash-crowd matrix classified as %v (%.2f)", got, conf)
	}
	if conf != 1.0 {
		t.Errorf("pure flash-crowd confidence = %.2f, want 1.0", conf)
	}
}

func TestClassifyBehaviorBeaconing(t *testing.T) {
	m := matrix.NewSquare(10)
	m.Set(2, 6, 16) // WS3 phones home to ADV1
	m.Set(6, 2, 3)  // occasional tasking reply
	got, conf := ClassifyBehavior(m, StandardZones10)
	if got != BehaviorBeaconing {
		t.Fatalf("beacon matrix classified as %v (%.2f)", got, conf)
	}
	if conf != 1.0 {
		t.Errorf("pure beacon confidence = %.2f, want 1.0", conf)
	}
}

func TestClassifyBehaviorRejectsDegenerate(t *testing.T) {
	empty := matrix.NewSquare(10)
	if got, conf := ClassifyBehavior(empty, StandardZones10); got != BehaviorUnknown || conf != 0 {
		t.Errorf("empty matrix → %v (%.2f), want unknown/0", got, conf)
	}
	// Diagonal-only traffic has no off-diagonal flows to explain.
	diag := matrix.NewSquare(10)
	diag.Set(1, 1, 5)
	if got, _ := ClassifyBehavior(diag, StandardZones10); got != BehaviorUnknown {
		t.Errorf("diagonal-only matrix → %v, want unknown", got)
	}
	// Size mismatch with the zones.
	small := matrix.NewSquare(4)
	small.Set(0, 1, 1)
	if got, _ := ClassifyBehavior(small, StandardZones10); got != BehaviorUnknown {
		t.Errorf("mismatched matrix → %v, want unknown", got)
	}
}

func TestBehaviorNames(t *testing.T) {
	want := map[Behavior]string{
		BehaviorUnknown:      "unknown",
		BehaviorWorm:         "worm propagation",
		BehaviorExfiltration: "data exfiltration",
		BehaviorFlashCrowd:   "flash crowd",
		BehaviorBeaconing:    "C2 beaconing",
		Behavior(99):         "unknown",
	}
	for b, name := range want {
		if b.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(b), b.String(), name)
		}
	}
}
