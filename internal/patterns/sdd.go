package patterns

import (
	"fmt"

	"repro/internal/matrix"
)

// Security, defense, and deterrence (Fig 8): "A key concept in the
// protection of any domain is the distinction between (walls-in)
// security, (walls-out) defense, and deterrence."

// Posture enumerates the three protection concepts.
type Posture int

const (
	// PostureSecurity is walls-in: traffic stays inside blue space,
	// "communicating with their own systems and ensuring no
	// adversarial activity" (Fig 8a).
	PostureSecurity Posture = iota
	// PostureDefense is walls-out: observing greyspace "to identify
	// threats to their network before they have the chance to enter"
	// (Fig 8b).
	PostureDefense
	// PostureDeterrence is "credible activity in adversary space
	// which arose as a response to unacceptable actions" (Fig 8c).
	PostureDeterrence
)

// postureNames holds display names in posture order.
var postureNames = [...]string{"security", "defense", "deterrence"}

// String returns the posture's display name.
func (p Posture) String() string {
	if p < 0 || int(p) >= len(postureNames) {
		return fmt.Sprintf("posture(%d)", int(p))
	}
	return postureNames[p]
}

// Postures lists the three concepts in the paper's order.
var Postures = []Posture{PostureSecurity, PostureDefense, PostureDeterrence}

// SDD builds the traffic matrix for one protection posture on the
// given zones.
func SDD(z Zones, posture Posture, weight int) (*matrix.Dense, error) {
	if !z.Valid() {
		return nil, fmt.Errorf("patterns: invalid zones %+v", z)
	}
	if weight < 1 {
		return nil, fmt.Errorf("patterns: weight must be positive, got %d", weight)
	}
	blue0, blue1 := z.Indices(ZoneBlue)
	grey0, grey1 := z.Indices(ZoneGrey)
	red0, red1 := z.Indices(ZoneRed)
	m := matrix.NewSquare(z.N)
	switch posture {
	case PostureSecurity:
		// Every blue host reports to the blue server (the last blue
		// index) and the server responds: monitoring entirely inside
		// the walls.
		if blue1-blue0 < 2 {
			return nil, fmt.Errorf("patterns: security needs ≥2 blue hosts")
		}
		srv := blue1 - 1
		for i := blue0; i < srv; i++ {
			m.Set(i, srv, weight)
			m.Set(srv, i, weight)
		}
	case PostureDefense:
		// Blue sensors reach out to greyspace observatories and the
		// observatories report back: stepping outside the network to
		// see threats coming.
		if grey1 == grey0 || blue1 == blue0 {
			return nil, fmt.Errorf("patterns: defense needs grey and blue hosts")
		}
		for k, g := 0, grey0; g < grey1; g, k = g+1, k+1 {
			b := blue0 + k%(blue1-blue0)
			m.Set(b, g, weight)
			m.Set(g, b, weight+1)
		}
	case PostureDeterrence:
		// Credible presence in adversary space: blue hosts touch
		// red infrastructure, and red space reacts internally.
		if red1 == red0 || blue1 == blue0 {
			return nil, fmt.Errorf("patterns: deterrence needs red and blue hosts")
		}
		for k, r := 0, red0; r < red1; r, k = r+1, k+1 {
			b := blue0 + k%(blue1-blue0)
			m.Set(b, r, weight)
		}
		if red1-red0 >= 2 {
			m.Set(red0, red0+1, weight)
			m.Set(red0+1, red0, weight)
		}
	default:
		return nil, fmt.Errorf("patterns: unknown posture %d", posture)
	}
	return m, nil
}
