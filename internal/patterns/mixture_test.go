package patterns

import (
	"reflect"
	"testing"

	"repro/internal/matrix"
)

// mixtureLabelsOf projects the ranked components onto their labels.
func mixtureLabelsOf(components []MixtureComponent) []string {
	out := make([]string, len(components))
	for i, c := range components {
		out[i] = c.Label
	}
	return out
}

// hasComponent reports whether the label appears in the mixture.
func hasComponent(components []MixtureComponent, label string) bool {
	for _, c := range components {
		if c.Label == label {
			return true
		}
	}
	return false
}

func TestClassifyMixturePureDDoSCampaign(t *testing.T) {
	m, err := DDoSCampaign(StandardZones10, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := ClassifyMixture(m, StandardZones10)
	if len(got) == 0 || got[0].Label != "ddos" {
		t.Fatalf("DDoS campaign classified as %v, want ddos dominant", got)
	}
}

// TestClassifyMixtureLayeredCampaign hand-builds a mixture the way an
// educator would: the paper's DDoS campaign with an unreciprocated
// scan row layered on top. Both layers must be reported.
func TestClassifyMixtureLayeredCampaign(t *testing.T) {
	m, err := DDoSCampaign(StandardZones10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ADV1 (index 6) probes every blue host once; the victim's
	// backscatter never reaches it, so the row stays unreciprocated.
	for j := 0; j < StandardZones10.BlueEnd; j++ {
		if m.At(6, j) == 0 && m.At(j, 6) == 0 {
			m.Set(6, j, 1)
		}
	}
	got := ClassifyMixture(m, StandardZones10)
	if !hasComponent(got, "ddos") || !hasComponent(got, "scan") {
		t.Fatalf("layered campaign classified as %v, want ddos and scan", got)
	}
	if got[0].Label != "ddos" {
		t.Errorf("dominant component = %v, want ddos (the flood carries the volume)", got[0])
	}
}

// TestClassifyMixtureBeaconUnderChatter: a light periodic blue→red
// carrier must survive balanced chatter thanks to cell-fraction
// scoring.
func TestClassifyMixtureBeaconUnderChatter(t *testing.T) {
	m := matrix.NewSquare(10)
	// Balanced workstation↔server chatter.
	for _, ws := range []int{0, 1, 2} {
		m.Set(ws, 3, 40)
		m.Set(3, ws, 20)
	}
	// The beacon: WS3 (index 2) phones ADV1 (index 6), light, with a
	// lighter tasking reply.
	m.Set(2, 6, 16)
	m.Set(6, 2, 3)
	got := ClassifyMixture(m, StandardZones10)
	if !hasComponent(got, "background") || !hasComponent(got, "beacon") {
		t.Fatalf("mixture = %v, want background and beacon", got)
	}
	if got[0].Label != "background" {
		t.Errorf("dominant = %v, want background", got[0])
	}
}

// TestClassifyMixtureSeparatesFloodFromCrowd: the same fan-in shape
// reads as ddos from non-blue sources and flashcrowd from a
// blue-majority crowd.
func TestClassifyMixtureSeparatesFloodFromCrowd(t *testing.T) {
	flood := matrix.NewSquare(10)
	for _, bot := range []int{4, 5, 7, 8, 9} {
		flood.Set(bot, 3, 60)
		flood.Set(3, bot, 2) // backscatter
	}
	got := ClassifyMixture(flood, StandardZones10)
	if len(got) == 0 || got[0].Label != "ddos" {
		t.Fatalf("flood classified as %v, want ddos dominant", got)
	}
	if hasComponent(got, "flashcrowd") {
		t.Errorf("non-blue flood also read as flashcrowd: %v", got)
	}

	crowd := matrix.NewSquare(10)
	for _, client := range []int{0, 1, 2, 4, 5} {
		crowd.Set(client, 3, 60)
		crowd.Set(3, client, 4) // acknowledgements
	}
	got = ClassifyMixture(crowd, StandardZones10)
	if len(got) == 0 || got[0].Label != "flashcrowd" {
		t.Fatalf("crowd classified as %v, want flashcrowd dominant", got)
	}
	if hasComponent(got, "ddos") {
		t.Errorf("blue-majority crowd also read as ddos: %v", got)
	}
}

// TestClassifyMixtureExfilNotBackground: a heavy asymmetric
// blue→grey link with acknowledgements is exfiltration, not chatter.
func TestClassifyMixtureExfilNotBackground(t *testing.T) {
	m := matrix.NewSquare(10)
	m.Set(0, 5, 200)
	m.Set(5, 0, 10) // sparse acks: far below the balance ratio
	got := ClassifyMixture(m, StandardZones10)
	if len(got) == 0 || got[0].Label != "exfil" {
		t.Fatalf("classified as %v, want exfil dominant", got)
	}
	if hasComponent(got, "background") {
		t.Errorf("asymmetric exfil also read as background: %v", got)
	}
}

// TestClassifyMixtureOfDenseCSRParity: identical readings through
// both representations of the accessor interface.
func TestClassifyMixtureOfDenseCSRParity(t *testing.T) {
	m, err := DDoSCampaign(StandardZones10, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 3, 12)
	m.Set(3, 0, 8)
	csr := matrix.FromDense(m).ToCSR()
	dense := ClassifyMixtureOf(m, StandardZones10)
	sparse := ClassifyMixtureOf(csr, StandardZones10)
	if !reflect.DeepEqual(dense, sparse) {
		t.Errorf("Dense %v and CSR %v mixtures differ", dense, sparse)
	}
}

func TestClassifyMixtureDegenerateInputs(t *testing.T) {
	if got := ClassifyMixture(matrix.NewSquare(10), StandardZones10); len(got) != 0 {
		t.Errorf("empty matrix produced components %v", got)
	}
	if got := ClassifyMixture(matrix.NewSquare(4), StandardZones10); len(got) != 0 {
		t.Errorf("zone-mismatched matrix produced components %v", got)
	}
	diag := matrix.NewSquare(10)
	diag.Set(2, 2, 9)
	if got := ClassifyMixture(diag, StandardZones10); len(got) != 0 {
		t.Errorf("diagonal-only matrix produced components %v", got)
	}
}
