package patterns

import (
	"fmt"

	"repro/internal/matrix"
)

// Graph-theory patterns (Fig 10). "Since the traffic matrix is
// simply a matrix filled with connections between two points it can
// represent different graphs." All generators take the matrix size n
// and produce packet weight 1 per edge; undirected graphs are stored
// symmetrically (an edge appears in both directions), matching how
// the figures display them.

// Star returns a star graph: vertex center linked bidirectionally to
// every other vertex (Fig 10a uses center 0 on a 10×10 matrix).
func Star(n, center int) (*matrix.Dense, error) {
	if center < 0 || center >= n {
		return nil, fmt.Errorf("patterns: star center %d out of range [0,%d)", center, n)
	}
	m := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		if i == center {
			continue
		}
		m.Set(center, i, 1)
		m.Set(i, center, 1)
	}
	return m, nil
}

// Clique returns a complete graph among the first k of n vertices
// (Fig 10b uses k=n=10: every pair communicates).
func Clique(n, k int) (*matrix.Dense, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("patterns: clique size %d out of range [2,%d]", k, n)
	}
	m := matrix.NewSquare(n)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j {
				m.Set(i, j, 1)
			}
		}
	}
	return m, nil
}

// Bipartite returns a complete bipartite graph between the first a
// vertices and the next b vertices (Fig 10c uses K₅,₅ on 10
// vertices).
func Bipartite(n, a, b int) (*matrix.Dense, error) {
	if a < 1 || b < 1 || a+b > n {
		return nil, fmt.Errorf("patterns: bipartite parts %d+%d exceed %d vertices", a, b, n)
	}
	m := matrix.NewSquare(n)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			m.Set(i, j, 1)
			m.Set(j, i, 1)
		}
	}
	return m, nil
}

// Tree returns a complete binary tree over all n vertices in heap
// order: vertex i links to children 2i+1 and 2i+2 (Fig 10d).
func Tree(n int) (*matrix.Dense, error) {
	if n < 2 {
		return nil, fmt.Errorf("patterns: tree needs at least 2 vertices, got %d", n)
	}
	m := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < n {
				m.Set(i, child, 1)
				m.Set(child, i, 1)
			}
		}
	}
	return m, nil
}

// Ring returns a cycle over all n vertices: i links to (i+1) mod n
// (Fig 10e).
func Ring(n int) (*matrix.Dense, error) {
	if n < 3 {
		return nil, fmt.Errorf("patterns: ring needs at least 3 vertices, got %d", n)
	}
	m := matrix.NewSquare(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		m.Set(i, j, 1)
		m.Set(j, i, 1)
	}
	return m, nil
}

// meshEdges sets the edges of a rows×cols grid over vertices
// numbered row-major, optionally wrapping both dimensions (torus).
func meshEdges(m *matrix.Dense, rows, cols int, wrap bool) {
	id := func(r, c int) int { return r*cols + c }
	link := func(a, b int) {
		if a != b {
			m.Set(a, b, 1)
			m.Set(b, a, 1)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				link(id(r, c), id(r, c+1))
			} else if wrap && cols > 2 {
				link(id(r, c), id(r, 0))
			}
			if r+1 < rows {
				link(id(r, c), id(r+1, c))
			} else if wrap && rows > 2 {
				link(id(r, c), id(0, c))
			}
		}
	}
}

// Mesh returns a rows×cols grid graph over rows*cols ≤ n vertices
// (Fig 10f uses a 2×5 grid on the 10×10 matrix).
func Mesh(n, rows, cols int) (*matrix.Dense, error) {
	if rows < 2 || cols < 2 || rows*cols > n {
		return nil, fmt.Errorf("patterns: %dx%d mesh does not fit %d vertices", rows, cols, n)
	}
	m := matrix.NewSquare(n)
	meshEdges(m, rows, cols, false)
	return m, nil
}

// ToroidalMesh returns a rows×cols grid with wraparound links in any
// dimension of length > 2 (wrapping a length-2 dimension would
// duplicate an existing edge). Fig 10g uses 2×5.
func ToroidalMesh(n, rows, cols int) (*matrix.Dense, error) {
	if rows < 2 || cols < 2 || rows*cols > n {
		return nil, fmt.Errorf("patterns: %dx%d torus does not fit %d vertices", rows, cols, n)
	}
	m := matrix.NewSquare(n)
	meshEdges(m, rows, cols, true)
	return m, nil
}

// SelfLoops returns a matrix whose only traffic is hosts talking to
// themselves: diagonal entries for the first k vertices (Fig 10h).
func SelfLoops(n, k int) (*matrix.Dense, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("patterns: self-loop count %d out of range [1,%d]", k, n)
	}
	m := matrix.NewSquare(n)
	for i := 0; i < k; i++ {
		m.Set(i, i, 1)
	}
	return m, nil
}

// Triangle returns a single 3-cycle among vertices a, b, c
// (Fig 10i).
func Triangle(n, a, b, c int) (*matrix.Dense, error) {
	for _, v := range []int{a, b, c} {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("patterns: triangle vertex %d out of range [0,%d)", v, n)
		}
	}
	if a == b || b == c || a == c {
		return nil, fmt.Errorf("patterns: triangle vertices %d,%d,%d must be distinct", a, b, c)
	}
	m := matrix.NewSquare(n)
	for _, e := range [][2]int{{a, b}, {b, c}, {c, a}} {
		m.Set(e[0], e[1], 1)
		m.Set(e[1], e[0], 1)
	}
	return m, nil
}
