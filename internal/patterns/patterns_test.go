package patterns

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestZonesOf(t *testing.T) {
	z := StandardZones10
	wants := map[int]Zone{0: ZoneBlue, 3: ZoneBlue, 4: ZoneGrey, 5: ZoneGrey, 6: ZoneRed, 9: ZoneRed}
	for i, want := range wants {
		if got := z.Of(i); got != want {
			t.Errorf("Of(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestZonesIndicesAndCount(t *testing.T) {
	z := StandardZones10
	if s, e := z.Indices(ZoneBlue); s != 0 || e != 4 {
		t.Errorf("blue = [%d,%d)", s, e)
	}
	if s, e := z.Indices(ZoneGrey); s != 4 || e != 6 {
		t.Errorf("grey = [%d,%d)", s, e)
	}
	if s, e := z.Indices(ZoneRed); s != 6 || e != 10 {
		t.Errorf("red = [%d,%d)", s, e)
	}
	if z.Count(ZoneBlue) != 4 || z.Count(ZoneGrey) != 2 || z.Count(ZoneRed) != 4 {
		t.Error("zone counts wrong")
	}
}

func TestZonesValid(t *testing.T) {
	good := Zones{N: 5, BlueEnd: 2, GreyEnd: 3}
	if !good.Valid() {
		t.Error("valid zones rejected")
	}
	for _, bad := range []Zones{
		{N: 0, BlueEnd: 0, GreyEnd: 0},
		{N: 5, BlueEnd: 3, GreyEnd: 2},
		{N: 5, BlueEnd: 2, GreyEnd: 9},
		{N: 5, BlueEnd: -1, GreyEnd: 2},
	} {
		if bad.Valid() {
			t.Errorf("invalid zones accepted: %+v", bad)
		}
	}
}

func TestColorMatrixMatchesPaperTemplate(t *testing.T) {
	c := StandardZones10.ColorMatrix()
	// Paper's color listing: blue rows 0–3 paint red in columns
	// 6–9; red rows 6–9 paint blue in columns 0–3; all else grey.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := 0
			switch {
			case i < 4 && j >= 6:
				want = 2
			case i >= 6 && j < 4:
				want = 1
			}
			if got := c.At(i, j); got != want {
				t.Fatalf("ColorMatrix(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestFlowCounts(t *testing.T) {
	m := matrix.NewSquare(10)
	m.Set(0, 9, 1) // blue→red
	m.Set(9, 0, 1) // red→blue
	m.Set(4, 5, 1) // grey→grey
	counts := StandardZones10.FlowCounts(m)
	if counts[[2]Zone{ZoneBlue, ZoneRed}] != 1 ||
		counts[[2]Zone{ZoneRed, ZoneBlue}] != 1 ||
		counts[[2]Zone{ZoneGrey, ZoneGrey}] != 1 {
		t.Errorf("FlowCounts = %v", counts)
	}
}

func TestHighlightColors(t *testing.T) {
	m := matrix.NewSquare(3)
	m.Set(0, 1, 5)
	c := HighlightColors(m, 2)
	if c.At(0, 1) != 2 || c.At(1, 0) != 0 {
		t.Error("HighlightColors wrong")
	}
}

func TestZoneColors(t *testing.T) {
	m := matrix.NewSquare(10)
	m.Set(0, 1, 1) // blue→blue
	m.Set(0, 9, 1) // blue→red
	m.Set(4, 5, 1) // grey→grey
	c := StandardZones10.ZoneColors(m)
	if c.At(0, 1) != 1 || c.At(0, 9) != 2 || c.At(4, 5) != 0 {
		t.Errorf("ZoneColors: %d %d %d", c.At(0, 1), c.At(0, 9), c.At(4, 5))
	}
}

func TestGeneratorParameterValidation(t *testing.T) {
	cases := []struct {
		name string
		call func() error
	}{
		{"star bad center", func() error { _, err := Star(5, 9); return err }},
		{"clique too big", func() error { _, err := Clique(4, 5); return err }},
		{"clique too small", func() error { _, err := Clique(4, 1); return err }},
		{"bipartite overflow", func() error { _, err := Bipartite(4, 3, 3); return err }},
		{"tree tiny", func() error { _, err := Tree(1); return err }},
		{"ring tiny", func() error { _, err := Ring(2); return err }},
		{"mesh overflow", func() error { _, err := Mesh(4, 3, 3); return err }},
		{"torus overflow", func() error { _, err := ToroidalMesh(4, 3, 3); return err }},
		{"selfloop zero", func() error { _, err := SelfLoops(4, 0); return err }},
		{"triangle dup", func() error { _, err := Triangle(5, 1, 1, 2); return err }},
		{"triangle range", func() error { _, err := Triangle(3, 0, 1, 7); return err }},
		{"isolated overflow", func() error { _, err := IsolatedLinks(4, 3, 1); return err }},
		{"isolated zero weight", func() error { _, err := IsolatedLinks(4, 1, 0); return err }},
		{"single overflow", func() error { _, err := SingleLinks(4, 3, 1); return err }},
		{"supernode bad hub", func() error { _, err := Supernode(4, 9, 0, 3, 1); return err }},
		{"supernode bad range", func() error { _, err := Supernode(4, 0, 3, 2, 1); return err }},
		{"supernode no peers", func() error { _, err := Supernode(4, 0, 0, 1, 1); return err }},
		{"attack bad stage", func() error { _, err := Attack(StandardZones10, AttackStage(9), 1); return err }},
		{"attack zero weight", func() error { _, err := Attack(StandardZones10, StagePlanning, 0); return err }},
		{"sdd bad posture", func() error { _, err := SDD(StandardZones10, Posture(9), 1); return err }},
		{"ddos bad component", func() error { _, err := DDoS(StandardZones10, DDoSComponent(9), 1); return err }},
	}
	for _, c := range cases {
		if c.call() == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestGraphGeneratorDegrees(t *testing.T) {
	star, _ := Star(10, 0)
	p := matrix.NewProfile(star)
	if p.OutFan[0] != 9 || p.InFan[0] != 9 {
		t.Error("star hub fan wrong")
	}
	ring, _ := Ring(10)
	rp := matrix.NewProfile(ring)
	for i, f := range rp.OutFan {
		if f != 2 {
			t.Errorf("ring vertex %d fan %d", i, f)
		}
	}
	clique, _ := Clique(10, 10)
	if clique.NNZ() != 90 {
		t.Errorf("K10 edges = %d, want 90", clique.NNZ())
	}
	tree, _ := Tree(10)
	// Undirected tree on 10 vertices: 9 edges stored twice.
	if tree.NNZ() != 18 {
		t.Errorf("tree NNZ = %d, want 18", tree.NNZ())
	}
	bip, _ := Bipartite(10, 5, 5)
	if bip.NNZ() != 50 {
		t.Errorf("K5,5 NNZ = %d, want 50", bip.NNZ())
	}
	loops, _ := SelfLoops(10, 6)
	if loops.Trace() != 6 || loops.NNZ() != 6 {
		t.Error("self loops wrong")
	}
}

func TestMeshTorusStructure(t *testing.T) {
	mesh, _ := Mesh(10, 2, 5)
	mp := matrix.NewProfile(mesh)
	// 2×5 grid: 4 horizontal edges per row ×2 + 5 vertical = 13
	// undirected edges = 26 stored.
	if mesh.NNZ() != 26 {
		t.Errorf("mesh NNZ = %d, want 26", mesh.NNZ())
	}
	if !mp.Symmetric {
		t.Error("mesh not symmetric")
	}
	torus, _ := ToroidalMesh(10, 2, 5)
	// Torus adds column wraparound (2 more) but not row wrap
	// (length-2 dimension would duplicate): 15 undirected edges.
	if torus.NNZ() != 30 {
		t.Errorf("torus NNZ = %d, want 30", torus.NNZ())
	}
}

func TestAttackStagesConfinedToZones(t *testing.T) {
	wantFlows := map[AttackStage]map[[2]Zone]bool{
		StagePlanning:     {{ZoneRed, ZoneRed}: true},
		StageStaging:      {{ZoneRed, ZoneGrey}: true, {ZoneGrey, ZoneRed}: true},
		StageInfiltration: {{ZoneGrey, ZoneBlue}: true, {ZoneBlue, ZoneGrey}: true},
		StageLateral:      {{ZoneBlue, ZoneBlue}: true},
	}
	for stage, allowed := range wantFlows {
		m, err := Attack(StandardZones10, stage, 2)
		if err != nil {
			t.Fatal(err)
		}
		for flow, count := range StandardZones10.FlowCounts(m) {
			if count > 0 && !allowed[flow] {
				t.Errorf("stage %v has out-of-zone flow %v→%v", stage, flow[0], flow[1])
			}
		}
	}
}

func TestCampaignClassifiedAsDominantStage(t *testing.T) {
	campaign, err := AttackCampaign(StandardZones10, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, conf := ClassifyAttackStage(campaign, StandardZones10)
	if conf >= 1.0 || conf <= 0 {
		t.Errorf("campaign confidence = %f, want partial", conf)
	}
}

func TestDDoSRolesAssignment(t *testing.T) {
	roles, err := AssignDDoSRoles(StandardZones10)
	if err != nil {
		t.Fatal(err)
	}
	if len(roles.C2) != 2 || len(roles.Bots) != 4 {
		t.Errorf("roles = %+v", roles)
	}
	if roles.Victim != 3 {
		t.Errorf("victim = %d, want 3 (SRV1)", roles.Victim)
	}
}

func TestDDoSBotnetIdenticalWeights(t *testing.T) {
	m, err := DDoS(StandardZones10, DDoSBotnet, 2)
	if err != nil {
		t.Fatal(err)
	}
	// "identical communications between the C2 nodes and the botnet
	// clients": every non-zero cell has the same weight.
	weight := 0
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if v := m.At(i, j); v != 0 {
				if weight == 0 {
					weight = v
				} else if v != weight {
					t.Fatalf("botnet weights differ: %d vs %d", weight, v)
				}
			}
		}
	}
}

func TestDDoSBackscatterIsAttackTranspose(t *testing.T) {
	attack, err := DDoS(StandardZones10, DDoSAttack, 2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DDoS(StandardZones10, DDoSBackscatter, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !attack.Transpose().Pattern().Equal(back.Pattern()) {
		t.Error("backscatter does not retrace the attack edges")
	}
}

func TestComposeAndNoise(t *testing.T) {
	a, _ := Attack(StandardZones10, StagePlanning, 1)
	b, _ := Attack(StandardZones10, StageLateral, 1)
	combined, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if combined.Sum() != a.Sum()+b.Sum() {
		t.Error("compose lost packets")
	}
	if _, err := Compose(); err == nil {
		t.Error("empty compose accepted")
	}

	rng := rand.New(rand.NewSource(3))
	noisy, err := AddNoise(combined, rng, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.NNZ() != combined.NNZ()+10 {
		t.Errorf("noise added %d cells, want 10", noisy.NNZ()-combined.NNZ())
	}
	// Pattern cells must be untouched.
	for i := 0; i < combined.Rows(); i++ {
		for j := 0; j < combined.Cols(); j++ {
			if v := combined.At(i, j); v != 0 && noisy.At(i, j) != v {
				t.Errorf("noise altered pattern cell (%d,%d)", i, j)
			}
		}
	}
	if _, err := AddNoise(combined, nil, 1, 1); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestAddNoiseCapsAtEmptyCells(t *testing.T) {
	m := matrix.NewSquare(2)
	m.Set(0, 1, 1)
	rng := rand.New(rand.NewSource(1))
	// Only 1 empty off-diagonal cell remains (1,0).
	noisy, err := AddNoise(m, rng, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", noisy.NNZ())
	}
}

func TestClassifiersRobustOnRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		m := matrix.NewSquare(10)
		for k := 0; k < rng.Intn(30); k++ {
			m.Set(rng.Intn(10), rng.Intn(10), rng.Intn(5))
		}
		// None of these may panic, and confidences stay in [0,1].
		ClassifyGraph(m)
		ClassifyTopology(m, StandardZones10)
		if _, conf := ClassifyAttackStage(m, StandardZones10); conf < 0 || conf > 1 {
			t.Fatalf("attack confidence %f out of range", conf)
		}
		if _, conf := ClassifyPosture(m, StandardZones10); conf < 0 || conf > 1 {
			t.Fatalf("posture confidence %f out of range", conf)
		}
	}
}

func TestClassifyGraphEmptyAndNonSquare(t *testing.T) {
	if got := ClassifyGraph(matrix.NewSquare(5)); got != GraphUnknown {
		t.Errorf("empty matrix classified as %v", got)
	}
	if got := ClassifyGraph(matrix.NewDense(2, 3)); got != GraphUnknown {
		t.Errorf("non-square classified as %v", got)
	}
}

func TestClassifyGraphScaleInvariance(t *testing.T) {
	// The classifier reads structure, not weights.
	for _, e := range ByFamily(FamilyGraph) {
		m, _, err := e.Build()
		if err != nil {
			t.Fatal(err)
		}
		heavy := m.Clone()
		heavy.Scale(7)
		if got, want := ClassifyGraph(heavy), ClassifyGraph(m); got != want {
			t.Errorf("%s: scaling changed classification %v → %v", e.ID, want, got)
		}
	}
}

func TestClassifyGraphAtOtherSizes(t *testing.T) {
	cases := []struct {
		build func() (*matrix.Dense, error)
		want  GraphKind
	}{
		{func() (*matrix.Dense, error) { return Star(6, 2) }, GraphStar},
		{func() (*matrix.Dense, error) { return Ring(5) }, GraphRing},
		{func() (*matrix.Dense, error) { return Clique(8, 5) }, GraphClique},
		{func() (*matrix.Dense, error) { return Bipartite(8, 3, 3) }, GraphBipartite},
		{func() (*matrix.Dense, error) { return Tree(7) }, GraphTree},
		{func() (*matrix.Dense, error) { return Mesh(12, 3, 4) }, GraphMesh},
		{func() (*matrix.Dense, error) { return ToroidalMesh(12, 3, 4) }, GraphTorus},
		{func() (*matrix.Dense, error) { return SelfLoops(4, 2) }, GraphSelfLoop},
		{func() (*matrix.Dense, error) { return Triangle(5, 1, 3, 4) }, GraphTriangle},
	}
	for i, c := range cases {
		m, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		if got := ClassifyGraph(m); got != c.want {
			t.Errorf("case %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestTopologyClassifierRejectsAmbiguity(t *testing.T) {
	// A mixed matrix (one pair + one hub) is not a pure topology…
	m := matrix.NewSquare(10)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	for j := 4; j < 8; j++ {
		m.Set(2, j, 1)
	}
	if got := ClassifyTopology(m, StandardZones10); got != TopologyInternalSupernode {
		// The hub dominates: vertex 2 is blue with fan 4.
		t.Errorf("mixed matrix = %v", got)
	}
	// …and an empty one is unknown.
	if got := ClassifyTopology(matrix.NewSquare(10), StandardZones10); got != TopologyUnknown {
		t.Errorf("empty = %v", got)
	}
}

func TestCatalogLookupAndFamilies(t *testing.T) {
	if _, ok := Lookup("fig6a-isolated-links"); !ok {
		t.Error("known ID not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown ID found")
	}
	fams := Families()
	if len(fams) != 5 {
		t.Errorf("families = %v", fams)
	}
	titles := FamilyTitles(FamilySDD)
	if len(titles) != 3 {
		t.Errorf("SDD titles = %v", titles)
	}
}

func TestEnumStrings(t *testing.T) {
	if StagePlanning.String() != "planning" || AttackStage(9).String() == "" {
		t.Error("attack stage names")
	}
	if PostureDeterrence.String() != "deterrence" {
		t.Error("posture names")
	}
	if DDoSC2.String() != "command and control" {
		t.Error("ddos names")
	}
	if GraphTorus.String() != "toroidal mesh" || GraphKind(99).String() != "unknown" {
		t.Error("graph kind names")
	}
	if TopologyExternalSupernode.String() != "external supernode" {
		t.Error("topology names")
	}
	if ZoneBlue.String() != "blue" || Zone(9).String() == "" {
		t.Error("zone names")
	}
}
