package patterns

import (
	"fmt"
	"math/rand"

	"repro/internal/matrix"
)

// The paper suggests harder exercises where stage patterns are
// "combined together or potentially mixed in with random background
// noise for a student to analyze". Compose and AddNoise build those
// exercises deterministically from a seeded generator.

// Compose sums any number of pattern matrices into one combined
// scene. All matrices must share the same shape.
func Compose(ms ...*matrix.Dense) (*matrix.Dense, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("patterns: compose needs at least one matrix")
	}
	total := ms[0].Clone()
	for _, m := range ms[1:] {
		var err error
		total, err = total.AddMatrix(m)
		if err != nil {
			return nil, err
		}
	}
	return total, nil
}

// AddNoise returns a copy of m with background traffic added to up
// to cells randomly chosen empty off-diagonal positions, each given a
// weight in [1,maxWeight]. Cells that already carry pattern traffic
// are never touched, so the underlying lesson stays readable. The
// rng makes the exercise reproducible for a whole classroom.
func AddNoise(m *matrix.Dense, rng *rand.Rand, cells, maxWeight int) (*matrix.Dense, error) {
	if rng == nil {
		return nil, fmt.Errorf("patterns: AddNoise needs a random source")
	}
	if cells < 0 || maxWeight < 1 {
		return nil, fmt.Errorf("patterns: invalid noise parameters cells=%d maxWeight=%d", cells, maxWeight)
	}
	out := m.Clone()
	var empty [][2]int
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if i != j && m.At(i, j) == 0 {
				empty = append(empty, [2]int{i, j})
			}
		}
	}
	rng.Shuffle(len(empty), func(a, b int) { empty[a], empty[b] = empty[b], empty[a] })
	if cells > len(empty) {
		cells = len(empty)
	}
	for _, pos := range empty[:cells] {
		out.Set(pos[0], pos[1], 1+rng.Intn(maxWeight))
	}
	return out, nil
}
