package core

import "fmt"

// The paper: "To create a single matrix lesson there are example
// files that can be duplicated and modified. There are template JSON
// files for 6×6 or 10×10 matrices." Template constructs those
// starting points programmatically; cmd/twmodule writes them to disk
// for educators.

// TemplateSizes lists the matrix sizes the paper ships templates for.
var TemplateSizes = []int{6, 10}

// Template returns a ready-to-edit module of the given square size.
// It reproduces the paper's 10×10 example exactly at n=10 (identity
// diagonal plus an anti-diagonal of 2s, workstation/server/external/
// adversary labels, red adversary columns and blue adversary rows)
// and scales the same construction to other sizes. The question is
// the paper's "How many packets did WS1 send to ADV4?" adapted to the
// last adversary label.
func Template(n int) (*Module, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: template size %d too small; need at least 2", n)
	}
	labels := templateLabels(n)

	traffic := make([][]int, n)
	colors := make([][]int, n)
	// The template's layout groups labels into blue space (work
	// stations + servers), greyspace (externals), and red space
	// (adversaries), mirroring the paper's example: at n=10 that is
	// 4 blue, 2 grey, 4 red (WS1–WS3+SRV1, EXT1–EXT2, ADV1–ADV4).
	blueEnd, greyEnd := templateZones(n)
	for i := 0; i < n; i++ {
		traffic[i] = make([]int, n)
		colors[i] = make([]int, n)
		traffic[i][i] = 1
		traffic[i][n-1-i] = 2
		if i == n-1-i {
			// Odd sizes: center cell would collide; keep the
			// diagonal 1.
			traffic[i][i] = 1
		}
		for j := 0; j < n; j++ {
			switch {
			case i < blueEnd && j >= greyEnd:
				colors[i][j] = ColorRed // blue hosts touching adversaries
			case i >= greyEnd && j < blueEnd:
				colors[i][j] = ColorBlue // adversaries touching blue hosts
			default:
				colors[i][j] = ColorGrey
			}
		}
	}

	lastAdv := labels[n-1]
	return &Module{
		Name:                fmt.Sprintf("%dx%d Template", n, n),
		Size:                FormatSize(n),
		Author:              "Chasen Milner",
		AxisLabels:          labels,
		TrafficMatrix:       traffic,
		TrafficMatrixColors: colors,
		HasQuestion:         true,
		Question:            fmt.Sprintf("How many packets did %s send to %s?", labels[0], lastAdv),
		Answers:             []string{"0", "1", "2"},
		// The first label always sends 2 packets to the last label
		// via the template's anti-diagonal, so "2" (index 2) is
		// correct at every size.
		CorrectAnswerElement: 2,
	}, nil
}

// templateZones returns the end indices (exclusive) of the blue and
// grey label zones for an n-label template: 40% blue and 20% grey,
// matching the paper's 4/2/4 split at n=10.
func templateZones(n int) (blueEnd, greyEnd int) {
	blueEnd = n * 4 / 10
	if blueEnd < 1 {
		blueEnd = 1
	}
	greyEnd = n * 6 / 10
	if greyEnd <= blueEnd {
		greyEnd = blueEnd + 1
	}
	if greyEnd > n {
		greyEnd = n
	}
	return blueEnd, greyEnd
}

// templateLabels builds the label list used by the templates. At
// n=10 it matches the paper's example verbatim: WS1–WS3, SRV1,
// EXT1–EXT2, ADV1–ADV4.
func templateLabels(n int) []string {
	blueEnd, greyEnd := templateZones(n)
	// Within the blue zone the last quarter (at least one) are
	// servers; the rest are work stations.
	srvCount := blueEnd / 4
	if srvCount < 1 {
		srvCount = 1
	}
	if srvCount >= blueEnd {
		srvCount = blueEnd - 1
	}
	labels := make([]string, 0, n)
	for i := 0; i < blueEnd-srvCount; i++ {
		labels = append(labels, fmt.Sprintf("WS%d", i+1))
	}
	for i := 0; i < srvCount; i++ {
		labels = append(labels, fmt.Sprintf("SRV%d", i+1))
	}
	for i := 0; i < greyEnd-blueEnd; i++ {
		labels = append(labels, fmt.Sprintf("EXT%d", i+1))
	}
	for i := 0; i < n-greyEnd; i++ {
		labels = append(labels, fmt.Sprintf("ADV%d", i+1))
	}
	return labels
}

// MustTemplate is Template but panics on error; for the built-in
// module library and tests.
func MustTemplate(n int) *Module {
	m, err := Template(n)
	if err != nil {
		panic(err)
	}
	return m
}
