package core

import (
	"archive/zip"
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// makeLesson builds a two-module lesson.
func makeLesson() *Lesson {
	a := MustTemplate(6)
	a.Name = "Lesson One"
	b := MustTemplate(10)
	b.Name = "Lesson Two"
	return &Lesson{Name: "test", Modules: []*Module{a, b}}
}

func TestZipRoundTrip(t *testing.T) {
	lesson := makeLesson()
	var buf bytes.Buffer
	if err := lesson.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadZip("test", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("reloaded %d modules", back.Len())
	}
	for i := range lesson.Modules {
		if !lesson.Modules[i].Equal(back.Modules[i]) {
			t.Errorf("module %d changed across zip round trip", i)
		}
	}
}

// TestZipPreservesOrder: entry names are numbered, so sequential
// presentation order survives even though zip readers sort names.
func TestZipPreservesOrder(t *testing.T) {
	lesson := &Lesson{Name: "ordered"}
	for _, name := range []string{"Zulu", "Alpha", "Mike"} {
		m := MustTemplate(6)
		m.Name = name
		lesson.Modules = append(lesson.Modules, m)
	}
	var buf bytes.Buffer
	if err := lesson.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadZip("ordered", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"Zulu", "Alpha", "Mike"} {
		if back.Modules[i].Name != want {
			t.Errorf("module %d = %q, want %q (order lost)", i, back.Modules[i].Name, want)
		}
	}
}

// TestZipIgnoresNoise: non-JSON entries, dotfiles, directories, and
// macOS resource forks are skipped.
func TestZipIgnoresNoise(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	writeEntry := func(name, content string) {
		f, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := EncodeModule(MustTemplate(6))
	if err != nil {
		t.Fatal(err)
	}
	writeEntry("README.txt", "not a module")
	writeEntry("__MACOSX/01_module.json", "resource fork junk")
	writeEntry(".hidden.json", "junk")
	writeEntry("01_module.json", string(data))
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	lesson, err := ReadZip("noisy", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if lesson.Len() != 1 {
		t.Errorf("loaded %d modules, want 1", lesson.Len())
	}
}

func TestZipEmptyRejected(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadZip("empty", buf.Bytes()); err == nil {
		t.Error("empty zip accepted")
	}
	if _, err := ReadZip("garbage", []byte("not a zip")); err == nil {
		t.Error("garbage accepted as zip")
	}
}

func TestZipBadModuleRejected(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	f, _ := zw.Create("01_bad.json")
	if _, err := f.Write([]byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadZip("bad", buf.Bytes()); err == nil {
		t.Error("corrupt module accepted")
	}
}

func TestLoadZipFileAndDir(t *testing.T) {
	dir := t.TempDir()
	lesson := makeLesson()

	zipPath := filepath.Join(dir, "lesson.zip")
	var buf bytes.Buffer
	if err := lesson.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(zipPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fromZip, err := LoadZipFile(zipPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromZip.Name != "lesson" || fromZip.Len() != 2 {
		t.Errorf("LoadZipFile: name=%q len=%d", fromZip.Name, fromZip.Len())
	}

	// Unpacked directory layout.
	moduleDir := filepath.Join(dir, "modules")
	if err := os.MkdirAll(moduleDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, m := range lesson.Modules {
		data, err := EncodeModule(m)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Join(moduleDir, []string{"01_a.json", "02_b.json"}[i])
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fromDir, err := LoadDir(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	if fromDir.Len() != 2 || fromDir.Modules[0].Name != "Lesson One" {
		t.Errorf("LoadDir: %d modules, first %q", fromDir.Len(), fromDir.Modules[0].Name)
	}

	if _, err := LoadDir(dir + "/missing"); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := LoadZipFile(dir + "/missing.zip"); err == nil {
		t.Error("missing zip accepted")
	}
}

func TestLessonValidatePrefixes(t *testing.T) {
	lesson := makeLesson()
	lesson.Modules[1].AxisLabels[0] = "" // inject an error
	issues := lesson.Validate()
	if issues.OK() {
		t.Fatal("invalid lesson passed")
	}
	found := false
	for _, i := range issues.Errs() {
		if len(i.Field) > 0 && i.Field[0] == 'm' { // "module[1] …"
			found = true
		}
	}
	if !found {
		t.Errorf("findings not prefixed with module position:\n%s", issues)
	}
}

func TestModuleFileNameSlug(t *testing.T) {
	m := &Module{Name: "DDoS Attack! (Fig 9c)"}
	got := moduleFileName(2, m)
	if got != "03_ddos_attack_fig_9c.json" {
		t.Errorf("moduleFileName = %q", got)
	}
	if got := moduleFileName(0, &Module{Name: "###"}); got != "01_module.json" {
		t.Errorf("fallback name = %q", got)
	}
}
