package core

import (
	"strings"
	"testing"
)

func TestExtendedColorNames(t *testing.T) {
	names := map[int]string{3: "green", 4: "yellow", 5: "purple", 6: "black"}
	for code, want := range names {
		if got := ColorName(code); got != want {
			t.Errorf("ColorName(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestExtendedColorsValidation: codes 3–5 warn on a classic module
// but are clean when the module opts into extended colors; codes
// beyond 5 warn in both modes.
func TestExtendedColorsValidation(t *testing.T) {
	m := validModule()
	m.TrafficMatrixColors[0][0] = ColorGreen
	if len(m.Validate().Warnings()) == 0 {
		t.Error("extended code on classic module did not warn")
	}
	m.ExtendedColors = true
	if issues := m.Validate(); len(issues) != 0 {
		t.Errorf("extended module with green warned:\n%s", issues)
	}
	m.TrafficMatrixColors[0][0] = MaxExtendedColor + 1
	if len(m.Validate().Warnings()) == 0 {
		t.Error("out-of-range code on extended module did not warn")
	}
}

func TestExtendedColorsSurviveRoundTrip(t *testing.T) {
	m := validModule()
	m.ExtendedColors = true
	m.TrafficMatrixColors[1][1] = ColorPurple
	data, err := EncodeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseModule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ExtendedColors || back.TrafficMatrixColors[1][1] != ColorPurple {
		t.Error("extended colors lost in round trip")
	}
	if !m.Equal(back) {
		t.Error("Equal ignores extended colors")
	}
}

// TestExtendedColorsOmittedWhenOff: classic modules encode without
// the extended_colors key, keeping paper-era files byte-compatible.
func TestExtendedColorsOmittedWhenOff(t *testing.T) {
	data, err := EncodeModule(validModule())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "extended_colors") {
		t.Error("extended_colors emitted for a classic module")
	}
}
