package core

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Lesson is an ordered sequence of learning modules: "Learning
// modules consist of a zip file containing multiple JSON files that
// the user can select and load into the game. Traffic Warehouse will
// take the zip file and load each of the JSON files contained in it
// and present them sequentially one at a time."
type Lesson struct {
	// Name identifies the lesson (typically the zip file's base
	// name).
	Name string
	// Modules are presented in order.
	Modules []*Module
}

// Len returns the number of modules.
func (l *Lesson) Len() int { return len(l.Modules) }

// Validate validates every module, prefixing each finding's field
// with the module's position and name.
func (l *Lesson) Validate() Issues {
	var all Issues
	for idx, m := range l.Modules {
		for _, issue := range m.Validate() {
			issue.Field = fmt.Sprintf("module[%d] %q %s", idx, m.Name, issue.Field)
			all = append(all, issue)
		}
	}
	return all
}

// moduleFileName builds the archive entry name for module i.
func moduleFileName(i int, m *Module) string {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		case r == ' ', r == '-', r == '_':
			return '_'
		default:
			return -1
		}
	}, m.Name)
	if slug == "" {
		slug = "module"
	}
	return fmt.Sprintf("%02d_%s.json", i+1, slug)
}

// WriteZip packs the lesson into zip format on w. Entry names are
// numbered so the sequential presentation order survives the
// round-trip.
func (l *Lesson) WriteZip(w io.Writer) error {
	zw := zip.NewWriter(w)
	for i, m := range l.Modules {
		f, err := zw.Create(moduleFileName(i, m))
		if err != nil {
			return fmt.Errorf("core: write zip: %w", err)
		}
		data, err := EncodeModule(m)
		if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			return fmt.Errorf("core: write zip: %w", err)
		}
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: write zip: %w", err)
	}
	return nil
}

// ReadZip loads a lesson from zip data. JSON entries are loaded in
// lexical name order (the order the numbered entry names encode);
// non-JSON entries and directories are ignored, and macOS resource
// fork noise ("__MACOSX", dotfiles) is skipped so classroom zips
// built by hand still load.
func ReadZip(name string, data []byte) (*Lesson, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("core: read zip: %w", err)
	}
	var entries []*zip.File
	for _, f := range zr.File {
		base := filepath.Base(f.Name)
		if f.FileInfo().IsDir() ||
			!strings.HasSuffix(strings.ToLower(base), ".json") ||
			strings.HasPrefix(base, ".") ||
			strings.HasPrefix(f.Name, "__MACOSX") {
			continue
		}
		entries = append(entries, f)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	lesson := &Lesson{Name: name}
	for _, f := range entries {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("core: read zip entry %s: %w", f.Name, err)
		}
		src, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("core: read zip entry %s: %w", f.Name, err)
		}
		m, err := ParseModule(src)
		if err != nil {
			return nil, fmt.Errorf("core: zip entry %s: %w", f.Name, err)
		}
		lesson.Modules = append(lesson.Modules, m)
	}
	if len(lesson.Modules) == 0 {
		return nil, fmt.Errorf("core: zip %s contains no module JSON files", name)
	}
	return lesson, nil
}

// LoadZipFile reads a lesson zip from disk.
func LoadZipFile(path string) (*Lesson, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load lesson: %w", err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return ReadZip(name, data)
}

// LoadModuleFile reads a single module JSON document from disk.
func LoadModuleFile(path string) (*Module, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load module: %w", err)
	}
	return ParseModule(data)
}

// LoadDir loads every *.json file in a directory (non-recursive, in
// lexical order) as a lesson: the unzipped layout educators iterate
// on before packing.
func LoadDir(dir string) (*Lesson, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: load dir: %w", err)
	}
	lesson := &Lesson{Name: filepath.Base(dir)}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, n := range names {
		m, err := LoadModuleFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		lesson.Modules = append(lesson.Modules, m)
	}
	if len(lesson.Modules) == 0 {
		return nil, fmt.Errorf("core: directory %s contains no module JSON files", dir)
	}
	return lesson, nil
}
