package core

import (
	"strings"
	"testing"
)

func TestNormalizeTrailingCommas(t *testing.T) {
	cases := []struct{ in, want string }{
		{`[1,2,3,]`, `[1,2,3]`},
		{`{"a":1,}`, `{"a":1}`},
		{`[1, 2, ]`, `[1, 2 ]`},
		{"[1,\n]", "[1\n]"},
		{`[[1,],[2,],]`, `[[1],[2]]`},
		{`[1,2]`, `[1,2]`},
	}
	for _, c := range cases {
		if got := string(normalizeJSON([]byte(c.in))); got != c.want {
			t.Errorf("normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNormalizePreservesStrings(t *testing.T) {
	cases := []string{
		`{"q":"a, ]b"}`,
		`{"q":"trailing ,"}`,
		`{"q":"esc \" quote, ]"}`,
		`{"q":"back\\slash"}`,
		`{"q":"// not a comment"}`,
	}
	for _, c := range cases {
		if got := string(normalizeJSON([]byte(c))); got != c {
			t.Errorf("normalize altered string content: %q → %q", c, got)
		}
	}
}

func TestNormalizeStripsComments(t *testing.T) {
	in := "{\n\"name\": \"x\", // the lesson title\n\"size\": \"2x2\"\n}"
	got := string(normalizeJSON([]byte(in)))
	if strings.Contains(got, "lesson title") {
		t.Errorf("comment kept: %q", got)
	}
	if !strings.Contains(got, `"name": "x"`) {
		t.Errorf("content lost: %q", got)
	}
}

func TestParseModuleUnknownFieldRejected(t *testing.T) {
	src := `{"name":"x","size":"2x2","axis_labels":["A","B"],
		"trafic_matrix":[[1,0],[0,1]]}` // typo field
	if _, err := ParseModule([]byte(src)); err == nil {
		t.Error("typo field accepted silently")
	}
}

func TestParseModuleMultipleDocumentsRejected(t *testing.T) {
	src := `{"name":"a","size":"1x1"} {"name":"b","size":"1x1"}`
	if _, err := ParseModule([]byte(src)); err == nil {
		t.Error("two JSON documents in one file accepted")
	}
}

func TestParseModuleGarbage(t *testing.T) {
	for _, src := range []string{"", "not json", "[1,2,3]", `"just a string"`} {
		if _, err := ParseModule([]byte(src)); err == nil {
			t.Errorf("garbage %q accepted", src)
		}
	}
}

func TestParseModuleWithCommentsAndCommas(t *testing.T) {
	src := `{
		// educator note: two hosts only
		"name": "Mini",
		"size": "2x2",
		"author": "T",
		"axis_labels": ["A", "B",],
		"traffic_matrix": [[0, 1,], [1, 0,],],
		"traffic_matrix_colors": [[0, 0,], [0, 0,],],
		"has_question": false,
	}`
	m, err := ParseModule([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Mini" || len(m.TrafficMatrix) != 2 {
		t.Errorf("parsed wrong: %+v", m)
	}
}
