package core

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Answer obfuscation implements the paper's future-work item
// "obfuscating question answers in the module file": a module can
// carry, instead of the plain correct_answer_element index, a salted
// digest of the correct answer's text. A student who opens the JSON
// in a text editor (the format's whole point) no longer sees which
// option is right, while the game resolves it by digesting each
// answer and comparing.
//
// The scheme is a deterrent, not cryptography: with three options an
// adversarial student can brute-force it trivially. That matches the
// feature's intent — keeping the displayed quiz honest, not securing
// secrets.

// obfuscationDigestLen is the hex length stored in the module file;
// 16 hex chars (64 bits) keeps files readable.
const obfuscationDigestLen = 16

// digestAnswer computes the stored token for an answer text under a
// salt.
func digestAnswer(salt, answer string) string {
	sum := sha256.Sum256([]byte(salt + "\x00" + answer))
	return hex.EncodeToString(sum[:])[:obfuscationDigestLen]
}

// ObfuscateAnswer converts the module's plain correct answer into
// obfuscated form: it fills AnswerSalt and CorrectAnswerDigest and
// resets CorrectAnswerElement to zero. A salt is generated when the
// module has none. It errors when the module has no active question
// or the index is out of range.
func (m *Module) ObfuscateAnswer() error {
	if !m.HasQuestion {
		return fmt.Errorf("core: obfuscate: module %q has no active question", m.Name)
	}
	if m.CorrectAnswerElement < 0 || m.CorrectAnswerElement >= len(m.Answers) {
		return fmt.Errorf("core: obfuscate: correct_answer_element %d out of range [0,%d)", m.CorrectAnswerElement, len(m.Answers))
	}
	if m.AnswerSalt == "" {
		var raw [8]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return fmt.Errorf("core: obfuscate: %w", err)
		}
		m.AnswerSalt = hex.EncodeToString(raw[:])
	}
	m.CorrectAnswerDigest = digestAnswer(m.AnswerSalt, m.Answers[m.CorrectAnswerElement])
	m.CorrectAnswerElement = 0
	return nil
}

// Obfuscated reports whether the module stores its correct answer in
// digest form.
func (m *Module) Obfuscated() bool { return m.CorrectAnswerDigest != "" }

// ResolveCorrect returns the index of the correct answer, resolving
// the digest when the module is obfuscated. It errors when no
// answer, or more than one, matches the digest (a corrupted or
// tampered file).
func (m *Module) ResolveCorrect() (int, error) {
	if !m.Obfuscated() {
		if m.CorrectAnswerElement < 0 || m.CorrectAnswerElement >= len(m.Answers) {
			return 0, fmt.Errorf("core: correct_answer_element %d out of range [0,%d)", m.CorrectAnswerElement, len(m.Answers))
		}
		return m.CorrectAnswerElement, nil
	}
	want := strings.ToLower(strings.TrimSpace(m.CorrectAnswerDigest))
	match := -1
	for i, a := range m.Answers {
		if digestAnswer(m.AnswerSalt, a) == want {
			if match >= 0 {
				return 0, fmt.Errorf("core: answers %d and %d both match the digest (duplicate answers?)", match, i)
			}
			match = i
		}
	}
	if match < 0 {
		return 0, fmt.Errorf("core: no answer matches correct_answer_digest (edited answers without re-obfuscating?)")
	}
	return match, nil
}
