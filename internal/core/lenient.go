package core

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The paper's JSON listings are written the way humans write config
// files: every list and object ends with a trailing comma, e.g.
//
//	"answers":["0", "1", "2",],
//
// which strict JSON rejects. Because the whole point of the format is
// that "the template can be edited with a simple text editor" by
// non-developers, the decoder accepts trailing commas (and // line
// comments, another common hand-editing habit) by normalizing the
// input before handing it to encoding/json. Everything else remains
// strict JSON.

// normalizeJSON removes trailing commas before ] or } and // line
// comments, preserving string contents (including escaped quotes)
// byte for byte. It works on raw bytes; JSON strings cannot contain
// raw newlines so line-comment scanning is safe outside strings.
func normalizeJSON(src []byte) []byte {
	var out bytes.Buffer
	out.Grow(len(src))
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inString {
			out.WriteByte(c)
			switch c {
			case '\\':
				// Copy the escaped byte verbatim so an escaped
				// quote does not terminate the string.
				if i+1 < len(src) {
					i++
					out.WriteByte(src[i])
				}
			case '"':
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
			out.WriteByte(c)
		case '/':
			if i+1 < len(src) && src[i+1] == '/' {
				for i < len(src) && src[i] != '\n' {
					i++
				}
				if i < len(src) {
					out.WriteByte('\n')
				}
				continue
			}
			out.WriteByte(c)
		case ',':
			// Look ahead past whitespace; drop the comma when the
			// next significant byte closes a container.
			j := i + 1
			for j < len(src) && isJSONSpace(src[j]) {
				j++
			}
			if j < len(src) && (src[j] == ']' || src[j] == '}') {
				continue
			}
			out.WriteByte(c)
		default:
			out.WriteByte(c)
		}
	}
	return out.Bytes()
}

func isJSONSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// DecodeLenient decodes any JSON document with the same leniency as
// ParseModule (trailing commas, // comments) into v, rejecting
// unknown fields. Course manifests and other educator-authored files
// share the module format's editing ergonomics through this helper.
func DecodeLenient(src []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(normalizeJSON(src)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return fmt.Errorf("core: more than one JSON document in file")
	}
	return nil
}

// ParseModule decodes one learning module from its JSON document,
// tolerating trailing commas and // comments. Unknown fields are
// rejected so typos in field names surface immediately instead of
// silently producing an empty matrix.
func ParseModule(src []byte) (*Module, error) {
	dec := json.NewDecoder(bytes.NewReader(normalizeJSON(src)))
	dec.DisallowUnknownFields()
	var m Module
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("core: parse module: %w", err)
	}
	// A second value in the stream means the file held more than one
	// JSON document, which the format does not allow (lessons are
	// zip files of single-module documents).
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil {
		return nil, fmt.Errorf("core: parse module: more than one JSON document in file")
	}
	return &m, nil
}

// EncodeModule renders a module as indented JSON in the field order
// of the paper's listings. Output is strict JSON (no trailing
// commas), so encoded modules are consumable by any JSON tool.
func EncodeModule(m *Module) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(m); err != nil {
		return nil, fmt.Errorf("core: encode module: %w", err)
	}
	return buf.Bytes(), nil
}
