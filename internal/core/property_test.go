package core

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestModuleJSONRoundTripProperty: arbitrary well-formed modules
// survive encode→parse unchanged.
func TestModuleJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(9)
		m := MustTemplate(10) // valid skeleton
		m.Size = FormatSize(n)
		m.Name = randName(rng)
		m.Hint = randName(rng)
		m.AxisLabels = make([]string, n)
		for i := range m.AxisLabels {
			m.AxisLabels[i] = randLabel(rng, i)
		}
		m.TrafficMatrix = randGrid(rng, n, 14)
		m.TrafficMatrixColors = randGrid(rng, n, 2)
		m.ExtendedColors = rng.Intn(2) == 0
		data, err := EncodeModule(m)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseModule(data)
		if err != nil {
			t.Fatalf("trial %d: parse back: %v\n%s", trial, err, data)
		}
		if !m.Equal(back) {
			t.Fatalf("trial %d: round trip changed module", trial)
		}
	}
}

// randName produces a printable string including JSON-hostile runes.
func randName(rng *rand.Rand) string {
	alphabet := []rune(`abcXYZ 0123"\,][}{:/虎🙂`)
	k := 1 + rng.Intn(12)
	out := make([]rune, k)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// randLabel produces a unique short label.
func randLabel(rng *rand.Rand, i int) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return string(letters[rng.Intn(26)]) + string(rune('0'+i))
}

// randGrid fills an n×n grid with values in [0,max].
func randGrid(rng *rand.Rand, n, max int) [][]int {
	g := make([][]int, n)
	for i := range g {
		g[i] = make([]int, n)
		for j := range g[i] {
			g[i][j] = rng.Intn(max + 1)
		}
	}
	return g
}

// TestNormalizeIdempotentProperty: normalizing already-strict JSON
// is the identity, and normalizing twice equals normalizing once.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(name string, vals []int8) bool {
		doc := map[string]any{"name": name, "vals": vals}
		strict, err := json.Marshal(doc)
		if err != nil {
			return true // skip unmarshalable inputs
		}
		once := normalizeJSON(strict)
		if string(once) != string(strict) {
			return false
		}
		twice := normalizeJSON(once)
		return string(twice) == string(once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeNeverBreaksValidity: inserting trailing commas into a
// valid document and normalizing yields a parseable document with
// identical content.
func TestNormalizeNeverBreaksValidity(t *testing.T) {
	m := MustTemplate(6)
	strict, err := EncodeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	// Inject a trailing comma before every closing bracket outside
	// strings (a crude but aggressive mutation).
	var mutated []byte
	inString := false
	for i := 0; i < len(strict); i++ {
		c := strict[i]
		if inString {
			mutated = append(mutated, c)
			if c == '\\' && i+1 < len(strict) {
				i++
				mutated = append(mutated, strict[i])
			} else if c == '"' {
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
		case ']', '}':
			// Insert ",\n" before the close unless the container
			// is empty.
			j := len(mutated) - 1
			for j >= 0 && (mutated[j] == ' ' || mutated[j] == '\n' || mutated[j] == '\t') {
				j--
			}
			if j >= 0 && mutated[j] != '[' && mutated[j] != '{' && mutated[j] != ',' {
				mutated = append(mutated, ',')
			}
		}
		mutated = append(mutated, c)
	}
	back, err := ParseModule(mutated)
	if err != nil {
		t.Fatalf("comma-mutated module failed to parse: %v\n%s", err, mutated)
	}
	if !m.Equal(back) {
		t.Error("comma mutation changed content")
	}
}

// TestValidateNeverPanicsProperty: Validate must return findings,
// not panic, for arbitrary garbage modules.
func TestValidateNeverPanicsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 300; trial++ {
		m := &Module{
			Name:                 randName(rng),
			Size:                 randName(rng),
			HasQuestion:          rng.Intn(2) == 0,
			Question:             randName(rng),
			CorrectAnswerElement: rng.Intn(7) - 3,
		}
		for i := 0; i < rng.Intn(4); i++ {
			m.AxisLabels = append(m.AxisLabels, randName(rng))
			m.Answers = append(m.Answers, randName(rng))
		}
		for i := 0; i < rng.Intn(4); i++ {
			row := make([]int, rng.Intn(5))
			for j := range row {
				row[j] = rng.Intn(40) - 10
			}
			m.TrafficMatrix = append(m.TrafficMatrix, row)
			m.TrafficMatrixColors = append(m.TrafficMatrixColors, row)
		}
		_ = m.Validate() // must not panic
	}
}
