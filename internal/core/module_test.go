package core

import (
	"strings"
	"testing"
)

// paperExampleJSON reassembles the paper's own Section II listing —
// including its trailing commas — as one document.
const paperExampleJSON = `{
"name":"10x10 Template",
"size":"10x10",
"author":"Chasen Milner",
"axis_labels":[
"WS1","WS2","WS3","SRV1",
"EXT1","EXT2",
"ADV1","ADV2","ADV3","ADV4",
],
"traffic_matrix":[
[1,0,0,0,0,0,0,0,0,2],
[0,1,0,0,0,0,0,0,2,0],
[0,0,1,0,0,0,0,2,0,0],
[0,0,0,1,0,0,2,0,0,0],
[0,0,0,0,1,2,0,0,0,0],
[0,0,0,0,2,1,0,0,0,0],
[0,0,0,2,0,0,1,0,0,0],
[0,0,2,0,0,0,0,1,0,0],
[0,2,0,0,0,0,0,0,1,0],
[2,0,0,0,0,0,0,0,0,1],
],
"traffic_matrix_colors":[
[0,0,0,0,0,0,2,2,2,2],
[0,0,0,0,0,0,2,2,2,2],
[0,0,0,0,0,0,2,2,2,2],
[0,0,0,0,0,0,2,2,2,2],
[0,0,0,0,0,0,0,0,0,0],
[0,0,0,0,0,0,0,0,0,0],
[1,1,1,1,0,0,0,0,0,0],
[1,1,1,1,0,0,0,0,0,0],
[1,1,1,1,0,0,0,0,0,0],
[1,1,1,1,0,0,0,0,0,0],
],
"has_question":true,
"question":"How many packets did WS1 send to ADV4?",
"answers":["0", "1", "2",],
"correct_answer_element":2,
}`

// TestPaperListingParses is the headline lenient-decode test: the
// paper's own JSON (with trailing commas everywhere) must load.
func TestPaperListingParses(t *testing.T) {
	m, err := ParseModule([]byte(paperExampleJSON))
	if err != nil {
		t.Fatalf("the paper's own listing failed to parse: %v", err)
	}
	if m.Name != "10x10 Template" || m.Author != "Chasen Milner" {
		t.Errorf("header fields wrong: %q by %q", m.Name, m.Author)
	}
	if len(m.AxisLabels) != 10 || m.AxisLabels[9] != "ADV4" {
		t.Errorf("labels wrong: %v", m.AxisLabels)
	}
	if issues := m.Validate(); !issues.OK() {
		t.Errorf("paper listing should validate: %s", issues.Errs())
	}
	mat, err := m.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if mat.At(0, 9) != 2 || mat.At(0, 0) != 1 {
		t.Error("matrix content wrong")
	}
}

// TestTemplateMatchesPaperListing: our generated 10×10 template must
// equal the paper's listing field for field.
func TestTemplateMatchesPaperListing(t *testing.T) {
	paper, err := ParseModule([]byte(paperExampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	tpl := MustTemplate(10)
	if !tpl.Equal(paper) {
		pm, _ := tpl.Matrix()
		wm, _ := paper.Matrix()
		t.Fatalf("Template(10) differs from the paper's listing.\ngot name=%q labels=%v matrix:\n%v\nwant labels=%v matrix:\n%v",
			tpl.Name, tpl.AxisLabels, pm, paper.AxisLabels, wm)
	}
}

func TestTemplateSizes(t *testing.T) {
	for _, n := range TemplateSizes {
		m, err := Template(n)
		if err != nil {
			t.Fatalf("Template(%d): %v", n, err)
		}
		if issues := m.Validate(); !issues.OK() {
			t.Errorf("Template(%d) invalid:\n%s", n, issues.Errs())
		}
		dim, err := m.Dim()
		if err != nil || dim != n {
			t.Errorf("Template(%d) dim = %d (%v)", n, dim, err)
		}
		if len(m.Answers) != RecommendedAnswerCount {
			t.Errorf("Template(%d) has %d answers", n, len(m.Answers))
		}
	}
	if _, err := Template(1); err == nil {
		t.Error("Template(1) accepted")
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in         string
		rows, cols int
		ok         bool
	}{
		{"10x10", 10, 10, true},
		{"6x6", 6, 6, true},
		{" 8 x 8 ", 8, 8, true},
		{"4X4", 4, 4, true},
		{"3x5", 3, 5, true},
		{"0x0", 0, 0, false},
		{"-2x2", 0, 0, false},
		{"ten", 0, 0, false},
		{"axb", 0, 0, false},
		{"10", 0, 0, false},
	}
	for _, c := range cases {
		rows, cols, err := ParseSize(c.in)
		if c.ok && (err != nil || rows != c.rows || cols != c.cols) {
			t.Errorf("ParseSize(%q) = %d,%d,%v", c.in, rows, cols, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSize(%q) accepted", c.in)
		}
	}
}

func TestDimRejectsNonSquare(t *testing.T) {
	m := &Module{Size: "3x5"}
	if _, err := m.Dim(); err == nil {
		t.Error("non-square size accepted by Dim")
	}
}

func TestQuizExtraction(t *testing.T) {
	m, _ := ParseModule([]byte(paperExampleJSON))
	q, ok := m.Quiz()
	if !ok {
		t.Fatal("question not extracted")
	}
	if q.Prompt != "How many packets did WS1 send to ADV4?" || q.Correct != 2 {
		t.Errorf("quiz = %+v", q)
	}
	m.HasQuestion = false
	if _, ok := m.Quiz(); ok {
		t.Error("disabled question still extracted")
	}
}

func TestTotalPackets(t *testing.T) {
	m, _ := ParseModule([]byte(paperExampleJSON))
	// 10 diagonal ones + 10 anti-diagonal twos.
	if got := m.TotalPackets(); got != 30 {
		t.Errorf("TotalPackets = %d, want 30", got)
	}
}

func TestCloneDeep(t *testing.T) {
	m, _ := ParseModule([]byte(paperExampleJSON))
	c := m.Clone()
	c.TrafficMatrix[0][0] = 99
	c.AxisLabels[0] = "HACK"
	c.Answers[0] = "HACK"
	if m.TrafficMatrix[0][0] == 99 || m.AxisLabels[0] == "HACK" || m.Answers[0] == "HACK" {
		t.Error("Clone shares backing arrays")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not Equal")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base, _ := ParseModule([]byte(paperExampleJSON))
	mutations := []func(*Module){
		func(m *Module) { m.Name = "x" },
		func(m *Module) { m.Size = "6x6" },
		func(m *Module) { m.Author = "x" },
		func(m *Module) { m.Hint = "x" },
		func(m *Module) { m.AxisLabels[3] = "x" },
		func(m *Module) { m.TrafficMatrix[2][2] = 9 },
		func(m *Module) { m.TrafficMatrixColors[2][2] = 9 },
		func(m *Module) { m.HasQuestion = false },
		func(m *Module) { m.Question = "x" },
		func(m *Module) { m.Answers[1] = "x" },
		func(m *Module) { m.CorrectAnswerElement = 0 },
	}
	for i, mutate := range mutations {
		c := base.Clone()
		mutate(c)
		if base.Equal(c) {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
}

func TestColorName(t *testing.T) {
	names := map[int]string{0: "grey", 1: "blue", 2: "red", 7: "black", -1: "black"}
	for code, want := range names {
		if got := ColorName(code); got != want {
			t.Errorf("ColorName(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m, _ := ParseModule([]byte(paperExampleJSON))
	data, err := EncodeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	// Encoded output must be strict JSON: no trailing commas.
	if strings.Contains(string(data), ",]") || strings.Contains(string(data), ",}") {
		t.Error("encoder emitted trailing commas")
	}
	back, err := ParseModule(data)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("encode/decode round trip changed the module")
	}
}
