package core

import (
	"fmt"
	"strings"
)

// Severity classifies a validation finding.
type Severity int

const (
	// Warning findings display imperfectly but still play (e.g. a
	// cell above the 15-packet display guidance).
	Warning Severity = iota
	// Error findings make the module unplayable (e.g. a ragged
	// matrix).
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one validation finding with the field it concerns.
type Issue struct {
	// Severity is Warning or Error.
	Severity Severity
	// Field is the JSON field the finding concerns.
	Field string
	// Msg describes the finding.
	Msg string
}

// String renders the issue as "severity field: message".
func (i Issue) String() string {
	return fmt.Sprintf("%s %s: %s", i.Severity, i.Field, i.Msg)
}

// Issues is a list of findings with helpers for severity filtering.
type Issues []Issue

// Errs returns only the Error-severity findings.
func (is Issues) Errs() Issues {
	var out Issues
	for _, i := range is {
		if i.Severity == Error {
			out = append(out, i)
		}
	}
	return out
}

// Warnings returns only the Warning-severity findings.
func (is Issues) Warnings() Issues {
	var out Issues
	for _, i := range is {
		if i.Severity == Warning {
			out = append(out, i)
		}
	}
	return out
}

// OK reports whether the list contains no Error findings.
func (is Issues) OK() bool { return len(is.Errs()) == 0 }

// String renders one finding per line.
func (is Issues) String() string {
	lines := make([]string, len(is))
	for k, i := range is {
		lines[k] = i.String()
	}
	return strings.Join(lines, "\n")
}

// Validate checks a module against the format's rules and the
// paper's display guidance. It returns all findings rather than
// stopping at the first so an educator sees every problem in one
// pass.
func (m *Module) Validate() Issues {
	var issues Issues
	errf := func(field, format string, args ...any) {
		issues = append(issues, Issue{Severity: Error, Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	warnf := func(field, format string, args ...any) {
		issues = append(issues, Issue{Severity: Warning, Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	if strings.TrimSpace(m.Name) == "" {
		errf("name", "module needs a non-empty name")
	}
	if strings.TrimSpace(m.Author) == "" {
		warnf("author", "module has no author credit")
	}

	n, err := m.Dim()
	if err != nil {
		errf("size", "%v", err)
		// Without a valid size, dimension checks below would
		// cascade into noise; fall back to the label count when
		// plausible so matrix checks still run.
		n = len(m.AxisLabels)
		if n == 0 {
			return issues
		}
	}

	// Axis labels: one list applied to both axes.
	if len(m.AxisLabels) != n {
		errf("axis_labels", "have %d labels, size %s needs %d", len(m.AxisLabels), m.Size, n)
	}
	seen := make(map[string]int)
	for i, label := range m.AxisLabels {
		trimmed := strings.TrimSpace(label)
		if trimmed == "" {
			errf("axis_labels", "label %d is empty", i)
			continue
		}
		if prev, dup := seen[trimmed]; dup {
			errf("axis_labels", "label %q repeats at positions %d and %d", trimmed, prev, i)
		}
		seen[trimmed] = i
		if len(trimmed) > 4 {
			warnf("axis_labels", "label %q is long; shorter all-caps labels are easier to view in the game", trimmed)
		} else if trimmed != strings.ToUpper(trimmed) {
			warnf("axis_labels", "label %q is not all caps; all-caps labels are easier to view in the game", trimmed)
		}
	}

	issues = append(issues, validateGrid("traffic_matrix", m.TrafficMatrix, n, func(field string, i, j, v int) Issues {
		var out Issues
		if v < 0 {
			out = append(out, Issue{Error, field, fmt.Sprintf("cell (%d,%d) has negative packet count %d", i, j, v)})
		}
		if v > MaxDisplayPackets {
			out = append(out, Issue{Warning, field, fmt.Sprintf("cell (%d,%d) has %d packets; fewer than 15 displays well", i, j, v)})
		}
		return out
	})...)

	maxColor := ColorRed
	if m.ExtendedColors {
		maxColor = MaxExtendedColor
	}
	issues = append(issues, validateGrid("traffic_matrix_colors", m.TrafficMatrixColors, n, func(field string, i, j, v int) Issues {
		if v < ColorGrey || v > maxColor {
			return Issues{{Warning, field, fmt.Sprintf("cell (%d,%d) has unknown color code %d; it will render black in-game", i, j, v)}}
		}
		return nil
	})...)

	// Question block.
	if m.HasQuestion {
		if _, err := m.ResolveCorrect(); err != nil {
			field := "correct_answer_element"
			if m.Obfuscated() {
				field = "correct_answer_digest"
			}
			errf(field, "%v", err)
		} else if q, ok := m.Quiz(); ok {
			if err := q.Validate(); err != nil {
				errf("question", "%v", err)
			}
		}
		if len(m.Answers) != 0 && len(m.Answers) != RecommendedAnswerCount {
			warnf("answers", "%d answers given; the paper recommends exactly %d", len(m.Answers), RecommendedAnswerCount)
		}
	} else if strings.TrimSpace(m.Question) != "" || len(m.Answers) > 0 {
		warnf("has_question", "question content present but has_question is false; it will not display")
	}

	return issues
}

// RecommendedAnswerCount mirrors quiz.RecommendedChoices: the paper's
// deliberate three-option design.
const RecommendedAnswerCount = 3

// validateGrid checks that a matrix field is present, n×n, and
// passes the per-cell check.
func validateGrid(field string, grid [][]int, n int, cell func(field string, i, j, v int) Issues) Issues {
	var issues Issues
	if len(grid) == 0 {
		return Issues{{Error, field, "missing"}}
	}
	if len(grid) != n {
		issues = append(issues, Issue{Error, field, fmt.Sprintf("has %d rows, want %d", len(grid), n)})
	}
	for i, row := range grid {
		if len(row) != n {
			issues = append(issues, Issue{Error, field, fmt.Sprintf("row %d has %d entries, want %d", i, len(row), n)})
			continue
		}
		for j, v := range row {
			issues = append(issues, cell(field, i, j, v)...)
		}
	}
	return issues
}
