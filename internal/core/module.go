// Package core implements the paper's primary contribution: the
// extensible learning-module file format of Traffic Warehouse.
//
// A learning module is a JSON document an educator can write in a
// plain text editor. It names the lesson, sizes the traffic matrix,
// labels the axes, gives the matrix itself as a list of lists, gives
// a parallel color matrix (grey/blue/red for neutral, internal, and
// adversary space), and optionally attaches one three-choice multiple
// choice question. Lessons are zip files of such documents presented
// sequentially.
//
// The decoder is deliberately lenient about trailing commas — the
// paper's own listings contain them — while validation is strict
// about everything that would corrupt the in-game display.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/matrix"
	"repro/internal/quiz"
)

// Color values used in the traffic_matrix_colors field. The paper's
// pallet materials map 0→grey, 1→blue, 2→red; any other value
// renders as black in-game to flag an authoring mistake. Modules
// that opt into extended colors (the paper's "expanding the range of
// colors and materials" future-work item) additionally get 3→green,
// 4→yellow, 5→purple.
const (
	ColorGrey   = 0 // neutral / greyspace
	ColorBlue   = 1 // internal / blue space
	ColorRed    = 2 // adversary / red space
	ColorGreen  = 3 // extended: allied / partner space
	ColorYellow = 4 // extended: caution / under investigation
	ColorPurple = 5 // extended: honeypots / instrumentation
)

// MaxExtendedColor is the largest code valid under extended colors.
const MaxExtendedColor = ColorPurple

// ColorName returns the human-readable name of a color code, or
// "black" for unknown codes (matching the game's fallback material).
func ColorName(c int) string {
	switch c {
	case ColorGrey:
		return "grey"
	case ColorBlue:
		return "blue"
	case ColorRed:
		return "red"
	case ColorGreen:
		return "green"
	case ColorYellow:
		return "yellow"
	case ColorPurple:
		return "purple"
	default:
		return "black"
	}
}

// MaxDisplayPackets is the display guidance from the paper: "through
// testing it has been found that fewer than 15 packets between any
// source and destination displays well." The validator warns above
// it; nothing enforces it, matching "there is no hard limit in code".
const MaxDisplayPackets = 14

// Module is one learning module: the unit an educator authors and a
// student plays. Field names and JSON keys mirror the paper's schema
// exactly.
type Module struct {
	// Name is the lesson title shown in-game.
	Name string `json:"name"`
	// Size is the matrix size written as "NxN", e.g. "10x10". The
	// paper ships 6x6 and 10x10 templates.
	Size string `json:"size"`
	// Author credits the module author.
	Author string `json:"author"`
	// Hint optionally points the student at an explanatory external
	// resource, as the figure captions do.
	Hint string `json:"hint,omitempty"`
	// AxisLabels is the single list of labels applied to both the
	// vertical and horizontal axes. Shorter all-caps labels display
	// best.
	AxisLabels []string `json:"axis_labels"`
	// TrafficMatrix is the packet count between each source (row)
	// and destination (column), as a list of lists "to make it
	// intuitive for an educator to type out exactly what the student
	// will see".
	TrafficMatrix [][]int `json:"traffic_matrix"`
	// TrafficMatrixColors parallels TrafficMatrix with color codes
	// (ColorGrey, ColorBlue, ColorRed; through ColorPurple when
	// ExtendedColors is set).
	TrafficMatrixColors [][]int `json:"traffic_matrix_colors"`
	// ExtendedColors opts the module into the extended color range
	// (codes 3–5): the paper's "expanding the range of colors and
	// materials" future-work item.
	ExtendedColors bool `json:"extended_colors,omitempty"`
	// HasQuestion toggles the question: "the ability to toggle a
	// question on and off allows for a more interactive experience".
	HasQuestion bool `json:"has_question"`
	// Question is the multiple-choice prompt.
	Question string `json:"question,omitempty"`
	// Answers is the answer list; three options is the paper's
	// deliberate recommendation.
	Answers []string `json:"answers,omitempty"`
	// CorrectAnswerElement is the index into Answers of the correct
	// option. Ignored when CorrectAnswerDigest is set.
	CorrectAnswerElement int `json:"correct_answer_element"`
	// AnswerSalt and CorrectAnswerDigest implement the paper's
	// future-work "obfuscating question answers in the module
	// file": when the digest is present it identifies the correct
	// answer by salted hash instead of by index. See
	// Module.ObfuscateAnswer.
	AnswerSalt          string `json:"answer_salt,omitempty"`
	CorrectAnswerDigest string `json:"correct_answer_digest,omitempty"`
}

// ParseSize parses a "NxN" size string, accepting an optional
// "NxM" form for forward compatibility, and returns rows and cols.
func ParseSize(size string) (rows, cols int, err error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(size)), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("core: size %q is not of the form NxN", size)
	}
	rows, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("core: size %q has a non-numeric row count", size)
	}
	cols, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("core: size %q has a non-numeric column count", size)
	}
	if rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("core: size %q must be positive", size)
	}
	return rows, cols, nil
}

// FormatSize renders a square dimension as the module "NxN" string.
func FormatSize(n int) string { return fmt.Sprintf("%dx%d", n, n) }

// Dim returns the square dimension declared by the Size field. It
// returns an error for malformed or non-square sizes.
func (m *Module) Dim() (int, error) {
	rows, cols, err := ParseSize(m.Size)
	if err != nil {
		return 0, err
	}
	if rows != cols {
		return 0, fmt.Errorf("core: size %q is not square", m.Size)
	}
	return rows, nil
}

// Matrix returns the traffic matrix as a matrix.Dense. It returns an
// error for ragged rows.
func (m *Module) Matrix() (*matrix.Dense, error) {
	return matrix.FromRows(m.TrafficMatrix)
}

// Colors returns the color matrix as a matrix.Dense. It returns an
// error for ragged rows.
func (m *Module) Colors() (*matrix.Dense, error) {
	return matrix.FromRows(m.TrafficMatrixColors)
}

// Quiz returns the module's question in quiz form, resolving any
// answer obfuscation. The second return is false when the module has
// no active question or the correct answer cannot be resolved (the
// validator reports the latter as an error).
func (m *Module) Quiz() (quiz.Question, bool) {
	if !m.HasQuestion {
		return quiz.Question{}, false
	}
	correct, err := m.ResolveCorrect()
	if err != nil {
		return quiz.Question{}, false
	}
	return quiz.Question{
		Prompt:  m.Question,
		Answers: append([]string(nil), m.Answers...),
		Correct: correct,
	}, true
}

// TotalPackets returns the total packet count across the matrix.
func (m *Module) TotalPackets() int {
	total := 0
	for _, row := range m.TrafficMatrix {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	c := *m
	c.AxisLabels = append([]string(nil), m.AxisLabels...)
	c.Answers = append([]string(nil), m.Answers...)
	c.TrafficMatrix = cloneGrid(m.TrafficMatrix)
	c.TrafficMatrixColors = cloneGrid(m.TrafficMatrixColors)
	return &c
}

func cloneGrid(g [][]int) [][]int {
	if g == nil {
		return nil
	}
	out := make([][]int, len(g))
	for i, row := range g {
		out[i] = append([]int(nil), row...)
	}
	return out
}

// Equal reports whether two modules are structurally identical.
func (m *Module) Equal(o *Module) bool {
	if m.Name != o.Name || m.Size != o.Size || m.Author != o.Author ||
		m.Hint != o.Hint || m.HasQuestion != o.HasQuestion ||
		m.Question != o.Question || m.CorrectAnswerElement != o.CorrectAnswerElement ||
		m.AnswerSalt != o.AnswerSalt || m.CorrectAnswerDigest != o.CorrectAnswerDigest ||
		m.ExtendedColors != o.ExtendedColors {
		return false
	}
	if !equalStrings(m.AxisLabels, o.AxisLabels) || !equalStrings(m.Answers, o.Answers) {
		return false
	}
	return equalGrid(m.TrafficMatrix, o.TrafficMatrix) &&
		equalGrid(m.TrafficMatrixColors, o.TrafficMatrixColors)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalGrid(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
