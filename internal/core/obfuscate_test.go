package core

import (
	"strings"
	"testing"
)

func TestObfuscateAnswerRoundTrip(t *testing.T) {
	m := validModule()
	m.CorrectAnswerElement = 2
	wantText := m.Answers[2]
	if err := m.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	if !m.Obfuscated() {
		t.Fatal("module not marked obfuscated")
	}
	if m.CorrectAnswerElement != 0 {
		t.Error("plain index not cleared")
	}
	got, err := m.ResolveCorrect()
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[got] != wantText {
		t.Errorf("resolved %q, want %q", m.Answers[got], wantText)
	}
	// The quiz path resolves too.
	q, ok := m.Quiz()
	if !ok || q.CorrectText() != wantText {
		t.Errorf("Quiz resolution: ok=%v text=%q", ok, q.CorrectText())
	}
	// And the validator accepts the obfuscated module.
	if issues := m.Validate(); !issues.OK() {
		t.Errorf("obfuscated module invalid:\n%s", issues.Errs())
	}
}

func TestObfuscatedFileDoesNotRevealAnswer(t *testing.T) {
	m := validModule()
	m.Answers = []string{"alpha", "beta", "gamma"}
	m.CorrectAnswerElement = 1
	if err := m.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	// The digest field is present; no field names the correct index
	// and the digest does not contain the answer text.
	if !strings.Contains(text, "correct_answer_digest") {
		t.Error("digest missing from encoding")
	}
	if strings.Contains(m.CorrectAnswerDigest, "beta") {
		t.Error("digest leaks the answer text")
	}
	// Round trip through JSON keeps it resolvable.
	back, err := ParseModule(data)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := back.ResolveCorrect()
	if err != nil || back.Answers[idx] != "beta" {
		t.Errorf("post-JSON resolution: idx=%d err=%v", idx, err)
	}
}

func TestObfuscateDeterministicUnderSalt(t *testing.T) {
	a := validModule()
	a.AnswerSalt = "fixedsalt"
	if err := a.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	b := validModule()
	b.AnswerSalt = "fixedsalt"
	if err := b.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	if a.CorrectAnswerDigest != b.CorrectAnswerDigest {
		t.Error("same salt+answer produced different digests")
	}
	c := validModule()
	c.AnswerSalt = "othersalt"
	if err := c.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	if a.CorrectAnswerDigest == c.CorrectAnswerDigest {
		t.Error("different salts produced the same digest")
	}
}

func TestObfuscateErrors(t *testing.T) {
	m := validModule()
	m.HasQuestion = false
	if err := m.ObfuscateAnswer(); err == nil {
		t.Error("no-question module obfuscated")
	}
	m = validModule()
	m.CorrectAnswerElement = 9
	if err := m.ObfuscateAnswer(); err == nil {
		t.Error("out-of-range index obfuscated")
	}
}

func TestResolveCorrectTamperDetection(t *testing.T) {
	m := validModule()
	if err := m.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	// Editing the answers without re-obfuscating breaks resolution.
	m.Answers = []string{"7", "8", "9"}
	if _, err := m.ResolveCorrect(); err == nil {
		t.Error("tampered module resolved")
	}
	if issues := m.Validate(); issues.OK() {
		t.Error("validator accepted a tampered module")
	}
	// Quiz degrades to "no question" rather than guessing.
	if _, ok := m.Quiz(); ok {
		t.Error("Quiz returned a question it cannot grade")
	}
}

func TestResolveCorrectDuplicateMatchRejected(t *testing.T) {
	m := validModule()
	if err := m.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	correct, err := m.ResolveCorrect()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the correct answer text: two digests now match.
	dup := m.Answers[correct]
	m.Answers = []string{dup, dup, "other"}
	if _, err := m.ResolveCorrect(); err == nil {
		t.Error("ambiguous digest accepted")
	}
}

func TestObfuscatedModulePlaysInGame(t *testing.T) {
	// End-to-end: an obfuscated module must play and grade exactly
	// like its plain counterpart. (Game integration lives in the
	// game package; here we verify the quiz layer contract.)
	m := MustTemplate(10)
	if err := m.ObfuscateAnswer(); err != nil {
		t.Fatal(err)
	}
	q, ok := m.Quiz()
	if !ok {
		t.Fatal("quiz unavailable")
	}
	if q.CorrectText() != "2" {
		t.Errorf("correct text = %q, want 2", q.CorrectText())
	}
}
