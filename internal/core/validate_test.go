package core

import (
	"strings"
	"testing"
)

// validModule returns a minimal valid 2x2 module.
func validModule() *Module {
	return &Module{
		Name:                 "Valid",
		Size:                 "2x2",
		Author:               "T",
		AxisLabels:           []string{"A", "B"},
		TrafficMatrix:        [][]int{{0, 1}, {1, 0}},
		TrafficMatrixColors:  [][]int{{0, 0}, {0, 0}},
		HasQuestion:          true,
		Question:             "q?",
		Answers:              []string{"1", "2", "3"},
		CorrectAnswerElement: 0,
	}
}

func TestValidModulePasses(t *testing.T) {
	issues := validModule().Validate()
	if len(issues) != 0 {
		t.Errorf("valid module produced findings:\n%s", issues)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(*Module){
		"empty name":        func(m *Module) { m.Name = "  " },
		"bad size":          func(m *Module) { m.Size = "banana" },
		"non-square size":   func(m *Module) { m.Size = "2x3" },
		"label count":       func(m *Module) { m.AxisLabels = []string{"A"} },
		"empty label":       func(m *Module) { m.AxisLabels = []string{"A", " "} },
		"duplicate label":   func(m *Module) { m.AxisLabels = []string{"A", "A"} },
		"missing matrix":    func(m *Module) { m.TrafficMatrix = nil },
		"short matrix":      func(m *Module) { m.TrafficMatrix = [][]int{{0, 1}} },
		"ragged matrix":     func(m *Module) { m.TrafficMatrix = [][]int{{0, 1}, {1}} },
		"negative packets":  func(m *Module) { m.TrafficMatrix[0][1] = -1 },
		"missing colors":    func(m *Module) { m.TrafficMatrixColors = nil },
		"ragged colors":     func(m *Module) { m.TrafficMatrixColors = [][]int{{0}, {0, 0}} },
		"empty question":    func(m *Module) { m.Question = "" },
		"bad correct index": func(m *Module) { m.CorrectAnswerElement = 5 },
		"duplicate answers": func(m *Module) { m.Answers = []string{"1", "1", "2"} },
	}
	for name, mutate := range cases {
		m := validModule()
		mutate(m)
		if issues := m.Validate(); issues.OK() {
			t.Errorf("%s: no error reported", name)
		}
	}
}

func TestValidateWarnings(t *testing.T) {
	cases := map[string]func(*Module){
		"no author":       func(m *Module) { m.Author = "" },
		"long label":      func(m *Module) { m.AxisLabels[0] = "VERYLONGNAME" },
		"lowercase label": func(m *Module) { m.AxisLabels[0] = "ab" },
		"too many packets": func(m *Module) {
			m.TrafficMatrix[0][1] = MaxDisplayPackets + 1
		},
		"unknown color": func(m *Module) { m.TrafficMatrixColors[0][0] = 7 },
		"orphan question": func(m *Module) {
			m.HasQuestion = false
		},
		"answer count": func(m *Module) {
			m.Answers = []string{"1", "2", "3", "4"}
			m.CorrectAnswerElement = 3
		},
	}
	for name, mutate := range cases {
		m := validModule()
		mutate(m)
		issues := m.Validate()
		if !issues.OK() {
			t.Errorf("%s: produced errors, want warnings only:\n%s", name, issues.Errs())
		}
		if len(issues.Warnings()) == 0 {
			t.Errorf("%s: no warning reported", name)
		}
	}
}

// TestValidate15PacketBoundary pins the display-guidance boundary:
// 14 is fine, 15 warns ("fewer than 15 packets displays well").
func TestValidate15PacketBoundary(t *testing.T) {
	m := validModule()
	m.TrafficMatrix[0][1] = 14
	if len(m.Validate().Warnings()) != 0 {
		t.Error("14 packets warned")
	}
	m.TrafficMatrix[0][1] = 15
	if len(m.Validate().Warnings()) == 0 {
		t.Error("15 packets did not warn")
	}
}

func TestIssueFormatting(t *testing.T) {
	i := Issue{Severity: Error, Field: "size", Msg: "broken"}
	if got := i.String(); got != "error size: broken" {
		t.Errorf("Issue.String = %q", got)
	}
	w := Issue{Severity: Warning, Field: "author", Msg: "missing"}
	if !strings.HasPrefix(w.String(), "warning") {
		t.Errorf("warning prefix wrong: %q", w)
	}
}

func TestIssuesFiltering(t *testing.T) {
	issues := Issues{
		{Severity: Error, Field: "a", Msg: "x"},
		{Severity: Warning, Field: "b", Msg: "y"},
		{Severity: Error, Field: "c", Msg: "z"},
	}
	if len(issues.Errs()) != 2 || len(issues.Warnings()) != 1 {
		t.Error("severity filters wrong")
	}
	if issues.OK() {
		t.Error("OK with errors present")
	}
	if !(Issues{{Severity: Warning, Field: "b", Msg: "y"}}).OK() {
		t.Error("warnings alone should be OK")
	}
	if got := issues.String(); !strings.Contains(got, "\n") {
		t.Errorf("multi-issue String should be multi-line: %q", got)
	}
}

// TestValidateBadSizeStillChecksMatrix: with an invalid size, the
// validator falls back to the label count so matrix findings still
// surface.
func TestValidateBadSizeStillChecksMatrix(t *testing.T) {
	m := validModule()
	m.Size = "broken"
	m.TrafficMatrix = [][]int{{0, 1}} // also wrong
	issues := m.Validate()
	matrixFindings := 0
	for _, i := range issues.Errs() {
		if strings.Contains(i.Field, "traffic_matrix") {
			matrixFindings++
		}
	}
	if matrixFindings == 0 {
		t.Errorf("matrix errors suppressed by size error:\n%s", issues)
	}
}
