package course

import (
	"errors"
	"strings"
	"testing"
)

// The dir-backed player store holds course manifests as server-owned
// state, so a damaged file must surface as ErrCorrupt — never as a
// zero-value course or a generic decode error.
func TestParseRejectsCorruptManifests(t *testing.T) {
	valid := `{"name":"C","units":[{"name":"A","lessons":["l1"]}]}`
	cases := map[string]string{
		"garbage":       "not a manifest",
		"empty":         "",
		"whitespace":    " \n\t ",
		"truncated":     valid[:len(valid)/2],
		"wrong type":    `{"name":"C","units":"none"}`,
		"unknown field": `{"name":"C","bogus":1,"units":[{"name":"A","lessons":["l1"]}]}`,
		"double doc":    valid + "\n" + valid,
		"bare number":   "42 43",
	}
	for name, src := range cases {
		c, err := Parse([]byte(src))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if c != nil {
			t.Errorf("%s: returned a course alongside the error", name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

// Semantic failures — readable JSON that is not a usable course —
// keep their specific diagnoses and do not claim corruption.
func TestParseSemanticErrorsAreNotCorrupt(t *testing.T) {
	cases := map[string]string{
		"no units":       `{"name":"C","units":[]}`,
		"no name":        `{"units":[{"name":"A","lessons":["l1"]}]}`,
		"unknown prereq": `{"name":"C","units":[{"name":"A","lessons":["l1"],"requires":["Z"]}]}`,
		"cycle": `{"name":"C","units":[
			{"name":"A","lessons":["l1"],"requires":["B"]},
			{"name":"B","lessons":["l2"],"requires":["A"]}]}`,
	}
	for name, src := range cases {
		_, err := Parse([]byte(src))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: semantic error %v claims corruption", name, err)
		}
		if !strings.HasPrefix(err.Error(), "course:") {
			t.Errorf("%s: error %v lost the package prefix", name, err)
		}
	}
}
