package course

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// sampleManifest mirrors the built-in curriculum's natural
// hierarchy, with the paper-style trailing commas.
const sampleManifest = `{
	// gate threats behind the basics
	"name": "Traffic Matrices 101",
	"author": "An Educator",
	"units": [
		{"name": "Basics", "lessons": ["training", "topologies",],},
		{"name": "Threats", "lessons": ["attack", "ddos",], "requires": ["Basics",],},
		{"name": "Theory", "lessons": ["graph-theory",], "requires": ["Basics",],},
		{"name": "Capstone", "lessons": ["curriculum",], "requires": ["Threats", "Theory",],},
	],
}`

func TestParseManifest(t *testing.T) {
	c, err := Parse([]byte(sampleManifest))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "Traffic Matrices 101" || len(c.Units) != 4 {
		t.Errorf("parsed: %+v", c)
	}
	u, ok := c.Unit("Threats")
	if !ok || len(u.Lessons) != 2 || u.Requires[0] != "Basics" {
		t.Errorf("Threats unit = %+v", u)
	}
	if _, ok := c.Unit("Nope"); ok {
		t.Error("unknown unit found")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]string{
		"no name":        `{"units":[{"name":"A","lessons":["x"]}]}`,
		"no units":       `{"name":"C","units":[]}`,
		"unnamed unit":   `{"name":"C","units":[{"name":"","lessons":["x"]}]}`,
		"dup unit":       `{"name":"C","units":[{"name":"A","lessons":["x"]},{"name":"A","lessons":["y"]}]}`,
		"no lessons":     `{"name":"C","units":[{"name":"A","lessons":[]}]}`,
		"empty lesson":   `{"name":"C","units":[{"name":"A","lessons":[""]}]}`,
		"unknown prereq": `{"name":"C","units":[{"name":"A","lessons":["x"],"requires":["Ghost"]}]}`,
		"self prereq":    `{"name":"C","units":[{"name":"A","lessons":["x"],"requires":["A"]}]}`,
		"unknown field":  `{"name":"C","unitz":[]}`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	src := `{"name":"C","units":[
		{"name":"A","lessons":["x"],"requires":["B"]},
		{"name":"B","lessons":["y"],"requires":["A"]}
	]}`
	_, err := Parse([]byte(src))
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestOrderTopological(t *testing.T) {
	c, err := Parse([]byte(sampleManifest))
	if err != nil {
		t.Fatal(err)
	}
	order, err := c.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, u := range order {
		pos[u.Name] = i
	}
	if pos["Basics"] > pos["Threats"] || pos["Basics"] > pos["Theory"] {
		t.Errorf("prerequisites out of order: %v", pos)
	}
	if pos["Capstone"] != 3 {
		t.Errorf("capstone not last: %v", pos)
	}
}

// fakeLoader returns a tiny valid lesson for any known ref.
func fakeLoader(t *testing.T) Loader {
	t.Helper()
	return func(ref string) (*core.Lesson, error) {
		m := core.MustTemplate(6)
		m.Name = "Lesson " + ref
		return &core.Lesson{Name: ref, Modules: []*core.Module{m}}, nil
	}
}

func TestResolveAll(t *testing.T) {
	c, err := Parse([]byte(sampleManifest))
	if err != nil {
		t.Fatal(err)
	}
	lessons, err := c.ResolveAll(fakeLoader(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(lessons["Basics"]) != 2 || len(lessons["Capstone"]) != 1 {
		t.Errorf("resolution counts wrong: %v", lessons)
	}
}

func TestResolveAllSurfacesBadLessons(t *testing.T) {
	c, err := Parse([]byte(`{"name":"C","units":[{"name":"A","lessons":["bad"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	load := func(ref string) (*core.Lesson, error) {
		bad := core.MustTemplate(6)
		bad.Name = "" // invalid
		return &core.Lesson{Name: ref, Modules: []*core.Module{bad}}, nil
	}
	if _, err := c.ResolveAll(load); err == nil {
		t.Error("invalid lesson accepted")
	}
}

func TestProgressUnlocking(t *testing.T) {
	c, err := Parse([]byte(sampleManifest))
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgress(c)
	if !p.Unlocked("Basics") || p.Unlocked("Threats") || p.Unlocked("Capstone") {
		t.Error("initial unlock state wrong")
	}
	if got := names(p.Available()); got != "Basics" {
		t.Errorf("available = %q", got)
	}
	// Completing a locked unit is rejected.
	if err := p.Complete("Capstone"); err == nil {
		t.Error("locked unit completed")
	}
	if err := p.Complete("Basics"); err != nil {
		t.Fatal(err)
	}
	if got := names(p.Available()); got != "Threats,Theory" {
		t.Errorf("available = %q", got)
	}
	if err := p.Complete("Threats"); err != nil {
		t.Fatal(err)
	}
	if p.Unlocked("Capstone") {
		t.Error("capstone unlocked with Theory incomplete")
	}
	if err := p.Complete("Theory"); err != nil {
		t.Fatal(err)
	}
	if err := p.Complete("Capstone"); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Error("course not done after all units")
	}
}

func names(units []Unit) string {
	var out []string
	for _, u := range units {
		out = append(out, u.Name)
	}
	return strings.Join(out, ",")
}

func TestProgressUnknownUnit(t *testing.T) {
	c, _ := Parse([]byte(sampleManifest))
	p := NewProgress(c)
	if err := p.Complete("Ghost"); err == nil {
		t.Error("unknown unit completed")
	}
	if p.Unlocked("Ghost") {
		t.Error("unknown unit unlocked")
	}
}

func TestOutlineAndSummary(t *testing.T) {
	c, _ := Parse([]byte(sampleManifest))
	outline := c.Outline()
	for _, want := range []string{"Traffic Matrices 101", "Basics", "requires Basics", "- training"} {
		if !strings.Contains(outline, want) {
			t.Errorf("outline missing %q:\n%s", want, outline)
		}
	}
	p := NewProgress(c)
	_ = p.Complete("Basics")
	summary := p.Summary()
	if !strings.Contains(summary, "completed: Basics") ||
		!strings.Contains(summary, "locked:    Capstone") {
		t.Errorf("summary wrong:\n%s", summary)
	}
}

func TestFileAwareLoaderFallsBack(t *testing.T) {
	calls := 0
	load := FileAwareLoader(func(ref string) (*core.Lesson, error) {
		calls++
		return &core.Lesson{Name: ref, Modules: []*core.Module{core.MustTemplate(6)}}, nil
	})
	if _, err := load("training"); err != nil || calls != 1 {
		t.Errorf("by-name fallback not used: calls=%d err=%v", calls, err)
	}
	if _, err := load("/definitely/missing/lesson.zip"); err == nil {
		t.Error("missing zip accepted")
	}
}
