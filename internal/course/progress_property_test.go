package course

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomCourse builds a valid course of n units with random forward
// prerequisites: unit i may only require units j < i, so the result
// is acyclic by construction and always passes Validate.
func randomCourse(rng *rand.Rand, n int) *Course {
	c := &Course{Name: "random"}
	for i := 0; i < n; i++ {
		u := Unit{Name: fmt.Sprintf("u%d", i), Lessons: []string{"l"}}
		for j := 0; j < i; j++ {
			if rng.Intn(3) == 0 {
				u.Requires = append(u.Requires, fmt.Sprintf("u%d", j))
			}
		}
		c.Units = append(c.Units, u)
	}
	return c
}

// checkInvariants asserts the Complete/Unlocked/Available contract on
// a progress snapshot: every completed unit's prerequisites are
// completed, Available is exactly unlocked-and-not-completed in
// authored order, and Done agrees with the completed set.
func checkInvariants(t *testing.T, c *Course, p *Progress) {
	t.Helper()
	for _, u := range c.Units {
		if p.Completed(u.Name) {
			for _, req := range u.Requires {
				if !p.Completed(req) {
					t.Fatalf("unit %s completed while prerequisite %s is not", u.Name, req)
				}
			}
			if !p.Unlocked(u.Name) {
				t.Fatalf("unit %s completed but reports locked", u.Name)
			}
		}
	}
	var wantAvail []string
	allDone := true
	for _, u := range c.Units {
		if !p.Completed(u.Name) {
			allDone = false
			if p.Unlocked(u.Name) {
				wantAvail = append(wantAvail, u.Name)
			}
		}
	}
	avail := p.Available()
	if len(avail) != len(wantAvail) {
		t.Fatalf("Available() = %d units, want %d", len(avail), len(wantAvail))
	}
	for i, u := range avail {
		if u.Name != wantAvail[i] {
			t.Fatalf("Available()[%d] = %s, want %s (authored order)", i, u.Name, wantAvail[i])
		}
	}
	if p.Done() != allDone {
		t.Fatalf("Done() = %v with %d/%d units completed", p.Done(), len(c.Units)-len(wantAvail), len(c.Units))
	}
}

// TestProgressInvariantsUnderAnyOrder drives random courses with
// random completion attempts — legal and illegal alike — and checks
// after every attempt that the progress invariants hold: Complete
// succeeds exactly when the unit is known and unlocked, a rejected
// Complete changes nothing, and hammering random orders always
// terminates with every unit completed (no course is ever wedged).
func TestProgressInvariantsUnderAnyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		c := randomCourse(rng, 1+rng.Intn(9))
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: random course invalid: %v", trial, err)
		}
		p := NewProgress(c)
		checkInvariants(t, c, p)
		for attempts := 0; !p.Done(); attempts++ {
			if attempts > 10_000 {
				t.Fatalf("trial %d: progress wedged", trial)
			}
			u := c.Units[rng.Intn(len(c.Units))]
			// Occasionally attack with an unknown unit too.
			name := u.Name
			if rng.Intn(10) == 0 {
				name = "nope"
			}
			legal := name != "nope" && p.Unlocked(name)
			alreadyDone := name != "nope" && p.Completed(name)
			err := p.Complete(name)
			switch {
			case err != nil && legal:
				t.Fatalf("trial %d: Complete(%s) rejected while unlocked: %v", trial, name, err)
			case err == nil && !legal:
				t.Fatalf("trial %d: Complete(%s) accepted while locked or unknown", trial, name)
			case err == nil && alreadyDone:
				// Re-completing a done unit is a no-op; fine.
			}
			checkInvariants(t, c, p)
		}
	}
}

// TestProgressTopologicalOrderAlwaysCompletes pins that completing in
// the deterministic Order() sequence never hits a locked unit — the
// replay path the player store uses to rebuild a persisted snapshot.
func TestProgressTopologicalOrderAlwaysCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		c := randomCourse(rng, 1+rng.Intn(12))
		order, err := c.Order()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p := NewProgress(c)
		for _, u := range order {
			if err := p.Complete(u.Name); err != nil {
				t.Fatalf("trial %d: topo replay hit a locked unit: %v", trial, err)
			}
		}
		if !p.Done() {
			t.Fatalf("trial %d: topo replay did not finish the course", trial)
		}
	}
}
