// Package course implements the paper's future-work "hierarchical
// learning modules": a course manifest groups lessons into named
// units with prerequisites, so an educator can gate the DDoS module
// set behind the basic-topologies set. Manifests are JSON with the
// same editing ergonomics as learning modules (trailing commas and
// comments tolerated), lessons are referenced by built-in name or by
// zip/directory path, and progression is tracked per student.
package course

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
)

// ErrCorrupt marks a course document that cannot be decoded at all —
// truncated, malformed, or structurally not a manifest. Parse wraps
// every decode failure with it (semantic validation failures keep
// their specific errors), so a caller holding manifests as
// server-owned state (the player layer's dir-backed store) can tell a
// damaged file from an invalid-but-readable one with errors.Is.
var ErrCorrupt = errors.New("course: corrupt manifest")

// Unit is one named group of lessons with optional prerequisites.
type Unit struct {
	// Name identifies the unit (unique within the course).
	Name string `json:"name"`
	// Description is shown to the student.
	Description string `json:"description,omitempty"`
	// Lessons are lesson references: built-in lesson names or paths
	// to lesson zips/directories, resolved by a Loader.
	Lessons []string `json:"lessons"`
	// Requires lists unit names that must be completed first.
	Requires []string `json:"requires,omitempty"`
}

// Course is a full manifest.
type Course struct {
	// Name titles the course.
	Name string `json:"name"`
	// Author credits the course author.
	Author string `json:"author,omitempty"`
	// Units are the course's units in authored order.
	Units []Unit `json:"units"`
}

// Parse decodes a course manifest, tolerating trailing commas and
// comments like the module format, and validates it.
func Parse(src []byte) (*Course, error) {
	if len(strings.TrimSpace(string(src))) == 0 {
		return nil, fmt.Errorf("%w: empty document", ErrCorrupt)
	}
	var c Course
	if err := core.DecodeLenient(src, &c); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadFile reads and parses a manifest from disk.
func LoadFile(path string) (*Course, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("course: load: %w", err)
	}
	return Parse(data)
}

// Validate checks structure: non-empty name and units, unique unit
// names, every lesson reference non-empty, every prerequisite known,
// and no dependency cycles.
func (c *Course) Validate() error {
	if strings.TrimSpace(c.Name) == "" {
		return fmt.Errorf("course: missing name")
	}
	if len(c.Units) == 0 {
		return fmt.Errorf("course: no units")
	}
	seen := make(map[string]bool, len(c.Units))
	for i, u := range c.Units {
		if strings.TrimSpace(u.Name) == "" {
			return fmt.Errorf("course: unit %d has no name", i)
		}
		if seen[u.Name] {
			return fmt.Errorf("course: duplicate unit %q", u.Name)
		}
		seen[u.Name] = true
		if len(u.Lessons) == 0 {
			return fmt.Errorf("course: unit %q has no lessons", u.Name)
		}
		for _, l := range u.Lessons {
			if strings.TrimSpace(l) == "" {
				return fmt.Errorf("course: unit %q has an empty lesson reference", u.Name)
			}
		}
	}
	for _, u := range c.Units {
		for _, req := range u.Requires {
			if !seen[req] {
				return fmt.Errorf("course: unit %q requires unknown unit %q", u.Name, req)
			}
			if req == u.Name {
				return fmt.Errorf("course: unit %q requires itself", u.Name)
			}
		}
	}
	if _, err := c.Order(); err != nil {
		return err
	}
	return nil
}

// Unit returns a unit by name.
func (c *Course) Unit(name string) (Unit, bool) {
	for _, u := range c.Units {
		if u.Name == name {
			return u, true
		}
	}
	return Unit{}, false
}

// Order returns the units in a deterministic topological order
// (prerequisites first, authored order among ready units). It
// errors on dependency cycles, naming the units involved.
func (c *Course) Order() ([]Unit, error) {
	remaining := make(map[string]Unit, len(c.Units))
	pending := make(map[string]int, len(c.Units)) // unmet prereq count
	for _, u := range c.Units {
		remaining[u.Name] = u
		pending[u.Name] = len(u.Requires)
	}
	var order []Unit
	done := make(map[string]bool, len(c.Units))
	for len(order) < len(c.Units) {
		progressed := false
		for _, u := range c.Units { // authored order for determinism
			if done[u.Name] || pending[u.Name] > 0 {
				continue
			}
			order = append(order, u)
			done[u.Name] = true
			progressed = true
			for _, other := range c.Units {
				if done[other.Name] {
					continue
				}
				for _, req := range other.Requires {
					if req == u.Name {
						pending[other.Name]--
					}
				}
			}
		}
		if !progressed {
			var stuck []string
			for name, n := range pending {
				if !done[name] && n > 0 {
					stuck = append(stuck, name)
				}
			}
			sort.Strings(stuck)
			return nil, fmt.Errorf("course: dependency cycle among units: %s", strings.Join(stuck, ", "))
		}
	}
	return order, nil
}

// Loader resolves a lesson reference into a lesson. The game wires
// this to the built-in library plus zip/directory loading; tests
// inject fakes.
type Loader func(ref string) (*core.Lesson, error)

// FileAwareLoader wraps a by-name loader with zip and directory
// resolution: references ending in .zip load as lesson zips, paths
// that are directories load as module directories, and anything else
// goes to the by-name loader.
func FileAwareLoader(byName Loader) Loader {
	return func(ref string) (*core.Lesson, error) {
		if strings.HasSuffix(strings.ToLower(ref), ".zip") {
			return core.LoadZipFile(ref)
		}
		if info, err := os.Stat(ref); err == nil && info.IsDir() {
			return core.LoadDir(ref)
		}
		return byName(ref)
	}
}

// ResolveAll loads every lesson of every unit, returning an error
// with the unit and reference on failure. The result maps unit name
// to its lessons in order.
func (c *Course) ResolveAll(load Loader) (map[string][]*core.Lesson, error) {
	out := make(map[string][]*core.Lesson, len(c.Units))
	for _, u := range c.Units {
		for _, ref := range u.Lessons {
			lesson, err := load(ref)
			if err != nil {
				return nil, fmt.Errorf("course: unit %q lesson %q: %w", u.Name, ref, err)
			}
			if issues := lesson.Validate(); !issues.OK() {
				return nil, fmt.Errorf("course: unit %q lesson %q invalid:\n%s", u.Name, ref, issues.Errs())
			}
			out[u.Name] = append(out[u.Name], lesson)
		}
	}
	return out, nil
}

// Outline renders the course structure as indented text.
func (c *Course) Outline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", c.Name)
	if c.Author != "" {
		fmt.Fprintf(&b, " — %s", c.Author)
	}
	b.WriteByte('\n')
	order, err := c.Order()
	if err != nil {
		order = c.Units
	}
	for _, u := range order {
		fmt.Fprintf(&b, "  %s", u.Name)
		if len(u.Requires) > 0 {
			fmt.Fprintf(&b, " (requires %s)", strings.Join(u.Requires, ", "))
		}
		b.WriteByte('\n')
		for _, l := range u.Lessons {
			fmt.Fprintf(&b, "    - %s\n", l)
		}
	}
	return b.String()
}
