package course

import (
	"fmt"
	"sort"
	"strings"
)

// Progress tracks one student's position in a course: which units
// are completed and therefore which are unlocked.
type Progress struct {
	course    *Course
	completed map[string]bool
}

// NewProgress starts tracking for the course.
func NewProgress(c *Course) *Progress {
	return &Progress{course: c, completed: make(map[string]bool)}
}

// Completed reports whether a unit is done.
func (p *Progress) Completed(unit string) bool { return p.completed[unit] }

// Unlocked reports whether all of a unit's prerequisites are done.
func (p *Progress) Unlocked(unit string) bool {
	u, ok := p.course.Unit(unit)
	if !ok {
		return false
	}
	for _, req := range u.Requires {
		if !p.completed[req] {
			return false
		}
	}
	return true
}

// Available returns the units the student can start now (unlocked
// and not yet completed), in authored order.
func (p *Progress) Available() []Unit {
	var out []Unit
	for _, u := range p.course.Units {
		if !p.completed[u.Name] && p.Unlocked(u.Name) {
			out = append(out, u)
		}
	}
	return out
}

// Complete marks a unit done. It errors when the unit is unknown or
// still locked — completing a locked unit would corrupt the
// hierarchy's meaning.
func (p *Progress) Complete(unit string) error {
	if _, ok := p.course.Unit(unit); !ok {
		return fmt.Errorf("course: unknown unit %q", unit)
	}
	if !p.Unlocked(unit) {
		return fmt.Errorf("course: unit %q is locked (prerequisites incomplete)", unit)
	}
	p.completed[unit] = true
	return nil
}

// Done reports whether every unit is completed.
func (p *Progress) Done() bool {
	for _, u := range p.course.Units {
		if !p.completed[u.Name] {
			return false
		}
	}
	return true
}

// Summary renders the student's progress.
func (p *Progress) Summary() string {
	var b strings.Builder
	var done, locked, open []string
	for _, u := range p.course.Units {
		switch {
		case p.completed[u.Name]:
			done = append(done, u.Name)
		case p.Unlocked(u.Name):
			open = append(open, u.Name)
		default:
			locked = append(locked, u.Name)
		}
	}
	sort.Strings(done)
	fmt.Fprintf(&b, "completed: %s\n", orNone(done))
	fmt.Fprintf(&b, "available: %s\n", orNone(open))
	fmt.Fprintf(&b, "locked:    %s\n", orNone(locked))
	return b.String()
}

func orNone(names []string) string {
	if len(names) == 0 {
		return "(none)"
	}
	return strings.Join(names, ", ")
}
