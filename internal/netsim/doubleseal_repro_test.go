package netsim

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

type sealRaceScenario struct{}

func (sealRaceScenario) Name() string                      { return "sealrace" }
func (sealRaceScenario) Description() string               { return "repro" }
func (sealRaceScenario) Shape() string                     { return "repro" }
func (sealRaceScenario) Chunks(net *Network, p Params) int { return int(p.Duration) }
func (sealRaceScenario) ChunkSpan(net *Network, p Params, k int) (float64, float64) {
	return float64(k), float64(k) + 0.5
}
func (sealRaceScenario) Emit(net *Network, rng *rand.Rand, p Params, k int, emit func(Event)) error {
	hosts := net.Labels()
	for i := 0; i < 2000; i++ {
		emit(Event{Time: float64(k) + 0.25, Src: hosts[rng.Intn(len(hosts))], Dst: hosts[1], Packets: 1})
	}
	return nil
}

func TestStreamCSRDoubleSealRepro(t *testing.T) {
	s := sealRaceScenario{}
	net := StandardNetwork()
	boom := errors.New("boom")
	for i := 0; i < 300; i++ {
		_, _, err := StreamCSR(context.Background(), s, net, 1, 8, Params{Duration: 256, Rate: 1}, 1, 0,
			func(k int, w SparseWindow) error {
				if k >= 4 {
					return boom
				}
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
}
