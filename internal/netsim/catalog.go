package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params configures one scenario run. Zero values select sensible
// defaults, so Params{} is always runnable on any network a scenario
// accepts.
type Params struct {
	// Duration is the scenario length in seconds (default 40).
	Duration float64
	// Rate is the intensity hint in events per second for the
	// scenarios that stream open-ended traffic (default 4). Scripted
	// scenarios with fixed casts (attack, ddos, worm) ignore it.
	Rate float64
	// Scale multiplies the scenario's volume by repeating its script
	// (default 1). Scaled repetitions shard cleanly across workers.
	Scale int
}

// validate rejects parameter fields no scenario arithmetic can give
// meaning to: NaN and ±Inf durations or rates.
func (p Params) validate() error {
	if math.IsNaN(p.Duration) || math.IsInf(p.Duration, 0) {
		return fmt.Errorf("netsim: duration must be finite, got %g", p.Duration)
	}
	if math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
		return fmt.Errorf("netsim: rate must be finite, got %g", p.Rate)
	}
	return nil
}

// Normalized returns the parameters a run actually executes with:
// zero fields replaced by the documented defaults. Two Params with
// the same Normalized form configure identical runs, which is what
// lets the api layer use the normalized form in cache keys.
func (p Params) Normalized() Params { return p.withDefaults() }

// withDefaults fills zero fields with the documented defaults.
func (p Params) withDefaults() Params {
	if p.Duration <= 0 {
		p.Duration = 40
	}
	if p.Rate <= 0 {
		p.Rate = 4
	}
	if p.Scale < 1 {
		p.Scale = 1
	}
	return p
}

// Scenario is a pluggable traffic script. Instead of returning one
// monolithic trace, a scenario partitions its workload into
// independent chunks; each chunk is generated with its own
// deterministically seeded RNG, so any assignment of chunks to
// workers accumulates the same aggregate traffic matrix. This is the
// contract that makes parallel generation reproducible: the engine
// may run chunks in any order on any number of goroutines.
type Scenario interface {
	// Name is the catalog key ("ddos", "worm", …).
	Name() string
	// Description is a one-line summary for catalog listings.
	Description() string
	// Shape names the traffic-matrix pattern the scenario draws —
	// the concept a student should recognize in the aggregate.
	Shape() string
	// Chunks returns the number of independent generation units for
	// the configuration. It must be ≥ 1 and must not depend on
	// worker count.
	Chunks(net *Network, p Params) int
	// Emit generates chunk k's events through emit. It must derive
	// all randomness from rng and must not retain state across
	// calls: chunk k's output is a pure function of (net, p, k) and
	// the rng it is handed.
	Emit(net *Network, rng *rand.Rand, p Params, chunk int, emit func(Event)) error
}

// ChunkSpanner is optionally implemented by scenarios whose chunks
// are time-local: ChunkSpan reports a conservative bound [start, end]
// on the event timestamps chunk k can emit under the given
// configuration. The streaming engine (stream.go) uses spans to seal
// aggregation windows early — a window closes once every chunk whose
// span overlaps it has finished — so a span must always cover the
// chunk's real emissions: padding is safe and merely delays sealing,
// while an under-reported span would silently drop traffic from
// already-finalized windows (the parity suite would catch it).
// Scenarios without spans are treated as able to emit at any time,
// which keeps them correct in a stream at the cost of sealing every
// window only when the run completes.
type ChunkSpanner interface {
	ChunkSpan(net *Network, p Params, chunk int) (start, end float64)
}

// chunkSpan resolves a chunk's conservative time bounds: the
// scenario's own when it publishes them, the whole timeline (and
// beyond) otherwise.
func chunkSpan(s Scenario, net *Network, p Params, chunk int) (start, end float64) {
	if sp, ok := s.(ChunkSpanner); ok {
		return sp.ChunkSpan(net, p, chunk)
	}
	return 0, math.Inf(1)
}

// Phase is one labeled interval of a scripted scenario's timeline:
// the ground truth an analyst exercise grades against.
type Phase struct {
	// Label names the phase (an attack stage, a DDoS component…).
	Label string
	// Start and End bound the phase in seconds.
	Start, End float64
}

// Scheduler is implemented by scenarios whose script follows a fixed
// phase timeline. The engine and twsim surface the schedule as
// ground truth next to the classifier's reading.
type Scheduler interface {
	Schedule(p Params) []Phase
}

// registry holds the catalog keyed by name.
var registry = map[string]Scenario{}

// Register adds a scenario to the catalog, rejecting empty and
// duplicate names.
func Register(s Scenario) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("netsim: scenario with empty name")
	}
	if _, dup := registry[name]; dup {
		return fmt.Errorf("netsim: duplicate scenario %q", name)
	}
	registry[name] = s
	return nil
}

// mustRegister registers the built-in catalog at init time.
func mustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// LookupScenario finds a catalog entry by name.
func LookupScenario(name string) (Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// Scenarios returns the catalog sorted by name.
func Scenarios() []Scenario {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Scenario, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

func init() {
	mustRegister(backgroundScenario{})
	mustRegister(scanScenario{})
	mustRegister(attackScenario{})
	mustRegister(ddosScenario{})
	mustRegister(wormScenario{})
	mustRegister(exfilScenario{})
	mustRegister(flashCrowdScenario{})
	mustRegister(beaconScenario{})
}
