package netsim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/patterns"
)

func TestCatalogCompleteAndSorted(t *testing.T) {
	all := Scenarios()
	if len(all) < 8 {
		t.Fatalf("catalog has %d scenarios, want ≥ 8", len(all))
	}
	for i, s := range all {
		if s.Name() == "" || s.Description() == "" || s.Shape() == "" {
			t.Errorf("scenario %d has empty metadata: %+v", i, s)
		}
		if i > 0 && all[i-1].Name() >= s.Name() {
			t.Errorf("catalog not sorted: %q before %q", all[i-1].Name(), s.Name())
		}
	}
	for _, name := range []string{"background", "scan", "attack", "ddos", "worm", "exfil", "flashcrowd", "beacon"} {
		s, ok := LookupScenario(name)
		if !ok {
			t.Errorf("LookupScenario(%q) missing", name)
			continue
		}
		if s.Name() != name {
			t.Errorf("LookupScenario(%q).Name() = %q", name, s.Name())
		}
	}
	if _, ok := LookupScenario("nope"); ok {
		t.Error("unknown scenario found")
	}
}

func TestRegisterRejectsBadScenarios(t *testing.T) {
	if err := Register(scanScenario{}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(emptyNameScenario{}); err == nil {
		t.Error("empty name accepted")
	}
}

// emptyNameScenario exercises Register's name validation.
type emptyNameScenario struct{ scanScenario }

func (emptyNameScenario) Name() string { return "" }

// TestGenerationDeterministicAcrossWorkers is the contract the
// concurrent engine exists to honour: for every catalog scenario,
// the trace and the aggregate matrix must be identical whether
// generated on one worker or many.
func TestGenerationDeterministicAcrossWorkers(t *testing.T) {
	net := StandardNetwork()
	p := Params{Duration: 20, Rate: 6, Scale: 3}
	const seed = 1234
	for _, s := range Scenarios() {
		serialTrace, err := GenerateTrace(s, net, seed, 1, p)
		if err != nil {
			t.Fatalf("%s: serial trace: %v", s.Name(), err)
		}
		if len(serialTrace) == 0 {
			t.Fatalf("%s: empty trace", s.Name())
		}
		serialCOO, serialStats, err := GenerateMatrix(s, net, seed, 1, p)
		if err != nil {
			t.Fatalf("%s: serial matrix: %v", s.Name(), err)
		}
		for _, workers := range []int{2, 7, 0} { // 0 = NumCPU
			trace, err := GenerateTrace(s, net, seed, workers, p)
			if err != nil {
				t.Fatalf("%s: %d-worker trace: %v", s.Name(), workers, err)
			}
			if !reflect.DeepEqual(trace, serialTrace) {
				t.Fatalf("%s: %d-worker trace differs from serial", s.Name(), workers)
			}
			coo, stats, err := GenerateMatrix(s, net, seed, workers, p)
			if err != nil {
				t.Fatalf("%s: %d-worker matrix: %v", s.Name(), workers, err)
			}
			if stats != serialStats {
				t.Fatalf("%s: %d-worker stats %+v differ from serial %+v", s.Name(), workers, stats, serialStats)
			}
			if !reflect.DeepEqual(coo.Entries(), serialCOO.Entries()) {
				t.Fatalf("%s: %d-worker matrix differs from serial", s.Name(), workers)
			}
		}
	}
}

// TestGenerateMatrixMatchesTrace checks the two generation paths
// agree: aggregating the trace must give the same dense matrix as
// the sharded COO accumulation.
func TestGenerateMatrixMatchesTrace(t *testing.T) {
	net := StandardNetwork()
	p := Params{Duration: 30, Rate: 5, Scale: 2}
	for _, s := range Scenarios() {
		trace, err := GenerateTrace(s, net, 99, 4, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		fromTrace, dropped := trace.Matrix(net)
		coo, stats, err := GenerateMatrix(s, net, 99, 4, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !fromTrace.Equal(coo.ToDense()) {
			t.Errorf("%s: COO aggregate differs from trace aggregate", s.Name())
		}
		if stats.Events != len(trace) || stats.Dropped != dropped {
			t.Errorf("%s: stats %+v vs trace events=%d dropped=%d", s.Name(), stats, len(trace), dropped)
		}
		if stats.Packets != trace.TotalPackets() {
			t.Errorf("%s: stats packets %d vs trace %d", s.Name(), stats.Packets, trace.TotalPackets())
		}
	}
}

// TestScaleMultipliesVolume checks the Scale knob adds volume
// without stretching the timeline.
func TestScaleMultipliesVolume(t *testing.T) {
	net := StandardNetwork()
	s, _ := LookupScenario("ddos")
	_, one, err := GenerateMatrix(s, net, 5, 2, Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, four, err := GenerateMatrix(s, net, 5, 2, Params{Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.Events != 4*one.Events {
		t.Errorf("scale 4 events = %d, want %d", four.Events, 4*one.Events)
	}
	trace, err := GenerateTrace(s, net, 5, 2, Params{Duration: 40, Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := trace.Duration(); d > 40.5 {
		t.Errorf("scaled trace duration %.1f exceeds timeline", d)
	}
}

// TestNewScenarioShapesClassify is the round-trip for the extended
// catalog: each new scenario's aggregate matrix must classify as the
// behaviour it scripts.
func TestNewScenarioShapesClassify(t *testing.T) {
	net := StandardNetwork()
	zones, err := net.Zones()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]patterns.Behavior{
		"worm":       patterns.BehaviorWorm,
		"exfil":      patterns.BehaviorExfiltration,
		"flashcrowd": patterns.BehaviorFlashCrowd,
		"beacon":     patterns.BehaviorBeaconing,
	}
	for name, behavior := range want {
		s, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		coo, _, err := GenerateMatrix(s, net, 31, 4, Params{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, conf := patterns.ClassifyBehavior(coo.ToDense(), zones)
		if got != behavior {
			t.Errorf("%s classified as %v (%.2f), want %v", name, got, conf, behavior)
		}
		if conf < 0.8 {
			t.Errorf("%s confidence %.2f, want ≥ 0.8", name, conf)
		}
	}
	// The flash crowd is also the live internal supernode of Fig 6c.
	s, _ := LookupScenario("flashcrowd")
	coo, _, err := GenerateMatrix(s, net, 31, 4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if kind := patterns.ClassifyTopology(coo.ToDense(), zones); kind != patterns.TopologyInternalSupernode {
		t.Errorf("flashcrowd topology = %v, want internal supernode", kind)
	}
}

// TestSchedulerGroundTruth checks the scripted scenarios expose a
// contiguous phase timeline covering the whole duration.
func TestSchedulerGroundTruth(t *testing.T) {
	p := Params{Duration: 40}
	for _, name := range []string{"attack", "ddos"} {
		s, _ := LookupScenario(name)
		sched, ok := s.(Scheduler)
		if !ok {
			t.Fatalf("%s does not implement Scheduler", name)
		}
		phases := sched.Schedule(p)
		if len(phases) != 4 {
			t.Fatalf("%s: %d phases, want 4", name, len(phases))
		}
		prev := 0.0
		for _, ph := range phases {
			if ph.Label == "" {
				t.Errorf("%s: unlabeled phase %+v", name, ph)
			}
			if ph.Start != prev || ph.End <= ph.Start {
				t.Errorf("%s: discontiguous phase %+v (prev end %.1f)", name, ph, prev)
			}
			prev = ph.End
		}
		if prev != 40 {
			t.Errorf("%s: timeline ends at %.1f, want 40", name, prev)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	net := StandardNetwork()
	s, _ := LookupScenario("attack")
	if _, err := GenerateTrace(nil, net, 1, 1, Params{}); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := GenerateTrace(s, nil, 1, 1, Params{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, _, err := GenerateMatrix(nil, net, 1, 1, Params{}); err == nil {
		t.Error("nil scenario accepted for matrix")
	}
	// An undersized cast must error through the concurrent path too,
	// on every worker count.
	small, err := NewNetwork([]Host{
		{Name: "WS1", Role: RoleWorkstation},
		{Name: "EXT1", Role: RoleExternal},
		{Name: "ADV1", Role: RoleAdversary},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		if _, err := GenerateTrace(s, small, 1, workers, Params{Scale: 8}); err == nil {
			t.Errorf("undersized network accepted at %d workers", workers)
		}
		if _, _, err := GenerateMatrix(s, small, 1, workers, Params{Scale: 8}); err == nil {
			t.Errorf("undersized network accepted for matrix at %d workers", workers)
		}
	}
}

func TestScaledNetwork(t *testing.T) {
	if got := ScaledNetwork(3); got.Len() != 10 {
		t.Errorf("undersized request → %d hosts, want the standard 10", got.Len())
	}
	for _, hosts := range []int{10, 24, 64, 200} {
		net := ScaledNetwork(hosts)
		if net.Len() < hosts {
			t.Errorf("ScaledNetwork(%d) has %d hosts", hosts, net.Len())
		}
		zones, err := net.Zones()
		if err != nil {
			t.Fatalf("ScaledNetwork(%d): %v", hosts, err)
		}
		if _, err := patterns.AssignDDoSRoles(zones); err != nil {
			t.Errorf("ScaledNetwork(%d) cannot cast a DDoS: %v", hosts, err)
		}
		// Every catalog scenario must be runnable on a scaled net.
		for _, s := range Scenarios() {
			if _, err := GenerateTrace(s, net, 2, 2, Params{Duration: 10, Rate: 2}); err != nil {
				t.Errorf("ScaledNetwork(%d) cannot run %s: %v", hosts, s.Name(), err)
			}
		}
	}
}

// TestLegacyAdaptersStayDeterministic pins the adapter contract: the
// same seeded RNG reproduces the same trace.
func TestLegacyAdaptersStayDeterministic(t *testing.T) {
	net := StandardNetwork()
	a, _, err := AttackScenario(net, rand.New(rand.NewSource(7)), 40)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := AttackScenario(net, rand.New(rand.NewSource(7)), 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different attack traces")
	}
}
