package netsim

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// The streaming benchmarks back the PR's two quantitative claims
// (CI snapshots them into BENCH_PR6.json):
//
//   - time-to-first-window: the streamed path delivers window 0 long
//     before the batch path can (batch must generate and sort the
//     whole trace first);
//   - bounded memory: the streamed path's peak heap stays flat with
//     run length because windows seal and release as the run
//     progresses, while the batch path holds the full trace.
//
// The workload is deliberately the serve-smoke shape: a large axis,
// a long run, and a high event rate (duration 600 × rate 2000 =
// 1.2e6 events across 600 one-second chunks, 60 ten-second windows).

const benchWindow = 10.0

func benchConfig() (*Network, Params) {
	return ScaledNetwork(300), Params{Duration: 600, Rate: 2000}
}

var errFirstWindow = errors.New("first window delivered")

// BenchmarkStreamFirstWindow measures time-to-first-window on the
// streamed path: the run is aborted as soon as window 0 seals.
func BenchmarkStreamFirstWindow(b *testing.B) {
	s, _ := LookupScenario("background")
	net, p := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		_, _, err := StreamCSR(context.Background(), s, net, 42, 0, p, benchWindow, 0,
			func(int, SparseWindow) error { return errFirstWindow })
		if !errors.Is(err, errFirstWindow) {
			b.Fatalf("StreamCSR: %v", err)
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds()), "first-window-ns")
	}
}

// BenchmarkBatchFirstWindow is the baseline: the batch path cannot
// surface window 0 before generating the full trace and folding the
// whole spatial-temporal view.
func BenchmarkBatchFirstWindow(b *testing.B) {
	s, _ := LookupScenario("background")
	net, p := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		trace, err := GenerateTrace(s, net, 42, 0, p)
		if err != nil {
			b.Fatalf("GenerateTrace: %v", err)
		}
		wins, err := trace.WindowsCSR(net, benchWindow, p.withDefaults().Duration)
		if err != nil {
			b.Fatalf("WindowsCSR: %v", err)
		}
		if wins[0].Matrix == nil {
			b.Fatal("nil first window")
		}
		b.ReportMetric(float64(time.Since(start).Nanoseconds()), "first-window-ns")
	}
}

// peakHeap runs fn while sampling the heap every few milliseconds and
// returns the peak HeapAlloc observed, minus a post-GC baseline.
func peakHeap(fn func()) float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	var peak atomic.Uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			for {
				old := peak.Load()
				if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	fn()
	close(done)
	<-sampled
	p := peak.Load()
	if p < baseline {
		return 0
	}
	return float64(p - baseline)
}

// BenchmarkStreamPeakMemory runs the full streamed fold, discarding
// each window as it seals, and reports the sampled peak heap growth.
func BenchmarkStreamPeakMemory(b *testing.B) {
	s, _ := LookupScenario("background")
	net, p := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak := peakHeap(func() {
			_, _, err := StreamCSR(context.Background(), s, net, 42, 0, p, benchWindow, 0,
				func(int, SparseWindow) error { return nil })
			if err != nil {
				b.Fatalf("StreamCSR: %v", err)
			}
		})
		b.ReportMetric(peak, "peak-heap-bytes")
	}
}

// BenchmarkBatchPeakMemory is the baseline: the batch path holds the
// complete trace plus every window at once.
func BenchmarkBatchPeakMemory(b *testing.B) {
	s, _ := LookupScenario("background")
	net, p := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak := peakHeap(func() {
			trace, err := GenerateTrace(s, net, 42, 0, p)
			if err != nil {
				b.Fatalf("GenerateTrace: %v", err)
			}
			wins, err := trace.WindowsCSR(net, benchWindow, p.withDefaults().Duration)
			if err != nil {
				b.Fatalf("WindowsCSR: %v", err)
			}
			if len(wins) == 0 {
				b.Fatal("no windows")
			}
		})
		b.ReportMetric(peak, "peak-heap-bytes")
	}
}
